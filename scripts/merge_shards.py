#!/usr/bin/env python3
"""Reassemble a sharded `latol run --shard i/n` sweep.

Usage: merge_shards.py [--out BASE] [--check] <shard.manifest.json> ...

Each worker process of an i/n split writes `<name>.shard<i>of<n>.csv` /
`.jsonl` plus a manifest. A shard owns the grid rows r with
r % n == i (a row is one run of the fastest-varying axis), so the
single-process output is the round-robin interleave of the shard files,
row by row. This script validates that the manifests compose — same
scenario content hash, build, and grid geometry; shard indices 0..n-1
present exactly once; owned-row counts covering the grid exactly once —
then writes BASE.csv / BASE.jsonl byte-identical to a single-process
`latol run` of the same scenario, plus BASE.manifest.json with the
summed accounting.

Validation uses only the axis/grid metadata recorded in the manifests
(manifest keys `grid.row_length`, `grid.rows_total`, `shard.*`); the
scenario file is never re-parsed. With --check, validation runs and
nothing is written. Standard library only. Exits 0 on success, 1 on any
composition error.
"""

import argparse
import json
import sys
from pathlib import Path


def fail(msg):
    print(f"merge_shards: error: {msg}", file=sys.stderr)
    sys.exit(1)


def load_shard(path):
    """Load one shard manifest and locate its data files."""
    p = Path(path)
    with open(p) as f:
        manifest = json.load(f)
    for key in ("scenario", "scenario_hash", "build", "grid", "shard"):
        if key not in manifest:
            fail(f"{path}: not a latol run manifest (missing `{key}`)")
    name = p.name
    suffix = ".manifest.json"
    if not name.endswith(suffix):
        fail(f"{path}: expected a `*.manifest.json` file")
    base = p.with_name(name[: -len(suffix)])
    return {
        "manifest_path": p,
        "base": base,
        "manifest": manifest,
        "csv": base.with_suffix(base.suffix + ".csv"),
        "jsonl": base.with_suffix(base.suffix + ".jsonl"),
    }


def owned_rows(rows_total, index, count):
    """Rows this shard must contain: r in [0, rows_total) with r % count == index."""
    return len(range(index, rows_total, count))


def validate(shards):
    """Cross-check the manifests; return (n, rows_total, row_length)."""
    ref = shards[0]["manifest"]
    for field in ("scenario", "scenario_hash", "build"):
        values = {s["manifest"][field] for s in shards}
        if len(values) != 1:
            fail(f"shards disagree on `{field}`: {sorted(values)}")
    grids = [s["manifest"]["grid"] for s in shards]
    for field in ("total_points", "row_length", "rows_total"):
        values = {g[field] for g in grids}
        if len(values) != 1:
            fail(f"shards disagree on grid.{field}: {sorted(values)}")

    counts = {s["manifest"]["shard"]["count"] for s in shards}
    if len(counts) != 1:
        fail(f"shards disagree on shard.count: {sorted(counts)}")
    n = counts.pop()
    if n != len(shards):
        fail(f"manifests declare {n} shards but {len(shards)} were given")

    indices = sorted(s["manifest"]["shard"]["index"] for s in shards)
    if indices != list(range(n)):
        fail(f"shard indices must be 0..{n - 1} exactly once, got {indices}")

    rows_total = ref["grid"]["rows_total"]
    row_length = ref["grid"]["row_length"]
    for s in shards:
        sh = s["manifest"]["shard"]
        expect = owned_rows(rows_total, sh["index"], n)
        if sh["rows_owned"] != expect:
            fail(f"shard {sh['index']}: owns {sh['rows_owned']} rows, "
                 f"expected {expect} of {rows_total} — the union would not "
                 f"cover the grid exactly once")
    return n, rows_total, row_length


def read_rows(path, row_length, rows_owned, skip_header):
    """Read a shard data file into a list of rows (each row_length lines)."""
    lines = path.read_text().splitlines(keepends=True)
    header = None
    if skip_header:
        if not lines:
            fail(f"{path}: empty file, expected a CSV header")
        header, lines = lines[0], lines[1:]
    if len(lines) != rows_owned * row_length:
        fail(f"{path}: {len(lines)} data lines, expected "
             f"{rows_owned} rows x {row_length} points")
    rows = [lines[i * row_length:(i + 1) * row_length]
            for i in range(rows_owned)]
    return header, rows


def merge_files(shards, kind, rows_total, row_length, out_path, check):
    """Round-robin interleave one file kind ("csv" | "jsonl") across shards."""
    present = [s[kind].exists() for s in shards]
    if not any(present):
        return False
    if not all(present):
        missing = [str(s[kind]) for s, p in zip(shards, present) if not p]
        fail(f"{kind} present in some shards but missing in: {missing}")

    headers = []
    per_shard = []
    for s in shards:
        sh = s["manifest"]["shard"]
        header, rows = read_rows(s[kind], row_length, sh["rows_owned"],
                                 skip_header=(kind == "csv"))
        headers.append(header)
        per_shard.append(rows)
    if kind == "csv" and len(set(headers)) != 1:
        fail("shard CSV headers differ — different column sets?")

    n = len(shards)
    merged = [] if headers[0] is None else [headers[0]]
    cursor = [0] * n
    for r in range(rows_total):
        shard = r % n
        merged.extend(per_shard[shard][cursor[shard]])
        cursor[shard] += 1
    if check:
        return True
    out_path.write_text("".join(merged))
    print(f"wrote {out_path} ({rows_total} rows)")
    return True


def merge_manifest(shards, rows_total, out_path, check):
    """Summed accounting over the shards, shaped like a 0/1 manifest."""
    by_index = sorted(shards, key=lambda s: s["manifest"]["shard"]["index"])
    merged = json.loads(json.dumps(by_index[0]["manifest"]))
    summed = ("grid_points", "unique_points", "solves", "cache_hits",
              "cache_preloaded", "cache_evictions", "degraded_points",
              "failed_points", "deadline_points", "simulated_points")
    for field in summed:
        if field in merged:
            merged[field] = sum(s["manifest"].get(field, 0) for s in shards)
    merged["wall_seconds"] = max(
        s["manifest"].get("wall_seconds", 0.0) for s in shards)
    merged["shard"] = {"index": 0, "count": 1, "rows_owned": rows_total}
    if "warm" in merged:
        merged["warm"]["hinted_points"] = sum(
            s["manifest"].get("warm", {}).get("hinted_points", 0)
            for s in shards)
        merged["warm"]["total_iterations"] = sum(
            s["manifest"].get("warm", {}).get("total_iterations", 0)
            for s in shards)
    merged["merged_from"] = [str(s["manifest_path"]) for s in by_index]
    if check:
        return
    with open(out_path, "w") as f:
        json.dump(merged, f, indent=2)
        f.write("\n")
    print(f"wrote {out_path}")


def main(argv):
    ap = argparse.ArgumentParser()
    ap.add_argument("manifests", nargs="+",
                    help="one *.manifest.json per shard, any order")
    ap.add_argument("--out", help="output base path (writes BASE.csv / "
                                  "BASE.jsonl / BASE.manifest.json)")
    ap.add_argument("--check", action="store_true",
                    help="validate composition only; write nothing")
    args = ap.parse_args(argv[1:])
    if not args.check and not args.out:
        ap.error("--out BASE is required unless --check is given")

    shards = [load_shard(p) for p in args.manifests]
    n, rows_total, row_length = validate(shards)
    print(f"merge_shards: {n} shards compose: {rows_total} rows x "
          f"{row_length} points, scenario "
          f"`{shards[0]['manifest']['scenario']}`")

    out_base = Path(args.out) if args.out else Path("merged")
    wrote_any = False
    for kind, suffix in (("csv", ".csv"), ("jsonl", ".jsonl")):
        out = out_base.with_name(out_base.name + suffix)
        if merge_files(shards, kind, rows_total, row_length, out, args.check):
            wrote_any = True
    if not wrote_any:
        fail("no .csv or .jsonl shard data files found next to the manifests")
    merge_manifest(shards, rows_total,
                   out_base.with_name(out_base.name + ".manifest.json"),
                   args.check)
    if args.check:
        print("merge_shards: composition OK (check mode, nothing written)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
