#!/usr/bin/env python3
"""Guard against solver performance regressions.

Usage: check_bench_regression.py <baseline.json> <current.json> [--limit PCT]

Compares two BENCH_*.json files (the format written by the perf_*
binaries' JSON tee, see docs/PERFORMANCE.md) benchmark-by-benchmark.
Throughput benchmarks (those reporting items_per_second, e.g. the
simulator's events/s) are compared on baseline/current throughput, which
stays meaningful when the work per iteration varies or the benchmark
measures real time across worker threads; the rest are compared on
cpu_time. Either way a ratio > 1 means "slower now". Because the
baseline is committed from a different machine than the CI runner, raw
numbers are not comparable; instead each benchmark's ratio is normalized
by the median ratio across all shared benchmarks. The median captures
the machine-speed difference; a benchmark whose normalized ratio exceeds
1 + limit (default 20%) has slowed down relative to its peers and fails
the check.

Benchmarks present in only one file are reported but do not fail — new
benchmarks have no baseline yet, and retired ones no current number.
Standard library only. Exits 0 when within limits, 1 otherwise.
"""

import argparse
import json
import statistics
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for b in doc["benchmarks"]:
        # Aggregate rows (name/mean, name/median, ...) would double-count.
        if b.get("run_type") == "aggregate":
            continue
        ips = b.get("items_per_second")
        out[b["name"]] = (float(b["cpu_time"]),
                          float(ips) if ips else None)
    return out


def slowdown_ratio(base, curr):
    """current-vs-baseline slowdown (> 1 means slower now).

    Throughput benchmarks compare on items/s — events or firings per
    second — so the ratio tracks delivered work even when iteration
    counts or thread timing differ; time-only benchmarks fall back to
    cpu_time.
    """
    (base_time, base_ips), (curr_time, curr_ips) = base, curr
    if base_ips and curr_ips:
        return base_ips / curr_ips
    return curr_time / base_time


def main(argv):
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--limit", type=float, default=20.0,
                    help="allowed slowdown in percent after normalization "
                         "(default 20)")
    args = ap.parse_args(argv[1:])

    base = load(args.baseline)
    curr = load(args.current)

    shared = sorted(set(base) & set(curr))
    for name in sorted(set(base) - set(curr)):
        print(f"note: `{name}` only in baseline (retired?)")
    for name in sorted(set(curr) - set(base)):
        print(f"note: `{name}` only in current (no baseline yet)")
    if len(shared) < 3:
        print(f"error: only {len(shared)} shared benchmark(s); need >= 3 "
              f"for a meaningful median normalization")
        return 1

    ratios = {n: slowdown_ratio(base[n], curr[n]) for n in shared
              if base[n][0] > 0}
    median = statistics.median(ratios.values())
    print(f"median current/baseline ratio: {median:.3f} "
          f"(machine-speed normalization factor)")

    threshold = 1.0 + args.limit / 100.0
    failures = 0
    for name in shared:
        norm = ratios[name] / median
        flag = ""
        if norm > threshold:
            flag = f"  <-- REGRESSION (> {args.limit:.0f}%)"
            failures += 1
        print(f"  {name}: {norm - 1.0:+.1%} vs peers{flag}")
    if failures:
        print(f"\ncheck_bench_regression: {failures} benchmark(s) slowed "
              f"down more than {args.limit:.0f}% relative to the rest.")
        return 1
    print("check_bench_regression: no regression beyond "
          f"{args.limit:.0f}%.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
