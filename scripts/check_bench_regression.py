#!/usr/bin/env python3
"""Guard against solver performance regressions.

Usage: check_bench_regression.py <baseline.json> <current.json> [--limit PCT]

Compares two BENCH_*.json files (the format written by the perf_*
binaries' JSON tee, see docs/PERFORMANCE.md) benchmark-by-benchmark on
cpu_time. Because the baseline is committed from a different machine than
the CI runner, raw times are not comparable; instead each benchmark's
ratio current/baseline is normalized by the median ratio across all
shared benchmarks. The median captures the machine-speed difference; a
benchmark whose normalized ratio exceeds 1 + limit (default 20%) has
slowed down relative to its peers and fails the check.

Benchmarks present in only one file are reported but do not fail — new
benchmarks have no baseline yet, and retired ones no current number.
Standard library only. Exits 0 when within limits, 1 otherwise.
"""

import argparse
import json
import statistics
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for b in doc["benchmarks"]:
        # Aggregate rows (name/mean, name/median, ...) would double-count.
        if b.get("run_type") == "aggregate":
            continue
        out[b["name"]] = float(b["cpu_time"])
    return out


def main(argv):
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--limit", type=float, default=20.0,
                    help="allowed slowdown in percent after normalization "
                         "(default 20)")
    args = ap.parse_args(argv[1:])

    base = load(args.baseline)
    curr = load(args.current)

    shared = sorted(set(base) & set(curr))
    for name in sorted(set(base) - set(curr)):
        print(f"note: `{name}` only in baseline (retired?)")
    for name in sorted(set(curr) - set(base)):
        print(f"note: `{name}` only in current (no baseline yet)")
    if len(shared) < 3:
        print(f"error: only {len(shared)} shared benchmark(s); need >= 3 "
              f"for a meaningful median normalization")
        return 1

    ratios = {n: curr[n] / base[n] for n in shared if base[n] > 0}
    median = statistics.median(ratios.values())
    print(f"median current/baseline ratio: {median:.3f} "
          f"(machine-speed normalization factor)")

    threshold = 1.0 + args.limit / 100.0
    failures = 0
    for name in shared:
        norm = ratios[name] / median
        flag = ""
        if norm > threshold:
            flag = f"  <-- REGRESSION (> {args.limit:.0f}%)"
            failures += 1
        print(f"  {name}: {norm - 1.0:+.1%} vs peers{flag}")
    if failures:
        print(f"\ncheck_bench_regression: {failures} benchmark(s) slowed "
              f"down more than {args.limit:.0f}% relative to the rest.")
        return 1
    print("check_bench_regression: no regression beyond "
          f"{args.limit:.0f}%.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
