#!/usr/bin/env python3
"""End-to-end smoke test of the `latol serve` daemon.

Usage: serve_smoke.py <path-to-latol-binary> [--metrics-out FILE]

Standard library only, so CI can run it against sanitizer builds without
installing anything. Exercises the daemon the way the robustness suite
describes (DESIGN.md §11):

 1. start `latol serve` on an ephemeral port, parse the port from its
    startup line;
 2. happy paths: /healthz, /v1/analyze (checked byte-identical to the
    CLI), /v1/scenario, /metrics;
 3. fault corpus: malformed request, oversized declared body, truncated
    request with mid-body disconnect, unknown path, bad flags;
 4. admission: a concurrent burst at 4x the worker count must answer
    every connection with 200 or 503 (never hang, never crash);
 5. deadline: an effectively-expired X-Deadline-Ms must return 504;
 6. drain: SIGTERM must stop the daemon with exit code 0.

Exits 0 when every check passes, 1 otherwise. With --metrics-out the
final /metrics scrape is written to FILE (for check_metrics.py --prom).
"""

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

FAILURES = []


def check(ok, what):
    marker = "ok" if ok else "FAIL"
    print(f"serve_smoke: [{marker}] {what}")
    if not ok:
        FAILURES.append(what)


def raw_request(port, payload, timeout=30.0):
    """Send raw bytes, return the raw response (b"" on connection error)."""
    try:
        with socket.create_connection(("127.0.0.1", port), timeout=timeout) as s:
            s.sendall(payload)
            chunks = []
            while True:
                chunk = s.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
            return b"".join(chunks)
    except OSError:
        return b""


def http_request(port, method, target, body=b"", headers=(), timeout=30.0):
    """Return (status, header_dict, body_bytes); status 0 on failure."""
    head = f"{method} {target} HTTP/1.1\r\nHost: smoke\r\n"
    for name, value in headers:
        head += f"{name}: {value}\r\n"
    head += f"Content-Length: {len(body)}\r\n\r\n"
    raw = raw_request(port, head.encode() + body, timeout)
    if b"\r\n\r\n" not in raw:
        return 0, {}, b""
    head_bytes, _, body_bytes = raw.partition(b"\r\n\r\n")
    lines = head_bytes.decode("latin-1").split("\r\n")
    try:
        status = int(lines[0].split(" ")[1])
    except (IndexError, ValueError):
        return 0, {}, b""
    hdrs = {}
    for line in lines[1:]:
        if ": " in line:
            name, value = line.split(": ", 1)
            hdrs[name.lower()] = value
    return status, hdrs, body_bytes


def start_server(latol, config_path):
    proc = subprocess.Popen(
        [latol, "serve", config_path],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    deadline = time.monotonic() + 30.0
    port = None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        print(f"serve_smoke: server: {line.rstrip()}")
        if "listening on" in line:
            port = int(line.rsplit(":", 1)[1].split()[0])
            break
    return proc, port


def drain_stdout(proc):
    """Keep the server's pipe drained so logging never blocks it."""
    def pump():
        for line in proc.stdout:
            print(f"serve_smoke: server: {line.rstrip()}")
    t = threading.Thread(target=pump, daemon=True)
    t.start()
    return t


def main():
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    latol = sys.argv[1]
    metrics_out = None
    if "--metrics-out" in sys.argv[2:]:
        metrics_out = sys.argv[sys.argv.index("--metrics-out") + 1]

    workdir = tempfile.mkdtemp(prefix="latol_serve_smoke.")
    config_path = os.path.join(workdir, "serve.json")
    with open(config_path, "w", encoding="utf-8") as f:
        json.dump({
            "port": 0,
            "max_concurrent": 2,
            "queue_limit": 4,
            "read_timeout_s": 5.0,
            "cache_path": os.path.join(workdir, "cache.json"),
        }, f)

    proc, port = start_server(latol, config_path)
    check(port is not None, "server started and printed its port")
    if port is None:
        proc.kill()
        return 1
    pump = drain_stdout(proc)

    # --- happy paths ---
    status, hdrs, body = http_request(port, "GET", "/healthz")
    check(status == 200 and body.startswith(b"ok ") and body.endswith(b"\n"),
          "GET /healthz answers ok + build version")
    first_id = hdrs.get("x-latol-request-id", "")
    check(len(first_id) == 23 and first_id[16] == "-",
          f"response carries X-Latol-Request-Id (got `{first_id}`)")
    status, hdrs, _ = http_request(port, "GET", "/healthz")
    check(hdrs.get("x-latol-request-id", "") not in ("", first_id),
          "request ids are unique per request")

    args = ["analyze", "--k", "3", "--threads", "4"]
    cli = subprocess.run([latol] + args, capture_output=True, timeout=120)
    status, hdrs, body = http_request(
        port, "POST", "/v1/analyze",
        json.dumps({"args": args[1:]}).encode())
    check(status == 200 and hdrs.get("x-latol-exit") == "0",
          "POST /v1/analyze answers 200 with exit 0")
    check(body == cli.stdout,
          "POST /v1/analyze body is byte-identical to the CLI")

    scenario = {
        "name": "smoke", "base": {"k": 2},
        "axes": [{"param": "p_remote", "values": [0.1, 0.2]}],
    }
    status, _, body = http_request(
        port, "POST", "/v1/scenario", json.dumps(scenario).encode())
    ok = status == 200
    if ok:
        doc = json.loads(body)
        ok = "results" in doc and "manifest" in doc
    check(ok, "POST /v1/scenario answers results + manifest")

    # Open workloads through the daemon (DESIGN.md 12): the mixed
    # open/closed solve via /v1/analyze, and a FESC scenario sweep.
    args = ["analyze", "--k", "2", "--open-arrival", "0.01"]
    cli = subprocess.run([latol] + args, capture_output=True, timeout=120)
    status, hdrs, body = http_request(
        port, "POST", "/v1/analyze",
        json.dumps({"args": args[1:]}).encode())
    check(status == 200 and b"open request latency" in body,
          "POST /v1/analyze with open arrivals reports open metrics")
    check(body == cli.stdout,
          "open-arrival analyze body is byte-identical to the CLI")
    open_scenario = {
        "name": "smoke-open", "base": {"k": 2},
        "solver": {"method": "fesc"},
        "axes": [{"param": "threads", "values": [2, 4]}],
        "outputs": {"columns": ["n_t", "U_p", "solver", "converged"]},
    }
    status, _, body = http_request(
        port, "POST", "/v1/scenario", json.dumps(open_scenario).encode())
    ok = status == 200
    if ok:
        doc = json.loads(body)
        ok = "results" in doc and "fesc" in json.dumps(doc)
    check(ok, "POST /v1/scenario solves a fesc-method scenario")

    # --- fault corpus ---
    status, _, _ = http_request(port, "GET", "/nowhere")
    check(status == 404, "unknown path answers 404")
    raw = raw_request(port, b"GARBAGE\r\n\r\n")
    check(b" 400 " in raw, "malformed request line answers 400")
    raw = raw_request(
        port, b"POST /v1/analyze HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n")
    check(b" 413 " in raw, "oversized declared body answers 413")
    try:  # truncated request + disconnect: must not poison the server
        with socket.create_connection(("127.0.0.1", port), timeout=10) as s:
            s.sendall(b"POST /v1/analyze HTTP/1.1\r\nContent-Length: 50\r\n\r\npar")
    except OSError:
        pass
    status, _, _ = http_request(port, "GET", "/healthz")
    check(status == 200, "server healthy after mid-request disconnect")
    status, _, _ = http_request(
        port, "POST", "/v1/analyze",
        json.dumps({"args": ["--trace", "/tmp/x"]}).encode())
    check(status == 400, "file-writing flags are rejected with 400")
    status, _, _ = http_request(
        port, "POST", "/v1/analyze",
        json.dumps({"args": ["--trace-out", "/tmp/x"]}).encode())
    check(status == 400, "--trace-out is rejected over HTTP with 400")

    # --- admission: burst at 4x capacity ---
    results = []
    lock = threading.Lock()

    def burst_one():
        status, _, _ = http_request(
            port, "POST", "/v1/analyze",
            json.dumps({"args": ["--k", "4"]}).encode(), timeout=120.0)
        with lock:
            results.append(status)

    threads = [threading.Thread(target=burst_one) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=180)
    answered = [s for s in results if s in (200, 503)]
    check(len(results) == 8 and len(answered) == 8,
          f"burst of 8 all answered 200 or 503 (got {sorted(results)})")

    # --- deadline ---
    start = time.monotonic()
    status, hdrs, _ = http_request(
        port, "POST", "/v1/analyze",
        json.dumps({"args": ["--k", "4"]}).encode(),
        headers=[("X-Deadline-Ms", "0.001")])
    elapsed = time.monotonic() - start
    check(status == 504, "expired deadline answers 504")
    check(elapsed < 10.0, f"deadline answered promptly ({elapsed:.2f}s)")

    # --- metrics ---
    status, _, body = http_request(port, "GET", "/metrics")
    text = body.decode("utf-8", "replace")
    check(status == 200 and "latol_serve_queue_depth" in text
          and "latol_serve_requests_total" in text,
          "GET /metrics exposes serve metrics")
    check("# TYPE latol_serve_request_latency_seconds histogram" in text
          and 'latol_serve_request_latency_seconds_bucket{le="+Inf"}' in text
          and "latol_serve_request_latency_seconds_count" in text,
          "GET /metrics exposes the request-latency histogram")
    check("latol_process_uptime_seconds" in text
          and "latol_serve_accepted_total" in text,
          "GET /metrics exposes process gauges and accept counters")
    if metrics_out:
        with open(metrics_out, "w", encoding="utf-8") as f:
            f.write(text)

    # --- graceful drain ---
    proc.send_signal(signal.SIGTERM)
    try:
        code = proc.wait(timeout=60)
    except subprocess.TimeoutExpired:
        proc.kill()
        code = -1
    pump.join(timeout=10)
    check(code == 0, f"SIGTERM drains with exit code 0 (got {code})")
    check(os.path.exists(os.path.join(workdir, "cache.json")),
          "drain flushed the solve cache file")

    if FAILURES:
        print(f"serve_smoke: {len(FAILURES)} check(s) failed",
              file=sys.stderr)
        return 1
    print("serve_smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
