#!/usr/bin/env python3
"""Validate a latol span trace (Chrome trace_event JSON) structurally.

Usage: check_trace.py <trace.json> [--require-span NAME]...

Checks the document `latol <command> --trace-out FILE` writes
(DESIGN.md §14) the way chrome://tracing and Perfetto consume it —
those viewers silently drop malformed events, so CI has to fail loudly
instead:

 - the file is one JSON object with a `traceEvents` array;
 - every event carries name/ph/pid/tid, and B/E/i events a numeric ts;
 - timestamps are monotone within each tid (per-lane recording order);
 - every `B` has a matching `E` with the same name, in LIFO order per
   tid (spans nest, they never interleave within a thread);
 - span ids are unique and parent links point at ids that exist (or 0);
 - each tid that recorded events has a thread_name metadata event.

With --require-span NAME (repeatable) the trace must also contain at
least one complete span of that name — the CI smoke asserts the
per-point spans nest under the batch runner. Standard library only.
Exits 0 when valid, 1 with a list of violations otherwise.
"""

import json
import sys

errors = []


def fail(msg):
    errors.append(msg)


def check_trace(doc, required_spans):
    if not isinstance(doc, dict):
        fail("document is not a JSON object")
        return
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("$.traceEvents: missing or not an array")
        return
    last_ts = {}      # tid -> last timestamp
    open_spans = {}   # tid -> stack of (name, span_id)
    thread_named = set()
    span_ids = set()
    parent_links = []  # (where, parent_id)
    seen_names = set()
    for i, e in enumerate(events):
        where = f"$.traceEvents[{i}]"
        if not isinstance(e, dict):
            fail(f"{where}: expected object")
            continue
        name = e.get("name")
        ph = e.get("ph")
        tid = e.get("tid")
        if not isinstance(name, str) or not name:
            fail(f"{where}: missing name")
            continue
        if ph not in ("B", "E", "i", "M"):
            fail(f"{where}: unexpected phase `{ph}`")
            continue
        if not isinstance(tid, int) or "pid" not in e:
            fail(f"{where}: missing pid/tid")
            continue
        if ph == "M":
            if name == "thread_name":
                thread_named.add(tid)
            continue
        ts = e.get("ts")
        if isinstance(ts, bool) or not isinstance(ts, (int, float)):
            fail(f"{where}: missing numeric ts")
            continue
        if ts < last_ts.get(tid, 0):
            fail(f"{where}: ts {ts} goes backwards on tid {tid} "
                 f"(after {last_ts[tid]})")
        last_ts[tid] = ts
        args = e.get("args", {})
        span_id = args.get("span_id", 0)
        parent_id = args.get("parent_id", 0)
        if ph == "B":
            if not span_id:
                fail(f"{where}: B event without span_id")
            elif span_id in span_ids:
                fail(f"{where}: duplicate span_id {span_id}")
            else:
                span_ids.add(span_id)
            parent_links.append((where, parent_id))
            open_spans.setdefault(tid, []).append((name, span_id))
        elif ph == "E":
            stack = open_spans.get(tid, [])
            if not stack:
                fail(f"{where}: E `{name}` without an open B on tid {tid}")
                continue
            open_name, open_id = stack.pop()
            if open_name != name:
                fail(f"{where}: E `{name}` closes B `{open_name}` "
                     f"(spans must nest LIFO per tid)")
            else:
                seen_names.add(name)
        elif parent_id:
            parent_links.append((where, parent_id))
    for tid, stack in open_spans.items():
        for name, _ in stack:
            fail(f"unclosed span `{name}` on tid {tid}")
    for tid in last_ts:
        if tid not in thread_named:
            fail(f"tid {tid} recorded events but has no thread_name "
                 f"metadata")
    for where, parent_id in parent_links:
        if parent_id and parent_id not in span_ids:
            fail(f"{where}: parent_id {parent_id} names no recorded span")
    for name in required_spans:
        if name not in seen_names:
            fail(f"required span `{name}` not found (or never completed)")


def main():
    args = sys.argv[1:]
    required = []
    while "--require-span" in args:
        i = args.index("--require-span")
        if i + 1 >= len(args):
            print(__doc__.strip(), file=sys.stderr)
            return 2
        required.append(args[i + 1])
        del args[i:i + 2]
    if len(args) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    path = args[0]
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_trace: cannot read {path}: {e}", file=sys.stderr)
        return 1
    check_trace(doc, required)
    if errors:
        for error in errors:
            print(f"check_trace: {error}", file=sys.stderr)
        print(f"check_trace: {path}: {len(errors)} violation(s)",
              file=sys.stderr)
        return 1
    events = len(doc.get("traceEvents", []))
    print(f"check_trace: {path}: ok ({events} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
