#!/usr/bin/env python3
"""Documentation lint: header doc comments, required doc files, and the
DESIGN.md table of contents.

Usage: check_docs.py [src_dir ...]   (default: src)

Three checks:

1. Header docs — walks every *.hpp under the given directories and
   requires that each declaration at namespace scope (class/struct/enum
   definitions, free functions, type aliases, constants) is immediately
   preceded by a `///` Doxygen comment or a `//` comment block. Pure
   forward declarations (`class X;`) are exempt — the documentation
   lives at the definition.
2. Required doc files — the repo must ship DESIGN.md, EXPERIMENTS.md,
   docs/ARCHITECTURE.md, and docs/PERFORMANCE.md (non-empty).
3. DESIGN.md TOC — every numbered `## N. Title` section must have a
   `§N` entry in the table of contents above the first section, so the
   TOC cannot silently rot as sections are added.

The header walk is a line-based heuristic, not a C++ parser: it tracks
brace depth to tell namespace scope from class/function bodies, which is
reliable for this codebase's clang-format style. Standard library only
so CI can run it without installing anything. Exits 0 when clean, 1 with
a list of problems otherwise.
"""

import re
import sys
from pathlib import Path

FORWARD_DECL = re.compile(r"^(class|struct)\s+\w+\s*;\s*(//.*)?$")
# Out-of-line member definitions (`T Class::member(...)`) are documented at
# the in-class declaration, not at the definition.
MEMBER_DEF = re.compile(r"^[^=(]*\b\w+::\w+\s*\(")
NAMESPACE_LINE = re.compile(r"^(inline\s+)?namespace\b")
SKIP_PREFIXES = (
    "#", "//", "/*", "*", "{", "}", "public:", "private:", "protected:",
    "extern \"C\"",
)


def strip_strings(line):
    """Blank out string/char literals so braces inside them don't count."""
    return re.sub(r'"(?:[^"\\]|\\.)*"|\'(?:[^\'\\]|\\.)*\'', '""', line)


def lint_file(path):
    """Return a list of (line_number, text) undocumented declarations."""
    lines = path.read_text().splitlines()
    violations = []
    # Scope stack entries: "ns" for namespace braces, "other" for
    # everything else (class bodies, function bodies, enum lists, ...).
    stack = []
    in_block_comment = False
    in_preproc = False  # continuation lines of a backslash-continued #define
    in_statement = False  # continuation lines of a multi-line declaration
    prev_significant = ""  # last non-blank line at any scope

    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()

        if in_preproc:
            prev_significant = line or prev_significant
            in_preproc = line.endswith("\\")
            continue
        if line.startswith("#"):
            prev_significant = line
            in_preproc = line.endswith("\\")
            continue

        if in_block_comment:
            prev_significant = "//"
            if "*/" in line:
                in_block_comment = False
            continue

        if not line:
            continue

        code = strip_strings(line)
        # Drop trailing // comments before brace counting.
        code = re.sub(r"//.*$", "", code).strip()

        if line.startswith("/*"):
            prev_significant = "//"
            if "*/" not in line:
                in_block_comment = True
            continue

        at_ns_scope = all(kind == "ns" for kind in stack)
        starts_decl = (
            at_ns_scope
            and not in_statement
            and code
            and not line.startswith(SKIP_PREFIXES)
            and not NAMESPACE_LINE.match(code)
            and not FORWARD_DECL.match(line)
            and not MEMBER_DEF.match(line)
        )
        if starts_decl:
            documented = prev_significant.startswith(("///", "//", "*/"))
            if not documented:
                violations.append((lineno, line))
            in_statement = True

        # Track statement/brace structure.
        for ch in code:
            if ch == "{":
                is_ns = NAMESPACE_LINE.match(code) is not None
                stack.append("ns" if is_ns else "other")
            elif ch == "}":
                if stack:
                    stack.pop()
                in_statement = False
        if in_statement and all(k == "ns" for k in stack) \
                and code.endswith((";", "}")):
            in_statement = False

        prev_significant = line

    return violations


# Doc files every checkout must ship (relative to the repo root).
REQUIRED_DOCS = (
    "DESIGN.md",
    "EXPERIMENTS.md",
    "docs/ARCHITECTURE.md",
    "docs/PERFORMANCE.md",
)


def check_required_docs(repo_root):
    """Return a list of problem strings for missing/empty doc files."""
    problems = []
    for rel in REQUIRED_DOCS:
        path = repo_root / rel
        if not path.is_file():
            problems.append(f"{rel}: required documentation file is missing")
        elif not path.read_text().strip():
            problems.append(f"{rel}: required documentation file is empty")
    return problems


def check_design_toc(design_path):
    """Every `## N. Title` section needs a `§N` TOC entry above section 1."""
    if not design_path.is_file():
        return []  # already reported by check_required_docs
    lines = design_path.read_text().splitlines()
    section_re = re.compile(r"^## (\d+)\. (.+)$")
    sections = []
    first_section_line = None
    for i, line in enumerate(lines):
        m = section_re.match(line)
        if m:
            if first_section_line is None:
                first_section_line = i
            sections.append((int(m.group(1)), m.group(2).strip()))
    problems = []
    if not sections:
        return [f"{design_path.name}: no `## N. Title` sections found"]
    preamble = "\n".join(lines[:first_section_line])
    if "contents" not in preamble.lower():
        problems.append(f"{design_path.name}: no table of contents before "
                        f"the first numbered section")
    for number, title in sections:
        if f"§{number} " not in preamble and f"§{number}]" not in preamble:
            problems.append(f"{design_path.name}: section {number} "
                            f"(`{title}`) has no §{number} entry in the "
                            f"table of contents")
    return problems


def main(argv):
    roots = [Path(p) for p in (argv[1:] or ["src"])]
    failures = 0
    for root in roots:
        for path in sorted(root.rglob("*.hpp")):
            for lineno, text in lint_file(path):
                print(f"{path}:{lineno}: undocumented namespace-scope "
                      f"declaration: {text}")
                failures += 1
    repo_root = Path(__file__).resolve().parent.parent
    doc_problems = check_required_docs(repo_root)
    doc_problems += check_design_toc(repo_root / "DESIGN.md")
    for problem in doc_problems:
        print(problem)
        failures += 1
    if failures:
        print(f"\ncheck_docs: {failures} problem(s); add a /// comment above "
              f"each undocumented declaration, restore any missing doc "
              f"files, and keep the DESIGN.md table of contents complete.")
        return 1
    print("check_docs: headers documented, doc files present, DESIGN.md "
          "TOC complete.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
