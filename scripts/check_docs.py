#!/usr/bin/env python3
"""Header documentation lint: every namespace-scope declaration in a
public header must carry a doc comment.

Usage: check_docs.py [src_dir ...]   (default: src)

Walks every *.hpp under the given directories and requires that each
declaration at namespace scope (class/struct/enum definitions, free
functions, type aliases, constants) is immediately preceded by a `///`
Doxygen comment or a `//` comment block. Pure forward declarations
(`class X;`) are exempt — the documentation lives at the definition.

This is a line-based heuristic, not a C++ parser: it tracks brace depth
to tell namespace scope from class/function bodies, which is reliable for
this codebase's clang-format style. Standard library only so CI can run
it without installing anything. Exits 0 when clean, 1 with a list of
undocumented declarations otherwise.
"""

import re
import sys
from pathlib import Path

FORWARD_DECL = re.compile(r"^(class|struct)\s+\w+\s*;\s*(//.*)?$")
# Out-of-line member definitions (`T Class::member(...)`) are documented at
# the in-class declaration, not at the definition.
MEMBER_DEF = re.compile(r"^[^=(]*\b\w+::\w+\s*\(")
NAMESPACE_LINE = re.compile(r"^(inline\s+)?namespace\b")
SKIP_PREFIXES = (
    "#", "//", "/*", "*", "{", "}", "public:", "private:", "protected:",
    "extern \"C\"",
)


def strip_strings(line):
    """Blank out string/char literals so braces inside them don't count."""
    return re.sub(r'"(?:[^"\\]|\\.)*"|\'(?:[^\'\\]|\\.)*\'', '""', line)


def lint_file(path):
    """Return a list of (line_number, text) undocumented declarations."""
    lines = path.read_text().splitlines()
    violations = []
    # Scope stack entries: "ns" for namespace braces, "other" for
    # everything else (class bodies, function bodies, enum lists, ...).
    stack = []
    in_block_comment = False
    in_preproc = False  # continuation lines of a backslash-continued #define
    in_statement = False  # continuation lines of a multi-line declaration
    prev_significant = ""  # last non-blank line at any scope

    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()

        if in_preproc:
            prev_significant = line or prev_significant
            in_preproc = line.endswith("\\")
            continue
        if line.startswith("#"):
            prev_significant = line
            in_preproc = line.endswith("\\")
            continue

        if in_block_comment:
            prev_significant = "//"
            if "*/" in line:
                in_block_comment = False
            continue

        if not line:
            continue

        code = strip_strings(line)
        # Drop trailing // comments before brace counting.
        code = re.sub(r"//.*$", "", code).strip()

        if line.startswith("/*"):
            prev_significant = "//"
            if "*/" not in line:
                in_block_comment = True
            continue

        at_ns_scope = all(kind == "ns" for kind in stack)
        starts_decl = (
            at_ns_scope
            and not in_statement
            and code
            and not line.startswith(SKIP_PREFIXES)
            and not NAMESPACE_LINE.match(code)
            and not FORWARD_DECL.match(line)
            and not MEMBER_DEF.match(line)
        )
        if starts_decl:
            documented = prev_significant.startswith(("///", "//", "*/"))
            if not documented:
                violations.append((lineno, line))
            in_statement = True

        # Track statement/brace structure.
        for ch in code:
            if ch == "{":
                is_ns = NAMESPACE_LINE.match(code) is not None
                stack.append("ns" if is_ns else "other")
            elif ch == "}":
                if stack:
                    stack.pop()
                in_statement = False
        if in_statement and all(k == "ns" for k in stack) \
                and code.endswith((";", "}")):
            in_statement = False

        prev_significant = line

    return violations


def main(argv):
    roots = [Path(p) for p in (argv[1:] or ["src"])]
    failures = 0
    for root in roots:
        for path in sorted(root.rglob("*.hpp")):
            for lineno, text in lint_file(path):
                print(f"{path}:{lineno}: undocumented namespace-scope "
                      f"declaration: {text}")
                failures += 1
    if failures:
        print(f"\ncheck_docs: {failures} undocumented declaration(s); "
              f"add a /// comment above each.")
        return 1
    print("check_docs: all namespace-scope declarations are documented.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
