#!/usr/bin/env python3
"""Render the paper's figures from bench CSV output.

Usage:
    mkdir -p out && for b in build/bench/fig*; do $b --csv out; done
    python3 scripts/plot_figures.py out

Produces one PNG per figure next to the CSVs. Requires matplotlib; the
benches themselves have no Python dependency — this script is optional
convenience for visual comparison against the paper's plots.
"""
import csv
import sys
from collections import defaultdict
from pathlib import Path

try:
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt
except ImportError:  # pragma: no cover - convenience script
    sys.exit("matplotlib not available; install it or read the CSVs directly")


def load(path):
    with open(path, newline="") as f:
        rows = list(csv.DictReader(f))
    return [{k: float(v) for k, v in row.items()} for row in rows]


def plot_workload(rows, title, out):
    fig, axes = plt.subplots(2, 2, figsize=(11, 8))
    metrics = [
        ("U_p", "Processor utilization U_p"),
        ("S_obs", "Network latency S_obs"),
        ("lambda_net", "Message rate lambda_net"),
        ("tol_network", "Tolerance index tol_network"),
    ]
    series = defaultdict(list)
    for r in rows:
        series[int(r["n_t"])].append(r)
    for ax, (key, label) in zip(axes.flat, metrics):
        for n_t, pts in sorted(series.items()):
            pts = sorted(pts, key=lambda r: r["p_remote"])
            ax.plot([p["p_remote"] for p in pts], [p[key] for p in pts],
                    marker="o", markersize=3, label=f"n_t={n_t}")
        ax.set_xlabel("p_remote")
        ax.set_ylabel(label)
        ax.grid(alpha=0.3)
    axes[0][0].legend(fontsize=7)
    fig.suptitle(title)
    fig.tight_layout()
    fig.savefig(out, dpi=130)
    plt.close(fig)


def plot_scaling(rows, out):
    fig, ax = plt.subplots(figsize=(8, 5))
    series = defaultdict(list)
    for r in rows:
        if r["R"] != 10.0:
            continue
        name = f"k={int(r['k'])} {'geo' if r['pattern'] else 'uni'}"
        series[name].append(r)
    for name, pts in sorted(series.items()):
        pts = sorted(pts, key=lambda r: r["n_t"])
        ax.plot([p["n_t"] for p in pts], [p["tol_network"] for p in pts],
                marker="o", markersize=3, label=name)
    ax.set_xlabel("threads per processor n_t")
    ax.set_ylabel("tol_network")
    ax.grid(alpha=0.3)
    ax.legend(fontsize=7, ncol=2)
    ax.set_title("Figure 9: tolerance vs machine size (R = 10)")
    fig.tight_layout()
    fig.savefig(out, dpi=130)
    plt.close(fig)


def main():
    directory = Path(sys.argv[1] if len(sys.argv) > 1 else ".")
    made = []
    for name, title in (("fig04", "Figure 4 (R = 10)"),
                        ("fig05", "Figure 5 (R = 20)")):
        src = directory / f"{name}.csv"
        if src.exists():
            dst = directory / f"{name}.png"
            plot_workload(load(src), title, dst)
            made.append(dst)
    src = directory / "fig09.csv"
    if src.exists():
        dst = directory / "fig09.png"
        plot_scaling(load(src), dst)
        made.append(dst)
    if not made:
        sys.exit(f"no fig*.csv found in {directory}; run the benches with "
                 "--csv first")
    for p in made:
        print(f"wrote {p}")


if __name__ == "__main__":
    main()
