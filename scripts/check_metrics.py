#!/usr/bin/env python3
"""Validate a latol metrics document against the documented schema.

Usage: check_metrics.py <metrics.json>
       check_metrics.py --prom <metrics.txt>

Checks the JSON written by `latol run/profile --metrics-out` (and the
smaller `analyze`/`sweep` variants) against DESIGN.md §9. With --prom,
checks a Prometheus text exposition scraped from the daemon's GET
/metrics instead (DESIGN.md §11): well-formed sample lines, a # TYPE
declaration per metric, counters named *_total / *_count, and the
always-present serve gauges. Standard library only, so CI can run it
without installing anything. Exits 0 when the document is valid, 1 with
a list of violations otherwise.
"""

import json
import re
import sys

FORMAT = "latol-metrics-v2"

STAGE_KEYS = ["expand_seconds", "solve_seconds", "validate_seconds",
              "wall_seconds"]
CACHE_KEYS = ["hits", "misses", "evictions", "preloaded"]
POINT_NUMBERS = ["iterations", "residual", "residual_history_length",
                 "littles_law_error", "flow_balance_error"]
POINT_FLAGS = ["converged", "degraded"]

errors = []


def fail(msg):
    errors.append(msg)


def require(obj, key, types, where):
    if not isinstance(obj, dict) or key not in obj:
        fail(f"{where}: missing `{key}`")
        return None
    value = obj[key]
    # bool is an int subclass in Python; never accept it where a number
    # is required, and only accept it where a flag is.
    if types is bool:
        if not isinstance(value, bool):
            fail(f"{where}.{key}: expected bool, got {type(value).__name__}")
            return None
    elif isinstance(value, bool) or not isinstance(value, types):
        fail(f"{where}.{key}: expected {types}, got {type(value).__name__}")
        return None
    return value


def check_point(point, where):
    require(point, "solver", str, where)
    for key in POINT_FLAGS:
        require(point, key, bool, where)
    for key in POINT_NUMBERS:
        require(point, key, (int, float), where)


def check_scenario_doc(doc):
    """The full document of `latol run/profile --metrics-out`."""
    require(doc, "scenario", str, "$")
    require(doc, "scenario_hash", str, "$")
    require(doc, "build", str, "$")
    stages = require(doc, "stages", dict, "$")
    if stages is not None:
        for key in STAGE_KEYS:
            require(stages, key, (int, float), "$.stages")
    cache = require(doc, "cache", dict, "$")
    if cache is not None:
        for key in CACHE_KEYS:
            require(cache, key, int, "$.cache")
    points = require(doc, "points", list, "$")
    if points is not None:
        for i, point in enumerate(points):
            where = f"$.points[{i}]"
            if not isinstance(point, dict):
                fail(f"{where}: expected object")
                continue
            require(point, "index", int, where)
            require(point, "cache_hit", bool, where)
            check_point(point, where)
    warnings = require(doc, "warnings", list, "$")
    if warnings is not None:
        for i, warning in enumerate(warnings):
            where = f"$.warnings[{i}]"
            if not isinstance(warning, dict):
                fail(f"{where}: expected object")
                continue
            require(warning, "point", int, where)
            require(warning, "message", str, where)
    if "registry" in doc:
        registry = doc["registry"]
        for section in ("counters", "gauges", "timers"):
            require(registry, section, dict, "$.registry")
        histograms = require(registry, "histograms", dict, "$.registry")
        if histograms is not None:
            for name, hist in histograms.items():
                check_histogram(hist, f"$.registry.histograms[{name}]")


def check_histogram(hist, where):
    """One log-bucket histogram: parallel `le`/`buckets` arrays where
    `le[i]` is the inclusive upper bound of `buckets[i]` (the final null
    bound is the overflow bucket), and the counts total `count`."""
    if not isinstance(hist, dict):
        fail(f"{where}: expected object")
        return
    count = require(hist, "count", (int, float), where)
    require(hist, "sum", (int, float), where)
    le = require(hist, "le", list, where)
    buckets = require(hist, "buckets", list, where)
    if le is None or buckets is None:
        return
    if len(le) != len(buckets):
        fail(f"{where}: le/buckets length mismatch "
             f"({len(le)} vs {len(buckets)})")
        return
    if not le or le[-1] is not None:
        fail(f"{where}: last `le` bound must be null (overflow bucket)")
    previous = 0.0
    for i, bound in enumerate(le[:-1]):
        if isinstance(bound, bool) or not isinstance(bound, (int, float)):
            fail(f"{where}.le[{i}]: expected number")
            return
        if bound <= previous:
            fail(f"{where}.le[{i}]: bounds must increase "
                 f"({bound} after {previous})")
        previous = bound
    total = 0
    for i, n in enumerate(buckets):
        if isinstance(n, bool) or not isinstance(n, (int, float)) or n < 0:
            fail(f"{where}.buckets[{i}]: expected non-negative count")
            return
        total += n
    if count is not None and total != count:
        fail(f"{where}: bucket counts total {total}, count says {count}")


def check_command_doc(doc, command):
    """The smaller documents of `latol analyze/sweep --metrics-out`."""
    require(doc, "build", str, "$")
    if command == "analyze":
        point = require(doc, "point", dict, "$")
        if point is not None:
            check_point(point, "$.point")
        require(doc, "warnings", list, "$")
    elif command == "sweep":
        points = require(doc, "points", list, "$")
        if points is not None:
            for i, point in enumerate(points):
                check_point(point, f"$.points[{i}]")
    else:
        fail(f"$.command: unknown command `{command}`")


PROM_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
# A histogram bucket sample: name{le="<bound>"} — the only label latol
# emits.
PROM_BUCKET = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)\{le="(?P<le>[^"]+)"\}$')
PROM_REQUIRED = ["latol_serve_queue_depth", "latol_serve_in_flight"]


def parse_prom_value(text):
    if text in ("NaN", "+Inf", "-Inf"):
        return 0.0
    return float(text)  # raises ValueError on junk


def histogram_base(name):
    """The declared histogram a series name belongs to, or None."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[:-len(suffix)]
    return None


def check_prom_text(text):
    """A Prometheus exposition from the daemon's GET /metrics."""
    declared = {}  # metric name -> TYPE
    sampled = set()
    hist_buckets = {}  # base -> last cumulative bucket value
    hist_counts = {}  # base -> value of base_count
    for lineno, line in enumerate(text.splitlines(), start=1):
        where = f"line {lineno}"
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    fail(f"{where}: malformed TYPE declaration")
                    continue
                _, _, name, kind = parts
                if not PROM_NAME.match(name):
                    fail(f"{where}: illegal metric name `{name}`")
                if kind not in ("counter", "gauge", "histogram"):
                    fail(f"{where}: unexpected metric type `{kind}`")
                if name in declared:
                    fail(f"{where}: duplicate TYPE for `{name}`")
                declared[name] = kind
            continue
        parts = line.split()
        if len(parts) != 2:
            fail(f"{where}: expected `name value`, got `{line}`")
            continue
        name, value = parts
        labels = None
        bucket = PROM_BUCKET.match(name)
        if bucket is not None:
            name = bucket.group("name")
            labels = bucket.group("le")
        if not PROM_NAME.match(name):
            fail(f"{where}: illegal metric name `{name}`")
            continue
        try:
            number = parse_prom_value(value)
        except ValueError:
            fail(f"{where}: `{name}` has non-numeric value `{value}`")
            continue
        sampled.add(name)
        base = histogram_base(name)
        if base is not None and declared.get(base) == "histogram":
            # Histogram series: buckets carry the le label and must be
            # cumulative; _sum/_count are bare.
            sampled.add(base)
            if name.endswith("_bucket"):
                if labels is None:
                    fail(f"{where}: `{name}` needs an le label")
                    continue
                if labels != "+Inf":
                    try:
                        float(labels)
                    except ValueError:
                        fail(f"{where}: `{name}` has bad le `{labels}`")
                previous = hist_buckets.get(base, 0.0)
                if number < previous:
                    fail(f"{where}: `{name}` buckets not cumulative "
                         f"({value} after {previous})")
                hist_buckets[base] = number
                if labels == "+Inf":
                    hist_counts.setdefault(base, None)
            elif name.endswith("_count"):
                hist_counts[base] = number
            continue
        if labels is not None:
            fail(f"{where}: unexpected label on `{name}`")
            continue
        if name not in declared:
            fail(f"{where}: `{name}` sampled without a TYPE declaration")
            continue
        if declared[name] == "counter":
            if not (name.endswith("_total") or name.endswith("_count")
                    or name.endswith("_seconds_total")):
                fail(f"{where}: counter `{name}` must end in _total/_count")
            if number < 0:
                fail(f"{where}: counter `{name}` is negative ({value})")
    for base, count in hist_counts.items():
        if count is not None and hist_buckets.get(base) != count:
            fail(f"histogram `{base}`: +Inf bucket "
                 f"{hist_buckets.get(base)} != count {count}")
    for name in declared:
        if name not in sampled:
            fail(f"TYPE declared for `{name}` but no sample followed")
    for name in PROM_REQUIRED:
        if name not in sampled:
            fail(f"required serve metric `{name}` is missing")


def main():
    if len(sys.argv) == 3 and sys.argv[1] == "--prom":
        try:
            with open(sys.argv[2], encoding="utf-8") as f:
                text = f.read()
        except OSError as e:
            print(f"check_metrics: cannot read {sys.argv[2]}: {e}",
                  file=sys.stderr)
            return 1
        check_prom_text(text)
        if errors:
            for error in errors:
                print(f"check_metrics: {error}", file=sys.stderr)
            print(f"check_metrics: {sys.argv[2]}: "
                  f"{len(errors)} violation(s)", file=sys.stderr)
            return 1
        print(f"check_metrics: {sys.argv[2]}: ok")
        return 0
    if len(sys.argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        with open(sys.argv[1], encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_metrics: cannot read {sys.argv[1]}: {e}",
              file=sys.stderr)
        return 1
    if not isinstance(doc, dict):
        print("check_metrics: document is not a JSON object",
              file=sys.stderr)
        return 1
    if doc.get("format") != FORMAT:
        fail(f"$.format: expected `{FORMAT}`, got `{doc.get('format')}`")
    elif "command" in doc:
        check_command_doc(doc, doc["command"])
    else:
        check_scenario_doc(doc)
    if errors:
        for error in errors:
            print(f"check_metrics: {error}", file=sys.stderr)
        print(f"check_metrics: {sys.argv[1]}: {len(errors)} violation(s)",
              file=sys.stderr)
        return 1
    print(f"check_metrics: {sys.argv[1]}: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
