// Capacity-planning use of the library: given a utilization target, find
// the largest remote-access fraction the machine tolerates, and the
// cheapest (slowest) switch that still meets the target — the kind of
// question the paper's introduction says the metric exists to answer.
//
//   ./build/examples/capacity_planner [target_U_p]
#include <cstdlib>
#include <iostream>

#include "core/latol.hpp"
#include "util/table.hpp"

namespace {

using latol::core::MmsConfig;

/// Largest x in [lo, hi] with pred(x) true, assuming pred is monotone
/// (true below, false above). Plain bisection to a 1e-3 interval.
template <typename Pred>
double bisect_max(double lo, double hi, const Pred& pred) {
  if (!pred(lo)) return lo;
  while (hi - lo > 1e-3) {
    const double mid = 0.5 * (lo + hi);
    (pred(mid) ? lo : hi) = mid;
  }
  return lo;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace latol;
  using namespace latol::core;

  const double target = argc > 1 ? std::atof(argv[1]) : 0.75;
  std::cout << "Capacity planning for U_p >= " << target
            << " on the default 4x4 machine.\n\n";

  // 1. How much remote traffic can each runlength sustain?
  util::Table table({"R", "max p_remote (model)", "critical p (Eq. 5)",
                     "saturation p (Eq. 4)"});
  for (const double R : {10.0, 20.0, 40.0}) {
    MmsConfig cfg = MmsConfig::paper_defaults();
    cfg.runlength = R;
    const double max_p = bisect_max(0.0, 1.0, [&](double p) {
      MmsConfig c = cfg;
      c.p_remote = p;
      return analyze(c).processor_utilization >= target;
    });
    const BottleneckAnalysis bn = bottleneck_analysis(cfg);
    table.add_row({util::Table::num(R, 0), util::Table::num(max_p, 3),
                   util::Table::num(bn.p_remote_critical, 3),
                   util::Table::num(bn.p_remote_sat, 3)});
  }
  std::cout << "(1) Largest tolerable remote fraction by runlength:\n"
            << table << '\n';

  // 2. How slow may the switches be before the target is missed?
  MmsConfig cfg = MmsConfig::paper_defaults();
  const double max_s = bisect_max(0.0, 100.0, [&](double s) {
    MmsConfig c = cfg;
    c.switch_delay = s;
    return analyze(c).processor_utilization >= target;
  });
  std::cout << "(2) Slowest switch meeting the target at defaults: S <= "
            << util::Table::num(max_s, 2) << " (baseline S = 10)\n\n";

  // 3. How many threads does the target need at the default workload?
  int needed = -1;
  for (int n_t = 1; n_t <= 64; ++n_t) {
    MmsConfig c = cfg;
    c.threads_per_processor = n_t;
    if (analyze(c).processor_utilization >= target) {
      needed = n_t;
      break;
    }
  }
  if (needed > 0) {
    std::cout << "(3) Threads needed at the default workload: n_t >= "
              << needed << '\n';
  } else {
    std::cout << "(3) No thread count up to 64 reaches the target; the "
                 "bottleneck is elsewhere (check tolerance indices).\n";
  }

  // 4. Which subsystem should be tuned first?
  const ToleranceResult net = tolerance_index(cfg, Subsystem::kNetwork);
  const ToleranceResult mem = tolerance_index(cfg, Subsystem::kMemory);
  std::cout << "\n(4) Bottleneck triage at defaults: tol_network = "
            << util::Table::num(net.index, 3) << " ("
            << zone_name(net.zone()) << "), tol_memory = "
            << util::Table::num(mem.index, 3) << " ("
            << zone_name(mem.zone()) << ")\n    -> tune the "
            << (net.index < mem.index ? "network" : "memory")
            << " subsystem first.\n";
  return 0;
}
