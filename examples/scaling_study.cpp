// Architect-style use of the library: how does a candidate machine behave
// as it scales from 2x2 to 10x10 nodes, and how much does data-placement
// locality buy (paper §7)?
//
//   ./build/examples/scaling_study [p_remote] [p_sw]
#include <cstdlib>
#include <iostream>

#include "core/latol.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace latol;
  using namespace latol::core;

  const double p_remote = argc > 1 ? std::atof(argv[1]) : 0.2;
  const double p_sw = argc > 2 ? std::atof(argv[2]) : 0.5;

  std::cout << "Scaling study at p_remote = " << p_remote
            << ", locality p_sw = " << p_sw
            << " (n_t = 8, R = 10, L = S = 10).\n\n";

  util::Table table({"k", "P", "pattern", "d_avg", "U_p", "P x U_p",
                     "S_obs", "L_obs", "tol_network"});
  for (const int k : {2, 4, 6, 8, 10}) {
    for (const auto pattern :
         {topo::AccessPattern::kGeometric, topo::AccessPattern::kUniform}) {
      MmsConfig cfg = MmsConfig::paper_defaults();
      cfg.k = k;
      cfg.p_remote = p_remote;
      cfg.traffic.pattern = pattern;
      cfg.traffic.p_sw = p_sw;
      const ToleranceResult t = tolerance_index(cfg, Subsystem::kNetwork);
      const MmsPerformance& perf = t.actual;
      table.add_row(
          {std::to_string(k), std::to_string(cfg.num_processors()),
           pattern == topo::AccessPattern::kGeometric ? "geometric"
                                                      : "uniform",
           util::Table::num(perf.average_distance, 3),
           util::Table::num(perf.processor_utilization, 4),
           util::Table::num(cfg.num_processors() *
                                perf.processor_utilization,
                            2),
           util::Table::num(perf.network_latency, 1),
           util::Table::num(perf.memory_latency, 1),
           util::Table::num(t.index, 3)});
    }
  }
  std::cout << table << '\n';

  // Where does the uniform pattern stop tolerating the network?
  std::cout << "Closed-form check (Eq. 4 saturation rate by size, uniform "
               "pattern):\n";
  for (const int k : {4, 10}) {
    MmsConfig cfg = MmsConfig::paper_defaults();
    cfg.k = k;
    cfg.p_remote = p_remote;
    cfg.traffic.pattern = topo::AccessPattern::kUniform;
    const BottleneckAnalysis bn = bottleneck_analysis(cfg);
    std::cout << "  k=" << k << ": d_avg=" << bn.d_avg
              << " -> lambda_net_sat=" << bn.lambda_net_sat
              << ", critical p_remote=" << bn.p_remote_critical << '\n';
  }
  std::cout << "\nTakeaway: with good locality the interconnect stops being "
               "the scaling limit;\nwith uniform placement the growing "
               "average distance starves the processors.\n";
  return 0;
}
