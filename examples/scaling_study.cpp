// Architect-style use of the library: how does a candidate machine behave
// as it scales from 2x2 to 10x10 nodes, and how much does data-placement
// locality buy (paper §7)?
//
// This version expresses the study as two declarative scenarios (one per
// access pattern — the pattern is a base setting, not a numeric axis) and
// runs both through the experiment engine with a shared solve cache.
//
//   ./build/examples/scaling_study [p_remote] [p_sw]
#include <cstdlib>
#include <iostream>

#include "core/latol.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "io/json.hpp"
#include "util/table.hpp"

namespace {

latol::exp::Scenario make_scenario(const std::string& pattern,
                                   double p_remote, double p_sw) {
  using latol::io::Json;
  Json values = Json::array();
  for (const int k : {2, 4, 6, 8, 10}) values.push_back(k);
  Json axis = Json::object();
  axis.set("param", "k");
  axis.set("values", std::move(values));
  Json axes = Json::array();
  axes.push_back(std::move(axis));

  Json base = Json::object();
  base.set("p_remote", p_remote);
  base.set("p_sw", p_sw);
  base.set("pattern", pattern);

  Json doc = Json::object();
  doc.set("name", "scaling_" + pattern);
  doc.set("base", std::move(base));
  doc.set("axes", std::move(axes));
  Json outputs = Json::object();
  outputs.set("network_tolerance", true);
  doc.set("outputs", std::move(outputs));
  return latol::exp::scenario_from_json(doc);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace latol;

  const double p_remote = argc > 1 ? std::atof(argv[1]) : 0.2;
  const double p_sw = argc > 2 ? std::atof(argv[2]) : 0.5;

  std::cout << "Scaling study at p_remote = " << p_remote
            << ", locality p_sw = " << p_sw
            << " (n_t = 8, R = 10, L = S = 10).\n\n";

  // One scenario per access pattern, solved through one shared cache.
  exp::SolveCache cache;
  exp::RunOptions opts;
  opts.cache = &cache;
  const exp::RunResult geometric =
      exp::run_scenario(make_scenario("geometric", p_remote, p_sw), opts);
  const exp::RunResult uniform =
      exp::run_scenario(make_scenario("uniform", p_remote, p_sw), opts);

  util::Table table({"k", "P", "pattern", "d_avg", "U_p", "P x U_p",
                     "S_obs", "L_obs", "tol_network"});
  for (std::size_t i = 0; i < geometric.points.size(); ++i) {
    for (const exp::RunResult* run : {&geometric, &uniform}) {
      const core::MmsConfig& cfg = run->grid[i];
      const core::MmsPerformance& perf = run->points[i].model.perf;
      table.add_row(
          {std::to_string(cfg.k), std::to_string(cfg.num_processors()),
           run == &geometric ? "geometric" : "uniform",
           util::Table::num(perf.average_distance, 3),
           util::Table::num(perf.processor_utilization, 4),
           util::Table::num(cfg.num_processors() *
                                perf.processor_utilization,
                            2),
           util::Table::num(perf.network_latency, 1),
           util::Table::num(perf.memory_latency, 1),
           util::Table::num(run->points[i].model.tol_network.value_or(0.0),
                            3)});
    }
  }
  std::cout << table << '\n';

  // Where does the uniform pattern stop tolerating the network?
  std::cout << "Closed-form check (Eq. 4 saturation rate by size, uniform "
               "pattern):\n";
  for (const int k : {4, 10}) {
    core::MmsConfig cfg = core::MmsConfig::paper_defaults();
    cfg.k = k;
    cfg.p_remote = p_remote;
    cfg.traffic.pattern = topo::AccessPattern::kUniform;
    const core::BottleneckAnalysis bn = core::bottleneck_analysis(cfg);
    std::cout << "  k=" << k << ": d_avg=" << bn.d_avg
              << " -> lambda_net_sat=" << bn.lambda_net_sat
              << ", critical p_remote=" << bn.p_remote_critical << '\n';
  }
  std::cout << "\nTakeaway: with good locality the interconnect stops being "
               "the scaling limit;\nwith uniform placement the growing "
               "average distance starves the processors.\n";
  return 0;
}
