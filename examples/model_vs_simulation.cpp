// Cross-checking the analytical model against both simulators on a
// user-chosen configuration — the §8 validation workflow as a tool.
//
//   ./build/examples/model_vs_simulation [k] [n_t] [p_remote]
#include <cstdlib>
#include <iostream>

#include "core/latol.hpp"
#include "sim/mms_des.hpp"
#include "sim/mms_petri.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace latol;
  using namespace latol::core;

  MmsConfig cfg = MmsConfig::paper_defaults();
  if (argc > 1) cfg.k = std::atoi(argv[1]);
  if (argc > 2) cfg.threads_per_processor = std::atoi(argv[2]);
  if (argc > 3) cfg.p_remote = std::atof(argv[3]);
  cfg.validate();

  std::cout << "Machine: " << cfg.k << "x" << cfg.k << ", n_t="
            << cfg.threads_per_processor << ", p_remote=" << cfg.p_remote
            << ". Simulations: 100k time units, 10% warmup.\n\n";

  const MmsPerformance model = analyze(cfg);
  std::string model_col = "AMVA model";
  if (!model.converged) {
    model_col += " [not converged]";
  } else if (model.degraded) {
    model_col += std::string(" [degraded: ") +
                 qn::solver_kind_name(model.solver) + "]";
  }

  sim::SimulationConfig des_cfg;
  des_cfg.mms = cfg;
  des_cfg.sim_time = 100000.0;
  des_cfg.seed = 17;
  const sim::SimulationResult des = sim::simulate_mms(des_cfg);

  const sim::PetriMmsResult stpn =
      sim::simulate_mms_petri(cfg, 100000.0, 0.1, 17);

  util::Table table({"measure", model_col, "DES", "STPN"});
  auto row = [&](const std::string& name, double m, double d, double p,
                 int prec) {
    table.add_row({name, util::Table::num(m, prec), util::Table::num(d, prec),
                   util::Table::num(p, prec)});
  };
  row("U_p", model.processor_utilization, des.processor_utilization,
      stpn.processor_utilization, 4);
  row("lambda (accesses/cycle)", model.access_rate, des.access_rate,
      stpn.access_rate, 5);
  row("lambda_net", model.message_rate, des.message_rate, stpn.message_rate,
      5);
  row("S_obs", model.network_latency, des.network_latency,
      stpn.network_latency, 2);
  row("L_obs", model.memory_latency, des.memory_latency, stpn.memory_latency,
      2);
  std::cout << table << '\n';
  std::cout << "DES 95% CI half-width on S_obs: "
            << util::Table::num(des.network_latency_hw95, 2) << " over "
            << des.remote_legs << " one-way legs.\n";
  return 0;
}
