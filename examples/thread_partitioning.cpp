// Compiler-style use of the library: given a do-all loop whose iterations
// expose a fixed amount of computation per processor, choose how many
// threads to fork and how much work each should carry (paper §5).
//
//   ./build/examples/thread_partitioning [work_budget] [p_remote]
#include <cstdlib>
#include <iostream>

#include "core/latol.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace latol;
  using namespace latol::core;

  const double work = argc > 1 ? std::atof(argv[1]) : 80.0;
  const double p_remote = argc > 2 ? std::atof(argv[2]) : 0.2;

  MmsConfig base = MmsConfig::paper_defaults();
  base.p_remote = p_remote;

  std::cout << "Partitioning a loop exposing " << work
            << " cycles of work per processor (p_remote = " << p_remote
            << ") on a " << base.k << "x" << base.k << " torus.\n\n";

  // Candidate splits: every thread count that divides the work sensibly.
  const std::vector<int> splits{1, 2, 4, 5, 8, 10, 16, 20};
  const auto points = evaluate_partitions(base, work, splits);

  util::Table table({"n_t", "R", "U_p", "tol_network", "tol_memory",
                     "S_obs", "L_obs", "verdict"});
  for (const PartitionPoint& pt : points) {
    const bool net_ok = pt.tol_network >= 0.8;
    const bool mem_ok = pt.tol_memory >= 0.8;
    table.add_row(
        {std::to_string(pt.n_t), util::Table::num(pt.runlength, 1),
         util::Table::num(pt.perf.processor_utilization, 4),
         util::Table::num(pt.tol_network, 3),
         util::Table::num(pt.tol_memory, 3),
         util::Table::num(pt.perf.network_latency, 1),
         util::Table::num(pt.perf.memory_latency, 1),
         net_ok && mem_ok ? "both latencies tolerated"
                          : (net_ok ? "memory is the bottleneck"
                                    : "network is the bottleneck")});
  }
  std::cout << table << '\n';

  const PartitionPoint best = best_partition(points);
  std::cout << "Recommendation: fork " << best.n_t
            << " threads of runlength " << best.runlength << " (U_p = "
            << util::Table::num(best.perf.processor_utilization, 4)
            << ").\n";
  std::cout << "This matches the paper's rule of thumb: with at least 2 "
               "threads to overlap,\nprefer longer runlengths over more "
               "threads.\n";
  return 0;
}
