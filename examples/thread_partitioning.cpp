// Compiler-style use of the library: given a do-all loop whose iterations
// expose a fixed amount of computation per processor, choose how many
// threads to fork and how much work each should carry (paper §5).
//
// This version drives the declarative experiment engine (exp::) instead
// of calling the solver loop by hand: the candidate splits become a
// zipped scenario axis (n_t and R varied in lockstep so n_t x R = work),
// and the batch runner computes both tolerance indices for every split —
// sharing the ideal-system solves through its cache.
//
//   ./build/examples/thread_partitioning [work_budget] [p_remote]
#include <cstdlib>
#include <iostream>

#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "io/json.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace latol;

  const double work = argc > 1 ? std::atof(argv[1]) : 80.0;
  const double p_remote = argc > 2 ? std::atof(argv[2]) : 0.2;

  // Candidate splits: every thread count that divides the work sensibly.
  const std::vector<int> splits{1, 2, 4, 5, 8, 10, 16, 20};

  // Describe the whole study as a scenario document — the same schema
  // `latol run` accepts from a file (DESIGN.md §8).
  io::Json threads = io::Json::array();
  io::Json runlengths = io::Json::array();
  for (const int n_t : splits) {
    threads.push_back(n_t);
    runlengths.push_back(work / n_t);
  }
  io::Json zip = io::Json::array();
  io::Json nt_comp = io::Json::object();
  nt_comp.set("param", "threads");
  nt_comp.set("values", std::move(threads));
  io::Json r_comp = io::Json::object();
  r_comp.set("param", "runlength");
  r_comp.set("values", std::move(runlengths));
  zip.push_back(std::move(nt_comp));
  zip.push_back(std::move(r_comp));
  io::Json axis = io::Json::object();
  axis.set("zip", std::move(zip));
  io::Json axes = io::Json::array();
  axes.push_back(std::move(axis));

  io::Json doc = io::Json::object();
  doc.set("name", "thread_partitioning");
  io::Json base = io::Json::object();
  base.set("p_remote", p_remote);
  doc.set("base", std::move(base));
  doc.set("axes", std::move(axes));
  io::Json outputs = io::Json::object();
  outputs.set("network_tolerance", true);
  outputs.set("memory_tolerance", true);
  doc.set("outputs", std::move(outputs));

  const exp::Scenario scenario = exp::scenario_from_json(doc);
  const exp::RunResult run = exp::run_scenario(scenario);

  const core::MmsConfig defaults = core::MmsConfig::paper_defaults();
  std::cout << "Partitioning a loop exposing " << work
            << " cycles of work per processor (p_remote = " << p_remote
            << ") on a " << defaults.k << "x" << defaults.k << " torus.\n\n";

  util::Table table({"n_t", "R", "U_p", "tol_network", "tol_memory",
                     "S_obs", "L_obs", "verdict"});
  const exp::PointResult* best = nullptr;
  for (std::size_t i = 0; i < run.points.size(); ++i) {
    const exp::PointResult& pt = run.points[i];
    const core::MmsConfig& cfg = run.grid[i];
    const double tol_net = pt.model.tol_network.value_or(0.0);
    const double tol_mem = pt.model.tol_memory.value_or(0.0);
    const bool net_ok = tol_net >= 0.8;
    const bool mem_ok = tol_mem >= 0.8;
    table.add_row(
        {std::to_string(cfg.threads_per_processor),
         util::Table::num(cfg.runlength, 1),
         util::Table::num(pt.model.perf.processor_utilization, 4),
         util::Table::num(tol_net, 3), util::Table::num(tol_mem, 3),
         util::Table::num(pt.model.perf.network_latency, 1),
         util::Table::num(pt.model.perf.memory_latency, 1),
         net_ok && mem_ok ? "both latencies tolerated"
                          : (net_ok ? "memory is the bottleneck"
                                    : "network is the bottleneck")});
    if (best == nullptr ||
        pt.model.perf.processor_utilization >
            best->model.perf.processor_utilization + 1e-12) {
      best = &pt;
    }
  }
  std::cout << table << '\n';

  const std::size_t best_idx = best - run.points.data();
  std::cout << "Recommendation: fork "
            << run.grid[best_idx].threads_per_processor
            << " threads of runlength " << run.grid[best_idx].runlength
            << " (U_p = "
            << util::Table::num(best->model.perf.processor_utilization, 4)
            << ").\n";
  std::cout << "This matches the paper's rule of thumb: with at least 2 "
               "threads to overlap,\nprefer longer runlengths over more "
               "threads.\n";
  std::cout << "(batch run: " << run.stats.grid_points << " splits, "
            << run.stats.solves << " solves, " << run.stats.cache_hits
            << " cache hits, " << run.stats.degraded_points
            << " degraded)\n";
  return 0;
}
