// Asymmetric-workload extension: shared data concentrated on one node.
//
// The paper's model assumes SPMD symmetry; the underlying multi-class CQN
// does not. This example redirects a fraction of every node's remote
// accesses to a single hotspot node and reports per-node performance —
// exactly the "which subsystem should be tuned" question the tolerance
// index was designed for, now with a spatial answer.
//
//   ./build/examples/hotspot_study [hotspot_fraction]
#include <cstdlib>
#include <iostream>

#include "core/latol.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace latol;
  using namespace latol::core;

  const double fraction = argc > 1 ? std::atof(argv[1]) : 0.5;
  MmsConfig cfg = MmsConfig::paper_defaults();
  cfg.traffic.hotspot_node = 0;
  cfg.traffic.hotspot_fraction = fraction;

  std::cout << "Hotspot study: " << fraction * 100
            << "% of remote accesses target node 0 on a " << cfg.k << "x"
            << cfg.k << " torus (n_t = " << cfg.threads_per_processor
            << ", R = " << cfg.runlength << ", p_remote = " << cfg.p_remote
            << ").\n\n";

  const MmsModel model(cfg);
  const auto per_node = analyze_per_node(cfg);

  util::Table table({"node", "dist(hot)", "U_p", "S_obs", "L_obs",
                     "rho(local mem)", "d_avg(src)"});
  for (int n = 0; n < cfg.num_processors(); ++n) {
    const MmsPerformance& perf = per_node[static_cast<std::size_t>(n)];
    table.add_row({std::to_string(n),
                   std::to_string(model.topology().distance(0, n)),
                   util::Table::num(perf.processor_utilization, 4),
                   util::Table::num(perf.network_latency, 1),
                   util::Table::num(perf.memory_latency, 1),
                   util::Table::num(perf.memory_utilization, 3),
                   util::Table::num(perf.average_distance, 3)});
  }
  std::cout << table << '\n';

  // Compare against the symmetric baseline.
  MmsConfig base = cfg;
  base.traffic.hotspot_node = -1;
  base.traffic.hotspot_fraction = 0.0;
  const MmsPerformance symmetric = analyze(base);
  double worst = 2.0, best = 0.0;
  for (const auto& perf : per_node) {
    worst = std::min(worst, perf.processor_utilization);
    best = std::max(best, perf.processor_utilization);
  }
  std::cout << "Symmetric baseline U_p = "
            << util::Table::num(symmetric.processor_utilization, 4)
            << "; with the hotspot, per-node U_p spans ["
            << util::Table::num(worst, 4) << ", " << util::Table::num(best, 4)
            << "].\n"
            << "The hotspot memory module saturates first (rho above); the "
               "fix the paper suggests\nfor such bottlenecks is "
               "multiporting/pipelining the memory or redistributing data.\n";
  return 0;
}
