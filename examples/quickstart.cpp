// Quickstart: analyze the paper's default machine and print every headline
// measure, the bottleneck closed forms, and both tolerance indices.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "core/latol.hpp"
#include "util/table.hpp"

int main() {
  using namespace latol;

  // The paper's Table 1 defaults: 4x4 torus, n_t = 8 threads/processor,
  // R = 10, p_remote = 0.2, geometric locality p_sw = 0.5, L = S = 10.
  core::MmsConfig cfg = core::MmsConfig::paper_defaults();

  std::cout << "Machine: " << cfg.k << "x" << cfg.k << " torus, n_t="
            << cfg.threads_per_processor << ", R=" << cfg.runlength
            << ", p_remote=" << cfg.p_remote << ", L=" << cfg.memory_latency
            << ", S=" << cfg.switch_delay << "\n\n";

  // Closed-form bottleneck constants (Eqs. 4-5).
  const core::BottleneckAnalysis bn = core::bottleneck_analysis(cfg);
  std::cout << "d_avg                     = " << bn.d_avg << '\n'
            << "lambda_net saturation     = " << bn.lambda_net_sat
            << "  (Eq. 4; paper: 0.029)\n"
            << "p_remote at IN saturation = " << bn.p_remote_sat
            << "  (paper: ~0.3 at R=10)\n"
            << "critical p_remote         = " << bn.p_remote_critical
            << "  (Eq. 5; paper: ~0.18 at R=10)\n"
            << "unloaded one-way S_obs    = " << bn.unloaded_one_way << "\n\n";

  // Solve the closed queueing network with AMVA.
  const core::MmsPerformance perf = core::analyze(cfg);
  std::cout << "U_p (processor utilization) = " << perf.processor_utilization
            << '\n'
            << "lambda (access rate)        = " << perf.access_rate << '\n'
            << "lambda_net (message rate)   = " << perf.message_rate << '\n'
            << "S_obs (network latency)     = " << perf.network_latency << '\n'
            << "L_obs (memory latency)      = " << perf.memory_latency << '\n'
            << "memory utilization          = " << perf.memory_utilization
            << "\n\n";

  // The tolerance index: how close is this system to one whose network /
  // memory responds instantly?
  const core::ToleranceResult net =
      core::tolerance_index(cfg, core::Subsystem::kNetwork);
  const core::ToleranceResult mem =
      core::tolerance_index(cfg, core::Subsystem::kMemory);
  std::cout << "tol_network = " << net.index << "  ("
            << core::zone_name(net.zone()) << ")\n"
            << "tol_memory  = " << mem.index << "  ("
            << core::zone_name(mem.zone()) << ")\n";
  return 0;
}
