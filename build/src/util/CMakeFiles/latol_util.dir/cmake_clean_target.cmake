file(REMOVE_RECURSE
  "liblatol_util.a"
)
