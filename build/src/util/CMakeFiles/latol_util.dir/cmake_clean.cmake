file(REMOVE_RECURSE
  "CMakeFiles/latol_util.dir/csv.cpp.o"
  "CMakeFiles/latol_util.dir/csv.cpp.o.d"
  "CMakeFiles/latol_util.dir/table.cpp.o"
  "CMakeFiles/latol_util.dir/table.cpp.o.d"
  "CMakeFiles/latol_util.dir/thread_pool.cpp.o"
  "CMakeFiles/latol_util.dir/thread_pool.cpp.o.d"
  "liblatol_util.a"
  "liblatol_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latol_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
