# Empty compiler generated dependencies file for latol_util.
# This may be replaced when dependencies are built.
