file(REMOVE_RECURSE
  "CMakeFiles/latol_cli_lib.dir/commands.cpp.o"
  "CMakeFiles/latol_cli_lib.dir/commands.cpp.o.d"
  "CMakeFiles/latol_cli_lib.dir/options.cpp.o"
  "CMakeFiles/latol_cli_lib.dir/options.cpp.o.d"
  "liblatol_cli_lib.a"
  "liblatol_cli_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latol_cli_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
