# Empty dependencies file for latol_cli_lib.
# This may be replaced when dependencies are built.
