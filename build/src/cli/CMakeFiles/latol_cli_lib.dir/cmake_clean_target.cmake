file(REMOVE_RECURSE
  "liblatol_cli_lib.a"
)
