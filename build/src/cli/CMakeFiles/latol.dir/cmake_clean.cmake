file(REMOVE_RECURSE
  "CMakeFiles/latol.dir/main.cpp.o"
  "CMakeFiles/latol.dir/main.cpp.o.d"
  "latol"
  "latol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
