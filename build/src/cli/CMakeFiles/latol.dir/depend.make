# Empty dependencies file for latol.
# This may be replaced when dependencies are built.
