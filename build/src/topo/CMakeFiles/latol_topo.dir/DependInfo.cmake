
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/hypercube.cpp" "src/topo/CMakeFiles/latol_topo.dir/hypercube.cpp.o" "gcc" "src/topo/CMakeFiles/latol_topo.dir/hypercube.cpp.o.d"
  "/root/repo/src/topo/mesh.cpp" "src/topo/CMakeFiles/latol_topo.dir/mesh.cpp.o" "gcc" "src/topo/CMakeFiles/latol_topo.dir/mesh.cpp.o.d"
  "/root/repo/src/topo/ring.cpp" "src/topo/CMakeFiles/latol_topo.dir/ring.cpp.o" "gcc" "src/topo/CMakeFiles/latol_topo.dir/ring.cpp.o.d"
  "/root/repo/src/topo/topology.cpp" "src/topo/CMakeFiles/latol_topo.dir/topology.cpp.o" "gcc" "src/topo/CMakeFiles/latol_topo.dir/topology.cpp.o.d"
  "/root/repo/src/topo/torus.cpp" "src/topo/CMakeFiles/latol_topo.dir/torus.cpp.o" "gcc" "src/topo/CMakeFiles/latol_topo.dir/torus.cpp.o.d"
  "/root/repo/src/topo/traffic.cpp" "src/topo/CMakeFiles/latol_topo.dir/traffic.cpp.o" "gcc" "src/topo/CMakeFiles/latol_topo.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/latol_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
