# Empty compiler generated dependencies file for latol_topo.
# This may be replaced when dependencies are built.
