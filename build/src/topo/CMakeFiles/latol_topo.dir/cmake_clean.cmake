file(REMOVE_RECURSE
  "CMakeFiles/latol_topo.dir/hypercube.cpp.o"
  "CMakeFiles/latol_topo.dir/hypercube.cpp.o.d"
  "CMakeFiles/latol_topo.dir/mesh.cpp.o"
  "CMakeFiles/latol_topo.dir/mesh.cpp.o.d"
  "CMakeFiles/latol_topo.dir/ring.cpp.o"
  "CMakeFiles/latol_topo.dir/ring.cpp.o.d"
  "CMakeFiles/latol_topo.dir/topology.cpp.o"
  "CMakeFiles/latol_topo.dir/topology.cpp.o.d"
  "CMakeFiles/latol_topo.dir/torus.cpp.o"
  "CMakeFiles/latol_topo.dir/torus.cpp.o.d"
  "CMakeFiles/latol_topo.dir/traffic.cpp.o"
  "CMakeFiles/latol_topo.dir/traffic.cpp.o.d"
  "liblatol_topo.a"
  "liblatol_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latol_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
