file(REMOVE_RECURSE
  "liblatol_topo.a"
)
