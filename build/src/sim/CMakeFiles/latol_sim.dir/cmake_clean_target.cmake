file(REMOVE_RECURSE
  "liblatol_sim.a"
)
