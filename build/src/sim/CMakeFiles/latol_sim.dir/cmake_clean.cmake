file(REMOVE_RECURSE
  "CMakeFiles/latol_sim.dir/des.cpp.o"
  "CMakeFiles/latol_sim.dir/des.cpp.o.d"
  "CMakeFiles/latol_sim.dir/fcfs_server.cpp.o"
  "CMakeFiles/latol_sim.dir/fcfs_server.cpp.o.d"
  "CMakeFiles/latol_sim.dir/mms_des.cpp.o"
  "CMakeFiles/latol_sim.dir/mms_des.cpp.o.d"
  "CMakeFiles/latol_sim.dir/mms_petri.cpp.o"
  "CMakeFiles/latol_sim.dir/mms_petri.cpp.o.d"
  "CMakeFiles/latol_sim.dir/petri.cpp.o"
  "CMakeFiles/latol_sim.dir/petri.cpp.o.d"
  "CMakeFiles/latol_sim.dir/stats.cpp.o"
  "CMakeFiles/latol_sim.dir/stats.cpp.o.d"
  "liblatol_sim.a"
  "liblatol_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latol_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
