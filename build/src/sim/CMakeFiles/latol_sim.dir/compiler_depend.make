# Empty compiler generated dependencies file for latol_sim.
# This may be replaced when dependencies are built.
