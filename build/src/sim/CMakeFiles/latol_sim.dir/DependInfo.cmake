
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/des.cpp" "src/sim/CMakeFiles/latol_sim.dir/des.cpp.o" "gcc" "src/sim/CMakeFiles/latol_sim.dir/des.cpp.o.d"
  "/root/repo/src/sim/fcfs_server.cpp" "src/sim/CMakeFiles/latol_sim.dir/fcfs_server.cpp.o" "gcc" "src/sim/CMakeFiles/latol_sim.dir/fcfs_server.cpp.o.d"
  "/root/repo/src/sim/mms_des.cpp" "src/sim/CMakeFiles/latol_sim.dir/mms_des.cpp.o" "gcc" "src/sim/CMakeFiles/latol_sim.dir/mms_des.cpp.o.d"
  "/root/repo/src/sim/mms_petri.cpp" "src/sim/CMakeFiles/latol_sim.dir/mms_petri.cpp.o" "gcc" "src/sim/CMakeFiles/latol_sim.dir/mms_petri.cpp.o.d"
  "/root/repo/src/sim/petri.cpp" "src/sim/CMakeFiles/latol_sim.dir/petri.cpp.o" "gcc" "src/sim/CMakeFiles/latol_sim.dir/petri.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/sim/CMakeFiles/latol_sim.dir/stats.cpp.o" "gcc" "src/sim/CMakeFiles/latol_sim.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/latol_core.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/latol_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/latol_util.dir/DependInfo.cmake"
  "/root/repo/build/src/qn/CMakeFiles/latol_qn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
