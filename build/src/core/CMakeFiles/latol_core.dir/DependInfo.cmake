
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bottleneck.cpp" "src/core/CMakeFiles/latol_core.dir/bottleneck.cpp.o" "gcc" "src/core/CMakeFiles/latol_core.dir/bottleneck.cpp.o.d"
  "/root/repo/src/core/mms_config.cpp" "src/core/CMakeFiles/latol_core.dir/mms_config.cpp.o" "gcc" "src/core/CMakeFiles/latol_core.dir/mms_config.cpp.o.d"
  "/root/repo/src/core/mms_model.cpp" "src/core/CMakeFiles/latol_core.dir/mms_model.cpp.o" "gcc" "src/core/CMakeFiles/latol_core.dir/mms_model.cpp.o.d"
  "/root/repo/src/core/sweep.cpp" "src/core/CMakeFiles/latol_core.dir/sweep.cpp.o" "gcc" "src/core/CMakeFiles/latol_core.dir/sweep.cpp.o.d"
  "/root/repo/src/core/thread_partition.cpp" "src/core/CMakeFiles/latol_core.dir/thread_partition.cpp.o" "gcc" "src/core/CMakeFiles/latol_core.dir/thread_partition.cpp.o.d"
  "/root/repo/src/core/tolerance.cpp" "src/core/CMakeFiles/latol_core.dir/tolerance.cpp.o" "gcc" "src/core/CMakeFiles/latol_core.dir/tolerance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/qn/CMakeFiles/latol_qn.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/latol_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/latol_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
