# Empty compiler generated dependencies file for latol_core.
# This may be replaced when dependencies are built.
