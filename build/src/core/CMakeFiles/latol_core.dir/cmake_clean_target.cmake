file(REMOVE_RECURSE
  "liblatol_core.a"
)
