file(REMOVE_RECURSE
  "CMakeFiles/latol_core.dir/bottleneck.cpp.o"
  "CMakeFiles/latol_core.dir/bottleneck.cpp.o.d"
  "CMakeFiles/latol_core.dir/mms_config.cpp.o"
  "CMakeFiles/latol_core.dir/mms_config.cpp.o.d"
  "CMakeFiles/latol_core.dir/mms_model.cpp.o"
  "CMakeFiles/latol_core.dir/mms_model.cpp.o.d"
  "CMakeFiles/latol_core.dir/sweep.cpp.o"
  "CMakeFiles/latol_core.dir/sweep.cpp.o.d"
  "CMakeFiles/latol_core.dir/thread_partition.cpp.o"
  "CMakeFiles/latol_core.dir/thread_partition.cpp.o.d"
  "CMakeFiles/latol_core.dir/tolerance.cpp.o"
  "CMakeFiles/latol_core.dir/tolerance.cpp.o.d"
  "liblatol_core.a"
  "liblatol_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latol_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
