file(REMOVE_RECURSE
  "liblatol_qn.a"
)
