# Empty dependencies file for latol_qn.
# This may be replaced when dependencies are built.
