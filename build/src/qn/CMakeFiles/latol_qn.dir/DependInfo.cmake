
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qn/convolution.cpp" "src/qn/CMakeFiles/latol_qn.dir/convolution.cpp.o" "gcc" "src/qn/CMakeFiles/latol_qn.dir/convolution.cpp.o.d"
  "/root/repo/src/qn/ctmc.cpp" "src/qn/CMakeFiles/latol_qn.dir/ctmc.cpp.o" "gcc" "src/qn/CMakeFiles/latol_qn.dir/ctmc.cpp.o.d"
  "/root/repo/src/qn/mva_approx.cpp" "src/qn/CMakeFiles/latol_qn.dir/mva_approx.cpp.o" "gcc" "src/qn/CMakeFiles/latol_qn.dir/mva_approx.cpp.o.d"
  "/root/repo/src/qn/mva_exact.cpp" "src/qn/CMakeFiles/latol_qn.dir/mva_exact.cpp.o" "gcc" "src/qn/CMakeFiles/latol_qn.dir/mva_exact.cpp.o.d"
  "/root/repo/src/qn/mva_linearizer.cpp" "src/qn/CMakeFiles/latol_qn.dir/mva_linearizer.cpp.o" "gcc" "src/qn/CMakeFiles/latol_qn.dir/mva_linearizer.cpp.o.d"
  "/root/repo/src/qn/network.cpp" "src/qn/CMakeFiles/latol_qn.dir/network.cpp.o" "gcc" "src/qn/CMakeFiles/latol_qn.dir/network.cpp.o.d"
  "/root/repo/src/qn/robust.cpp" "src/qn/CMakeFiles/latol_qn.dir/robust.cpp.o" "gcc" "src/qn/CMakeFiles/latol_qn.dir/robust.cpp.o.d"
  "/root/repo/src/qn/routing.cpp" "src/qn/CMakeFiles/latol_qn.dir/routing.cpp.o" "gcc" "src/qn/CMakeFiles/latol_qn.dir/routing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/latol_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
