file(REMOVE_RECURSE
  "CMakeFiles/latol_qn.dir/convolution.cpp.o"
  "CMakeFiles/latol_qn.dir/convolution.cpp.o.d"
  "CMakeFiles/latol_qn.dir/ctmc.cpp.o"
  "CMakeFiles/latol_qn.dir/ctmc.cpp.o.d"
  "CMakeFiles/latol_qn.dir/mva_approx.cpp.o"
  "CMakeFiles/latol_qn.dir/mva_approx.cpp.o.d"
  "CMakeFiles/latol_qn.dir/mva_exact.cpp.o"
  "CMakeFiles/latol_qn.dir/mva_exact.cpp.o.d"
  "CMakeFiles/latol_qn.dir/mva_linearizer.cpp.o"
  "CMakeFiles/latol_qn.dir/mva_linearizer.cpp.o.d"
  "CMakeFiles/latol_qn.dir/network.cpp.o"
  "CMakeFiles/latol_qn.dir/network.cpp.o.d"
  "CMakeFiles/latol_qn.dir/robust.cpp.o"
  "CMakeFiles/latol_qn.dir/robust.cpp.o.d"
  "CMakeFiles/latol_qn.dir/routing.cpp.o"
  "CMakeFiles/latol_qn.dir/routing.cpp.o.d"
  "liblatol_qn.a"
  "liblatol_qn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latol_qn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
