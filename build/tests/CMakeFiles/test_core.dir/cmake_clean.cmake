file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/bottleneck_test.cpp.o"
  "CMakeFiles/test_core.dir/core/bottleneck_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/mms_config_test.cpp.o"
  "CMakeFiles/test_core.dir/core/mms_config_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/mms_model_test.cpp.o"
  "CMakeFiles/test_core.dir/core/mms_model_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/monotonicity_test.cpp.o"
  "CMakeFiles/test_core.dir/core/monotonicity_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/paper_results_test.cpp.o"
  "CMakeFiles/test_core.dir/core/paper_results_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/sweep_test.cpp.o"
  "CMakeFiles/test_core.dir/core/sweep_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/thread_partition_test.cpp.o"
  "CMakeFiles/test_core.dir/core/thread_partition_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/tolerance_test.cpp.o"
  "CMakeFiles/test_core.dir/core/tolerance_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
