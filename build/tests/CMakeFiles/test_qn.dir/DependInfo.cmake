
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/qn/convolution_test.cpp" "tests/CMakeFiles/test_qn.dir/qn/convolution_test.cpp.o" "gcc" "tests/CMakeFiles/test_qn.dir/qn/convolution_test.cpp.o.d"
  "/root/repo/tests/qn/ctmc_test.cpp" "tests/CMakeFiles/test_qn.dir/qn/ctmc_test.cpp.o" "gcc" "tests/CMakeFiles/test_qn.dir/qn/ctmc_test.cpp.o.d"
  "/root/repo/tests/qn/multiserver_test.cpp" "tests/CMakeFiles/test_qn.dir/qn/multiserver_test.cpp.o" "gcc" "tests/CMakeFiles/test_qn.dir/qn/multiserver_test.cpp.o.d"
  "/root/repo/tests/qn/mva_approx_test.cpp" "tests/CMakeFiles/test_qn.dir/qn/mva_approx_test.cpp.o" "gcc" "tests/CMakeFiles/test_qn.dir/qn/mva_approx_test.cpp.o.d"
  "/root/repo/tests/qn/mva_exact_test.cpp" "tests/CMakeFiles/test_qn.dir/qn/mva_exact_test.cpp.o" "gcc" "tests/CMakeFiles/test_qn.dir/qn/mva_exact_test.cpp.o.d"
  "/root/repo/tests/qn/mva_linearizer_test.cpp" "tests/CMakeFiles/test_qn.dir/qn/mva_linearizer_test.cpp.o" "gcc" "tests/CMakeFiles/test_qn.dir/qn/mva_linearizer_test.cpp.o.d"
  "/root/repo/tests/qn/network_test.cpp" "tests/CMakeFiles/test_qn.dir/qn/network_test.cpp.o" "gcc" "tests/CMakeFiles/test_qn.dir/qn/network_test.cpp.o.d"
  "/root/repo/tests/qn/robust_solve_test.cpp" "tests/CMakeFiles/test_qn.dir/qn/robust_solve_test.cpp.o" "gcc" "tests/CMakeFiles/test_qn.dir/qn/robust_solve_test.cpp.o.d"
  "/root/repo/tests/qn/robustness_test.cpp" "tests/CMakeFiles/test_qn.dir/qn/robustness_test.cpp.o" "gcc" "tests/CMakeFiles/test_qn.dir/qn/robustness_test.cpp.o.d"
  "/root/repo/tests/qn/routing_test.cpp" "tests/CMakeFiles/test_qn.dir/qn/routing_test.cpp.o" "gcc" "tests/CMakeFiles/test_qn.dir/qn/routing_test.cpp.o.d"
  "/root/repo/tests/qn/solver_agreement_test.cpp" "tests/CMakeFiles/test_qn.dir/qn/solver_agreement_test.cpp.o" "gcc" "tests/CMakeFiles/test_qn.dir/qn/solver_agreement_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/latol_core.dir/DependInfo.cmake"
  "/root/repo/build/src/qn/CMakeFiles/latol_qn.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/latol_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/latol_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/latol_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
