file(REMOVE_RECURSE
  "CMakeFiles/test_qn.dir/qn/convolution_test.cpp.o"
  "CMakeFiles/test_qn.dir/qn/convolution_test.cpp.o.d"
  "CMakeFiles/test_qn.dir/qn/ctmc_test.cpp.o"
  "CMakeFiles/test_qn.dir/qn/ctmc_test.cpp.o.d"
  "CMakeFiles/test_qn.dir/qn/multiserver_test.cpp.o"
  "CMakeFiles/test_qn.dir/qn/multiserver_test.cpp.o.d"
  "CMakeFiles/test_qn.dir/qn/mva_approx_test.cpp.o"
  "CMakeFiles/test_qn.dir/qn/mva_approx_test.cpp.o.d"
  "CMakeFiles/test_qn.dir/qn/mva_exact_test.cpp.o"
  "CMakeFiles/test_qn.dir/qn/mva_exact_test.cpp.o.d"
  "CMakeFiles/test_qn.dir/qn/mva_linearizer_test.cpp.o"
  "CMakeFiles/test_qn.dir/qn/mva_linearizer_test.cpp.o.d"
  "CMakeFiles/test_qn.dir/qn/network_test.cpp.o"
  "CMakeFiles/test_qn.dir/qn/network_test.cpp.o.d"
  "CMakeFiles/test_qn.dir/qn/robust_solve_test.cpp.o"
  "CMakeFiles/test_qn.dir/qn/robust_solve_test.cpp.o.d"
  "CMakeFiles/test_qn.dir/qn/robustness_test.cpp.o"
  "CMakeFiles/test_qn.dir/qn/robustness_test.cpp.o.d"
  "CMakeFiles/test_qn.dir/qn/routing_test.cpp.o"
  "CMakeFiles/test_qn.dir/qn/routing_test.cpp.o.d"
  "CMakeFiles/test_qn.dir/qn/solver_agreement_test.cpp.o"
  "CMakeFiles/test_qn.dir/qn/solver_agreement_test.cpp.o.d"
  "test_qn"
  "test_qn.pdb"
  "test_qn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
