# Empty compiler generated dependencies file for test_qn.
# This may be replaced when dependencies are built.
