
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/des_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/des_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/des_test.cpp.o.d"
  "/root/repo/tests/sim/fcfs_server_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/fcfs_server_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/fcfs_server_test.cpp.o.d"
  "/root/repo/tests/sim/mms_des_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/mms_des_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/mms_des_test.cpp.o.d"
  "/root/repo/tests/sim/mms_petri_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/mms_petri_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/mms_petri_test.cpp.o.d"
  "/root/repo/tests/sim/petri_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/petri_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/petri_test.cpp.o.d"
  "/root/repo/tests/sim/petri_vs_ctmc_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/petri_vs_ctmc_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/petri_vs_ctmc_test.cpp.o.d"
  "/root/repo/tests/sim/rng_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/rng_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/rng_test.cpp.o.d"
  "/root/repo/tests/sim/stats_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/stats_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/stats_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/latol_core.dir/DependInfo.cmake"
  "/root/repo/build/src/qn/CMakeFiles/latol_qn.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/latol_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/latol_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/latol_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
