file(REMOVE_RECURSE
  "CMakeFiles/model_vs_simulation.dir/model_vs_simulation.cpp.o"
  "CMakeFiles/model_vs_simulation.dir/model_vs_simulation.cpp.o.d"
  "model_vs_simulation"
  "model_vs_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_vs_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
