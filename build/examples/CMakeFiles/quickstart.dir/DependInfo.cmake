
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/latol_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/latol_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/latol_util.dir/DependInfo.cmake"
  "/root/repo/build/src/qn/CMakeFiles/latol_qn.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/latol_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
