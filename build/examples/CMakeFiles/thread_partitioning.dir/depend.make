# Empty dependencies file for thread_partitioning.
# This may be replaced when dependencies are built.
