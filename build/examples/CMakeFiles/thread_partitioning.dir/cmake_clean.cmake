file(REMOVE_RECURSE
  "CMakeFiles/thread_partitioning.dir/thread_partitioning.cpp.o"
  "CMakeFiles/thread_partitioning.dir/thread_partitioning.cpp.o.d"
  "thread_partitioning"
  "thread_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thread_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
