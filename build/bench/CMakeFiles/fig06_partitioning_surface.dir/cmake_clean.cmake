file(REMOVE_RECURSE
  "CMakeFiles/fig06_partitioning_surface.dir/fig06_partitioning_surface.cpp.o"
  "CMakeFiles/fig06_partitioning_surface.dir/fig06_partitioning_surface.cpp.o.d"
  "fig06_partitioning_surface"
  "fig06_partitioning_surface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_partitioning_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
