# Empty dependencies file for fig06_partitioning_surface.
# This may be replaced when dependencies are built.
