file(REMOVE_RECURSE
  "CMakeFiles/perf_mva.dir/perf_mva.cpp.o"
  "CMakeFiles/perf_mva.dir/perf_mva.cpp.o.d"
  "perf_mva"
  "perf_mva.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_mva.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
