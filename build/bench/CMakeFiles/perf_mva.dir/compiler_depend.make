# Empty compiler generated dependencies file for perf_mva.
# This may be replaced when dependencies are built.
