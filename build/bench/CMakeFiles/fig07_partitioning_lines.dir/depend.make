# Empty dependencies file for fig07_partitioning_lines.
# This may be replaced when dependencies are built.
