file(REMOVE_RECURSE
  "CMakeFiles/fig07_partitioning_lines.dir/fig07_partitioning_lines.cpp.o"
  "CMakeFiles/fig07_partitioning_lines.dir/fig07_partitioning_lines.cpp.o.d"
  "fig07_partitioning_lines"
  "fig07_partitioning_lines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_partitioning_lines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
