file(REMOVE_RECURSE
  "CMakeFiles/table4_memory_partitioning.dir/table4_memory_partitioning.cpp.o"
  "CMakeFiles/table4_memory_partitioning.dir/table4_memory_partitioning.cpp.o.d"
  "table4_memory_partitioning"
  "table4_memory_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_memory_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
