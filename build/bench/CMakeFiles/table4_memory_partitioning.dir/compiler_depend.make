# Empty compiler generated dependencies file for table4_memory_partitioning.
# This may be replaced when dependencies are built.
