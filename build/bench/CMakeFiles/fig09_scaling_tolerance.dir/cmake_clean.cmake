file(REMOVE_RECURSE
  "CMakeFiles/fig09_scaling_tolerance.dir/fig09_scaling_tolerance.cpp.o"
  "CMakeFiles/fig09_scaling_tolerance.dir/fig09_scaling_tolerance.cpp.o.d"
  "fig09_scaling_tolerance"
  "fig09_scaling_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_scaling_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
