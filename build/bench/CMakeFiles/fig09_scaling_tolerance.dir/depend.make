# Empty dependencies file for fig09_scaling_tolerance.
# This may be replaced when dependencies are built.
