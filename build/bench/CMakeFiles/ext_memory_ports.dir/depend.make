# Empty dependencies file for ext_memory_ports.
# This may be replaced when dependencies are built.
