file(REMOVE_RECURSE
  "CMakeFiles/ext_memory_ports.dir/ext_memory_ports.cpp.o"
  "CMakeFiles/ext_memory_ports.dir/ext_memory_ports.cpp.o.d"
  "ext_memory_ports"
  "ext_memory_ports.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_memory_ports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
