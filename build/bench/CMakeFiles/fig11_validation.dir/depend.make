# Empty dependencies file for fig11_validation.
# This may be replaced when dependencies are built.
