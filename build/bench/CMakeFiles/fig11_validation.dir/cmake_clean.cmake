file(REMOVE_RECURSE
  "CMakeFiles/fig11_validation.dir/fig11_validation.cpp.o"
  "CMakeFiles/fig11_validation.dir/fig11_validation.cpp.o.d"
  "fig11_validation"
  "fig11_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
