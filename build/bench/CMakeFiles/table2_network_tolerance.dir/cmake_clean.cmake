file(REMOVE_RECURSE
  "CMakeFiles/table2_network_tolerance.dir/table2_network_tolerance.cpp.o"
  "CMakeFiles/table2_network_tolerance.dir/table2_network_tolerance.cpp.o.d"
  "table2_network_tolerance"
  "table2_network_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_network_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
