# Empty dependencies file for table2_network_tolerance.
# This may be replaced when dependencies are built.
