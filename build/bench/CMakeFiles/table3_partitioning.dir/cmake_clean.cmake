file(REMOVE_RECURSE
  "CMakeFiles/table3_partitioning.dir/table3_partitioning.cpp.o"
  "CMakeFiles/table3_partitioning.dir/table3_partitioning.cpp.o.d"
  "table3_partitioning"
  "table3_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
