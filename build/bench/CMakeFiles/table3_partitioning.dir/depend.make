# Empty dependencies file for table3_partitioning.
# This may be replaced when dependencies are built.
