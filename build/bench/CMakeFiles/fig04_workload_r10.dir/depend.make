# Empty dependencies file for fig04_workload_r10.
# This may be replaced when dependencies are built.
