file(REMOVE_RECURSE
  "CMakeFiles/fig04_workload_r10.dir/fig04_workload_r10.cpp.o"
  "CMakeFiles/fig04_workload_r10.dir/fig04_workload_r10.cpp.o.d"
  "fig04_workload_r10"
  "fig04_workload_r10.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_workload_r10.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
