file(REMOVE_RECURSE
  "CMakeFiles/fig10_throughput_scaling.dir/fig10_throughput_scaling.cpp.o"
  "CMakeFiles/fig10_throughput_scaling.dir/fig10_throughput_scaling.cpp.o.d"
  "fig10_throughput_scaling"
  "fig10_throughput_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_throughput_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
