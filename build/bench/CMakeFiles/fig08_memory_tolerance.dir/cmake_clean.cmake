file(REMOVE_RECURSE
  "CMakeFiles/fig08_memory_tolerance.dir/fig08_memory_tolerance.cpp.o"
  "CMakeFiles/fig08_memory_tolerance.dir/fig08_memory_tolerance.cpp.o.d"
  "fig08_memory_tolerance"
  "fig08_memory_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_memory_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
