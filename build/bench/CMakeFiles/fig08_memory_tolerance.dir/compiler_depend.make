# Empty compiler generated dependencies file for fig08_memory_tolerance.
# This may be replaced when dependencies are built.
