file(REMOVE_RECURSE
  "CMakeFiles/fig05_workload_r20.dir/fig05_workload_r20.cpp.o"
  "CMakeFiles/fig05_workload_r20.dir/fig05_workload_r20.cpp.o.d"
  "fig05_workload_r20"
  "fig05_workload_r20.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_workload_r20.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
