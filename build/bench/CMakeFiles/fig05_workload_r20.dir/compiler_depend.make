# Empty compiler generated dependencies file for fig05_workload_r20.
# This may be replaced when dependencies are built.
