# Empty dependencies file for ext_topology_study.
# This may be replaced when dependencies are built.
