file(REMOVE_RECURSE
  "CMakeFiles/ext_topology_study.dir/ext_topology_study.cpp.o"
  "CMakeFiles/ext_topology_study.dir/ext_topology_study.cpp.o.d"
  "ext_topology_study"
  "ext_topology_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_topology_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
