# Empty compiler generated dependencies file for ext_context_switch.
# This may be replaced when dependencies are built.
