file(REMOVE_RECURSE
  "CMakeFiles/ext_context_switch.dir/ext_context_switch.cpp.o"
  "CMakeFiles/ext_context_switch.dir/ext_context_switch.cpp.o.d"
  "ext_context_switch"
  "ext_context_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_context_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
