// Table 2: network latency tolerance at selected operating points, showing
// that the same S_obs can be tolerated or not depending on the workload
// (the paper's central argument that workload characteristics, not the
// latency value, determine tolerance).
#include <iostream>

#include "bench_common.hpp"
#include "core/latol.hpp"

int main(int argc, char** argv) {
  using namespace latol;
  using namespace latol::core;
  const bench::CsvSink sink(argc, argv);
  bench::print_header(
      "Table 2 - Network latency tolerance at R = 10 and R = 20",
      "Rows pair operating points with similar S_obs but different "
      "tolerance zones. Paper anchor: at R=10, n_t=8 tolerates S_obs ~53 "
      "(tol=0.929) while n_t=3 at higher p_remote does not.");

  struct Row {
    double runlength;
    int n_t;
    double p_remote;
  };
  // The paper's sample points (reconstructed from the Table 2 narrative).
  const std::vector<Row> rows{
      {10.0, 3, 0.2}, {10.0, 3, 0.4}, {10.0, 8, 0.2}, {10.0, 8, 0.4},
      {20.0, 3, 0.2}, {20.0, 3, 0.4}, {20.0, 4, 0.4}, {20.0, 6, 0.2},
      {20.0, 6, 0.4},
  };

  util::Table table({"R", "n_t", "p_remote", "L_obs", "S_obs", "lambda_net",
                     "U_p", "tol_network", "zone"});
  auto csv = sink.open("table2", {"R", "n_t", "p_remote", "L_obs", "S_obs",
                                  "lambda_net", "U_p", "tol_network", "solver",
                                  "converged"});
  for (const Row& row : rows) {
    MmsConfig cfg = MmsConfig::paper_defaults();
    cfg.runlength = row.runlength;
    cfg.threads_per_processor = row.n_t;
    cfg.p_remote = row.p_remote;
    const ToleranceResult t = tolerance_index(cfg, Subsystem::kNetwork);
    const MmsPerformance& perf = t.actual;
    table.add_row({util::Table::num(row.runlength, 0),
                   std::to_string(row.n_t), util::Table::num(row.p_remote, 2),
                   util::Table::num(perf.memory_latency, 2),
                   util::Table::num(perf.network_latency, 2),
                   util::Table::num(perf.message_rate, 4),
                   util::Table::num(perf.processor_utilization, 4),
                   util::Table::num(t.index, 4),
                   bench::zone_tag(t.index) +
                       bench::convergence_marker(perf)});
    if (csv) {
      csv->add_row({bench::csv_num(row.runlength), bench::csv_num(row.n_t),
                    bench::csv_num(row.p_remote),
                    bench::csv_num(perf.memory_latency),
                    bench::csv_num(perf.network_latency),
                    bench::csv_num(perf.message_rate),
                    bench::csv_num(perf.processor_utilization),
                    bench::csv_num(t.index), bench::csv_solver(perf),
                    bench::csv_converged(perf)});
    }
  }
  std::cout << table;
  std::cout << "\nNote how (R=10, n_t=8, p=0.2) and (R=10, n_t=3, p=0.4) see "
               "similar S_obs\nbut land in different tolerance zones.\n";
  return 0;
}
