// Shared driver for Figures 4 and 5: the four surfaces U_p, S_obs,
// lambda_net, tol_network over (n_t, p_remote) at a fixed runlength.
#pragma once

#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/latol.hpp"

namespace latol::bench {

inline void run_workload_figure(double runlength, const std::string& name,
                                const CsvSink& sink) {
  using namespace latol::core;

  const std::vector<int> thread_counts{1, 2, 3, 4, 5, 6, 8};
  const std::vector<double> remotes{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8};

  std::vector<MmsConfig> grid;
  for (const int n_t : thread_counts) {
    for (const double p : remotes) {
      MmsConfig cfg = MmsConfig::paper_defaults();
      cfg.runlength = runlength;
      cfg.threads_per_processor = n_t;
      cfg.p_remote = p;
      grid.push_back(cfg);
    }
  }
  SweepOptions opts;
  opts.network_tolerance = true;
  const std::vector<SweepResult> results = sweep(grid, opts);

  const BottleneckAnalysis bn = [&] {
    MmsConfig cfg = MmsConfig::paper_defaults();
    cfg.runlength = runlength;
    return bottleneck_analysis(cfg);
  }();
  std::cout << "Closed-form markers (Eqs. 4-5): lambda_net_sat="
            << bn.lambda_net_sat << ", p_remote(saturation)="
            << bn.p_remote_sat << ", p_remote(critical)="
            << bn.p_remote_critical << "\n\n";

  auto csv = sink.open(name, {"n_t", "p_remote", "U_p", "S_obs", "lambda_net",
                              "tol_network", "solver", "converged"});

  auto surface = [&](const std::string& title, auto value) {
    std::vector<std::string> headers{"n_t \\ p_remote"};
    for (const double p : remotes) headers.push_back(util::Table::num(p, 2));
    util::Table table(std::move(headers));
    std::size_t idx = 0;
    for (const int n_t : thread_counts) {
      std::vector<std::string> row{std::to_string(n_t)};
      for (std::size_t j = 0; j < remotes.size(); ++j) {
        const SweepResult& r = results[idx + j];
        row.push_back(util::Table::num(value(r), 4));
      }
      idx += remotes.size();
      table.add_row(std::move(row));
    }
    std::cout << title << '\n' << table << '\n';
  };

  surface("(a) Processor utilization U_p",
          [](const SweepResult& r) { return r.perf.processor_utilization; });
  surface("(b) Observed network latency S_obs (cycles)",
          [](const SweepResult& r) { return r.perf.network_latency; });
  surface("(c) Message rate to the network lambda_net",
          [](const SweepResult& r) { return r.perf.message_rate; });
  surface("(d) Tolerance index tol_network",
          [](const SweepResult& r) { return r.tol_network.value_or(0.0); });

  if (csv) {
    std::size_t idx = 0;
    for (const int n_t : thread_counts) {
      for (const double p : remotes) {
        const SweepResult& r = results[idx++];
        csv->add_row({csv_num(n_t), csv_num(p),
                      csv_num(r.perf.processor_utilization),
                      csv_num(r.perf.network_latency),
                      csv_num(r.perf.message_rate),
                      csv_num(r.tol_network.value_or(0.0)), csv_solver(r),
                      csv_converged(r)});
      }
    }
  }

  // The headline observations the paper draws from this figure.
  std::cout << "Headline checks:\n";
  const auto at = [&](int n_t, double p) -> const SweepResult& {
    for (std::size_t i = 0; i < grid.size(); ++i) {
      if (grid[i].threads_per_processor == n_t && grid[i].p_remote == p)
        return results[i];
    }
    throw std::runtime_error("grid point missing");
  };
  std::cout << "  - lambda_net at p=0.8, n_t=8: "
            << at(8, 0.8).perf.message_rate << " (Eq. 4 cap "
            << bn.lambda_net_sat << ")\n";
  std::cout << "  - tol_network at p=0.2, n_t=8: "
            << *at(8, 0.2).tol_network << " ("
            << zone_tag(*at(8, 0.2).tol_network) << ")\n";
  std::cout << "  - U_p drop across critical p: U_p(0.1)="
            << at(4, 0.1).perf.processor_utilization << " -> U_p(0.4)="
            << at(4, 0.4).perf.processor_utilization << '\n';
  report_sweep_health(results, name);
}

}  // namespace latol::bench
