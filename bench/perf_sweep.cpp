// Large-sweep throughput: the streaming scenario runner's points/sec —
// cold and warm-started — and the sharded solve cache under concurrent
// lookups. These guard the million-point sweep path (DESIGN.md §15):
// check_bench_regression.py compares the JSON tee against
// baselines/BENCH_sweep.json, so a change that slows streamed solving or
// reintroduces cache lock contention fails CI.
#include <benchmark/benchmark.h>

#include <sstream>
#include <string>

#include "bench_common.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/solve_cache.hpp"
#include "io/json.hpp"
#include "json_reporter.hpp"

namespace {

using namespace latol;

// 8 rows x 16 points of the fig04 shape (k=2 so a point solves in tens
// of microseconds); big enough that per-block overhead amortizes, small
// enough for a benchmark iteration.
exp::Scenario sweep_scenario(bool warm) {
  std::string text = R"({
    "name": "perf_sweep",
    "base": {"k": 2, "memory_latency": 2.0, "switch_delay": 2.0},
    "axes": [
      {"param": "threads", "range": {"from": 1, "to": 8, "steps": 8}},
      {"param": "p_remote", "range": {"from": 0.02, "to": 0.62, "steps": 16}}
    ],
    "outputs": {"network_tolerance": true},
    "solver": {"warm_start": )" +
                     std::string(warm ? "true" : "false") + "}}";
  return exp::scenario_from_json(io::parse_json(text));
}

// Streamed sweep throughput in points/s, the headline number for
// docs/PERFORMANCE.md §7. Serial workers so the number tracks solver +
// emission cost, not the machine's core count.
void BM_StreamSweepPointsPerSec(benchmark::State& state) {
  const exp::Scenario scenario = sweep_scenario(false);
  exp::RunOptions opts;
  opts.workers = 1;
  std::size_t points = 0;
  for (auto _ : state) {
    std::ostringstream csv;
    exp::StreamSinks sinks;
    sinks.csv = &csv;
    const exp::RunStats st = exp::run_scenario_stream(scenario, opts, sinks);
    points = st.grid_points;
    benchmark::DoNotOptimize(csv.str().size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(points));
}
BENCHMARK(BM_StreamSweepPointsPerSec);

// Same grid with warm-start chaining: hints cut AMVA iterations along
// each row, so points/s should sit above the cold number.
void BM_StreamSweepWarmPointsPerSec(benchmark::State& state) {
  const exp::Scenario scenario = sweep_scenario(true);
  exp::RunOptions opts;
  opts.workers = 1;
  std::size_t points = 0;
  for (auto _ : state) {
    std::ostringstream csv;
    exp::StreamSinks sinks;
    sinks.csv = &csv;
    const exp::RunStats st = exp::run_scenario_stream(scenario, opts, sinks);
    points = st.grid_points;
    benchmark::DoNotOptimize(csv.str().size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(points));
}
BENCHMARK(BM_StreamSweepWarmPointsPerSec);

// Parallel streamed sweep: the row-parallel path through the shared
// worker pool plus ordered emission. Real time, since work spreads over
// the pool.
void BM_StreamSweepParallel(benchmark::State& state) {
  const exp::Scenario scenario = sweep_scenario(false);
  exp::RunOptions opts;
  opts.workers = 4;
  std::size_t points = 0;
  for (auto _ : state) {
    std::ostringstream csv;
    exp::StreamSinks sinks;
    sinks.csv = &csv;
    const exp::RunStats st = exp::run_scenario_stream(scenario, opts, sinks);
    points = st.grid_points;
    benchmark::DoNotOptimize(csv.str().size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(points));
}
BENCHMARK(BM_StreamSweepParallel)->UseRealTime();

// Concurrent hot-cache lookups. One shard serializes every thread on a
// single mutex; the sharded store spreads them. Items = lookups, real
// time across the contending threads.
void BM_CacheHitsUnderContention(benchmark::State& state) {
  static exp::SolveCache* cache = [] {
    auto* c = new exp::SolveCache(16);
    for (int n = 1; n <= 16; ++n) {
      core::MmsConfig cfg = core::MmsConfig::paper_defaults();
      cfg.k = 2;
      cfg.threads_per_processor = n;
      (void)c->analyze(cfg, {});
    }
    return c;
  }();
  core::MmsConfig cfg = core::MmsConfig::paper_defaults();
  cfg.k = 2;
  int64_t lookups = 0;
  for (auto _ : state) {
    for (int n = 1; n <= 16; ++n) {
      cfg.threads_per_processor = n;
      benchmark::DoNotOptimize(cache->analyze(cfg, {}));
    }
    lookups += 16;
  }
  state.SetItemsProcessed(lookups);
}
BENCHMARK(BM_CacheHitsUnderContention)->Threads(1)->Threads(4)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  return latol::bench::run_benchmarks_with_json(argc, argv,
                                                "BENCH_sweep.json");
}
