// Figure 7: tol_network lines for fixed work budgets n_t x R in
// {20, 40, 60, 80, 100}, plotted against the runlength chosen for the
// split, at p_remote = 0.2 and 0.4.
#include <iostream>

#include "bench_common.hpp"
#include "core/latol.hpp"

int main(int argc, char** argv) {
  using namespace latol;
  using namespace latol::core;
  const bench::CsvSink sink(argc, argv);
  bench::print_header(
      "Figure 7 - Network latency tolerance for the partitioning strategy",
      "One line per work budget n_t x R; x-axis is the runlength of the "
      "chosen split. Larger budgets expose more computation and tolerate "
      "better; along each line, higher R (fewer threads) wins for n_t >= 2.");

  const std::vector<double> budgets{20, 40, 60, 80, 100};
  const std::vector<int> splits{1, 2, 4, 5, 10, 20};
  auto csv = sink.open("fig07", {"p_remote", "budget", "n_t", "R",
                                 "tol_network", "U_p", "solver", "converged"});

  for (const double p : {0.2, 0.4}) {
    std::cout << "(p_remote = " << p << ")\n";
    util::Table table({"budget", "n_t", "R", "tol_network", "U_p", "zone"});
    for (const double work : budgets) {
      MmsConfig base = MmsConfig::paper_defaults();
      base.p_remote = p;
      for (const PartitionPoint& pt : evaluate_partitions(base, work, splits)) {
        table.add_row({util::Table::num(work, 0), std::to_string(pt.n_t),
                       util::Table::num(pt.runlength, 1),
                       util::Table::num(pt.tol_network, 4),
                       util::Table::num(pt.perf.processor_utilization, 4),
                       bench::zone_tag(pt.tol_network) +
                           bench::convergence_marker(pt.perf)});
        if (csv) {
          csv->add_row({bench::csv_num(p), bench::csv_num(work),
                        bench::csv_num(pt.n_t), bench::csv_num(pt.runlength),
                        bench::csv_num(pt.tol_network),
                        bench::csv_num(pt.perf.processor_utilization),
                        bench::csv_solver(pt.perf),
                        bench::csv_converged(pt.perf)});
        }
      }
    }
    std::cout << table << '\n';
  }
  return 0;
}
