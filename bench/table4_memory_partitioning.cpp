// Table 4: effect of the thread partitioning strategy on memory latency
// tolerance (n_t x R = 40, p_remote = 0.2, L = 10 and 20).
#include <iostream>

#include "bench_common.hpp"
#include "core/latol.hpp"

int main(int argc, char** argv) {
  using namespace latol;
  using namespace latol::core;
  const bench::CsvSink sink(argc, argv);
  bench::print_header(
      "Table 4 - Thread partitioning strategy vs memory latency tolerance",
      "n_t x R = 40, p_remote = 0.2. Paper findings: raising L from 10 to "
      "20 raises L_obs over 2.5x and collapses tol_memory for fine-grain "
      "splits; R >= L keeps the processor busy long enough to tolerate.");

  const double work = 40.0;
  const std::vector<int> splits{1, 2, 4, 5, 8, 10};
  auto csv = sink.open("table4", {"L", "n_t", "R", "L_obs", "S_obs", "U_p",
                                  "tol_memory", "solver", "converged"});

  for (const double L : {10.0, 20.0}) {
    MmsConfig base = MmsConfig::paper_defaults();
    base.memory_latency = L;
    const auto points = evaluate_partitions(base, work, splits);
    util::Table table(
        {"n_t", "R", "L_obs", "S_obs", "U_p", "tol_memory", "zone"});
    for (const PartitionPoint& pt : points) {
      table.add_row({std::to_string(pt.n_t), util::Table::num(pt.runlength, 1),
                     util::Table::num(pt.perf.memory_latency, 2),
                     util::Table::num(pt.perf.network_latency, 2),
                     util::Table::num(pt.perf.processor_utilization, 4),
                     util::Table::num(pt.tol_memory, 4),
                     bench::zone_tag(pt.tol_memory) +
                         bench::convergence_marker(pt.perf)});
      if (csv) {
        csv->add_row({bench::csv_num(L), bench::csv_num(pt.n_t),
                      bench::csv_num(pt.runlength),
                      bench::csv_num(pt.perf.memory_latency),
                      bench::csv_num(pt.perf.network_latency),
                      bench::csv_num(pt.perf.processor_utilization),
                      bench::csv_num(pt.tol_memory),
                      bench::csv_solver(pt.perf),
                      bench::csv_converged(pt.perf)});
      }
    }
    std::cout << "(L = " << L << ", n_t x R = " << work << ")\n"
              << table << '\n';
  }
  return 0;
}
