// Simulator performance: events/firings per second for the two validation
// vehicles, and the cost of building the MMS Petri net.
#include <benchmark/benchmark.h>

#include "core/mms_config.hpp"
#include "json_reporter.hpp"
#include "sim/mms_des.hpp"
#include "sim/mms_petri.hpp"

namespace {

using namespace latol;

void BM_DesSimulation(benchmark::State& state) {
  sim::SimulationConfig cfg;
  cfg.mms = core::MmsConfig::paper_defaults();
  cfg.mms.k = static_cast<int>(state.range(0));
  cfg.sim_time = 5000.0;
  std::uint64_t events = 0;
  for (auto _ : state) {
    cfg.seed++;
    const sim::SimulationResult r = sim::simulate_mms(cfg);
    events += r.events;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(events));
  state.SetLabel("items = kernel events");
}
BENCHMARK(BM_DesSimulation)->Arg(2)->Arg(4)->Arg(8);

void BM_PetriNetBuild(benchmark::State& state) {
  core::MmsConfig cfg = core::MmsConfig::paper_defaults();
  cfg.k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::build_mms_petri(cfg));
  }
}
BENCHMARK(BM_PetriNetBuild)->Arg(2)->Arg(4);

void BM_PetriSimulation(benchmark::State& state) {
  core::MmsConfig cfg = core::MmsConfig::paper_defaults();
  cfg.k = static_cast<int>(state.range(0));
  std::uint64_t firings = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const sim::PetriMmsResult r =
        sim::simulate_mms_petri(cfg, 5000.0, 0.1, seed++);
    firings += r.total_firings;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(firings));
  state.SetLabel("items = transition firings");
}
BENCHMARK(BM_PetriSimulation)->Arg(2)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  return latol::bench::run_benchmarks_with_json(argc, argv,
                                                "BENCH_sim.json");
}
