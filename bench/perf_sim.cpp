// Simulator performance: events/firings per second for the two validation
// vehicles, the cost of building the MMS Petri net, the open-network DES,
// and the parallel replication harness.
#include <benchmark/benchmark.h>

#include "core/mms_config.hpp"
#include "json_reporter.hpp"
#include "qn/open/open_network.hpp"
#include "sim/mms_des.hpp"
#include "sim/mms_petri.hpp"
#include "sim/open_des.hpp"
#include "sim/replicate.hpp"

namespace {

using namespace latol;

void BM_DesSimulation(benchmark::State& state) {
  sim::SimulationConfig cfg;
  cfg.mms = core::MmsConfig::paper_defaults();
  cfg.mms.k = static_cast<int>(state.range(0));
  cfg.sim_time = 5000.0;
  std::uint64_t events = 0;
  for (auto _ : state) {
    cfg.seed++;
    const sim::SimulationResult r = sim::simulate_mms(cfg);
    events += r.events;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(events));
  state.SetLabel("items = kernel events");
}
BENCHMARK(BM_DesSimulation)->Arg(2)->Arg(4)->Arg(8);

void BM_PetriNetBuild(benchmark::State& state) {
  core::MmsConfig cfg = core::MmsConfig::paper_defaults();
  cfg.k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::build_mms_petri(cfg));
  }
}
BENCHMARK(BM_PetriNetBuild)->Arg(2)->Arg(4);

void BM_PetriSimulation(benchmark::State& state) {
  core::MmsConfig cfg = core::MmsConfig::paper_defaults();
  cfg.k = static_cast<int>(state.range(0));
  std::uint64_t firings = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const sim::PetriMmsResult r =
        sim::simulate_mms_petri(cfg, 5000.0, 0.1, seed++);
    firings += r.total_firings;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(firings));
  state.SetLabel("items = transition firings");
}
BENCHMARK(BM_PetriSimulation)->Arg(2)->Arg(4);

void BM_OpenDesSimulation(benchmark::State& state) {
  // Three-station tandem with feedback, the open-workload shape used by
  // the Jackson cross-checks; items are kernel events.
  qn::OpenNetwork net({{"a", qn::StationKind::kQueueing},
                       {"b", qn::StationKind::kQueueing},
                       {"c", qn::StationKind::kQueueing}},
                      1);
  net.set_arrival_rate(0, 0.5);
  net.set_entry(0, 0, 1.0);
  net.set_routing(0, 0, 1, 1.0);
  net.set_routing(0, 1, 2, 0.7);
  net.set_routing(0, 1, 0, 0.3);
  for (std::size_t m = 0; m < 3; ++m) net.set_service_time(0, m, 0.8);
  net.solve_traffic_equations();
  sim::OpenSimulationConfig cfg;
  cfg.sim_time = 20000.0;
  std::uint64_t events = 0;
  for (auto _ : state) {
    cfg.seed++;
    const sim::OpenSimulationResult r = sim::simulate_open(net, cfg);
    events += r.events;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(events));
  state.SetLabel("items = kernel events");
}
BENCHMARK(BM_OpenDesSimulation);

void BM_ParallelReplications(benchmark::State& state) {
  // End-to-end replication harness: arg = worker count. Results are
  // bitwise identical across arg values; only wall time may differ.
  sim::SimulationConfig cfg;
  cfg.mms = core::MmsConfig::paper_defaults();
  cfg.mms.k = 4;
  cfg.sim_time = 2000.0;
  sim::ReplicationPlan plan;
  plan.min_reps = 8;
  plan.max_reps = 8;
  plan.round_size = 8;
  plan.workers = static_cast<std::size_t>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    cfg.seed += plan.max_reps;
    const auto run = sim::replicate_mms(cfg, plan);
    for (const auto& r : run.runs) events += r.events;
    benchmark::DoNotOptimize(run);
  }
  state.SetItemsProcessed(static_cast<int64_t>(events));
  state.SetLabel("items = kernel events, all replications");
}
BENCHMARK(BM_ParallelReplications)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  return latol::bench::run_benchmarks_with_json(argc, argv,
                                                "BENCH_sim.json");
}
