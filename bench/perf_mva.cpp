// Solver performance: how cheaply the analytical side regenerates the
// paper's figures. AMVA cost is the reason the paper could sweep
// hundred-processor machines in 1997; these benchmarks document the same
// property for this implementation.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/latol.hpp"
#include "json_reporter.hpp"
#include "qn/mva_exact.hpp"
#include "qn/mva_linearizer.hpp"
#include "qn/workspace.hpp"

namespace {

using namespace latol;

void BM_AmvaSolveByMachineSize(benchmark::State& state) {
  core::MmsConfig cfg = core::MmsConfig::paper_defaults();
  cfg.k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::analyze(cfg));
  }
  state.SetLabel("P=" + std::to_string(cfg.num_processors()));
}
BENCHMARK(BM_AmvaSolveByMachineSize)->Arg(2)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

void BM_AmvaSolveByThreads(benchmark::State& state) {
  core::MmsConfig cfg = core::MmsConfig::paper_defaults();
  cfg.threads_per_processor = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::analyze(cfg));
  }
}
BENCHMARK(BM_AmvaSolveByThreads)->Arg(1)->Arg(8)->Arg(32);

void BM_NetworkConstruction(benchmark::State& state) {
  core::MmsConfig cfg = core::MmsConfig::paper_defaults();
  cfg.k = static_cast<int>(state.range(0));
  const core::MmsModel model(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.build_network());
  }
}
BENCHMARK(BM_NetworkConstruction)->Arg(4)->Arg(10);

void BM_ToleranceIndex(benchmark::State& state) {
  const core::MmsConfig cfg = core::MmsConfig::paper_defaults();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::tolerance_index(cfg, core::Subsystem::kNetwork));
  }
}
BENCHMARK(BM_ToleranceIndex);

// Exact MVA blows up combinatorially — the cost AMVA avoids. Population
// lattice is (n_t + 1)^2 for the 2-class instance below.
void BM_ExactMvaTwoClass(benchmark::State& state) {
  const long n = state.range(0);
  qn::ClosedNetwork net({{"p0", qn::StationKind::kQueueing},
                         {"p1", qn::StationKind::kQueueing},
                         {"mem", qn::StationKind::kQueueing}},
                        2);
  for (std::size_t c = 0; c < 2; ++c) {
    net.set_population(c, n);
    net.set_visit_ratio(c, c, 1.0);
    net.set_visit_ratio(c, 2, 1.0);
    net.set_service_time(c, c, 10.0);
    net.set_service_time(c, 2, 5.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(qn::solve_mva_exact(net));
  }
}
BENCHMARK(BM_ExactMvaTwoClass)->Arg(4)->Arg(16)->Arg(64);

void BM_ParallelSweep(benchmark::State& state) {
  std::vector<core::MmsConfig> grid;
  for (int n_t = 1; n_t <= 8; ++n_t) {
    for (const double p : {0.1, 0.2, 0.3, 0.4}) {
      core::MmsConfig cfg = core::MmsConfig::paper_defaults();
      cfg.threads_per_processor = n_t;
      cfg.p_remote = p;
      grid.push_back(cfg);
    }
  }
  core::SweepOptions opts;
  opts.workers = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::sweep(grid, opts));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(grid.size()));
}
BENCHMARK(BM_ParallelSweep)->Arg(1)->Arg(4)->Arg(0);

// Sweep throughput on the paper's large-machine regime (Figs. 9-10):
// points/sec over a k=6 (P=36) tolerance sweep, serial pool vs the shared
// work-stealing pool. This is the number docs/PERFORMANCE.md quotes for
// "how fast can we regenerate a figure".
void BM_SweepPointsPerSecLargeMachine(benchmark::State& state) {
  std::vector<core::MmsConfig> grid;
  for (int n_t = 1; n_t <= 4; ++n_t) {
    for (const double p : {0.1, 0.2, 0.3, 0.4}) {
      core::MmsConfig cfg = core::MmsConfig::paper_defaults();
      cfg.k = 6;
      cfg.threads_per_processor = n_t;
      cfg.p_remote = p;
      grid.push_back(cfg);
    }
  }
  core::SweepOptions opts;
  opts.network_tolerance = true;
  opts.workers = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::sweep(grid, opts));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(grid.size()));
  state.SetLabel(state.range(0) == 0 ? "shared pool"
                                     : std::to_string(state.range(0)) +
                                           " worker(s)");
}
BENCHMARK(BM_SweepPointsPerSecLargeMachine)->Arg(1)->Arg(0);

// The Linearizer rides the same flat workspace kernel as AMVA; its cost is
// ~(C + 1) x 3 Core solves (DESIGN.md §10, docs/PERFORMANCE.md).
void BM_LinearizerSolve(benchmark::State& state) {
  core::MmsConfig cfg = core::MmsConfig::paper_defaults();
  cfg.k = static_cast<int>(state.range(0));
  const core::MmsModel model(cfg);
  const qn::ClosedNetwork net = model.build_network();
  for (auto _ : state) {
    benchmark::DoNotOptimize(qn::solve_linearizer(net));
  }
  state.SetLabel("P=" + std::to_string(cfg.num_processors()));
}
BENCHMARK(BM_LinearizerSolve)->Arg(2)->Arg(4);

// Reusing one explicit workspace across solves — the sweep hot path — vs
// paying the thread_local lookup per solve. Mostly documents that the
// arena amortizes to zero allocation per point.
void BM_AmvaWorkspaceReuse(benchmark::State& state) {
  core::MmsConfig cfg = core::MmsConfig::paper_defaults();
  const core::MmsModel model(cfg);
  const qn::ClosedNetwork net = model.build_network();
  qn::SolverWorkspace ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(qn::solve_amva(net, {}, ws));
  }
}
BENCHMARK(BM_AmvaWorkspaceReuse);

}  // namespace

int main(int argc, char** argv) {
  const int rc = latol::bench::run_benchmarks_with_json(argc, argv,
                                                        "BENCH_mva.json");
  if (rc != 0) return rc;
  // Overhead policy guard (DESIGN.md §9): a disabled metric registry must
  // stay invisible in the solver numbers above.
  return latol::bench::check_disabled_instrumentation_overhead();
}
