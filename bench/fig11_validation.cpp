// Figure 11 (§8): validation of the analytical model against simulation.
// The paper simulates a stochastic timed Petri net of the MMS for 100,000
// time units at p_remote = 0.5 with S = 10 and S = 20, and reports
// lambda_net within 2% and S_obs within 5% of the analytical predictions
// (and <= 10% when the memory service distribution is deterministic).
//
// We run BOTH validation vehicles — the STPN model and an independent
// direct discrete-event simulator — against the AMVA predictions.
#include <iostream>

#include "bench_common.hpp"
#include "core/latol.hpp"
#include "sim/mms_des.hpp"
#include "sim/mms_petri.hpp"

namespace {

double pct(double sim, double model) {
  return model != 0.0 ? 100.0 * (sim - model) / model : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace latol;
  using namespace latol::core;
  const bench::CsvSink sink(argc, argv);
  bench::print_header(
      "Figure 11 - Validation: analytical model vs STPN and DES simulation",
      "p_remote = 0.5, 100,000 time units per run, 10% warmup. Paper "
      "acceptance: lambda_net within ~2%, S_obs within ~5%.");

  const double kSimTime = 100000.0;
  const double kWarmup = 0.1;
  auto csv = sink.open(
      "fig11", {"S", "n_t", "lambda_net_model", "lambda_net_stpn",
                "lambda_net_des", "S_obs_model", "S_obs_stpn", "S_obs_des",
                "solver", "converged"});

  for (const double S : {10.0, 20.0}) {
    std::cout << "(S = " << S << ")\n";
    util::Table table({"n_t", "ln model", "ln STPN", "dev%", "ln DES", "dev%",
                       "S_obs model", "S_obs STPN", "dev%", "S_obs DES",
                       "dev%"});
    for (const int n_t : {1, 2, 4, 6, 8}) {
      MmsConfig cfg = MmsConfig::paper_defaults();
      cfg.p_remote = 0.5;
      cfg.switch_delay = S;
      cfg.threads_per_processor = n_t;

      const MmsPerformance model = analyze(cfg);
      if (const std::string mark = bench::convergence_marker(model);
          !mark.empty()) {
        std::cout << "S=" << S << " n_t=" << n_t << " model:" << mark << '\n';
      }
      const sim::PetriMmsResult stpn = sim::simulate_mms_petri(
          cfg, kSimTime, kWarmup, /*seed=*/1000 + n_t);
      sim::SimulationConfig des_cfg;
      des_cfg.mms = cfg;
      des_cfg.sim_time = kSimTime;
      des_cfg.warmup_fraction = kWarmup;
      des_cfg.seed = 2000 + static_cast<std::uint64_t>(n_t);
      const sim::SimulationResult des = sim::simulate_mms(des_cfg);

      table.add_row(
          {std::to_string(n_t), util::Table::num(model.message_rate, 5),
           util::Table::num(stpn.message_rate, 5),
           util::Table::num(pct(stpn.message_rate, model.message_rate), 1),
           util::Table::num(des.message_rate, 5),
           util::Table::num(pct(des.message_rate, model.message_rate), 1),
           util::Table::num(model.network_latency, 2),
           util::Table::num(stpn.network_latency, 2),
           util::Table::num(pct(stpn.network_latency, model.network_latency),
                            1),
           util::Table::num(des.network_latency, 2),
           util::Table::num(pct(des.network_latency, model.network_latency),
                            1)});
      if (csv) {
        csv->add_row({bench::csv_num(S), bench::csv_num(n_t),
                      bench::csv_num(model.message_rate),
                      bench::csv_num(stpn.message_rate),
                      bench::csv_num(des.message_rate),
                      bench::csv_num(model.network_latency),
                      bench::csv_num(stpn.network_latency),
                      bench::csv_num(des.network_latency),
                      bench::csv_solver(model), bench::csv_converged(model)});
      }
    }
    std::cout << table << '\n';
  }

  // §8 sensitivity: deterministic instead of exponential memory service.
  std::cout << "Sensitivity: deterministic memory service (paper: S_obs "
               "still within ~10% of the exponential-model prediction)\n";
  util::Table sens({"n_t", "S_obs model", "S_obs STPN-det", "dev%",
                    "S_obs DES-det", "dev%"});
  for (const int n_t : {2, 4, 8}) {
    MmsConfig cfg = MmsConfig::paper_defaults();
    cfg.p_remote = 0.5;
    cfg.threads_per_processor = n_t;
    const MmsPerformance model = analyze(cfg);
    if (const std::string mark = bench::convergence_marker(model);
        !mark.empty()) {
      std::cout << "sensitivity n_t=" << n_t << " model:" << mark << '\n';
    }
    const sim::PetriMmsResult stpn =
        sim::simulate_mms_petri(cfg, kSimTime, kWarmup, 3000 + n_t,
                                sim::ServiceDistribution::kDeterministic);
    sim::SimulationConfig des_cfg;
    des_cfg.mms = cfg;
    des_cfg.sim_time = kSimTime;
    des_cfg.warmup_fraction = kWarmup;
    des_cfg.seed = 4000 + static_cast<std::uint64_t>(n_t);
    des_cfg.memory_dist = sim::ServiceDistribution::kDeterministic;
    const sim::SimulationResult des = sim::simulate_mms(des_cfg);
    sens.add_row(
        {std::to_string(n_t), util::Table::num(model.network_latency, 2),
         util::Table::num(stpn.network_latency, 2),
         util::Table::num(pct(stpn.network_latency, model.network_latency), 1),
         util::Table::num(des.network_latency, 2),
         util::Table::num(pct(des.network_latency, model.network_latency),
                          1)});
  }
  std::cout << sens;
  return 0;
}
