// Shared helpers for the reproduction benches.
//
// Every `fig*`/`table*` binary reproduces one table or figure from the
// paper: it prints the same rows/series the paper reports and, when run
// with `--csv <dir>`, also writes plot-ready CSV files. Binaries take no
// required arguments and finish in seconds so `for b in build/bench/*; do
// $b; done` regenerates the whole evaluation.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/latol.hpp"
#include "obs/registry.hpp"
#include "qn/robust.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace latol::bench {

/// Optional CSV output directory parsed from argv ("--csv <dir>").
class CsvSink {
 public:
  CsvSink(int argc, char** argv) {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::string(argv[i]) == "--csv") dir_ = argv[i + 1];
    }
  }

  [[nodiscard]] bool enabled() const { return dir_.has_value(); }

  /// Open `<dir>/<name>.csv` with the given header, or null when disabled.
  [[nodiscard]] std::unique_ptr<util::CsvWriter> open(
      const std::string& name, const std::vector<std::string>& header) const {
    if (!dir_) return nullptr;
    return std::make_unique<util::CsvWriter>(*dir_ + "/" + name + ".csv",
                                             header);
  }

 private:
  std::optional<std::string> dir_;
};

/// Print the experiment banner plus the Table-1 default parameters the
/// run is based on, so every bench output is self-describing.
inline void print_header(const std::string& experiment,
                         const std::string& summary) {
  util::print_banner(std::cout, experiment);
  std::cout << summary << '\n';
  const core::MmsConfig d = core::MmsConfig::paper_defaults();
  std::cout << "Base parameters (paper Table 1): k=" << d.k
            << " (P=" << d.num_processors() << "), n_t="
            << d.threads_per_processor << ", R=" << d.runlength
            << ", C=" << d.context_switch << ", p_remote=" << d.p_remote
            << ", p_sw=" << d.traffic.p_sw << ", L=" << d.memory_latency
            << ", S=" << d.switch_delay << "\n\n";
}

/// Shorthand used across benches.
inline std::string zone_tag(double tol) {
  return core::zone_name(core::classify_tolerance(tol));
}

/// Marker appended next to a reported number that did not come from a
/// clean, converged solve of the requested solver; empty when clean.
inline std::string convergence_marker(const core::MmsPerformance& perf) {
  if (!perf.converged) return " [not converged]";
  if (perf.degraded)
    return std::string(" [degraded: ") + qn::solver_kind_name(perf.solver) +
           "]";
  return "";
}

/// Print one `[not converged]`/`[solve failed]` line per unhealthy sweep
/// grid point and return how many there were (0 = all results clean). Every
/// reproduction bench calls this after its tables so a diverged point can
/// never silently pose as a paper result.
inline int report_sweep_health(const std::vector<core::SweepResult>& results,
                               const std::string& context) {
  int unhealthy = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const core::SweepResult& r = results[i];
    if (r.healthy() && !r.ideal_degraded) continue;
    ++unhealthy;
    if (r.error) {
      std::cout << "[solve failed] " << context << " point " << i << ": "
                << *r.error << '\n';
    } else if (r.ideal_degraded && r.healthy()) {
      std::cout << "[not converged] " << context << " point " << i
                << ": ideal-system solve degraded\n";
    } else {
      std::cout << "[not converged] " << context << " point " << i
                << ": answered by " << qn::solver_kind_name(r.perf.solver)
                << (r.perf.converged ? "" : ", iteration budget exhausted")
                << '\n';
    }
  }
  return unhealthy;
}

/// CSV cell values for the `solver` / `converged` columns every sweep CSV
/// carries (a failed point reports solver "error"). `converged` derives
/// from the shared qn::solve_converged predicate, the same one behind the
/// run-manifest counts — the bench CSVs and the scenario engine cannot
/// disagree about health.
inline std::string csv_solver(const core::SweepResult& r) {
  return r.error ? "error" : qn::solver_kind_name(r.perf.solver);
}
inline std::string csv_converged(const core::SweepResult& r) {
  return qn::solve_converged(r.error.has_value(), r.perf.converged) ? "1"
                                                                    : "0";
}
inline std::string csv_solver(const core::MmsPerformance& perf) {
  return qn::solver_kind_name(perf.solver);
}
inline std::string csv_converged(const core::MmsPerformance& perf) {
  return qn::solve_converged(false, perf.converged) ? "1" : "0";
}

/// Format a double the way CsvWriter's numeric overload does, for rows
/// that mix numbers with the solver/converged string cells.
inline std::string csv_num(double v) { return util::csv_number(v); }

/// Guard for the DESIGN.md §9 overhead policy: with no registry installed
/// every obs hook is one load + predicted branch, and a default solve must
/// not pay more than ~1% for the instrumentation sprinkled through it.
/// Measures both sides min-of-interleaved-trials (robust against CPU
/// frequency drift), prices a solve at a generous hook budget far above
/// what the code actually executes, and compares. Returns 0 when within
/// the 1% policy, still 0 (with a loud warning) up to 10x the policy, and
/// 1 only beyond that — a hard failure means the disabled fast path grew
/// a lock or an allocation, not that the machine was noisy.
inline int check_disabled_instrumentation_overhead() {
  using Clock = std::chrono::steady_clock;
  obs::Registry* const previous = obs::set_default_registry(nullptr);
  const core::MmsConfig cfg = core::MmsConfig::paper_defaults();
  constexpr int kTrials = 5;
  constexpr int kHookBatch = 200000;
  double solve_seconds = std::numeric_limits<double>::infinity();
  double batch_seconds = std::numeric_limits<double>::infinity();
  for (int trial = 0; trial < kTrials; ++trial) {
    auto t0 = Clock::now();
    const core::MmsPerformance perf = core::analyze(cfg);
    auto t1 = Clock::now();
    // Consume the result so the solve cannot be elided.
    if (!(perf.processor_utilization >= 0.0)) std::abort();
    solve_seconds =
        std::min(solve_seconds,
                 std::chrono::duration<double>(t1 - t0).count());
    t0 = Clock::now();
    for (int i = 0; i < kHookBatch; ++i) {
      obs::count("bench.overhead.probe");
      // Defeat hoisting of the null-registry load out of the loop; the
      // measured cost must include the per-hook branch.
      asm volatile("" ::: "memory");
    }
    t1 = Clock::now();
    batch_seconds =
        std::min(batch_seconds,
                 std::chrono::duration<double>(t1 - t0).count());
  }
  obs::set_default_registry(previous);
  // A solve executes a handful of hooks plus one trace-pointer branch per
  // AMVA iteration (tens to hundreds); 1,000 is roughly two orders of
  // magnitude of headroom over the hooks actually on the solve path.
  constexpr double kHooksPerSolve = 1000.0;
  const double per_solve_cost =
      batch_seconds / kHookBatch * kHooksPerSolve;
  const double share = per_solve_cost / solve_seconds;
  std::cout << "disabled-instrumentation overhead: "
            << batch_seconds / kHookBatch * 1e9 << " ns/hook, "
            << share * 100.0 << "% of a default solve at " << kHooksPerSolve
            << " hooks/solve (policy: <1%)\n";
  if (share > 0.10) {
    std::cout << "FAIL: disabled instrumentation is not near-free — the "
                 "null-registry fast path regressed\n";
    return 1;
  }
  if (share > 0.01) {
    std::cout << "warning: disabled-instrumentation overhead exceeds the "
                 "1% policy (noisy machine, or fast-path regression)\n";
  }
  return 0;
}

}  // namespace latol::bench
