// Shared helpers for the reproduction benches.
//
// Every `fig*`/`table*` binary reproduces one table or figure from the
// paper: it prints the same rows/series the paper reports and, when run
// with `--csv <dir>`, also writes plot-ready CSV files. Binaries take no
// required arguments and finish in seconds so `for b in build/bench/*; do
// $b; done` regenerates the whole evaluation.
#pragma once

#include <iostream>
#include <limits>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/latol.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace latol::bench {

/// Optional CSV output directory parsed from argv ("--csv <dir>").
class CsvSink {
 public:
  CsvSink(int argc, char** argv) {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::string(argv[i]) == "--csv") dir_ = argv[i + 1];
    }
  }

  [[nodiscard]] bool enabled() const { return dir_.has_value(); }

  /// Open `<dir>/<name>.csv` with the given header, or null when disabled.
  [[nodiscard]] std::unique_ptr<util::CsvWriter> open(
      const std::string& name, const std::vector<std::string>& header) const {
    if (!dir_) return nullptr;
    return std::make_unique<util::CsvWriter>(*dir_ + "/" + name + ".csv",
                                             header);
  }

 private:
  std::optional<std::string> dir_;
};

/// Print the experiment banner plus the Table-1 default parameters the
/// run is based on, so every bench output is self-describing.
inline void print_header(const std::string& experiment,
                         const std::string& summary) {
  util::print_banner(std::cout, experiment);
  std::cout << summary << '\n';
  const core::MmsConfig d = core::MmsConfig::paper_defaults();
  std::cout << "Base parameters (paper Table 1): k=" << d.k
            << " (P=" << d.num_processors() << "), n_t="
            << d.threads_per_processor << ", R=" << d.runlength
            << ", C=" << d.context_switch << ", p_remote=" << d.p_remote
            << ", p_sw=" << d.traffic.p_sw << ", L=" << d.memory_latency
            << ", S=" << d.switch_delay << "\n\n";
}

/// Shorthand used across benches.
inline std::string zone_tag(double tol) {
  return core::zone_name(core::classify_tolerance(tol));
}

/// Marker appended next to a reported number that did not come from a
/// clean, converged solve of the requested solver; empty when clean.
inline std::string convergence_marker(const core::MmsPerformance& perf) {
  if (!perf.converged) return " [not converged]";
  if (perf.degraded)
    return std::string(" [degraded: ") + qn::solver_kind_name(perf.solver) +
           "]";
  return "";
}

/// Print one `[not converged]`/`[solve failed]` line per unhealthy sweep
/// grid point and return how many there were (0 = all results clean). Every
/// reproduction bench calls this after its tables so a diverged point can
/// never silently pose as a paper result.
inline int report_sweep_health(const std::vector<core::SweepResult>& results,
                               const std::string& context) {
  int unhealthy = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const core::SweepResult& r = results[i];
    if (r.healthy()) continue;
    ++unhealthy;
    if (r.error) {
      std::cout << "[solve failed] " << context << " point " << i << ": "
                << *r.error << '\n';
    } else {
      std::cout << "[not converged] " << context << " point " << i
                << ": answered by " << qn::solver_kind_name(r.perf.solver)
                << (r.perf.converged ? "" : ", iteration budget exhausted")
                << '\n';
    }
  }
  return unhealthy;
}

/// CSV cell values for the `solver` / `converged` columns every sweep CSV
/// carries (a failed point reports solver "error").
inline std::string csv_solver(const core::SweepResult& r) {
  return r.error ? "error" : qn::solver_kind_name(r.perf.solver);
}
inline std::string csv_converged(const core::SweepResult& r) {
  return (!r.error && r.perf.converged) ? "1" : "0";
}
inline std::string csv_solver(const core::MmsPerformance& perf) {
  return qn::solver_kind_name(perf.solver);
}
inline std::string csv_converged(const core::MmsPerformance& perf) {
  return perf.converged ? "1" : "0";
}

/// Format a double the way CsvWriter's numeric overload does, for rows
/// that mix numbers with the solver/converged string cells.
inline std::string csv_num(double v) { return util::csv_number(v); }

}  // namespace latol::bench
