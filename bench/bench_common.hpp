// Shared helpers for the reproduction benches.
//
// Every `fig*`/`table*` binary reproduces one table or figure from the
// paper: it prints the same rows/series the paper reports and, when run
// with `--csv <dir>`, also writes plot-ready CSV files. Binaries take no
// required arguments and finish in seconds so `for b in build/bench/*; do
// $b; done` regenerates the whole evaluation.
#pragma once

#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "core/latol.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace latol::bench {

/// Optional CSV output directory parsed from argv ("--csv <dir>").
class CsvSink {
 public:
  CsvSink(int argc, char** argv) {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::string(argv[i]) == "--csv") dir_ = argv[i + 1];
    }
  }

  [[nodiscard]] bool enabled() const { return dir_.has_value(); }

  /// Open `<dir>/<name>.csv` with the given header, or null when disabled.
  [[nodiscard]] std::unique_ptr<util::CsvWriter> open(
      const std::string& name, const std::vector<std::string>& header) const {
    if (!dir_) return nullptr;
    return std::make_unique<util::CsvWriter>(*dir_ + "/" + name + ".csv",
                                             header);
  }

 private:
  std::optional<std::string> dir_;
};

/// Print the experiment banner plus the Table-1 default parameters the
/// run is based on, so every bench output is self-describing.
inline void print_header(const std::string& experiment,
                         const std::string& summary) {
  util::print_banner(std::cout, experiment);
  std::cout << summary << '\n';
  const core::MmsConfig d = core::MmsConfig::paper_defaults();
  std::cout << "Base parameters (paper Table 1): k=" << d.k
            << " (P=" << d.num_processors() << "), n_t="
            << d.threads_per_processor << ", R=" << d.runlength
            << ", C=" << d.context_switch << ", p_remote=" << d.p_remote
            << ", p_sw=" << d.traffic.p_sw << ", L=" << d.memory_latency
            << ", S=" << d.switch_delay << "\n\n";
}

/// Shorthand used across benches.
inline std::string zone_tag(double tol) {
  return core::zone_name(core::classify_tolerance(tol));
}

}  // namespace latol::bench
