// Figure 9: tol_network vs n_t when the machine scales from k = 2 to
// k = 10 processors per dimension, for geometric vs uniform remote access
// patterns, at R = 10 and R = 20.
#include <iostream>

#include "bench_common.hpp"
#include "core/latol.hpp"

int main(int argc, char** argv) {
  using namespace latol;
  using namespace latol::core;
  const bench::CsvSink sink(argc, argv);
  bench::print_header(
      "Figure 9 - Tolerance index for different system sizes",
      "Paper findings: (1) uniform traffic stops tolerating as k grows "
      "(d_avg ~ k/2) while geometric saturates (d_avg -> 1/(1-p_sw)); "
      "(2) the n_t needed to tolerate does not change with machine size; "
      "(3) the paper reports tol up to ~1.05 for geometric at k >= 6 - an "
      "exact product-form treatment instead approaches 1 from below (see "
      "EXPERIMENTS.md deviation note).");

  const std::vector<int> sides{2, 4, 6, 8, 10};
  const std::vector<int> thread_counts{1, 2, 4, 6, 8, 12, 16};
  auto csv = sink.open("fig09", {"R", "k", "pattern", "n_t", "tol_network",
                                 "d_avg", "solver", "converged"});

  for (const double R : {10.0, 20.0}) {
    std::cout << "(R = " << R << ")\n";
    std::vector<std::string> headers{"k", "pattern"};
    for (const int n_t : thread_counts)
      headers.push_back("n_t=" + std::to_string(n_t));
    util::Table table(std::move(headers));

    for (const int k : sides) {
      for (const auto pattern :
           {topo::AccessPattern::kGeometric, topo::AccessPattern::kUniform}) {
        std::vector<MmsConfig> grid;
        for (const int n_t : thread_counts) {
          MmsConfig cfg = MmsConfig::paper_defaults();
          cfg.runlength = R;
          cfg.k = k;
          cfg.threads_per_processor = n_t;
          cfg.traffic.pattern = pattern;
          grid.push_back(cfg);
        }
        SweepOptions opts;
        opts.network_tolerance = true;
        const auto results = sweep(grid, opts);

        const bool geo = pattern == topo::AccessPattern::kGeometric;
        std::vector<std::string> row{std::to_string(k),
                                     geo ? "geometric" : "uniform"};
        for (std::size_t i = 0; i < thread_counts.size(); ++i) {
          const double tol = results[i].tol_network.value_or(0.0);
          row.push_back(util::Table::num(tol, 3));
          if (csv) {
            csv->add_row({bench::csv_num(R), bench::csv_num(k),
                          geo ? "1" : "0", bench::csv_num(thread_counts[i]),
                          bench::csv_num(tol),
                          bench::csv_num(results[i].perf.average_distance),
                          bench::csv_solver(results[i]),
                          bench::csv_converged(results[i])});
          }
        }
        table.add_row(std::move(row));
        bench::report_sweep_health(
            results, "fig09 R=" + util::Table::num(R, 0) + " k=" +
                         std::to_string(k) +
                         (geo ? " geometric" : " uniform"));
      }
    }
    std::cout << table << '\n';
  }
  return 0;
}
