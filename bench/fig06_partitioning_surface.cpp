// Figure 6: tol_network over (n_t, R) for p_remote = 0.2 and 0.4 — the
// surface a compiler consults when deciding how to partition a do-all
// loop into threads.
#include <iostream>

#include "bench_common.hpp"
#include "core/latol.hpp"

int main(int argc, char** argv) {
  using namespace latol;
  using namespace latol::core;
  const bench::CsvSink sink(argc, argv);
  bench::print_header(
      "Figure 6 - tol_network vs (n_t, R)",
      "Horizontal planes at 0.8 / 0.5 divide the surface into the paper's "
      "tolerated / partially tolerated / not tolerated regions.");

  const std::vector<int> thread_counts{1, 2, 3, 4, 6, 8, 10};
  const std::vector<double> runlengths{2, 5, 10, 15, 20, 30, 40};
  auto csv = sink.open("fig06", {"p_remote", "n_t", "R", "tol_network", "U_p",
                                 "solver", "converged"});

  for (const double p : {0.2, 0.4}) {
    std::vector<MmsConfig> grid;
    for (const int n_t : thread_counts) {
      for (const double r : runlengths) {
        MmsConfig cfg = MmsConfig::paper_defaults();
        cfg.p_remote = p;
        cfg.threads_per_processor = n_t;
        cfg.runlength = r;
        grid.push_back(cfg);
      }
    }
    SweepOptions opts;
    opts.network_tolerance = true;
    const auto results = sweep(grid, opts);

    std::vector<std::string> headers{"n_t \\ R"};
    for (const double r : runlengths) headers.push_back(util::Table::num(r, 0));
    util::Table table(std::move(headers));
    std::size_t idx = 0;
    for (const int n_t : thread_counts) {
      std::vector<std::string> row{std::to_string(n_t)};
      for (std::size_t j = 0; j < runlengths.size(); ++j) {
        const SweepResult& r = results[idx + j];
        const double tol = r.tol_network.value_or(0.0);
        row.push_back(util::Table::num(tol, 3));
        if (csv) {
          csv->add_row({bench::csv_num(p), bench::csv_num(n_t),
                        bench::csv_num(runlengths[j]), bench::csv_num(tol),
                        bench::csv_num(r.perf.processor_utilization),
                        bench::csv_solver(r), bench::csv_converged(r)});
        }
      }
      idx += runlengths.size();
      table.add_row(std::move(row));
    }
    std::cout << "(p_remote = " << p << ")\n" << table << '\n';
    bench::report_sweep_health(results, "fig06 p_remote=" +
                                            util::Table::num(p, 1));
  }
  std::cout << "Reading: moving right (higher R) lifts tolerance faster than "
               "moving down (more threads),\nonce at least 2 threads exist "
               "to overlap with.\n";
  return 0;
}
