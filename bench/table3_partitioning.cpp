// Table 3: effect of the thread partitioning strategy (n_t x R held
// constant) on network latency tolerance, at p_remote = 0.2 and 0.4.
#include <iostream>

#include "bench_common.hpp"
#include "core/latol.hpp"

int main(int argc, char** argv) {
  using namespace latol;
  using namespace latol::core;
  const bench::CsvSink sink(argc, argv);
  bench::print_header(
      "Table 3 - Thread partitioning strategy vs network latency tolerance",
      "Exposed computation held at n_t x R = 40; the compiler's knob is the "
      "split. Paper finding: fewer, longer threads (n_t >= 2) tolerate "
      "best; n_t = 1 cannot overlap at all.");

  const double work = 40.0;
  const std::vector<int> splits{1, 2, 4, 5, 8, 10};
  auto csv = sink.open("table3", {"p_remote", "n_t", "R", "L_obs", "S_obs",
                                  "lambda_net", "U_p", "tol_network", "solver",
                                  "converged"});

  for (const double p : {0.2, 0.4}) {
    MmsConfig base = MmsConfig::paper_defaults();
    base.p_remote = p;
    const auto points = evaluate_partitions(base, work, splits);
    util::Table table({"n_t", "R", "L_obs", "S_obs", "lambda_net", "U_p",
                       "tol_network", "zone"});
    for (const PartitionPoint& pt : points) {
      table.add_row({std::to_string(pt.n_t), util::Table::num(pt.runlength, 1),
                     util::Table::num(pt.perf.memory_latency, 2),
                     util::Table::num(pt.perf.network_latency, 2),
                     util::Table::num(pt.perf.message_rate, 4),
                     util::Table::num(pt.perf.processor_utilization, 4),
                     util::Table::num(pt.tol_network, 4),
                     bench::zone_tag(pt.tol_network) +
                         bench::convergence_marker(pt.perf)});
      if (csv) {
        csv->add_row({bench::csv_num(p), bench::csv_num(pt.n_t),
                      bench::csv_num(pt.runlength),
                      bench::csv_num(pt.perf.memory_latency),
                      bench::csv_num(pt.perf.network_latency),
                      bench::csv_num(pt.perf.message_rate),
                      bench::csv_num(pt.perf.processor_utilization),
                      bench::csv_num(pt.tol_network),
                      bench::csv_solver(pt.perf),
                      bench::csv_converged(pt.perf)});
      }
    }
    std::cout << "(p_remote = " << p << ", n_t x R = " << work << ")\n"
              << table << '\n';
    const PartitionPoint best = best_partition(points);
    std::cout << "Best split: n_t = " << best.n_t << ", R = " << best.runlength
              << " (U_p = " << best.perf.processor_utilization << ")\n\n";
  }
  return 0;
}
