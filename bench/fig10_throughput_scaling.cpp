// Figure 10: (a) system throughput P x U_p vs P, and (b) observed network
// and memory latencies vs P, for the geometric and uniform patterns and
// for the zero-delay "ideal network" comparator (S = 0), at n_t = 8,
// R = 10, p_remote = 0.2.
#include <iostream>

#include "bench_common.hpp"
#include "core/latol.hpp"

int main(int argc, char** argv) {
  using namespace latol;
  using namespace latol::core;
  const bench::CsvSink sink(argc, argv);
  bench::print_header(
      "Figure 10 - System throughput and latencies vs machine size",
      "Paper findings: geometric throughput scales ~linearly while uniform "
      "falls away; the finite-delay network lowers L_obs relative to the "
      "ideal (S = 0) network by pipelining remote requests. The paper's "
      "claim that geometric throughput slightly *exceeds* the ideal network "
      "does not survive an exact product-form treatment (EXPERIMENTS.md).");

  struct Variant {
    const char* name;
    topo::AccessPattern pattern;
    double switch_delay;
  };
  const std::vector<Variant> variants{
      {"ideal-network", topo::AccessPattern::kGeometric, 0.0},
      {"geometric", topo::AccessPattern::kGeometric, 10.0},
      {"uniform", topo::AccessPattern::kUniform, 10.0},
  };
  const std::vector<int> sides{2, 4, 6, 8, 10};

  util::Table thr({"P", "linear", "ideal-network", "geometric", "uniform"});
  util::Table lat({"P", "S_obs geo", "S_obs uni", "L_obs ideal", "L_obs geo",
                   "L_obs uni"});
  auto csv = sink.open("fig10", {"P", "variant", "throughput", "S_obs",
                                 "L_obs", "U_p", "solver", "converged"});

  for (const int k : sides) {
    const int P = k * k;
    std::vector<double> tput, sobs, lobs;
    for (const Variant& v : variants) {
      MmsConfig cfg = MmsConfig::paper_defaults();
      cfg.k = k;
      cfg.traffic.pattern = v.pattern;
      cfg.switch_delay = v.switch_delay;
      const MmsPerformance perf = analyze(cfg);
      if (const std::string mark = bench::convergence_marker(perf);
          !mark.empty()) {
        std::cout << "P=" << P << " " << v.name << ":" << mark << '\n';
      }
      tput.push_back(P * perf.processor_utilization);
      sobs.push_back(perf.network_latency);
      lobs.push_back(perf.memory_latency);
      if (csv) {
        csv->add_row({bench::csv_num(P),
                      bench::csv_num(static_cast<double>(&v - variants.data())),
                      bench::csv_num(tput.back()),
                      bench::csv_num(perf.network_latency),
                      bench::csv_num(perf.memory_latency),
                      bench::csv_num(perf.processor_utilization),
                      bench::csv_solver(perf), bench::csv_converged(perf)});
      }
    }
    thr.add_row({std::to_string(P), util::Table::num(static_cast<double>(P), 0),
                 util::Table::num(tput[0], 2), util::Table::num(tput[1], 2),
                 util::Table::num(tput[2], 2)});
    lat.add_row({std::to_string(P), util::Table::num(sobs[1], 2),
                 util::Table::num(sobs[2], 2), util::Table::num(lobs[0], 2),
                 util::Table::num(lobs[1], 2), util::Table::num(lobs[2], 2)});
  }
  std::cout << "(a) System throughput P x U_p (n_t = 8, R = 10, p = 0.2)\n"
            << thr << '\n'
            << "(b) Observed latencies\n"
            << lat << '\n'
            << "Reading: the ideal network has no S_obs but the highest "
               "L_obs -\nremote requests pile into the memories instead of "
               "being metered by the switches.\n";
  return 0;
}
