// Extension study (beyond the paper): context-switch overhead. The paper
// carries C in its symbol table but never exercises it (its model machine
// switches in zero time, like TERA's hardware contexts). Software-threaded
// machines pay C on every access; this bench quantifies how fast rising C
// erodes the latency-tolerance benefit of multithreading.
#include <iostream>

#include "bench_common.hpp"
#include "core/latol.hpp"

int main(int argc, char** argv) {
  using namespace latol;
  using namespace latol::core;
  const bench::CsvSink sink(argc, argv);
  bench::print_header(
      "Extension - context switch overhead C",
      "U_p and tol_network vs C at the paper's defaults. U_p counts only "
      "useful runlength (lambda x R), so overhead shows up as lost "
      "utilization even while the processor stays 'busy'.");

  const std::vector<double> overheads{0, 1, 2, 5, 10, 20};
  const std::vector<int> thread_counts{1, 2, 4, 8};
  auto csv = sink.open("ext_context_switch",
                       {"C", "n_t", "U_p", "tol_network", "lambda_net"});

  std::vector<std::string> headers{"n_t \\ C"};
  for (const double c : overheads) headers.push_back(util::Table::num(c, 0));
  util::Table up_table(headers);
  util::Table tol_table(headers);

  for (const int n_t : thread_counts) {
    std::vector<std::string> up_row{std::to_string(n_t)};
    std::vector<std::string> tol_row{std::to_string(n_t)};
    for (const double c : overheads) {
      MmsConfig cfg = MmsConfig::paper_defaults();
      cfg.threads_per_processor = n_t;
      cfg.context_switch = c;
      const ToleranceResult t = tolerance_index(cfg, Subsystem::kNetwork);
      up_row.push_back(util::Table::num(t.actual.processor_utilization, 4));
      tol_row.push_back(util::Table::num(t.index, 4));
      if (csv) {
        csv->add_row({c, static_cast<double>(n_t),
                      t.actual.processor_utilization, t.index,
                      t.actual.message_rate});
      }
    }
    up_table.add_row(std::move(up_row));
    tol_table.add_row(std::move(tol_row));
  }
  std::cout << "U_p (useful work only):\n" << up_table << '\n'
            << "tol_network:\n" << tol_table << '\n';

  // Break-even: how large may C grow before 8 threads do no better than 1?
  MmsConfig single = MmsConfig::paper_defaults();
  single.threads_per_processor = 1;
  single.context_switch = 0.0;
  const double single_up = analyze(single).processor_utilization;
  double break_even = -1.0;
  for (double c = 0.0; c <= 200.0; c += 1.0) {
    MmsConfig cfg = MmsConfig::paper_defaults();
    cfg.context_switch = c;
    if (analyze(cfg).processor_utilization <= single_up) {
      break_even = c;
      break;
    }
  }
  std::cout << "Break-even overhead: 8 threads with C = "
            << util::Table::num(break_even, 0)
            << " do no better than 1 thread with C = 0 (U_p = "
            << util::Table::num(single_up, 4) << ").\n"
            << "Multithreading tolerates latency only while C stays well "
               "below the runlength -\nthe quantitative case for hardware "
               "context switching that TERA/Alewife made.\n";
  return 0;
}
