// Figure 8: tol_memory over (n_t, R) for L = 10 and L = 20 at
// p_remote = 0.2 — when is the memory subsystem the bottleneck?
#include <iostream>

#include "bench_common.hpp"
#include "core/latol.hpp"

int main(int argc, char** argv) {
  using namespace latol;
  using namespace latol::core;
  const bench::CsvSink sink(argc, argv);
  bench::print_header(
      "Figure 8 - tol_memory vs (n_t, R) for L = 10 and L = 20",
      "Paper finding: for R >= 2L and n_t >= 6 the memory latency is fully "
      "tolerated (tol_memory -> 1); doubling L drags short-runlength "
      "workloads into the non-tolerated region.");

  const std::vector<int> thread_counts{1, 2, 4, 6, 8, 10};
  const std::vector<double> runlengths{2, 5, 10, 20, 30, 40};
  auto csv = sink.open("fig08", {"L", "n_t", "R", "tol_memory", "U_p",
                                 "solver", "converged"});

  for (const double L : {10.0, 20.0}) {
    std::vector<MmsConfig> grid;
    for (const int n_t : thread_counts) {
      for (const double r : runlengths) {
        MmsConfig cfg = MmsConfig::paper_defaults();
        cfg.memory_latency = L;
        cfg.threads_per_processor = n_t;
        cfg.runlength = r;
        grid.push_back(cfg);
      }
    }
    SweepOptions opts;
    opts.memory_tolerance = true;
    const auto results = sweep(grid, opts);

    std::vector<std::string> headers{"n_t \\ R"};
    for (const double r : runlengths) headers.push_back(util::Table::num(r, 0));
    util::Table table(std::move(headers));
    std::size_t idx = 0;
    for (const int n_t : thread_counts) {
      std::vector<std::string> row{std::to_string(n_t)};
      for (std::size_t j = 0; j < runlengths.size(); ++j) {
        const SweepResult& r = results[idx + j];
        const double tol = r.tol_memory.value_or(0.0);
        row.push_back(util::Table::num(tol, 3));
        if (csv) {
          csv->add_row({bench::csv_num(L), bench::csv_num(n_t),
                        bench::csv_num(runlengths[j]), bench::csv_num(tol),
                        bench::csv_num(r.perf.processor_utilization),
                        bench::csv_solver(r), bench::csv_converged(r)});
        }
      }
      idx += runlengths.size();
      table.add_row(std::move(row));
    }
    std::cout << "(L = " << L << ")\n" << table << '\n';
    bench::report_sweep_health(results, "fig08 L=" + util::Table::num(L, 0));
  }
  return 0;
}
