// Google-benchmark reporter that tees results to a JSON file through the
// project's own writer (io::Json), so perf numbers are machine-readable
// for CI trend tracking without google-benchmark's --benchmark_out flag
// being part of every invocation.
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <utility>
#include <vector>

#include "io/json.hpp"

namespace latol::bench {

/// Prints the normal console table AND writes `path` on Finalize with
/// {"benchmarks": [{name, iterations, real_time, cpu_time, time_unit,
/// items_per_second?, label?}, ...]}. Errored runs are skipped.
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonTeeReporter(std::string path) : path_(std::move(path)) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      io::Json entry = io::Json::object();
      entry.set("name", run.benchmark_name());
      entry.set("iterations", static_cast<double>(run.iterations));
      entry.set("real_time", run.GetAdjustedRealTime());
      entry.set("cpu_time", run.GetAdjustedCPUTime());
      entry.set("time_unit", benchmark::GetTimeUnitString(run.time_unit));
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        entry.set("items_per_second", static_cast<double>(items->second));
      }
      if (!run.report_label.empty()) entry.set("label", run.report_label);
      benchmarks_.push_back(std::move(entry));
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  void Finalize() override {
    io::Json doc = io::Json::object();
    io::Json list = io::Json::array();
    for (io::Json& b : benchmarks_) list.push_back(std::move(b));
    doc.set("benchmarks", std::move(list));
    io::write_json_file(path_, doc);
    benchmark::ConsoleReporter::Finalize();
  }

 private:
  std::string path_;
  std::vector<io::Json> benchmarks_;
};

/// Shared main: run all registered benchmarks, teeing to `json_path`.
inline int run_benchmarks_with_json(int argc, char** argv,
                                    const std::string& json_path) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonTeeReporter reporter(json_path);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}

}  // namespace latol::bench
