// Extension study: the architectural fixes the paper suggests in §7 but
// never evaluates.
//
//   "A very fast IN may increase the contention at local memory, and the
//    performance suffers, if memory response time is not low.
//    Multiporting/pipelining the memory can be of help."
//
// We build exactly that scenario — a large machine with a zero-delay
// ("very fast") interconnect — and measure how memory ports recover the
// lost performance; then we evaluate pipelined (wormhole-style) switches
// as the complementary fix on the network side.
#include <iostream>

#include "bench_common.hpp"
#include "core/latol.hpp"

int main(int argc, char** argv) {
  using namespace latol;
  using namespace latol::core;
  const bench::CsvSink sink(argc, argv);
  bench::print_header(
      "Extension - multiported memories and pipelined switches (paper §7)",
      "8x8 torus, n_t = 8, R = 10, p_remote = 0.2. The 'very fast IN' "
      "machine has S = 0; ports then attack the resulting memory "
      "contention.");

  auto csv = sink.open("ext_memory_ports",
                       {"S", "ports", "U_p", "L_obs", "rho_mem"});

  util::Table table(
      {"machine", "ports", "U_p", "L_obs", "rho(mem)", "S_obs"});
  for (const double S : {0.0, 10.0}) {
    for (const int ports : {1, 2, 4}) {
      MmsConfig cfg = MmsConfig::paper_defaults();
      cfg.k = 8;
      cfg.switch_delay = S;
      cfg.memory_ports = ports;
      const MmsPerformance perf = analyze(cfg);
      table.add_row({S == 0.0 ? "very fast IN (S=0)" : "baseline (S=10)",
                     std::to_string(ports),
                     util::Table::num(perf.processor_utilization, 4),
                     util::Table::num(perf.memory_latency, 2),
                     util::Table::num(perf.memory_utilization, 3),
                     util::Table::num(perf.network_latency, 2)});
      if (csv) {
        csv->add_row({S, static_cast<double>(ports),
                      perf.processor_utilization, perf.memory_latency,
                      perf.memory_utilization});
      }
    }
  }
  std::cout << table << '\n';

  // Pipelined switches: remove network queueing instead of adding ports.
  util::Table pipe({"switches", "U_p", "S_obs", "L_obs", "tol_network"});
  for (const bool pipelined : {false, true}) {
    MmsConfig cfg = MmsConfig::paper_defaults();
    cfg.k = 8;
    cfg.p_remote = 0.4;  // network-stressed
    cfg.pipelined_switches = pipelined;
    const ToleranceResult t = tolerance_index(cfg, Subsystem::kNetwork,
                                              IdealMethod::kModifyWorkload);
    pipe.add_row({pipelined ? "pipelined (delay)" : "store-and-forward",
                  util::Table::num(t.actual.processor_utilization, 4),
                  util::Table::num(t.actual.network_latency, 2),
                  util::Table::num(t.actual.memory_latency, 2),
                  util::Table::num(t.index, 4)});
  }
  std::cout << "Pipelined vs store-and-forward switches (p_remote = 0.4):\n"
            << pipe << '\n';

  std::cout
      << "Reading: with a very fast IN the memories absorb all contention "
         "(high L_obs);\nmultiporting recovers most of the loss - the §7 "
         "suggestion quantified. Pipelined\nswitches fix the complementary "
         "bottleneck: S_obs collapses to the unloaded\n(d_avg+1)S and "
         "tolerance jumps.\n";
  return 0;
}
