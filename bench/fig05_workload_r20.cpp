// Figure 5: effect of workload parameters (n_t, p_remote) at R = 20.
// Same surfaces as Figure 4 with a doubled runlength: the saturation and
// critical p_remote roughly double (Eqs. 4-5).
#include "workload_figure.hpp"

int main(int argc, char** argv) {
  const latol::bench::CsvSink sink(argc, argv);
  latol::bench::print_header(
      "Figure 5 - Effect of workload parameters at R = 20",
      "Paper markers: lambda_net saturates past p_remote ~0.6; critical "
      "p_remote ~0.68; tolerance zones shift right relative to Figure 4.");
  latol::bench::run_workload_figure(20.0, "fig05", sink);
  return 0;
}
