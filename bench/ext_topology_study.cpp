// Extension study (beyond the paper): how does the interconnect family
// change latency tolerance at equal machine size? The paper fixes a 2-D
// torus; its contemporaries shipped meshes (Intel Paragon), rings, and
// hypercubes (nCUBE). The tolerance index ranks them directly.
#include <iostream>

#include "bench_common.hpp"
#include "core/latol.hpp"

int main(int argc, char** argv) {
  using namespace latol;
  using namespace latol::core;
  const bench::CsvSink sink(argc, argv);
  bench::print_header(
      "Extension - topology study at equal machine size",
      "16- and 64-node machines, uniform traffic at p_remote = 0.4 (the "
      "network-stressed regime). Expectation: tolerance orders by average "
      "distance: hypercube > torus > mesh > ring.");

  struct Machine {
    topo::TopologyKind kind;
    int side;
  };
  auto csv = sink.open("ext_topology", {"P", "topology", "d_avg", "U_p",
                                        "S_obs", "tol_network"});

  for (const int target : {16, 64}) {
    const std::vector<Machine> machines{
        {topo::TopologyKind::kHypercube, target == 16 ? 4 : 6},
        {topo::TopologyKind::kTorus2D, target == 16 ? 4 : 8},
        {topo::TopologyKind::kMesh2D, target == 16 ? 4 : 8},
        {topo::TopologyKind::kRing, target},
    };
    util::Table table(
        {"topology", "P", "d_avg", "U_p", "S_obs", "tol_network", "zone"});
    for (const Machine& m : machines) {
      MmsConfig cfg = MmsConfig::paper_defaults();
      cfg.topology = m.kind;
      cfg.k = m.side;
      cfg.traffic.pattern = topo::AccessPattern::kUniform;
      cfg.p_remote = 0.4;
      const ToleranceResult t = tolerance_index(cfg, Subsystem::kNetwork);
      table.add_row({topo::topology_kind_name(m.kind),
                     std::to_string(cfg.num_processors()),
                     util::Table::num(t.actual.average_distance, 3),
                     util::Table::num(t.actual.processor_utilization, 4),
                     util::Table::num(t.actual.network_latency, 1),
                     util::Table::num(t.index, 4), bench::zone_tag(t.index)});
      if (csv) {
        csv->add_row({static_cast<double>(cfg.num_processors()),
                      static_cast<double>(m.kind),
                      t.actual.average_distance,
                      t.actual.processor_utilization,
                      t.actual.network_latency, t.index});
      }
    }
    std::cout << "(" << target << " processing elements)\n" << table << '\n';
  }

  // With good locality the ranking compresses: geometric traffic shields
  // even the ring.
  util::Table loc({"topology", "tol (uniform)", "tol (geometric p_sw=0.5)"});
  for (const Machine& m :
       {Machine{topo::TopologyKind::kHypercube, 6},
        Machine{topo::TopologyKind::kTorus2D, 8},
        Machine{topo::TopologyKind::kMesh2D, 8},
        Machine{topo::TopologyKind::kRing, 64}}) {
    MmsConfig cfg = MmsConfig::paper_defaults();
    cfg.topology = m.kind;
    cfg.k = m.side;
    cfg.p_remote = 0.4;
    cfg.traffic.pattern = topo::AccessPattern::kUniform;
    const double uni = tolerance_index(cfg, Subsystem::kNetwork).index;
    cfg.traffic.pattern = topo::AccessPattern::kGeometric;
    const double geo = tolerance_index(cfg, Subsystem::kNetwork).index;
    loc.add_row({topo::topology_kind_name(m.kind), util::Table::num(uni, 4),
                 util::Table::num(geo, 4)});
  }
  std::cout << "Locality compresses the topology gap (64 nodes):\n" << loc
            << '\n'
            << "Takeaway: topology matters exactly when locality is poor - "
               "the paper's d_avg\nterm in Eqs. 4-5 is the whole story.\n";
  return 0;
}
