// Figure 4: effect of workload parameters (n_t, p_remote) at R = 10.
// Reproduces the four surfaces U_p, S_obs, lambda_net, tol_network.
#include "workload_figure.hpp"

int main(int argc, char** argv) {
  const latol::bench::CsvSink sink(argc, argv);
  latol::bench::print_header(
      "Figure 4 - Effect of workload parameters at R = 10",
      "Surfaces over n_t x p_remote; paper markers: lambda_net saturates at "
      "~0.029 past p_remote ~0.3; U_p high below the critical p_remote "
      "~0.18; 5-8 threads capture most gains.");
  latol::bench::run_workload_figure(10.0, "fig04", sink);
  return 0;
}
