// Ablation: how much do the reconstruction choices documented in
// DESIGN.md actually move the headline numbers? For each choice we report
// the Table-2 anchor point (n_t = 8, p_remote = 0.2, R = 10) and the
// closed-form constants, under both readings.
//
// Choices ablated:
//  (1) geometric normalization: distance-class (paper, d_avg = 1.733)
//      vs per-module (d_avg = 1.66);
//  (2) the request's pass through the source outbound switch: counted
//      (our reading, matches "2S to get on/off the IN") vs the literal
//      eo = em reading;
//  (3) ideal-system method for tol_network: modify-workload (paper's
//      preference) vs zero-delay switches;
//  (4) AMVA flavor: Bard-Schweitzer (the paper's Fig. 3) vs Linearizer.
#include <iostream>

#include "bench_common.hpp"
#include "core/latol.hpp"
#include "qn/mva_linearizer.hpp"

int main(int argc, char** argv) {
  using namespace latol;
  using namespace latol::core;
  const bench::CsvSink sink(argc, argv);
  bench::print_header(
      "Ablation - sensitivity of the reproduction to modeling choices",
      "Anchor point: paper Table 2 row (R = 10, n_t = 8, p_remote = 0.2); "
      "paper values tol_network = 0.929, S_obs ~53.");

  auto csv = sink.open("ablation", {"variant", "d_avg", "U_p", "S_obs",
                                    "lambda_net", "tol_network"});
  util::Table table({"variant", "d_avg", "U_p", "S_obs", "lambda_net",
                     "tol_network"});
  auto report = [&](const std::string& name, const MmsConfig& cfg,
                    IdealMethod method) {
    const ToleranceResult t =
        tolerance_index(cfg, Subsystem::kNetwork, method);
    table.add_row({name, util::Table::num(t.actual.average_distance, 3),
                   util::Table::num(t.actual.processor_utilization, 4),
                   util::Table::num(t.actual.network_latency, 2),
                   util::Table::num(t.actual.message_rate, 4),
                   util::Table::num(t.index, 4)});
    if (csv) {
      csv->add_row({name,
                    util::Table::num(t.actual.average_distance, 6),
                    util::Table::num(t.actual.processor_utilization, 6),
                    util::Table::num(t.actual.network_latency, 6),
                    util::Table::num(t.actual.message_rate, 6),
                    util::Table::num(t.index, 6)});
    }
  };

  const MmsConfig base = MmsConfig::paper_defaults();
  report("baseline (paper reading)", base, IdealMethod::kModifyWorkload);

  MmsConfig per_module = base;
  per_module.traffic.mode = topo::GeometricMode::kPerModule;
  report("geometric: per-module", per_module, IdealMethod::kModifyWorkload);

  MmsConfig no_src_out = base;
  no_src_out.count_source_outbound = false;
  report("literal eo=em (no source outbound)", no_src_out,
         IdealMethod::kModifyWorkload);

  report("ideal = zero-delay switches", base, IdealMethod::kZeroDelay);
  std::cout << table << '\n';

  // (4) AMVA flavor on the same anchor.
  const MmsModel model(base);
  const auto net = model.build_network();
  const auto schweitzer = qn::solve_amva(net);
  const auto linearizer = qn::solve_linearizer(net);
  util::Table amva({"solver", "U_p", "iterations"});
  amva.add_row({"Bard-Schweitzer (paper Fig. 3)",
                util::Table::num(schweitzer.throughput[0] * base.runlength, 5),
                std::to_string(schweitzer.iterations)});
  amva.add_row({"Linearizer",
                util::Table::num(linearizer.throughput[0] * base.runlength, 5),
                std::to_string(linearizer.iterations)});
  std::cout << "AMVA flavor at the anchor point:\n" << amva << '\n';

  std::cout << "Reading: the reproduction is robust - every variant stays "
               "within a few percent\non U_p and tolerance; the largest "
               "lever is the geometric normalization through d_avg,\nwhich "
               "is exactly the constant the paper's printed 1.733 pins "
               "down.\n\nSolver note: long simulations of the default "
               "machine give U_p ~0.843; Linearizer\nmatches that almost "
               "exactly while Bard-Schweitzer sits ~3% low - the same\n"
               "\"model predictions are slightly lower than the "
               "simulations\" bias the paper\nreports in its own "
               "validation (further evidence Fig. 3 is Bard-Schweitzer).\n";
  return 0;
}
