#include "core/sweep.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace latol::core {
namespace {

std::vector<MmsConfig> small_grid() {
  std::vector<MmsConfig> grid;
  for (const int n_t : {1, 4, 8}) {
    for (const double p : {0.1, 0.4}) {
      MmsConfig cfg = MmsConfig::paper_defaults();
      cfg.threads_per_processor = n_t;
      cfg.p_remote = p;
      grid.push_back(cfg);
    }
  }
  return grid;
}

TEST(Sweep, MatchesSerialAnalysis) {
  const auto grid = small_grid();
  const auto results = sweep(grid, {});
  ASSERT_EQ(results.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    ASSERT_FALSE(results[i].error.has_value());
    const MmsPerformance serial = analyze(grid[i]);
    EXPECT_NEAR(results[i].perf.processor_utilization,
                serial.processor_utilization, 1e-12)
        << "grid point " << i;
  }
}

TEST(Sweep, DeterministicAcrossWorkerCounts) {
  const auto grid = small_grid();
  SweepOptions one;
  one.workers = 1;
  SweepOptions many;
  many.workers = 8;
  const auto a = sweep(grid, one);
  const auto b = sweep(grid, many);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(a[i].perf.processor_utilization,
              b[i].perf.processor_utilization);
  }
}

TEST(Sweep, ToleranceFieldsOnlyWhenRequested) {
  const auto grid = small_grid();
  const auto plain = sweep(grid, {});
  EXPECT_FALSE(plain[0].tol_network.has_value());
  EXPECT_FALSE(plain[0].tol_memory.has_value());

  SweepOptions opts;
  opts.network_tolerance = true;
  opts.memory_tolerance = true;
  const auto full = sweep(grid, opts);
  for (const auto& r : full) {
    ASSERT_TRUE(r.tol_network.has_value());
    ASSERT_TRUE(r.tol_memory.has_value());
    EXPECT_GT(*r.tol_network, 0.0);
    EXPECT_LE(*r.tol_network, 1.2);
    EXPECT_GT(*r.tol_memory, 0.0);
  }
}

TEST(Sweep, CapturesPerPointErrors) {
  std::vector<MmsConfig> grid = small_grid();
  grid[1].runlength = -1.0;  // invalid
  const auto results = sweep(grid, {});
  EXPECT_FALSE(results[0].error.has_value());
  ASSERT_TRUE(results[1].error.has_value());
  EXPECT_NE(results[1].error->find("R="), std::string::npos);
  EXPECT_FALSE(results[2].error.has_value());
}

TEST(Sweep, ErrorCodeClassifiesInvalidConfigs) {
  std::vector<MmsConfig> grid = small_grid();
  grid[1].runlength = -1.0;  // invalid
  const auto results = sweep(grid, {});
  ASSERT_TRUE(results[1].error_code.has_value());
  EXPECT_EQ(*results[1].error_code, qn::SolverErrorCode::kInvalidNetwork);
  EXPECT_FALSE(results[1].healthy());
  // The failure is isolated: the neighbours are untouched and healthy.
  EXPECT_TRUE(results[0].healthy());
  EXPECT_TRUE(results[2].healthy());
  EXPECT_FALSE(results[0].error_code.has_value());
}

TEST(Sweep, StarvedBudgetDegradesInsteadOfErroring) {
  const auto grid = small_grid();
  SweepOptions opts;
  opts.amva.max_iterations = 1;  // AMVA cannot finish: fallback must answer
  const auto results = sweep(grid, opts);
  for (const auto& r : results) {
    ASSERT_FALSE(r.error.has_value());
    EXPECT_TRUE(r.perf.degraded);
    EXPECT_NE(r.perf.solver, qn::SolverKind::kAmva);
    EXPECT_FALSE(r.healthy());  // degraded counts as unhealthy for reports
    EXPECT_TRUE(std::isfinite(r.perf.processor_utilization));
  }
}

TEST(Sweep, HealthyPointsRecordTheirSolver) {
  const auto results = sweep(small_grid(), {});
  for (const auto& r : results) {
    ASSERT_TRUE(r.healthy());
    EXPECT_EQ(r.perf.solver, qn::SolverKind::kAmva);
    EXPECT_FALSE(r.perf.degraded);
    EXPECT_LT(r.perf.residual, 1e-6);
  }
}

TEST(Sweep, EmptyGridYieldsEmptyResults) {
  EXPECT_TRUE(sweep({}, {}).empty());
}

TEST(Sweep, NetworkMethodIsRespected) {
  MmsConfig cfg = MmsConfig::paper_defaults();
  cfg.p_remote = 0.3;
  const std::vector<MmsConfig> grid{cfg};
  SweepOptions workload;
  workload.network_tolerance = true;
  workload.network_method = IdealMethod::kModifyWorkload;
  SweepOptions zerodelay;
  zerodelay.network_tolerance = true;
  zerodelay.network_method = IdealMethod::kZeroDelay;
  const double a = *sweep(grid, workload)[0].tol_network;
  const double b = *sweep(grid, zerodelay)[0].tol_network;
  // Two different ideals -> generally different indices.
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace latol::core
