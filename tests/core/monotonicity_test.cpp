// Monotonicity property suite: physical sanity constraints the model must
// satisfy across its whole parameter space. Closed product-form networks
// are provably monotone in service demands; these tests pin that down for
// the assembled MMS model (any visit-ratio or extraction bug breaks them).
#include <gtest/gtest.h>

#include "core/latol.hpp"

namespace latol::core {
namespace {

double up(const MmsConfig& cfg) { return analyze(cfg).processor_utilization; }

class MonotoneInLoad : public ::testing::TestWithParam<double> {};

TEST_P(MonotoneInLoad, UtilizationFallsWithSwitchDelay) {
  MmsConfig cfg = MmsConfig::paper_defaults();
  cfg.p_remote = GetParam();
  double prev = 2.0;
  for (const double s : {0.0, 5.0, 10.0, 20.0, 40.0}) {
    cfg.switch_delay = s;
    const double u = up(cfg);
    EXPECT_LE(u, prev + 1e-9) << "S=" << s;
    prev = u;
  }
}

TEST_P(MonotoneInLoad, UtilizationFallsWithMemoryLatency) {
  MmsConfig cfg = MmsConfig::paper_defaults();
  cfg.p_remote = GetParam();
  double prev = 2.0;
  for (const double l : {0.0, 5.0, 10.0, 20.0, 40.0}) {
    cfg.memory_latency = l;
    const double u = up(cfg);
    EXPECT_LE(u, prev + 1e-9) << "L=" << l;
    prev = u;
  }
}

TEST_P(MonotoneInLoad, UtilizationRisesWithThreads) {
  MmsConfig cfg = MmsConfig::paper_defaults();
  cfg.p_remote = GetParam();
  double prev = 0.0;
  for (const int n : {1, 2, 4, 8, 16}) {
    cfg.threads_per_processor = n;
    const double u = up(cfg);
    EXPECT_GE(u, prev - 1e-9) << "n_t=" << n;
    prev = u;
  }
}

TEST_P(MonotoneInLoad, UtilizationRisesWithMemoryPorts) {
  MmsConfig cfg = MmsConfig::paper_defaults();
  cfg.p_remote = GetParam();
  cfg.runlength = 5.0;  // memory matters
  double prev = 0.0;
  for (const int ports : {1, 2, 3, 4}) {
    cfg.memory_ports = ports;
    const double u = up(cfg);
    EXPECT_GE(u, prev - 1e-9) << "ports=" << ports;
    prev = u;
  }
}

TEST_P(MonotoneInLoad, UtilizationFallsWithContextSwitchOverhead) {
  MmsConfig cfg = MmsConfig::paper_defaults();
  cfg.p_remote = GetParam();
  double prev = 2.0;
  for (const double c : {0.0, 2.0, 5.0, 10.0}) {
    cfg.context_switch = c;
    const double u = up(cfg);
    EXPECT_LE(u, prev + 1e-9) << "C=" << c;
    prev = u;
  }
}

TEST_P(MonotoneInLoad, PipeliningNeverHurts) {
  MmsConfig cfg = MmsConfig::paper_defaults();
  cfg.p_remote = GetParam();
  const double queued = up(cfg);
  cfg.pipelined_switches = true;
  EXPECT_GE(up(cfg), queued - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RemoteFractions, MonotoneInLoad,
                         ::testing::Values(0.05, 0.2, 0.5));

TEST(Monotonicity, ObservedLatenciesGrowWithThreads) {
  MmsConfig cfg = MmsConfig::paper_defaults();
  double prev_s = 0.0, prev_l = 0.0;
  for (const int n : {1, 2, 4, 8}) {
    cfg.threads_per_processor = n;
    const MmsPerformance perf = analyze(cfg);
    EXPECT_GE(perf.network_latency, prev_s - 1e-9);
    EXPECT_GE(perf.memory_latency, prev_l - 1e-9);
    prev_s = perf.network_latency;
    prev_l = perf.memory_latency;
  }
}

TEST(Monotonicity, BetterLocalityNeverHurtsOnLargeMachines) {
  MmsConfig cfg = MmsConfig::paper_defaults();
  cfg.k = 8;
  double prev = 0.0;
  for (const double p_sw : {0.9, 0.7, 0.5, 0.3, 0.1}) {
    cfg.traffic.p_sw = p_sw;
    const double u = up(cfg);
    EXPECT_GE(u, prev - 1e-9) << "p_sw=" << p_sw;
    prev = u;
  }
}

TEST(Monotonicity, UtilizationBoundedByClosedForms) {
  // U_p can never beat either the memory-bound or the network-bound caps
  // implied by the bottleneck analysis.
  for (const double p : {0.1, 0.3, 0.6}) {
    for (const double r : {5.0, 10.0, 20.0}) {
      MmsConfig cfg = MmsConfig::paper_defaults();
      cfg.p_remote = p;
      cfg.runlength = r;
      const BottleneckAnalysis bn = bottleneck_analysis(cfg);
      const MmsPerformance perf = analyze(cfg);
      // Network cap: lambda * p <= lambda_net_sat.
      EXPECT_LE(perf.message_rate, bn.lambda_net_sat * (1.0 + 1e-9));
      // Memory cap: every memory serves rate lambda <= 1/L.
      EXPECT_LE(perf.access_rate, bn.memory_service_rate * (1.0 + 1e-9));
      EXPECT_LE(perf.processor_utilization, 1.0 + 1e-9);
    }
  }
}

}  // namespace
}  // namespace latol::core
