#include "core/thread_partition.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace latol::core {
namespace {

TEST(ThreadPartition, ValidatesInputs) {
  const MmsConfig base = MmsConfig::paper_defaults();
  EXPECT_THROW((void)evaluate_partitions(base, 0.0, {1, 2}), InvalidArgument);
  EXPECT_THROW((void)evaluate_partitions(base, 40.0, {}), InvalidArgument);
  EXPECT_THROW((void)evaluate_partitions(base, 40.0, {0}), InvalidArgument);
  EXPECT_THROW((void)best_partition({}), InvalidArgument);
}

TEST(ThreadPartition, KeepsWorkBudgetConstant) {
  const auto points = evaluate_partitions(MmsConfig::paper_defaults(), 40.0,
                                          {1, 2, 4, 8});
  ASSERT_EQ(points.size(), 4u);
  for (const auto& pt : points) {
    EXPECT_NEAR(pt.runlength * pt.n_t, 40.0, 1e-12);
    EXPECT_GT(pt.perf.processor_utilization, 0.0);
    EXPECT_GT(pt.tol_network, 0.0);
    EXPECT_GT(pt.tol_memory, 0.0);
  }
}

TEST(ThreadPartition, FewThreadsWithLongRunlengthsWinForModerateBudgets) {
  // Paper §5: "a high R (than a high n_t) provides better latency
  // tolerance, as long as n_t is more than 1" — with n_t x R = 40 and
  // p_remote = 0.2, n_t = 2 (R = 20) should beat n_t = 8 (R = 5).
  const auto points = evaluate_partitions(MmsConfig::paper_defaults(), 40.0,
                                          {1, 2, 4, 8});
  const auto& one = points[0];
  const auto& two = points[1];
  const auto& eight = points[3];
  EXPECT_GT(two.perf.processor_utilization,
            eight.perf.processor_utilization);
  // ...but a single thread cannot overlap anything and loses to two.
  EXPECT_GT(two.perf.processor_utilization, one.perf.processor_utilization);
}

TEST(ThreadPartition, BestPartitionMaximizesUtilization) {
  const auto points = evaluate_partitions(MmsConfig::paper_defaults(), 40.0,
                                          {1, 2, 4, 5, 8, 10});
  const PartitionPoint best = best_partition(points);
  for (const auto& pt : points) {
    EXPECT_GE(best.perf.processor_utilization,
              pt.perf.processor_utilization - 1e-12);
  }
}

TEST(ThreadPartition, TieBreaksTowardFewerThreads) {
  PartitionPoint a;
  a.n_t = 4;
  a.perf.processor_utilization = 0.9;
  PartitionPoint b;
  b.n_t = 2;
  b.perf.processor_utilization = 0.9;
  const PartitionPoint best = best_partition({a, b});
  EXPECT_EQ(best.n_t, 2);
}

TEST(ThreadPartition, ToleranceRoughlyConstantAtFixedBudgetLowRemote) {
  // Paper Table 3 observation 2: at fixed p_remote = 0.2 and fixed n_t x R,
  // tol_network stays fairly flat across splits (both U_p and the ideal
  // scale together). Allow a generous band.
  const auto points = evaluate_partitions(MmsConfig::paper_defaults(), 40.0,
                                          {2, 4, 8});
  double lo = 2.0, hi = 0.0;
  for (const auto& pt : points) {
    lo = std::min(lo, pt.tol_network);
    hi = std::max(hi, pt.tol_network);
  }
  EXPECT_LT(hi - lo, 0.15);
}

}  // namespace
}  // namespace latol::core
