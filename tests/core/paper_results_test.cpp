// Integration suite pinning the paper's published quantitative claims.
// Each test names the paper section/table/figure it reproduces. Tolerances
// are deliberately loose enough to survive solver-tuning changes but tight
// enough that a modeling mistake (wrong visit ratio, wrong routing, wrong
// normalization) breaks them.
#include <gtest/gtest.h>

#include "core/latol.hpp"

namespace latol::core {
namespace {

// --- §5 / Table 2 -----------------------------------------------------------

TEST(PaperResults, Table2NetworkToleranceAtDefaults) {
  // R=10, n_t=8, p_remote=0.2: the paper reports tol_network = 0.929 and
  // S_obs ~= 53.
  const MmsConfig cfg = MmsConfig::paper_defaults();
  const ToleranceResult t = tolerance_index(cfg, Subsystem::kNetwork);
  EXPECT_NEAR(t.index, 0.929, 0.03);
  EXPECT_NEAR(t.actual.network_latency, 53.0, 4.0);
  EXPECT_EQ(t.zone(), ToleranceZone::kTolerated);
}

TEST(PaperResults, Table2SameLatencyDifferentTolerance) {
  // "n_t = 8 tolerates an S_obs of 53 time units, but n_t = 3 does not":
  // workload characteristics, not the latency value, decide tolerance.
  MmsConfig big = MmsConfig::paper_defaults();   // n_t = 8, p = 0.2
  MmsConfig small = MmsConfig::paper_defaults();
  small.threads_per_processor = 3;
  small.p_remote = 0.4;  // fewer threads, more remote traffic
  const ToleranceResult t_big = tolerance_index(big, Subsystem::kNetwork);
  const ToleranceResult t_small = tolerance_index(small, Subsystem::kNetwork);
  // Comparable observed latencies...
  EXPECT_NEAR(t_big.actual.network_latency, t_small.actual.network_latency,
              12.0);
  // ...but clearly different tolerance zones.
  EXPECT_EQ(t_big.zone(), ToleranceZone::kTolerated);
  EXPECT_NE(t_small.zone(), ToleranceZone::kTolerated);
}

// --- §5 / Figures 4-5 -------------------------------------------------------

TEST(PaperResults, Fig4MessageRateSaturatesAtEqFourValue) {
  // lambda_net flattens once p_remote passes ~0.3 (R = 10), approaching
  // the Eq. 4 cap from below (a finite thread population keeps the
  // switches a little under 100% busy, so ~85-90% of the cap at n_t = 8).
  MmsConfig cfg = MmsConfig::paper_defaults();
  const double cap = bottleneck_analysis(cfg).lambda_net_sat;
  cfg.p_remote = 0.5;
  const double at_half = analyze(cfg).message_rate;
  cfg.p_remote = 0.8;
  const double at_eight = analyze(cfg).message_rate;
  EXPECT_LE(at_half, cap);
  EXPECT_LE(at_eight, cap);
  EXPECT_GT(at_half, 0.78 * cap);
  // Saturated: nearly flat in p_remote.
  EXPECT_NEAR(at_half, at_eight, 0.05 * cap);
  // More threads push the rate closer to the closed-form cap.
  cfg.threads_per_processor = 32;
  EXPECT_GT(analyze(cfg).message_rate, 0.93 * cap);
}

TEST(PaperResults, Fig4UtilizationZonesInPRemote) {
  // U_p stays high below the Eq. 5 critical point, drops between the
  // critical point and saturation, and is lowest beyond saturation.
  MmsConfig cfg = MmsConfig::paper_defaults();
  cfg.threads_per_processor = 4;
  cfg.p_remote = 0.05;
  const double low = analyze(cfg).processor_utilization;
  cfg.p_remote = 0.25;
  const double mid = analyze(cfg).processor_utilization;
  cfg.p_remote = 0.6;
  const double high = analyze(cfg).processor_utilization;
  EXPECT_GT(low, 0.75);
  EXPECT_GT(low, mid);
  EXPECT_GT(mid, high);
  EXPECT_LT(high, 0.5);
}

TEST(PaperResults, Fig4NetworkLatencyGrowsLinearlyWithThreads) {
  // At saturation S_obs grows ~linearly in n_t (more messages waiting).
  MmsConfig cfg = MmsConfig::paper_defaults();
  cfg.p_remote = 0.5;
  std::vector<double> sobs;
  for (const int n : {2, 4, 6, 8}) {
    cfg.threads_per_processor = n;
    sobs.push_back(analyze(cfg).network_latency);
  }
  const double d1 = sobs[1] - sobs[0];
  const double d2 = sobs[2] - sobs[1];
  const double d3 = sobs[3] - sobs[2];
  EXPECT_GT(d1, 0.0);
  // Successive increments within 35% of each other = roughly linear.
  EXPECT_NEAR(d2, d1, 0.35 * d1);
  EXPECT_NEAR(d3, d2, 0.35 * d2);
}

TEST(PaperResults, Fig5HigherRunlengthToleratesHigherPRemote) {
  // R = 20 tolerates p_remote values up to ~0.6 (vs ~0.3 at R = 10).
  MmsConfig r10 = MmsConfig::paper_defaults();
  r10.p_remote = 0.4;
  MmsConfig r20 = r10;
  r20.runlength = 20.0;
  const double t10 = tolerance_index(r10, Subsystem::kNetwork).index;
  const double t20 = tolerance_index(r20, Subsystem::kNetwork).index;
  EXPECT_LT(t10, 0.8);
  EXPECT_GT(t20, t10 + 0.1);
}

TEST(PaperResults, MostGainsByFiveToEightThreads) {
  // "a use of 5 to 8 threads results in most of the performance gains".
  MmsConfig cfg = MmsConfig::paper_defaults();
  auto up = [&](int n) {
    cfg.threads_per_processor = n;
    return analyze(cfg).processor_utilization;
  };
  const double u1 = up(1), u5 = up(5), u8 = up(8), u16 = up(16);
  EXPECT_GT(u5 - u1, 4.0 * (u8 - u5));  // early gains dominate
  // >= 80% of the n_t = 16 gain is already realized by n_t = 8.
  EXPECT_GT((u8 - u1) / (u16 - u1), 0.8);
}

// --- §6 / Figure 8, Table 4 -------------------------------------------------

TEST(PaperResults, Fig8MemoryToleranceSaturatesForLongRunlengths) {
  // tol_memory ~= 1 for R >= 2L and n_t >= 6.
  MmsConfig cfg = MmsConfig::paper_defaults();
  cfg.runlength = 2.0 * cfg.memory_latency;
  cfg.threads_per_processor = 6;
  EXPECT_GT(tolerance_index(cfg, Subsystem::kMemory).index, 0.93);
}

TEST(PaperResults, Table4DoublingMemoryLatencyHurtsShortRunlengths) {
  // L: 10 -> 20 at R = 10 substantially lowers tol_memory and U_p.
  MmsConfig l10 = MmsConfig::paper_defaults();
  MmsConfig l20 = l10;
  l20.memory_latency = 20.0;
  const ToleranceResult t10 = tolerance_index(l10, Subsystem::kMemory);
  const ToleranceResult t20 = tolerance_index(l20, Subsystem::kMemory);
  EXPECT_LT(t20.index, t10.index - 0.1);
  EXPECT_LT(t20.actual.processor_utilization,
            t10.actual.processor_utilization);
}

TEST(PaperResults, HighToleranceOfOneSubsystemIsNotEnough) {
  // §6 point 1: U_p is high only when BOTH latencies are tolerated. Build
  // a point where memory is tolerated but the network is not.
  MmsConfig cfg = MmsConfig::paper_defaults();
  cfg.p_remote = 0.6;  // deep network saturation
  const double tol_mem = tolerance_index(cfg, Subsystem::kMemory).index;
  const double tol_net = tolerance_index(cfg, Subsystem::kNetwork).index;
  const double up = analyze(cfg).processor_utilization;
  EXPECT_GT(tol_mem, 0.8);
  EXPECT_LT(tol_net, 0.5);
  EXPECT_LT(up, 0.5);
}

// --- §7 / Figures 9-10 ------------------------------------------------------

TEST(PaperResults, Fig9GeometricBeatsUniformOnLargeMachines) {
  MmsConfig geo = MmsConfig::paper_defaults();
  geo.k = 10;
  MmsConfig uni = geo;
  uni.traffic.pattern = topo::AccessPattern::kUniform;
  const double t_geo = tolerance_index(geo, Subsystem::kNetwork).index;
  const double t_uni = tolerance_index(uni, Subsystem::kNetwork).index;
  EXPECT_GT(t_geo, t_uni + 0.2);
}

TEST(PaperResults, Fig9ToleranceApproachesOneUnderGoodLocality) {
  // §7 observation 3 claims tol_network up to ~1.05 for geometric traffic
  // on k >= 6 at R = 10 — i.e. the finite-delay network *beating* the
  // ideal. An exactly-implemented product-form model cannot produce that
  // crossover (closed PF networks are monotone in service demands), and
  // ours doesn't: the reproduced effect is tol_network -> 1 from below as
  // n_t grows, with the memory-contention-relief mechanism the paper
  // describes showing up in L_obs instead (next test). Documented as a
  // reproduction deviation in EXPERIMENTS.md.
  MmsConfig cfg = MmsConfig::paper_defaults();
  cfg.k = 8;
  cfg.threads_per_processor = 20;
  const double tol = tolerance_index(cfg, Subsystem::kNetwork).index;
  EXPECT_GT(tol, 0.95);
  EXPECT_LE(tol, 1.0 + 1e-6);
  // Monotone in n_t toward 1.
  cfg.threads_per_processor = 8;
  EXPECT_LT(tolerance_index(cfg, Subsystem::kNetwork).index, tol);
}

TEST(PaperResults, Fig9ThreadRequirementIndependentOfMachineSize) {
  // "n_t to tolerate the network latency does not change with the size of
  // the system": tolerance at n_t = 8 is near-saturated for every k.
  for (const int k : {2, 4, 8}) {
    MmsConfig cfg = MmsConfig::paper_defaults();
    cfg.k = k;
    cfg.threads_per_processor = 8;
    const double t8 = tolerance_index(cfg, Subsystem::kNetwork).index;
    cfg.threads_per_processor = 16;
    const double t16 = tolerance_index(cfg, Subsystem::kNetwork).index;
    EXPECT_LT(t16 - t8, 0.06) << "k=" << k;
  }
}

TEST(PaperResults, Fig10GeometricThroughputScalesAlmostLinearly) {
  // System throughput P * U_p for geometric traffic grows ~linearly in P;
  // uniform falls far behind by k = 10.
  auto throughput = [](int k, topo::AccessPattern pattern) {
    MmsConfig cfg = MmsConfig::paper_defaults();
    cfg.k = k;
    cfg.traffic.pattern = pattern;
    return cfg.num_processors() * analyze(cfg).processor_utilization;
  };
  const double geo4 = throughput(4, topo::AccessPattern::kGeometric);
  const double geo8 = throughput(8, topo::AccessPattern::kGeometric);
  const double uni8 = throughput(8, topo::AccessPattern::kUniform);
  EXPECT_NEAR(geo8 / geo4, 4.0, 0.5);  // ~linear in P
  EXPECT_LT(uni8, 0.7 * geo8);
}

TEST(PaperResults, Fig10FiniteNetworkRelievesMemoryContention) {
  // The mechanism behind the paper's §7 claim: with S = 0 remote requests
  // slam the memories; finite switch delays hold customers in the network
  // pipeline and lower the observed memory latency. We reproduce the
  // L_obs relief; in an exact product-form treatment the relief never
  // fully pays back the added switch residence, so U_p stays (slightly)
  // below the ideal network's — see EXPERIMENTS.md for the deviation note.
  MmsConfig finite = MmsConfig::paper_defaults();
  finite.k = 8;
  MmsConfig ideal = finite;
  ideal.switch_delay = 0.0;
  const MmsPerformance pf = analyze(finite);
  const MmsPerformance pi = analyze(ideal);
  EXPECT_LT(pf.memory_latency, pi.memory_latency);
  EXPECT_LT(pf.processor_utilization, pi.processor_utilization);
  EXPECT_GT(pf.processor_utilization, 0.90 * pi.processor_utilization);
}

}  // namespace
}  // namespace latol::core
