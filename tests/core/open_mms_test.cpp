#include "core/mms_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/hierarchical.hpp"
#include "qn/open/jackson.hpp"
#include "sim/mms_des.hpp"
#include "sim/mms_petri.hpp"
#include "util/error.hpp"

namespace latol::core {
namespace {

double rel(double a, double b) { return std::abs(a - b) / b; }

TEST(OpenMmsConfig, ValidationRejectsBadRates) {
  MmsConfig cfg = MmsConfig::paper_defaults();
  cfg.open_arrival_rate = -0.01;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg.open_arrival_rate = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg.open_arrival_rate = std::numeric_limits<double>::infinity();
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg.open_arrival_rate = 0.01;
  cfg.validate();  // fine on the 16-node default machine
}

TEST(OpenMmsConfig, OpenArrivalsNeedRemoteDestinations) {
  MmsConfig cfg = MmsConfig::paper_defaults();
  cfg.topology = topo::TopologyKind::kRing;
  cfg.k = 1;  // a single node has nowhere to send a remote request
  cfg.open_arrival_rate = 0.01;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
}

TEST(OpenMmsModel, ClassVisitsMatchBuiltNetwork) {
  MmsConfig cfg = MmsConfig::paper_defaults();
  cfg.k = 2;
  const MmsModel model(cfg);
  const qn::ClosedNetwork net = model.build_network();
  const int nodes = cfg.num_processors();
  for (int i = 0; i < nodes; ++i) {
    const std::vector<double> v = model.class_visits(i);
    ASSERT_EQ(v.size(), net.num_stations());
    for (std::size_t m = 0; m < net.num_stations(); ++m)
      EXPECT_NEAR(v[m],
                  net.visit_ratio(static_cast<std::size_t>(i), m), 1e-15)
          << "class " << i << " station " << m;
  }
}

TEST(OpenMmsModel, OpenNetworkConservesRequestFlow) {
  MmsConfig cfg = MmsConfig::paper_defaults();
  cfg.open_arrival_rate = 0.02;
  const MmsModel model(cfg);
  const qn::OpenNetwork open = model.build_open_network();
  const qn::OpenSolution sol = qn::solve_jackson(open);
  // Every request visits exactly one memory: total memory load equals the
  // machine-wide arrival rate times the (uniform) service time.
  const int nodes = cfg.num_processors();
  double memory_load = 0.0;
  for (int n = 0; n < nodes; ++n) {
    const PeStations st = MmsModel::stations(n);
    memory_load += sol.offered_load[st.memory];
  }
  const double expected =
      cfg.open_arrival_rate * static_cast<double>(nodes) *
      cfg.memory_latency;
  EXPECT_NEAR(memory_load, expected, 1e-9);
}

TEST(OpenMmsAnalysis, MixedSolveReportsOpenMetrics) {
  MmsConfig cfg = MmsConfig::paper_defaults();
  cfg.open_arrival_rate = 0.01;
  const MmsPerformance perf = analyze(cfg);
  EXPECT_GT(perf.open_latency, 0.0);
  EXPECT_GT(perf.open_utilization, 0.0);
  EXPECT_LT(perf.open_utilization, 1.0);
  // Open traffic must cost throughput relative to the closed machine.
  MmsConfig closed = cfg;
  closed.open_arrival_rate = 0.0;
  const MmsPerformance base = analyze(closed);
  EXPECT_LT(perf.processor_utilization, base.processor_utilization);
  EXPECT_DOUBLE_EQ(base.open_latency, 0.0);
  EXPECT_DOUBLE_EQ(base.open_utilization, 0.0);
}

TEST(OpenMmsAnalysis, SaturatingOpenLoadFailsFast) {
  MmsConfig cfg = MmsConfig::paper_defaults();
  // Each memory serves 1/10 requests per unit; this rate alone floods it.
  cfg.open_arrival_rate = 0.2;
  try {
    (void)analyze(cfg);
    FAIL() << "expected SolverError";
  } catch (const qn::SolverError& e) {
    EXPECT_EQ(e.code(), qn::SolverErrorCode::kUnstable);
  }
}

TEST(OpenMmsAnalysis, MixedMatchesDesOpenLatency) {
  MmsConfig cfg = MmsConfig::paper_defaults();
  cfg.open_arrival_rate = 0.01;
  const MmsPerformance perf = analyze(cfg);
  sim::SimulationConfig sim;
  sim.mms = cfg;
  sim.sim_time = 150000;
  const sim::SimulationResult r = sim::simulate_mms(sim);
  ASSERT_GT(r.open_completions, 1000u);
  EXPECT_LT(rel(r.open_latency, perf.open_latency), 0.08)
      << "sim " << r.open_latency << " model " << perf.open_latency;
  EXPECT_LT(rel(r.processor_utilization, perf.processor_utilization), 0.05);
}

TEST(OpenMmsAnalysis, PetriSimulatorRejectsOpenArrivals) {
  MmsConfig cfg = MmsConfig::paper_defaults();
  cfg.open_arrival_rate = 0.01;
  EXPECT_THROW((void)sim::simulate_mms_petri(cfg, 1000.0, 0.1, 1),
               InvalidArgument);
}

TEST(Hierarchical, MatchesAmvaOnSymmetricTorus) {
  for (int k : {2, 4}) {
    MmsConfig cfg = MmsConfig::paper_defaults();
    cfg.k = k;
    const MmsPerformance amva = analyze(cfg);
    const MmsPerformance fesc = analyze_hierarchical(cfg);
    EXPECT_TRUE(fesc.converged) << "k " << k;
    EXPECT_EQ(fesc.solver, qn::SolverKind::kFesc) << "k " << k;
    // Both approximate the same machine; they agree to a few percent
    // (measured 1.4-1.9% across k = 2..8).
    EXPECT_LT(rel(fesc.processor_utilization, amva.processor_utilization),
              0.03)
        << "k " << k;
    EXPECT_LT(rel(fesc.network_latency, amva.network_latency), 0.10)
        << "k " << k;
    EXPECT_LT(rel(fesc.memory_latency, amva.memory_latency), 0.10)
        << "k " << k;
  }
}

TEST(Hierarchical, ExactWhenTrafficIsLocal) {
  // With p_remote = 0 each class is an isolated two-station cycle: the
  // decomposition has no background contention and must agree with AMVA
  // essentially exactly.
  MmsConfig cfg = MmsConfig::paper_defaults();
  cfg.p_remote = 0.0;
  const MmsPerformance amva = analyze(cfg);
  const MmsPerformance fesc = analyze_hierarchical(cfg);
  EXPECT_NEAR(fesc.processor_utilization, amva.processor_utilization, 1e-6);
  EXPECT_NEAR(fesc.access_rate, amva.access_rate, 1e-6);
}

TEST(Hierarchical, DispatchThroughAnalysisOptions) {
  MmsConfig cfg = MmsConfig::paper_defaults();
  cfg.k = 2;
  AnalysisOptions opts;
  opts.method = SolveMethod::kHierarchical;
  const MmsPerformance via_analyze = analyze(cfg, opts);
  const MmsPerformance direct = analyze_hierarchical(cfg);
  EXPECT_DOUBLE_EQ(via_analyze.processor_utilization,
                   direct.processor_utilization);
  EXPECT_EQ(via_analyze.solver, qn::SolverKind::kFesc);
}

TEST(Hierarchical, ScalesToTopologiesBeyondTheExactLattice) {
  // k = 8 is a 64-node, 256-station, 64-class machine — far beyond exact
  // MVA. The decomposition must converge and respect basic sanity.
  MmsConfig cfg = MmsConfig::paper_defaults();
  cfg.k = 8;
  const MmsPerformance perf = analyze_hierarchical(cfg);
  EXPECT_TRUE(perf.converged);
  EXPECT_GT(perf.processor_utilization, 0.0);
  EXPECT_LT(perf.processor_utilization, 1.0);
  EXPECT_GT(perf.network_latency, 0.0);
}

TEST(Hierarchical, RejectsUnsupportedConfigs) {
  MmsConfig mesh = MmsConfig::paper_defaults();
  mesh.topology = topo::TopologyKind::kMesh2D;
  EXPECT_THROW((void)analyze_hierarchical(mesh), InvalidArgument);

  MmsConfig hotspot = MmsConfig::paper_defaults();
  hotspot.traffic.hotspot_node = 0;
  hotspot.traffic.hotspot_fraction = 0.5;
  EXPECT_THROW((void)analyze_hierarchical(hotspot), InvalidArgument);

  MmsConfig open = MmsConfig::paper_defaults();
  open.open_arrival_rate = 0.01;
  EXPECT_THROW((void)analyze_hierarchical(open), InvalidArgument);
}

TEST(Hierarchical, SolveMethodNamesAreStable) {
  EXPECT_STREQ(solve_method_name(SolveMethod::kAmva), "amva");
  EXPECT_STREQ(solve_method_name(SolveMethod::kLinearizer), "linearizer");
  EXPECT_STREQ(solve_method_name(SolveMethod::kHierarchical), "fesc");
}

}  // namespace
}  // namespace latol::core
