#include "core/bottleneck.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/mms_model.hpp"

namespace latol::core {
namespace {

TEST(Bottleneck, PaperConstantsAtDefaults) {
  const BottleneckAnalysis bn = bottleneck_analysis(MmsConfig::paper_defaults());
  EXPECT_NEAR(bn.d_avg, 1.7333, 1e-4);
  // Eq. 4: 1/(2 * 1.733 * 10) = 0.0288 (paper prints 0.029).
  EXPECT_NEAR(bn.lambda_net_sat, 0.0288, 5e-4);
  // Network saturation point for R=10: ~0.29 (paper: "0.3").
  EXPECT_NEAR(bn.p_remote_sat, 0.288, 5e-3);
  // Eq. 5 at R=10: ~0.18.
  EXPECT_NEAR(bn.p_remote_critical, 0.183, 5e-3);
  EXPECT_NEAR(bn.unloaded_one_way, 27.33, 0.05);
  EXPECT_NEAR(bn.unloaded_round_trip, 54.67, 0.1);
  EXPECT_NEAR(bn.memory_service_rate, 0.1, 1e-12);
}

TEST(Bottleneck, DoubledRunlengthMatchesPaper) {
  MmsConfig cfg = MmsConfig::paper_defaults();
  cfg.runlength = 20.0;
  const BottleneckAnalysis bn = bottleneck_analysis(cfg);
  // Paper: lambda_net saturates at p_remote ~0.6 for R=20...
  EXPECT_NEAR(bn.p_remote_sat, 0.577, 5e-3);
  // ...and the critical p_remote is ~0.68.
  EXPECT_NEAR(bn.p_remote_critical, 0.683, 5e-3);
}

TEST(Bottleneck, ZeroSwitchDelayMeansNoNetworkBottleneck) {
  MmsConfig cfg = MmsConfig::paper_defaults();
  cfg.switch_delay = 0.0;
  const BottleneckAnalysis bn = bottleneck_analysis(cfg);
  EXPECT_TRUE(std::isinf(bn.lambda_net_sat));
  EXPECT_DOUBLE_EQ(bn.p_remote_sat, 1.0);
  EXPECT_DOUBLE_EQ(bn.p_remote_critical, 1.0);
  EXPECT_DOUBLE_EQ(bn.unloaded_one_way, 0.0);
}

TEST(Bottleneck, ZeroMemoryLatency) {
  MmsConfig cfg = MmsConfig::paper_defaults();
  cfg.memory_latency = 0.0;
  const BottleneckAnalysis bn = bottleneck_analysis(cfg);
  EXPECT_TRUE(std::isinf(bn.memory_service_rate));
  // With L = 0, Eq. 5 reduces to p_crit = 1 (clamped).
  EXPECT_DOUBLE_EQ(bn.p_remote_critical, 1.0);
}

TEST(Bottleneck, CriticalPointClampsToZeroForSlowMemory) {
  // L >> R: the memory alone starves the processor; p_crit clamps at 0.
  MmsConfig cfg = MmsConfig::paper_defaults();
  cfg.memory_latency = 1000.0;
  const BottleneckAnalysis bn = bottleneck_analysis(cfg);
  EXPECT_DOUBLE_EQ(bn.p_remote_critical, 0.0);
}

TEST(Bottleneck, SaturationRateScalesInverselyWithSwitchDelay) {
  MmsConfig cfg = MmsConfig::paper_defaults();
  const double base = bottleneck_analysis(cfg).lambda_net_sat;
  cfg.switch_delay = 20.0;
  EXPECT_NEAR(bottleneck_analysis(cfg).lambda_net_sat, base / 2.0, 1e-12);
}

TEST(Bottleneck, UniformPatternLowersSaturation) {
  MmsConfig geo = MmsConfig::paper_defaults();
  MmsConfig uni = geo;
  uni.traffic.pattern = topo::AccessPattern::kUniform;
  // Uniform traffic travels farther, so the network saturates earlier.
  EXPECT_LT(bottleneck_analysis(uni).lambda_net_sat,
            bottleneck_analysis(geo).lambda_net_sat);
}

TEST(Bottleneck, SaturationPredictsModelBehavior) {
  // Integration: the AMVA-computed message rate must never exceed Eq. 4's
  // closed-form cap (and should come close at very high p_remote).
  MmsConfig cfg = MmsConfig::paper_defaults();
  const double cap = bottleneck_analysis(cfg).lambda_net_sat;
  cfg.p_remote = 0.8;
  const double rate = analyze(cfg).message_rate;
  EXPECT_LE(rate, cap * 1.001);
  EXPECT_GT(rate, cap * 0.85);
}

}  // namespace
}  // namespace latol::core
