#include "core/mms_model.hpp"

#include <gtest/gtest.h>

#include "qn/mva_approx.hpp"
#include "core/bottleneck.hpp"
#include "qn/mva_exact.hpp"
#include "util/error.hpp"

namespace latol::core {
namespace {

TEST(MmsModel, NetworkHasFourStationsPerNodeAndOneClassPerProcessor) {
  const MmsModel model(MmsConfig::paper_defaults());
  const auto net = model.build_network();
  EXPECT_EQ(net.num_stations(), 64u);
  EXPECT_EQ(net.num_classes(), 16u);
  for (std::size_t c = 0; c < 16; ++c) EXPECT_EQ(net.population(c), 8);
}

TEST(MmsModel, ReferenceVisitRatioIsOne) {
  const MmsModel model(MmsConfig::paper_defaults());
  const auto net = model.build_network();
  for (int i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(
        net.visit_ratio(static_cast<std::size_t>(i),
                        MmsModel::stations(i).processor),
        1.0);
    // A thread never runs on a foreign processor.
    for (int j = 0; j < 16; ++j) {
      if (j == i) continue;
      EXPECT_EQ(net.visit_ratio(static_cast<std::size_t>(i),
                                MmsModel::stations(j).processor),
                0.0);
    }
  }
}

TEST(MmsModel, EveryCycleMakesExactlyOneMemoryAccess) {
  const MmsModel model(MmsConfig::paper_defaults());
  const auto net = model.build_network();
  for (std::size_t c = 0; c < 16; ++c) {
    double mem_visits = 0.0;
    for (int n = 0; n < 16; ++n)
      mem_visits += net.visit_ratio(c, MmsModel::stations(n).memory);
    EXPECT_NEAR(mem_visits, 1.0, 1e-12);
  }
}

TEST(MmsModel, OutboundVisitsAreTwiceTheRemoteProbability) {
  // Request leaves via the home outbound switch, response via the remote
  // one: total outbound visits per cycle = 2 p_remote.
  const MmsConfig cfg = MmsConfig::paper_defaults();
  const MmsModel model(cfg);
  const auto net = model.build_network();
  for (std::size_t c = 0; c < 16; ++c) {
    double out_visits = 0.0;
    for (int n = 0; n < 16; ++n)
      out_visits += net.visit_ratio(c, MmsModel::stations(n).outbound);
    EXPECT_NEAR(out_visits, 2.0 * cfg.p_remote, 1e-12);
  }
}

TEST(MmsModel, InboundVisitsMatchAverageDistance) {
  // Each leg of a round trip crosses one inbound switch per hop: total
  // inbound visits per cycle = 2 p_remote d_avg.
  const MmsConfig cfg = MmsConfig::paper_defaults();
  const MmsModel model(cfg);
  const auto net = model.build_network();
  for (std::size_t c = 0; c < 16; ++c) {
    double in_visits = 0.0;
    for (int n = 0; n < 16; ++n)
      in_visits += net.visit_ratio(c, MmsModel::stations(n).inbound);
    EXPECT_NEAR(in_visits, 2.0 * cfg.p_remote * model.average_distance(),
                1e-12);
  }
}

TEST(MmsModel, LocalMemoryVisitRatioIsOneMinusPRemote) {
  const MmsConfig cfg = MmsConfig::paper_defaults();
  const MmsModel model(cfg);
  const auto net = model.build_network();
  EXPECT_NEAR(net.visit_ratio(0, MmsModel::stations(0).memory),
              1.0 - cfg.p_remote, 1e-12);
}

TEST(MmsModel, NetworkIsProductForm) {
  EXPECT_TRUE(MmsModel(MmsConfig::paper_defaults())
                  .build_network()
                  .is_product_form());
}

TEST(MmsModel, AllLocalWorkloadUsesNoSwitches) {
  MmsConfig cfg = MmsConfig::paper_defaults();
  cfg.p_remote = 0.0;
  const MmsModel model(cfg);
  const auto net = model.build_network();
  for (int n = 0; n < 16; ++n) {
    EXPECT_EQ(net.visit_ratio(0, MmsModel::stations(n).inbound), 0.0);
    EXPECT_EQ(net.visit_ratio(0, MmsModel::stations(n).outbound), 0.0);
  }
  EXPECT_DOUBLE_EQ(net.visit_ratio(0, MmsModel::stations(0).memory), 1.0);
}

TEST(MmsModel, AnalyzeIsSymmetricAcrossClasses) {
  const auto detail = analyze_detailed(MmsConfig::paper_defaults());
  for (std::size_t c = 1; c < 16; ++c) {
    EXPECT_NEAR(detail.solution.throughput[c], detail.solution.throughput[0],
                1e-6);
  }
}

TEST(MmsModel, PerformanceIdentitiesHold) {
  const MmsConfig cfg = MmsConfig::paper_defaults();
  const MmsPerformance perf = analyze(cfg);
  EXPECT_TRUE(perf.converged);
  EXPECT_NEAR(perf.processor_utilization, perf.access_rate * cfg.runlength,
              1e-12);
  EXPECT_NEAR(perf.message_rate, perf.access_rate * cfg.p_remote, 1e-12);
  EXPECT_GT(perf.network_latency, 0.0);
  EXPECT_GE(perf.memory_latency, cfg.memory_latency);
  EXPECT_NEAR(perf.average_distance, 1.7333, 1e-3);
}

TEST(MmsModel, UnloadedLatenciesMatchServiceTimes) {
  // A single thread and (nearly) no remote traffic: latencies approach the
  // raw service times.
  MmsConfig cfg = MmsConfig::paper_defaults();
  cfg.threads_per_processor = 1;
  cfg.p_remote = 0.0;
  const MmsPerformance perf = analyze(cfg);
  EXPECT_NEAR(perf.memory_latency, cfg.memory_latency, 1e-9);
  // Cycle = R + L: utilization R/(R+L) = 0.5.
  EXPECT_NEAR(perf.processor_utilization, 0.5, 1e-9);
}

TEST(MmsModel, NetworkLatencyApproachesUnloadedValueAtLowLoad) {
  // One thread per processor, tiny p_remote: S_obs -> (d_avg + 1) S.
  MmsConfig cfg = MmsConfig::paper_defaults();
  cfg.threads_per_processor = 1;
  cfg.p_remote = 0.01;
  const MmsPerformance perf = analyze(cfg);
  EXPECT_NEAR(perf.network_latency, (1.7333 + 1.0) * cfg.switch_delay, 1.5);
}

TEST(MmsModel, MemoryUtilizationEqualsAccessRateTimesLatency) {
  // Every memory receives total rate lambda (local + remote combined) by
  // symmetry, so rho_mem = lambda * L.
  const MmsConfig cfg = MmsConfig::paper_defaults();
  const MmsPerformance perf = analyze(cfg);
  EXPECT_NEAR(perf.memory_utilization, perf.access_rate * cfg.memory_latency,
              1e-6);
}

TEST(MmsModel, SingleNodeMachineWorks) {
  MmsConfig cfg = MmsConfig::paper_defaults();
  cfg.k = 1;
  cfg.p_remote = 0.0;
  const MmsPerformance perf = analyze(cfg);
  EXPECT_GT(perf.processor_utilization, 0.0);
  EXPECT_EQ(perf.network_latency, 0.0);
  EXPECT_EQ(perf.average_distance, 0.0);
}

TEST(MmsModel, AmvaTracksExactMvaOnSmallMachine) {
  // 2x2 torus, 2 threads per processor: the full multi-class MMS network
  // (16 stations, 4 classes) is small enough for exact MVA. This is the
  // strongest end-to-end check of the analytical pipeline: visit ratios,
  // routing, and the AMVA approximation all at once.
  MmsConfig cfg = MmsConfig::paper_defaults();
  cfg.k = 2;
  cfg.threads_per_processor = 2;
  for (const double p : {0.1, 0.3, 0.6}) {
    cfg.p_remote = p;
    const MmsModel model(cfg);
    const auto net = model.build_network();
    const auto exact = qn::solve_mva_exact(net);
    const auto amva = qn::solve_amva(net);
    for (std::size_t c = 0; c < net.num_classes(); ++c) {
      EXPECT_NEAR(amva.throughput[c], exact.throughput[c],
                  0.05 * exact.throughput[c])
          << "p_remote=" << p << " class=" << c;
    }
  }
}

TEST(MmsModel, HotspotConcentratesMemoryLoad) {
  MmsConfig cfg = MmsConfig::paper_defaults();
  cfg.traffic.hotspot_node = 0;
  cfg.traffic.hotspot_fraction = 0.6;
  const auto detail = analyze_detailed(cfg);
  // The hotspot memory is the most utilized station of its kind.
  const double hot_util =
      detail.solution.utilization[MmsModel::stations(0).memory];
  for (int n = 1; n < 16; ++n) {
    EXPECT_GT(hot_util,
              detail.solution.utilization[MmsModel::stations(n).memory]);
  }
}

TEST(MmsModel, PerNodePerformanceDiffersUnderHotspot) {
  MmsConfig cfg = MmsConfig::paper_defaults();
  cfg.traffic.hotspot_node = 0;
  cfg.traffic.hotspot_fraction = 0.8;
  const auto per_node = analyze_per_node(cfg);
  ASSERT_EQ(per_node.size(), 16u);
  // Far nodes (distance 4 from the hotspot) do worse than its neighbours.
  double min_up = 2.0, max_up = 0.0;
  for (const auto& perf : per_node) {
    min_up = std::min(min_up, perf.processor_utilization);
    max_up = std::max(max_up, perf.processor_utilization);
  }
  EXPECT_GT(max_up - min_up, 0.005);
}

TEST(MmsModel, PerNodePerformanceIdenticalWithoutHotspot) {
  const auto per_node = analyze_per_node(MmsConfig::paper_defaults());
  for (const auto& perf : per_node) {
    EXPECT_NEAR(perf.processor_utilization,
                per_node.front().processor_utilization, 1e-6);
  }
}

TEST(MmsModel, AllTopologiesProduceValidNetworks) {
  struct Case {
    topo::TopologyKind kind;
    int side;
    int processors;
  };
  for (const Case c : {Case{topo::TopologyKind::kTorus2D, 4, 16},
                       Case{topo::TopologyKind::kMesh2D, 4, 16},
                       Case{topo::TopologyKind::kRing, 16, 16},
                       Case{topo::TopologyKind::kHypercube, 4, 16}}) {
    MmsConfig cfg = MmsConfig::paper_defaults();
    cfg.topology = c.kind;
    cfg.k = c.side;
    EXPECT_EQ(cfg.num_processors(), c.processors);
    const MmsModel model(cfg);
    const auto net = model.build_network();
    EXPECT_TRUE(net.is_product_form());
    // Conservation: one memory access per cycle regardless of topology.
    double mem_visits = 0.0;
    for (int n = 0; n < c.processors; ++n)
      mem_visits += net.visit_ratio(0, MmsModel::stations(n).memory);
    EXPECT_NEAR(mem_visits, 1.0, 1e-12)
        << topo::topology_kind_name(c.kind);
    const MmsPerformance perf = analyze(cfg);
    EXPECT_TRUE(perf.converged);
    EXPECT_GT(perf.processor_utilization, 0.0);
    EXPECT_LE(perf.processor_utilization, 1.0);
  }
}

TEST(MmsModel, DenserTopologiesTolerateBetterAtSameSize) {
  // 16 nodes each: hypercube (d_avg smallest) > torus > mesh > ring for
  // uniform traffic, because average distance orders that way.
  auto up = [](topo::TopologyKind kind, int side) {
    MmsConfig cfg = MmsConfig::paper_defaults();
    cfg.topology = kind;
    cfg.k = side;
    cfg.traffic.pattern = topo::AccessPattern::kUniform;
    cfg.p_remote = 0.4;  // make the network matter
    return analyze(cfg).processor_utilization;
  };
  const double cube = up(topo::TopologyKind::kHypercube, 4);
  const double torus = up(topo::TopologyKind::kTorus2D, 4);
  const double ring = up(topo::TopologyKind::kRing, 16);
  EXPECT_GT(cube, torus);
  EXPECT_GT(torus, ring);
}

TEST(MmsModel, MeshCornersSufferMoreThanCenters) {
  MmsConfig cfg = MmsConfig::paper_defaults();
  cfg.topology = topo::TopologyKind::kMesh2D;
  cfg.k = 5;
  cfg.traffic.pattern = topo::AccessPattern::kUniform;
  cfg.p_remote = 0.4;
  const auto per_node = analyze_per_node(cfg);
  const int corner = 0;
  const int center = 12;  // (2,2)
  // Corner traffic travels farther, so corner threads wait longer... but
  // central switches also carry more through-traffic. The robust claim is
  // that per-node performance is NOT uniform on a mesh.
  EXPECT_GT(std::abs(per_node[corner].processor_utilization -
                     per_node[center].processor_utilization),
            1e-4);
}

TEST(MmsModel, LinearizerOptionTracksSimulationBetter) {
  // Schweitzer at the defaults gives ~0.819; Linearizer ~0.843 (which long
  // DES runs confirm). The option must select the better solver.
  const MmsConfig cfg = MmsConfig::paper_defaults();
  AnalysisOptions lin;
  lin.use_linearizer = true;
  const double schw = analyze(cfg).processor_utilization;
  const double fine = analyze(cfg, lin).processor_utilization;
  EXPECT_NEAR(schw, 0.819, 0.01);
  EXPECT_NEAR(fine, 0.843, 0.01);
}

TEST(MmsModel, MemoryPortsRelieveTheMemoryBottleneck) {
  // Fine-grain workload (R = 4 << L): memory-bound. Extra ports raise U_p.
  MmsConfig cfg = MmsConfig::paper_defaults();
  cfg.runlength = 4.0;
  const double one = analyze(cfg).processor_utilization;
  cfg.memory_ports = 2;
  const double two = analyze(cfg).processor_utilization;
  cfg.memory_ports = 4;
  const double four = analyze(cfg).processor_utilization;
  EXPECT_GT(two, one * 1.1);
  EXPECT_GT(four, two);
}

TEST(MmsModel, PipelinedSwitchesRemoveNetworkQueueing) {
  // With delay-station switches the observed network latency is exactly
  // the unloaded (d_avg + 1) S regardless of load.
  MmsConfig cfg = MmsConfig::paper_defaults();
  cfg.p_remote = 0.5;  // heavy network load
  cfg.pipelined_switches = true;
  const MmsPerformance perf = analyze(cfg);
  const BottleneckAnalysis bn = bottleneck_analysis(cfg);
  EXPECT_NEAR(perf.network_latency, bn.unloaded_one_way, 1e-6);
  // ...and beats the queueing-switch machine.
  cfg.pipelined_switches = false;
  EXPECT_GT(perf.processor_utilization,
            analyze(cfg).processor_utilization);
}

TEST(MmsModel, TrafficAccessorThrowsOnOneNode) {
  MmsConfig cfg = MmsConfig::paper_defaults();
  cfg.k = 1;
  cfg.p_remote = 0.0;
  const MmsModel model(cfg);
  EXPECT_THROW((void)model.traffic(), InvalidArgument);
}

}  // namespace
}  // namespace latol::core
