#include "core/mms_config.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "util/error.hpp"

namespace latol::core {
namespace {

TEST(MmsConfig, PaperDefaultsMatchTableOne) {
  const MmsConfig c = MmsConfig::paper_defaults();
  EXPECT_EQ(c.k, 4);
  EXPECT_EQ(c.num_processors(), 16);
  EXPECT_EQ(c.threads_per_processor, 8);
  EXPECT_DOUBLE_EQ(c.runlength, 10.0);
  EXPECT_DOUBLE_EQ(c.context_switch, 0.0);
  EXPECT_DOUBLE_EQ(c.p_remote, 0.2);
  EXPECT_DOUBLE_EQ(c.memory_latency, 10.0);
  EXPECT_DOUBLE_EQ(c.switch_delay, 10.0);
  EXPECT_EQ(c.traffic.pattern, topo::AccessPattern::kGeometric);
  EXPECT_DOUBLE_EQ(c.traffic.p_sw, 0.5);
  EXPECT_NO_THROW(c.validate());
}

TEST(MmsConfig, ValidationCatchesBadValues) {
  const MmsConfig base = MmsConfig::paper_defaults();

  MmsConfig c = base;
  c.k = 0;
  EXPECT_THROW(c.validate(), InvalidArgument);

  c = base;
  c.runlength = 0.0;
  EXPECT_THROW(c.validate(), InvalidArgument);

  c = base;
  c.memory_latency = -1.0;
  EXPECT_THROW(c.validate(), InvalidArgument);

  c = base;
  c.switch_delay = -0.5;
  EXPECT_THROW(c.validate(), InvalidArgument);

  c = base;
  c.p_remote = 1.2;
  EXPECT_THROW(c.validate(), InvalidArgument);

  c = base;
  c.threads_per_processor = 0;
  EXPECT_THROW(c.validate(), InvalidArgument);

  c = base;
  c.traffic.p_sw = 0.0;
  EXPECT_THROW(c.validate(), InvalidArgument);

  c = base;
  c.context_switch = -1.0;
  EXPECT_THROW(c.validate(), InvalidArgument);
}

TEST(MmsConfig, ValidationCatchesNonFiniteValues) {
  // NaN parameters must die at validate(), not surface later as a solver
  // kNumerical error with the root cause lost.
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const MmsConfig base = MmsConfig::paper_defaults();

  for (const double bad : {kNan, kInf}) {
    MmsConfig c = base;
    c.runlength = bad;
    EXPECT_THROW(c.validate(), InvalidArgument);

    c = base;
    c.memory_latency = bad;
    EXPECT_THROW(c.validate(), InvalidArgument);

    c = base;
    c.switch_delay = bad;
    EXPECT_THROW(c.validate(), InvalidArgument);

    c = base;
    c.context_switch = bad;
    EXPECT_THROW(c.validate(), InvalidArgument);
  }

  MmsConfig c = base;
  c.p_remote = kNan;
  EXPECT_THROW(c.validate(), InvalidArgument);

  c = base;
  c.traffic.p_sw = kNan;
  EXPECT_THROW(c.validate(), InvalidArgument);
}

TEST(MmsConfig, ExtensionDefaultsArePaperFaithful) {
  const MmsConfig c = MmsConfig::paper_defaults();
  EXPECT_EQ(c.topology, topo::TopologyKind::kTorus2D);
  EXPECT_EQ(c.memory_ports, 1);
  EXPECT_FALSE(c.pipelined_switches);
  EXPECT_TRUE(c.count_source_outbound);
  EXPECT_EQ(c.traffic.hotspot_node, -1);
}

TEST(MmsConfig, ProcessorCountPerTopology) {
  MmsConfig c = MmsConfig::paper_defaults();
  c.k = 4;
  c.topology = topo::TopologyKind::kTorus2D;
  EXPECT_EQ(c.num_processors(), 16);
  c.topology = topo::TopologyKind::kMesh2D;
  EXPECT_EQ(c.num_processors(), 16);
  c.topology = topo::TopologyKind::kRing;
  EXPECT_EQ(c.num_processors(), 4);
  c.topology = topo::TopologyKind::kHypercube;
  EXPECT_EQ(c.num_processors(), 16);
}

TEST(MmsConfig, ValidatesExtensionKnobs) {
  MmsConfig c = MmsConfig::paper_defaults();
  c.memory_ports = 0;
  EXPECT_THROW(c.validate(), InvalidArgument);
  c = MmsConfig::paper_defaults();
  c.topology = topo::TopologyKind::kHypercube;
  c.k = 13;  // above the 2^12 cap
  EXPECT_THROW(c.validate(), InvalidArgument);
}

TEST(MmsConfig, SingleNodeNeedsAllLocalAccesses) {
  MmsConfig c = MmsConfig::paper_defaults();
  c.k = 1;
  EXPECT_THROW(c.validate(), InvalidArgument);
  c.p_remote = 0.0;
  EXPECT_NO_THROW(c.validate());
}

TEST(MmsConfig, ZeroDelaysAreLegalIdealSystems) {
  MmsConfig c = MmsConfig::paper_defaults();
  c.switch_delay = 0.0;
  EXPECT_NO_THROW(c.validate());
  c.memory_latency = 0.0;
  EXPECT_NO_THROW(c.validate());
}

}  // namespace
}  // namespace latol::core
