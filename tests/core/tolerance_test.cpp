#include "core/tolerance.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace latol::core {
namespace {

TEST(ToleranceZones, PaperThresholds) {
  EXPECT_EQ(classify_tolerance(1.0), ToleranceZone::kTolerated);
  EXPECT_EQ(classify_tolerance(0.8), ToleranceZone::kTolerated);
  EXPECT_EQ(classify_tolerance(0.79), ToleranceZone::kPartiallyTolerated);
  EXPECT_EQ(classify_tolerance(0.5), ToleranceZone::kPartiallyTolerated);
  EXPECT_EQ(classify_tolerance(0.49), ToleranceZone::kNotTolerated);
  EXPECT_EQ(classify_tolerance(1.05), ToleranceZone::kTolerated);
}

TEST(ToleranceZones, NamesAreHumanReadable)
{
  EXPECT_STREQ(zone_name(ToleranceZone::kTolerated), "tolerated");
  EXPECT_STREQ(zone_name(ToleranceZone::kPartiallyTolerated),
               "partially tolerated");
  EXPECT_STREQ(zone_name(ToleranceZone::kNotTolerated), "not tolerated");
}

TEST(IdealConfig, NetworkZeroDelayClearsSwitchDelay) {
  const MmsConfig base = MmsConfig::paper_defaults();
  const MmsConfig ideal =
      ideal_config(base, Subsystem::kNetwork, IdealMethod::kZeroDelay);
  EXPECT_DOUBLE_EQ(ideal.switch_delay, 0.0);
  EXPECT_DOUBLE_EQ(ideal.p_remote, base.p_remote);
}

TEST(IdealConfig, NetworkWorkloadMethodClearsPRemote) {
  const MmsConfig base = MmsConfig::paper_defaults();
  const MmsConfig ideal =
      ideal_config(base, Subsystem::kNetwork, IdealMethod::kModifyWorkload);
  EXPECT_DOUBLE_EQ(ideal.p_remote, 0.0);
  EXPECT_DOUBLE_EQ(ideal.switch_delay, base.switch_delay);
}

TEST(IdealConfig, MemoryZeroDelayClearsLatency) {
  const MmsConfig base = MmsConfig::paper_defaults();
  const MmsConfig ideal =
      ideal_config(base, Subsystem::kMemory, IdealMethod::kZeroDelay);
  EXPECT_DOUBLE_EQ(ideal.memory_latency, 0.0);
}

TEST(IdealConfig, MemoryWorkloadMethodIsRejected) {
  EXPECT_THROW((void)ideal_config(MmsConfig::paper_defaults(), Subsystem::kMemory,
                            IdealMethod::kModifyWorkload),
               InvalidArgument);
}

TEST(ToleranceIndex, DefaultMethodsMatchPaperPreference) {
  EXPECT_EQ(default_method(Subsystem::kNetwork), IdealMethod::kModifyWorkload);
  EXPECT_EQ(default_method(Subsystem::kMemory), IdealMethod::kZeroDelay);
}

TEST(ToleranceIndex, AllLocalWorkloadFullyToleratesNetwork) {
  MmsConfig cfg = MmsConfig::paper_defaults();
  cfg.p_remote = 0.0;
  const ToleranceResult t = tolerance_index(cfg, Subsystem::kNetwork);
  EXPECT_NEAR(t.index, 1.0, 1e-9);
  EXPECT_EQ(t.zone(), ToleranceZone::kTolerated);
}

TEST(ToleranceIndex, ZeroDelayNetworkScoresOneUnderZeroDelayMethod) {
  MmsConfig cfg = MmsConfig::paper_defaults();
  cfg.switch_delay = 0.0;
  const ToleranceResult t =
      tolerance_index(cfg, Subsystem::kNetwork, IdealMethod::kZeroDelay);
  EXPECT_NEAR(t.index, 1.0, 1e-9);
}

TEST(ToleranceIndex, ZeroLatencyMemoryScoresOne) {
  MmsConfig cfg = MmsConfig::paper_defaults();
  cfg.memory_latency = 0.0;
  const ToleranceResult t = tolerance_index(cfg, Subsystem::kMemory);
  EXPECT_NEAR(t.index, 1.0, 1e-9);
}

TEST(ToleranceIndex, DecreasesWithRemoteFraction) {
  MmsConfig cfg = MmsConfig::paper_defaults();
  double prev = 2.0;
  for (const double p : {0.1, 0.3, 0.5, 0.7}) {
    cfg.p_remote = p;
    const double idx = tolerance_index(cfg, Subsystem::kNetwork).index;
    EXPECT_LT(idx, prev) << "p_remote=" << p;
    prev = idx;
  }
}

TEST(ToleranceIndex, ImprovesWithMoreThreads) {
  MmsConfig cfg = MmsConfig::paper_defaults();
  cfg.p_remote = 0.2;
  cfg.threads_per_processor = 1;
  const double one = tolerance_index(cfg, Subsystem::kNetwork).index;
  cfg.threads_per_processor = 8;
  const double eight = tolerance_index(cfg, Subsystem::kNetwork).index;
  EXPECT_GT(eight, one);
}

TEST(ToleranceIndex, LongerRunlengthToleratesBetter) {
  // Paper: increasing R improves tol_network (fewer messages per unit of
  // computation).
  MmsConfig cfg = MmsConfig::paper_defaults();
  cfg.p_remote = 0.4;
  cfg.runlength = 10.0;
  const double r10 = tolerance_index(cfg, Subsystem::kNetwork).index;
  cfg.runlength = 20.0;
  const double r20 = tolerance_index(cfg, Subsystem::kNetwork).index;
  EXPECT_GT(r20, r10);
}

TEST(ToleranceIndex, ResultCarriesBothAnalyses) {
  const ToleranceResult t =
      tolerance_index(MmsConfig::paper_defaults(), Subsystem::kNetwork);
  EXPECT_GT(t.actual.processor_utilization, 0.0);
  EXPECT_GT(t.ideal.processor_utilization, t.actual.processor_utilization);
  EXPECT_NEAR(t.index, t.actual.processor_utilization /
                           t.ideal.processor_utilization,
              1e-12);
}

TEST(ToleranceIndex, MemoryToleranceSaturatesForLongRunlengths) {
  // Paper §6: for R >= 2L and n_t >= 6, tol_memory ~= 1.
  MmsConfig cfg = MmsConfig::paper_defaults();
  cfg.runlength = 40.0;
  cfg.threads_per_processor = 6;
  const ToleranceResult t = tolerance_index(cfg, Subsystem::kMemory);
  EXPECT_GT(t.index, 0.95);
}

}  // namespace
}  // namespace latol::core
