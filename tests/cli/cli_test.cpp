#include "cli/options.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace latol::cli {
namespace {

TEST(CliParse, EmptyDefaultsToHelp) {
  const CliOptions opts = parse_command_line({});
  EXPECT_EQ(opts.command, "help");
}

TEST(CliParse, UnknownCommandThrows) {
  EXPECT_THROW((void)parse_command_line({"frobnicate"}), InvalidArgument);
}

TEST(CliParse, MachineFlagsApply) {
  const CliOptions opts = parse_command_line(
      {"analyze", "--k", "8", "--topology", "mesh", "--threads", "4",
       "--runlength", "20", "--p-remote", "0.3", "--pattern", "uniform",
       "--memory-latency", "15", "--switch-delay", "5", "--context-switch",
       "2"});
  EXPECT_EQ(opts.command, "analyze");
  EXPECT_EQ(opts.config.k, 8);
  EXPECT_EQ(opts.config.topology, topo::TopologyKind::kMesh2D);
  EXPECT_EQ(opts.config.threads_per_processor, 4);
  EXPECT_DOUBLE_EQ(opts.config.runlength, 20.0);
  EXPECT_DOUBLE_EQ(opts.config.p_remote, 0.3);
  EXPECT_EQ(opts.config.traffic.pattern, topo::AccessPattern::kUniform);
  EXPECT_DOUBLE_EQ(opts.config.memory_latency, 15.0);
  EXPECT_DOUBLE_EQ(opts.config.switch_delay, 5.0);
  EXPECT_DOUBLE_EQ(opts.config.context_switch, 2.0);
}

TEST(CliParse, ExtensionFlagsApply) {
  const CliOptions opts = parse_command_line(
      {"analyze", "--memory-ports", "2", "--pipelined-switches",
       "--hotspot-node", "3", "--hotspot-fraction", "0.4"});
  EXPECT_EQ(opts.config.memory_ports, 2);
  EXPECT_TRUE(opts.config.pipelined_switches);
  EXPECT_EQ(opts.config.traffic.hotspot_node, 3);
  EXPECT_DOUBLE_EQ(opts.config.traffic.hotspot_fraction, 0.4);
}

TEST(CliRun, SweepSupportsExtensionParameters) {
  struct Case {
    const char* param;
    const char* from;
    const char* to;
  };
  for (const Case c : {Case{"p_sw", "0.2", "0.8"},
                       Case{"context_switch", "0", "5"},
                       Case{"memory_ports", "1", "2"}}) {
    std::ostringstream out;
    const CliOptions opts = parse_command_line(
        {"sweep", "--param", c.param, "--from", c.from, "--to", c.to,
         "--steps", "2"});
    EXPECT_EQ(run_command(opts, out), 0) << c.param;
  }
}

TEST(CliParse, SweepAndSimulateFlags) {
  const CliOptions sweep = parse_command_line(
      {"sweep", "--param", "threads", "--from", "1", "--to", "8", "--steps",
       "8"});
  EXPECT_EQ(sweep.sweep_param, "threads");
  EXPECT_DOUBLE_EQ(sweep.sweep_from, 1.0);
  EXPECT_DOUBLE_EQ(sweep.sweep_to, 8.0);
  EXPECT_EQ(sweep.sweep_steps, 8);

  const CliOptions sim = parse_command_line(
      {"simulate", "--time", "5000", "--seed", "7", "--petri"});
  EXPECT_DOUBLE_EQ(sim.sim_time, 5000.0);
  EXPECT_EQ(sim.seed, 7u);
  EXPECT_TRUE(sim.use_petri);
}

TEST(CliParse, RejectsBadValues) {
  EXPECT_THROW((void)parse_command_line({"analyze", "--k", "four"}),
               InvalidArgument);
  EXPECT_THROW((void)parse_command_line({"analyze", "--p-remote"}),
               InvalidArgument);
  EXPECT_THROW((void)parse_command_line({"analyze", "--topology", "star"}),
               InvalidArgument);
  EXPECT_THROW((void)parse_command_line({"analyze", "--bogus", "1"}),
               InvalidArgument);
}

TEST(CliRun, HelpPrintsUsage) {
  std::ostringstream out;
  CliOptions opts;
  EXPECT_EQ(run_command(opts, out), 0);
  EXPECT_NE(out.str().find("usage: latol"), std::string::npos);
}

TEST(CliRun, AnalyzeReportsHeadlineNumbers) {
  std::ostringstream out;
  const CliOptions opts = parse_command_line({"analyze"});
  EXPECT_EQ(run_command(opts, out), 0);
  EXPECT_NE(out.str().find("U_p"), std::string::npos);
  EXPECT_NE(out.str().find("S_obs"), std::string::npos);
  EXPECT_NE(out.str().find("0.81"), std::string::npos);  // default U_p
}

TEST(CliRun, ToleranceReportsZones) {
  std::ostringstream out;
  const CliOptions opts = parse_command_line({"tolerance"});
  EXPECT_EQ(run_command(opts, out), 0);
  EXPECT_NE(out.str().find("tol_network"), std::string::npos);
  EXPECT_NE(out.str().find("tolerated"), std::string::npos);
  EXPECT_NE(out.str().find("tune first"), std::string::npos);
}

TEST(CliRun, BottleneckPrintsClosedForms) {
  std::ostringstream out;
  const CliOptions opts = parse_command_line({"bottleneck"});
  EXPECT_EQ(run_command(opts, out), 0);
  EXPECT_NE(out.str().find("Eq.4"), std::string::npos);
  EXPECT_NE(out.str().find("1.73"), std::string::npos);  // d_avg
}

TEST(CliRun, SweepProducesRequestedRows) {
  std::ostringstream out;
  const CliOptions opts = parse_command_line(
      {"sweep", "--param", "threads", "--from", "1", "--to", "4", "--steps",
       "4"});
  EXPECT_EQ(run_command(opts, out), 0);
  // Header + rule + 4 rows appear in the table.
  EXPECT_NE(out.str().find("1.000"), std::string::npos);
  EXPECT_NE(out.str().find("4.000"), std::string::npos);
}

TEST(CliRun, SweepRejectsUnknownParameter) {
  std::ostringstream out;
  CliOptions opts = parse_command_line({"sweep", "--param", "voltage"});
  EXPECT_THROW((void)run_command(opts, out), InvalidArgument);
}

TEST(CliRun, SimulateComparesAgainstModel) {
  std::ostringstream out;
  const CliOptions opts =
      parse_command_line({"simulate", "--time", "20000", "--seed", "3"});
  EXPECT_EQ(run_command(opts, out), 0);
  EXPECT_NE(out.str().find("dev%"), std::string::npos);
  EXPECT_NE(out.str().find("discrete-event"), std::string::npos);
}

TEST(CliRun, SimulatePetriVariant) {
  std::ostringstream out;
  CliOptions opts = parse_command_line(
      {"simulate", "--time", "10000", "--k", "2", "--petri"});
  EXPECT_EQ(run_command(opts, out), 0);
  EXPECT_NE(out.str().find("Petri"), std::string::npos);
}

TEST(CliRun, InvalidConfigSurfacesAsError) {
  std::ostringstream out;
  CliOptions opts = parse_command_line({"analyze", "--p-remote", "1.5"});
  EXPECT_THROW((void)run_command(opts, out), InvalidArgument);
}

TEST(CliRun, MaxIterationsFlagApplies) {
  const CliOptions opts =
      parse_command_line({"analyze", "--max-iterations", "50"});
  EXPECT_EQ(opts.amva.max_iterations, 50);
  EXPECT_THROW((void)parse_command_line({"analyze", "--max-iterations", "0"}),
               InvalidArgument);
}

TEST(CliRun, AnalyzeReportsItsSolver) {
  std::ostringstream out;
  const CliOptions opts = parse_command_line({"analyze"});
  EXPECT_EQ(run_command(opts, out), 0);
  EXPECT_NE(out.str().find("solved by amva"), std::string::npos);
}

// --- exit-code contract of the full entry point ---

TEST(CliMain, CleanRunExitsZero) {
  std::ostringstream out, err;
  EXPECT_EQ(cli_main({"analyze"}, out, err), 0);
  EXPECT_TRUE(err.str().empty());
}

TEST(CliMain, DegradedRunExitsOneWithWarning) {
  // A starved iteration budget forces the fallback chain; the answer is
  // still printed but flagged, and the exit code says "degraded".
  std::ostringstream out, err;
  EXPECT_EQ(cli_main({"analyze", "--max-iterations", "1"}, out, err), 1);
  EXPECT_NE(out.str().find("warning"), std::string::npos);
  EXPECT_NE(out.str().find("degraded"), std::string::npos);
}

TEST(CliMain, DegradedSweepExitsOne) {
  std::ostringstream out, err;
  const int rc = cli_main({"sweep", "--param", "threads", "--from", "1",
                           "--to", "4", "--steps", "2", "--max-iterations",
                           "1"},
                          out, err);
  EXPECT_EQ(rc, 1);
  EXPECT_NE(out.str().find("[degraded]"), std::string::npos);
}

TEST(CliMain, UsageErrorsExitTwo) {
  std::ostringstream out, err;
  EXPECT_EQ(cli_main({"frobnicate"}, out, err), 2);
  EXPECT_NE(err.str().find("latol:"), std::string::npos);

  std::ostringstream out2, err2;
  EXPECT_EQ(cli_main({"analyze", "--p-remote", "1.5"}, out2, err2), 2);
  EXPECT_NE(err2.str().find("p_remote"), std::string::npos);
}

TEST(CliMain, UsageDocumentsExitCodes) {
  EXPECT_NE(usage().find("exit codes"), std::string::npos);
  EXPECT_NE(usage().find("solve failed"), std::string::npos);
}

}  // namespace
}  // namespace latol::cli
