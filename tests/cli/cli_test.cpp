#include "cli/options.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "io/json.hpp"
#include "util/error.hpp"

namespace latol::cli {
namespace {

TEST(CliParse, EmptyDefaultsToHelp) {
  const CliOptions opts = parse_command_line({});
  EXPECT_EQ(opts.command, "help");
}

TEST(CliParse, UnknownCommandThrows) {
  EXPECT_THROW((void)parse_command_line({"frobnicate"}), InvalidArgument);
}

TEST(CliParse, MachineFlagsApply) {
  const CliOptions opts = parse_command_line(
      {"analyze", "--k", "8", "--topology", "mesh", "--threads", "4",
       "--runlength", "20", "--p-remote", "0.3", "--pattern", "uniform",
       "--memory-latency", "15", "--switch-delay", "5", "--context-switch",
       "2"});
  EXPECT_EQ(opts.command, "analyze");
  EXPECT_EQ(opts.config.k, 8);
  EXPECT_EQ(opts.config.topology, topo::TopologyKind::kMesh2D);
  EXPECT_EQ(opts.config.threads_per_processor, 4);
  EXPECT_DOUBLE_EQ(opts.config.runlength, 20.0);
  EXPECT_DOUBLE_EQ(opts.config.p_remote, 0.3);
  EXPECT_EQ(opts.config.traffic.pattern, topo::AccessPattern::kUniform);
  EXPECT_DOUBLE_EQ(opts.config.memory_latency, 15.0);
  EXPECT_DOUBLE_EQ(opts.config.switch_delay, 5.0);
  EXPECT_DOUBLE_EQ(opts.config.context_switch, 2.0);
}

TEST(CliParse, ExtensionFlagsApply) {
  const CliOptions opts = parse_command_line(
      {"analyze", "--memory-ports", "2", "--pipelined-switches",
       "--hotspot-node", "3", "--hotspot-fraction", "0.4"});
  EXPECT_EQ(opts.config.memory_ports, 2);
  EXPECT_TRUE(opts.config.pipelined_switches);
  EXPECT_EQ(opts.config.traffic.hotspot_node, 3);
  EXPECT_DOUBLE_EQ(opts.config.traffic.hotspot_fraction, 0.4);
}

TEST(CliRun, SweepSupportsExtensionParameters) {
  struct Case {
    const char* param;
    const char* from;
    const char* to;
  };
  for (const Case c : {Case{"p_sw", "0.2", "0.8"},
                       Case{"context_switch", "0", "5"},
                       Case{"memory_ports", "1", "2"}}) {
    std::ostringstream out;
    const CliOptions opts = parse_command_line(
        {"sweep", "--param", c.param, "--from", c.from, "--to", c.to,
         "--steps", "2"});
    EXPECT_EQ(run_command(opts, out), 0) << c.param;
  }
}

TEST(CliParse, SweepAndSimulateFlags) {
  const CliOptions sweep = parse_command_line(
      {"sweep", "--param", "threads", "--from", "1", "--to", "8", "--steps",
       "8"});
  EXPECT_EQ(sweep.sweep_param, "threads");
  EXPECT_DOUBLE_EQ(sweep.sweep_from, 1.0);
  EXPECT_DOUBLE_EQ(sweep.sweep_to, 8.0);
  EXPECT_EQ(sweep.sweep_steps, 8);

  const CliOptions sim = parse_command_line(
      {"simulate", "--time", "5000", "--seed", "7", "--petri"});
  EXPECT_DOUBLE_EQ(sim.sim_time, 5000.0);
  EXPECT_EQ(sim.seed, 7u);
  EXPECT_TRUE(sim.use_petri);
}

TEST(CliParse, RejectsBadValues) {
  EXPECT_THROW((void)parse_command_line({"analyze", "--k", "four"}),
               InvalidArgument);
  EXPECT_THROW((void)parse_command_line({"analyze", "--p-remote"}),
               InvalidArgument);
  EXPECT_THROW((void)parse_command_line({"analyze", "--topology", "star"}),
               InvalidArgument);
  EXPECT_THROW((void)parse_command_line({"analyze", "--bogus", "1"}),
               InvalidArgument);
}

TEST(CliRun, HelpPrintsUsage) {
  std::ostringstream out;
  CliOptions opts;
  EXPECT_EQ(run_command(opts, out), 0);
  EXPECT_NE(out.str().find("usage: latol"), std::string::npos);
}

TEST(CliRun, AnalyzeReportsHeadlineNumbers) {
  std::ostringstream out;
  const CliOptions opts = parse_command_line({"analyze"});
  EXPECT_EQ(run_command(opts, out), 0);
  EXPECT_NE(out.str().find("U_p"), std::string::npos);
  EXPECT_NE(out.str().find("S_obs"), std::string::npos);
  EXPECT_NE(out.str().find("0.81"), std::string::npos);  // default U_p
}

TEST(CliRun, ToleranceReportsZones) {
  std::ostringstream out;
  const CliOptions opts = parse_command_line({"tolerance"});
  EXPECT_EQ(run_command(opts, out), 0);
  EXPECT_NE(out.str().find("tol_network"), std::string::npos);
  EXPECT_NE(out.str().find("tolerated"), std::string::npos);
  EXPECT_NE(out.str().find("tune first"), std::string::npos);
}

TEST(CliRun, BottleneckPrintsClosedForms) {
  std::ostringstream out;
  const CliOptions opts = parse_command_line({"bottleneck"});
  EXPECT_EQ(run_command(opts, out), 0);
  EXPECT_NE(out.str().find("Eq.4"), std::string::npos);
  EXPECT_NE(out.str().find("1.73"), std::string::npos);  // d_avg
}

TEST(CliRun, SweepProducesRequestedRows) {
  std::ostringstream out;
  const CliOptions opts = parse_command_line(
      {"sweep", "--param", "threads", "--from", "1", "--to", "4", "--steps",
       "4"});
  EXPECT_EQ(run_command(opts, out), 0);
  // Header + rule + 4 rows appear in the table.
  EXPECT_NE(out.str().find("1.000"), std::string::npos);
  EXPECT_NE(out.str().find("4.000"), std::string::npos);
}

TEST(CliRun, SweepRejectsUnknownParameter) {
  std::ostringstream out;
  CliOptions opts = parse_command_line({"sweep", "--param", "voltage"});
  EXPECT_THROW((void)run_command(opts, out), InvalidArgument);
}

TEST(CliRun, SimulateComparesAgainstModel) {
  std::ostringstream out;
  const CliOptions opts =
      parse_command_line({"simulate", "--time", "20000", "--seed", "3"});
  EXPECT_EQ(run_command(opts, out), 0);
  EXPECT_NE(out.str().find("dev%"), std::string::npos);
  EXPECT_NE(out.str().find("discrete-event"), std::string::npos);
}

TEST(CliRun, SimulatePetriVariant) {
  std::ostringstream out;
  CliOptions opts = parse_command_line(
      {"simulate", "--time", "10000", "--k", "2", "--petri"});
  EXPECT_EQ(run_command(opts, out), 0);
  EXPECT_NE(out.str().find("Petri"), std::string::npos);
}

TEST(CliRun, InvalidConfigSurfacesAsError) {
  std::ostringstream out;
  CliOptions opts = parse_command_line({"analyze", "--p-remote", "1.5"});
  EXPECT_THROW((void)run_command(opts, out), InvalidArgument);
}

TEST(CliRun, MaxIterationsFlagApplies) {
  const CliOptions opts =
      parse_command_line({"analyze", "--max-iterations", "50"});
  EXPECT_EQ(opts.amva.max_iterations, 50);
  EXPECT_THROW((void)parse_command_line({"analyze", "--max-iterations", "0"}),
               InvalidArgument);
}

TEST(CliRun, AnalyzeReportsItsSolver) {
  std::ostringstream out;
  const CliOptions opts = parse_command_line({"analyze"});
  EXPECT_EQ(run_command(opts, out), 0);
  EXPECT_NE(out.str().find("solved by amva"), std::string::npos);
}

// --- exit-code contract of the full entry point ---

TEST(CliMain, CleanRunExitsZero) {
  std::ostringstream out, err;
  EXPECT_EQ(cli_main({"analyze"}, out, err), 0);
  EXPECT_TRUE(err.str().empty());
}

TEST(CliMain, DegradedRunExitsOneWithWarning) {
  // A starved iteration budget forces the fallback chain; the answer is
  // still printed but flagged, and the exit code says "degraded".
  std::ostringstream out, err;
  EXPECT_EQ(cli_main({"analyze", "--max-iterations", "1"}, out, err), 1);
  EXPECT_NE(out.str().find("warning"), std::string::npos);
  EXPECT_NE(out.str().find("degraded"), std::string::npos);
}

TEST(CliMain, DegradedSweepExitsOne) {
  std::ostringstream out, err;
  const int rc = cli_main({"sweep", "--param", "threads", "--from", "1",
                           "--to", "4", "--steps", "2", "--max-iterations",
                           "1"},
                          out, err);
  EXPECT_EQ(rc, 1);
  EXPECT_NE(out.str().find("[degraded]"), std::string::npos);
}

TEST(CliMain, UsageErrorsExitTwo) {
  std::ostringstream out, err;
  EXPECT_EQ(cli_main({"frobnicate"}, out, err), 2);
  EXPECT_NE(err.str().find("latol:"), std::string::npos);

  std::ostringstream out2, err2;
  EXPECT_EQ(cli_main({"analyze", "--p-remote", "1.5"}, out2, err2), 2);
  EXPECT_NE(err2.str().find("p_remote"), std::string::npos);
}

TEST(CliMain, UsageDocumentsExitCodes) {
  EXPECT_NE(usage().find("exit codes"), std::string::npos);
  EXPECT_NE(usage().find("solve failed"), std::string::npos);
  EXPECT_NE(usage().find("run"), std::string::npos);
}

// --- latol run ------------------------------------------------------------

TEST(CliParse, RunFlagsAndPositionalScenario) {
  const CliOptions opts = parse_command_line(
      {"run", "exp.json", "--out", "results", "--format", "csv", "--workers",
       "3", "--no-cache"});
  EXPECT_EQ(opts.command, "run");
  EXPECT_EQ(opts.scenario_path, "exp.json");
  EXPECT_EQ(opts.out_dir, "results");
  EXPECT_EQ(opts.run_format, "csv");
  EXPECT_EQ(opts.run_workers, 3u);
  EXPECT_FALSE(opts.run_cache);
  EXPECT_THROW((void)parse_command_line({"run", "a.json", "b.json"}),
               InvalidArgument);
  EXPECT_THROW((void)parse_command_line({"run", "a.json", "--format", "xml"}),
               InvalidArgument);
}

TEST(CliParse, StreamingShardAndWarmStartFlags) {
  const CliOptions opts = parse_command_line(
      {"run", "exp.json", "--stream", "--warm-start", "--shard", "2/5",
       "--block-points", "512", "--format", "jsonl"});
  EXPECT_TRUE(opts.run_stream);
  EXPECT_TRUE(opts.warm_start);
  EXPECT_EQ(opts.shard_index, 2u);
  EXPECT_EQ(opts.shard_count, 5u);
  EXPECT_EQ(opts.block_points, 512u);
  EXPECT_EQ(opts.run_format, "jsonl");
  // Defaults: whole grid, no streaming.
  const CliOptions plain = parse_command_line({"run", "exp.json"});
  EXPECT_FALSE(plain.run_stream);
  EXPECT_FALSE(plain.warm_start);
  EXPECT_EQ(plain.shard_index, 0u);
  EXPECT_EQ(plain.shard_count, 1u);
}

TEST(CliParse, RejectsMalformedShardSpecs) {
  // Index must be in [0, count); the spec must be I/N with integers.
  EXPECT_THROW((void)parse_command_line({"run", "a.json", "--shard", "3"}),
               InvalidArgument);
  EXPECT_THROW((void)parse_command_line({"run", "a.json", "--shard", "2/2"}),
               InvalidArgument);
  EXPECT_THROW((void)parse_command_line({"run", "a.json", "--shard", "a/b"}),
               InvalidArgument);
  EXPECT_THROW((void)parse_command_line({"run", "a.json", "--shard", "1/0"}),
               InvalidArgument);
  EXPECT_THROW(
      (void)parse_command_line({"run", "a.json", "--block-points", "0"}),
      InvalidArgument);
}

class CliRunScenario : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("latol_cli_run_" + std::string(::testing::UnitTest::GetInstance()
                                                ->current_test_info()
                                                ->name())))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string write_scenario(const std::string& text) {
    const std::string path = dir_ + "/scenario.json";
    std::ofstream out(path);
    out << text;
    return path;
  }

  std::string read_all(const std::string& path) {
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
  }

  std::string dir_;
};

TEST_F(CliRunScenario, WritesResultsAndManifest) {
  const std::string path = write_scenario(R"({
    "name": "cli_small",
    "base": {"k": 2},
    "axes": [{"param": "p_remote", "values": [0.1, 0.2]}],
    "outputs": {"network_tolerance": true}
  })");
  std::ostringstream out, err;
  const int rc = cli_main({"run", path, "--out", dir_}, out, err);
  EXPECT_EQ(rc, 0) << err.str();
  const std::string csv = read_all(dir_ + "/cli_small.csv");
  EXPECT_EQ(csv.substr(0, csv.find('\n')),
            "p_remote,U_p,S_obs,L_obs,lambda_net,tol_network,solver,converged");
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);  // header + 2 rows
  const std::string manifest = read_all(dir_ + "/cli_small.manifest.json");
  EXPECT_NE(manifest.find("\"degraded_points\": 0"), std::string::npos);
  EXPECT_NE(manifest.find("\"scenario_hash\": \"fnv1a64:"), std::string::npos);
  // JSON results parse and carry one row object per grid point.
  const io::Json results = io::parse_json_file(dir_ + "/cli_small.json");
  EXPECT_EQ(results.find("rows")->as_array().size(), 2u);
  // The default cache file was written and a re-run uses it.
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/latol_cache.json"));
  std::ostringstream out2, err2;
  EXPECT_EQ(cli_main({"run", path, "--out", dir_}, out2, err2), 0);
  EXPECT_NE(out2.str().find("0 solves"), std::string::npos) << out2.str();
}

TEST_F(CliRunScenario, StreamedRunMatchesMaterializedAndShardsCompose) {
  const std::string path = write_scenario(R"({
    "name": "clistream",
    "base": {"k": 2},
    "axes": [
      {"param": "threads", "values": [1, 2, 3]},
      {"param": "p_remote", "values": [0.1, 0.2]}
    ],
    "outputs": {"network_tolerance": true}
  })");
  std::ostringstream out, err;
  ASSERT_EQ(cli_main({"run", path, "--out", dir_, "--no-cache"}, out, err), 0)
      << err.str();
  const std::string whole = read_all(dir_ + "/clistream.csv");
  // --stream reproduces the bytes and adds a .jsonl for --format both.
  ASSERT_EQ(cli_main({"run", path, "--out", dir_ + "/s", "--no-cache",
                      "--stream"},
                     out, err),
            0)
      << err.str();
  EXPECT_EQ(read_all(dir_ + "/s/clistream.csv"), whole);
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/s/clistream.jsonl"));
  // A 2-shard split writes side-by-side artifacts whose row-interleave
  // is the single-process file (rows here are 2 points long).
  for (const char* shard : {"0/2", "1/2"}) {
    ASSERT_EQ(cli_main({"run", path, "--out", dir_ + "/sh", "--no-cache",
                        "--shard", shard, "--format", "csv"},
                       out, err),
              0)
        << err.str();
  }
  const std::string s0 = read_all(dir_ + "/sh/clistream.shard0of2.csv");
  const std::string s1 = read_all(dir_ + "/sh/clistream.shard1of2.csv");
  auto lines = [](const std::string& text) {
    std::vector<std::string> out_lines;
    std::istringstream is(text);
    for (std::string l; std::getline(is, l);) out_lines.push_back(l);
    return out_lines;
  };
  const auto l0 = lines(s0);
  const auto l1 = lines(s1);
  ASSERT_EQ(l0.size(), 5u);  // header + rows 0 and 2 of 2 points each
  ASSERT_EQ(l1.size(), 3u);  // header + row 1
  const std::string merged = l0[0] + "\n" + l0[1] + "\n" + l0[2] + "\n" +
                             l1[1] + "\n" + l1[2] + "\n" + l0[3] + "\n" +
                             l0[4] + "\n";
  EXPECT_EQ(merged, whole);
  const std::string manifest =
      read_all(dir_ + "/sh/clistream.shard0of2.manifest.json");
  EXPECT_NE(manifest.find("\"shard\""), std::string::npos);
  EXPECT_NE(manifest.find("\"rows_owned\": 2"), std::string::npos);
}

TEST_F(CliRunScenario, StreamRejectsResultBasedInstrumentation) {
  const std::string path = write_scenario(R"({
    "name": "streambad",
    "base": {"k": 2}
  })");
  std::ostringstream out, err;
  // --trace/--metrics-out need materialized results: usage error (2).
  EXPECT_EQ(cli_main({"run", path, "--out", dir_, "--stream", "--trace",
                      dir_ + "/t.json"},
                     out, err),
            2);
  // --format jsonl without streaming is a usage error too.
  EXPECT_EQ(cli_main({"run", path, "--out", dir_, "--format", "jsonl"},
                     out, err),
            2);
}

TEST_F(CliRunScenario, FormatJsonSkipsCsv) {
  const std::string path = write_scenario(R"({
    "name": "jsononly",
    "base": {"k": 2}
  })");
  std::ostringstream out, err;
  EXPECT_EQ(cli_main({"run", path, "--out", dir_, "--format", "json",
                      "--no-cache"},
                     out, err),
            0);
  EXPECT_FALSE(std::filesystem::exists(dir_ + "/jsononly.csv"));
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/jsononly.json"));
  EXPECT_FALSE(std::filesystem::exists(dir_ + "/latol_cache.json"));
}

TEST_F(CliRunScenario, PartialFailureExitsOneTotalFailureThree) {
  const std::string partial = write_scenario(R"({
    "name": "partial",
    "base": {"k": 2},
    "axes": [{"param": "p_remote", "values": [0.1, 2.0]}]
  })");
  std::ostringstream out, err;
  EXPECT_EQ(cli_main({"run", partial, "--out", dir_, "--no-cache"}, out, err),
            1);
  EXPECT_NE(out.str().find("[solve failed]"), std::string::npos);

  const std::string total = dir_ + "/total.json";
  {
    std::ofstream f(total);
    f << R"({"name": "total", "base": {"k": 2},
            "axes": [{"param": "p_remote", "values": [1.5, 2.0]}]})";
  }
  std::ostringstream out2, err2;
  EXPECT_EQ(cli_main({"run", total, "--out", dir_, "--no-cache"}, out2, err2),
            3);
}

// --- instrumentation: --metrics-out / --trace / latol profile -------------

TEST(CliParse, ProfileAndInstrumentationFlags) {
  const CliOptions opts = parse_command_line(
      {"profile", "exp.json", "--workers", "2", "--metrics-out", "m.json",
       "--trace", "t.json"});
  EXPECT_EQ(opts.command, "profile");
  EXPECT_EQ(opts.scenario_path, "exp.json");
  EXPECT_EQ(opts.run_workers, 2u);
  EXPECT_EQ(opts.metrics_path, "m.json");
  EXPECT_EQ(opts.trace_path, "t.json");
  // The flags parse on the single-config commands too.
  EXPECT_EQ(parse_command_line({"analyze", "--metrics-out", "m.json"})
                .metrics_path,
            "m.json");
  EXPECT_EQ(parse_command_line({"sweep", "--trace", "t.json"}).trace_path,
            "t.json");
  // profile takes exactly one scenario file, and usage documents it.
  EXPECT_THROW((void)parse_command_line({"profile", "a.json", "b.json"}),
               InvalidArgument);
  EXPECT_NE(usage().find("profile"), std::string::npos);
  EXPECT_NE(usage().find("--metrics-out"), std::string::npos);
}

TEST_F(CliRunScenario, RunEmitsMetricsAndTraceArtifacts) {
  const std::string path = write_scenario(R"({
    "name": "instr",
    "base": {"k": 2},
    "axes": [{"param": "p_remote", "values": [0.1, 0.2]}],
    "outputs": {"network_tolerance": true}
  })");
  const std::string metrics_path = dir_ + "/metrics.json";
  const std::string trace_path = dir_ + "/trace.json";
  std::ostringstream out, err;
  const int rc = cli_main({"run", path, "--out", dir_, "--no-cache",
                           "--metrics-out", metrics_path, "--trace",
                           trace_path},
                          out, err);
  EXPECT_EQ(rc, 0) << err.str();

  const io::Json metrics = io::parse_json_file(metrics_path);
  EXPECT_EQ(metrics.find("format")->as_string(), "latol-metrics-v2");
  EXPECT_EQ(metrics.find("scenario")->as_string(), "instr");
  ASSERT_NE(metrics.find("cache"), nullptr);
  ASSERT_NE(metrics.find("stages"), nullptr);
  const auto& points = metrics.find("points")->as_array();
  ASSERT_EQ(points.size(), 2u);
  for (const io::Json& p : points) {
    EXPECT_GT(p.find("iterations")->as_number(), 0.0);
    EXPECT_GT(p.find("residual_history_length")->as_number(), 0.0);
    EXPECT_LT(p.find("littles_law_error")->as_number(), 1e-6);
  }
  // The registry snapshot rode along (run installs one when instrumented).
  ASSERT_NE(metrics.find("registry"), nullptr);
  EXPECT_NE(metrics.find("registry")->find("counters")->find(
                "qn.robust.solves"),
            nullptr);

  const io::Json trace = io::parse_json_file(trace_path);
  EXPECT_EQ(trace.find("format")->as_string(), "latol-trace-v1");
  const auto& tpoints = trace.find("points")->as_array();
  ASSERT_EQ(tpoints.size(), 2u);
  EXPECT_FALSE(tpoints[0].find("residuals")->as_array().empty());

  // Byte-identity: instrumentation must not change the result artifacts.
  const std::string instrumented_csv = read_all(dir_ + "/instr.csv");
  std::filesystem::remove(dir_ + "/instr.csv");
  std::ostringstream out2, err2;
  EXPECT_EQ(cli_main({"run", path, "--out", dir_, "--no-cache"}, out2, err2),
            0);
  EXPECT_EQ(read_all(dir_ + "/instr.csv"), instrumented_csv);
}

TEST_F(CliRunScenario, AnalyzeAndSweepEmitMetricsAndTraces) {
  const std::string metrics_path = dir_ + "/analyze_metrics.json";
  const std::string trace_path = dir_ + "/analyze_trace.json";
  std::ostringstream out, err;
  EXPECT_EQ(cli_main({"analyze", "--k", "2", "--metrics-out", metrics_path,
                      "--trace", trace_path},
                     out, err),
            0);
  const io::Json metrics = io::parse_json_file(metrics_path);
  EXPECT_EQ(metrics.find("command")->as_string(), "analyze");
  const io::Json* point = metrics.find("point");
  ASSERT_NE(point, nullptr);
  EXPECT_GT(point->find("iterations")->as_number(), 0.0);
  EXPECT_EQ(point->find("iterations")->as_number(),
            point->find("residual_history_length")->as_number());
  const io::Json trace = io::parse_json_file(trace_path);
  const auto& attempts = trace.find("attempts")->as_array();
  ASSERT_EQ(attempts.size(), 1u);  // amva answered first try
  EXPECT_EQ(attempts[0].find("solver")->as_string(), "amva");
  EXPECT_FALSE(attempts[0].find("residuals")->as_array().empty());
  EXPECT_FALSE(attempts[0].find("truncated")->as_bool());

  const std::string sweep_metrics = dir_ + "/sweep_metrics.json";
  std::ostringstream out2, err2;
  EXPECT_EQ(cli_main({"sweep", "--k", "2", "--steps", "3", "--metrics-out",
                      sweep_metrics},
                     out2, err2),
            0);
  const io::Json sm = io::parse_json_file(sweep_metrics);
  EXPECT_EQ(sm.find("command")->as_string(), "sweep");
  EXPECT_EQ(sm.find("points")->as_array().size(), 3u);
}

TEST(CliParse, TraceOutAndProfileDiffFlags) {
  EXPECT_EQ(parse_command_line({"analyze", "--trace-out", "spans.json"})
                .trace_out_path,
            "spans.json");
  EXPECT_EQ(parse_command_line({"run", "s.json", "--trace-out", "t.json"})
                .trace_out_path,
            "t.json");
  const CliOptions diff =
      parse_command_line({"profile", "--diff", "a.json", "b.json"});
  EXPECT_TRUE(diff.profile_diff);
  ASSERT_EQ(diff.profile_inputs.size(), 2u);
  EXPECT_EQ(diff.profile_inputs[0], "a.json");
  EXPECT_EQ(diff.profile_inputs[1], "b.json");
  // Flag order must not matter.
  EXPECT_TRUE(parse_command_line({"profile", "a.json", "b.json", "--diff"})
                  .profile_diff);
  // --diff needs exactly two inputs, and only profile takes it.
  EXPECT_THROW((void)parse_command_line({"profile", "--diff", "a.json"}),
               InvalidArgument);
  EXPECT_THROW(
      (void)parse_command_line({"profile", "--diff", "a", "b", "c"}),
      InvalidArgument);
  EXPECT_THROW((void)parse_command_line({"analyze", "--diff"}),
               InvalidArgument);
  EXPECT_NE(usage().find("--trace-out"), std::string::npos);
  EXPECT_NE(usage().find("--diff"), std::string::npos);
}

/// `--trace-out` on a multi-worker scenario run: the Chrome trace
/// document is well formed, the per-point spans nest under the batch
/// runner's span across worker lanes, and the result artifacts stay
/// byte-identical to an untraced run. (Test name carries "Trace" so the
/// TSan CI job exercises the concurrent recording path.)
TEST_F(CliRunScenario, TraceOutWritesChromeSpansWithoutPerturbingResults) {
  const std::string path = write_scenario(R"({
    "name": "spans",
    "base": {"k": 2},
    "axes": [{"param": "p_remote", "values": [0.1, 0.2, 0.3, 0.4]}],
    "outputs": {"network_tolerance": true}
  })");
  const std::string trace_path = dir_ + "/spans_trace.json";
  std::ostringstream out, err;
  const int rc = cli_main({"run", path, "--out", dir_, "--no-cache",
                           "--workers", "4", "--trace-out", trace_path},
                          out, err);
  EXPECT_EQ(rc, 0) << err.str();
  EXPECT_NE(out.str().find("wrote span trace"), std::string::npos);

  const io::Json doc = io::parse_json_file(trace_path);
  const auto& events = doc.find("traceEvents")->as_array();
  double run_span_id = 0.0;
  for (const io::Json& e : events) {
    if (e.find("ph")->as_string() == "B" &&
        e.find("name")->as_string() == "exp.run_scenario") {
      run_span_id = e.find("args")->find("span_id")->as_number();
    }
  }
  ASSERT_NE(run_span_id, 0.0);
  std::size_t points = 0;
  for (const io::Json& e : events) {
    if (e.find("ph")->as_string() != "B" ||
        e.find("name")->as_string() != "exp.point")
      continue;
    ++points;
    EXPECT_EQ(e.find("args")->find("parent_id")->as_number(), run_span_id);
  }
  EXPECT_EQ(points, 4u);  // one per grid point, whatever lane ran it

  // Byte-identity: tracing must not change the result artifacts.
  const std::string traced_csv = read_all(dir_ + "/spans.csv");
  const std::string traced_json = read_all(dir_ + "/spans.json");
  std::filesystem::remove(dir_ + "/spans.csv");
  std::filesystem::remove(dir_ + "/spans.json");
  std::ostringstream out2, err2;
  EXPECT_EQ(cli_main({"run", path, "--out", dir_, "--no-cache",
                      "--workers", "4"},
                     out2, err2),
            0);
  EXPECT_EQ(read_all(dir_ + "/spans.csv"), traced_csv);
  EXPECT_EQ(read_all(dir_ + "/spans.json"), traced_json);
  // The trace artifact only appears when asked for.
  EXPECT_EQ(out2.str().find("wrote span trace"), std::string::npos);
}

TEST_F(CliRunScenario, ProfileDiffPrintsPerMetricDeltas) {
  const std::string a = dir_ + "/a.json";
  const std::string b = dir_ + "/b.json";
  std::ostringstream out, err;
  EXPECT_EQ(cli_main({"analyze", "--k", "2", "--p-remote", "0.1",
                      "--metrics-out", a},
                     out, err),
            0);
  EXPECT_EQ(cli_main({"analyze", "--k", "2", "--p-remote", "0.4",
                      "--metrics-out", b},
                     out, err),
            0);
  std::ostringstream diff_out, diff_err;
  const int rc = cli_main({"profile", "--diff", a, b}, diff_out, diff_err);
  EXPECT_EQ(rc, 0) << diff_err.str();
  const std::string text = diff_out.str();
  EXPECT_NE(text.find("metrics diff"), std::string::npos);
  EXPECT_NE(text.find("latol-metrics-v2"), std::string::npos);
  EXPECT_NE(text.find("delta%"), std::string::npos);
  EXPECT_NE(text.find("point.iterations"), std::string::npos);
  EXPECT_NE(text.find("point.residual"), std::string::npos);

  // A non-metrics JSON input is a usage error (exit 2), as is a missing
  // file.
  const std::string junk = dir_ + "/junk.json";
  { std::ofstream f(junk); f << "[1, 2]"; }
  std::ostringstream o3, e3;
  EXPECT_EQ(cli_main({"profile", "--diff", a, junk}, o3, e3), 2);
  std::ostringstream o4, e4;
  EXPECT_EQ(cli_main({"profile", "--diff", a, dir_ + "/nope.json"}, o4, e4),
            2);
}

TEST_F(CliRunScenario, ProfilePrintsStageAndConvergenceTables) {
  const std::string path = write_scenario(R"({
    "name": "prof",
    "base": {"k": 2},
    "axes": [{"param": "p_remote", "values": [0.1, 0.2, 0.3]}],
    "outputs": {"network_tolerance": true}
  })");
  std::ostringstream out, err;
  const int rc = cli_main({"profile", path}, out, err);
  EXPECT_EQ(rc, 0) << err.str();
  const std::string text = out.str();
  // Stage timing table.
  EXPECT_NE(text.find("stage"), std::string::npos);
  EXPECT_NE(text.find("expand"), std::string::npos);
  EXPECT_NE(text.find("solve"), std::string::npos);
  // Per-solver timers fed by the registry it installed.
  EXPECT_NE(text.find("qn.solver.amva"), std::string::npos);
  // Convergence table with one row per grid point plus cache accounting.
  EXPECT_NE(text.find("residual"), std::string::npos);
  EXPECT_NE(text.find("littles_err"), std::string::npos);
  EXPECT_NE(text.find("cache:"), std::string::npos);
  // No result/cache files: profile only reports.
  EXPECT_FALSE(std::filesystem::exists(dir_ + "/prof.csv"));
  EXPECT_FALSE(std::filesystem::exists(dir_ + "/latol_cache.json"));
}

TEST_F(CliRunScenario, ProfileFlagsDegradedScenarios) {
  const std::string path = write_scenario(R"({
    "name": "starved",
    "base": {"k": 2},
    "axes": [{"param": "p_remote", "values": [0.2]}],
    "solver": {"max_iterations": 2}
  })");
  std::ostringstream out, err;
  EXPECT_EQ(cli_main({"profile", path}, out, err), 1);
  EXPECT_NE(out.str().find("[degraded]"), std::string::npos);
  EXPECT_NE(out.str().find("warning"), std::string::npos);
}

TEST_F(CliRunScenario, UsageErrorsExitTwo) {
  std::ostringstream out, err;
  // Missing scenario file argument.
  EXPECT_EQ(cli_main({"run"}, out, err), 2);
  // `profile` shares the scenario plumbing and the exit code.
  EXPECT_EQ(cli_main({"profile"}, out, err), 2);
  // Nonexistent scenario file.
  EXPECT_EQ(cli_main({"run", dir_ + "/nope.json"}, out, err), 2);
  // Malformed JSON names line/column.
  const std::string bad = write_scenario("{broken");
  std::ostringstream out2, err2;
  EXPECT_EQ(cli_main({"run", bad}, out2, err2), 2);
  EXPECT_NE(err2.str().find("line 1"), std::string::npos);
  // Schema violations name the offending key.
  const std::string schema = write_scenario(R"({"name": "x", "typo": 1})");
  std::ostringstream out3, err3;
  EXPECT_EQ(cli_main({"run", schema}, out3, err3), 2);
  EXPECT_NE(err3.str().find("typo"), std::string::npos);
}

}  // namespace
}  // namespace latol::cli
