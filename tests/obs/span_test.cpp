// Span tracing: sink lifecycle, nesting, cross-thread parents, and the
// Chrome trace_event JSON schema (DESIGN.md §14). The schema checks are
// structural — well-formed JSON, matched B/E pairs per tid, monotone
// per-tid timestamps — because the viewer (chrome://tracing, Perfetto)
// silently drops malformed events instead of failing loudly.
#include "obs/span.hpp"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <stack>
#include <string>
#include <thread>
#include <vector>

#include "io/json.hpp"

namespace latol::obs {
namespace {

/// Installs a sink for one test and guarantees restoration.
class ScopedSink {
 public:
  ScopedSink() : previous_(set_default_trace_sink(&sink_)) {}
  ~ScopedSink() { set_default_trace_sink(previous_); }
  ScopedSink(const ScopedSink&) = delete;
  ScopedSink& operator=(const ScopedSink&) = delete;
  TraceSink& operator*() { return sink_; }
  TraceSink* operator->() { return &sink_; }

 private:
  TraceSink sink_;
  TraceSink* previous_;
};

io::Json dump_and_parse(const TraceSink& sink) {
  std::ostringstream os;
  sink.write_chrome_trace(os);
  return io::parse_json(os.str());
}

TEST(Span, NoSinkInstalledIsInert) {
  ASSERT_EQ(default_trace_sink(), nullptr);
  Span span("test.orphan", "test");
  span.arg("x", 1.0);
  span.detail("ignored");
  EXPECT_EQ(span.id(), 0u);
  EXPECT_EQ(Span::current(), 0u);
  instant("test.orphan.instant", "test");
}

TEST(Span, RecordsMatchedBeginEndPairs) {
  ScopedSink sink;
  {
    Span span("test.outer", "test");
    EXPECT_NE(span.id(), 0u);
    EXPECT_EQ(Span::current(), span.id());
  }
  EXPECT_EQ(Span::current(), 0u);
  EXPECT_EQ(sink->event_count(), 2u);  // one B + one E
}

TEST(Span, NestsImplicitlyWithinAThread) {
  ScopedSink sink;
  std::uint64_t outer_id = 0;
  std::uint64_t inner_parent = 0;
  {
    Span outer("test.outer", "test");
    outer_id = outer.id();
    Span inner("test.inner", "test");
    inner_parent = Span::current();  // == inner's id, not parent
    EXPECT_EQ(inner_parent, inner.id());
  }
  const io::Json doc = dump_and_parse(*sink);
  // Find the inner span's B event and check its parent link.
  bool found = false;
  for (const io::Json& e : doc.find("traceEvents")->as_array()) {
    if (e.find("name")->as_string() == "test.inner" &&
        e.find("ph")->as_string() == "B") {
      EXPECT_EQ(e.find("args")->find("parent_id")->as_number(),
                static_cast<double>(outer_id));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Span, ExplicitParentCrossesThreads) {
  ScopedSink sink;
  std::uint64_t parent_id = 0;
  {
    Span parent("test.batch", "test");
    parent_id = parent.id();
    std::thread worker([&] {
      Span child("test.point", "test", parent_id);
      EXPECT_NE(child.id(), 0u);
      EXPECT_NE(child.id(), parent_id);
    });
    worker.join();
  }
  const io::Json doc = dump_and_parse(*sink);
  std::map<std::string, double> tid_of;
  for (const io::Json& e : doc.find("traceEvents")->as_array()) {
    if (e.find("ph")->as_string() != "B") continue;
    tid_of[e.find("name")->as_string()] = e.find("tid")->as_number();
    if (e.find("name")->as_string() == "test.point") {
      EXPECT_EQ(e.find("args")->find("parent_id")->as_number(),
                static_cast<double>(parent_id));
    }
  }
  ASSERT_EQ(tid_of.size(), 2u);
  EXPECT_NE(tid_of["test.batch"], tid_of["test.point"]);  // separate lanes
}

TEST(Span, ArgsAndDetailRideTheEndEvent) {
  ScopedSink sink;
  {
    Span span("test.args", "test");
    span.arg("alpha", 1.5);
    span.arg("beta", 2.0);
    span.arg("dropped", 3.0);  // beyond kMaxArgs
    span.detail("free-form \"text\"\n");
  }
  const io::Json doc = dump_and_parse(*sink);
  bool found = false;
  for (const io::Json& e : doc.find("traceEvents")->as_array()) {
    if (e.find("ph")->as_string() != "E") continue;
    const io::Json* args = e.find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_DOUBLE_EQ(args->find("alpha")->as_number(), 1.5);
    EXPECT_DOUBLE_EQ(args->find("beta")->as_number(), 2.0);
    EXPECT_EQ(args->find("dropped"), nullptr);
    // detail survives JSON escaping round trip.
    EXPECT_EQ(args->find("detail")->as_string(), "free-form \"text\"\n");
    found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Span, InstantEventsCarryTheCurrentParent) {
  ScopedSink sink;
  std::uint64_t outer_id = 0;
  {
    Span outer("test.outer", "test");
    outer_id = outer.id();
    instant("test.tick", "test");
  }
  const io::Json doc = dump_and_parse(*sink);
  bool found = false;
  for (const io::Json& e : doc.find("traceEvents")->as_array()) {
    if (e.find("name")->as_string() != "test.tick") continue;
    EXPECT_EQ(e.find("ph")->as_string(), "i");
    EXPECT_EQ(e.find("s")->as_string(), "t");
    EXPECT_EQ(e.find("args")->find("parent_id")->as_number(),
              static_cast<double>(outer_id));
    found = true;
  }
  EXPECT_TRUE(found);
}

/// Full structural schema check over a concurrent recording: the
/// document parses, every tid's timestamps are monotone, every B has a
/// matching E with the same name in stack (LIFO) order, and each lane
/// has a thread_name metadata event. Named *Trace* so the TSan CI job
/// picks it up (tests/CMakeLists.txt comment on the filter).
TEST(TraceSchema, ConcurrentRecordingSerializesWellFormed) {
  ScopedSink sink;
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 50;
  {
    Span root("test.root", "test");
    const std::uint64_t root_id = root.id();
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([root_id] {
        for (int i = 0; i < kSpansPerThread; ++i) {
          Span outer("test.work", "test", root_id);
          outer.arg("i", static_cast<double>(i));
          Span inner("test.work.step", "test");
          instant("test.work.tick", "test");
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  // 1 root span + per thread: 50 * (2 spans * 2 events + 1 instant).
  EXPECT_EQ(sink->event_count(),
            2u + kThreads * kSpansPerThread * 5u);

  const io::Json doc = dump_and_parse(*sink);
  const auto& events = doc.find("traceEvents")->as_array();
  std::map<double, double> last_ts;                      // tid -> last ts
  std::map<double, std::stack<std::string>> open_spans;  // tid -> B stack
  std::map<double, bool> has_thread_name;
  for (const io::Json& e : events) {
    const std::string ph = e.find("ph")->as_string();
    const double tid = e.find("tid")->as_number();
    if (ph == "M") {
      EXPECT_EQ(e.find("name")->as_string(), "thread_name");
      has_thread_name[tid] = true;
      continue;
    }
    // Timestamps are monotone within a tid (recording order per lane).
    const double ts = e.find("ts")->as_number();
    auto [it, fresh] = last_ts.try_emplace(tid, ts);
    if (!fresh) {
      EXPECT_GE(ts, it->second);
      it->second = ts;
    }
    if (ph == "B") {
      open_spans[tid].push(e.find("name")->as_string());
    } else if (ph == "E") {
      ASSERT_FALSE(open_spans[tid].empty());
      EXPECT_EQ(open_spans[tid].top(), e.find("name")->as_string());
      open_spans[tid].pop();
    } else {
      EXPECT_EQ(ph, "i");
    }
  }
  for (const auto& [tid, stack] : open_spans) {
    EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
    EXPECT_TRUE(has_thread_name[tid]) << "no thread_name for tid " << tid;
  }
}

/// The per-thread lane cache must not leak events into a later sink
/// after the first one is gone (the cache is keyed by sink id, not
/// address).
TEST(TraceSchema, LaneCacheDoesNotCarryAcrossSinks) {
  {
    ScopedSink first;
    { Span span("test.first", "test"); }
    EXPECT_EQ(first->event_count(), 2u);
  }
  ScopedSink second;
  { Span span("test.second", "test"); }
  EXPECT_EQ(second->event_count(), 2u);
  const io::Json doc = dump_and_parse(*second);
  for (const io::Json& e : doc.find("traceEvents")->as_array()) {
    if (e.find("ph")->as_string() == "M") continue;
    EXPECT_EQ(e.find("name")->as_string(), "test.second");
  }
}

}  // namespace
}  // namespace latol::obs
