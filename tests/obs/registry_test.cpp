#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/trace.hpp"

namespace latol::obs {
namespace {

/// Restores the global registry around every test so obs state can never
/// leak between tests (or into other suites in this binary).
class RegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = set_default_registry(nullptr); }
  void TearDown() override { set_default_registry(previous_); }

 private:
  Registry* previous_ = nullptr;
};

TEST_F(RegistryTest, CountersGaugesTimersAccumulate) {
  Registry r;
  r.counter("c").add();
  r.counter("c").add(41);
  EXPECT_EQ(r.counter("c").value(), 42u);
  r.gauge("g").set(2.5);
  EXPECT_DOUBLE_EQ(r.gauge("g").value(), 2.5);
  r.timer("t").add_seconds(0.25);
  r.timer("t").add_seconds(0.5);
  EXPECT_DOUBLE_EQ(r.timer("t").seconds(), 0.75);
  EXPECT_EQ(r.timer("t").count(), 2u);
}

TEST_F(RegistryTest, SlotsAreStableReferences) {
  Registry r;
  Counter& first = r.counter("stable");
  // Creating many more slots must not invalidate the first reference
  // (slots live in a deque).
  for (int i = 0; i < 1000; ++i) {
    r.counter("slot-" + std::to_string(i)).add();
  }
  first.add(7);
  EXPECT_EQ(r.counter("stable").value(), 7u);
  EXPECT_EQ(&first, &r.counter("stable"));
}

TEST_F(RegistryTest, SnapshotKeepsCreationOrderAndResetZeroes) {
  Registry r;
  r.counter("b").add(2);
  r.counter("a").add(1);
  r.gauge("g").set(3.0);
  r.timer("t").add_seconds(1.0);
  const Snapshot s = r.snapshot();
  ASSERT_EQ(s.counters.size(), 2u);
  EXPECT_EQ(s.counters[0].name, "b");  // creation order, not sorted
  EXPECT_EQ(s.counters[0].value, 2u);
  EXPECT_EQ(s.counters[1].name, "a");
  ASSERT_EQ(s.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(s.gauges[0].value, 3.0);
  ASSERT_EQ(s.timers.size(), 1u);
  EXPECT_EQ(s.timers[0].count, 1u);
  r.reset();
  const Snapshot z = r.snapshot();
  ASSERT_EQ(z.counters.size(), 2u);  // names survive
  EXPECT_EQ(z.counters[0].value, 0u);
  EXPECT_DOUBLE_EQ(z.gauges[0].value, 0.0);
  EXPECT_EQ(z.timers[0].count, 0u);
}

TEST_F(RegistryTest, HelpersAreNoOpsWithoutARegistry) {
  ASSERT_EQ(default_registry(), nullptr);
  // Must not crash or allocate a registry behind our back.
  count("nobody.listening");
  gauge_set("nobody.listening", 1.0);
  time_add("nobody.listening", 1.0);
  { ScopedTimer t("nobody.listening"); }
  EXPECT_EQ(default_registry(), nullptr);
}

TEST_F(RegistryTest, HelpersFeedTheInstalledRegistry) {
  Registry r;
  Registry* old = set_default_registry(&r);
  EXPECT_EQ(old, nullptr);
  count("hits", 3);
  gauge_set("depth", 4.0);
  time_add("phase", 0.5);
  { ScopedTimer t("scoped"); }
  set_default_registry(nullptr);
  count("hits", 100);  // after removal: dropped
  EXPECT_EQ(r.counter("hits").value(), 3u);
  EXPECT_DOUBLE_EQ(r.gauge("depth").value(), 4.0);
  EXPECT_EQ(r.timer("phase").count(), 1u);
  EXPECT_EQ(r.timer("scoped").count(), 1u);
  EXPECT_GE(r.timer("scoped").seconds(), 0.0);
}

TEST_F(RegistryTest, ConcurrentUpdatesAreExact) {
  Registry r;
  set_default_registry(&r);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        count("shared");
        // Slot creation from several threads at once must also be safe.
        count("per-thread-" + std::to_string(t));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  set_default_registry(nullptr);
  EXPECT_EQ(r.counter("shared").value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(r.counter("per-thread-" + std::to_string(t)).value(),
              static_cast<std::uint64_t>(kPerThread));
  }
}

TEST_F(RegistryTest, HistogramBucketsObservationsByLogBound) {
  Registry r;
  Histogram& h = r.histogram("h");
  // Bucket i covers (1e-6 * 2^(i-1), 1e-6 * 2^i]; bucket 0 is <= 1e-6.
  h.observe(0.0);             // bucket 0
  h.observe(1e-6);            // bucket 0 (inclusive upper bound)
  h.observe(1.1e-6);          // bucket 1
  h.observe(1e9);             // overflow bucket
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(Histogram::kFiniteBuckets), 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_NEAR(h.sum(), 1e9 + 2.1e-6, 1.0);
  EXPECT_DOUBLE_EQ(Histogram::upper_bound(0), 1e-6);
  EXPECT_DOUBLE_EQ(Histogram::upper_bound(10), 1e-6 * 1024.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket(0), 0u);
}

TEST_F(RegistryTest, HistogramSurvivesConcurrentObserve) {
  Registry r;
  Histogram& h = r.histogram("mt");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.observe(1e-4);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_NEAR(h.sum(), kThreads * kPerThread * 1e-4, 1e-6);
}

TEST_F(RegistryTest, SnapshotAndPrometheusCarryHistograms) {
  Registry r;
  r.histogram("lat.seconds").observe(2e-6);
  r.histogram("lat.seconds").observe(0.5);
  const Snapshot snap = r.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].name, "lat.seconds");
  EXPECT_EQ(snap.histograms[0].count, 2u);
  ASSERT_EQ(snap.histograms[0].buckets.size(),
            Histogram::kFiniteBuckets + 1);

  const std::string prom = to_prometheus(snap, "latol_");
  EXPECT_NE(prom.find("# TYPE latol_lat_seconds histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("latol_lat_seconds_bucket{le=\"1e-06\"} 0"),
            std::string::npos);
  // Buckets are cumulative, so the +Inf bucket equals the count.
  EXPECT_NE(prom.find("latol_lat_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("latol_lat_seconds_count 2"), std::string::npos);
  EXPECT_NE(prom.find("latol_lat_seconds_sum 0.500002"), std::string::npos);
}

TEST_F(RegistryTest, ObserveHelperIsInertWithoutARegistry) {
  observe("nobody.listens", 1.0);  // must not crash
  Registry r;
  Registry* const previous = set_default_registry(&r);
  observe("somebody.listens", 1.0);
  set_default_registry(previous);
  EXPECT_EQ(r.histogram("somebody.listens").count(), 1u);
}

TEST(ConvergenceTrace, RecordsResidualsInOrder) {
  ConvergenceTrace trace;
  trace.record(0.5);
  trace.record(0.25);
  trace.record(0.125);
  ASSERT_EQ(trace.residuals().size(), 3u);
  EXPECT_DOUBLE_EQ(trace.residuals()[0], 0.5);
  EXPECT_DOUBLE_EQ(trace.residuals()[2], 0.125);
  EXPECT_EQ(trace.total_recorded(), 3u);
  EXPECT_FALSE(trace.truncated());
  EXPECT_FALSE(trace.empty());
  trace.clear();
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(trace.total_recorded(), 0u);
}

TEST(ConvergenceTrace, CapsStorageButKeepsCounting) {
  ConvergenceTrace trace(4);
  for (int i = 0; i < 10; ++i) trace.record(static_cast<double>(i));
  EXPECT_EQ(trace.capacity(), 4u);
  ASSERT_EQ(trace.residuals().size(), 4u);
  EXPECT_DOUBLE_EQ(trace.residuals()[3], 3.0);  // first 4 kept, not last 4
  EXPECT_EQ(trace.total_recorded(), 10u);
  EXPECT_TRUE(trace.truncated());
}

}  // namespace
}  // namespace latol::obs
