#include "io/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>

#include "util/error.hpp"

namespace latol::io {
namespace {

// --- parsing: happy paths -------------------------------------------------

TEST(JsonParse, Primitives) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_EQ(parse_json("true").as_bool(), true);
  EXPECT_EQ(parse_json("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(parse_json("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse_json("-0.5").as_number(), -0.5);
  EXPECT_DOUBLE_EQ(parse_json("1e3").as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(parse_json("2.5E-2").as_number(), 0.025);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, NumbersAreExactDoubles) {
  // The scenario engine depends on axis literals parsing to the same
  // double the C++ source spells: 0.05 is 0.05, not "approximately".
  EXPECT_EQ(parse_json("0.05").as_number(), 0.05);
  EXPECT_EQ(parse_json("0.1").as_number(), 0.1);
  EXPECT_EQ(parse_json("1e308").as_number(), 1e308);
}

TEST(JsonParse, Whitespace) {
  const Json v = parse_json(" \t\r\n [ 1 , 2 ] \n");
  ASSERT_TRUE(v.is_array());
  EXPECT_EQ(v.as_array().size(), 2u);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse_json(R"("a\"b\\c\/d\b\f\n\r\t")").as_string(),
            "a\"b\\c/d\b\f\n\r\t");
  EXPECT_EQ(parse_json(R"("Aé€")").as_string(),
            "A\xC3\xA9\xE2\x82\xAC");  // A, é, €
}

TEST(JsonParse, ObjectPreservesInsertionOrder) {
  const Json v = parse_json(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.as_object()[0].first, "z");
  EXPECT_EQ(v.as_object()[1].first, "a");
  EXPECT_EQ(v.as_object()[2].first, "m");
  EXPECT_DOUBLE_EQ(v.find("a")->as_number(), 2.0);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParse, Nested) {
  const Json v = parse_json(R"({"a": [1, {"b": [true, null]}], "c": {}})");
  const Json* a = v.find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(a->as_array()[1].find("b")->as_array()[1].is_null());
  EXPECT_TRUE(v.find("c")->as_object().empty());
}

TEST(JsonParse, EmptyContainers) {
  EXPECT_TRUE(parse_json("[]").as_array().empty());
  EXPECT_TRUE(parse_json("{}").as_object().empty());
}

// --- parsing: errors with locations ---------------------------------------

TEST(JsonParse, ErrorCarriesLineAndColumn) {
  try {
    (void)parse_json("{\n  \"a\": 1,\n  \"b\": oops\n}");
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_EQ(e.column(), 8u);
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(JsonParse, RejectsMalformed) {
  EXPECT_THROW(parse_json(""), JsonParseError);
  EXPECT_THROW(parse_json("tru"), JsonParseError);
  EXPECT_THROW(parse_json("[1,]"), JsonParseError);
  EXPECT_THROW(parse_json("[1 2]"), JsonParseError);
  EXPECT_THROW(parse_json("{\"a\" 1}"), JsonParseError);
  EXPECT_THROW(parse_json("{a: 1}"), JsonParseError);
  EXPECT_THROW(parse_json("\"unterminated"), JsonParseError);
  EXPECT_THROW(parse_json("1 2"), JsonParseError);  // trailing junk
  EXPECT_THROW(parse_json("[1] x"), JsonParseError);
}

TEST(JsonParse, RejectsNonRfcNumbers) {
  EXPECT_THROW(parse_json("01"), JsonParseError);
  EXPECT_THROW(parse_json("+1"), JsonParseError);
  EXPECT_THROW(parse_json(".5"), JsonParseError);
  EXPECT_THROW(parse_json("1."), JsonParseError);
  EXPECT_THROW(parse_json("1e"), JsonParseError);
  EXPECT_THROW(parse_json("NaN"), JsonParseError);
  EXPECT_THROW(parse_json("Infinity"), JsonParseError);
}

TEST(JsonParse, RejectsDuplicateKeys) {
  EXPECT_THROW(parse_json(R"({"a": 1, "a": 2})"), JsonParseError);
}

TEST(JsonParse, RejectsBadStrings) {
  EXPECT_THROW(parse_json("\"\x01\""), JsonParseError);  // raw control char
  EXPECT_THROW(parse_json(R"("\x41")"), JsonParseError);  // unknown escape
  EXPECT_THROW(parse_json(R"("\u12")"), JsonParseError);  // short \u
  EXPECT_THROW(parse_json(R"("\ud800")"), JsonParseError);  // surrogate
}

TEST(JsonParse, RejectsExcessiveDepth) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_THROW(parse_json(deep), JsonParseError);
}

// --- writer ---------------------------------------------------------------

TEST(JsonDump, Compact) {
  const Json v =
      parse_json(R"({"a": [1, 2.5, true, null], "b": "x"})");
  EXPECT_EQ(v.dump(), R"({"a": [1, 2.5, true, null], "b": "x"})");
}

TEST(JsonDump, Pretty) {
  Json v = Json::object();
  v.set("a", Json::Array{1, 2});
  EXPECT_EQ(v.dump(2), "{\n  \"a\": [\n    1,\n    2\n  ]\n}");
}

TEST(JsonDump, EscapesStrings) {
  EXPECT_EQ(Json("a\"b\\c\n\t\x01").dump(),
            R"("a\"b\\c\n\t\u0001")");
}

TEST(JsonDump, RoundTripsValues) {
  const char* docs[] = {
      "null", "true", "[0.1, 1e-300, 123456789012345]",
      R"({"nested": {"deep": [[], {}]}, "s": "é"})",
  };
  for (const char* doc : docs) {
    const Json v = parse_json(doc);
    EXPECT_EQ(parse_json(v.dump()), v) << doc;
    EXPECT_EQ(parse_json(v.dump(2)), v) << doc;
  }
}

TEST(JsonNumber, Formatting) {
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(42.0), "42");
  EXPECT_EQ(json_number(-7.0), "-7");
  EXPECT_EQ(json_number(0.5), "0.5");
  // Shortest round-trip: reading the text back gives the same double.
  for (const double v : {0.1, 1.0 / 3.0, 6.02e23, -1e-9,
                         std::numeric_limits<double>::denorm_min()}) {
    EXPECT_EQ(parse_json(json_number(v)).as_number(), v) << v;
  }
  // Non-finite doubles have no JSON spelling; they become null.
  EXPECT_EQ(json_number(std::nan("")), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
}

// --- accessors ------------------------------------------------------------

TEST(JsonAccess, CheckedAccessorsThrowWithKindNames) {
  const Json v = parse_json("[1]");
  try {
    (void)v.as_string();
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("array"), std::string::npos);
  }
  EXPECT_THROW((void)v.as_object(), InvalidArgument);
  EXPECT_THROW((void)parse_json("{}").as_number(), InvalidArgument);
}

TEST(JsonAccess, SetReplacesInPlace) {
  Json v = Json::object();
  v.set("a", 1);
  v.set("b", 2);
  v.set("a", 3);
  ASSERT_EQ(v.as_object().size(), 2u);
  EXPECT_EQ(v.as_object()[0].first, "a");  // original position kept
  EXPECT_DOUBLE_EQ(v.find("a")->as_number(), 3.0);
}

// --- files ----------------------------------------------------------------

TEST(JsonFile, RoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "latol_json_test.json")
          .string();
  Json v = Json::object();
  v.set("x", 0.1);
  write_json_file(path, v);
  EXPECT_EQ(parse_json_file(path), v);
  std::remove(path.c_str());
}

TEST(JsonFile, MissingFileNamesPath) {
  try {
    (void)parse_json_file("/nonexistent_dir_zz/x.json");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent_dir_zz/x.json"),
              std::string::npos);
  }
}

TEST(JsonFile, ParseErrorNamesPathAndLocation) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "latol_json_bad.json")
          .string();
  {
    std::ofstream out(path);
    out << "{\n  broken\n}\n";
  }
  try {
    (void)parse_json_file(path);
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos);
    EXPECT_NE(what.find("line 2"), std::string::npos);
    EXPECT_EQ(e.line(), 2u);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace latol::io
