// Hardening corpus for the JSON parser (ParseLimits) and the atomic
// write path: hostile documents must fail with a typed, located error
// before exhausting stack or memory, and write_json_file must never
// leave a torn file behind.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "io/json.hpp"
#include "util/error.hpp"

namespace latol::io {
namespace {

std::string nested_arrays(std::size_t depth) {
  std::string doc;
  doc.reserve(2 * depth + 1);
  doc.append(depth, '[');
  doc += '1';
  doc.append(depth, ']');
  return doc;
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// --- nesting depth --------------------------------------------------------

TEST(JsonLimits, DepthWithinLimitParses) {
  const Json doc = parse_json(nested_arrays(100));
  EXPECT_TRUE(doc.is_array());
}

TEST(JsonLimits, DepthBeyondLimitThrowsInsteadOfOverflowingStack) {
  try {
    (void)parse_json(nested_arrays(300));
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_NE(std::string(e.what()).find("nesting"), std::string::npos);
    EXPECT_GE(e.line(), 1u);
    EXPECT_GE(e.column(), 1u);
  }
}

TEST(JsonLimits, DepthLimitIsConfigurable) {
  ParseLimits limits;
  limits.max_depth = 8;
  EXPECT_THROW((void)parse_json(nested_arrays(9), limits), JsonParseError);
  EXPECT_NO_THROW((void)parse_json(nested_arrays(8), limits));
}

TEST(JsonLimits, DeepObjectsAreBoundedToo) {
  std::string doc;
  for (int i = 0; i < 300; ++i) doc += "{\"k\":";
  doc += "1";
  for (int i = 0; i < 300; ++i) doc += "}";
  EXPECT_THROW((void)parse_json(doc), JsonParseError);
}

// --- document size --------------------------------------------------------

TEST(JsonLimits, OversizedDocumentIsRejectedUpFront) {
  ParseLimits limits;
  limits.max_bytes = 16;
  try {
    (void)parse_json("[1, 2, 3, 4, 5, 6, 7, 8]", limits);
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_NE(std::string(e.what()).find("exceeds the limit"),
              std::string::npos);
  }
}

TEST(JsonLimits, DocumentAtTheLimitParses) {
  ParseLimits limits;
  const std::string doc = "[1, 2, 3]";
  limits.max_bytes = doc.size();
  EXPECT_NO_THROW((void)parse_json(doc, limits));
}

// --- malformed / truncated corpus ----------------------------------------

TEST(JsonLimits, TruncatedDocumentsAllThrow) {
  const char* corpus[] = {
      "{",      "[",          "{\"a\":",       "[1, 2,",
      "\"abc",  "{\"a\": 1,", "[[[1], [2]",    "tru",
      "12e",    "{\"a\" 1}",  "[1 2]",         "\"\\u12",
  };
  for (const char* doc : corpus) {
    EXPECT_THROW((void)parse_json(doc), JsonParseError) << "doc: " << doc;
  }
}

TEST(JsonLimits, ParseFileHonorsLimits) {
  const std::string path = temp_path("latol_limits_test.json");
  {
    std::ofstream out(path);
    out << nested_arrays(300) << '\n';
  }
  EXPECT_THROW((void)parse_json_file(path), JsonParseError);
  std::filesystem::remove(path);
}

// --- atomic writes --------------------------------------------------------

TEST(JsonAtomicWrite, ReplacesExistingFileAtomically) {
  const std::string path = temp_path("latol_atomic_test.json");
  Json first = Json::object();
  first.set("value", 1.0);
  write_json_file(path, first);
  Json second = Json::object();
  second.set("value", 2.0);
  write_json_file(path, second);
  const Json back = parse_json_file(path);
  EXPECT_DOUBLE_EQ(back.find("value")->as_number(), 2.0);
  std::filesystem::remove(path);
}

TEST(JsonAtomicWrite, LeavesNoTempFileBehind) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "latol_atomic_dir").string();
  std::filesystem::create_directories(dir);
  Json doc = Json::object();
  doc.set("x", 1.0);
  write_json_file(dir + "/doc.json", doc);
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 1u);  // only doc.json; the .tmp.<pid> file was renamed
  std::filesystem::remove_all(dir);
}

TEST(JsonAtomicWrite, UnwritablePathThrowsAndLeavesNothing) {
  const std::string path = temp_path("latol_missing_dir/x/y/doc.json");
  Json doc = Json::object();
  EXPECT_THROW(write_json_file(path, doc), InvalidArgument);
  EXPECT_FALSE(std::filesystem::exists(path));
}

}  // namespace
}  // namespace latol::io
