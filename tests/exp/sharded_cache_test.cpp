// Sharded SolveCache: concurrent hit/miss/evict behavior across
// independently locked segments, per-shard persistence (index + shard
// files), per-file quarantine, and shard-count portability — a cache
// saved with N shards must load correctly into a cache with M.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/mms_config.hpp"
#include "exp/solve_cache.hpp"
#include "io/json.hpp"

namespace latol::exp {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void remove_cache_files(const std::string& path, std::size_t max_shards = 16) {
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".corrupt");
  for (std::size_t i = 0; i < max_shards; ++i) {
    const std::string shard = path + ".shard" + std::to_string(i);
    std::filesystem::remove(shard);
    std::filesystem::remove(shard + ".corrupt");
  }
}

// Distinct configurations by thread count, so keys spread over shards.
core::MmsConfig config_n(int threads) {
  core::MmsConfig cfg = core::MmsConfig::paper_defaults();
  cfg.k = 2;
  cfg.threads_per_processor = threads;
  return cfg;
}

TEST(ShardedCache, DefaultIsOneShardZeroClampsToOne) {
  EXPECT_EQ(SolveCache().shards(), 1u);
  EXPECT_EQ(SolveCache(0).shards(), 1u);
  EXPECT_EQ(SolveCache(8).shards(), 8u);
}

TEST(ShardedCache, ConcurrentMixedWorkloadCoalescesDuplicates) {
  SolveCache cache(4);
  constexpr int kDistinct = 6;
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, t] {
      // Every worker touches every key, in a different order per worker.
      for (int i = 0; i < kDistinct; ++i) {
        const int n = 1 + (i + t) % kDistinct;
        (void)cache.analyze(config_n(n), {});
      }
    });
  }
  for (std::thread& w : workers) w.join();
  // Duplicates coalesce: exactly one miss (one solve) per distinct key,
  // everything else a hit, however the threads interleaved.
  EXPECT_EQ(cache.size(), static_cast<std::size_t>(kDistinct));
  EXPECT_EQ(cache.misses(), static_cast<std::size_t>(kDistinct));
  EXPECT_EQ(cache.hits(),
            static_cast<std::size_t>(kDistinct * (kThreads - 1)));
}

TEST(ShardedCache, CapacityBoundsEachShardAndCountsEvictions) {
  SolveCache cache(2);
  cache.set_capacity(2);  // ceil(2/2) = 1 entry per shard
  for (int n = 1; n <= 6; ++n) (void)cache.analyze(config_n(n), {});
  EXPECT_LE(cache.size(), 2u);
  EXPECT_GE(cache.evictions(), 4u);
}

TEST(ShardedCache, SaveWritesIndexPlusShardFilesLoadRestoresAll) {
  const std::string path = temp_path("latol_cache_sharded.json");
  remove_cache_files(path);
  {
    SolveCache cache(4);
    for (int n = 1; n <= 8; ++n) (void)cache.analyze(config_n(n), {});
    cache.save(path, "v-test");
  }
  // The index lists the shard files that were written next to it.
  const io::Json index = io::parse_json_file(path);
  ASSERT_TRUE(index.contains("files"));
  EXPECT_EQ(index.find("shards")->as_number(), 4.0);
  for (const io::Json& file : index.find("files")->as_array()) {
    EXPECT_TRUE(std::filesystem::exists(
        std::filesystem::path(path).parent_path() / file.as_string()));
  }
  SolveCache warmed(4);
  std::string warning;
  EXPECT_EQ(warmed.load(path, "v-test", &warning), 8u);
  EXPECT_TRUE(warning.empty());
  bool hit = false;
  (void)warmed.analyze(config_n(5), {}, &hit);
  EXPECT_TRUE(hit);
  remove_cache_files(path);
}

TEST(ShardedCache, ShardCountMismatchBetweenSaveAndLoadIsHarmless) {
  const std::string path = temp_path("latol_cache_resharded.json");
  remove_cache_files(path);
  {
    SolveCache cache(8);
    for (int n = 1; n <= 8; ++n) (void)cache.analyze(config_n(n), {});
    cache.save(path, "v-test");
  }
  // Entries are routed by key hash on load, not by source file, so a
  // differently sharded (even unsharded) cache still serves every key.
  for (const std::size_t shards : {std::size_t{1}, std::size_t{3}}) {
    SolveCache warmed(shards);
    EXPECT_EQ(warmed.load(path, "v-test"), 8u);
    for (int n = 1; n <= 8; ++n) {
      bool hit = false;
      (void)warmed.analyze(config_n(n), {}, &hit);
      EXPECT_TRUE(hit) << "shards=" << shards << " n=" << n;
    }
  }
  remove_cache_files(path);
}

TEST(ShardedCache, CorruptShardFileIsQuarantinedOthersStillLoad) {
  const std::string path = temp_path("latol_cache_shardrot.json");
  remove_cache_files(path);
  std::size_t total = 0;
  {
    SolveCache cache(4);
    for (int n = 1; n <= 8; ++n) (void)cache.analyze(config_n(n), {});
    total = cache.size();
    cache.save(path, "v-test");
  }
  // Find a shard file that actually holds entries and truncate it.
  std::string victim;
  std::size_t victim_entries = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const std::string shard = path + ".shard" + std::to_string(i);
    if (!std::filesystem::exists(shard)) continue;
    const io::Json doc = io::parse_json_file(shard);
    const std::size_t n = doc.find("entries")->as_array().size();
    if (n > 0 && victim.empty()) {
      victim = shard;
      victim_entries = n;
    }
  }
  ASSERT_FALSE(victim.empty());
  {
    std::ofstream rot(victim, std::ios::trunc);
    rot << "{\"format\": \"latol-solve-cache-4\", truncated";
  }
  SolveCache warmed(4);
  std::string warning;
  const std::size_t loaded = warmed.load(path, "v-test", &warning);
  // Quarantine is per file: the damaged shard's entries are lost, the
  // rest load; the bad file moved aside so the next load is clean.
  EXPECT_EQ(loaded, total - victim_entries);
  EXPECT_FALSE(warning.empty());
  EXPECT_FALSE(std::filesystem::exists(victim));
  EXPECT_TRUE(std::filesystem::exists(victim + ".corrupt"));
  remove_cache_files(path);
}

TEST(ShardedCache, MissingShardFileSkipsSilently) {
  const std::string path = temp_path("latol_cache_shardgone.json");
  remove_cache_files(path);
  {
    SolveCache cache(4);
    for (int n = 1; n <= 8; ++n) (void)cache.analyze(config_n(n), {});
    cache.save(path, "v-test");
  }
  std::string victim;
  for (std::size_t i = 0; i < 4 && victim.empty(); ++i) {
    const std::string shard = path + ".shard" + std::to_string(i);
    if (std::filesystem::exists(shard)) victim = shard;
  }
  ASSERT_FALSE(victim.empty());
  std::filesystem::remove(victim);
  SolveCache warmed(4);
  std::string warning;
  const std::size_t loaded = warmed.load(path, "v-test", &warning);
  EXPECT_LT(loaded, 8u);
  EXPECT_TRUE(warning.empty());  // missing = a cold segment, not damage
  remove_cache_files(path);
}

}  // namespace
}  // namespace latol::exp
