#include "exp/runner.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>

#include "exp/scenario.hpp"
#include "exp/solve_cache.hpp"
#include "io/json.hpp"
#include "obs/registry.hpp"
#include "qn/robust.hpp"
#include "util/error.hpp"

namespace latol::exp {
namespace {

Scenario from_text(const std::string& text) {
  return scenario_from_json(io::parse_json(text));
}

// A small 2x2-torus grid that solves in microseconds.
constexpr const char* kSmallScenario = R"({
  "name": "small",
  "base": {"k": 2},
  "axes": [
    {"param": "threads", "values": [1, 2, 4]},
    {"param": "p_remote", "values": [0.1, 0.2]}
  ],
  "outputs": {"network_tolerance": true}
})";

TEST(Runner, SolvesEveryGridPointCleanly) {
  const RunResult run = run_scenario(from_text(kSmallScenario));
  ASSERT_EQ(run.points.size(), 6u);
  EXPECT_EQ(run.stats.grid_points, 6u);
  EXPECT_EQ(run.stats.failed_points, 0u);
  EXPECT_EQ(run.stats.degraded_points, 0u);
  for (const PointResult& p : run.points) {
    EXPECT_FALSE(p.model.error.has_value());
    EXPECT_GT(p.model.perf.processor_utilization, 0.0);
    ASSERT_TRUE(p.model.tol_network.has_value());
    EXPECT_GT(*p.model.tol_network, 0.0);
    EXPECT_LE(*p.model.tol_network, 1.0 + 1e-9);
  }
}

TEST(Runner, SharesIdealSolvesThroughTheCache) {
  SolveCache cache;
  RunOptions opts;
  opts.cache = &cache;
  const RunResult run = run_scenario(from_text(kSmallScenario), opts);
  // 6 actual solves + ideal solves. The ideal system zeroes p_remote, so
  // both p_remote values share one ideal per thread count: 3 ideals.
  EXPECT_EQ(run.stats.solves, 9u);
  EXPECT_EQ(run.stats.cache_hits, 3u);
  EXPECT_GT(run.stats.cache_hits, 0u);
}

TEST(Runner, DeduplicatesIdenticalGridPoints) {
  const RunResult run = run_scenario(from_text(R"({
    "name": "dupes",
    "base": {"k": 2},
    "axes": [{"param": "p_remote", "values": [0.2, 0.2, 0.3]}]
  })"));
  EXPECT_EQ(run.stats.grid_points, 3u);
  EXPECT_EQ(run.stats.unique_points, 2u);
  EXPECT_EQ(run.points[0].model.perf.processor_utilization,
            run.points[1].model.perf.processor_utilization);
}

TEST(Runner, WorkerCountDoesNotChangeOutputBytes) {
  const Scenario scenario = from_text(R"({
    "name": "det",
    "base": {"k": 2},
    "axes": [
      {"param": "threads", "values": [1, 2, 3, 4]},
      {"param": "p_remote", "values": [0.05, 0.1, 0.2, 0.4]}
    ],
    "outputs": {"network_tolerance": true, "memory_tolerance": true}
  })");
  const auto render = [&](std::size_t workers) {
    RunOptions opts;
    opts.workers = workers;
    const RunResult run = run_scenario(scenario, opts);
    std::ostringstream csv;
    write_results_csv(scenario, run, csv);
    return csv.str() + results_to_json(scenario, run).dump(2);
  };
  const std::string serial = render(1);
  EXPECT_EQ(serial, render(8));
  // A warmed cache must not change the bytes either.
  SolveCache cache;
  RunOptions opts;
  opts.cache = &cache;
  (void)run_scenario(scenario, opts);
  const RunResult warm = run_scenario(scenario, opts);
  EXPECT_EQ(warm.stats.solves, 0u);
  std::ostringstream csv;
  write_results_csv(scenario, warm, csv);
  EXPECT_EQ(serial.substr(0, csv.str().size()), csv.str());
}

TEST(Runner, IsolatesFailingPoints) {
  // p_remote = 2 is an invalid probability: that point fails, the rest
  // of the grid still answers.
  const RunResult run = run_scenario(from_text(R"({
    "name": "faulty",
    "base": {"k": 2},
    "axes": [{"param": "p_remote", "values": [0.1, 2.0]}]
  })"));
  EXPECT_EQ(run.stats.failed_points, 1u);
  EXPECT_FALSE(run.points[0].model.error.has_value());
  ASSERT_TRUE(run.points[1].model.error.has_value());
  EXPECT_EQ(run.points[1].model.error_code,
            qn::SolverErrorCode::kInvalidNetwork);
  // The failed point renders as the bench convention: solver "error",
  // converged 0, metrics zero.
  const Scenario s = from_text(R"({
    "name": "faulty",
    "base": {"k": 2},
    "axes": [{"param": "p_remote", "values": [0.1, 2.0]}],
    "outputs": {"columns": ["p_remote", "U_p", "solver", "converged", "error"]}
  })");
  std::ostringstream csv;
  write_results_csv(s, run, csv);
  const std::string text = csv.str();
  EXPECT_NE(text.find("2,0,error,0,"), std::string::npos) << text;
  // JSON carries the message in the errors section.
  const io::Json doc = results_to_json(s, run);
  ASSERT_EQ(doc.find("errors")->as_array().size(), 1u);
  EXPECT_EQ(doc.find("errors")->as_array()[0].find("point")->as_number(), 1.0);
}

TEST(Runner, ValidationSimulatesRequestedPoints) {
  const Scenario scenario = from_text(R"({
    "name": "val",
    "base": {"k": 2},
    "axes": [{"param": "p_remote", "values": [0.1, 0.2]}],
    "validation": {"engine": "des", "time": 2000, "seed": 3, "points": [1]},
    "outputs": {"columns": ["p_remote", "U_p", "sim_U_p"]}
  })");
  const RunResult run = run_scenario(scenario);
  EXPECT_EQ(run.stats.simulated_points, 1u);
  EXPECT_FALSE(run.points[0].sim.has_value());
  ASSERT_TRUE(run.points[1].sim.has_value());
  EXPECT_EQ(run.points[1].sim->seed, 4u);  // spec seed 3 + point index 1
  EXPECT_GT(run.points[1].sim->processor_utilization, 0.0);
  // Model and simulator agree loosely even on a short run.
  EXPECT_NEAR(run.points[1].sim->processor_utilization,
              run.points[1].model.perf.processor_utilization, 0.2);
  // The unsimulated point renders sim_U_p as an empty CSV cell / JSON null.
  std::ostringstream csv;
  write_results_csv(scenario, run, csv);
  EXPECT_NE(csv.str().find(",\n"), std::string::npos);  // empty sim cell
  const io::Json doc = results_to_json(scenario, run);
  EXPECT_TRUE(doc.find("rows")->as_array()[0].find("sim_U_p")->is_null());
  EXPECT_FALSE(doc.find("rows")->as_array()[1].find("sim_U_p")->is_null());
  // Out-of-grid validation indices are a scenario error, not a point error.
  EXPECT_THROW(run_scenario(from_text(R"({
    "name": "bad",
    "base": {"k": 2},
    "validation": {"points": [5]}
  })")),
               InvalidArgument);
}

TEST(Runner, ManifestRecordsProvenance) {
  const Scenario scenario = from_text(kSmallScenario);
  SolveCache cache;
  RunOptions opts;
  opts.cache = &cache;
  opts.workers = 2;
  const RunResult run = run_scenario(scenario, opts);
  const io::Json m = manifest_to_json(scenario, run);
  EXPECT_EQ(m.find("scenario")->as_string(), "small");
  EXPECT_EQ(m.find("scenario_hash")->as_string().substr(0, 8), "fnv1a64:");
  EXPECT_EQ(m.find("build")->as_string(), build_version());
  EXPECT_EQ(m.find("grid_points")->as_number(), 6.0);
  EXPECT_EQ(m.find("degraded_points")->as_number(), 0.0);
  EXPECT_EQ(m.find("failed_points")->as_number(), 0.0);
  EXPECT_EQ(m.find("workers")->as_number(), 2.0);
  EXPECT_GE(m.find("wall_seconds")->as_number(), 0.0);
  const io::Json* prov = m.find("solver_provenance");
  ASSERT_NE(prov, nullptr);
  double counted = 0;
  for (const auto& [name, n] : prov->as_object()) counted += n.as_number();
  EXPECT_EQ(counted, 6.0);
}

// The one shared definition of solve health (qn/robust.hpp documents this
// truth table as regression-tested here).
TEST(HealthPredicates, TruthTable) {
  static_assert(qn::solve_converged(false, true));
  static_assert(!qn::solve_converged(true, true));
  static_assert(!qn::solve_converged(false, false));
  static_assert(qn::solve_clean(false, true, false));
  static_assert(!qn::solve_clean(false, true, true));   // fallback answered
  static_assert(!qn::solve_clean(false, false, false)); // not converged
  static_assert(!qn::solve_clean(true, true, false));   // errored
  SUCCEED();
}

// Regression: the manifest's degraded count and the CSV `converged` column
// used to be computed in two places and could drift. Both now derive from
// the shared qn predicates — force degraded-but-converged points (AMVA
// starved of iterations, Linearizer fallback answers) and check the two
// artifacts agree with the predicates and each other.
TEST(HealthPredicates, ManifestAndCsvDeriveFromTheSamePredicates) {
  const Scenario scenario = from_text(R"({
    "name": "degraded",
    "base": {"k": 2},
    "axes": [{"param": "p_remote", "values": [0.2, 0.4]}],
    "solver": {"max_iterations": 2},
    "outputs": {"columns": ["p_remote", "solver", "converged"]}
  })");
  const RunResult run = run_scenario(scenario);
  ASSERT_EQ(run.points.size(), 2u);
  std::size_t unhealthy = 0;
  for (const PointResult& p : run.points) {
    // The fallback converged, so the points are degraded yet converged —
    // exactly the case where the two ad-hoc definitions used to disagree.
    EXPECT_TRUE(p.model.perf.degraded);
    EXPECT_TRUE(qn::solve_converged(p.model.error.has_value(),
                                    p.model.perf.converged));
    EXPECT_FALSE(p.model.healthy());
    if (!p.model.healthy() || p.ideal_degraded) ++unhealthy;
  }
  const io::Json m = manifest_to_json(scenario, run);
  EXPECT_EQ(m.find("degraded_points")->as_number(),
            static_cast<double>(unhealthy));
  EXPECT_EQ(run.stats.degraded_points, unhealthy);
  std::ostringstream csv;
  write_results_csv(scenario, run, csv);
  // Every data row's `converged` cell (last column) must match
  // qn::solve_converged — here "1" despite the degraded flag.
  const std::string text = csv.str();
  std::size_t rows = 0;
  for (std::size_t pos = text.find('\n');
       pos != std::string::npos && pos + 1 < text.size();
       pos = text.find('\n', pos + 1)) {
    const std::size_t end = text.find('\n', pos + 1);
    const std::string row = text.substr(pos + 1, end - pos - 1);
    if (row.empty()) continue;
    EXPECT_EQ(row.substr(row.rfind(',') + 1), "1") << row;
    ++rows;
  }
  EXPECT_EQ(rows, 2u);
}

TEST(SolveCache, ReportsPerLookupHitsAndTraceKeying) {
  SolveCache cache;
  core::MmsConfig cfg = core::MmsConfig::paper_defaults();
  cfg.k = 2;
  const qn::AmvaOptions plain;
  bool hit = true;
  const core::MmsPerformance first = cache.analyze(cfg, plain, &hit);
  EXPECT_FALSE(hit);
  EXPECT_TRUE(first.residual_history.empty());
  (void)cache.analyze(cfg, plain, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  // record_trace is part of the key: a traced solve of the same
  // configuration is a distinct entry and actually carries its history.
  qn::AmvaOptions traced;
  traced.record_trace = true;
  const core::MmsPerformance with_trace = cache.analyze(cfg, traced, &hit);
  EXPECT_FALSE(hit);
  EXPECT_FALSE(with_trace.residual_history.empty());
  EXPECT_EQ(with_trace.residual_history.size(),
            static_cast<std::size_t>(with_trace.solver_iterations));
  // Identical numbers either way: tracing only observes.
  EXPECT_EQ(first.processor_utilization, with_trace.processor_utilization);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(SolveCache, CapacityEvictsOldestCompletedEntriesFifo) {
  SolveCache cache;
  qn::AmvaOptions opts;
  auto config_for = [](double p) {
    core::MmsConfig cfg = core::MmsConfig::paper_defaults();
    cfg.k = 2;
    cfg.p_remote = p;
    return cfg;
  };
  for (const double p : {0.1, 0.2, 0.3}) {
    (void)cache.analyze(config_for(p), opts);
  }
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.evictions(), 0u);
  cache.set_capacity(2);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  // The oldest entry (p=0.1) was dropped: solving it again is a miss; the
  // newest (p=0.3) is still a hit.
  bool hit = true;
  (void)cache.analyze(config_for(0.3), opts, &hit);
  EXPECT_TRUE(hit);
  (void)cache.analyze(config_for(0.1), opts, &hit);
  EXPECT_FALSE(hit);
  // That insert pushed past capacity again and evicted FIFO.
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 2u);
  // Capacity 0 = unlimited again.
  cache.set_capacity(0);
  (void)cache.analyze(config_for(0.5), opts);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(Runner, MetricsDocumentRoundTripsThroughIo) {
  Scenario scenario = from_text(kSmallScenario);
  scenario.amva.record_trace = true;
  obs::Registry registry;
  obs::Registry* const previous = obs::set_default_registry(&registry);
  SolveCache cache;
  RunOptions opts;
  opts.cache = &cache;
  const RunResult run = run_scenario(scenario, opts);
  obs::set_default_registry(previous);

  const obs::Snapshot snapshot = registry.snapshot();
  const io::Json rendered = metrics_to_json(scenario, run, &snapshot);
  // The document must survive a full serialize/parse round trip.
  const io::Json doc = io::parse_json(rendered.dump(2));
  EXPECT_EQ(doc.find("format")->as_string(), "latol-metrics-v2");
  EXPECT_EQ(doc.find("scenario")->as_string(), "small");
  EXPECT_EQ(doc.find("build")->as_string(), build_version());
  ASSERT_NE(doc.find("stages"), nullptr);
  EXPECT_GE(doc.find("stages")->find("wall_seconds")->as_number(), 0.0);
  ASSERT_NE(doc.find("cache"), nullptr);
  EXPECT_EQ(doc.find("cache")->find("misses")->as_number(),
            static_cast<double>(run.stats.solves));
  const auto& points = doc.find("points")->as_array();
  ASSERT_EQ(points.size(), 6u);
  for (const io::Json& p : points) {
    EXPECT_TRUE(p.find("converged")->as_bool());
    EXPECT_FALSE(p.find("degraded")->as_bool());
    EXPECT_GT(p.find("iterations")->as_number(), 0.0);
    EXPECT_GT(p.find("residual_history_length")->as_number(), 0.0);
    // Little's law holds to numerical precision on clean solves.
    EXPECT_LT(p.find("littles_law_error")->as_number(), 1e-6);
    EXPECT_LT(p.find("flow_balance_error")->as_number(), 1e-6);
  }
  // Clean run: the invariant warnings stream is empty.
  EXPECT_TRUE(doc.find("warnings")->as_array().empty());
  // The registry snapshot rode along with the solver counters.
  const io::Json* counters = doc.find("registry")->find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->find("qn.robust.solves"), nullptr);
  EXPECT_GE(counters->find("qn.robust.solves")->as_number(),
            static_cast<double>(run.stats.solves));
  // Without a snapshot the registry section is absent.
  EXPECT_EQ(metrics_to_json(scenario, run).find("registry"), nullptr);
}

TEST(SolveCachePersistence, RoundTripsAndGatesOnVersion) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "latol_cache_test.json")
          .string();
  const Scenario scenario = from_text(kSmallScenario);
  SolveCache cold;
  RunOptions opts;
  opts.cache = &cold;
  const RunResult first = run_scenario(scenario, opts);
  EXPECT_GT(first.stats.solves, 0u);
  cold.save(path, "v1");

  SolveCache warm;
  EXPECT_EQ(warm.load(path, "v1"), cold.size());
  opts.cache = &warm;
  const RunResult second = run_scenario(scenario, opts);
  EXPECT_EQ(second.stats.solves, 0u);  // everything preloaded
  EXPECT_EQ(second.stats.cache_preloaded, cold.size());
  // Identical numbers after the JSON round trip.
  for (std::size_t i = 0; i < first.points.size(); ++i) {
    EXPECT_EQ(first.points[i].model.perf.processor_utilization,
              second.points[i].model.perf.processor_utilization);
    EXPECT_EQ(first.points[i].model.tol_network,
              second.points[i].model.tol_network);
  }

  // A different build version ignores the file wholesale.
  SolveCache stale;
  EXPECT_EQ(stale.load(path, "v2"), 0u);
  // A missing file is a cold start, not an error.
  SolveCache fresh;
  EXPECT_EQ(fresh.load(path + ".missing", "v1"), 0u);
  std::remove(path.c_str());
}

TEST(SolveCachePersistence, RejectsMalformedEntries) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "latol_cache_bad.json")
          .string();
  io::Json doc = io::Json::object();
  doc.set("format", "latol-solve-cache-3");
  doc.set("version", "v1");
  io::Json entry = io::Json::object();
  entry.set("key", "k");  // missing perf
  io::Json entries = io::Json::array();
  entries.push_back(std::move(entry));
  doc.set("entries", std::move(entries));
  io::write_json_file(path, doc);
  SolveCache cache;
  // Malformed entries quarantine the file (renamed to .corrupt) instead
  // of aborting the run: nothing is ingested and a warning is reported.
  std::string warning;
  EXPECT_EQ(cache.load(path, "v1", &warning), 0u);
  EXPECT_FALSE(warning.empty());
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_TRUE(std::filesystem::exists(path + ".corrupt"));
  std::filesystem::remove(path + ".corrupt");
  // An unrecognized format is ignored, not an error.
  io::Json other = io::Json::object();
  other.set("format", "something-else");
  io::write_json_file(path, other);
  EXPECT_EQ(cache.load(path, "v1"), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace latol::exp
