#include "exp/runner.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>

#include "exp/scenario.hpp"
#include "exp/solve_cache.hpp"
#include "io/json.hpp"
#include "util/error.hpp"

namespace latol::exp {
namespace {

Scenario from_text(const std::string& text) {
  return scenario_from_json(io::parse_json(text));
}

// A small 2x2-torus grid that solves in microseconds.
constexpr const char* kSmallScenario = R"({
  "name": "small",
  "base": {"k": 2},
  "axes": [
    {"param": "threads", "values": [1, 2, 4]},
    {"param": "p_remote", "values": [0.1, 0.2]}
  ],
  "outputs": {"network_tolerance": true}
})";

TEST(Runner, SolvesEveryGridPointCleanly) {
  const RunResult run = run_scenario(from_text(kSmallScenario));
  ASSERT_EQ(run.points.size(), 6u);
  EXPECT_EQ(run.stats.grid_points, 6u);
  EXPECT_EQ(run.stats.failed_points, 0u);
  EXPECT_EQ(run.stats.degraded_points, 0u);
  for (const PointResult& p : run.points) {
    EXPECT_FALSE(p.model.error.has_value());
    EXPECT_GT(p.model.perf.processor_utilization, 0.0);
    ASSERT_TRUE(p.model.tol_network.has_value());
    EXPECT_GT(*p.model.tol_network, 0.0);
    EXPECT_LE(*p.model.tol_network, 1.0 + 1e-9);
  }
}

TEST(Runner, SharesIdealSolvesThroughTheCache) {
  SolveCache cache;
  RunOptions opts;
  opts.cache = &cache;
  const RunResult run = run_scenario(from_text(kSmallScenario), opts);
  // 6 actual solves + ideal solves. The ideal system zeroes p_remote, so
  // both p_remote values share one ideal per thread count: 3 ideals.
  EXPECT_EQ(run.stats.solves, 9u);
  EXPECT_EQ(run.stats.cache_hits, 3u);
  EXPECT_GT(run.stats.cache_hits, 0u);
}

TEST(Runner, DeduplicatesIdenticalGridPoints) {
  const RunResult run = run_scenario(from_text(R"({
    "name": "dupes",
    "base": {"k": 2},
    "axes": [{"param": "p_remote", "values": [0.2, 0.2, 0.3]}]
  })"));
  EXPECT_EQ(run.stats.grid_points, 3u);
  EXPECT_EQ(run.stats.unique_points, 2u);
  EXPECT_EQ(run.points[0].model.perf.processor_utilization,
            run.points[1].model.perf.processor_utilization);
}

TEST(Runner, WorkerCountDoesNotChangeOutputBytes) {
  const Scenario scenario = from_text(R"({
    "name": "det",
    "base": {"k": 2},
    "axes": [
      {"param": "threads", "values": [1, 2, 3, 4]},
      {"param": "p_remote", "values": [0.05, 0.1, 0.2, 0.4]}
    ],
    "outputs": {"network_tolerance": true, "memory_tolerance": true}
  })");
  const auto render = [&](std::size_t workers) {
    RunOptions opts;
    opts.workers = workers;
    const RunResult run = run_scenario(scenario, opts);
    std::ostringstream csv;
    write_results_csv(scenario, run, csv);
    return csv.str() + results_to_json(scenario, run).dump(2);
  };
  const std::string serial = render(1);
  EXPECT_EQ(serial, render(8));
  // A warmed cache must not change the bytes either.
  SolveCache cache;
  RunOptions opts;
  opts.cache = &cache;
  (void)run_scenario(scenario, opts);
  const RunResult warm = run_scenario(scenario, opts);
  EXPECT_EQ(warm.stats.solves, 0u);
  std::ostringstream csv;
  write_results_csv(scenario, warm, csv);
  EXPECT_EQ(serial.substr(0, csv.str().size()), csv.str());
}

TEST(Runner, IsolatesFailingPoints) {
  // p_remote = 2 is an invalid probability: that point fails, the rest
  // of the grid still answers.
  const RunResult run = run_scenario(from_text(R"({
    "name": "faulty",
    "base": {"k": 2},
    "axes": [{"param": "p_remote", "values": [0.1, 2.0]}]
  })"));
  EXPECT_EQ(run.stats.failed_points, 1u);
  EXPECT_FALSE(run.points[0].model.error.has_value());
  ASSERT_TRUE(run.points[1].model.error.has_value());
  EXPECT_EQ(run.points[1].model.error_code,
            qn::SolverErrorCode::kInvalidNetwork);
  // The failed point renders as the bench convention: solver "error",
  // converged 0, metrics zero.
  const Scenario s = from_text(R"({
    "name": "faulty",
    "base": {"k": 2},
    "axes": [{"param": "p_remote", "values": [0.1, 2.0]}],
    "outputs": {"columns": ["p_remote", "U_p", "solver", "converged", "error"]}
  })");
  std::ostringstream csv;
  write_results_csv(s, run, csv);
  const std::string text = csv.str();
  EXPECT_NE(text.find("2,0,error,0,"), std::string::npos) << text;
  // JSON carries the message in the errors section.
  const io::Json doc = results_to_json(s, run);
  ASSERT_EQ(doc.find("errors")->as_array().size(), 1u);
  EXPECT_EQ(doc.find("errors")->as_array()[0].find("point")->as_number(), 1.0);
}

TEST(Runner, ValidationSimulatesRequestedPoints) {
  const Scenario scenario = from_text(R"({
    "name": "val",
    "base": {"k": 2},
    "axes": [{"param": "p_remote", "values": [0.1, 0.2]}],
    "validation": {"engine": "des", "time": 2000, "seed": 3, "points": [1]},
    "outputs": {"columns": ["p_remote", "U_p", "sim_U_p"]}
  })");
  const RunResult run = run_scenario(scenario);
  EXPECT_EQ(run.stats.simulated_points, 1u);
  EXPECT_FALSE(run.points[0].sim.has_value());
  ASSERT_TRUE(run.points[1].sim.has_value());
  EXPECT_EQ(run.points[1].sim->seed, 4u);  // spec seed 3 + point index 1
  EXPECT_GT(run.points[1].sim->processor_utilization, 0.0);
  // Model and simulator agree loosely even on a short run.
  EXPECT_NEAR(run.points[1].sim->processor_utilization,
              run.points[1].model.perf.processor_utilization, 0.2);
  // The unsimulated point renders sim_U_p as an empty CSV cell / JSON null.
  std::ostringstream csv;
  write_results_csv(scenario, run, csv);
  EXPECT_NE(csv.str().find(",\n"), std::string::npos);  // empty sim cell
  const io::Json doc = results_to_json(scenario, run);
  EXPECT_TRUE(doc.find("rows")->as_array()[0].find("sim_U_p")->is_null());
  EXPECT_FALSE(doc.find("rows")->as_array()[1].find("sim_U_p")->is_null());
  // Out-of-grid validation indices are a scenario error, not a point error.
  EXPECT_THROW(run_scenario(from_text(R"({
    "name": "bad",
    "base": {"k": 2},
    "validation": {"points": [5]}
  })")),
               InvalidArgument);
}

TEST(Runner, ManifestRecordsProvenance) {
  const Scenario scenario = from_text(kSmallScenario);
  SolveCache cache;
  RunOptions opts;
  opts.cache = &cache;
  opts.workers = 2;
  const RunResult run = run_scenario(scenario, opts);
  const io::Json m = manifest_to_json(scenario, run);
  EXPECT_EQ(m.find("scenario")->as_string(), "small");
  EXPECT_EQ(m.find("scenario_hash")->as_string().substr(0, 8), "fnv1a64:");
  EXPECT_EQ(m.find("build")->as_string(), build_version());
  EXPECT_EQ(m.find("grid_points")->as_number(), 6.0);
  EXPECT_EQ(m.find("degraded_points")->as_number(), 0.0);
  EXPECT_EQ(m.find("failed_points")->as_number(), 0.0);
  EXPECT_EQ(m.find("workers")->as_number(), 2.0);
  EXPECT_GE(m.find("wall_seconds")->as_number(), 0.0);
  const io::Json* prov = m.find("solver_provenance");
  ASSERT_NE(prov, nullptr);
  double counted = 0;
  for (const auto& [name, n] : prov->as_object()) counted += n.as_number();
  EXPECT_EQ(counted, 6.0);
}

TEST(SolveCachePersistence, RoundTripsAndGatesOnVersion) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "latol_cache_test.json")
          .string();
  const Scenario scenario = from_text(kSmallScenario);
  SolveCache cold;
  RunOptions opts;
  opts.cache = &cold;
  const RunResult first = run_scenario(scenario, opts);
  EXPECT_GT(first.stats.solves, 0u);
  cold.save(path, "v1");

  SolveCache warm;
  EXPECT_EQ(warm.load(path, "v1"), cold.size());
  opts.cache = &warm;
  const RunResult second = run_scenario(scenario, opts);
  EXPECT_EQ(second.stats.solves, 0u);  // everything preloaded
  EXPECT_EQ(second.stats.cache_preloaded, cold.size());
  // Identical numbers after the JSON round trip.
  for (std::size_t i = 0; i < first.points.size(); ++i) {
    EXPECT_EQ(first.points[i].model.perf.processor_utilization,
              second.points[i].model.perf.processor_utilization);
    EXPECT_EQ(first.points[i].model.tol_network,
              second.points[i].model.tol_network);
  }

  // A different build version ignores the file wholesale.
  SolveCache stale;
  EXPECT_EQ(stale.load(path, "v2"), 0u);
  // A missing file is a cold start, not an error.
  SolveCache fresh;
  EXPECT_EQ(fresh.load(path + ".missing", "v1"), 0u);
  std::remove(path.c_str());
}

TEST(SolveCachePersistence, RejectsMalformedEntries) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "latol_cache_bad.json")
          .string();
  io::Json doc = io::Json::object();
  doc.set("format", "latol-solve-cache-1");
  doc.set("version", "v1");
  io::Json entry = io::Json::object();
  entry.set("key", "k");  // missing perf
  io::Json entries = io::Json::array();
  entries.push_back(std::move(entry));
  doc.set("entries", std::move(entries));
  io::write_json_file(path, doc);
  SolveCache cache;
  EXPECT_THROW(cache.load(path, "v1"), InvalidArgument);
  // An unrecognized format is ignored, not an error.
  io::Json other = io::Json::object();
  other.set("format", "something-else");
  io::write_json_file(path, other);
  EXPECT_EQ(cache.load(path, "v1"), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace latol::exp
