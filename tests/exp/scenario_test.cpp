#include "exp/scenario.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "exp/parameter.hpp"
#include "io/json.hpp"
#include "util/error.hpp"

namespace latol::exp {
namespace {

Scenario from_text(const std::string& text) {
  return scenario_from_json(io::parse_json(text));
}

// --- parameter registry ---------------------------------------------------

TEST(Parameter, AliasesResolveToCanonicalNames) {
  EXPECT_EQ(canonical_parameter("n_t"), "threads");
  EXPECT_EQ(canonical_parameter("R"), "runlength");
  EXPECT_EQ(canonical_parameter("L"), "memory_latency");
  EXPECT_EQ(canonical_parameter("S"), "switch_delay");
  EXPECT_EQ(canonical_parameter("C"), "context_switch");
  EXPECT_EQ(canonical_parameter("p_remote"), "p_remote");
  EXPECT_THROW(canonical_parameter("nope"), InvalidArgument);
}

TEST(Parameter, ApplyAndReadRoundTrip) {
  core::MmsConfig cfg = core::MmsConfig::paper_defaults();
  for (const std::string& name : parameter_names()) {
    const double v = parameter_is_integral(name) ? 2.0 : 0.25;
    apply_parameter(cfg, name, v);
    EXPECT_EQ(read_parameter(cfg, name), v) << name;
  }
}

TEST(Parameter, IntegralParametersRejectFractions) {
  core::MmsConfig cfg = core::MmsConfig::paper_defaults();
  EXPECT_THROW(apply_parameter(cfg, "threads", 2.5), InvalidArgument);
  EXPECT_THROW(apply_parameter(cfg, "k", 3.7), InvalidArgument);
  apply_parameter(cfg, "runlength", 2.5);  // real-valued: fine
  EXPECT_EQ(cfg.runlength, 2.5);
}

// --- scenario parsing -----------------------------------------------------

TEST(Scenario, MinimalScenarioUsesPaperDefaults) {
  const Scenario s = from_text(R"({"name": "t"})");
  EXPECT_EQ(s.name, "t");
  EXPECT_EQ(s.base.runlength,
            core::MmsConfig::paper_defaults().runlength);
  EXPECT_TRUE(s.axes.empty());
  EXPECT_EQ(expand_grid(s).size(), 1u);  // base config alone
  EXPECT_NE(s.source_hash, 0u);
}

TEST(Scenario, CrossProductGridFirstAxisOutermost) {
  const Scenario s = from_text(R"({
    "name": "t",
    "axes": [
      {"param": "threads", "values": [1, 2]},
      {"param": "p_remote", "values": [0.1, 0.2, 0.3]}
    ]
  })");
  const auto grid = expand_grid(s);
  ASSERT_EQ(grid.size(), 6u);
  EXPECT_EQ(grid[0].threads_per_processor, 1);
  EXPECT_EQ(grid[0].p_remote, 0.1);
  EXPECT_EQ(grid[2].p_remote, 0.3);
  EXPECT_EQ(grid[3].threads_per_processor, 2);  // inner axis wrapped
  EXPECT_EQ(grid[3].p_remote, 0.1);
}

TEST(Scenario, RangeAxisMatchesCliSweepInterpolation) {
  const Scenario s = from_text(R"({
    "name": "t",
    "axes": [{"param": "p_remote", "range": {"from": 0, "to": 0.8, "steps": 9}}]
  })");
  const auto grid = expand_grid(s);
  ASSERT_EQ(grid.size(), 9u);
  EXPECT_EQ(grid[0].p_remote, 0.0);
  EXPECT_EQ(grid[1].p_remote, 0.8 * 1 / 8);
  EXPECT_EQ(grid[8].p_remote, 0.8);
}

TEST(Scenario, ZipAxisVariesParametersInLockstep) {
  const Scenario s = from_text(R"({
    "name": "t",
    "axes": [{"zip": [
      {"param": "threads", "values": [1, 2, 4]},
      {"param": "runlength", "values": [40, 20, 10]}
    ]}]
  })");
  const auto grid = expand_grid(s);
  ASSERT_EQ(grid.size(), 3u);
  for (const auto& cfg : grid) {
    EXPECT_EQ(cfg.threads_per_processor * cfg.runlength, 40.0);
  }
}

TEST(Scenario, BaseOverridesAndAliases) {
  const Scenario s = from_text(R"({
    "name": "t",
    "base": {"runlength": 20, "topology": "mesh", "p_sw": 0.7},
    "axes": [{"param": "n_t", "values": [4]}]
  })");
  EXPECT_EQ(s.base.runlength, 20.0);
  EXPECT_EQ(s.base.topology, topo::TopologyKind::kMesh2D);
  EXPECT_EQ(s.axes[0].components[0].param, "threads");  // alias resolved
}

TEST(Scenario, DefaultColumnsListAxisParamsThenMetrics) {
  const Scenario s = from_text(R"({
    "name": "t",
    "axes": [{"param": "p_remote", "values": [0.1]}],
    "outputs": {"network_tolerance": true}
  })");
  const auto cols = s.output_columns();
  ASSERT_GE(cols.size(), 2u);
  EXPECT_EQ(cols.front(), "p_remote");
  EXPECT_NE(std::find(cols.begin(), cols.end(), "tol_network"), cols.end());
}

TEST(Scenario, ContentHashIgnoresFormattingButNotContent) {
  const char* doc = R"({"name": "t", "axes": [{"param": "k", "values": [2]}]})";
  const char* reformatted = R"({
    "name": "t",
    "axes": [ { "param" : "k", "values": [ 2 ] } ]
  })";
  const char* different =
      R"({"name": "t", "axes": [{"param": "k", "values": [3]}]})";
  EXPECT_EQ(from_text(doc).source_hash, from_text(reformatted).source_hash);
  EXPECT_NE(from_text(doc).source_hash, from_text(different).source_hash);
}

// --- strict schema --------------------------------------------------------

TEST(ScenarioSchema, RejectsUnknownAndMissingKeys) {
  EXPECT_THROW(from_text(R"({"name": "t", "typo": 1})"), InvalidArgument);
  EXPECT_THROW(from_text(R"({})"), InvalidArgument);  // missing name
  EXPECT_THROW(from_text(R"({"name": "bad/name"})"), InvalidArgument);
  EXPECT_THROW(from_text(R"({"name": "t", "base": {"nope": 1}})"),
               InvalidArgument);
}

TEST(ScenarioSchema, RejectsBadAxes) {
  // Unknown parameter.
  EXPECT_THROW(
      from_text(R"({"name":"t","axes":[{"param":"x","values":[1]}]})"),
      InvalidArgument);
  // values and range together.
  EXPECT_THROW(from_text(R"({"name":"t","axes":[
      {"param":"k","values":[1],"range":{"from":0,"to":1,"steps":2}}]})"),
               InvalidArgument);
  // Ragged zip.
  EXPECT_THROW(from_text(R"({"name":"t","axes":[{"zip":[
      {"param":"threads","values":[1,2]},
      {"param":"runlength","values":[40]}]}]})"),
               InvalidArgument);
  // Same parameter on two axes.
  EXPECT_THROW(from_text(R"({"name":"t","axes":[
      {"param":"k","values":[2]},{"param":"k","values":[3]}]})"),
               InvalidArgument);
  // Fractional value for an integral parameter surfaces at expansion.
  const Scenario s =
      from_text(R"({"name":"t","axes":[{"param":"threads","values":[1.5]}]})");
  EXPECT_THROW(expand_grid(s), InvalidArgument);
}

TEST(ScenarioSchema, ColumnsRequireMatchingOutputs) {
  EXPECT_THROW(from_text(R"({"name":"t",
      "outputs":{"columns":["tol_network"]}})"),
               InvalidArgument);
  EXPECT_THROW(from_text(R"({"name":"t",
      "outputs":{"columns":["sim_U_p"]}})"),
               InvalidArgument);
  EXPECT_THROW(from_text(R"({"name":"t",
      "outputs":{"columns":["nonsense"]}})"),
               InvalidArgument);
  // With the matching switches they parse.
  EXPECT_NO_THROW(from_text(R"({"name":"t",
      "outputs":{"network_tolerance":true,"columns":["tol_network"]},
      "validation":{"engine":"des","time":100}})"));
}

TEST(ScenarioSchema, ValidationAndSolverSections) {
  const Scenario s = from_text(R"({
    "name": "t",
    "solver": {"max_iterations": 500, "workers": 2},
    "validation": {"engine": "petri", "time": 5000, "seed": 7, "points": [0]}
  })");
  EXPECT_EQ(s.amva.max_iterations, 500);
  EXPECT_EQ(s.workers, 2u);
  ASSERT_TRUE(s.validation.has_value());
  EXPECT_EQ(s.validation->engine, "petri");
  EXPECT_EQ(s.validation->seed, 7u);
  ASSERT_EQ(s.validation->points.size(), 1u);
  EXPECT_THROW(from_text(R"({"name":"t","validation":{"engine":"x"}})"),
               InvalidArgument);
  EXPECT_THROW(from_text(R"({"name":"t","solver":{"max_iterations":0}})"),
               InvalidArgument);
}

// --- open workloads (DESIGN.md §12) ---------------------------------------

TEST(ScenarioOpen, BaseAcceptsOpenArrivalRate) {
  const Scenario s = from_text(R"({
    "name": "t",
    "base": {"open_arrival_rate": 0.02}
  })");
  EXPECT_EQ(s.base.open_arrival_rate, 0.02);
  // And it sweeps like any other parameter (alias lambda0).
  const Scenario axis = from_text(R"({
    "name": "t",
    "axes": [{"param": "lambda0", "values": [0.0, 0.01, 0.02]}]
  })");
  const auto grid = expand_grid(axis);
  ASSERT_EQ(grid.size(), 3u);
  EXPECT_EQ(grid[2].open_arrival_rate, 0.02);
}

TEST(ScenarioOpen, SolverMethodSelectsTheMachinery) {
  EXPECT_EQ(from_text(R"({"name":"t"})").method, core::SolveMethod::kAmva);
  EXPECT_EQ(from_text(R"({"name":"t","solver":{"method":"amva"}})").method,
            core::SolveMethod::kAmva);
  EXPECT_EQ(
      from_text(R"({"name":"t","solver":{"method":"linearizer"}})").method,
      core::SolveMethod::kLinearizer);
  EXPECT_EQ(from_text(R"({"name":"t","solver":{"method":"fesc"}})").method,
            core::SolveMethod::kHierarchical);
  EXPECT_THROW(from_text(R"({"name":"t","solver":{"method":"magic"}})"),
               InvalidArgument);
}

TEST(ScenarioOpen, OpenMetricColumnsAreKnown) {
  const Scenario s = from_text(R"({
    "name": "t",
    "base": {"open_arrival_rate": 0.01},
    "outputs": {"columns": ["open_arrival_rate", "U_p", "open_latency",
                            "open_util"]}
  })");
  const auto cols = s.output_columns();
  EXPECT_NE(std::find(cols.begin(), cols.end(), "open_latency"), cols.end());
  // sim_open_latency needs a DES validation block, like the other sim_*.
  EXPECT_THROW(from_text(R"({"name":"t",
      "outputs":{"columns":["sim_open_latency"]}})"),
               InvalidArgument);
}

}  // namespace
}  // namespace latol::exp
