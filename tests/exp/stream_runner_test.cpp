// Streaming runner (run_scenario_stream): byte-identity against the
// materialized runner, worker-count and shard invariance, warm-start
// chaining, and the grid-geometry helpers behind it. These pin the
// determinism contract of DESIGN.md §15: streamed bytes == materialized
// bytes, and an i/n shard split round-robins back to the single-process
// output exactly.
#include "exp/runner.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "exp/scenario.hpp"
#include "exp/solve_cache.hpp"
#include "io/json.hpp"
#include "util/error.hpp"

namespace latol::exp {
namespace {

Scenario from_text(const std::string& text) {
  return scenario_from_json(io::parse_json(text));
}

// 4 rows x 5 points, two tolerance columns — big enough for sharding
// and warm chains, small enough to solve in milliseconds.
constexpr const char* kGridScenario = R"({
  "name": "streamgrid",
  "base": {"k": 2},
  "axes": [
    {"param": "threads", "values": [1, 2, 3, 4]},
    {"param": "p_remote", "values": [0.05, 0.1, 0.2, 0.3, 0.4]}
  ],
  "outputs": {"network_tolerance": true, "memory_tolerance": true}
})";

std::string stream_csv(const Scenario& scenario, const RunOptions& opts,
                       RunStats* stats_out = nullptr) {
  std::ostringstream csv;
  StreamSinks sinks;
  sinks.csv = &csv;
  const RunStats st = run_scenario_stream(scenario, opts, sinks);
  if (stats_out != nullptr) *stats_out = st;
  return csv.str();
}

TEST(StreamRunner, GridSizeAndConfigAtMatchExpandGrid) {
  const Scenario scenario = from_text(kGridScenario);
  const std::vector<core::MmsConfig> grid = expand_grid(scenario);
  ASSERT_EQ(grid_size(scenario), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const core::MmsConfig cfg = config_at(scenario, i);
    EXPECT_EQ(cfg.threads_per_processor, grid[i].threads_per_processor);
    EXPECT_DOUBLE_EQ(cfg.p_remote, grid[i].p_remote);
  }
  EXPECT_THROW((void)config_at(scenario, grid.size()), InvalidArgument);
}

TEST(StreamRunner, AxislessScenarioIsOneRowOfOne) {
  const Scenario scenario = from_text(R"({"name": "solo", "base": {"k": 2}})");
  EXPECT_EQ(grid_size(scenario), 1u);
  RunStats st;
  const std::string csv = stream_csv(scenario, {}, &st);
  EXPECT_EQ(st.grid_points, 1u);
  EXPECT_EQ(st.row_length, 1u);
  EXPECT_EQ(st.rows_total, 1u);
  EXPECT_FALSE(csv.empty());
}

TEST(StreamRunner, StreamedCsvMatchesMaterializedCsv) {
  const Scenario scenario = from_text(kGridScenario);
  const RunResult run = run_scenario(scenario);
  std::ostringstream materialized;
  write_results_csv(scenario, run, materialized);
  RunStats st;
  EXPECT_EQ(stream_csv(scenario, {}, &st), materialized.str());
  EXPECT_EQ(st.grid_points, 20u);
  EXPECT_EQ(st.row_length, 5u);
  EXPECT_EQ(st.rows_total, 4u);
  EXPECT_EQ(st.rows_owned, 4u);
  EXPECT_EQ(st.failed_points, 0u);
}

TEST(StreamRunner, WorkerCountAndBlockSizeDoNotChangeBytes) {
  const Scenario scenario = from_text(kGridScenario);
  const std::string serial = stream_csv(scenario, {});
  RunOptions opts;
  opts.workers = 8;
  EXPECT_EQ(stream_csv(scenario, opts), serial);
  opts.workers = 3;
  opts.block_points = 1;  // rounds up to one row per block
  EXPECT_EQ(stream_csv(scenario, opts), serial);
}

TEST(StreamRunner, JsonlEmitsOneIndexedObjectPerPoint) {
  const Scenario scenario = from_text(kGridScenario);
  std::ostringstream jsonl;
  StreamSinks sinks;
  sinks.jsonl = &jsonl;
  (void)run_scenario_stream(scenario, {}, sinks);
  std::istringstream lines(jsonl.str());
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    const io::Json row = io::parse_json(line);
    ASSERT_TRUE(row.is_object());
    ASSERT_TRUE(row.contains("index"));
    EXPECT_EQ(static_cast<std::size_t>(row.find("index")->as_number()),
              count);
    EXPECT_TRUE(row.contains("U_p"));
    ++count;
  }
  EXPECT_EQ(count, 20u);
}

TEST(StreamRunner, ShardUnionReassemblesSingleProcessOutput) {
  const Scenario scenario = from_text(kGridScenario);
  const std::string whole = stream_csv(scenario, {});
  const std::size_t n = 3;
  std::vector<std::string> shard(n);
  std::vector<RunStats> stats(n);
  std::size_t rows_owned_total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    RunOptions opts;
    opts.shard_index = i;
    opts.shard_count = n;
    shard[i] = stream_csv(scenario, opts, &stats[i]);
    rows_owned_total += stats[i].rows_owned;
  }
  // The shards cover the grid exactly once.
  EXPECT_EQ(rows_owned_total, stats[0].rows_total);
  // Round-robin row interleave (shard i owns rows r % n == i) equals the
  // single-process bytes: header from shard 0, then rows in grid order.
  auto split_lines = [](const std::string& text) {
    std::vector<std::string> out;
    std::istringstream is(text);
    for (std::string l; std::getline(is, l);) out.push_back(l);
    return out;
  };
  std::vector<std::vector<std::string>> lines;
  lines.reserve(n);
  for (const std::string& s : shard) lines.push_back(split_lines(s));
  const std::size_t row_length = stats[0].row_length;
  std::string merged = lines[0][0] + "\n";  // CSV header
  std::vector<std::size_t> cursor(n, 1);    // past each shard's header
  for (std::size_t r = 0; r < stats[0].rows_total; ++r) {
    const std::size_t s = r % n;
    for (std::size_t k = 0; k < row_length; ++k) {
      merged += lines[s][cursor[s]++] + "\n";
    }
  }
  EXPECT_EQ(merged, whole);
}

TEST(StreamRunner, RejectsShardIndexOutOfRange) {
  const Scenario scenario = from_text(kGridScenario);
  RunOptions opts;
  opts.shard_index = 2;
  opts.shard_count = 2;
  StreamSinks sinks;
  EXPECT_THROW((void)run_scenario_stream(scenario, opts, sinks),
               InvalidArgument);
}

TEST(StreamRunner, WarmStartKeepsBytesDeterministicAcrossWorkers) {
  Scenario scenario = from_text(kGridScenario);
  RunOptions warm;
  warm.warm_start = true;
  RunStats st1;
  const std::string serial = stream_csv(scenario, warm, &st1);
  EXPECT_TRUE(st1.warm);
  // Every point after the first of each row gets a hint: 4 rows of 5.
  EXPECT_EQ(st1.warm_points, 16u);
  EXPECT_GT(st1.total_iterations, 0u);
  warm.workers = 8;
  RunStats st8;
  EXPECT_EQ(stream_csv(scenario, warm, &st8), serial);
  EXPECT_EQ(st8.warm_points, st1.warm_points);
  // Sharding must not change warm bytes either (chains never cross rows).
  warm.workers = 0;
  warm.shard_count = 2;
  RunStats sh0;
  RunStats sh1;
  warm.shard_index = 0;
  const std::string s0 = stream_csv(scenario, warm, &sh0);
  warm.shard_index = 1;
  const std::string s1 = stream_csv(scenario, warm, &sh1);
  EXPECT_EQ(sh0.warm_points + sh1.warm_points, st1.warm_points);
  EXPECT_NE(s0, s1);
  EXPECT_EQ(s0.size() + s1.size(),
            serial.size() + serial.substr(0, serial.find('\n') + 1).size());
}

TEST(StreamRunner, ScenarioWarmStartKeyEnablesChaining) {
  const Scenario scenario = from_text(R"({
    "name": "warmkey",
    "base": {"k": 2},
    "axes": [{"param": "p_remote", "values": [0.1, 0.2, 0.3]}],
    "solver": {"warm_start": true}
  })");
  EXPECT_TRUE(scenario.warm_start);
  RunStats st;
  (void)stream_csv(scenario, {}, &st);
  EXPECT_TRUE(st.warm);
  EXPECT_EQ(st.warm_points, 2u);
}

TEST(StreamRunner, IsolatesFailuresAndResetsTheWarmChain) {
  // Point 1 of the row is invalid (p_remote = 2); the chain must reset
  // and the later points still answer with fresh (unhinted then hinted)
  // solves instead of extrapolating from garbage.
  const Scenario scenario = from_text(R"({
    "name": "faultywarm",
    "base": {"k": 2},
    "axes": [{"param": "p_remote", "values": [0.1, 2.0, 0.2, 0.3]}],
    "solver": {"warm_start": true}
  })");
  RunStats st;
  const std::string csv = stream_csv(scenario, {}, &st);
  EXPECT_EQ(st.failed_points, 1u);
  // The failing point was *attempted* with a hint (from 0.1); after the
  // reset 0.2 solves cold and only 0.3 chains again.
  EXPECT_EQ(st.warm_points, 2u);
  // The failed point renders with solver "error" like the materialized
  // runner; healthy points around it still carry real numbers.
  EXPECT_NE(csv.find("error"), std::string::npos);
}

TEST(StreamRunner, ManifestRecordsAxisGeometryShardAndWarmSections) {
  const Scenario scenario = from_text(kGridScenario);
  RunOptions opts;
  opts.warm_start = true;
  opts.shard_index = 1;
  opts.shard_count = 2;
  RunStats st;
  (void)stream_csv(scenario, opts, &st);
  const io::Json doc = manifest_to_json(scenario, st);
  const io::Json* axes = doc.find("axes");
  ASSERT_NE(axes, nullptr);
  ASSERT_EQ(axes->as_array().size(), 2u);
  EXPECT_EQ(axes->as_array()[0].find("points")->as_number(), 4.0);
  EXPECT_EQ(axes->as_array()[1].find("points")->as_number(), 5.0);
  EXPECT_EQ(axes->as_array()[1]
                .find("params")->as_array()[0].as_string(),
            "p_remote");
  const io::Json* grid = doc.find("grid");
  ASSERT_NE(grid, nullptr);
  EXPECT_EQ(grid->find("total_points")->as_number(), 20.0);
  EXPECT_EQ(grid->find("row_length")->as_number(), 5.0);
  EXPECT_EQ(grid->find("rows_total")->as_number(), 4.0);
  const io::Json* shard = doc.find("shard");
  ASSERT_NE(shard, nullptr);
  EXPECT_EQ(shard->find("index")->as_number(), 1.0);
  EXPECT_EQ(shard->find("count")->as_number(), 2.0);
  EXPECT_EQ(shard->find("rows_owned")->as_number(), 2.0);
  const io::Json* warm = doc.find("warm");
  ASSERT_NE(warm, nullptr);
  EXPECT_TRUE(warm->find("enabled")->as_bool());
  // The materialized-run manifest carries the same geometry sections.
  const RunResult run = run_scenario(scenario);
  const io::Json mdoc = manifest_to_json(scenario, run);
  ASSERT_NE(mdoc.find("grid"), nullptr);
  EXPECT_EQ(mdoc.find("grid")->find("rows_total")->as_number(), 4.0);
  EXPECT_EQ(mdoc.find("shard")->find("count")->as_number(), 1.0);
}

}  // namespace
}  // namespace latol::exp
