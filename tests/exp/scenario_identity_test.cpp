// Byte-identity of the paper scenarios across sweep paths (the PR 4 hard
// constraint, DESIGN.md §10): the checked-in fig04/table3 scenarios must
// render identical result files whether solved serially or on the
// work-stealing pool. CI additionally diffs the CLI outputs against the
// bench CSVs; this test pins the property at the library layer so a
// regression fails in seconds, not at the CI diff step.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "exp/runner.hpp"
#include "exp/scenario.hpp"

#ifndef LATOL_SCENARIO_DIR
#error "build must define LATOL_SCENARIO_DIR (see tests/CMakeLists.txt)"
#endif

namespace latol::exp {
namespace {

std::string render(const Scenario& scenario, std::size_t workers) {
  RunOptions opts;
  opts.workers = workers;
  const RunResult run = run_scenario(scenario, opts);
  std::ostringstream csv;
  write_results_csv(scenario, run, csv);
  return csv.str() + results_to_json(scenario, run).dump(2);
}

class ScenarioByteIdentity : public testing::TestWithParam<const char*> {};

TEST_P(ScenarioByteIdentity, SerialAndParallelSweepsMatchByteForByte) {
  const Scenario scenario =
      load_scenario(std::string(LATOL_SCENARIO_DIR) + "/" + GetParam());
  const std::string serial = render(scenario, 1);
  EXPECT_EQ(serial, render(scenario, 4));
  EXPECT_EQ(serial, render(scenario, 0));  // scenario default (hardware)
}

INSTANTIATE_TEST_SUITE_P(PaperScenarios, ScenarioByteIdentity,
                         testing::Values("fig04_workload.json",
                                         "table3_partitioning.json"),
                         [](const auto& info) {
                           std::string name = info.param;
                           return name.substr(0, name.find('_'));
                         });

}  // namespace
}  // namespace latol::exp
