// Crash-safety and deadline semantics of the solve cache, plus the
// batch runner's per-point timeouts: a corrupt cache file must quarantine
// (never crash a run), saves must be atomic, a deadline failure must not
// poison the cache, and a timed-out point must be marked — not wedge the
// run.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "core/mms_config.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/solve_cache.hpp"
#include "io/json.hpp"
#include "qn/mva_approx.hpp"
#include "qn/solver_error.hpp"
#include "util/cancel.hpp"
#include "util/error.hpp"

namespace latol::exp {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void remove_cache_files(const std::string& path) {
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".corrupt");
}

core::MmsConfig small_config() {
  core::MmsConfig cfg = core::MmsConfig::paper_defaults();
  cfg.k = 2;
  return cfg;
}

// --- persistence round trip ----------------------------------------------

TEST(SolveCache, SaveLoadRoundTripServesHits) {
  const std::string path = temp_path("latol_cache_roundtrip.json");
  remove_cache_files(path);
  {
    SolveCache cache;
    (void)cache.analyze(small_config(), {});
    cache.save(path, "v-test");
  }
  SolveCache warmed;
  std::string warning;
  EXPECT_EQ(warmed.load(path, "v-test", &warning), 1u);
  EXPECT_TRUE(warning.empty());
  bool hit = false;
  (void)warmed.analyze(small_config(), {}, &hit);
  EXPECT_TRUE(hit);
  remove_cache_files(path);
}

TEST(SolveCache, OpenMetricsSurviveTheRoundTrip) {
  const std::string path = temp_path("latol_cache_open.json");
  remove_cache_files(path);
  core::MmsConfig cfg = small_config();
  cfg.open_arrival_rate = 0.01;
  core::MmsPerformance solved;
  {
    SolveCache cache;
    solved = cache.analyze(cfg, {});
    EXPECT_GT(solved.open_latency, 0.0);
    cache.save(path, "v-test");
  }
  SolveCache warmed;
  EXPECT_EQ(warmed.load(path, "v-test"), 1u);
  bool hit = false;
  const core::MmsPerformance cached = warmed.analyze(cfg, {}, &hit);
  EXPECT_TRUE(hit);
  EXPECT_DOUBLE_EQ(cached.open_latency, solved.open_latency);
  EXPECT_DOUBLE_EQ(cached.open_utilization, solved.open_utilization);
  remove_cache_files(path);
}

TEST(SolveCache, ArrivalRateAndMethodAreDistinctKeys) {
  core::MmsConfig closed = small_config();
  core::MmsConfig open = small_config();
  open.open_arrival_rate = 0.01;
  const std::string base = SolveCache::config_key(closed, {});
  // Open arrivals change the key: a mixed result must never answer for
  // the closed machine (or vice versa).
  EXPECT_NE(base, SolveCache::config_key(open, {}));
  // So does the solve method: amva, linearizer, and fesc answers differ.
  EXPECT_NE(base, SolveCache::config_key(closed, {},
                                         core::SolveMethod::kLinearizer));
  EXPECT_NE(base, SolveCache::config_key(closed, {},
                                         core::SolveMethod::kHierarchical));
  EXPECT_NE(SolveCache::config_key(closed, {},
                                   core::SolveMethod::kLinearizer),
            SolveCache::config_key(closed, {},
                                   core::SolveMethod::kHierarchical));

  // And the cache actually solves per method: a fesc request after an
  // amva one is a miss, not a wrong-method hit.
  SolveCache cache;
  (void)cache.analyze(closed, {});
  bool hit = true;
  (void)cache.analyze(closed, {}, &hit, core::SolveMethod::kHierarchical);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(SolveCache, PreviousFormatGenerationIsIgnored) {
  const std::string path = temp_path("latol_cache_format2.json");
  remove_cache_files(path);
  io::Json doc = io::Json::object();
  doc.set("format", "latol-solve-cache-2");  // pre-open-metrics layout
  doc.set("version", "v-test");
  doc.set("entries", io::Json::array());
  io::write_json_file(path, doc);
  SolveCache cache;
  std::string warning;
  EXPECT_EQ(cache.load(path, "v-test", &warning), 0u);
  EXPECT_TRUE(warning.empty());  // stale format is expected, not corrupt
  remove_cache_files(path);
}

TEST(SolveCache, MismatchedVersionIsIgnoredWithoutWarning) {
  const std::string path = temp_path("latol_cache_version.json");
  remove_cache_files(path);
  {
    SolveCache cache;
    (void)cache.analyze(small_config(), {});
    cache.save(path, "v-old");
  }
  SolveCache fresh;
  std::string warning;
  EXPECT_EQ(fresh.load(path, "v-new", &warning), 0u);
  EXPECT_TRUE(warning.empty());  // a stale cache is expected, not an error
  remove_cache_files(path);
}

// --- corrupt-file quarantine ----------------------------------------------

TEST(SolveCache, CorruptFileIsQuarantinedWithWarning) {
  const std::string path = temp_path("latol_cache_corrupt.json");
  remove_cache_files(path);
  {
    std::ofstream out(path);
    out << "{\"version\": \"v-test\", \"entries\": [trunca";
  }
  SolveCache cache;
  std::string warning;
  EXPECT_EQ(cache.load(path, "v-test", &warning), 0u);
  EXPECT_FALSE(warning.empty());
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_TRUE(std::filesystem::exists(path + ".corrupt"));
  EXPECT_EQ(cache.size(), 0u);
  remove_cache_files(path);
}

TEST(SolveCache, QuarantinedFileDoesNotBlockTheNextSave) {
  const std::string path = temp_path("latol_cache_requarantine.json");
  remove_cache_files(path);
  {
    std::ofstream out(path);
    out << "not json at all";
  }
  SolveCache cache;
  std::string warning;
  (void)cache.load(path, "v-test", &warning);
  EXPECT_FALSE(warning.empty());
  (void)cache.analyze(small_config(), {});
  cache.save(path, "v-test");
  SolveCache reloaded;
  std::string reload_warning;
  EXPECT_EQ(reloaded.load(path, "v-test", &reload_warning), 1u);
  EXPECT_TRUE(reload_warning.empty());
  remove_cache_files(path);
}

TEST(SolveCache, MissingFileLoadsNothingSilently) {
  SolveCache cache;
  std::string warning;
  EXPECT_EQ(cache.load(temp_path("latol_cache_does_not_exist.json"),
                       "v-test", &warning),
            0u);
  EXPECT_TRUE(warning.empty());
}

// --- deadline failures are transient, not cacheable -----------------------

TEST(SolveCache, DeadlineFailureIsNotCached) {
  SolveCache cache;
  util::CancelToken token;
  token.cancel();
  qn::AmvaOptions expired;
  expired.cancel = &token;
  try {
    (void)cache.analyze(small_config(), expired);
    FAIL() << "expected SolverError";
  } catch (const qn::SolverError& e) {
    EXPECT_EQ(e.code(), qn::SolverErrorCode::kDeadlineExceeded);
  }
  // Same configuration without the expired token: the earlier deadline
  // must not have poisoned the entry (the cancel pointer is not part of
  // the cache key).
  bool hit = true;
  const core::MmsPerformance perf = cache.analyze(small_config(), {}, &hit);
  EXPECT_FALSE(hit);
  EXPECT_GT(perf.processor_utilization, 0.0);
}

// --- runner point timeouts ------------------------------------------------

TEST(Runner, ExpiredRunTokenMarksPointsDeadlineExceeded) {
  const Scenario scenario = scenario_from_json(io::parse_json(R"({
    "name": "deadline",
    "base": {"k": 2},
    "axes": [{"param": "p_remote", "values": [0.1, 0.2, 0.3]}]
  })"));
  util::CancelToken token;
  token.cancel();
  RunOptions opts;
  opts.cancel = &token;
  const RunResult run = run_scenario(scenario, opts);
  EXPECT_EQ(run.stats.failed_points, 3u);
  EXPECT_EQ(run.stats.deadline_points, 3u);
  for (const PointResult& p : run.points) {
    ASSERT_TRUE(p.model.error.has_value());
    EXPECT_EQ(p.model.error_code, qn::SolverErrorCode::kDeadlineExceeded);
  }
}

TEST(Runner, GenerousPointTimeoutSolvesCleanly) {
  const Scenario scenario = scenario_from_json(io::parse_json(R"({
    "name": "timeout-ok",
    "base": {"k": 2},
    "axes": [{"param": "p_remote", "values": [0.1, 0.2]}]
  })"));
  RunOptions opts;
  opts.point_timeout_ms = 60'000.0;
  const RunResult run = run_scenario(scenario, opts);
  EXPECT_EQ(run.stats.failed_points, 0u);
  EXPECT_EQ(run.stats.deadline_points, 0u);
}

TEST(Runner, ManifestRecordsDeadlinePoints) {
  const Scenario scenario = scenario_from_json(io::parse_json(R"({
    "name": "deadline-manifest",
    "base": {"k": 2},
    "axes": [{"param": "p_remote", "values": [0.1]}]
  })"));
  util::CancelToken token;
  token.cancel();
  RunOptions opts;
  opts.cancel = &token;
  const RunResult run = run_scenario(scenario, opts);
  const io::Json manifest = manifest_to_json(scenario, run);
  const io::Json* deadline = manifest.find("deadline_points");
  ASSERT_NE(deadline, nullptr);
  EXPECT_DOUBLE_EQ(deadline->as_number(), 1.0);
}

}  // namespace
}  // namespace latol::exp
