#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace latol::sim {
namespace {

TEST(OnlineStats, MeanAndVarianceOfKnownData) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_NEAR(s.stddev() * s.stddev(), s.variance(), 1e-12);
}

TEST(OnlineStats, SingleSampleHasZeroVariance) {
  OnlineStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, ResetClearsEverything) {
  OnlineStats s;
  s.add(1.0);
  s.add(2.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(TimeAverage, IntegratesPiecewiseConstantSignal) {
  TimeAverage a(0.0, 0.0);
  a.set(2.0, 1.0);   // 0 over [0,2)
  a.set(5.0, 3.0);   // 1 over [2,5)
  // 3 over [5,10): mean = (0*2 + 1*3 + 3*5)/10 = 1.8.
  EXPECT_NEAR(a.mean(10.0), 1.8, 1e-12);
}

TEST(TimeAverage, AddAdjustsValue) {
  TimeAverage a(0.0, 2.0);
  a.add(4.0, +1.0);
  EXPECT_DOUBLE_EQ(a.value(), 3.0);
  // mean over [0,8]: (2*4 + 3*4)/8 = 2.5.
  EXPECT_NEAR(a.mean(8.0), 2.5, 1e-12);
}

TEST(TimeAverage, ResetRestartsIntegration) {
  TimeAverage a(0.0, 5.0);
  a.set(10.0, 1.0);
  a.reset(10.0);
  EXPECT_NEAR(a.mean(20.0), 1.0, 1e-12);
}

TEST(TimeAverage, RejectsTimeTravel) {
  TimeAverage a(5.0, 0.0);
  EXPECT_THROW(a.set(1.0, 2.0), InvalidArgument);
}

TEST(BatchMeans, MeanMatchesStream) {
  BatchMeans b(4);
  double sum = 0.0;
  for (int i = 1; i <= 100; ++i) {
    b.add(static_cast<double>(i));
    sum += i;
  }
  EXPECT_EQ(b.count(), 100u);
  EXPECT_NEAR(b.mean(), sum / 100.0, 1e-12);
}

TEST(BatchMeans, ConstantStreamHasZeroWidthInterval) {
  BatchMeans b(5);
  for (int i = 0; i < 50; ++i) b.add(7.0);
  EXPECT_NEAR(b.half_width_95(), 0.0, 1e-12);
}

TEST(BatchMeans, NoisyStreamHasPositiveInterval) {
  BatchMeans b(10);
  for (int i = 0; i < 1000; ++i) b.add(i % 2 == 0 ? 0.0 : 10.0);
  EXPECT_NEAR(b.mean(), 5.0, 1e-9);
  EXPECT_GE(b.half_width_95(), 0.0);
}

TEST(BatchMeans, RequiresTwoBatches) {
  EXPECT_THROW(BatchMeans(1), InvalidArgument);
}

TEST(BatchMeans, EmptyIsSafe) {
  BatchMeans b(4);
  EXPECT_DOUBLE_EQ(b.mean(), 0.0);
  EXPECT_DOUBLE_EQ(b.half_width_95(), 0.0);
}

TEST(OnlineStats, ZeroVarianceConstantStream) {
  OnlineStats s;
  for (int i = 0; i < 100; ++i) s.add(4.25);
  EXPECT_DOUBLE_EQ(s.mean(), 4.25);
  EXPECT_NEAR(s.variance(), 0.0, 1e-24);
  EXPECT_NEAR(s.stddev(), 0.0, 1e-12);
}

TEST(OnlineStats, MatchesClosedFormForArithmeticSequence) {
  // For 1..n the sample variance has the closed form n(n+1)/12.
  OnlineStats s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  EXPECT_NEAR(s.variance(), 100.0 * 101.0 / 12.0, 1e-9);
}

TEST(BatchMeans, SingleSampleHasZeroWidthInterval) {
  BatchMeans b(4);
  b.add(42.0);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 42.0);
  // Only one batch has data: no variance estimate, width 0 by contract.
  EXPECT_DOUBLE_EQ(b.half_width_95(), 0.0);
}

TEST(BatchMeans, HalfWidthMatchesClosedFormTwoBatches) {
  // Round-robin over 2 batches: {0, 0} and {10, 10}, batch means 0 and 10.
  // Mean of means 5, sample variance 50, half width 1.96*sqrt(50/2) = 9.8.
  BatchMeans b(2);
  for (const double x : {0.0, 10.0, 0.0, 10.0}) b.add(x);
  EXPECT_DOUBLE_EQ(b.mean(), 5.0);
  EXPECT_NEAR(b.half_width_95(), 9.8, 1e-12);
}

TEST(BatchMeans, HalfWidthMatchesClosedFormFourBatches) {
  // 1..8 round-robin over 4 batches: batch means 3, 4, 5, 6. Variance of
  // means 5/3, half width 1.96*sqrt(5/12).
  BatchMeans b(4);
  for (int i = 1; i <= 8; ++i) b.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(b.mean(), 4.5);
  EXPECT_NEAR(b.half_width_95(), 1.96 * std::sqrt(5.0 / 12.0), 1e-12);
}

}  // namespace
}  // namespace latol::sim
