#include "sim/fcfs_server.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/rng.hpp"
#include "util/error.hpp"

namespace latol::sim {
namespace {

TEST(FcfsServer, ServesJobsInArrivalOrder) {
  Simulator sim;
  FcfsServer server(sim, "s");
  std::vector<int> done;
  server.submit(2.0, [&] { done.push_back(0); });
  server.submit(1.0, [&] { done.push_back(1); });
  server.submit(1.0, [&] { done.push_back(2); });
  sim.run_until(100.0);
  EXPECT_EQ(done, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(server.completions(), 3u);
}

TEST(FcfsServer, ResidenceIncludesQueueing) {
  Simulator sim;
  FcfsServer server(sim, "s");
  // Two jobs of 2.0 arriving together: residences 2 and 4, mean 3.
  server.submit(2.0, nullptr);
  server.submit(2.0, nullptr);
  sim.run_until(100.0);
  EXPECT_NEAR(server.mean_residence(), 3.0, 1e-12);
}

TEST(FcfsServer, UtilizationIsBusyFraction) {
  Simulator sim;
  FcfsServer server(sim, "s");
  server.submit(3.0, nullptr);
  sim.run_until(10.0);
  EXPECT_NEAR(server.utilization(), 0.3, 1e-12);
}

TEST(FcfsServer, QueueLengthTracksBacklog) {
  Simulator sim;
  FcfsServer server(sim, "s");
  server.submit(4.0, nullptr);
  server.submit(4.0, nullptr);
  EXPECT_EQ(server.queue_length(), 2u);
  sim.run_until(5.0);
  EXPECT_EQ(server.queue_length(), 1u);
  sim.run_until(20.0);
  EXPECT_EQ(server.queue_length(), 0u);
  // Time-averaged queue: 2 over [0,4), 1 over [4,8): (8+4)/20 = 0.6.
  EXPECT_NEAR(server.mean_queue_length(), 0.6, 1e-12);
}

TEST(FcfsServer, ZeroServiceJobsComplete) {
  Simulator sim;
  FcfsServer server(sim, "s");
  int fired = 0;
  server.submit(0.0, [&] { ++fired; });
  sim.run_until(1.0);
  EXPECT_EQ(fired, 1);
  EXPECT_THROW(server.submit(-1.0, nullptr), InvalidArgument);
}

TEST(FcfsServer, ResetStatsForgetsHistoryNotBacklog) {
  Simulator sim;
  FcfsServer server(sim, "s");
  server.submit(2.0, nullptr);
  server.submit(6.0, nullptr);
  sim.run_until(4.0);  // first done, second in service
  server.reset_stats();
  sim.run_until(10.0);
  EXPECT_EQ(server.completions(), 1u);  // only the post-reset completion
  // Busy the whole [4,8] window, idle [8,10]: utilization 4/6.
  EXPECT_NEAR(server.utilization(), 4.0 / 6.0, 1e-12);
}

TEST(FcfsServer, TwoServersRunJobsInParallel) {
  Simulator sim;
  FcfsServer server(sim, "s", 2);
  std::vector<double> done_at;
  for (int i = 0; i < 3; ++i) {
    server.submit(4.0, [&] { done_at.push_back(sim.now()); });
  }
  sim.run_until(100.0);
  // Jobs 1+2 run in parallel (finish at t=4), job 3 starts when a server
  // frees (finishes at t=8).
  ASSERT_EQ(done_at.size(), 3u);
  EXPECT_DOUBLE_EQ(done_at[0], 4.0);
  EXPECT_DOUBLE_EQ(done_at[1], 4.0);
  EXPECT_DOUBLE_EQ(done_at[2], 8.0);
  EXPECT_EQ(server.servers(), 2);
}

TEST(FcfsServer, UtilizationIsFractionOfBusyServers) {
  Simulator sim;
  FcfsServer server(sim, "s", 2);
  server.submit(5.0, nullptr);  // one of two servers busy over [0,5)
  sim.run_until(10.0);
  EXPECT_NEAR(server.utilization(), 0.25, 1e-12);  // 0.5 busy for half time
}

TEST(FcfsServer, RejectsZeroServers) {
  Simulator sim;
  EXPECT_THROW(FcfsServer(sim, "s", 0), InvalidArgument);
}

TEST(FcfsServer, DisabledStatTrackingThrowsOnReadOnly) {
  // A server constructed with a tracking mask skips the untracked
  // accumulators entirely; reading one is a caller bug, not a zero.
  Simulator sim;
  FcfsServer server(sim, "s", 1, StatTracking::kBusy);
  int done = 0;
  server.submit(2.0, [&] { ++done; });
  sim.run_until(10.0);
  EXPECT_EQ(done, 1);                              // service still runs
  EXPECT_EQ(server.completions(), 1u);             // counters stay on
  EXPECT_NEAR(server.utilization(), 0.2, 1e-12);   // tracked
  EXPECT_THROW(static_cast<void>(server.mean_queue_length()), InvalidArgument);
  EXPECT_THROW(static_cast<void>(server.mean_residence()), InvalidArgument);
}

TEST(FcfsServer, TrackingMasksCompose) {
  Simulator sim;
  FcfsServer server(sim, "s", 1,
                    StatTracking::kBusy | StatTracking::kResidence);
  server.submit(4.0, nullptr);
  sim.run_until(10.0);
  EXPECT_NEAR(server.utilization(), 0.4, 1e-12);
  EXPECT_NEAR(server.mean_residence(), 4.0, 1e-12);
  EXPECT_THROW(static_cast<void>(server.mean_queue_length()), InvalidArgument);
}

/// Trivially-copyable Poisson arrival source (event actions live in
/// arena slots; recursion goes through a struct, not std::function).
struct PoissonArrivals {
  Simulator* sim;
  FcfsServer* server;
  Rng* rng;
  double service_mean;
  double arrival_mean;
  void operator()() const {
    server->submit(rng->exponential(service_mean), nullptr);
    sim->schedule_after(rng->exponential(arrival_mean), *this);
  }
};

TEST(FcfsServer, MM2QueueMatchesTheory) {
  // M/M/2 with lambda = 0.8, mu = 0.5 per server: rho = 0.8. Erlang-C:
  // P(wait) = 0.7111..., Lq = rho/(1-rho) * P(wait) = 2.844,
  // W = Lq/lambda + 1/mu = 5.556.
  Simulator sim;
  FcfsServer server(sim, "s", 2);
  Rng rng(99);
  sim.schedule(0.0, PoissonArrivals{&sim, &server, &rng, 2.0, 1.25});
  sim.run_until(400000.0);
  EXPECT_NEAR(server.utilization(), 0.8, 0.02);
  EXPECT_NEAR(server.mean_residence(), 5.556, 0.25);
}

TEST(FcfsServer, MM1QueueMatchesTheory) {
  // Closed-loop M/M/1 approximation: drive with Poisson-ish arrivals by
  // regenerating an exponential arrival stream; check rho and residence
  // against M/M/1 formulas within sampling noise.
  Simulator sim;
  FcfsServer server(sim, "s");
  Rng rng(2026);
  // lambda = 0.5, mu = 1 -> rho = 0.5.
  sim.schedule(0.0, PoissonArrivals{&sim, &server, &rng, 1.0, 2.0});
  sim.run_until(200000.0);
  EXPECT_NEAR(server.utilization(), 0.5, 0.02);
  // M/M/1 residence: 1 / (mu - lambda) = 2.
  EXPECT_NEAR(server.mean_residence(), 2.0, 0.1);
  // Little: N = lambda * W = 1.
  EXPECT_NEAR(server.mean_queue_length(), 1.0, 0.06);
}

}  // namespace
}  // namespace latol::sim
