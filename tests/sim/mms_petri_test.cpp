#include "sim/mms_petri.hpp"

#include <gtest/gtest.h>

#include "core/mms_model.hpp"
#include "sim/mms_des.hpp"
#include "util/error.hpp"

namespace latol::sim {
namespace {

core::MmsConfig small_machine() {
  core::MmsConfig cfg = core::MmsConfig::paper_defaults();
  cfg.k = 2;  // 4 PEs keeps the net small for unit tests
  return cfg;
}

TEST(MmsPetri, BuildsExpectedHandles) {
  const MmsPetriModel model = build_mms_petri(small_machine());
  EXPECT_EQ(model.processors, 4);
  EXPECT_EQ(model.exec.size(), 4u);
  // 3 destinations per source on a 2x2 torus.
  EXPECT_EQ(model.remote_route.size(), 12u);
  EXPECT_GT(model.net.num_places(), 20u);
  EXPECT_GT(model.net.num_transitions(), 20u);
  EXPECT_NO_THROW(model.net.validate());
}

TEST(MmsPetri, AllLocalMachineMatchesClosedForm) {
  core::MmsConfig cfg = small_machine();
  cfg.p_remote = 0.0;
  cfg.threads_per_processor = 4;
  const PetriMmsResult r = simulate_mms_petri(cfg, 100000.0, 0.1, 3);
  // R = L: U_p = n/(n+1) = 0.8.
  EXPECT_NEAR(r.processor_utilization, 0.8, 0.02);
  EXPECT_DOUBLE_EQ(r.message_rate, 0.0);
  // Balanced 2-station cycle: residence N/(2*lambda) = 25 per station.
  EXPECT_NEAR(r.memory_latency, 25.0, 1.5);
}

TEST(MmsPetri, AgreesWithAnalyticalModel) {
  const core::MmsConfig cfg = small_machine();
  const PetriMmsResult petri = simulate_mms_petri(cfg, 120000.0, 0.1, 5);
  const core::MmsPerformance model = core::analyze(cfg);
  EXPECT_NEAR(petri.processor_utilization, model.processor_utilization,
              0.05 * model.processor_utilization);
  EXPECT_NEAR(petri.message_rate, model.message_rate,
              0.06 * model.message_rate);
  EXPECT_NEAR(petri.network_latency, model.network_latency,
              0.12 * model.network_latency);
  EXPECT_NEAR(petri.memory_latency, model.memory_latency,
              0.12 * model.memory_latency);
}

TEST(MmsPetri, AgreesWithDirectEventSimulator) {
  // Two independent implementations of the same machine: STPN vs DES.
  const core::MmsConfig cfg = small_machine();
  const PetriMmsResult petri = simulate_mms_petri(cfg, 120000.0, 0.1, 7);
  SimulationConfig des_cfg;
  des_cfg.mms = cfg;
  des_cfg.sim_time = 120000.0;
  des_cfg.seed = 8;
  const SimulationResult des = simulate_mms(des_cfg);
  EXPECT_NEAR(petri.processor_utilization, des.processor_utilization,
              0.05 * des.processor_utilization);
  EXPECT_NEAR(petri.network_latency, des.network_latency,
              0.12 * des.network_latency);
}

TEST(MmsPetri, DeterministicMemoryVariantRuns) {
  const core::MmsConfig cfg = small_machine();
  const PetriMmsResult expo =
      simulate_mms_petri(cfg, 60000.0, 0.1, 11,
                         ServiceDistribution::kExponential);
  const PetriMmsResult det =
      simulate_mms_petri(cfg, 60000.0, 0.1, 11,
                         ServiceDistribution::kDeterministic);
  // §8: deterministic memory service moves S_obs by < ~10%.
  EXPECT_NEAR(det.network_latency, expo.network_latency,
              0.12 * expo.network_latency);
}

TEST(MmsPetri, SeedReproducibility) {
  const core::MmsConfig cfg = small_machine();
  const PetriMmsResult a = simulate_mms_petri(cfg, 20000.0, 0.1, 42);
  const PetriMmsResult b = simulate_mms_petri(cfg, 20000.0, 0.1, 42);
  EXPECT_EQ(a.total_firings, b.total_firings);
  EXPECT_DOUBLE_EQ(a.network_latency, b.network_latency);
}

TEST(MmsPetri, ValidatesRunParameters) {
  EXPECT_THROW((void)simulate_mms_petri(small_machine(), 0.0, 0.1, 1),
               InvalidArgument);
  EXPECT_THROW((void)simulate_mms_petri(small_machine(), 100.0, 1.0, 1),
               InvalidArgument);
}

TEST(MmsPetri, ResultRecordsItsSeed) {
  const PetriMmsResult r =
      simulate_mms_petri(small_machine(), 2000.0, 0.1, 31337);
  EXPECT_EQ(r.seed, 31337u);
}

TEST(MmsPetri, ValidationFailureNamesTheSeed) {
  try {
    (void)simulate_mms_petri(small_machine(), -5.0, 0.1, 99);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("[seed=99]"), std::string::npos);
  }
}

TEST(MmsPetri, PaperMachineNetIsBuildable) {
  // The 4x4 validation machine (§8) builds to a few thousand nodes.
  core::MmsConfig cfg = core::MmsConfig::paper_defaults();
  cfg.p_remote = 0.5;
  const MmsPetriModel model = build_mms_petri(cfg);
  EXPECT_EQ(model.processors, 16);
  EXPECT_EQ(model.remote_route.size(), 16u * 15u);
  EXPECT_GT(model.net.num_places(), 1000u);
  EXPECT_NO_THROW(model.net.validate());
}

}  // namespace
}  // namespace latol::sim
