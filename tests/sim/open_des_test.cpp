#include "sim/open_des.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "qn/open/jackson.hpp"
#include "qn/open/open_network.hpp"
#include "qn/solver_error.hpp"
#include "util/error.hpp"

namespace latol::sim {
namespace {

/// Relative deviation |a - b| / b.
double rel(double a, double b) { return std::abs(a - b) / b; }

/// Three M/M/1 queues in series at rho = 0.5 each, explicit routing.
qn::OpenNetwork mm1_chain() {
  qn::OpenNetwork net({{"a", qn::StationKind::kQueueing},
                       {"b", qn::StationKind::kQueueing},
                       {"c", qn::StationKind::kQueueing}},
                      1);
  net.set_arrival_rate(0, 0.5);
  net.set_entry(0, 0, 1.0);
  net.set_routing(0, 0, 1, 1.0);
  net.set_routing(0, 1, 2, 1.0);
  for (std::size_t m = 0; m < 3; ++m) net.set_service_time(0, m, 1.0);
  net.solve_traffic_equations();
  return net;
}

/// A hotspot star: jobs enter at one of four lightly loaded leaves and
/// funnel into a single hot center at rho = 0.8.
qn::OpenNetwork hotspot_star() {
  std::vector<qn::Station> stations;
  for (int i = 0; i < 4; ++i)
    stations.push_back({"leaf" + std::to_string(i),
                        qn::StationKind::kQueueing});
  stations.push_back({"hot", qn::StationKind::kQueueing});
  qn::OpenNetwork net(stations, 1);
  net.set_arrival_rate(0, 0.8);
  for (std::size_t m = 0; m < 4; ++m) {
    net.set_entry(0, m, 0.25);
    net.set_routing(0, m, 4, 1.0);
    net.set_service_time(0, m, 0.5);  // leaf rho = 0.2 * 0.5 = 0.1
  }
  net.set_service_time(0, 4, 1.0);  // center rho = 0.8 -> W = 5
  net.solve_traffic_equations();
  return net;
}

TEST(OpenDes, MM1ChainMatchesJacksonWithinTwoPercent) {
  const qn::OpenNetwork net = mm1_chain();
  const qn::OpenSolution model = solve_jackson(net);
  OpenSimulationConfig cfg;
  cfg.sim_time = 400000;
  const OpenSimulationResult r = simulate_open(net, cfg);
  ASSERT_GT(r.completions[0], 100000u);
  EXPECT_LT(rel(r.response_time[0], model.response_time[0]), 0.02)
      << "sim " << r.response_time[0] << " model "
      << model.response_time[0];
  for (std::size_t m = 0; m < 3; ++m) {
    EXPECT_LT(rel(r.utilization[m], model.utilization[m]), 0.02)
        << "station " << m;
    EXPECT_LT(rel(r.residence[m], model.waiting(0, m)), 0.02)
        << "station " << m;
  }
}

TEST(OpenDes, HotspotStarMatchesJacksonWithinTwoPercent) {
  const qn::OpenNetwork net = hotspot_star();
  const qn::OpenSolution model = solve_jackson(net);
  EXPECT_NEAR(model.waiting(0, 4), 5.0, 1e-12);  // s / (1 - 0.8)
  OpenSimulationConfig cfg;
  cfg.sim_time = 600000;
  const OpenSimulationResult r = simulate_open(net, cfg);
  EXPECT_LT(rel(r.response_time[0], model.response_time[0]), 0.02)
      << "sim " << r.response_time[0] << " model "
      << model.response_time[0];
  EXPECT_LT(rel(r.residence[4], 5.0), 0.02) << "hot residence";
  EXPECT_LT(rel(r.utilization[4], 0.8), 0.02) << "hot utilization";
}

TEST(OpenDes, ConfidenceIntervalCoversModel) {
  const qn::OpenNetwork net = mm1_chain();
  const qn::OpenSolution model = solve_jackson(net);
  OpenSimulationConfig cfg;
  cfg.sim_time = 400000;
  const OpenSimulationResult r = simulate_open(net, cfg);
  ASSERT_GT(r.response_hw95[0], 0.0);
  EXPECT_NEAR(r.response_time[0], model.response_time[0],
              3.0 * r.response_hw95[0]);
}

TEST(OpenDes, SameSeedIsDeterministic) {
  const qn::OpenNetwork net = hotspot_star();
  OpenSimulationConfig cfg;
  cfg.sim_time = 20000;
  cfg.seed = 42;
  const OpenSimulationResult a = simulate_open(net, cfg);
  const OpenSimulationResult b = simulate_open(net, cfg);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.rng_draws, b.rng_draws);
  EXPECT_EQ(a.completions[0], b.completions[0]);
  EXPECT_DOUBLE_EQ(a.response_time[0], b.response_time[0]);
  cfg.seed = 43;
  const OpenSimulationResult c = simulate_open(net, cfg);
  EXPECT_NE(a.response_time[0], c.response_time[0]);
}

TEST(OpenDes, SimulatesUnstableNetworksTheSolverRejects) {
  qn::OpenNetwork net({{"q", qn::StationKind::kQueueing}}, 1);
  net.set_arrival_rate(0, 1.5);
  net.set_entry(0, 0, 1.0);
  net.set_service_time(0, 0, 1.0);
  net.solve_traffic_equations();
  EXPECT_THROW((void)qn::solve_jackson(net), qn::SolverError);
  OpenSimulationConfig cfg;
  cfg.sim_time = 20000;
  const OpenSimulationResult r = simulate_open(net, cfg);
  // The single server is pegged; the queue grows without bound.
  EXPECT_GT(r.utilization[0], 0.99);
  EXPECT_GT(r.residence[0], 100.0);
}

TEST(OpenDes, DelayStationAddsPureLatency) {
  qn::OpenNetwork net({{"wire", qn::StationKind::kDelay},
                       {"q", qn::StationKind::kQueueing}},
                      1);
  net.set_arrival_rate(0, 0.5);
  net.set_entry(0, 0, 1.0);
  net.set_routing(0, 0, 1, 1.0);
  net.set_service_time(0, 0, 4.0);
  net.set_service_time(0, 1, 1.0);
  net.solve_traffic_equations();
  OpenSimulationConfig cfg;
  cfg.sim_time = 300000;
  const OpenSimulationResult r = simulate_open(net, cfg);
  // Delay stations live outside the FCFS servers: no utilization or
  // per-station residence, but the end-to-end response carries their 4.0.
  EXPECT_DOUBLE_EQ(r.utilization[0], 0.0);
  EXPECT_DOUBLE_EQ(r.residence[0], 0.0);
  EXPECT_LT(rel(r.response_time[0], 6.0), 0.02);
  EXPECT_LT(rel(r.residence[1], 2.0), 0.02);  // the queue still reports
}

TEST(OpenDes, RejectsNetworksWithoutRouting) {
  qn::OpenNetwork net({{"q", qn::StationKind::kQueueing}}, 1);
  net.set_arrival_rate(0, 0.5);
  net.set_visit_ratio(0, 0, 1.0);
  net.set_service_time(0, 0, 1.0);
  EXPECT_THROW((void)simulate_open(net, {}), InvalidArgument);
}

}  // namespace
}  // namespace latol::sim
