#include "sim/petri.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace latol::sim {
namespace {

TEST(PetriNet, StructureAccessors) {
  StochasticPetriNet net;
  const PlaceId p = net.add_place("p", 3);
  const TransitionId t =
      net.add_transition("t", TransitionTiming::kExponential, 2.0);
  net.add_input(t, p);
  EXPECT_EQ(net.num_places(), 1u);
  EXPECT_EQ(net.num_transitions(), 1u);
  EXPECT_EQ(net.place_name(p), "p");
  EXPECT_EQ(net.transition_name(t), "t");
  EXPECT_EQ(net.initial_tokens(p), 3);
  EXPECT_NO_THROW(net.validate());
}

TEST(PetriNet, ValidationCatchesProblems) {
  StochasticPetriNet empty;
  EXPECT_THROW(empty.validate(), InvalidArgument);

  StochasticPetriNet net;
  net.add_place("p", 1);
  net.add_transition("orphan", TransitionTiming::kExponential, 1.0);
  EXPECT_THROW(net.validate(), InvalidArgument);  // no inputs

  EXPECT_THROW(net.add_place("neg", -1), InvalidArgument);
  EXPECT_THROW(net.add_transition("bad", TransitionTiming::kExponential, -1.0),
               InvalidArgument);
  EXPECT_THROW(net.add_input(5, 0), InvalidArgument);
}

/// One-place self-loop oscillator: a <-> b with exponential transitions.
struct TwoPlaceNet {
  StochasticPetriNet net;
  PlaceId a, b;
  TransitionId ab, ba;
};

TwoPlaceNet oscillator(double mean_ab, double mean_ba, long tokens) {
  TwoPlaceNet o;
  o.a = o.net.add_place("a", tokens);
  o.b = o.net.add_place("b", 0);
  o.ab = o.net.add_transition("ab", TransitionTiming::kExponential, mean_ab);
  o.net.add_input(o.ab, o.a);
  o.net.add_output(o.ab, o.b);
  o.ba = o.net.add_transition("ba", TransitionTiming::kExponential, mean_ba);
  o.net.add_input(o.ba, o.b);
  o.net.add_output(o.ba, o.a);
  return o;
}

TEST(PetriSimulator, ConservesTokens) {
  auto o = oscillator(1.0, 2.0, 5);
  PetriSimulator sim(o.net, 1);
  const PetriStats stats = sim.run(1000.0, 100.0);
  EXPECT_EQ(sim.tokens(o.a) + sim.tokens(o.b), 5);
  EXPECT_NEAR(stats.mean_tokens[o.a] + stats.mean_tokens[o.b], 5.0, 1e-9);
}

TEST(PetriSimulator, FlowBalanceAtSteadyState) {
  auto o = oscillator(1.0, 2.0, 3);
  PetriSimulator sim(o.net, 7);
  const PetriStats stats = sim.run(50000.0, 5000.0);
  // In a closed cycle both transitions fire at (asymptotically) the same
  // rate.
  EXPECT_NEAR(stats.firing_rate[o.ab], stats.firing_rate[o.ba],
              0.02 * stats.firing_rate[o.ab]);
}

TEST(PetriSimulator, SingleServerRateMatchesCyclicQueue) {
  // Single-server semantics: one token in each place of a 2-cycle with one
  // customer behaves like alternating exp(2) / exp(3) stages:
  // cycle rate = 1/5.
  auto o = oscillator(2.0, 3.0, 1);
  PetriSimulator sim(o.net, 3);
  const PetriStats stats = sim.run(200000.0, 10000.0);
  EXPECT_NEAR(stats.firing_rate[o.ab], 0.2, 0.01);
  // Mean tokens in `a` = fraction of time in stage a = 2/5.
  EXPECT_NEAR(stats.mean_tokens[o.a], 0.4, 0.02);
}

TEST(PetriSimulator, MultiTokenPlaceStillServesOneAtATime) {
  // n tokens at a single-server exp(1) stage feeding an instant return:
  // the server is saturated, so the firing rate equals the service rate.
  StochasticPetriNet net;
  const PlaceId a = net.add_place("a", 4);
  const TransitionId t =
      net.add_transition("serve", TransitionTiming::kExponential, 2.0);
  net.add_input(t, a);
  net.add_output(t, a);  // tokens come straight back: always saturated
  PetriSimulator sim(net, 5);
  const PetriStats stats = sim.run(100000.0, 1000.0);
  EXPECT_NEAR(stats.firing_rate[t], 0.5, 0.01);
}

TEST(PetriSimulator, DeterministicTransitionFiresOnSchedule) {
  StochasticPetriNet net;
  const PlaceId a = net.add_place("a", 1);
  const TransitionId t =
      net.add_transition("tick", TransitionTiming::kDeterministic, 10.0);
  net.add_input(t, a);
  net.add_output(t, a);
  PetriSimulator sim(net, 1);
  const PetriStats stats = sim.run(1000.0, 0.0);
  EXPECT_EQ(stats.firings[t], 100u);
}

TEST(PetriSimulator, ImmediateRoutingSplitsByWeight) {
  // source --exp(1)--> mid; mid --imm(w=1)--> x | --imm(w=3)--> y.
  StochasticPetriNet net;
  const PlaceId src = net.add_place("src", 1);
  const PlaceId mid = net.add_place("mid", 0);
  const PlaceId x = net.add_place("x", 0);
  const PlaceId y = net.add_place("y", 0);
  const TransitionId gen =
      net.add_transition("gen", TransitionTiming::kExponential, 1.0);
  net.add_input(gen, src);
  net.add_output(gen, mid);
  const TransitionId to_x =
      net.add_transition("tx", TransitionTiming::kImmediate, 0.0, 1.0);
  net.add_input(to_x, mid);
  net.add_output(to_x, x);
  const TransitionId to_y =
      net.add_transition("ty", TransitionTiming::kImmediate, 0.0, 3.0);
  net.add_input(to_y, mid);
  net.add_output(to_y, y);
  // Drain x and y back to src so the system cycles.
  for (const PlaceId from : {x, y}) {
    const TransitionId back = net.add_transition(
        "back" + std::to_string(from), TransitionTiming::kImmediate);
    net.add_input(back, from);
    net.add_output(back, src);
  }
  PetriSimulator sim(net, 11);
  const PetriStats stats = sim.run(100000.0, 1000.0);
  const double total = stats.firing_rate[to_x] + stats.firing_rate[to_y];
  EXPECT_NEAR(stats.firing_rate[to_x] / total, 0.25, 0.02);
  EXPECT_NEAR(stats.firing_rate[to_y] / total, 0.75, 0.02);
}

TEST(PetriSimulator, SeizeServePatternQueuesContenders) {
  // Two chains contending for one server token: combined service rate is
  // capped at 1/mean (not 2/mean — the bug the seize/serve pattern avoids).
  StochasticPetriNet net;
  const PlaceId free = net.add_place("free", 1);
  std::vector<TransitionId> serves;
  for (int c = 0; c < 2; ++c) {
    const std::string id = std::to_string(c);
    const PlaceId wait = net.add_place("w" + id, 3);
    const PlaceId busy = net.add_place("b" + id, 0);
    const TransitionId seize =
        net.add_transition("z" + id, TransitionTiming::kImmediate);
    net.add_input(seize, wait);
    net.add_input(seize, free);
    net.add_output(seize, busy);
    const TransitionId serve =
        net.add_transition("v" + id, TransitionTiming::kExponential, 4.0);
    net.add_input(serve, busy);
    net.add_output(serve, free);
    net.add_output(serve, wait);  // recycle customers: always saturated
    serves.push_back(serve);
  }
  PetriSimulator sim(net, 23);
  const PetriStats stats = sim.run(200000.0, 10000.0);
  const double total = stats.firing_rate[serves[0]] + stats.firing_rate[serves[1]];
  EXPECT_NEAR(total, 0.25, 0.01);  // one server of mean 4
  // Fair split between symmetric chains.
  EXPECT_NEAR(stats.firing_rate[serves[0]], stats.firing_rate[serves[1]],
              0.02);
}

TEST(PetriSimulator, DeterministicSeedReproducibility) {
  auto o1 = oscillator(1.0, 2.0, 4);
  auto o2 = oscillator(1.0, 2.0, 4);
  const PetriStats a = PetriSimulator(o1.net, 99).run(5000.0, 500.0);
  const PetriStats b = PetriSimulator(o2.net, 99).run(5000.0, 500.0);
  EXPECT_EQ(a.firings, b.firings);
  EXPECT_EQ(a.total_firings, b.total_firings);
}

TEST(PetriSimulator, RejectsBadRunParameters) {
  auto o = oscillator(1.0, 1.0, 1);
  PetriSimulator sim(o.net, 1);
  EXPECT_THROW((void)sim.run(0.0, 0.0), InvalidArgument);
  PetriSimulator sim2(o.net, 1);
  EXPECT_THROW((void)sim2.run(10.0, 10.0), InvalidArgument);
}

TEST(PetriSimulator, MultiTokenServerPool) {
  // Seize/serve with 2 free tokens: cross-chain parallelism works (both
  // chains can be in service at once) but each chain's serve transition
  // still fires one token at a time, so when the random seize order clumps
  // both servers onto one chain the other idles. The combined rate
  // therefore lands strictly between one server (0.25) and two full
  // servers (0.5) - the documented approximation of the MMS Petri model
  // for multiported memories (the DES models multi-server stations
  // exactly).
  StochasticPetriNet net;
  const PlaceId free = net.add_place("free", 2);
  std::vector<TransitionId> serves;
  for (int c = 0; c < 2; ++c) {
    const std::string id = std::to_string(c);
    const PlaceId wait = net.add_place("w" + id, 3);
    const PlaceId busy = net.add_place("b" + id, 0);
    const TransitionId seize =
        net.add_transition("z" + id, TransitionTiming::kImmediate);
    net.add_input(seize, wait);
    net.add_input(seize, free);
    net.add_output(seize, busy);
    const TransitionId serve =
        net.add_transition("v" + id, TransitionTiming::kExponential, 4.0);
    net.add_input(serve, busy);
    net.add_output(serve, free);
    net.add_output(serve, wait);
    serves.push_back(serve);
  }
  PetriSimulator sim(net, 31);
  const PetriStats stats = sim.run(200000.0, 10000.0);
  const double combined =
      stats.firing_rate[serves[0]] + stats.firing_rate[serves[1]];
  EXPECT_GT(combined, 0.27);  // more than a single shared server...
  EXPECT_LT(combined, 0.48);  // ...but short of two dedicated ones
  // Symmetric chains split the capacity evenly.
  EXPECT_NEAR(stats.firing_rate[serves[0]], stats.firing_rate[serves[1]],
              0.02);
}

TEST(PetriSimulator, MixedDeterministicAndExponential) {
  // Deterministic stage feeding an exponential stage in a closed cycle:
  // cycle time = 10 + 5, throughput 1/15 (single customer, no queueing).
  StochasticPetriNet net;
  const PlaceId a = net.add_place("a", 1);
  const PlaceId b = net.add_place("b", 0);
  const TransitionId det =
      net.add_transition("det", TransitionTiming::kDeterministic, 10.0);
  net.add_input(det, a);
  net.add_output(det, b);
  const TransitionId expo =
      net.add_transition("exp", TransitionTiming::kExponential, 5.0);
  net.add_input(expo, b);
  net.add_output(expo, a);
  PetriSimulator sim(net, 17);
  const PetriStats stats = sim.run(300000.0, 10000.0);
  EXPECT_NEAR(stats.firing_rate[det], 1.0 / 15.0, 0.002);
  // Fraction of time in the deterministic stage: 10/15.
  EXPECT_NEAR(stats.mean_tokens[a], 10.0 / 15.0, 0.01);
}

TEST(PetriSimulator, WarmupDiscardsEarlyFirings) {
  StochasticPetriNet net;
  const PlaceId a = net.add_place("a", 1);
  const TransitionId t =
      net.add_transition("tick", TransitionTiming::kDeterministic, 10.0);
  net.add_input(t, a);
  net.add_output(t, a);
  PetriSimulator sim(net, 1);
  // Ticks at t = 10, 20, ..., 1000. The statistics reset happens when the
  // clock first reaches the warmup point, so the t = 500 firing is counted
  // post-warmup: 51 of the 100 total firings are observed.
  const PetriStats stats = sim.run(1000.0, 500.0);
  EXPECT_EQ(stats.firings[t], 51u);
  EXPECT_EQ(stats.total_firings, 100u);
  EXPECT_NEAR(stats.observed_time, 500.0, 1e-12);
}

TEST(PetriSimulator, DeadNetStopsEarly) {
  StochasticPetriNet net;
  const PlaceId a = net.add_place("a", 1);
  const PlaceId b = net.add_place("b", 0);
  const TransitionId t =
      net.add_transition("once", TransitionTiming::kExponential, 1.0);
  net.add_input(t, a);
  net.add_output(t, b);
  PetriSimulator sim(net, 1);
  const PetriStats stats = sim.run(1000.0, 0.0);
  EXPECT_EQ(stats.firings[t], 1u);
  EXPECT_EQ(sim.tokens(b), 1);
}

}  // namespace
}  // namespace latol::sim
