#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <array>

#include "util/error.hpp"

namespace latol::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform01(), b.uniform01());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i)
    if (a.uniform01() == b.uniform01()) ++same;
  EXPECT_LT(same, 5);
}

TEST(Rng, Uniform01StaysInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ExponentialMeanIsCorrect) {
  Rng r(42);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += r.exponential(10.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.15);
}

TEST(Rng, ExponentialZeroMeanIsZero) {
  Rng r(1);
  EXPECT_EQ(r.exponential(0.0), 0.0);
  EXPECT_THROW((void)r.exponential(-1.0), InvalidArgument);
}

TEST(Rng, ServiceDistributionDispatch) {
  Rng r(9);
  EXPECT_EQ(r.service(ServiceDistribution::kDeterministic, 5.0), 5.0);
  // Exponential draws vary.
  const double a = r.service(ServiceDistribution::kExponential, 5.0);
  const double b = r.service(ServiceDistribution::kExponential, 5.0);
  EXPECT_NE(a, b);
}

TEST(Rng, BernoulliFrequency) {
  Rng r(5);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i)
    if (r.bernoulli(0.2)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.2, 0.01);
  EXPECT_THROW((void)r.bernoulli(1.5), InvalidArgument);
}

TEST(Rng, UniformIndexCoversRange) {
  Rng r(11);
  std::array<int, 5> hits{};
  for (int i = 0; i < 5000; ++i) ++hits[r.uniform_index(5)];
  for (const int h : hits) EXPECT_GT(h, 800);
  EXPECT_THROW((void)r.uniform_index(0), InvalidArgument);
}

TEST(Rng, DiscreteMatchesWeights) {
  Rng r(13);
  const std::array<double, 3> weights{1.0, 2.0, 1.0};
  std::array<int, 3> hits{};
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) ++hits[r.discrete(weights)];
  EXPECT_NEAR(static_cast<double>(hits[0]) / kN, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(hits[1]) / kN, 0.50, 0.02);
  EXPECT_NEAR(static_cast<double>(hits[2]) / kN, 0.25, 0.02);
}

TEST(Rng, DiscreteSkipsZeroWeights) {
  Rng r(17);
  const std::array<double, 3> weights{0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.discrete(weights), 1u);
}

TEST(Rng, DiscreteValidatesWeights) {
  Rng r(19);
  const std::array<double, 2> zero{0.0, 0.0};
  EXPECT_THROW((void)r.discrete(zero), InvalidArgument);
  const std::array<double, 2> negative{1.0, -0.5};
  EXPECT_THROW((void)r.discrete(negative), InvalidArgument);
}

TEST(Rng, SplitStreamsAreIndependentlySeeded) {
  Rng parent(21);
  Rng child = parent.split();
  // The child must not replay the parent's stream.
  Rng parent_copy(21);
  (void)parent_copy.uniform01();  // consume the draw used for splitting
  EXPECT_NE(child.uniform01(), parent_copy.uniform01());
}

}  // namespace
}  // namespace latol::sim
