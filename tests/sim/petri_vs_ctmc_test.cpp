// Cross-substrate validation: the STPN simulator against the exact CTMC
// solver on the same small closed queueing networks. This closes the
// triangle — analytical solvers, event simulator, and Petri engine all
// describe the same stochastic process.
#include <gtest/gtest.h>

#include "qn/ctmc.hpp"
#include "sim/petri.hpp"

namespace latol::sim {
namespace {

/// Closed cyclic network of two single-server exponential stations,
/// expressed both as a CQN (for the CTMC) and as an STPN.
struct DualModel {
  qn::ClosedNetwork net;
  qn::RoutedClosedNetwork routed;
  StochasticPetriNet petri;
  PlaceId place_a, place_b;
  TransitionId serve_a, serve_b;
};

DualModel build(long n, double sa, double sb) {
  qn::ClosedNetwork net({{"a", qn::StationKind::kQueueing, 1},
                         {"b", qn::StationKind::kQueueing, 1}},
                        1);
  net.set_population(0, n);
  net.set_visit_ratio(0, 0, 1.0);
  net.set_visit_ratio(0, 1, 1.0);
  net.set_service_time(0, 0, sa);
  net.set_service_time(0, 1, sb);
  qn::RoutedClosedNetwork routed;
  util::Matrix p(2, 2);
  p(0, 1) = 1.0;
  p(1, 0) = 1.0;
  routed.routing = {p};
  routed.reference_station = {0};

  DualModel dm{std::move(net), std::move(routed), {}, 0, 0, 0, 0};
  dm.place_a = dm.petri.add_place("a", n);
  dm.place_b = dm.petri.add_place("b", 0);
  dm.serve_a =
      dm.petri.add_transition("va", TransitionTiming::kExponential, sa);
  dm.petri.add_input(dm.serve_a, dm.place_a);
  dm.petri.add_output(dm.serve_a, dm.place_b);
  dm.serve_b =
      dm.petri.add_transition("vb", TransitionTiming::kExponential, sb);
  dm.petri.add_input(dm.serve_b, dm.place_b);
  dm.petri.add_output(dm.serve_b, dm.place_a);
  return dm;
}

class PetriVsCtmc : public ::testing::TestWithParam<std::tuple<long, double>> {
};

TEST_P(PetriVsCtmc, ThroughputAndQueueLengthsAgree) {
  const auto [n, sb] = GetParam();
  DualModel dm = build(n, 4.0, sb);
  const auto truth = qn::solve_ctmc(dm.net, dm.routed);

  PetriSimulator sim(dm.petri, 20260707);
  const PetriStats stats = sim.run(300000.0, 30000.0);

  EXPECT_NEAR(stats.firing_rate[dm.serve_a], truth.throughput[0],
              0.03 * truth.throughput[0])
      << "n=" << n << " sb=" << sb;
  EXPECT_NEAR(stats.mean_tokens[dm.place_a], truth.queue_length(0, 0),
              0.05 * static_cast<double>(n))
      << "n=" << n << " sb=" << sb;
  EXPECT_NEAR(stats.mean_tokens[dm.place_b], truth.queue_length(0, 1),
              0.05 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(
    Populations, PetriVsCtmc,
    ::testing::Combine(::testing::Values(1L, 3L, 6L),
                       ::testing::Values(2.0, 4.0, 12.0)));

}  // namespace
}  // namespace latol::sim
