#include "sim/des.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"

namespace latol::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(Simulator, ExecutesEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(2.0, [&] { order.push_back(2); });
  sim.run_until(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(Simulator, TiesFireInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) sim.schedule(1.0, [&, i] { order.push_back(i); });
  sim.run_until(2.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ClockAdvancesToEventTimes) {
  Simulator sim;
  double seen = -1.0;
  sim.schedule(4.5, [&] { seen = sim.now(); });
  sim.run_until(100.0);
  EXPECT_DOUBLE_EQ(seen, 4.5);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);  // clock ends at the horizon
}

TEST(Simulator, EventsBeyondHorizonStayScheduled) {
  Simulator sim;
  int fired = 0;
  sim.schedule(5.0, [&] { ++fired; });
  sim.schedule(50.0, [&] { ++fired; });
  sim.run_until(10.0);
  EXPECT_EQ(fired, 1);
  sim.run_until(100.0);
  EXPECT_EQ(fired, 2);
}

/// Trivially-copyable self-rescheduling action: event closures live in
/// arena slots, so recursion goes through a struct, not std::function.
struct ChainStep {
  Simulator* sim;
  int* chain;
  void operator()() const {
    if (++*chain < 10) sim->schedule_after(1.0, ChainStep{sim, chain});
  }
};

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int chain = 0;
  sim.schedule(0.0, ChainStep{&sim, &chain});
  sim.run_until(100.0);
  EXPECT_EQ(chain, 10);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

TEST(Simulator, RejectsSchedulingInThePast) {
  Simulator sim;
  sim.schedule(5.0, [] {});
  sim.run_until(5.0);
  EXPECT_THROW(sim.schedule(1.0, [] {}), InvalidArgument);
  EXPECT_THROW(sim.schedule_after(-1.0, [] {}), InvalidArgument);
}

TEST(Simulator, CancelPreventsExecutionExactlyOnce) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.schedule(3.0, [&] { ++fired; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // generation moved on
  sim.run_until(10.0);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(Simulator, StaleHandleCannotCancelRecycledSlot) {
  Simulator sim;
  int first = 0, second = 0;
  const EventId id = sim.schedule(1.0, [&] { ++first; });
  sim.run_until(2.0);  // fires; the slot returns to the freelist
  sim.schedule(3.0, [&] { ++second; });  // recycles the slot
  EXPECT_FALSE(sim.cancel(id));          // stale generation
  sim.run_until(4.0);
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 1);
}

TEST(Simulator, ArenaRecyclesSlotsAcrossManyEvents) {
  // Thousands of sequential events must not grow the arena beyond the
  // peak number simultaneously pending.
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 5000; ++i) {
    sim.schedule(static_cast<double>(i), [&] { ++count; });
  }
  sim.run_until(1e9);
  EXPECT_EQ(count, 5000);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule(2.0, [&] {
    sim.schedule_after(3.0, [&] { fired_at = sim.now(); });
  });
  sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

}  // namespace
}  // namespace latol::sim
