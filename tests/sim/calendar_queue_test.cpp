#include "sim/calendar_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <random>
#include <vector>

#include "util/error.hpp"

namespace latol::sim {
namespace {

/// Drain everything up to `limit` into a vector of payloads.
std::vector<std::uint32_t> drain(CalendarQueue& q, double limit = 1e18) {
  std::vector<std::uint32_t> out;
  CalendarEntry e;
  while (q.pop_until(limit, e)) out.push_back(e.payload);
  return out;
}

TEST(CalendarQueue, PopsInTimeOrder) {
  CalendarQueue q;
  q.push(3.0, 3);
  q.push(1.0, 1);
  q.push(2.0, 2);
  EXPECT_EQ(drain(q), (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, TiesPopInPushOrder) {
  CalendarQueue q;
  for (std::uint32_t i = 0; i < 100; ++i) q.push(7.5, i);
  std::vector<std::uint32_t> want(100);
  for (std::uint32_t i = 0; i < 100; ++i) want[i] = i;
  EXPECT_EQ(drain(q), want);
}

TEST(CalendarQueue, PopUntilRespectsLimit) {
  CalendarQueue q;
  q.push(1.0, 1);
  q.push(5.0, 5);
  CalendarEntry e;
  ASSERT_TRUE(q.pop_until(2.0, e));
  EXPECT_EQ(e.payload, 1u);
  EXPECT_FALSE(q.pop_until(2.0, e));  // 5.0 lies beyond the limit
  EXPECT_EQ(q.size(), 1u);
  ASSERT_TRUE(q.pop_until(5.0, e));
  EXPECT_EQ(e.payload, 5u);
}

TEST(CalendarQueue, EraseRemovesExactEntry) {
  CalendarQueue q;
  q.push(1.0, 10);
  q.push(2.0, 20);
  q.push(3.0, 30);
  EXPECT_TRUE(q.erase(2.0, 20));
  EXPECT_FALSE(q.erase(2.0, 20));  // already gone
  EXPECT_FALSE(q.erase(1.5, 10));  // wrong time
  EXPECT_EQ(drain(q), (std::vector<std::uint32_t>{10, 30}));
}

TEST(CalendarQueue, RejectsNonFiniteTimes) {
  CalendarQueue q;
  EXPECT_THROW(q.push(std::numeric_limits<double>::infinity(), 0),
               InvalidArgument);
  EXPECT_THROW(q.push(std::numeric_limits<double>::quiet_NaN(), 0),
               InvalidArgument);
}

TEST(CalendarQueue, MatchesBinaryHeapOnRandomWorkload) {
  // Differential test against the std::priority_queue ordering the
  // calendar replaced: interleave pushes and pops with clustered and
  // widely-spread times (stressing bucket resize + width retune) and
  // require the exact (time, seq) sequence.
  struct HeapEntry {
    double time;
    std::uint64_t seq;
    std::uint32_t payload;
  };
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, Later> heap;
  CalendarQueue q;
  std::mt19937_64 gen(12345);
  std::uniform_real_distribution<double> gap(0.0, 1.0);
  double now = 0.0;
  std::uint64_t seq = 0;
  std::uint32_t next_payload = 0;
  for (int round = 0; round < 20000; ++round) {
    const auto r = gen() % 100;
    if (r < 60 || heap.empty()) {
      // Mostly near-future events, occasionally far-future outliers.
      const double at =
          now + (r < 5 ? 1000.0 * gap(gen) : gap(gen));
      heap.push(HeapEntry{at, seq++, next_payload});
      q.push(at, next_payload);
      ++next_payload;
    } else {
      const HeapEntry want = heap.top();
      heap.pop();
      CalendarEntry got;
      ASSERT_TRUE(q.pop_until(1e18, got));
      ASSERT_EQ(got.payload, want.payload);
      ASSERT_EQ(got.time, want.time);
      now = want.time;
    }
  }
  // Drain the rest; order must still agree.
  while (!heap.empty()) {
    const HeapEntry want = heap.top();
    heap.pop();
    CalendarEntry got;
    ASSERT_TRUE(q.pop_until(1e18, got));
    ASSERT_EQ(got.payload, want.payload);
  }
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, SurvivesGrowShrinkCycles) {
  CalendarQueue q;
  // Fill far past the grow threshold, drain to trigger shrink, refill.
  for (int cycle = 0; cycle < 3; ++cycle) {
    // Each cycle lives in its own later time window (pushes must not
    // precede the last popped time).
    for (std::uint32_t i = 0; i < 4096; ++i)
      q.push(100.0 * cycle + static_cast<double>(i % 97), i);
    EXPECT_EQ(q.size(), 4096u);
    std::vector<std::uint32_t> got = drain(q);
    EXPECT_EQ(got.size(), 4096u);
    EXPECT_TRUE(q.empty());
  }
}

TEST(CalendarQueue, ErasingToEmptyThenReusing) {
  CalendarQueue q;
  q.push(1.0, 1);
  q.push(2.0, 2);
  EXPECT_TRUE(q.erase(1.0, 1));
  EXPECT_TRUE(q.erase(2.0, 2));
  EXPECT_TRUE(q.empty());
  q.push(0.5, 9);
  EXPECT_EQ(drain(q), (std::vector<std::uint32_t>{9}));
}

}  // namespace
}  // namespace latol::sim
