// Determinism contract of the replication harness (DESIGN.md §10/§13):
// for a fixed base seed, the accepted replication prefix — and every
// bit of every result in it — is identical at any worker count, with
// and without early stopping.
#include "sim/replicate.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "qn/open/open_network.hpp"
#include "util/error.hpp"

namespace latol::sim {
namespace {

core::MmsConfig small_config() {
  core::MmsConfig cfg = core::MmsConfig::paper_defaults();
  cfg.k = 2;
  return cfg;
}

/// Bitwise equality via memcmp of the trivially-copyable result structs
/// (EXPECT_EQ on doubles would accept -0.0 == 0.0 and miss NaNs).
template <typename R>
void expect_bitwise_equal(const std::vector<R>& a, const std::vector<R>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::memcmp(&a[i], &b[i], sizeof(R)), 0)
        << "replication " << i << " differs";
  }
}

TEST(Replication, MmsDesBitwiseIdenticalAcrossWorkerCounts) {
  SimulationConfig sc;
  sc.mms = small_config();
  sc.sim_time = 2000.0;
  sc.seed = 42;
  ReplicationPlan plan;
  plan.max_reps = 5;
  ReplicationRun<SimulationResult> runs[3];
  const std::size_t workers[3] = {1, 2, 8};
  for (int w = 0; w < 3; ++w) {
    plan.workers = workers[w];
    runs[w] = replicate_mms(sc, plan);
    ASSERT_EQ(runs[w].runs.size(), 5u);
  }
  expect_bitwise_equal(runs[0].runs, runs[1].runs);
  expect_bitwise_equal(runs[0].runs, runs[2].runs);
  EXPECT_EQ(runs[0].mean, runs[1].mean);
  EXPECT_EQ(runs[0].half_width_95, runs[2].half_width_95);
  // Replication i carries seed base + i.
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_EQ(runs[0].runs[i].seed, 42u + i);
}

TEST(Replication, MmsDesMatchesSequentialSingleRuns) {
  SimulationConfig sc;
  sc.mms = small_config();
  sc.sim_time = 2000.0;
  sc.seed = 7;
  ReplicationPlan plan;
  plan.max_reps = 3;
  plan.workers = 4;
  const auto run = replicate_mms(sc, plan);
  ASSERT_EQ(run.runs.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    SimulationConfig one = sc;
    one.seed = sc.seed + i;
    const SimulationResult solo = simulate_mms(one);
    EXPECT_EQ(std::memcmp(&run.runs[i], &solo, sizeof solo), 0)
        << "replication " << i << " differs from the standalone run";
  }
}

TEST(Replication, PetriBitwiseIdenticalAcrossWorkerCounts) {
  const core::MmsConfig cfg = small_config();
  ReplicationPlan plan;
  plan.max_reps = 4;
  ReplicationRun<PetriMmsResult> runs[3];
  const std::size_t workers[3] = {1, 2, 8};
  for (int w = 0; w < 3; ++w) {
    plan.workers = workers[w];
    runs[w] = replicate_mms_petri(cfg, 2000.0, 0.1, 3, plan);
    ASSERT_EQ(runs[w].runs.size(), 4u);
  }
  expect_bitwise_equal(runs[0].runs, runs[1].runs);
  expect_bitwise_equal(runs[0].runs, runs[2].runs);
}

TEST(Replication, PetriSharedCompileMatchesPerSeedBuilds) {
  const core::MmsConfig cfg = small_config();
  ReplicationPlan plan;
  plan.max_reps = 3;
  plan.workers = 2;
  const auto run = replicate_mms_petri(cfg, 2000.0, 0.1, 11, plan);
  ASSERT_EQ(run.runs.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const PetriMmsResult solo = simulate_mms_petri(cfg, 2000.0, 0.1, 11 + i);
    EXPECT_EQ(std::memcmp(&run.runs[i], &solo, sizeof solo), 0)
        << "shared-compile replication " << i
        << " differs from the build-per-seed run";
  }
}

qn::OpenNetwork tiny_open_network() {
  qn::OpenNetwork net({{"cpu", qn::StationKind::kQueueing},
                       {"disk", qn::StationKind::kQueueing}},
                      1);
  net.set_arrival_rate(0, 0.3);
  net.set_service_time(0, 0, 1.0);
  net.set_service_time(0, 1, 0.5);
  net.set_entry(0, 0, 1.0);
  net.set_routing(0, 0, 1, 0.5);  // cpu -> disk half the time
  net.set_routing(0, 1, 0, 0.2);  // disk -> cpu rework
  net.solve_traffic_equations();
  return net;
}

TEST(Replication, OpenDesBitwiseIdenticalAcrossWorkerCounts) {
  const qn::OpenNetwork net = tiny_open_network();
  OpenSimulationConfig base;
  base.sim_time = 5000.0;
  base.seed = 5;
  ReplicationPlan plan;
  plan.max_reps = 4;
  ReplicationRun<OpenSimulationResult> runs[3];
  const std::size_t workers[3] = {1, 2, 8};
  for (int w = 0; w < 3; ++w) {
    plan.workers = workers[w];
    runs[w] = replicate_open(net, base, plan);
    ASSERT_EQ(runs[w].runs.size(), 4u);
  }
  // OpenSimulationResult holds vectors; compare field by field.
  for (int w = 1; w < 3; ++w) {
    for (std::size_t i = 0; i < 4; ++i) {
      const auto& a = runs[0].runs[i];
      const auto& b = runs[w].runs[i];
      EXPECT_EQ(a.response_time, b.response_time);
      EXPECT_EQ(a.utilization, b.utilization);
      EXPECT_EQ(a.residence, b.residence);
      EXPECT_EQ(a.completions, b.completions);
      EXPECT_EQ(a.events, b.events);
      EXPECT_EQ(a.rng_draws, b.rng_draws);
      EXPECT_EQ(a.seed, b.seed);
    }
  }
}

TEST(Replication, EarlyStoppingPrefixIsWorkerCountInvariant) {
  // With a loose CI target the rule fires before max_reps; the accepted
  // prefix must be the same length and content at every worker count.
  SimulationConfig sc;
  sc.mms = small_config();
  sc.sim_time = 2000.0;
  sc.seed = 1;
  ReplicationPlan plan;
  plan.min_reps = 2;
  plan.max_reps = 12;
  plan.round_size = 4;
  plan.target_rel_half_width = 0.2;  // loose: stops in the first rounds
  ReplicationRun<SimulationResult> first;
  for (int w = 0; w < 3; ++w) {
    plan.workers = static_cast<std::size_t>(1 + 3 * w);
    const auto run = replicate_mms(sc, plan);
    EXPECT_TRUE(run.target_met);
    EXPECT_LT(run.runs.size(), 12u);
    if (w == 0) {
      first = run;
      continue;
    }
    ASSERT_EQ(run.runs.size(), first.runs.size());
    expect_bitwise_equal(run.runs, first.runs);
    EXPECT_EQ(run.mean, first.mean);
    EXPECT_EQ(run.half_width_95, first.half_width_95);
  }
}

TEST(Replication, ZeroTargetRunsExactlyMaxReps) {
  SimulationConfig sc;
  sc.mms = small_config();
  sc.sim_time = 500.0;
  ReplicationPlan plan;
  plan.max_reps = 6;
  plan.target_rel_half_width = 0.0;
  const auto run = replicate_mms(sc, plan);
  EXPECT_EQ(run.runs.size(), 6u);
  EXPECT_FALSE(run.target_met);
  EXPECT_GT(run.half_width_95, 0.0);
}

TEST(Replication, RejectsBadPlans) {
  SimulationConfig sc;
  sc.mms = small_config();
  ReplicationPlan plan;
  plan.min_reps = 0;
  EXPECT_THROW(replicate_mms(sc, plan), InvalidArgument);
  plan.min_reps = 5;
  plan.max_reps = 4;
  EXPECT_THROW(replicate_mms(sc, plan), InvalidArgument);
  plan.min_reps = 1;
  plan.max_reps = 4;
  plan.round_size = 0;
  EXPECT_THROW(replicate_mms(sc, plan), InvalidArgument);
}

TEST(Replication, SeedTagSurvivesParallelFailure) {
  // A replication that throws reports its own [seed=N]; the harness
  // rethrows the lowest failing index after its round completes.
  SimulationConfig sc;
  sc.mms = small_config();
  sc.mms.traffic.hotspot_node = 10000;  // out of range: simulate_mms throws
  sc.sim_time = 100.0;
  sc.seed = 30;
  ReplicationPlan plan;
  plan.max_reps = 4;
  plan.workers = 2;
  try {
    (void)replicate_mms(sc, plan);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("[seed=30]"), std::string::npos)
        << "got: " << e.what();
  }
}

}  // namespace
}  // namespace latol::sim
