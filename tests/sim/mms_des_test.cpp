#include "sim/mms_des.hpp"

#include <gtest/gtest.h>

#include "core/mms_model.hpp"
#include "util/error.hpp"

namespace latol::sim {
namespace {

SimulationConfig quick(const core::MmsConfig& mms, std::uint64_t seed = 1) {
  SimulationConfig cfg;
  cfg.mms = mms;
  cfg.sim_time = 30000.0;
  cfg.seed = seed;
  return cfg;
}

TEST(MmsDes, DeterministicForSameSeed) {
  const auto cfg = quick(core::MmsConfig::paper_defaults(), 7);
  const SimulationResult a = simulate_mms(cfg);
  const SimulationResult b = simulate_mms(cfg);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.events, b.events);
  EXPECT_DOUBLE_EQ(a.network_latency, b.network_latency);
}

TEST(MmsDes, SeedChangesTheSamplePath) {
  const auto a = simulate_mms(quick(core::MmsConfig::paper_defaults(), 1));
  const auto b = simulate_mms(quick(core::MmsConfig::paper_defaults(), 2));
  EXPECT_NE(a.cycles, b.cycles);
}

TEST(MmsDes, AllLocalWorkloadMatchesClosedFormUtilization) {
  // p_remote = 0, R = L: the per-node system is two balanced exponential
  // stations in a cycle -> U_p = n_t / (n_t + 1).
  core::MmsConfig mms = core::MmsConfig::paper_defaults();
  mms.p_remote = 0.0;
  mms.threads_per_processor = 4;
  auto cfg = quick(mms);
  cfg.sim_time = 100000.0;
  const SimulationResult r = simulate_mms(cfg);
  EXPECT_NEAR(r.processor_utilization, 4.0 / 5.0, 0.02);
  EXPECT_EQ(r.remote_legs, 0u);
  EXPECT_DOUBLE_EQ(r.message_rate, 0.0);
}

TEST(MmsDes, AgreesWithAnalyticalModelAtDefaults) {
  // Paper §8: model predictions within a few percent of simulation.
  const core::MmsConfig mms = core::MmsConfig::paper_defaults();
  auto cfg = quick(mms);
  cfg.sim_time = 150000.0;
  const SimulationResult sim = simulate_mms(cfg);
  const core::MmsPerformance model = core::analyze(mms);
  EXPECT_NEAR(sim.processor_utilization, model.processor_utilization,
              0.05 * model.processor_utilization);
  EXPECT_NEAR(sim.message_rate, model.message_rate,
              0.06 * model.message_rate);
  EXPECT_NEAR(sim.network_latency, model.network_latency,
              0.10 * model.network_latency);
  EXPECT_NEAR(sim.memory_latency, model.memory_latency,
              0.10 * model.memory_latency);
}

TEST(MmsDes, HighRemoteLoadSaturatesNearEqFour) {
  core::MmsConfig mms = core::MmsConfig::paper_defaults();
  mms.p_remote = 0.6;
  auto cfg = quick(mms);
  cfg.sim_time = 100000.0;
  const SimulationResult r = simulate_mms(cfg);
  // Eq. 4 cap: 1 / (2 * 1.733 * 10) = 0.0288.
  EXPECT_LT(r.message_rate, 0.0288 * 1.05);
  EXPECT_GT(r.message_rate, 0.0288 * 0.75);
}

TEST(MmsDes, DeterministicMemoryServiceIsCloseToExponential) {
  // Paper §8: swapping the memory service distribution from exponential to
  // deterministic moves S_obs by less than ~10%.
  core::MmsConfig mms = core::MmsConfig::paper_defaults();
  mms.p_remote = 0.5;
  auto expo = quick(mms);
  expo.sim_time = 100000.0;
  auto det = expo;
  det.memory_dist = ServiceDistribution::kDeterministic;
  const double s_expo = simulate_mms(expo).network_latency;
  const double s_det = simulate_mms(det).network_latency;
  EXPECT_NEAR(s_det, s_expo, 0.10 * s_expo);
}

TEST(MmsDes, CollectsConfidenceIntervals) {
  const SimulationResult r =
      simulate_mms(quick(core::MmsConfig::paper_defaults()));
  EXPECT_GT(r.remote_legs, 100u);
  EXPECT_GT(r.network_latency_hw95, 0.0);
  EXPECT_LT(r.network_latency_hw95, r.network_latency);
}

TEST(MmsDes, ValidatesRunParameters) {
  auto cfg = quick(core::MmsConfig::paper_defaults());
  cfg.sim_time = 0.0;
  EXPECT_THROW((void)simulate_mms(cfg), InvalidArgument);
  cfg = quick(core::MmsConfig::paper_defaults());
  cfg.warmup_fraction = 1.0;
  EXPECT_THROW((void)simulate_mms(cfg), InvalidArgument);
  cfg = quick(core::MmsConfig::paper_defaults());
  cfg.mms.runlength = -2.0;
  EXPECT_THROW((void)simulate_mms(cfg), InvalidArgument);
}

TEST(MmsDes, SingleNodeMachineRuns) {
  core::MmsConfig mms = core::MmsConfig::paper_defaults();
  mms.k = 1;
  mms.p_remote = 0.0;
  const SimulationResult r = simulate_mms(quick(mms));
  EXPECT_GT(r.cycles, 0u);
  EXPECT_EQ(r.remote_legs, 0u);
}

TEST(MmsDes, AgreesWithModelOnAlternateTopologies) {
  for (const auto kind :
       {topo::TopologyKind::kMesh2D, topo::TopologyKind::kRing,
        topo::TopologyKind::kHypercube}) {
    core::MmsConfig mms = core::MmsConfig::paper_defaults();
    mms.topology = kind;
    mms.k = kind == topo::TopologyKind::kRing
                ? 8
                : (kind == topo::TopologyKind::kHypercube ? 3 : 3);
    auto cfg = quick(mms);
    cfg.sim_time = 80000.0;
    const SimulationResult sim = simulate_mms(cfg);
    const core::MmsPerformance model = core::analyze(mms);
    EXPECT_NEAR(sim.processor_utilization, model.processor_utilization,
                0.06 * model.processor_utilization)
        << topo::topology_kind_name(kind);
    EXPECT_NEAR(sim.network_latency, model.network_latency,
                0.12 * model.network_latency)
        << topo::topology_kind_name(kind);
  }
}

TEST(MmsDes, HotspotMatchesModelTrend) {
  core::MmsConfig mms = core::MmsConfig::paper_defaults();
  mms.traffic.hotspot_node = 0;
  mms.traffic.hotspot_fraction = 0.5;
  auto cfg = quick(mms);
  cfg.sim_time = 80000.0;
  const SimulationResult sim = simulate_mms(cfg);
  // Mean per-node model prediction (DES reports machine-wide averages).
  const auto per_node = core::analyze_per_node(mms);
  double model_up = 0.0;
  for (const auto& p : per_node) model_up += p.processor_utilization;
  model_up /= static_cast<double>(per_node.size());
  EXPECT_NEAR(sim.processor_utilization, model_up, 0.07 * model_up);
}

TEST(MmsDes, MemoryPortsMatchModelPrediction) {
  core::MmsConfig mms = core::MmsConfig::paper_defaults();
  mms.runlength = 4.0;  // memory-bound
  mms.memory_ports = 2;
  auto cfg = quick(mms);
  cfg.sim_time = 100000.0;
  const SimulationResult sim = simulate_mms(cfg);
  const core::MmsPerformance model = core::analyze(mms);
  // Seidmann is pessimistic; allow a one-sided band around the DES truth.
  EXPECT_NEAR(sim.processor_utilization, model.processor_utilization,
              0.12 * sim.processor_utilization);
  // Ports must help in the simulator too.
  core::MmsConfig one_port = mms;
  one_port.memory_ports = 1;
  auto base_cfg = quick(one_port);
  base_cfg.sim_time = 100000.0;
  EXPECT_GT(sim.processor_utilization,
            simulate_mms(base_cfg).processor_utilization);
}

TEST(MmsDes, PipelinedSwitchesMatchModelExactly) {
  core::MmsConfig mms = core::MmsConfig::paper_defaults();
  mms.p_remote = 0.5;
  mms.pipelined_switches = true;
  auto cfg = quick(mms);
  cfg.sim_time = 100000.0;
  const SimulationResult sim = simulate_mms(cfg);
  const core::MmsPerformance model = core::analyze(mms);
  EXPECT_NEAR(sim.network_latency, model.network_latency,
              0.03 * model.network_latency);
  EXPECT_NEAR(sim.processor_utilization, model.processor_utilization,
              0.05 * model.processor_utilization);
}

TEST(MmsDes, InsensitiveToWarmupChoice) {
  // Output analysis sanity: doubling the warmup fraction must not move
  // the steady-state estimates beyond sampling noise.
  core::MmsConfig mms = core::MmsConfig::paper_defaults();
  auto a = quick(mms, 5);
  a.sim_time = 120000.0;
  a.warmup_fraction = 0.1;
  auto b = a;
  b.warmup_fraction = 0.2;
  const SimulationResult ra = simulate_mms(a);
  const SimulationResult rb = simulate_mms(b);
  EXPECT_NEAR(ra.processor_utilization, rb.processor_utilization,
              0.02 * ra.processor_utilization);
  EXPECT_NEAR(ra.network_latency, rb.network_latency,
              0.05 * ra.network_latency);
}

TEST(MmsDes, ResultRecordsItsSeed) {
  core::MmsConfig mms = core::MmsConfig::paper_defaults();
  mms.k = 2;
  auto cfg = quick(mms, 12345);
  cfg.sim_time = 2000.0;
  EXPECT_EQ(simulate_mms(cfg).seed, 12345u);
}

TEST(MmsDes, ValidationFailureNamesTheSeed) {
  // A failing replication must be reproducible: the error message carries
  // the RNG seed of the run that exposed it.
  auto cfg = quick(core::MmsConfig::paper_defaults(), 777);
  cfg.sim_time = -1.0;
  try {
    (void)simulate_mms(cfg);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("[seed=777]"), std::string::npos);
  }
}

TEST(MmsDes, UniformTrafficTravelsFartherThanGeometric) {
  core::MmsConfig geo = core::MmsConfig::paper_defaults();
  core::MmsConfig uni = geo;
  uni.traffic.pattern = topo::AccessPattern::kUniform;
  const double s_geo = simulate_mms(quick(geo)).network_latency;
  const double s_uni = simulate_mms(quick(uni)).network_latency;
  EXPECT_GT(s_uni, s_geo);
}

}  // namespace
}  // namespace latol::sim
