#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "util/error.hpp"

namespace latol::util {
namespace {

TEST(ThreadPool, SpawnsRequestedWorkers) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.worker_count(), 3u);
}

TEST(ThreadPool, ZeroSelectsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.worker_count(), 1u);
}

TEST(ThreadPool, RejectsEmptyTask) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), InvalidArgument);
}

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; }, 4);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, HandlesZeroIterations) {
  parallel_for(0, [](std::size_t) { FAIL() << "must not run"; }, 2);
}

TEST(ParallelFor, HandlesFewerIterationsThanWorkers) {
  std::atomic<int> counter{0};
  parallel_for(2, [&](std::size_t) { ++counter; }, 8);
  EXPECT_EQ(counter.load(), 2);
}

TEST(ParallelFor, ResultsIndependentOfWorkerCount) {
  auto run = [](std::size_t workers) {
    std::vector<double> out(500);
    parallel_for(out.size(),
                 [&](std::size_t i) { out[i] = static_cast<double>(i) * 1.5; },
                 workers);
    return out;
  };
  EXPECT_EQ(run(1), run(7));
}

TEST(ParallelFor, ReusablePool) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  parallel_for(pool, 100, [&](std::size_t i) { sum += static_cast<long>(i); });
  parallel_for(pool, 100, [&](std::size_t i) { sum += static_cast<long>(i); });
  EXPECT_EQ(sum.load(), 2 * (99 * 100) / 2);
}

}  // namespace
}  // namespace latol::util
