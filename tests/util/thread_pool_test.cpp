#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "util/error.hpp"

namespace latol::util {
namespace {

TEST(ThreadPool, SpawnsRequestedWorkers) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.worker_count(), 3u);
}

TEST(ThreadPool, ZeroSelectsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.worker_count(), 1u);
}

TEST(ThreadPool, RejectsEmptyTask) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), InvalidArgument);
}

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; }, 4);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, HandlesZeroIterations) {
  parallel_for(0, [](std::size_t) { FAIL() << "must not run"; }, 2);
}

TEST(ParallelFor, HandlesFewerIterationsThanWorkers) {
  std::atomic<int> counter{0};
  parallel_for(2, [&](std::size_t) { ++counter; }, 8);
  EXPECT_EQ(counter.load(), 2);
}

TEST(ParallelFor, ResultsIndependentOfWorkerCount) {
  auto run = [](std::size_t workers) {
    std::vector<double> out(500);
    parallel_for(out.size(),
                 [&](std::size_t i) { out[i] = static_cast<double>(i) * 1.5; },
                 workers);
    return out;
  };
  EXPECT_EQ(run(1), run(7));
}

TEST(ParallelFor, ReusablePool) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  parallel_for(pool, 100, [&](std::size_t i) { sum += static_cast<long>(i); });
  parallel_for(pool, 100, [&](std::size_t i) { sum += static_cast<long>(i); });
  EXPECT_EQ(sum.load(), 2 * (99 * 100) / 2);
}

// Stress the work-stealing path: uneven per-index cost forces fast chunks
// to drain and steal from slow ones; every index must still run exactly
// once, which is what guarantees the disjoint-write bit-identity argument
// in DESIGN.md §10.
TEST(ParallelFor, StealingCoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(kN,
               [&](std::size_t i) {
                 // First chunk is much slower than the rest.
                 if (i < kN / 8) {
                   volatile double x = 1.0;
                   for (int k = 0; k < 2000; ++k) x = x * 1.000001;
                 }
                 ++hits[i];
               },
               8);
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, SharedPoolIsASingleton) {
  EXPECT_EQ(&ThreadPool::shared(), &ThreadPool::shared());
  EXPECT_GE(ThreadPool::shared().worker_count(), 1u);
}

TEST(ParallelFor, WorkersZeroUsesSharedPool) {
  std::atomic<long> sum{0};
  parallel_for(257, [&](std::size_t i) { sum += static_cast<long>(i); }, 0);
  EXPECT_EQ(sum.load(), 256L * 257 / 2);
}

// Nested parallel_for on the shared pool must not deadlock: the caller
// participates in its own loop, so inner loops always have at least one
// thread making progress even when every pool worker is busy.
TEST(ParallelFor, NestedOnSharedPoolCompletes) {
  std::atomic<long> total{0};
  parallel_for(8,
               [&](std::size_t) {
                 parallel_for(
                     16, [&](std::size_t j) { total += static_cast<long>(j); },
                     0);
               },
               0);
  EXPECT_EQ(total.load(), 8 * (15L * 16 / 2));
}

}  // namespace
}  // namespace latol::util
