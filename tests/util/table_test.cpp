#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace latol::util {
namespace {

TEST(Table, RequiresAtLeastOneColumn) {
  EXPECT_THROW(Table({}), InvalidArgument);
}

TEST(Table, RejectsRowWithWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), InvalidArgument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), InvalidArgument);
}

TEST(Table, CountsRows) {
  Table t({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"x"});
  t.add_row({"y"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, FormatsNumbersWithPrecision) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(1.0, 3), "1.000");
  EXPECT_EQ(Table::num(static_cast<long long>(42)), "42");
}

TEST(Table, PrintContainsHeadersAndCells) {
  Table t({"n_t", "U_p"});
  t.add_row({"8", "0.82"});
  std::ostringstream os;
  os << t;
  const std::string s = os.str();
  EXPECT_NE(s.find("n_t"), std::string::npos);
  EXPECT_NE(s.find("U_p"), std::string::npos);
  EXPECT_NE(s.find("0.82"), std::string::npos);
}

TEST(Table, PrintAlignsColumns) {
  Table t({"x", "long_header"});
  t.add_row({"very_long_cell", "1"});
  std::ostringstream os;
  t.print(os);
  // Each emitted line must have the same length (fixed column widths).
  std::istringstream in(os.str());
  std::string line;
  std::size_t len = 0;
  while (std::getline(in, line)) {
    if (len == 0) len = line.size();
    EXPECT_EQ(line.size(), len) << "line: " << line;
  }
}

TEST(Banner, MentionsTitle) {
  std::ostringstream os;
  print_banner(os, "Figure 4");
  EXPECT_NE(os.str().find("Figure 4"), std::string::npos);
}

}  // namespace
}  // namespace latol::util
