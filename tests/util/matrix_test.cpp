#include "util/matrix.hpp"

#include <gtest/gtest.h>

namespace latol::util {
namespace {

TEST(Matrix, ZeroInitializedWithShape) {
  const Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_EQ(m(r, c), 0.0);
}

TEST(Matrix, FillValue) {
  const Matrix m(2, 2, 7.5);
  EXPECT_EQ(m(1, 1), 7.5);
}

TEST(Matrix, ElementWriteAndRead) {
  Matrix m(2, 2);
  m(0, 1) = 3.0;
  EXPECT_EQ(m(0, 1), 3.0);
  EXPECT_EQ(m(1, 0), 0.0);
}

TEST(Matrix, BoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW(m(2, 0) = 1.0, InvalidArgument);
  EXPECT_THROW(m(0, 2) = 1.0, InvalidArgument);
  const Matrix& cm = m;
  EXPECT_THROW((void)cm(5, 5), InvalidArgument);
}

TEST(LinearSolve, SolvesIdentity) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = 1.0;
  const auto x = solve_linear_system(a, {3.0, 4.0});
  EXPECT_DOUBLE_EQ(x[0], 3.0);
  EXPECT_DOUBLE_EQ(x[1], 4.0);
}

TEST(LinearSolve, Solves3x3System) {
  // A = [[2,1,0],[1,3,1],[0,1,4]], x = [1,-2,3] -> b = [0,-2,10].
  Matrix a(3, 3);
  a(0, 0) = 2; a(0, 1) = 1; a(0, 2) = 0;
  a(1, 0) = 1; a(1, 1) = 3; a(1, 2) = 1;
  a(2, 0) = 0; a(2, 1) = 1; a(2, 2) = 4;
  const auto x = solve_linear_system(a, {0.0, -2.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], -2.0, 1e-12);
  EXPECT_NEAR(x[2], 3.0, 1e-12);
}

TEST(LinearSolve, RequiresPivoting) {
  // Zero on the initial diagonal; only partial pivoting solves this.
  Matrix a(2, 2);
  a(0, 0) = 0; a(0, 1) = 1;
  a(1, 0) = 1; a(1, 1) = 0;
  const auto x = solve_linear_system(a, {5.0, 6.0});
  EXPECT_DOUBLE_EQ(x[0], 6.0);
  EXPECT_DOUBLE_EQ(x[1], 5.0);
}

TEST(LinearSolve, ThrowsOnSingular) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2;
  a(1, 0) = 2; a(1, 1) = 4;
  EXPECT_THROW(solve_linear_system(a, {1.0, 2.0}), InvalidArgument);
}

TEST(LinearSolve, ThrowsOnShapeMismatch) {
  Matrix a(2, 3);
  EXPECT_THROW(solve_linear_system(a, {1.0, 2.0}), InvalidArgument);
  Matrix b(2, 2);
  EXPECT_THROW(solve_linear_system(b, {1.0}), InvalidArgument);
}

}  // namespace
}  // namespace latol::util
