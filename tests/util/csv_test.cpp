#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace latol::util {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("latol_csv_test_" +
              std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
              "_" + ::testing::UnitTest::GetInstance()
                        ->current_test_info()
                        ->name() +
              ".csv"))
                .string();
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string read_all() {
    std::ifstream in(path_);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
  }

  std::string path_;
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter csv(path_, {"a", "b"});
    csv.add_row(std::vector<double>{1.5, 2.0});
    csv.add_row(std::vector<std::string>{"x", "y"});
  }
  EXPECT_EQ(read_all(), "a,b\n1.5,2\nx,y\n");
}

TEST_F(CsvTest, RejectsWrongArity) {
  CsvWriter csv(path_, {"a", "b"});
  EXPECT_THROW(csv.add_row(std::vector<double>{1.0}), InvalidArgument);
}

TEST_F(CsvTest, RejectsEmptyHeader) {
  EXPECT_THROW(CsvWriter(path_, {}), InvalidArgument);
}

TEST_F(CsvTest, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_zz/x.csv", {"a"}), InvalidArgument);
}

TEST_F(CsvTest, RoundTripsDoublesAtFullPrecision) {
  const double value = 0.028846153846153848;
  {
    CsvWriter csv(path_, {"v"});
    csv.add_row(std::vector<double>{value});
  }
  std::ifstream in(path_);
  std::string header, cell;
  std::getline(in, header);
  std::getline(in, cell);
  EXPECT_DOUBLE_EQ(std::stod(cell), value);
}

}  // namespace
}  // namespace latol::util
