#include "topo/torus.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "util/error.hpp"

namespace latol::topo {
namespace {

TEST(Torus, RejectsNonPositiveSide) {
  EXPECT_THROW(Torus2D(0), InvalidArgument);
  EXPECT_THROW(Torus2D(-3), InvalidArgument);
}

TEST(Torus, CoordinateRoundTrip) {
  const Torus2D t(4);
  for (int n = 0; n < t.num_nodes(); ++n)
    EXPECT_EQ(t.node_at(t.x_of(n), t.y_of(n)), n);
  EXPECT_THROW((void)t.node_at(4, 0), InvalidArgument);
  EXPECT_THROW((void)t.x_of(16), InvalidArgument);
}

TEST(Torus, DistanceIsAMetric) {
  const Torus2D t(5);
  for (int a = 0; a < t.num_nodes(); ++a) {
    EXPECT_EQ(t.distance(a, a), 0);
    for (int b = 0; b < t.num_nodes(); ++b) {
      EXPECT_EQ(t.distance(a, b), t.distance(b, a));
      EXPECT_GE(t.distance(a, b), a == b ? 0 : 1);
      for (int c = 0; c < t.num_nodes(); ++c)
        EXPECT_LE(t.distance(a, c), t.distance(a, b) + t.distance(b, c));
    }
  }
}

TEST(Torus, MaxDistanceFormula) {
  EXPECT_EQ(Torus2D(2).max_distance(), 2);
  EXPECT_EQ(Torus2D(3).max_distance(), 2);
  EXPECT_EQ(Torus2D(4).max_distance(), 4);
  EXPECT_EQ(Torus2D(5).max_distance(), 4);
  EXPECT_EQ(Torus2D(10).max_distance(), 10);
}

TEST(Torus, DistanceProfileMatchesPaperMachine) {
  // 4x4 torus: 1, 4, 6, 4, 1 nodes at distances 0..4.
  const Torus2D t(4);
  const auto& profile = t.distance_profile();
  ASSERT_EQ(profile.size(), 5u);
  EXPECT_EQ(profile[0], 1);
  EXPECT_EQ(profile[1], 4);
  EXPECT_EQ(profile[2], 6);
  EXPECT_EQ(profile[3], 4);
  EXPECT_EQ(profile[4], 1);
}

class TorusSides : public ::testing::TestWithParam<int> {};

TEST_P(TorusSides, ProfileSumsToNodeCount) {
  const Torus2D t(GetParam());
  int total = 0;
  for (const int n : t.distance_profile()) total += n;
  EXPECT_EQ(total, t.num_nodes());
}

TEST_P(TorusSides, ProfileIsVertexTransitive) {
  const Torus2D t(GetParam());
  for (int from = 0; from < t.num_nodes(); ++from) {
    for (int h = 0; h <= t.max_distance(); ++h) {
      EXPECT_EQ(static_cast<int>(t.nodes_at_distance(from, h).size()),
                t.distance_profile()[static_cast<std::size_t>(h)])
          << "from=" << from << " h=" << h;
    }
  }
}

TEST_P(TorusSides, PathLengthEqualsDistance) {
  const Torus2D t(GetParam());
  for (int a = 0; a < t.num_nodes(); ++a) {
    for (int b = 0; b < t.num_nodes(); ++b) {
      const auto path = t.path(a, b);
      EXPECT_EQ(static_cast<int>(path.size()), t.distance(a, b));
      if (a != b) {
        EXPECT_EQ(path.back(), b);
      }
    }
  }
}

TEST_P(TorusSides, InboundVisitWeightsSumToDistance) {
  const Torus2D t(GetParam());
  for (int a = 0; a < t.num_nodes(); ++a) {
    for (int b = 0; b < t.num_nodes(); ++b) {
      double total = 0.0;
      for (const auto& [node, w] : t.inbound_visits(a, b)) {
        EXPECT_NE(node, a) << "source never re-entered";
        total += w;
      }
      EXPECT_NEAR(total, t.distance(a, b), 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sides, TorusSides, ::testing::Values(2, 3, 4, 5, 8));

TEST(Torus, HalfRingTieSplitsFiftyFifty) {
  // On a 4-ring, offset 2 has two minimal directions. From (0,0) to (2,0)
  // the first hop is node (1,0) with weight .5 and node (3,0) with .5.
  const Torus2D t(4);
  const auto visits = t.inbound_visits(t.node_at(0, 0), t.node_at(2, 0));
  std::map<int, double> acc;
  for (const auto& [node, w] : visits) acc[node] += w;
  EXPECT_NEAR(acc[t.node_at(1, 0)], 0.5, 1e-12);
  EXPECT_NEAR(acc[t.node_at(3, 0)], 0.5, 1e-12);
  EXPECT_NEAR(acc[t.node_at(2, 0)], 1.0, 1e-12);  // destination, both paths
}

TEST(Torus, OddSideHasUniqueMinimalPaths) {
  const Torus2D t(5);
  for (int b = 1; b < t.num_nodes(); ++b) {
    const auto visits = t.inbound_visits(0, b);
    for (const auto& [node, w] : visits)
      EXPECT_NEAR(w, 1.0, 1e-12) << "no ties expected on odd side";
  }
}

TEST(Torus, PathTieBreakDirectionsDiffer) {
  const Torus2D t(4);
  const auto plus = t.path(0, 2, /*x_tie_positive=*/true, true);
  const auto minus = t.path(0, 2, /*x_tie_positive=*/false, true);
  ASSERT_EQ(plus.size(), 2u);
  ASSERT_EQ(minus.size(), 2u);
  EXPECT_NE(plus[0], minus[0]);
  EXPECT_EQ(plus.back(), minus.back());
}

TEST(Torus, DimensionOrderRoutesXFirst) {
  const Torus2D t(5);
  const auto path = t.path(t.node_at(0, 0), t.node_at(1, 1));
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], t.node_at(1, 0));  // X hop first
  EXPECT_EQ(path[1], t.node_at(1, 1));
}

TEST(Torus, SingleNodeTorusIsDegenerate) {
  const Torus2D t(1);
  EXPECT_EQ(t.num_nodes(), 1);
  EXPECT_EQ(t.max_distance(), 0);
  EXPECT_TRUE(t.path(0, 0).empty());
  EXPECT_TRUE(t.inbound_visits(0, 0).empty());
}

}  // namespace
}  // namespace latol::topo
