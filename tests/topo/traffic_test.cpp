#include "topo/traffic.hpp"

#include "topo/torus.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace latol::topo {
namespace {

TEST(GeometricAverageDistance, MatchesPaperConstant) {
  // 4x4 torus, p_sw = 0.5: the paper states d_avg = 1.733.
  EXPECT_NEAR(geometric_average_distance(4, 0.5), 1.7333, 1e-4);
}

TEST(GeometricAverageDistance, ApproachesClosedFormLimit) {
  // d_max -> infinity: d_avg -> 1 / (1 - p_sw).
  EXPECT_NEAR(geometric_average_distance(200, 0.5), 2.0, 1e-6);
  EXPECT_NEAR(geometric_average_distance(200, 0.2), 1.25, 1e-6);
}

TEST(GeometricAverageDistance, ValidatesInputs) {
  EXPECT_THROW((void)geometric_average_distance(0, 0.5), InvalidArgument);
  EXPECT_THROW((void)geometric_average_distance(4, 0.0), InvalidArgument);
  EXPECT_THROW((void)geometric_average_distance(4, 1.5), InvalidArgument);
}

class TrafficPatterns
    : public ::testing::TestWithParam<std::tuple<int, AccessPattern>> {};

TEST_P(TrafficPatterns, ProbabilitiesSumToOne) {
  const auto [side, pattern] = GetParam();
  const Torus2D torus(side);
  TrafficConfig cfg;
  cfg.pattern = pattern;
  const RemoteAccessDistribution dist(torus, cfg);
  for (const int src : {0, torus.num_nodes() / 2}) {
    double total = 0.0;
    for (int dst = 0; dst < torus.num_nodes(); ++dst)
      total += dist.probability(src, dst);
    EXPECT_NEAR(total, 1.0, 1e-12) << "src=" << src;
    EXPECT_EQ(dist.probability(src, src), 0.0);
  }
}

TEST_P(TrafficPatterns, AverageDistanceConsistentWithProbabilities) {
  const auto [side, pattern] = GetParam();
  const Torus2D torus(side);
  TrafficConfig cfg;
  cfg.pattern = pattern;
  const RemoteAccessDistribution dist(torus, cfg);
  double davg = 0.0;
  for (int dst = 0; dst < torus.num_nodes(); ++dst)
    davg += dist.probability(0, dst) * torus.distance(0, dst);
  EXPECT_NEAR(davg, dist.average_distance(), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    SidesAndPatterns, TrafficPatterns,
    ::testing::Combine(::testing::Values(2, 3, 4, 6, 10),
                       ::testing::Values(AccessPattern::kGeometric,
                                         AccessPattern::kUniform)));

TEST(Traffic, PaperDefaultAverageDistance) {
  const Torus2D torus(4);
  TrafficConfig cfg;  // geometric, p_sw = 0.5, distance-class
  const RemoteAccessDistribution dist(torus, cfg);
  EXPECT_NEAR(dist.average_distance(), 1.7333, 1e-4);
}

TEST(Traffic, PerModuleModeGivesDifferentAverage) {
  const Torus2D torus(4);
  TrafficConfig cfg;
  cfg.mode = GeometricMode::kPerModule;
  const RemoteAccessDistribution dist(torus, cfg);
  // Weighting classes by N_h: (2 + 3 + 1.5 + .25) / (2 + 1.5 + .5 + .0625).
  EXPECT_NEAR(dist.average_distance(), 6.75 / 4.0625, 1e-12);
}

TEST(Traffic, UniformAverageDistanceOn4x4) {
  const Torus2D torus(4);
  TrafficConfig cfg;
  cfg.pattern = AccessPattern::kUniform;
  const RemoteAccessDistribution dist(torus, cfg);
  // sum h*N_h / (P-1) = (4 + 12 + 12 + 4) / 15.
  EXPECT_NEAR(dist.average_distance(), 32.0 / 15.0, 1e-12);
}

TEST(Traffic, UniformGrowsWithMachineGeometricSaturates) {
  TrafficConfig geo;
  TrafficConfig uni;
  uni.pattern = AccessPattern::kUniform;
  double prev_uniform = 0.0;
  for (const int k : {4, 6, 8, 10}) {
    const Torus2D torus(k);
    const double du = RemoteAccessDistribution(torus, uni).average_distance();
    const double dg = RemoteAccessDistribution(torus, geo).average_distance();
    EXPECT_GT(du, prev_uniform);
    prev_uniform = du;
    EXPECT_LT(dg, 2.0 + 1e-9);  // geometric limit 1/(1-p_sw) = 2
  }
  // Paper §7: uniform d_avg reaches ~5 at k = 10.
  const Torus2D torus(10);
  EXPECT_NEAR(RemoteAccessDistribution(torus, uni).average_distance(), 5.05,
              0.1);
}

TEST(Traffic, StrongerLocalityShortensDistance) {
  const Torus2D torus(8);
  TrafficConfig tight;
  tight.p_sw = 0.2;
  TrafficConfig loose;
  loose.p_sw = 0.9;
  EXPECT_LT(RemoteAccessDistribution(torus, tight).average_distance(),
            RemoteAccessDistribution(torus, loose).average_distance());
}

TEST(Traffic, LowLocalityFavorsNearbyModules) {
  const Torus2D torus(6);
  TrafficConfig cfg;
  cfg.p_sw = 0.3;
  const RemoteAccessDistribution dist(torus, cfg);
  const int near = torus.node_at(1, 0);
  const int far = torus.node_at(3, 3);
  EXPECT_GT(dist.probability(0, near), dist.probability(0, far));
}

TEST(Traffic, DistanceClassProbabilitiesExposed) {
  const Torus2D torus(4);
  const RemoteAccessDistribution dist(torus, TrafficConfig{});
  const auto& cls = dist.distance_class_probability();
  ASSERT_EQ(cls.size(), 5u);
  EXPECT_EQ(cls[0], 0.0);
  double total = 0.0;
  for (const double p : cls) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
  // Geometric: each class has half the probability of the previous.
  EXPECT_NEAR(cls[2] / cls[1], 0.5, 1e-12);
  EXPECT_NEAR(cls[3] / cls[2], 0.5, 1e-12);
}

TEST(TrafficHotspot, ProbabilitiesStillSumToOne) {
  const Torus2D torus(4);
  TrafficConfig cfg;
  cfg.hotspot_node = 5;
  cfg.hotspot_fraction = 0.4;
  const RemoteAccessDistribution dist(torus, cfg);
  for (const int src : {0, 5, 12}) {
    double total = 0.0;
    for (int dst = 0; dst < torus.num_nodes(); ++dst)
      total += dist.probability(src, dst);
    EXPECT_NEAR(total, 1.0, 1e-12) << "src=" << src;
  }
}

TEST(TrafficHotspot, RedirectsMassToHotspot) {
  const Torus2D torus(4);
  TrafficConfig base;
  TrafficConfig hot = base;
  hot.hotspot_node = 5;
  hot.hotspot_fraction = 0.4;
  const RemoteAccessDistribution b(torus, base);
  const RemoteAccessDistribution h(torus, hot);
  EXPECT_GT(h.probability(0, 5), b.probability(0, 5) + 0.3);
  // Every non-hotspot destination loses proportionally.
  EXPECT_NEAR(h.probability(0, 1), 0.6 * b.probability(0, 1), 1e-12);
  // The hotspot node's own traffic is unchanged.
  EXPECT_NEAR(h.probability(5, 1), b.probability(5, 1), 1e-12);
  EXPECT_TRUE(h.has_hotspot());
  EXPECT_FALSE(b.has_hotspot());
}

TEST(TrafficHotspot, PerSourceAverageDistanceVaries) {
  const Torus2D torus(4);
  TrafficConfig cfg;
  cfg.hotspot_node = 0;
  cfg.hotspot_fraction = 0.8;
  const RemoteAccessDistribution dist(torus, cfg);
  // A neighbour of the hotspot travels less than the far corner.
  const int near = torus.node_at(1, 0);
  const int far = torus.node_at(2, 2);
  EXPECT_LT(dist.average_distance_from(near),
            dist.average_distance_from(far));
  // Aggregate d_avg is the node mean.
  double mean = 0.0;
  for (int n = 0; n < torus.num_nodes(); ++n)
    mean += dist.average_distance_from(n);
  EXPECT_NEAR(dist.average_distance(), mean / torus.num_nodes(), 1e-12);
}

TEST(TrafficHotspot, ValidatesParameters) {
  const Torus2D torus(4);
  TrafficConfig cfg;
  cfg.hotspot_node = 99;
  cfg.hotspot_fraction = 0.5;
  EXPECT_THROW(RemoteAccessDistribution(torus, cfg), InvalidArgument);
  cfg.hotspot_node = 3;
  cfg.hotspot_fraction = 1.5;
  EXPECT_THROW(RemoteAccessDistribution(torus, cfg), InvalidArgument);
}

TEST(Traffic, RejectsOneNodeMachine) {
  const Torus2D torus(1);
  EXPECT_THROW(RemoteAccessDistribution(torus, TrafficConfig{}),
               InvalidArgument);
}

}  // namespace
}  // namespace latol::topo
