// Property suite over all topology families via the Topology interface.
#include "topo/topology.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "topo/hypercube.hpp"
#include "topo/mesh.hpp"
#include "topo/ring.hpp"
#include "topo/torus.hpp"
#include "topo/traffic.hpp"
#include "util/error.hpp"

namespace latol::topo {
namespace {

struct TopoCase {
  TopologyKind kind;
  int side;
};

class AllTopologies : public ::testing::TestWithParam<TopoCase> {
 protected:
  std::unique_ptr<Topology> topo() const {
    return make_topology(GetParam().kind, GetParam().side);
  }
};

TEST_P(AllTopologies, DistanceIsAMetric) {
  const auto t = topo();
  for (int a = 0; a < t->num_nodes(); ++a) {
    EXPECT_EQ(t->distance(a, a), 0);
    for (int b = 0; b < t->num_nodes(); ++b) {
      EXPECT_EQ(t->distance(a, b), t->distance(b, a));
      for (int c = 0; c < t->num_nodes(); ++c)
        EXPECT_LE(t->distance(a, c), t->distance(a, b) + t->distance(b, c));
    }
  }
}

TEST_P(AllTopologies, MaxDistanceIsAchievedAndNeverExceeded) {
  const auto t = topo();
  int seen_max = 0;
  for (int a = 0; a < t->num_nodes(); ++a) {
    for (int b = 0; b < t->num_nodes(); ++b) {
      EXPECT_LE(t->distance(a, b), t->max_distance());
      seen_max = std::max(seen_max, t->distance(a, b));
    }
  }
  EXPECT_EQ(seen_max, t->max_distance());
}

TEST_P(AllTopologies, RoutesAreMinimalAndEndAtDestination) {
  const auto t = topo();
  for (int a = 0; a < t->num_nodes(); ++a) {
    for (int b = 0; b < t->num_nodes(); ++b) {
      for (const bool tie : {true, false}) {
        const auto r = t->route(a, b, tie, tie);
        EXPECT_EQ(static_cast<int>(r.size()), t->distance(a, b));
        if (a != b) {
          EXPECT_EQ(r.back(), b);
          // Consecutive nodes are one hop apart.
          int prev = a;
          for (const int node : r) {
            EXPECT_EQ(t->distance(prev, node), 1);
            prev = node;
          }
        }
      }
    }
  }
}

TEST_P(AllTopologies, InboundVisitWeightsSumToDistance) {
  const auto t = topo();
  for (int a = 0; a < t->num_nodes(); ++a) {
    for (int b = 0; b < t->num_nodes(); ++b) {
      double total = 0.0;
      for (const auto& [node, w] : t->inbound_visits(a, b)) {
        EXPECT_NE(node, a);
        EXPECT_GT(w, 0.0);
        total += w;
      }
      EXPECT_NEAR(total, t->distance(a, b), 1e-12);
    }
  }
}

TEST_P(AllTopologies, ProfileFromEveryNodeSumsToNodeCount) {
  const auto t = topo();
  for (int n = 0; n < t->num_nodes(); ++n) {
    int total = 0;
    for (const int c : t->distance_profile_from(n)) total += c;
    EXPECT_EQ(total, t->num_nodes());
  }
}

TEST_P(AllTopologies, VertexTransitivityFlagIsHonest) {
  const auto t = topo();
  if (!t->is_vertex_transitive()) return;
  const auto reference = t->distance_profile_from(0);
  for (int n = 1; n < t->num_nodes(); ++n)
    EXPECT_EQ(t->distance_profile_from(n), reference) << "node " << n;
}

TEST_P(AllTopologies, TrafficProbabilitiesSumToOne) {
  const auto t = topo();
  if (t->num_nodes() < 2) return;
  for (const AccessPattern pattern :
       {AccessPattern::kGeometric, AccessPattern::kUniform}) {
    TrafficConfig cfg;
    cfg.pattern = pattern;
    const RemoteAccessDistribution dist(*t, cfg);
    for (int src = 0; src < t->num_nodes(); ++src) {
      double total = 0.0;
      for (int dst = 0; dst < t->num_nodes(); ++dst)
        total += dist.probability(src, dst);
      EXPECT_NEAR(total, 1.0, 1e-12) << t->name() << " src=" << src;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, AllTopologies,
    ::testing::Values(TopoCase{TopologyKind::kTorus2D, 3},
                      TopoCase{TopologyKind::kTorus2D, 4},
                      TopoCase{TopologyKind::kMesh2D, 3},
                      TopoCase{TopologyKind::kMesh2D, 4},
                      TopoCase{TopologyKind::kRing, 5},
                      TopoCase{TopologyKind::kRing, 6},
                      TopoCase{TopologyKind::kHypercube, 3},
                      TopoCase{TopologyKind::kHypercube, 4}));

TEST(Mesh2D, DistancesHaveNoWraparound) {
  const Mesh2D mesh(4);
  // Opposite corners: 3 + 3 hops (a torus would need only 2 + 2).
  EXPECT_EQ(mesh.distance(0, 15), 6);
  EXPECT_EQ(mesh.max_distance(), 6);
  EXPECT_FALSE(mesh.is_vertex_transitive());
}

TEST(Mesh2D, CornerSeesLongerAverageDistanceThanCenter) {
  const Mesh2D mesh(5);
  TrafficConfig uniform;
  uniform.pattern = AccessPattern::kUniform;
  const RemoteAccessDistribution dist(mesh, uniform);
  const int corner = 0;
  const int center = 12;  // (2,2) on 5x5
  EXPECT_GT(dist.average_distance_from(corner),
            dist.average_distance_from(center));
}

TEST(Ring, DistancesWrapAround) {
  const Ring ring(6);
  EXPECT_EQ(ring.distance(0, 5), 1);
  EXPECT_EQ(ring.distance(0, 3), 3);
  EXPECT_EQ(ring.max_distance(), 3);
  EXPECT_TRUE(ring.is_vertex_transitive());
}

TEST(Ring, HalfRingTieSplits) {
  const Ring ring(6);
  double w_first_cw = 0.0, w_first_ccw = 0.0;
  for (const auto& [node, w] : ring.inbound_visits(0, 3)) {
    if (node == 1) w_first_cw += w;
    if (node == 5) w_first_ccw += w;
  }
  EXPECT_NEAR(w_first_cw, 0.5, 1e-12);
  EXPECT_NEAR(w_first_ccw, 0.5, 1e-12);
}

TEST(Hypercube, DistanceIsHammingWeight) {
  const Hypercube cube(4);
  EXPECT_EQ(cube.num_nodes(), 16);
  EXPECT_EQ(cube.distance(0b0000, 0b1111), 4);
  EXPECT_EQ(cube.distance(0b0101, 0b0110), 2);
  EXPECT_EQ(cube.max_distance(), 4);
}

TEST(Hypercube, EcubeRoutingFixesBitsLowToHigh) {
  const Hypercube cube(3);
  const auto r = cube.route(0b000, 0b101, true, true);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0], 0b001);
  EXPECT_EQ(r[1], 0b101);
}

TEST(TopologyFactory, BuildsEveryKindWithMatchingName) {
  EXPECT_EQ(make_topology(TopologyKind::kTorus2D, 4)->name(), "torus2d(4)");
  EXPECT_EQ(make_topology(TopologyKind::kMesh2D, 4)->name(), "mesh2d(4)");
  EXPECT_EQ(make_topology(TopologyKind::kRing, 8)->name(), "ring(8)");
  EXPECT_EQ(make_topology(TopologyKind::kHypercube, 3)->name(),
            "hypercube(3)");
  EXPECT_STREQ(topology_kind_name(TopologyKind::kMesh2D), "mesh2d");
}

TEST(TopologyFactory, ValidatesSizes) {
  EXPECT_THROW(make_topology(TopologyKind::kMesh2D, 0), InvalidArgument);
  EXPECT_THROW(make_topology(TopologyKind::kRing, 0), InvalidArgument);
  EXPECT_THROW(make_topology(TopologyKind::kHypercube, -1), InvalidArgument);
}

}  // namespace
}  // namespace latol::topo
