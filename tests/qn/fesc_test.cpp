#include "qn/open/fesc.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "qn/mva_exact.hpp"
#include "util/error.hpp"

namespace latol::qn {
namespace {

/// A small heterogeneous single-class network: delay think time, a fast
/// disk, a slow memory bank, and a switch (all single-server so exact MVA
/// can referee the comparison).
ClosedNetwork heterogeneous(long population) {
  ClosedNetwork net({{"think", StationKind::kDelay},
                     {"disk", StationKind::kQueueing},
                     {"bank", StationKind::kQueueing},
                     {"switch", StationKind::kQueueing}},
                    1);
  net.set_population(0, population);
  net.set_visit_ratio(0, 0, 1.0);
  net.set_visit_ratio(0, 1, 2.0);
  net.set_visit_ratio(0, 2, 0.5);
  net.set_visit_ratio(0, 3, 1.5);
  net.set_service_time(0, 0, 4.0);
  net.set_service_time(0, 1, 0.8);
  net.set_service_time(0, 2, 3.0);
  net.set_service_time(0, 3, 1.2);
  return net;
}

/// A paper-sized lattice stand-in: one processor-like station plus k*k
/// memories and 2*k*k switch stages, all visited by a single class —
/// the shape core/hierarchical.cpp collapses.
ClosedNetwork lattice(int k, long population) {
  std::vector<Station> stations;
  stations.push_back({"proc", StationKind::kQueueing});
  for (int i = 0; i < k * k; ++i)
    stations.push_back({"mem" + std::to_string(i), StationKind::kQueueing});
  for (int i = 0; i < 2 * k * k; ++i)
    stations.push_back({"sw" + std::to_string(i), StationKind::kQueueing});
  ClosedNetwork net(stations, 1);
  net.set_population(0, population);
  net.set_visit_ratio(0, 0, 1.0);
  net.set_service_time(0, 0, 10.0);
  const double q = 1.0 / static_cast<double>(k * k);
  for (int i = 0; i < k * k; ++i) {
    net.set_visit_ratio(0, 1 + static_cast<std::size_t>(i), q);
    net.set_service_time(0, 1 + static_cast<std::size_t>(i), 10.0);
  }
  for (int i = 0; i < 2 * k * k; ++i) {
    const std::size_t m = 1 + static_cast<std::size_t>(k * k + i);
    net.set_visit_ratio(0, m, q / 2.0);
    net.set_service_time(0, m, 10.0);
  }
  return net;
}

TEST(Fesc, RatesMatchExactMvaThroughputs) {
  const ClosedNetwork net = heterogeneous(1);
  const FescTable table = build_fesc(net, 6);
  ASSERT_EQ(table.max_population(), 6);
  for (long n = 1; n <= 6; ++n) {
    ClosedNetwork at_n = net;
    at_n.set_population(0, n);
    const MvaSolution exact = solve_mva_exact(at_n);
    EXPECT_NEAR(table.rate[static_cast<std::size_t>(n - 1)],
                exact.throughput[0], 1e-12)
        << "population " << n;
  }
}

TEST(Fesc, RatesAreMonotoneInPopulation) {
  const FescTable table = build_fesc(heterogeneous(1), 8);
  for (std::size_t n = 1; n < table.rate.size(); ++n)
    EXPECT_GE(table.rate[n], table.rate[n - 1] - 1e-12);
}

TEST(Fesc, MultiServerSubnetworkUsesAllServers) {
  // Exact MVA cannot referee multi-server stations, but the FESC table
  // must still reflect them: a two-server bank doubles the saturation
  // rate of a bank-bound subnetwork.
  ClosedNetwork sub({{"bank", StationKind::kQueueing, 2}}, 1);
  sub.set_population(0, 1);
  sub.set_visit_ratio(0, 0, 1.0);
  sub.set_service_time(0, 0, 2.0);
  const FescTable table = build_fesc(sub, 12);
  EXPECT_NEAR(table.rate[0], 0.5, 1e-9);  // one customer: one server
  // With both servers engaged the rate climbs well past the 1/D = 0.5
  // single-server ceiling toward m/D = 1 (Seidmann approaches it from
  // below, so we bound rather than pin the asymptote).
  EXPECT_GT(table.rate[11], 0.9);
  EXPECT_LE(table.rate[11], 1.0 + 1e-12);
  for (std::size_t n = 1; n < table.rate.size(); ++n)
    EXPECT_GE(table.rate[n], table.rate[n - 1] - 1e-12);
}

TEST(Fesc, TwoLevelMatchesFullSolveOnHeterogeneousNetwork) {
  for (long population : {1L, 2L, 5L, 8L}) {
    const ClosedNetwork net = heterogeneous(population);
    // Collapse the two storage stations; keep think + switch up top.
    const std::vector<bool> sub = {false, true, true, false};
    const TwoLevelSolution two = solve_two_level(net, sub);
    const MvaSolution full = solve_mva_exact(net);
    EXPECT_NEAR(two.throughput, full.throughput[0], 1e-9)
        << "population " << population;
    for (std::size_t m = 0; m < net.num_stations(); ++m) {
      EXPECT_NEAR(two.waiting[m], full.waiting(0, m), 1e-8)
          << "station " << m << " population " << population;
      EXPECT_NEAR(two.queue[m], full.queue_length(0, m), 1e-8)
          << "station " << m << " population " << population;
    }
  }
}

TEST(Fesc, TwoLevelMatchesFullSolveOnPaperSizedLattice) {
  // Acceptance criterion: FESC two-level matches the full closed solve
  // within 1e-6 on paper-sized lattices (k = 4 -> 49 stations, n_t = 8).
  for (int k : {2, 4}) {
    const ClosedNetwork net = lattice(k, 8);
    std::vector<bool> sub(net.num_stations(), true);
    sub[0] = false;  // processor stays in the high-level model
    const TwoLevelSolution two = solve_two_level(net, sub);
    const MvaSolution full = solve_mva_exact(net);
    EXPECT_NEAR(two.throughput, full.throughput[0], 1e-6) << "k " << k;
    for (std::size_t m = 0; m < net.num_stations(); ++m)
      EXPECT_NEAR(two.queue[m], full.queue_length(0, m), 1e-6)
          << "k " << k << " station " << m;
  }
}

TEST(Fesc, MarginalDistributionIsProper) {
  const ClosedNetwork net = heterogeneous(6);
  const TwoLevelSolution two =
      solve_two_level(net, {false, true, true, false});
  ASSERT_EQ(two.marginal.size(), 7u);  // populations 0..6
  double sum = 0.0;
  double mean = 0.0;
  for (std::size_t j = 0; j < two.marginal.size(); ++j) {
    EXPECT_GE(two.marginal[j], -1e-15);
    sum += two.marginal[j];
    mean += static_cast<double>(j) * two.marginal[j];
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // The mean subnetwork population equals the queue mass inside it.
  EXPECT_NEAR(mean, two.queue[1] + two.queue[2], 1e-9);
}

TEST(Fesc, TwoLevelSatisfiesLittlesLaw) {
  const ClosedNetwork net = heterogeneous(5);
  const TwoLevelSolution two =
      solve_two_level(net, {false, false, true, true});
  double cycle = 0.0;
  for (std::size_t m = 0; m < net.num_stations(); ++m)
    cycle += net.visit_ratio(0, m) * two.waiting[m];
  EXPECT_NEAR(two.throughput * cycle, 5.0, 1e-9);
}

TEST(Fesc, RejectsMultiClassNetworks) {
  ClosedNetwork net({{"a", StationKind::kQueueing}}, 2);
  net.set_population(0, 1);
  net.set_population(1, 1);
  for (std::size_t c = 0; c < 2; ++c) {
    net.set_visit_ratio(c, 0, 1.0);
    net.set_service_time(c, 0, 1.0);
  }
  EXPECT_THROW((void)build_fesc(net, 2), InvalidArgument);
  EXPECT_THROW((void)solve_two_level(net, {true}), InvalidArgument);
}

TEST(Fesc, RejectsDegeneratePartitions) {
  const ClosedNetwork net = heterogeneous(3);
  EXPECT_THROW((void)solve_two_level(net, {false, false, false, false}),
               InvalidArgument);
  EXPECT_THROW((void)solve_two_level(net, {true, true, true, true}),
               InvalidArgument);
  EXPECT_THROW((void)solve_two_level(net, {true, true}), InvalidArgument);
}

TEST(Fesc, RejectsNonPositivePopulationTable) {
  EXPECT_THROW((void)build_fesc(heterogeneous(1), 0), InvalidArgument);
}

}  // namespace
}  // namespace latol::qn
