#include "qn/convolution.hpp"

#include <gtest/gtest.h>

#include "qn/mva_exact.hpp"
#include "util/error.hpp"

namespace latol::qn {
namespace {

ClosedNetwork make_net(long n, const std::vector<double>& demands,
                       const std::vector<StationKind>& kinds) {
  std::vector<Station> stations;
  for (std::size_t i = 0; i < demands.size(); ++i)
    stations.push_back({"s" + std::to_string(i), kinds[i]});
  ClosedNetwork net(std::move(stations), 1);
  net.set_population(0, n);
  for (std::size_t i = 0; i < demands.size(); ++i) {
    net.set_visit_ratio(0, i, 1.0);
    net.set_service_time(0, i, demands[i]);
  }
  return net;
}

TEST(Convolution, RejectsMultiClass) {
  ClosedNetwork net({{"s", StationKind::kQueueing}}, 2);
  net.set_population(0, 1);
  net.set_visit_ratio(0, 0, 1.0);
  net.set_service_time(0, 0, 1.0);
  EXPECT_THROW(solve_convolution(net), InvalidArgument);
}

TEST(Convolution, MatchesExactMvaOnQueueingNetworks) {
  for (const long n : {1L, 2L, 5L, 12L}) {
    const auto net = make_net(
        n, {5.0, 3.0, 1.0},
        {StationKind::kQueueing, StationKind::kQueueing,
         StationKind::kQueueing});
    const auto conv = solve_convolution(net).measures;
    const auto exact = solve_mva_exact(net);
    EXPECT_NEAR(conv.throughput[0], exact.throughput[0], 1e-10) << "N=" << n;
    for (std::size_t m = 0; m < 3; ++m) {
      EXPECT_NEAR(conv.queue_length(0, m), exact.queue_length(0, m), 1e-8);
      EXPECT_NEAR(conv.utilization[m], exact.utilization[m], 1e-10);
    }
  }
}

TEST(Convolution, MatchesExactMvaWithDelayStation) {
  const auto net = make_net(7, {40.0, 2.0, 3.0},
                            {StationKind::kDelay, StationKind::kQueueing,
                             StationKind::kQueueing});
  const auto conv = solve_convolution(net).measures;
  const auto exact = solve_mva_exact(net);
  EXPECT_NEAR(conv.throughput[0], exact.throughput[0], 1e-10);
  for (std::size_t m = 0; m < 3; ++m)
    EXPECT_NEAR(conv.queue_length(0, m), exact.queue_length(0, m), 1e-7);
}

TEST(Convolution, NormalizationConstantsArePositiveAndGrow) {
  const auto net = make_net(6, {2.0, 2.0},
                            {StationKind::kQueueing, StationKind::kQueueing});
  const auto sol = solve_convolution(net);
  ASSERT_EQ(sol.normalization.size(), 7u);
  for (const double g : sol.normalization) EXPECT_GT(g, 0.0);
}

TEST(Convolution, LargePopulationDoesNotOverflow) {
  // Unscaled G(n) with demand 10 would reach 10^500; the internal rescale
  // must keep everything finite.
  const auto net = make_net(500, {10.0, 9.0},
                            {StationKind::kQueueing, StationKind::kQueueing});
  const auto sol = solve_convolution(net);
  EXPECT_TRUE(std::isfinite(sol.measures.throughput[0]));
  // Bottleneck law at huge population: throughput -> 1 / D_max.
  EXPECT_NEAR(sol.measures.throughput[0], 1.0 / 10.0, 1e-6);
}

TEST(Convolution, VisitRatiosScaleConsistently) {
  // Doubling a visit ratio while halving service leaves demand unchanged;
  // throughput (per cycle) must be identical.
  auto a = make_net(4, {6.0, 3.0},
                    {StationKind::kQueueing, StationKind::kQueueing});
  auto b = a;
  b.set_visit_ratio(0, 1, 2.0);
  b.set_service_time(0, 1, 1.5);
  EXPECT_NEAR(solve_convolution(a).measures.throughput[0],
              solve_convolution(b).measures.throughput[0], 1e-10);
}

TEST(Convolution, ZeroPopulationYieldsZeroThroughput) {
  auto net = make_net(1, {1.0}, {StationKind::kQueueing});
  net.set_population(0, 0);
  EXPECT_THROW(solve_convolution(net), InvalidArgument);  // validate()
}

}  // namespace
}  // namespace latol::qn
