#include "qn/open/jackson.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "qn/open/mixed.hpp"
#include "qn/open/open_network.hpp"
#include "qn/robust.hpp"
#include "qn/solver_error.hpp"
#include "util/error.hpp"

namespace latol::qn {
namespace {

OpenNetwork single_station(double lambda, double service, int servers = 1) {
  OpenNetwork net({{"q", StationKind::kQueueing, servers}}, 1);
  net.set_arrival_rate(0, lambda);
  net.set_visit_ratio(0, 0, 1.0);
  net.set_service_time(0, 0, service);
  return net;
}

TEST(OpenJackson, MM1MatchesClosedForm) {
  // M/M/1 at rho = 0.5: W = s / (1 - rho) = 2, L = rho / (1 - rho) = 1.
  const OpenSolution sol = solve_jackson(single_station(0.5, 1.0));
  EXPECT_NEAR(sol.waiting(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(sol.queue_length(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(sol.utilization[0], 0.5, 1e-12);
  EXPECT_NEAR(sol.offered_load[0], 0.5, 1e-12);
  EXPECT_NEAR(sol.response_time[0], 2.0, 1e-12);
}

TEST(OpenJackson, ErlangCKnownValues) {
  // One server: the waiting probability is the utilization itself.
  EXPECT_NEAR(erlang_c(1, 0.3), 0.3, 1e-12);
  EXPECT_NEAR(erlang_c(1, 0.9), 0.9, 1e-12);
  // M/M/2 with a = 1 (rho = 0.5): the textbook value is 1/3.
  EXPECT_NEAR(erlang_c(2, 1.0), 1.0 / 3.0, 1e-12);
  // No load never waits.
  EXPECT_NEAR(erlang_c(4, 0.0), 0.0, 1e-12);
}

TEST(OpenJackson, MM2MatchesClosedForm) {
  // M/M/2, lambda = 1, s = 1: Wq = C / (m/s - lambda) = (1/3) / 1.
  const OpenSolution sol = solve_jackson(single_station(1.0, 1.0, 2));
  EXPECT_NEAR(sol.waiting(0, 0), 1.0 + 1.0 / 3.0, 1e-12);
  // Busy-server count is the offered work a = 1; per-server load is 0.5.
  EXPECT_NEAR(sol.utilization[0], 1.0, 1e-12);
  EXPECT_NEAR(sol.offered_load[0], 0.5, 1e-12);
}

TEST(OpenJackson, DelayStationNeverQueues) {
  OpenNetwork net({{"think", StationKind::kDelay}}, 1);
  net.set_arrival_rate(0, 5.0);  // far beyond what a queue could absorb
  net.set_visit_ratio(0, 0, 1.0);
  net.set_service_time(0, 0, 3.0);
  const OpenSolution sol = solve_jackson(net);
  EXPECT_NEAR(sol.waiting(0, 0), 3.0, 1e-12);
  EXPECT_NEAR(sol.queue_length(0, 0), 15.0, 1e-12);  // Little's law
}

TEST(OpenJackson, TandemChainSumsResidences) {
  // Three M/M/1 queues in series at rho = 0.5 each: response = 3 x 2.
  OpenNetwork net({{"a", StationKind::kQueueing},
                   {"b", StationKind::kQueueing},
                   {"c", StationKind::kQueueing}},
                  1);
  net.set_arrival_rate(0, 0.5);
  net.set_entry(0, 0, 1.0);
  net.set_routing(0, 0, 1, 1.0);
  net.set_routing(0, 1, 2, 1.0);
  for (std::size_t m = 0; m < 3; ++m) net.set_service_time(0, m, 1.0);
  net.solve_traffic_equations();
  EXPECT_NEAR(net.visit_ratio(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(net.visit_ratio(0, 2), 1.0, 1e-12);
  const OpenSolution sol = solve_jackson(net);
  EXPECT_NEAR(sol.response_time[0], 6.0, 1e-12);
}

TEST(OpenJackson, FeedbackLoopInflatesVisits) {
  // Departures return with probability 1/2: v = 1 / (1 - 1/2) = 2.
  OpenNetwork net({{"q", StationKind::kQueueing}}, 1);
  net.set_arrival_rate(0, 0.25);
  net.set_entry(0, 0, 1.0);
  net.set_routing(0, 0, 0, 0.5);
  net.set_service_time(0, 0, 1.0);
  net.solve_traffic_equations();
  EXPECT_NEAR(net.visit_ratio(0, 0), 2.0, 1e-12);
  // Effective station arrival rate 0.5: identical to the direct M/M/1.
  const OpenSolution sol = solve_jackson(net);
  EXPECT_NEAR(sol.waiting(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(sol.response_time[0], 4.0, 1e-12);  // two visits on average
}

TEST(OpenJackson, MultiClassLoadsAggregate) {
  OpenNetwork net({{"q", StationKind::kQueueing}}, 2);
  for (std::size_t c = 0; c < 2; ++c) {
    net.set_arrival_rate(c, 0.25);
    net.set_visit_ratio(c, 0, 1.0);
    net.set_service_time(c, 0, 1.0);
  }
  const OpenSolution sol = solve_jackson(net);
  EXPECT_NEAR(sol.offered_load[0], 0.5, 1e-12);
  // Each class sees the same M/M/1 shaped by the aggregate load.
  EXPECT_NEAR(sol.waiting(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(sol.waiting(1, 0), 2.0, 1e-12);
}

TEST(OpenJackson, SaturatedStationThrowsUnstable) {
  try {
    (void)solve_jackson(single_station(1.2, 1.0));
    FAIL() << "expected SolverError";
  } catch (const SolverError& e) {
    EXPECT_EQ(e.code(), SolverErrorCode::kUnstable);
    EXPECT_NE(std::string(e.what()).find("q"), std::string::npos);
  }
}

TEST(OpenJackson, BoundaryLoadOfOneIsUnstable) {
  EXPECT_THROW((void)solve_jackson(single_station(1.0, 1.0)), SolverError);
}

TEST(OpenNetworkValidation, RejectsBadArrivalRates) {
  OpenNetwork net({{"q", StationKind::kQueueing}}, 1);
  EXPECT_THROW(net.set_arrival_rate(0, -0.1), InvalidArgument);
  EXPECT_THROW(
      net.set_arrival_rate(0, std::numeric_limits<double>::quiet_NaN()),
      InvalidArgument);
  EXPECT_THROW(
      net.set_arrival_rate(0, std::numeric_limits<double>::infinity()),
      InvalidArgument);
}

TEST(OpenNetworkValidation, RejectsAllZeroArrivals) {
  OpenNetwork net({{"q", StationKind::kQueueing}}, 1);
  net.set_visit_ratio(0, 0, 1.0);
  net.set_service_time(0, 0, 1.0);
  EXPECT_THROW(net.validate(), InvalidArgument);
}

TEST(OpenNetworkValidation, TrafficEquationsRejectTrappedRouting) {
  // 0 -> 1 -> 0 forever: no station can reach the sink.
  OpenNetwork net({{"a", StationKind::kQueueing},
                   {"b", StationKind::kQueueing}},
                  1);
  net.set_arrival_rate(0, 0.1);
  net.set_entry(0, 0, 1.0);
  net.set_routing(0, 0, 1, 1.0);
  net.set_routing(0, 1, 0, 1.0);
  net.set_service_time(0, 0, 1.0);
  net.set_service_time(0, 1, 1.0);
  try {
    net.solve_traffic_equations();
    FAIL() << "expected SolverError";
  } catch (const SolverError& e) {
    EXPECT_EQ(e.code(), SolverErrorCode::kInvalidNetwork);
  }
}

TEST(OpenNetworkValidation, TrafficEquationsRejectMissingEntry) {
  OpenNetwork net({{"a", StationKind::kQueueing}}, 1);
  net.set_arrival_rate(0, 0.1);
  net.set_routing(0, 0, 0, 0.0);  // routing storage without an entry row
  net.set_service_time(0, 0, 1.0);
  EXPECT_THROW(net.solve_traffic_equations(), SolverError);
}

// --- mixed open/closed -----------------------------------------------------

/// A closed interactive class (think delay + one queueing station) sharing
/// the queue with an open stream.
struct MixedFixture {
  ClosedNetwork closed;
  OpenNetwork open;

  explicit MixedFixture(double open_rate, long population = 4)
      : closed({{"think", StationKind::kDelay}, {"disk", StationKind::kQueueing}},
               1),
        open({{"think", StationKind::kDelay}, {"disk", StationKind::kQueueing}},
             1) {
    closed.set_population(0, population);
    closed.set_visit_ratio(0, 0, 1.0);
    closed.set_visit_ratio(0, 1, 1.0);
    closed.set_service_time(0, 0, 5.0);
    closed.set_service_time(0, 1, 1.0);
    open.set_arrival_rate(0, open_rate);
    open.set_visit_ratio(0, 1, 1.0);
    open.set_service_time(0, 1, 1.0);
  }
};

TEST(MixedBcmp, OpenTrafficSlowsClosedClass) {
  MixedFixture with(0.4);
  const MixedReport mixed = solve_mixed(with.closed, with.open);
  ASSERT_TRUE(mixed.ok());
  const SolveReport alone = robust_solve(with.closed);
  ASSERT_TRUE(alone.ok());
  // Closed throughput must drop; the inflated service is 1 / (1 - 0.4).
  EXPECT_LT(mixed.closed.solution.throughput[0],
            alone.solution.throughput[0]);
  EXPECT_NEAR(mixed.inflated.service_time(0, 1), 1.0 / 0.6, 1e-12);
  // Delay service must NOT be inflated.
  EXPECT_NEAR(mixed.inflated.service_time(0, 0), 5.0, 1e-12);
}

TEST(MixedBcmp, OpenWaitMatchesExactSingleServerFormula) {
  MixedFixture f(0.4);
  const MixedReport mixed = solve_mixed(f.closed, f.open);
  ASSERT_TRUE(mixed.ok());
  // W_open = s (1 + N_closed) / (1 - rho_open) at a single server.
  const double n_closed = mixed.closed.solution.queue_length(0, 1);
  EXPECT_NEAR(mixed.open.waiting(0, 1), (1.0 + n_closed) / 0.6, 1e-9);
  EXPECT_NEAR(mixed.open.response_time[0], mixed.open.waiting(0, 1), 1e-12);
}

TEST(MixedBcmp, TotalUtilizationCombinesBothWorlds) {
  MixedFixture f(0.4);
  const MixedReport mixed = solve_mixed(f.closed, f.open);
  ASSERT_TRUE(mixed.ok());
  const double closed_busy = mixed.closed.solution.throughput[0] * 1.0;
  EXPECT_NEAR(mixed.total_utilization[1], closed_busy + 0.4, 1e-9);
  EXPECT_LE(mixed.total_utilization[1], 1.0 + 1e-12);
}

TEST(MixedBcmp, OpenSaturationThrowsUnstable) {
  MixedFixture f(1.1);
  try {
    (void)solve_mixed(f.closed, f.open);
    FAIL() << "expected SolverError";
  } catch (const SolverError& e) {
    EXPECT_EQ(e.code(), SolverErrorCode::kUnstable);
  }
}

TEST(MixedBcmp, StationMismatchRejected) {
  MixedFixture f(0.2);
  OpenNetwork other({{"think", StationKind::kDelay},
                     {"disk", StationKind::kQueueing, 2}},
                    1);
  other.set_arrival_rate(0, 0.2);
  other.set_visit_ratio(0, 1, 1.0);
  other.set_service_time(0, 1, 1.0);
  EXPECT_THROW((void)solve_mixed(f.closed, other), InvalidArgument);
}

}  // namespace
}  // namespace latol::qn
