// Numerical robustness: the solvers must stay finite, bounded, and
// convergent under extreme-but-legal parameter ratios.
#include <gtest/gtest.h>

#include <cmath>

#include "qn/bounds.hpp"
#include "qn/mva_approx.hpp"
#include "qn/mva_linearizer.hpp"

namespace latol::qn {
namespace {

ClosedNetwork cyclic(long n, double d0, double d1) {
  ClosedNetwork net({{"a", StationKind::kQueueing},
                     {"b", StationKind::kQueueing}},
                    1);
  net.set_population(0, n);
  net.set_visit_ratio(0, 0, 1.0);
  net.set_visit_ratio(0, 1, 1.0);
  net.set_service_time(0, 0, d0);
  net.set_service_time(0, 1, d1);
  return net;
}

class ExtremeRatios
    : public ::testing::TestWithParam<std::tuple<long, double>> {};

TEST_P(ExtremeRatios, AmvaStaysFiniteAndBounded) {
  const auto [n, ratio] = GetParam();
  const auto net = cyclic(n, 1.0, ratio);
  const auto sol = solve_amva(net);
  EXPECT_TRUE(sol.converged);
  EXPECT_TRUE(std::isfinite(sol.throughput[0]));
  EXPECT_LE(sol.throughput[0], asymptotic_throughput_bound(net, 0) + 1e-12);
  EXPECT_GE(sol.throughput[0],
            pessimistic_throughput_bound(net, 0) - 1e-12);
  EXPECT_NEAR(sol.station_queue(0) + sol.station_queue(1),
              static_cast<double>(n), 1e-6 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(
    Ratios, ExtremeRatios,
    ::testing::Combine(::testing::Values(1L, 10L, 1000L),
                       ::testing::Values(1e-9, 1e-3, 1.0, 1e3, 1e9)));

TEST(Robustness, HugePopulationReachesBottleneckThroughput) {
  const auto net = cyclic(100000, 1.0, 5.0);
  const auto sol = solve_amva(net);
  EXPECT_TRUE(sol.converged);
  EXPECT_NEAR(sol.throughput[0], 1.0 / 5.0, 1e-6);
}

TEST(Robustness, ZeroServiceStationIsTransparent) {
  // A station with zero service time adds no residence and no queue.
  const auto net = cyclic(5, 10.0, 0.0);
  const auto sol = solve_amva(net);
  EXPECT_NEAR(sol.throughput[0], 5.0 / (5.0 * 10.0), 0.02);
  EXPECT_NEAR(sol.queue_length(0, 1), 0.0, 1e-9);
}

TEST(Robustness, ManyClassesManyStationsConverges) {
  // A 32-class, 64-station network (MmsModel-scale) with mixed demands.
  const std::size_t C = 32, M = 64;
  std::vector<Station> stations;
  for (std::size_t m = 0; m < M; ++m)
    stations.push_back({"s" + std::to_string(m), StationKind::kQueueing});
  ClosedNetwork net(std::move(stations), C);
  for (std::size_t c = 0; c < C; ++c) {
    net.set_population(c, 4);
    for (std::size_t m = 0; m < M; ++m) {
      // Each class visits a pseudo-random quarter of the stations.
      if ((c * 7 + m * 13) % 4 == 0) {
        net.set_visit_ratio(c, m, 1.0);
        net.set_service_time(c, m, 1.0 + static_cast<double>(m % 5));
      }
    }
  }
  const auto sol = solve_amva(net);
  EXPECT_TRUE(sol.converged);
  double total = 0.0;
  for (std::size_t m = 0; m < M; ++m) total += sol.station_queue(m);
  EXPECT_NEAR(total, 4.0 * C, 1e-4);
}

TEST(Robustness, LinearizerHandlesExtremeRatios) {
  const auto net = cyclic(10, 1.0, 1e6);
  const auto sol = solve_linearizer(net);
  EXPECT_TRUE(std::isfinite(sol.throughput[0]));
  EXPECT_NEAR(sol.throughput[0], 1.0 / 1e6, 1e-9);
}

}  // namespace
}  // namespace latol::qn
