#include "qn/mva_linearizer.hpp"

#include <gtest/gtest.h>

#include "qn/mva_approx.hpp"
#include "qn/mva_exact.hpp"
#include "util/error.hpp"

namespace latol::qn {
namespace {

ClosedNetwork cyclic(long n, const std::vector<double>& demands) {
  std::vector<Station> stations;
  for (std::size_t i = 0; i < demands.size(); ++i)
    stations.push_back({"s" + std::to_string(i), StationKind::kQueueing});
  ClosedNetwork net(std::move(stations), 1);
  net.set_population(0, n);
  for (std::size_t i = 0; i < demands.size(); ++i) {
    net.set_visit_ratio(0, i, 1.0);
    net.set_service_time(0, i, demands[i]);
  }
  return net;
}

ClosedNetwork two_class_shared(long n0, long n1, double r0, double r1,
                               double mem) {
  ClosedNetwork net({{"p0", StationKind::kQueueing},
                     {"p1", StationKind::kQueueing},
                     {"mem", StationKind::kQueueing}},
                    2);
  net.set_population(0, n0);
  net.set_population(1, n1);
  net.set_visit_ratio(0, 0, 1.0);
  net.set_visit_ratio(1, 1, 1.0);
  net.set_visit_ratio(0, 2, 1.0);
  net.set_visit_ratio(1, 2, 1.0);
  net.set_service_time(0, 0, r0);
  net.set_service_time(1, 1, r1);
  net.set_service_time(0, 2, mem);
  net.set_service_time(1, 2, mem);
  return net;
}

TEST(Linearizer, ExactForSingleCustomer) {
  const auto net = cyclic(1, {3.0, 7.0});
  EXPECT_NEAR(solve_linearizer(net).throughput[0],
              solve_mva_exact(net).throughput[0], 1e-9);
}

TEST(Linearizer, MoreAccurateThanSchweitzerSingleClass) {
  for (const long n : {3L, 6L, 12L}) {
    const auto net = cyclic(n, {10.0, 3.0, 1.0});
    const double exact = solve_mva_exact(net).throughput[0];
    const double lin = solve_linearizer(net).throughput[0];
    const double schw = solve_amva(net).throughput[0];
    EXPECT_LE(std::fabs(lin - exact), std::fabs(schw - exact) + 1e-12)
        << "N=" << n;
    EXPECT_NEAR(lin, exact, 0.01 * exact) << "N=" << n;
  }
}

TEST(Linearizer, MoreAccurateThanSchweitzerMultiClass) {
  const auto net = two_class_shared(6, 2, 8.0, 3.0, 4.0);
  const auto exact = solve_mva_exact(net);
  const auto lin = solve_linearizer(net);
  const auto schw = solve_amva(net);
  for (std::size_t c = 0; c < 2; ++c) {
    const double e = exact.throughput[c];
    EXPECT_LE(std::fabs(lin.throughput[c] - e),
              std::fabs(schw.throughput[c] - e) + 1e-12)
        << "class " << c;
    EXPECT_NEAR(lin.throughput[c], e, 0.02 * e);
  }
}

TEST(Linearizer, PopulationConserved) {
  const auto net = two_class_shared(4, 4, 10.0, 10.0, 6.0);
  const auto sol = solve_linearizer(net);
  double total = 0.0;
  for (std::size_t m = 0; m < 3; ++m) total += sol.station_queue(m);
  EXPECT_NEAR(total, 8.0, 1e-6);
}

TEST(Linearizer, HandlesZeroPopulationClass) {
  auto net = two_class_shared(3, 0, 5.0, 5.0, 2.0);
  const auto sol = solve_linearizer(net);
  EXPECT_EQ(sol.throughput[1], 0.0);
  EXPECT_GT(sol.throughput[0], 0.0);
}

TEST(Linearizer, AgreesWithSchweitzerOnMmsScaleNetwork) {
  // Sanity: on a well-behaved symmetric network the two approximations
  // land close together (and Linearizer is the better one).
  ClosedNetwork net({{"p0", StationKind::kQueueing},
                     {"p1", StationKind::kQueueing},
                     {"p2", StationKind::kQueueing},
                     {"mem", StationKind::kQueueing}},
                    3);
  for (std::size_t c = 0; c < 3; ++c) {
    net.set_population(c, 5);
    net.set_visit_ratio(c, c, 1.0);
    net.set_visit_ratio(c, 3, 1.0);
    net.set_service_time(c, c, 10.0);
    net.set_service_time(c, 3, 3.0);
  }
  const auto lin = solve_linearizer(net);
  const auto schw = solve_amva(net);
  EXPECT_NEAR(lin.throughput[0], schw.throughput[0],
              0.05 * schw.throughput[0]);
  EXPECT_NEAR(lin.throughput[0], lin.throughput[2], 1e-8);
}

TEST(Linearizer, ValidatesOptions) {
  const auto net = cyclic(2, {1.0, 1.0});
  LinearizerOptions bad;
  bad.outer_iterations = 0;
  EXPECT_THROW((void)solve_linearizer(net, bad), InvalidArgument);
}

}  // namespace
}  // namespace latol::qn
