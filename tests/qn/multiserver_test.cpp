// Multi-server stations: the CTMC solver handles them exactly, the MVA
// approximations use the Seidmann transformation; exact MVA and
// convolution refuse them (their exactness contract would be violated).
#include <gtest/gtest.h>

#include "qn/convolution.hpp"
#include "qn/ctmc.hpp"
#include "qn/mva_approx.hpp"
#include "qn/mva_exact.hpp"
#include "qn/mva_linearizer.hpp"
#include "util/error.hpp"

namespace latol::qn {
namespace {

/// Cyclic closed network: single-server "cpu" feeding an m-server "mem".
struct Fixture {
  ClosedNetwork net;
  RoutedClosedNetwork routed;
};

Fixture cyclic_multiserver(long n, double cpu, double mem, int servers) {
  ClosedNetwork net({{"cpu", StationKind::kQueueing, 1},
                     {"mem", StationKind::kQueueing, servers}},
                    1);
  net.set_population(0, n);
  net.set_visit_ratio(0, 0, 1.0);
  net.set_visit_ratio(0, 1, 1.0);
  net.set_service_time(0, 0, cpu);
  net.set_service_time(0, 1, mem);
  RoutedClosedNetwork routed;
  util::Matrix p(2, 2);
  p(0, 1) = 1.0;
  p(1, 0) = 1.0;
  routed.routing = {p};
  routed.reference_station = {0};
  return {std::move(net), std::move(routed)};
}

TEST(MultiServer, StationValidatesServerCount) {
  EXPECT_THROW(ClosedNetwork({{"bad", StationKind::kQueueing, 0}}, 1),
               InvalidArgument);
}

TEST(MultiServer, ExactSolversRefuse) {
  const auto fx = cyclic_multiserver(4, 5.0, 10.0, 2);
  EXPECT_THROW((void)solve_mva_exact(fx.net), InvalidArgument);
  EXPECT_THROW((void)solve_convolution(fx.net), InvalidArgument);
}

TEST(MultiServer, CtmcMatchesSingleServerWhenPortsEqualOne) {
  const auto fx = cyclic_multiserver(4, 5.0, 10.0, 1);
  const auto ctmc = solve_ctmc(fx.net, fx.routed);
  const auto exact = solve_mva_exact(fx.net);
  EXPECT_NEAR(ctmc.throughput[0], exact.throughput[0], 1e-9);
}

TEST(MultiServer, MorePortsIncreaseThroughput) {
  double prev = 0.0;
  for (const int servers : {1, 2, 4}) {
    const auto fx = cyclic_multiserver(6, 5.0, 10.0, servers);
    const auto sol = solve_ctmc(fx.net, fx.routed);
    EXPECT_GT(sol.throughput[0], prev) << servers << " servers";
    prev = sol.throughput[0];
  }
  // With many ports the memory stops queueing entirely: the cycle time
  // approaches the cpu-bound M/M/1-with-think-time limit.
  const auto fx = cyclic_multiserver(6, 5.0, 10.0, 6);
  ClosedNetwork delay_net({{"cpu", StationKind::kQueueing, 1},
                           {"mem", StationKind::kDelay, 1}},
                          1);
  delay_net.set_population(0, 6);
  delay_net.set_visit_ratio(0, 0, 1.0);
  delay_net.set_visit_ratio(0, 1, 1.0);
  delay_net.set_service_time(0, 0, 5.0);
  delay_net.set_service_time(0, 1, 10.0);
  EXPECT_NEAR(solve_ctmc(fx.net, fx.routed).throughput[0],
              solve_mva_exact(delay_net).throughput[0], 1e-9);
}

TEST(MultiServer, SeidmannAmvaTracksCtmcWithinTwentyPercent) {
  // The Seidmann transformation is pessimistic when the population is
  // comparable to the server count (it charges the fixed s(m-1)/m delay
  // even when the station never queues): ~17% low at N = servers = 2,
  // shrinking as N grows. The CTMC carries exactness; Seidmann is the
  // documented approximation for large-machine sweeps.
  for (const int servers : {2, 3}) {
    for (const long n : {2L, 4L, 8L}) {
      const auto fx = cyclic_multiserver(n, 5.0, 10.0, servers);
      const double truth = solve_ctmc(fx.net, fx.routed).throughput[0];
      const double approx = solve_amva(fx.net).throughput[0];
      EXPECT_NEAR(approx, truth, 0.20 * truth)
          << "servers=" << servers << " N=" << n;
      EXPECT_LE(approx, truth + 1e-9) << "Seidmann is pessimistic";
    }
  }
}

TEST(MultiServer, SeidmannErrorShrinksWithPopulation) {
  auto rel_err = [](long n) {
    const auto fx = cyclic_multiserver(n, 5.0, 10.0, 2);
    const double truth = solve_ctmc(fx.net, fx.routed).throughput[0];
    return std::fabs(solve_amva(fx.net).throughput[0] - truth) / truth;
  };
  EXPECT_LT(rel_err(12), rel_err(2));
}

TEST(MultiServer, SeidmannLinearizerTracksCtmc) {
  const auto fx = cyclic_multiserver(6, 5.0, 10.0, 2);
  const double truth = solve_ctmc(fx.net, fx.routed).throughput[0];
  const double lin = solve_linearizer(fx.net).throughput[0];
  EXPECT_NEAR(lin, truth, 0.15 * truth);
}

TEST(MultiServer, UtilizationLawUsesAllServers) {
  // Utilization reported by the CTMC is P(station busy); with multiple
  // servers the utilization *law* (lambda x D) can exceed it but never
  // exceed the server count.
  const auto fx = cyclic_multiserver(8, 2.0, 10.0, 2);
  const auto sol = solve_ctmc(fx.net, fx.routed);
  EXPECT_LE(sol.throughput[0] * 10.0, 2.0 + 1e-9);
  EXPECT_GT(sol.throughput[0] * 10.0, 1.0);  // needs both servers
}

}  // namespace
}  // namespace latol::qn
