// Bit-identity contracts of the flat-workspace solver kernels
// (DESIGN.md §10): the explicit-workspace overloads, workspace reuse
// across different networks, and the parallel exact-MVA lattice must all
// reproduce the default serial paths byte-for-byte, not just within
// tolerance.
#include <gtest/gtest.h>

#include <vector>

#include "qn/mva_approx.hpp"
#include "qn/mva_exact.hpp"
#include "qn/mva_linearizer.hpp"
#include "qn/network.hpp"
#include "qn/workspace.hpp"

namespace latol::qn {
namespace {

// Exact double equality across every solution field. EXPECT_EQ on doubles
// is deliberate: the whole point is bitwise reproducibility.
void expect_bitwise_equal(const MvaSolution& a, const MvaSolution& b) {
  EXPECT_EQ(a.throughput, b.throughput);
  EXPECT_EQ(a.waiting.data(), b.waiting.data());
  EXPECT_EQ(a.queue_length.data(), b.queue_length.data());
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.converged, b.converged);
}

ClosedNetwork two_class_network(long population) {
  ClosedNetwork net({{"p0", StationKind::kQueueing},
                     {"p1", StationKind::kQueueing},
                     {"mem", StationKind::kQueueing}},
                    2);
  for (std::size_t c = 0; c < 2; ++c) {
    net.set_population(c, population);
    net.set_visit_ratio(c, c, 1.0);
    net.set_visit_ratio(c, 2, 1.0);
    net.set_service_time(c, c, 10.0);
    net.set_service_time(c, 2, 5.0);
  }
  return net;
}

ClosedNetwork delay_heavy_network() {
  ClosedNetwork net({{"cpu", StationKind::kQueueing},
                     {"think", StationKind::kDelay},
                     {"disk", StationKind::kQueueing}},
                    1);
  net.set_population(0, 12);
  net.set_visit_ratio(0, 0, 1.0);
  net.set_visit_ratio(0, 1, 1.0);
  net.set_visit_ratio(0, 2, 0.6);
  net.set_service_time(0, 0, 2.0);
  net.set_service_time(0, 1, 25.0);
  net.set_service_time(0, 2, 4.5);
  return net;
}

TEST(SolverWorkspace, AmvaExplicitWorkspaceMatchesDefaultBitwise) {
  const ClosedNetwork net = two_class_network(16);
  SolverWorkspace ws;
  expect_bitwise_equal(solve_amva(net, {}), solve_amva(net, {}, ws));
}

TEST(SolverWorkspace, LinearizerExplicitWorkspaceMatchesDefaultBitwise) {
  const ClosedNetwork net = two_class_network(8);
  SolverWorkspace ws;
  expect_bitwise_equal(solve_linearizer(net, {}),
                       solve_linearizer(net, {}, ws));
}

// One workspace re-bound across networks of different shapes must behave
// as if freshly constructed — stale state from a previous (larger) bind
// must not leak into the next solve.
TEST(SolverWorkspace, ReuseAcrossDifferentNetworksMatchesFresh) {
  const ClosedNetwork big = two_class_network(32);
  const ClosedNetwork small = delay_heavy_network();

  SolverWorkspace reused;
  (void)solve_amva(big, {}, reused);  // leave big-network residue behind
  const MvaSolution after_reuse = solve_amva(small, {}, reused);

  SolverWorkspace fresh;
  expect_bitwise_equal(solve_amva(small, {}, fresh), after_reuse);

  // And back up in size again.
  SolverWorkspace fresh_big;
  expect_bitwise_equal(solve_amva(big, {}, fresh_big),
                       solve_amva(big, {}, reused));
}

// The level-synchronous parallel lattice writes each population point into
// a disjoint row, so the result is bit-identical for every worker count
// and every stealing interleaving.
TEST(SolverWorkspace, ExactMvaParallelMatchesSerialBitwise) {
  const ClosedNetwork net = two_class_network(64);
  const MvaSolution serial = solve_mva_exact(net, 50'000'000, 1);
  expect_bitwise_equal(serial, solve_mva_exact(net, 50'000'000, 4));
  expect_bitwise_equal(serial, solve_mva_exact(net));  // shared pool
}

}  // namespace
}  // namespace latol::qn
