// Warm-start contract tests (qn/hints.hpp, DESIGN.md §15). The warm
// kernels promise three things the large-sweep engine builds on:
//   1. determinism — a warm solve is a pure function of (network,
//      options, hint), so identically-hinted solves are byte-identical;
//   2. accuracy — warm answers agree with cold answers to far better
//      than solver tolerance (and to a few ulps under a stagnation
//      budget);
//   3. savings — a lattice-neighbor (or extrapolated) hint cuts the
//      iteration count, by >= 1/3 on fine fig04-style axes.
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "qn/hints.hpp"
#include "qn/mva_approx.hpp"
#include "qn/mva_linearizer.hpp"
#include "qn/network.hpp"
#include "qn/robust.hpp"

namespace latol::qn {
namespace {

// Single-class central-server loop: processor + interconnect + memory,
// the fig04 shape in miniature. `mem_service` plays the p_remote axis.
ClosedNetwork central_server(long n, double mem_service) {
  ClosedNetwork net({{"cpu", StationKind::kQueueing},
                     {"net", StationKind::kDelay},
                     {"mem", StationKind::kQueueing}},
                    1);
  net.set_population(0, n);
  net.set_visit_ratio(0, 0, 1.0);
  net.set_service_time(0, 0, 5.0);
  net.set_visit_ratio(0, 1, 1.0);
  net.set_service_time(0, 1, 2.0);
  net.set_visit_ratio(0, 2, 1.0);
  net.set_service_time(0, 2, mem_service);
  return net;
}

// Two classes with private processors and a shared memory (the MMS
// multi-class structure).
ClosedNetwork two_class(long n0, long n1, double mem_service) {
  ClosedNetwork net({{"p0", StationKind::kQueueing},
                     {"p1", StationKind::kQueueing},
                     {"mem", StationKind::kQueueing}},
                    2);
  net.set_population(0, n0);
  net.set_population(1, n1);
  for (std::size_t c = 0; c < 2; ++c) {
    net.set_visit_ratio(c, c, 1.0);
    net.set_service_time(c, c, 4.0 + static_cast<double>(c));
    net.set_visit_ratio(c, 2, 1.0);
    net.set_service_time(c, 2, mem_service);
  }
  return net;
}

bool bits_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

::testing::AssertionResult same_bits(const MvaSolution& a,
                                     const MvaSolution& b) {
  if (!bits_equal(a.throughput, b.throughput))
    return ::testing::AssertionFailure() << "throughput bits differ";
  if (!bits_equal(a.waiting.data(), b.waiting.data()))
    return ::testing::AssertionFailure() << "waiting bits differ";
  if (!bits_equal(a.queue_length.data(), b.queue_length.data()))
    return ::testing::AssertionFailure() << "queue_length bits differ";
  if (!bits_equal(a.utilization, b.utilization))
    return ::testing::AssertionFailure() << "utilization bits differ";
  return ::testing::AssertionSuccess();
}

double max_rel_diff(const MvaSolution& a, const MvaSolution& b) {
  double worst = 0.0;
  for (std::size_t c = 0; c < a.throughput.size(); ++c) {
    const double denom = std::max(1e-300, std::fabs(b.throughput[c]));
    worst = std::max(worst,
                     std::fabs(a.throughput[c] - b.throughput[c]) / denom);
  }
  for (std::size_t i = 0; i < a.queue_length.data().size(); ++i) {
    const double denom = std::max(1.0, std::fabs(b.queue_length.data()[i]));
    worst = std::max(worst, std::fabs(a.queue_length.data()[i] -
                                      b.queue_length.data()[i]) /
                                denom);
  }
  return worst;
}

// Linear extrapolation along the sweep axis — the hint the batch runner
// feeds the solver (exp/runner.cpp): q ~ 2 q_prev - q_prev2, clamped.
MvaSolution extrapolate(const MvaSolution& p1, const MvaSolution& p2) {
  MvaSolution hint = p1;
  auto& d = hint.queue_length.data();
  const auto& d1 = p1.queue_length.data();
  const auto& d2 = p2.queue_length.data();
  for (std::size_t i = 0; i < d.size(); ++i)
    d[i] = std::max(0.0, 2.0 * d1[i] - d2[i]);
  return hint;
}

TEST(WarmStart, IdenticallyHintedSolvesAreByteIdentical) {
  // Determinism, the property the sweep engine's byte-identity rests on:
  // same network, same options, same hint => same bytes, every time.
  const auto net = central_server(16, 3.5);
  const auto prior = solve_amva(central_server(16, 3.4), {}, SolveHints{});
  SolveHints hints;
  hints.prior = &prior;
  const auto a = solve_amva(net, {}, hints);
  const auto b = solve_amva(net, {}, hints);
  EXPECT_TRUE(same_bits(a, b));

  const auto la = solve_linearizer(net, {}, hints);
  const auto lb = solve_linearizer(net, {}, hints);
  EXPECT_TRUE(same_bits(la, lb));
}

TEST(WarmStart, ChainReplaysByteIdentically) {
  // A whole hint chain — each point seeded from the previous result, as
  // the runner chains a sweep row — replays byte-identically, which is
  // what makes shard splits and re-runs mergeable byte-for-byte.
  std::vector<MvaSolution> first_pass;
  for (int pass = 0; pass < 2; ++pass) {
    MvaSolution prev;
    bool have = false;
    for (int step = 0; step <= 20; ++step) {
      const auto net = central_server(16, 1.0 + 0.25 * step);
      SolveHints hints;
      hints.prior = have ? &prev : nullptr;
      auto sol = solve_amva(net, {}, hints);
      if (pass == 0) {
        first_pass.push_back(sol);
      } else {
        EXPECT_TRUE(same_bits(first_pass[static_cast<std::size_t>(step)],
                              sol))
            << "step " << step;
      }
      prev = std::move(sol);
      have = true;
    }
  }
}

TEST(WarmStart, WarmAgreesWithColdFarBelowTolerance) {
  // Warm and cold stop at different iterates inside the tolerance ball,
  // so they are not bitwise equal — but they must agree orders of
  // magnitude below the solver tolerance an analyst would ever read.
  MvaSolution prev;
  bool have = false;
  for (int step = 0; step <= 30; ++step) {
    const auto net = central_server(16, 1.0 + 0.25 * step);
    const auto cold = solve_amva(net, {}, SolveHints{});
    SolveHints hints;
    hints.prior = have ? &prev : nullptr;
    const auto warm = solve_amva(net, {}, hints);
    ASSERT_TRUE(cold.converged);
    ASSERT_TRUE(warm.converged);
    EXPECT_LT(max_rel_diff(warm, cold), 1e-9) << "step " << step;
    prev = warm;
    have = true;
  }
}

TEST(WarmStart, StagnationBudgetShrinksHintSensitivityToUlps) {
  // With a stagnation budget, differently-seeded orbits iterate until
  // the floating-point map freezes and nearly merge: warm vs cold agree
  // to a few ulps (measured ~3e-16 relative on these networks).
  MvaSolution prev;
  bool have = false;
  for (int step = 0; step <= 30; ++step) {
    const auto net = central_server(16, 1.0 + 0.25 * step);
    SolveHints cold_hints;
    cold_hints.stagnation_budget = 4096;
    const auto cold = solve_amva(net, {}, cold_hints);
    SolveHints warm_hints;
    warm_hints.prior = have ? &prev : nullptr;
    warm_hints.stagnation_budget = 4096;
    const auto warm = solve_amva(net, {}, warm_hints);
    EXPECT_LT(max_rel_diff(warm, cold), 1e-13) << "step " << step;
    prev = warm;
    have = true;
  }
}

TEST(WarmStart, ExtrapolatedHintCutsIterationsByAThird) {
  // Fine axis at 1e5-point-surface granularity: the runner's linear
  // extrapolation from the two previous row points must deliver the
  // sweep engine's >= 30% mean iteration-count reduction.
  MvaSolution p1, p2;
  int have = 0;
  long cold_iters = 0;
  long warm_iters = 0;
  for (int step = 0; step < 400; ++step) {
    const auto net = central_server(16, 1.0 + 0.01 * step);
    const auto cold = solve_amva(net, {}, SolveHints{});
    SolveHints hints;
    MvaSolution extrapolated;
    if (have >= 2) {
      extrapolated = extrapolate(p1, p2);
      hints.prior = &extrapolated;
    } else if (have == 1) {
      hints.prior = &p1;
    }
    const auto warm = solve_amva(net, {}, hints);
    EXPECT_LT(max_rel_diff(warm, cold), 1e-9);
    if (have > 0) {
      cold_iters += cold.iterations;
      warm_iters += warm.iterations;
    }
    p2 = p1;
    p1 = warm;
    ++have;
  }
  EXPECT_LE(3 * warm_iters, 2 * cold_iters)
      << "warm " << warm_iters << " vs cold " << cold_iters << " iterations";
}

TEST(WarmStart, LinearizerWarmChainIsDeterministicAndSaves) {
  std::vector<MvaSolution> first_pass;
  long cold_iters = 0;
  long warm_iters = 0;
  for (int pass = 0; pass < 2; ++pass) {
    MvaSolution prev;
    bool have = false;
    for (int step = 0; step <= 20; ++step) {
      const auto net = two_class(5, 7, 1.0 + 0.1 * step);
      SolveHints hints;
      hints.prior = have ? &prev : nullptr;
      auto warm = solve_linearizer(net, {}, hints);
      if (pass == 0) {
        const auto cold = solve_linearizer(net, {}, SolveHints{});
        ASSERT_TRUE(cold.converged);
        // The outer correction cascade compounds the per-Core tolerance
        // ball, so the warm/cold gap is wider than AMVA's — still two
        // orders below the 1e-10 Core tolerance's kappa-amplified bound.
        EXPECT_LT(max_rel_diff(warm, cold), 1e-7) << "step " << step;
        if (have) {
          cold_iters += cold.iterations;
          warm_iters += warm.iterations;
        }
        first_pass.push_back(warm);
      } else {
        EXPECT_TRUE(same_bits(first_pass[static_cast<std::size_t>(step)],
                              warm))
            << "step " << step;
      }
      prev = std::move(warm);
      have = true;
    }
  }
  EXPECT_LT(warm_iters, cold_iters);
}

TEST(WarmStart, RobustSolveForwardsHints) {
  MvaSolution prev;
  bool have = false;
  long cold_iters = 0;
  long warm_iters = 0;
  for (int step = 0; step <= 15; ++step) {
    const auto net = central_server(12, 1.5 + 0.05 * step);

    RobustOptions cold_opts;
    const auto cold = robust_solve(net, cold_opts);

    SolveHints warm_hints;
    warm_hints.prior = have ? &prev : nullptr;
    RobustOptions warm_opts;
    warm_opts.hints = &warm_hints;
    const auto warm = robust_solve(net, warm_opts);

    ASSERT_TRUE(cold.ok());
    ASSERT_TRUE(warm.ok());
    EXPECT_EQ(cold.solver, warm.solver);
    EXPECT_LT(max_rel_diff(warm.solution, cold.solution), 1e-9);
    if (have) {
      cold_iters += cold.solution.iterations;
      warm_iters += warm.solution.iterations;
    }
    prev = warm.solution;
    have = true;
  }
  // The hint must actually reach the AMVA link through RobustOptions.
  EXPECT_LT(warm_iters, cold_iters);
}

TEST(WarmStart, MalformedPriorIsIgnoredNotFatal) {
  const auto net = central_server(10, 3.0);
  const auto cold = solve_amva(net, {}, SolveHints{});

  // Wrong shape: a prior from a different network topology.
  const auto other = solve_amva(two_class(4, 4, 2.0), {}, SolveHints{});
  SolveHints wrong_shape;
  wrong_shape.prior = &other;
  EXPECT_TRUE(same_bits(cold, solve_amva(net, {}, wrong_shape)));

  // Right shape, poisoned values: ignored entirely, bitwise cold.
  MvaSolution poisoned = cold;
  poisoned.queue_length(0, 0) = std::numeric_limits<double>::quiet_NaN();
  SolveHints nan_prior;
  nan_prior.prior = &poisoned;
  EXPECT_TRUE(same_bits(cold, solve_amva(net, {}, nan_prior)));

  MvaSolution negative = cold;
  negative.queue_length(0, 2) = -1.0;
  SolveHints neg_prior;
  neg_prior.prior = &negative;
  EXPECT_TRUE(same_bits(cold, solve_amva(net, {}, neg_prior)));
}

TEST(WarmStart, ZeroPopulationClassStaysDead) {
  ClosedNetwork net = two_class(8, 0, 2.5);
  const auto cold = solve_amva(net, {}, SolveHints{});
  EXPECT_EQ(cold.throughput[1], 0.0);
  SolveHints warm_hints;
  warm_hints.prior = &cold;
  const auto warm = solve_amva(net, {}, warm_hints);
  EXPECT_LT(max_rel_diff(warm, cold), 1e-9);
  EXPECT_EQ(warm.throughput[1], 0.0);
  for (std::size_t m = 0; m < 3; ++m) {
    EXPECT_EQ(warm.queue_length(1, m), 0.0);
    EXPECT_EQ(warm.waiting(1, m), 0.0);
  }
}

TEST(WarmStart, WarmKernelAgreesWithPlainToTolerance) {
  // The warm kernel recomputes station totals per sweep and re-derives
  // outputs in a pure pass, so it is not bitwise comparable to the plain
  // kernel — but the fixed point is the same.
  for (int step = 0; step <= 10; ++step) {
    const auto net = central_server(20, 1.0 + 0.5 * step);
    const auto plain = solve_amva(net);
    const auto warm = solve_amva(net, {}, SolveHints{});
    EXPECT_LT(max_rel_diff(warm, plain), 1e-8) << "step " << step;
  }
}

TEST(WarmStart, PlainSolverPathIsUntouched) {
  // The plain overloads must keep producing the exact bytes they did
  // before warm starting existed (the paper-repro CSVs are pinned on
  // them); spot-check that hint-free calls run the plain kernel by
  // matching its incremental-station-total iteration count.
  const auto net = central_server(16, 3.0);
  const auto a = solve_amva(net);
  const auto b = solve_amva(net);
  EXPECT_TRUE(same_bits(a, b));
  EXPECT_EQ(a.iterations, b.iterations);
}

}  // namespace
}  // namespace latol::qn
