#include "qn/routing.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace latol::qn {
namespace {

ClosedNetwork three_station_net() {
  ClosedNetwork net({{"a", StationKind::kQueueing},
                     {"b", StationKind::kQueueing},
                     {"c", StationKind::kQueueing}},
                    1);
  net.set_population(0, 1);
  for (std::size_t m = 0; m < 3; ++m) net.set_service_time(0, m, 1.0);
  return net;
}

TEST(Routing, CycleGivesUnitVisitRatios) {
  auto net = three_station_net();
  RoutedClosedNetwork routed;
  util::Matrix p(3, 3);
  p(0, 1) = 1.0;
  p(1, 2) = 1.0;
  p(2, 0) = 1.0;
  routed.routing = {p};
  routed.reference_station = {0};
  const auto v = visits_from_routing(net, routed);
  EXPECT_NEAR(v(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(v(0, 1), 1.0, 1e-12);
  EXPECT_NEAR(v(0, 2), 1.0, 1e-12);
}

TEST(Routing, ProbabilisticBranchSplitsVisits) {
  // a -> b (0.3) | c (0.7); b -> a; c -> a.
  auto net = three_station_net();
  RoutedClosedNetwork routed;
  util::Matrix p(3, 3);
  p(0, 1) = 0.3;
  p(0, 2) = 0.7;
  p(1, 0) = 1.0;
  p(2, 0) = 1.0;
  routed.routing = {p};
  routed.reference_station = {0};
  const auto v = visits_from_routing(net, routed);
  EXPECT_NEAR(v(0, 1), 0.3, 1e-12);
  EXPECT_NEAR(v(0, 2), 0.7, 1e-12);
}

TEST(Routing, FeedbackLoopAmplifiesVisits) {
  // a -> b; b -> b (0.5) | a (0.5): expected visits to b per cycle = 2.
  auto net = three_station_net();
  RoutedClosedNetwork routed;
  util::Matrix p(3, 3);
  p(0, 1) = 1.0;
  p(1, 1) = 0.5;
  p(1, 0) = 0.5;
  p(2, 2) = 0.0;
  routed.routing = {p};
  routed.reference_station = {0};
  const auto v = visits_from_routing(net, routed);
  EXPECT_NEAR(v(0, 1), 2.0, 1e-12);
  EXPECT_NEAR(v(0, 2), 0.0, 1e-12);
}

TEST(Routing, RejectsNonStochasticRow) {
  auto net = three_station_net();
  RoutedClosedNetwork routed;
  util::Matrix p(3, 3);
  p(0, 1) = 0.6;  // row sums to 0.6
  p(1, 0) = 1.0;
  routed.routing = {p};
  routed.reference_station = {0};
  EXPECT_THROW(visits_from_routing(net, routed), InvalidArgument);
}

TEST(Routing, RejectsUnusedReferenceStation) {
  auto net = three_station_net();
  RoutedClosedNetwork routed;
  util::Matrix p(3, 3);
  p(0, 1) = 1.0;
  p(1, 0) = 1.0;
  routed.routing = {p};
  routed.reference_station = {2};  // station c is never left
  EXPECT_THROW(visits_from_routing(net, routed), InvalidArgument);
}

TEST(Routing, ApplyWritesIntoNetwork) {
  auto net = three_station_net();
  RoutedClosedNetwork routed;
  util::Matrix p(3, 3);
  p(0, 1) = 1.0;
  p(1, 2) = 1.0;
  p(2, 0) = 1.0;
  routed.routing = {p};
  routed.reference_station = {0};
  apply_routing_visits(net, routed);
  EXPECT_NEAR(net.visit_ratio(0, 2), 1.0, 1e-12);
}

}  // namespace
}  // namespace latol::qn
