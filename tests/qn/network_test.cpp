#include "qn/network.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "util/error.hpp"

namespace latol::qn {
namespace {

ClosedNetwork two_station_net() {
  ClosedNetwork net({{"cpu", StationKind::kQueueing},
                     {"disk", StationKind::kQueueing}},
                    1);
  net.set_population(0, 3);
  net.set_visit_ratio(0, 0, 1.0);
  net.set_visit_ratio(0, 1, 2.0);
  net.set_service_time(0, 0, 5.0);
  net.set_service_time(0, 1, 4.0);
  return net;
}

TEST(ClosedNetwork, RequiresStationsAndClasses) {
  EXPECT_THROW(ClosedNetwork({}, 1), InvalidArgument);
  EXPECT_THROW(ClosedNetwork({{"s", StationKind::kQueueing}}, 0),
               InvalidArgument);
}

TEST(ClosedNetwork, StoresShape) {
  const auto net = two_station_net();
  EXPECT_EQ(net.num_stations(), 2u);
  EXPECT_EQ(net.num_classes(), 1u);
  EXPECT_EQ(net.station(0).name, "cpu");
  EXPECT_THROW((void)net.station(2), InvalidArgument);
}

TEST(ClosedNetwork, PopulationAccounting) {
  auto net = two_station_net();
  EXPECT_EQ(net.population(0), 3);
  EXPECT_EQ(net.total_population(), 3);
  EXPECT_THROW(net.set_population(0, -1), InvalidArgument);
  EXPECT_THROW(net.set_population(5, 1), InvalidArgument);
}

TEST(ClosedNetwork, DemandIsVisitTimesService) {
  const auto net = two_station_net();
  EXPECT_DOUBLE_EQ(net.demand(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(net.demand(0, 1), 8.0);
  EXPECT_DOUBLE_EQ(net.total_demand(0), 13.0);
}

TEST(ClosedNetwork, RejectsNegativeInputs) {
  auto net = two_station_net();
  EXPECT_THROW(net.set_visit_ratio(0, 0, -0.1), InvalidArgument);
  EXPECT_THROW(net.set_service_time(0, 0, -1.0), InvalidArgument);
}

TEST(ClosedNetwork, RejectsNonFiniteInputs) {
  // NaN and infinity must be stopped at the setter, not discovered as a
  // kNumerical failure deep inside a solver.
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  auto net = two_station_net();
  EXPECT_THROW(net.set_visit_ratio(0, 0, kNan), InvalidArgument);
  EXPECT_THROW(net.set_visit_ratio(0, 0, kInf), InvalidArgument);
  EXPECT_THROW(net.set_service_time(0, 0, kNan), InvalidArgument);
  EXPECT_THROW(net.set_service_time(0, 0, kInf), InvalidArgument);
  // The rejected values must not have corrupted the network.
  EXPECT_NO_THROW(net.validate());
  EXPECT_DOUBLE_EQ(net.demand(0, 0), 5.0);
}

TEST(ClosedNetwork, ValidateRejectsEmptyPopulation) {
  ClosedNetwork net({{"s", StationKind::kQueueing}}, 1);
  EXPECT_THROW(net.validate(), InvalidArgument);
}

TEST(ClosedNetwork, ValidateRejectsZeroDemandClass) {
  ClosedNetwork net({{"s", StationKind::kQueueing}}, 1);
  net.set_population(0, 2);
  EXPECT_THROW(net.validate(), InvalidArgument);
  net.set_visit_ratio(0, 0, 1.0);
  net.set_service_time(0, 0, 1.0);
  EXPECT_NO_THROW(net.validate());
}

TEST(ClosedNetwork, ProductFormHoldsForSingleClass) {
  EXPECT_TRUE(two_station_net().is_product_form());
}

TEST(ClosedNetwork, ProductFormDetectsClassDependentFcfsService) {
  ClosedNetwork net({{"shared", StationKind::kQueueing}}, 2);
  net.set_population(0, 1);
  net.set_population(1, 1);
  net.set_visit_ratio(0, 0, 1.0);
  net.set_visit_ratio(1, 0, 1.0);
  net.set_service_time(0, 0, 1.0);
  net.set_service_time(1, 0, 2.0);
  EXPECT_FALSE(net.is_product_form());
  net.set_service_time(1, 0, 1.0);
  EXPECT_TRUE(net.is_product_form());
}

TEST(ClosedNetwork, ProductFormIgnoresDelayStations) {
  ClosedNetwork net({{"think", StationKind::kDelay}}, 2);
  net.set_population(0, 1);
  net.set_population(1, 1);
  net.set_visit_ratio(0, 0, 1.0);
  net.set_visit_ratio(1, 0, 1.0);
  net.set_service_time(0, 0, 1.0);
  net.set_service_time(1, 0, 9.0);  // per-class delay is fine under BCMP
  EXPECT_TRUE(net.is_product_form());
}

TEST(ClosedNetwork, ProductFormIgnoresUnvisitedClasses) {
  ClosedNetwork net({{"shared", StationKind::kQueueing}}, 2);
  net.set_population(0, 1);
  net.set_population(1, 1);
  net.set_visit_ratio(0, 0, 1.0);
  net.set_service_time(0, 0, 1.0);
  net.set_service_time(1, 0, 99.0);  // class 1 never visits: irrelevant
  EXPECT_TRUE(net.is_product_form());
}

}  // namespace
}  // namespace latol::qn
