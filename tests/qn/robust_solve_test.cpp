// Fault injection for the resilient solver pipeline: every link of the
// fallback chain must be reachable, every SolverErrorCode must surface,
// and a degraded answer must never pose as a clean one.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "qn/bounds.hpp"
#include "qn/mva_approx.hpp"
#include "qn/robust.hpp"
#include "qn/solver_error.hpp"
#include "util/error.hpp"

namespace latol::qn {
namespace {

/// Single-class tandem of queueing stations with the given demands.
ClosedNetwork cyclic(long n, const std::vector<double>& demands) {
  std::vector<Station> stations;
  for (std::size_t m = 0; m < demands.size(); ++m)
    stations.push_back({"s" + std::to_string(m), StationKind::kQueueing});
  ClosedNetwork net(std::move(stations), 1);
  net.set_population(0, n);
  for (std::size_t m = 0; m < demands.size(); ++m) {
    net.set_visit_ratio(0, m, 1.0);
    net.set_service_time(0, m, demands[m]);
  }
  return net;
}

/// A populated class with no demand anywhere fails network validation.
ClosedNetwork invalid_network() {
  ClosedNetwork net({{"s", StationKind::kQueueing}}, 1);
  net.set_population(0, 5);
  return net;
}

// --- chain links ---

TEST(RobustSolve, CleanSolveAnswersWithRequestedSolver) {
  const SolveReport report = robust_solve(cyclic(8, {1.0, 2.0}));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.solver, SolverKind::kAmva);
  EXPECT_FALSE(report.degraded);
  ASSERT_EQ(report.attempts.size(), 1u);
  EXPECT_TRUE(report.attempts[0].success);
  EXPECT_TRUE(report.solution.converged);
  EXPECT_LT(report.residual, 1e-6);
  EXPECT_GT(report.wall_seconds, 0.0);
}

TEST(RobustSolve, ExhaustedAmvaFallsBackToLinearizer) {
  RobustOptions opts;
  opts.amva.max_iterations = 1;
  const SolveReport report = robust_solve(cyclic(8, {1.0, 2.0}), opts);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.solver, SolverKind::kLinearizer);
  EXPECT_TRUE(report.degraded);
  ASSERT_GE(report.attempts.size(), 2u);
  EXPECT_FALSE(report.attempts[0].success);
  ASSERT_TRUE(report.attempts[0].error.has_value());
  EXPECT_EQ(*report.attempts[0].error, SolverErrorCode::kIterationBudget);
  EXPECT_TRUE(report.attempts[1].success);
}

TEST(RobustSolve, FallsBackToExactMvaWhenIterativeSolversFail) {
  RobustOptions opts;
  opts.amva.max_iterations = 1;
  opts.linearizer.max_core_iterations = 1;
  const SolveReport report = robust_solve(cyclic(6, {1.0, 2.0}), opts);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.solver, SolverKind::kExactMva);
  EXPECT_TRUE(report.degraded);
  // Exact MVA is exact: the Schweitzer residual measures the approximation
  // gap, which is nonzero but modest on a 2-station tandem.
  EXPECT_TRUE(std::isfinite(report.residual));
}

TEST(RobustSolve, FallsBackToBoundsWhenLatticeIsTooLarge) {
  RobustOptions opts;
  opts.amva.max_iterations = 1;
  opts.linearizer.max_core_iterations = 1;
  opts.exact_max_states = 1;  // force the exact-MVA gate shut
  const SolveReport report = robust_solve(cyclic(6, {1.0, 2.0}), opts);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.solver, SolverKind::kBounds);
  EXPECT_TRUE(report.degraded);
  ASSERT_EQ(report.attempts.size(), 4u);
  // The exact-MVA link was skipped (inapplicable), not failed.
  EXPECT_FALSE(report.attempts[2].error.has_value());
  EXPECT_NE(report.attempts[2].detail.find("skipped"), std::string::npos);
  // Bounds answers are optimistic: at or above nothing, at most the
  // asymptotic cap.
  EXPECT_LE(report.solution.throughput[0], 1.0 / 2.0 + 1e-12);
  EXPECT_GT(report.solution.throughput[0], 0.0);
}

TEST(RobustSolve, ExactMvaGateOpensAtTheLatticeLimit) {
  RobustOptions opts;
  opts.amva.max_iterations = 1;
  opts.linearizer.max_core_iterations = 1;
  // Population 9 -> lattice of exactly 10 states.
  opts.exact_max_states = 10;
  const SolveReport at_limit = robust_solve(cyclic(9, {1.0, 2.0}), opts);
  ASSERT_TRUE(at_limit.ok());
  EXPECT_EQ(at_limit.solver, SolverKind::kExactMva);

  opts.exact_max_states = 9;  // one state short: the gate must close
  const SolveReport over_limit = robust_solve(cyclic(9, {1.0, 2.0}), opts);
  ASSERT_TRUE(over_limit.ok());
  EXPECT_EQ(over_limit.solver, SolverKind::kBounds);
}

// --- error taxonomy: every code must be reachable ---

TEST(RobustSolve, InvalidNetworkCode) {
  const SolveReport report = robust_solve(invalid_network());
  EXPECT_FALSE(report.ok());
  ASSERT_TRUE(report.error.has_value());
  EXPECT_EQ(*report.error, SolverErrorCode::kInvalidNetwork);
  ASSERT_EQ(report.attempts.size(), 1u);
  EXPECT_FALSE(report.attempts[0].detail.empty());
}

TEST(RobustSolve, IterationBudgetCode) {
  RobustOptions opts;
  opts.chain = {SolverKind::kAmva};
  opts.amva.max_iterations = 1;
  const SolveReport report = robust_solve(cyclic(8, {1.0, 2.0}), opts);
  EXPECT_FALSE(report.ok());
  ASSERT_TRUE(report.error.has_value());
  EXPECT_EQ(*report.error, SolverErrorCode::kIterationBudget);
}

TEST(RobustSolve, NumericalCode) {
  // Demands near DBL_MAX overflow the cycle time to infinity on the very
  // first evaluation.
  RobustOptions opts;
  opts.chain = {SolverKind::kAmva};
  const SolveReport report =
      robust_solve(cyclic(4, {1e308, 1e308}), opts);
  EXPECT_FALSE(report.ok());
  ASSERT_TRUE(report.error.has_value());
  EXPECT_EQ(*report.error, SolverErrorCode::kNumerical);
}

TEST(RobustSolve, DivergedCode) {
  // A genuine AMVA divergence is hard to construct (damping <= 1 keeps the
  // map contracting on these networks), so force the guard the same way
  // the budget tests force theirs: demand an impossible per-step
  // improvement so the second iterate is flagged as backsliding.
  RobustOptions opts;
  opts.chain = {SolverKind::kAmva};
  opts.amva.divergence_factor = 1e-12;
  opts.amva.divergence_window = 0;
  const SolveReport report =
      robust_solve(cyclic(50, {1.0, 2.0, 3.0, 4.0}), opts);
  EXPECT_FALSE(report.ok());
  ASSERT_TRUE(report.error.has_value());
  EXPECT_EQ(*report.error, SolverErrorCode::kDiverged);
}

TEST(RobustSolve, DivergenceGuardThrowsFromSolveAmva) {
  AmvaOptions opts;
  opts.divergence_factor = 1e-12;
  opts.divergence_window = 0;
  try {
    (void)solve_amva(cyclic(50, {1.0, 2.0, 3.0, 4.0}), opts);
    FAIL() << "expected SolverError(kDiverged)";
  } catch (const SolverError& e) {
    EXPECT_EQ(e.code(), SolverErrorCode::kDiverged);
    EXPECT_NE(std::string(e.what()).find("diverged"), std::string::npos);
  }
}

TEST(RobustSolve, BoundsRescueNumericalBreakdown) {
  // With the full default chain an overflowing network still gets an
  // answer: the bounds backstop is immune to the fixed-point blowup. The
  // population is chosen beyond the exact-MVA lattice budget so the last
  // link is the one that must answer.
  const SolveReport report = robust_solve(cyclic(3'000'000, {1e308, 1e308}));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.solver, SolverKind::kBounds);
  EXPECT_TRUE(report.degraded);
  // Total demand overflows to infinity, so the honest bound is ~zero
  // throughput — finite and pessimistic, never NaN or infinite speed.
  EXPECT_TRUE(std::isfinite(report.solution.throughput[0]));
  EXPECT_GE(report.solution.throughput[0], 0.0);
}

// --- extreme-but-legal inputs stay on the happy path ---

TEST(RobustSolve, DemandRatiosSpanningTwelveOrders) {
  const SolveReport report = robust_solve(cyclic(10, {1e-6, 1e6}));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.solver, SolverKind::kAmva);
  EXPECT_FALSE(report.degraded);
  EXPECT_NEAR(report.solution.throughput[0], 1.0 / 1e6, 1e-9);
}

TEST(RobustSolve, NearZeroDemandStaysClean) {
  const SolveReport report = robust_solve(cyclic(5, {1e-300, 1.0}));
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.degraded);
  EXPECT_TRUE(std::isfinite(report.solution.throughput[0]));
}

TEST(RobustSolve, ZeroDemandStationIsTransparent) {
  const SolveReport report = robust_solve(cyclic(5, {10.0, 0.0}));
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report.solution.queue_length(0, 1), 0.0, 1e-9);
}

// --- building blocks ---

TEST(RobustSolve, ResidualNearZeroAtFixedPointLargeForBounds) {
  const auto net = cyclic(8, {1.0, 2.0});
  const MvaSolution amva = solve_amva(net);
  EXPECT_LT(fixed_point_residual(net, amva), 1e-6);
  // The bounds answer ignores contention entirely, so it is far from the
  // Schweitzer fixed point on a congested network.
  const MvaSolution bounds = bounds_solution(net);
  EXPECT_GT(fixed_point_residual(net, bounds),
            fixed_point_residual(net, amva));
}

TEST(RobustSolve, BoundsSolutionIsFiniteAndCapped) {
  const auto net = cyclic(4, {1.0, 2.0});
  const MvaSolution sol = bounds_solution(net);
  EXPECT_TRUE(sol.converged);
  EXPECT_TRUE(std::isfinite(sol.throughput[0]));
  EXPECT_LE(sol.throughput[0], asymptotic_throughput_bound(net, 0) + 1e-12);
  EXPECT_GT(sol.throughput[0], 0.0);
}

TEST(RobustSolve, CycleTimeOfDeadClassIsInfinite) {
  MvaSolution sol;
  sol.throughput = {0.0, 2.0};
  EXPECT_TRUE(std::isinf(sol.cycle_time(0, 5)));
  EXPECT_DOUBLE_EQ(sol.cycle_time(1, 10), 5.0);
}

TEST(RobustSolve, SummaryDescribesTheOutcome) {
  const SolveReport clean = robust_solve(cyclic(8, {1.0, 2.0}));
  EXPECT_NE(clean.summary().find("solved by amva"), std::string::npos);

  RobustOptions degraded_opts;
  degraded_opts.amva.max_iterations = 1;
  const SolveReport degraded =
      robust_solve(cyclic(8, {1.0, 2.0}), degraded_opts);
  EXPECT_NE(degraded.summary().find("degraded to linearizer"),
            std::string::npos);
  EXPECT_NE(degraded.summary().find("iteration-budget"), std::string::npos);

  const SolveReport failed = robust_solve(invalid_network());
  EXPECT_NE(failed.summary().find("solve failed"), std::string::npos);
  EXPECT_NE(failed.summary().find("invalid-network"), std::string::npos);
}

TEST(RobustSolve, EmptyChainIsAnOptionsError) {
  RobustOptions opts;
  opts.chain.clear();
  EXPECT_THROW((void)robust_solve(cyclic(2, {1.0}), opts), InvalidArgument);
}

TEST(RobustSolve, BadDivergenceOptionsAreRejected) {
  AmvaOptions opts;
  opts.divergence_factor = 0.0;
  EXPECT_THROW((void)solve_amva(cyclic(2, {1.0}), opts), InvalidArgument);
  opts.divergence_factor = 1e6;
  opts.divergence_window = -1;
  EXPECT_THROW((void)solve_amva(cyclic(2, {1.0}), opts), InvalidArgument);
}

}  // namespace
}  // namespace latol::qn
