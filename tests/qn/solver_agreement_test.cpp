// Cross-solver property suite: exact MVA, convolution, CTMC, and AMVA are
// four independent implementations of the same product-form theory; they
// must agree (exactly for the first three, within a few percent for AMVA)
// on every network in a parameterized family. Any divergence localizes an
// implementation bug, which is exactly what happened to the original
// paper's authors when they validated AMVA against a Petri-net simulator.
#include <gtest/gtest.h>

#include <random>

#include "qn/bounds.hpp"
#include "qn/convolution.hpp"
#include "qn/ctmc.hpp"
#include "qn/mva_approx.hpp"
#include "qn/mva_exact.hpp"

namespace latol::qn {
namespace {

struct NetCase {
  long population;
  std::vector<double> demands;
};

std::vector<NetCase> random_cases() {
  std::mt19937_64 gen(20260707);
  std::uniform_real_distribution<double> demand(0.2, 12.0);
  std::vector<NetCase> cases;
  for (int i = 0; i < 12; ++i) {
    NetCase c;
    c.population = 1 + static_cast<long>(gen() % 6);
    const std::size_t m = 2 + gen() % 3;
    for (std::size_t s = 0; s < m; ++s) c.demands.push_back(demand(gen));
    cases.push_back(std::move(c));
  }
  return cases;
}

class SolverAgreement : public ::testing::TestWithParam<NetCase> {
 protected:
  static ClosedNetwork build(const NetCase& c) {
    std::vector<Station> stations;
    for (std::size_t i = 0; i < c.demands.size(); ++i)
      stations.push_back({"s" + std::to_string(i), StationKind::kQueueing});
    ClosedNetwork net(std::move(stations), 1);
    net.set_population(0, c.population);
    for (std::size_t i = 0; i < c.demands.size(); ++i) {
      net.set_visit_ratio(0, i, 1.0);
      net.set_service_time(0, i, c.demands[i]);
    }
    return net;
  }

  static RoutedClosedNetwork ring(std::size_t m) {
    RoutedClosedNetwork routed;
    util::Matrix p(m, m);
    for (std::size_t i = 0; i < m; ++i) p(i, (i + 1) % m) = 1.0;
    routed.routing = {p};
    routed.reference_station = {0};
    return routed;
  }
};

TEST_P(SolverAgreement, ExactMvaEqualsConvolution) {
  const auto net = build(GetParam());
  const auto mva = solve_mva_exact(net);
  const auto conv = solve_convolution(net).measures;
  EXPECT_NEAR(mva.throughput[0], conv.throughput[0],
              1e-9 * mva.throughput[0]);
  for (std::size_t m = 0; m < net.num_stations(); ++m)
    EXPECT_NEAR(mva.queue_length(0, m), conv.queue_length(0, m), 1e-7);
}

TEST_P(SolverAgreement, ExactMvaEqualsCtmc) {
  const auto net = build(GetParam());
  const auto mva = solve_mva_exact(net);
  const auto ctmc = solve_ctmc(net, ring(net.num_stations()));
  EXPECT_NEAR(mva.throughput[0], ctmc.throughput[0],
              1e-7 * mva.throughput[0]);
}

TEST_P(SolverAgreement, AmvaWithinSixPercentOfExact) {
  const auto net = build(GetParam());
  const auto mva = solve_mva_exact(net);
  const auto amva = solve_amva(net);
  ASSERT_TRUE(amva.converged);
  EXPECT_NEAR(amva.throughput[0], mva.throughput[0],
              0.06 * mva.throughput[0]);
}

TEST_P(SolverAgreement, AllSolversRespectBounds) {
  const auto net = build(GetParam());
  const double upper = asymptotic_throughput_bound(net, 0);
  const double lower = pessimistic_throughput_bound(net, 0);
  for (const double lambda :
       {solve_mva_exact(net).throughput[0],
        solve_convolution(net).measures.throughput[0],
        solve_amva(net).throughput[0]}) {
    EXPECT_LE(lambda, upper + 1e-9);
    EXPECT_GE(lambda, lower - 1e-9);
  }
}

TEST_P(SolverAgreement, UtilizationLawHolds) {
  // U_m = lambda * D_m at every station, for every solver.
  const auto net = build(GetParam());
  for (const auto& sol : {solve_mva_exact(net), solve_amva(net)}) {
    for (std::size_t m = 0; m < net.num_stations(); ++m)
      EXPECT_NEAR(sol.utilization[m], sol.throughput[0] * net.demand(0, m),
                  1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomNetworks, SolverAgreement,
                         ::testing::ValuesIn(random_cases()));

// ---------------------------------------------------------------------------
// Multi-class family: AMVA vs exact MVA on two-class shared-station
// networks of varying asymmetry.

struct MultiCase {
  long n0, n1;
  double r0, r1, mem;
};

class MultiClassAgreement : public ::testing::TestWithParam<MultiCase> {};

TEST_P(MultiClassAgreement, AmvaTracksExact) {
  const auto& c = GetParam();
  ClosedNetwork net({{"p0", StationKind::kQueueing},
                     {"p1", StationKind::kQueueing},
                     {"mem", StationKind::kQueueing}},
                    2);
  net.set_population(0, c.n0);
  net.set_population(1, c.n1);
  net.set_visit_ratio(0, 0, 1.0);
  net.set_visit_ratio(1, 1, 1.0);
  net.set_visit_ratio(0, 2, 1.0);
  net.set_visit_ratio(1, 2, 1.0);
  net.set_service_time(0, 0, c.r0);
  net.set_service_time(1, 1, c.r1);
  net.set_service_time(0, 2, c.mem);
  net.set_service_time(1, 2, c.mem);

  const auto exact = solve_mva_exact(net);
  const auto amva = solve_amva(net);
  // Bard-Schweitzer error grows with asymmetry at small populations; 15%
  // is the documented worst case for this family (most points are <5%).
  for (std::size_t cls = 0; cls < 2; ++cls) {
    EXPECT_NEAR(amva.throughput[cls], exact.throughput[cls],
                0.15 * exact.throughput[cls])
        << "class " << cls;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AsymmetricPairs, MultiClassAgreement,
    ::testing::Values(MultiCase{2, 2, 10, 10, 5}, MultiCase{1, 5, 10, 10, 5},
                      MultiCase{4, 4, 10, 2, 5}, MultiCase{3, 3, 1, 1, 10},
                      MultiCase{6, 2, 8, 3, 4}));

}  // namespace
}  // namespace latol::qn
