#include "qn/bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "qn/mva_exact.hpp"

namespace latol::qn {
namespace {

/// Think delay Z = 6 plus two queueing stations with demands 2 and 1:
/// D = 9, bottleneck demand 2 -> saturation throughput 0.5.
ClosedNetwork interactive(long population) {
  ClosedNetwork net({{"think", StationKind::kDelay},
                     {"cpu", StationKind::kQueueing},
                     {"disk", StationKind::kQueueing}},
                    1);
  net.set_population(0, population);
  net.set_visit_ratio(0, 0, 1.0);
  net.set_visit_ratio(0, 1, 2.0);
  net.set_visit_ratio(0, 2, 1.0);
  net.set_service_time(0, 0, 6.0);
  net.set_service_time(0, 1, 1.0);
  net.set_service_time(0, 2, 1.0);
  return net;
}

TEST(Bounds, ZeroPopulationBoundIsZero) {
  const ClosedNetwork net = interactive(0);
  EXPECT_DOUBLE_EQ(asymptotic_throughput_bound(net, 0), 0.0);
  EXPECT_DOUBLE_EQ(pessimistic_throughput_bound(net, 0), 0.0);
}

TEST(Bounds, SingleCustomerBoundIsTight) {
  // With N = 1 there is never queueing: exact throughput is exactly the
  // zero-contention bound N / D.
  const ClosedNetwork net = interactive(1);
  const MvaSolution exact = solve_mva_exact(net);
  EXPECT_NEAR(exact.throughput[0], 1.0 / 9.0, 1e-12);
  EXPECT_NEAR(asymptotic_throughput_bound(net, 0), 1.0 / 9.0, 1e-12);
  EXPECT_NEAR(exact.throughput[0], asymptotic_throughput_bound(net, 0),
              1e-12);
}

TEST(Bounds, ExactThroughputRespectsBoundsAtEveryPopulation) {
  for (long n = 1; n <= 30; ++n) {
    const ClosedNetwork net = interactive(n);
    const MvaSolution exact = solve_mva_exact(net);
    EXPECT_LE(exact.throughput[0],
              asymptotic_throughput_bound(net, 0) + 1e-12)
        << "population " << n;
    EXPECT_GE(exact.throughput[0],
              pessimistic_throughput_bound(net, 0) - 1e-12)
        << "population " << n;
  }
}

TEST(Bounds, LargePopulationApproachesSaturation) {
  // As N -> infinity the exact throughput converges to 1 / D_max = 0.5
  // from below; at N = 60 the gap is already tiny.
  const ClosedNetwork net = interactive(60);
  const MvaSolution exact = solve_mva_exact(net);
  const double sat = saturation_throughput(net, 0);
  EXPECT_NEAR(sat, 0.5, 1e-12);
  EXPECT_LE(exact.throughput[0], sat + 1e-12);
  EXPECT_NEAR(exact.throughput[0], sat, 1e-6);
  // The knee of the two asymptotes: min(N / D, sat) equals sat here.
  EXPECT_NEAR(asymptotic_throughput_bound(net, 0), sat, 1e-12);
}

TEST(Bounds, SaturationCountsParallelServers) {
  ClosedNetwork net({{"bank", StationKind::kQueueing, 4}}, 1);
  net.set_population(0, 1);
  net.set_visit_ratio(0, 0, 1.0);
  net.set_service_time(0, 0, 2.0);
  // Four servers of demand 2 saturate at 4 / 2 = 2 jobs per time unit.
  EXPECT_NEAR(saturation_throughput(net, 0), 2.0, 1e-12);
}

TEST(Bounds, DelayOnlyClassNeverSaturates) {
  ClosedNetwork net({{"think", StationKind::kDelay}}, 1);
  net.set_population(0, 5);
  net.set_visit_ratio(0, 0, 1.0);
  net.set_service_time(0, 0, 2.0);
  EXPECT_TRUE(std::isinf(saturation_throughput(net, 0)));
  // The population asymptote still applies: N / Z.
  EXPECT_NEAR(asymptotic_throughput_bound(net, 0), 2.5, 1e-12);
  const MvaSolution exact = solve_mva_exact(net);
  EXPECT_NEAR(exact.throughput[0], 2.5, 1e-12);
}

}  // namespace
}  // namespace latol::qn
