#include "qn/ctmc.hpp"

#include <gtest/gtest.h>

#include "qn/mva_exact.hpp"
#include "util/error.hpp"

namespace latol::qn {
namespace {

/// Single-class cyclic network a -> b -> a with routing attached.
struct CyclicFixture {
  ClosedNetwork net;
  RoutedClosedNetwork routed;
};

CyclicFixture cyclic(long n, double da, double db) {
  ClosedNetwork net({{"a", StationKind::kQueueing},
                     {"b", StationKind::kQueueing}},
                    1);
  net.set_population(0, n);
  net.set_visit_ratio(0, 0, 1.0);
  net.set_visit_ratio(0, 1, 1.0);
  net.set_service_time(0, 0, da);
  net.set_service_time(0, 1, db);
  RoutedClosedNetwork routed;
  util::Matrix p(2, 2);
  p(0, 1) = 1.0;
  p(1, 0) = 1.0;
  routed.routing = {p};
  routed.reference_station = {0};
  return {std::move(net), std::move(routed)};
}

TEST(Ctmc, StateCountIsCompositionProduct) {
  const auto fx = cyclic(3, 1.0, 1.0);
  // 3 customers over 2 stations: 4 compositions.
  EXPECT_EQ(ctmc_state_count(fx.net), 4u);
}

TEST(Ctmc, MatchesExactMvaOnCyclicNetwork) {
  for (const long n : {1L, 2L, 5L}) {
    const auto fx = cyclic(n, 4.0, 6.0);
    const auto ctmc = solve_ctmc(fx.net, fx.routed);
    const auto mva = solve_mva_exact(fx.net);
    EXPECT_NEAR(ctmc.throughput[0], mva.throughput[0], 1e-9) << "N=" << n;
    for (std::size_t m = 0; m < 2; ++m) {
      EXPECT_NEAR(ctmc.queue_length(0, m), mva.queue_length(0, m), 1e-8);
      EXPECT_NEAR(ctmc.utilization[m], mva.utilization[m], 1e-9);
    }
  }
}

TEST(Ctmc, MatchesExactMvaOnBranchingNetwork) {
  // a -> b (0.25) | c (0.75); b,c -> a. Visit ratios 1, .25, .75.
  ClosedNetwork net({{"a", StationKind::kQueueing},
                     {"b", StationKind::kQueueing},
                     {"c", StationKind::kQueueing}},
                    1);
  net.set_population(0, 4);
  net.set_visit_ratio(0, 0, 1.0);
  net.set_visit_ratio(0, 1, 0.25);
  net.set_visit_ratio(0, 2, 0.75);
  net.set_service_time(0, 0, 2.0);
  net.set_service_time(0, 1, 8.0);
  net.set_service_time(0, 2, 3.0);
  RoutedClosedNetwork routed;
  util::Matrix p(3, 3);
  p(0, 1) = 0.25;
  p(0, 2) = 0.75;
  p(1, 0) = 1.0;
  p(2, 0) = 1.0;
  routed.routing = {p};
  routed.reference_station = {0};

  const auto ctmc = solve_ctmc(net, routed);
  const auto mva = solve_mva_exact(net);
  EXPECT_NEAR(ctmc.throughput[0], mva.throughput[0], 1e-9);
  for (std::size_t m = 0; m < 3; ++m)
    EXPECT_NEAR(ctmc.queue_length(0, m), mva.queue_length(0, m), 1e-8);
}

TEST(Ctmc, MatchesExactMvaOnTwoClassNetwork) {
  // Two classes with private processors sharing one memory — the essential
  // structure of the paper's MMS, small enough to solve exactly.
  ClosedNetwork net({{"p0", StationKind::kQueueing},
                     {"p1", StationKind::kQueueing},
                     {"mem", StationKind::kQueueing}},
                    2);
  RoutedClosedNetwork routed;
  routed.reference_station = {0, 1};
  for (std::size_t c = 0; c < 2; ++c) {
    net.set_population(c, 2);
    net.set_visit_ratio(c, c, 1.0);
    net.set_visit_ratio(c, 2, 1.0);
    net.set_service_time(c, c, 5.0);
    net.set_service_time(c, 2, 3.0);
    util::Matrix p(3, 3);
    p(c, 2) = 1.0;
    p(2, c) = 1.0;
    routed.routing.push_back(p);
  }
  const auto ctmc = solve_ctmc(net, routed);
  const auto mva = solve_mva_exact(net);
  for (std::size_t c = 0; c < 2; ++c) {
    EXPECT_NEAR(ctmc.throughput[c], mva.throughput[c], 1e-8);
    for (std::size_t m = 0; m < 3; ++m)
      EXPECT_NEAR(ctmc.queue_length(c, m), mva.queue_length(c, m), 1e-7);
  }
}

TEST(Ctmc, AsymmetricClassesDiffer) {
  // Same structure, different populations: throughput must differ and the
  // CTMC (ground truth) and MVA (product form) must still agree.
  ClosedNetwork net({{"p0", StationKind::kQueueing},
                     {"p1", StationKind::kQueueing},
                     {"mem", StationKind::kQueueing}},
                    2);
  RoutedClosedNetwork routed;
  routed.reference_station = {0, 1};
  for (std::size_t c = 0; c < 2; ++c) {
    net.set_population(c, c == 0 ? 1 : 3);
    net.set_visit_ratio(c, c, 1.0);
    net.set_visit_ratio(c, 2, 1.0);
    net.set_service_time(c, c, 4.0);
    net.set_service_time(c, 2, 2.0);
    util::Matrix p(3, 3);
    p(c, 2) = 1.0;
    p(2, c) = 1.0;
    routed.routing.push_back(p);
  }
  const auto ctmc = solve_ctmc(net, routed);
  const auto mva = solve_mva_exact(net);
  EXPECT_LT(ctmc.throughput[0], ctmc.throughput[1]);
  for (std::size_t c = 0; c < 2; ++c)
    EXPECT_NEAR(ctmc.throughput[c], mva.throughput[c], 1e-8);
}

TEST(Ctmc, EnforcesStateBudget) {
  const auto fx = cyclic(100, 1.0, 1.0);
  CtmcOptions opts;
  opts.max_states = 10;
  EXPECT_THROW(solve_ctmc(fx.net, fx.routed, opts), InvalidArgument);
}

TEST(Ctmc, RejectsNonProductForm) {
  ClosedNetwork net({{"shared", StationKind::kQueueing},
                     {"p0", StationKind::kQueueing},
                     {"p1", StationKind::kQueueing}},
                    2);
  RoutedClosedNetwork routed;
  routed.reference_station = {1, 2};
  for (std::size_t c = 0; c < 2; ++c) {
    net.set_population(c, 1);
    net.set_visit_ratio(c, 0, 1.0);
    net.set_visit_ratio(c, c + 1, 1.0);
    net.set_service_time(c, c + 1, 1.0);
    util::Matrix p(3, 3);
    p(c + 1, 0) = 1.0;
    p(0, c + 1) = 1.0;
    routed.routing.push_back(p);
  }
  net.set_service_time(0, 0, 1.0);
  net.set_service_time(1, 0, 2.0);
  EXPECT_THROW(solve_ctmc(net, routed), InvalidArgument);
}

}  // namespace
}  // namespace latol::qn
