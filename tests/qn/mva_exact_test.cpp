#include "qn/mva_exact.hpp"

#include <gtest/gtest.h>

#include "qn/bounds.hpp"
#include "util/error.hpp"

namespace latol::qn {
namespace {

ClosedNetwork cyclic(long n, double d0, double d1) {
  ClosedNetwork net({{"a", StationKind::kQueueing},
                     {"b", StationKind::kQueueing}},
                    1);
  net.set_population(0, n);
  net.set_visit_ratio(0, 0, 1.0);
  net.set_visit_ratio(0, 1, 1.0);
  net.set_service_time(0, 0, d0);
  net.set_service_time(0, 1, d1);
  return net;
}

TEST(ExactMva, SingleCustomerSeesNoQueueing) {
  const auto sol = solve_mva_exact(cyclic(1, 3.0, 7.0));
  EXPECT_DOUBLE_EQ(sol.throughput[0], 1.0 / 10.0);
  EXPECT_DOUBLE_EQ(sol.waiting(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(sol.waiting(0, 1), 7.0);
}

TEST(ExactMva, BalancedCyclicPairHasKnownUtilization) {
  // Two identical exponential stations in a cycle: U = N / (N + 1).
  for (long n = 1; n <= 10; ++n) {
    const auto sol = solve_mva_exact(cyclic(n, 5.0, 5.0));
    EXPECT_NEAR(sol.utilization[0],
                static_cast<double>(n) / static_cast<double>(n + 1), 1e-12)
        << "N=" << n;
    EXPECT_NEAR(sol.utilization[1], sol.utilization[0], 1e-12);
  }
}

TEST(ExactMva, PopulationIsConserved) {
  const auto net = cyclic(6, 2.0, 9.0);
  const auto sol = solve_mva_exact(net);
  EXPECT_NEAR(sol.station_queue(0) + sol.station_queue(1), 6.0, 1e-10);
}

TEST(ExactMva, LittleLawHoldsPerStation) {
  const auto net = cyclic(4, 2.0, 9.0);
  const auto sol = solve_mva_exact(net);
  for (std::size_t m = 0; m < 2; ++m) {
    EXPECT_NEAR(sol.queue_length(0, m),
                sol.throughput[0] * net.visit_ratio(0, m) * sol.waiting(0, m),
                1e-12);
  }
}

TEST(ExactMva, SaturatedStationDominates) {
  // With a strongly dominant station the bottleneck law becomes tight.
  const auto sol = solve_mva_exact(cyclic(20, 10.0, 0.1));
  EXPECT_NEAR(sol.throughput[0], 1.0 / 10.0, 1e-4);
  EXPECT_GT(sol.queue_length(0, 0), 18.0);
}

TEST(ExactMva, DelayStationNeverQueues) {
  ClosedNetwork net({{"think", StationKind::kDelay},
                     {"cpu", StationKind::kQueueing}},
                    1);
  net.set_population(0, 8);
  net.set_visit_ratio(0, 0, 1.0);
  net.set_visit_ratio(0, 1, 1.0);
  net.set_service_time(0, 0, 50.0);
  net.set_service_time(0, 1, 1.0);
  const auto sol = solve_mva_exact(net);
  // Waiting at a delay station is exactly its service time.
  EXPECT_DOUBLE_EQ(sol.waiting(0, 0), 50.0);
  // Machine-repairman sanity: utilization below 8/51 bound region.
  EXPECT_LE(sol.utilization[1], 1.0);
  EXPECT_GT(sol.utilization[1], 0.14);
}

TEST(ExactMva, TwoClassSymmetricSharedStation) {
  // Two classes, each with its own "processor" plus one shared memory;
  // complete symmetry means identical per-class throughput.
  ClosedNetwork net({{"p0", StationKind::kQueueing},
                     {"p1", StationKind::kQueueing},
                     {"mem", StationKind::kQueueing}},
                    2);
  for (std::size_t c = 0; c < 2; ++c) {
    net.set_population(c, 3);
    net.set_visit_ratio(c, c, 1.0);
    net.set_visit_ratio(c, 2, 1.0);
    net.set_service_time(c, c, 4.0);
    net.set_service_time(c, 2, 2.0);
  }
  const auto sol = solve_mva_exact(net);
  EXPECT_NEAR(sol.throughput[0], sol.throughput[1], 1e-12);
  EXPECT_NEAR(sol.station_queue(0) + sol.station_queue(1) + sol.station_queue(2),
              6.0, 1e-10);
  // The shared station sees both classes: its utilization is the sum.
  EXPECT_NEAR(sol.utilization[2], 2.0 * sol.throughput[0] * 2.0, 1e-12);
}

TEST(ExactMva, ThroughputRespectsAsymptoticBounds) {
  for (const double d1 : {0.5, 2.0, 8.0}) {
    const auto net = cyclic(5, 3.0, d1);
    const auto sol = solve_mva_exact(net);
    EXPECT_LE(sol.throughput[0], asymptotic_throughput_bound(net, 0) + 1e-12);
    EXPECT_GE(sol.throughput[0], pessimistic_throughput_bound(net, 0) - 1e-12);
  }
}

TEST(ExactMva, RejectsNonProductForm) {
  ClosedNetwork net({{"shared", StationKind::kQueueing},
                     {"p0", StationKind::kQueueing},
                     {"p1", StationKind::kQueueing}},
                    2);
  for (std::size_t c = 0; c < 2; ++c) {
    net.set_population(c, 1);
    net.set_visit_ratio(c, 0, 1.0);
    net.set_visit_ratio(c, c + 1, 1.0);
    net.set_service_time(c, c + 1, 1.0);
  }
  net.set_service_time(0, 0, 1.0);
  net.set_service_time(1, 0, 2.0);  // class-dependent at shared FCFS
  EXPECT_THROW(solve_mva_exact(net), InvalidArgument);
}

TEST(ExactMva, RejectsOversizedLattice) {
  auto net = cyclic(1000000, 1.0, 1.0);
  EXPECT_THROW(solve_mva_exact(net, 1000), InvalidArgument);
}

}  // namespace
}  // namespace latol::qn
