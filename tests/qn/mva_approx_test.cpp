#include "qn/mva_approx.hpp"

#include <gtest/gtest.h>

#include "qn/bounds.hpp"
#include "qn/mva_exact.hpp"
#include "util/error.hpp"

namespace latol::qn {
namespace {

ClosedNetwork cyclic(long n, std::vector<double> demands) {
  std::vector<Station> stations;
  for (std::size_t i = 0; i < demands.size(); ++i)
    stations.push_back({"s" + std::to_string(i), StationKind::kQueueing});
  ClosedNetwork net(std::move(stations), 1);
  net.set_population(0, n);
  for (std::size_t i = 0; i < demands.size(); ++i) {
    net.set_visit_ratio(0, i, 1.0);
    net.set_service_time(0, i, demands[i]);
  }
  return net;
}

TEST(Amva, ExactForSinglePopulationOne) {
  // With N=1 the Schweitzer correction vanishes and AMVA is exact.
  const auto net = cyclic(1, {3.0, 7.0, 2.0});
  const auto approx = solve_amva(net);
  const auto exact = solve_mva_exact(net);
  EXPECT_NEAR(approx.throughput[0], exact.throughput[0], 1e-9);
}

TEST(Amva, ConvergesAndReportsIterations) {
  const auto sol = solve_amva(cyclic(8, {5.0, 5.0}));
  EXPECT_TRUE(sol.converged);
  EXPECT_GT(sol.iterations, 0);
}

TEST(Amva, PopulationIsConserved) {
  const auto sol = solve_amva(cyclic(12, {1.0, 2.0, 3.0}));
  double total = 0.0;
  for (std::size_t m = 0; m < 3; ++m) total += sol.station_queue(m);
  EXPECT_NEAR(total, 12.0, 1e-8);
}

TEST(Amva, LittleLawHoldsAtFixedPoint) {
  const auto net = cyclic(5, {4.0, 1.0});
  const auto sol = solve_amva(net);
  for (std::size_t m = 0; m < 2; ++m) {
    EXPECT_NEAR(sol.queue_length(0, m),
                sol.throughput[0] * net.visit_ratio(0, m) * sol.waiting(0, m),
                1e-8);
  }
}

TEST(Amva, WithinFivePercentOfExactOnSingleClass) {
  for (const long n : {2L, 4L, 8L, 16L}) {
    for (const auto& demands :
         {std::vector<double>{5.0, 5.0}, std::vector<double>{10.0, 3.0, 1.0},
          std::vector<double>{1.0, 1.0, 1.0, 8.0}}) {
      const auto net = cyclic(n, demands);
      const auto approx = solve_amva(net);
      const auto exact = solve_mva_exact(net);
      EXPECT_NEAR(approx.throughput[0], exact.throughput[0],
                  0.05 * exact.throughput[0])
          << "N=" << n << " M=" << demands.size();
    }
  }
}

TEST(Amva, MultiClassMatchesExactClosely) {
  // 2 classes, private processors + shared memory (MMS in miniature).
  ClosedNetwork net({{"p0", StationKind::kQueueing},
                     {"p1", StationKind::kQueueing},
                     {"mem", StationKind::kQueueing}},
                    2);
  for (std::size_t c = 0; c < 2; ++c) {
    net.set_population(c, 4);
    net.set_visit_ratio(c, c, 1.0);
    net.set_visit_ratio(c, 2, 1.0);
    net.set_service_time(c, c, 10.0);
    net.set_service_time(c, 2, 6.0);
  }
  const auto approx = solve_amva(net);
  const auto exact = solve_mva_exact(net);
  for (std::size_t c = 0; c < 2; ++c) {
    EXPECT_NEAR(approx.throughput[c], exact.throughput[c],
                0.05 * exact.throughput[c]);
  }
}

TEST(Amva, SymmetricClassesGetIdenticalResults) {
  ClosedNetwork net({{"p0", StationKind::kQueueing},
                     {"p1", StationKind::kQueueing},
                     {"p2", StationKind::kQueueing},
                     {"mem", StationKind::kQueueing}},
                    3);
  for (std::size_t c = 0; c < 3; ++c) {
    net.set_population(c, 5);
    net.set_visit_ratio(c, c, 1.0);
    net.set_visit_ratio(c, 3, 1.0);
    net.set_service_time(c, c, 7.0);
    net.set_service_time(c, 3, 3.0);
  }
  const auto sol = solve_amva(net);
  EXPECT_NEAR(sol.throughput[0], sol.throughput[1], 1e-9);
  EXPECT_NEAR(sol.throughput[1], sol.throughput[2], 1e-9);
}

TEST(Amva, ZeroPopulationClassIsInert) {
  ClosedNetwork net({{"p0", StationKind::kQueueing},
                     {"mem", StationKind::kQueueing}},
                    2);
  net.set_population(0, 3);
  net.set_visit_ratio(0, 0, 1.0);
  net.set_visit_ratio(0, 1, 1.0);
  net.set_service_time(0, 0, 2.0);
  net.set_service_time(0, 1, 2.0);
  // Class 1 exists but is empty.
  net.set_visit_ratio(1, 1, 1.0);
  net.set_service_time(1, 1, 2.0);
  const auto sol = solve_amva(net);
  EXPECT_EQ(sol.throughput[1], 0.0);
  EXPECT_EQ(sol.queue_length(1, 1), 0.0);
  EXPECT_GT(sol.throughput[0], 0.0);
}

TEST(Amva, RespectsAsymptoticBoundsSingleClass) {
  for (const long n : {1L, 3L, 9L, 27L}) {
    const auto net = cyclic(n, {6.0, 2.0, 2.0});
    const auto sol = solve_amva(net);
    EXPECT_LE(sol.throughput[0], asymptotic_throughput_bound(net, 0) + 1e-9);
    EXPECT_GE(sol.throughput[0], pessimistic_throughput_bound(net, 0) - 1e-9);
  }
}

TEST(Amva, DelayStationHandled) {
  ClosedNetwork net({{"think", StationKind::kDelay},
                     {"cpu", StationKind::kQueueing}},
                    1);
  net.set_population(0, 10);
  net.set_visit_ratio(0, 0, 1.0);
  net.set_visit_ratio(0, 1, 1.0);
  net.set_service_time(0, 0, 100.0);
  net.set_service_time(0, 1, 1.0);
  const auto sol = solve_amva(net);
  EXPECT_DOUBLE_EQ(sol.waiting(0, 0), 100.0);
  const auto exact = solve_mva_exact(net);
  EXPECT_NEAR(sol.throughput[0], exact.throughput[0],
              0.03 * exact.throughput[0]);
}

TEST(Amva, RejectsBadOptions) {
  const auto net = cyclic(2, {1.0, 1.0});
  AmvaOptions bad;
  bad.tolerance = 0.0;
  EXPECT_THROW(solve_amva(net, bad), InvalidArgument);
  bad = AmvaOptions{};
  bad.damping = 1.5;
  EXPECT_THROW(solve_amva(net, bad), InvalidArgument);
}

TEST(Amva, UnconvergedFlagOnTinyBudget) {
  AmvaOptions opts;
  opts.max_iterations = 1;
  // Unbalanced demands: the proportional initial guess is not the fixed
  // point, so one iteration cannot converge. (A perfectly balanced network
  // starts exactly at the fixed point — that case converges immediately.)
  const auto sol = solve_amva(cyclic(50, {1.0, 2.0, 3.0, 4.0}), opts);
  EXPECT_FALSE(sol.converged);
  const auto balanced = solve_amva(cyclic(50, {2.0, 2.0}), opts);
  EXPECT_TRUE(balanced.converged);
}

TEST(Amva, DampingReachesSameFixedPoint) {
  const auto net = cyclic(6, {3.0, 5.0, 2.0});
  AmvaOptions damped;
  damped.damping = 0.5;
  const auto a = solve_amva(net);
  const auto b = solve_amva(net, damped);
  EXPECT_NEAR(a.throughput[0], b.throughput[0], 1e-7);
}

}  // namespace
}  // namespace latol::qn
