// Cooperative cancellation: an expired CancelToken must abort every
// iterative solver with kDeadlineExceeded, the robust chain must treat
// that as terminal (a caller that stopped waiting gains nothing from a
// fallback answer), and a null token must cost nothing.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "qn/mva_approx.hpp"
#include "qn/mva_exact.hpp"
#include "qn/mva_linearizer.hpp"
#include "qn/network.hpp"
#include "qn/robust.hpp"
#include "qn/solver_error.hpp"
#include "util/cancel.hpp"

namespace latol::qn {
namespace {

/// Single-class cycle of queueing stations with the given demands.
ClosedNetwork cyclic(long n, const std::vector<double>& demands) {
  std::vector<Station> stations;
  for (std::size_t m = 0; m < demands.size(); ++m)
    stations.push_back({"s" + std::to_string(m), StationKind::kQueueing});
  ClosedNetwork net(std::move(stations), 1);
  net.set_population(0, n);
  for (std::size_t m = 0; m < demands.size(); ++m) {
    net.set_visit_ratio(0, m, 1.0);
    net.set_service_time(0, m, demands[m]);
  }
  return net;
}

// --- token semantics ---

TEST(CancelToken, FreshTokenIsNotExpired) {
  const util::CancelToken token;
  EXPECT_FALSE(token.expired());
  EXPECT_FALSE(token.has_deadline());
}

TEST(CancelToken, CancelTripsImmediately) {
  util::CancelToken token;
  token.cancel();
  EXPECT_TRUE(token.expired());
}

TEST(CancelToken, NonPositiveDeadlineExpiresImmediately) {
  util::CancelToken token;
  token.set_deadline_after(0.0);
  EXPECT_TRUE(token.expired());
  EXPECT_TRUE(token.has_deadline());
}

TEST(CancelToken, FutureDeadlineIsNotExpiredYet) {
  util::CancelToken token;
  token.set_deadline_after(3600.0);
  EXPECT_FALSE(token.expired());
  EXPECT_TRUE(token.has_deadline());
}

TEST(CancelToken, ChildExpiresWhenParentDoes) {
  util::CancelToken parent;
  util::CancelToken child(&parent);
  EXPECT_FALSE(child.expired());
  parent.cancel();
  EXPECT_TRUE(child.expired());
}

TEST(CancelToken, ChildExpiryDoesNotTripParent) {
  util::CancelToken parent;
  util::CancelToken child(&parent);
  child.cancel();
  EXPECT_TRUE(child.expired());
  EXPECT_FALSE(parent.expired());
}

// --- solver abort paths ---

TEST(Cancel, AmvaThrowsDeadlineExceededWhenTokenExpired) {
  util::CancelToken token;
  token.cancel();
  AmvaOptions opts;
  opts.cancel = &token;
  try {
    (void)solve_amva(cyclic(8, {1.0, 2.0}), opts);
    FAIL() << "expected SolverError";
  } catch (const SolverError& e) {
    EXPECT_EQ(e.code(), SolverErrorCode::kDeadlineExceeded);
  }
}

TEST(Cancel, LinearizerThrowsDeadlineExceededWhenTokenExpired) {
  util::CancelToken token;
  token.cancel();
  LinearizerOptions opts;
  opts.cancel = &token;
  try {
    (void)solve_linearizer(cyclic(8, {1.0, 2.0}), opts);
    FAIL() << "expected SolverError";
  } catch (const SolverError& e) {
    EXPECT_EQ(e.code(), SolverErrorCode::kDeadlineExceeded);
  }
}

TEST(Cancel, ExactMvaThrowsDeadlineExceededWhenTokenExpired) {
  util::CancelToken token;
  token.cancel();
  try {
    (void)solve_mva_exact(cyclic(8, {1.0, 2.0}), 50'000'000, 0, &token);
    FAIL() << "expected SolverError";
  } catch (const SolverError& e) {
    EXPECT_EQ(e.code(), SolverErrorCode::kDeadlineExceeded);
  }
}

TEST(Cancel, NullTokenSolvesNormally) {
  AmvaOptions opts;
  opts.cancel = nullptr;
  const MvaSolution sol = solve_amva(cyclic(8, {1.0, 2.0}), opts);
  EXPECT_TRUE(sol.converged);
}

// --- robust chain: deadline is terminal ---

TEST(Cancel, RobustSolveReportsDeadlineWithoutFallback) {
  util::CancelToken token;
  token.cancel();
  RobustOptions opts;
  opts.amva.cancel = &token;
  const SolveReport report = robust_solve(cyclic(8, {1.0, 2.0}), opts);
  EXPECT_FALSE(report.ok());
  ASSERT_TRUE(report.error.has_value());
  EXPECT_EQ(*report.error, SolverErrorCode::kDeadlineExceeded);
  // Terminal: the chain must stop at the first deadline, not burn the
  // caller's (already exhausted) budget on fallback links.
  EXPECT_LE(report.attempts.size(), 1u);
}

TEST(Cancel, RobustSolveDeadlineTrumpsEarlierFailureCodes) {
  // AMVA fails for a real reason first (budget of 1 iteration), then the
  // token expires before the Linearizer link: the report must still say
  // deadline-exceeded — the caller's budget ran out, nothing else
  // matters to them.
  util::CancelToken token;
  RobustOptions opts;
  opts.amva.max_iterations = 1;
  opts.amva.cancel = &token;
  token.cancel();
  const SolveReport report = robust_solve(cyclic(8, {1.0, 2.0}), opts);
  EXPECT_FALSE(report.ok());
  ASSERT_TRUE(report.error.has_value());
  EXPECT_EQ(*report.error, SolverErrorCode::kDeadlineExceeded);
}

TEST(Cancel, RobustSolveForwardsTokenToLinearizerLink) {
  // A generous AMVA token that a later link inherits: with AMVA disabled
  // by iteration budget and the token already tripped, the Linearizer
  // link must see the forwarded token and abort.
  util::CancelToken token;
  token.cancel();
  RobustOptions opts;
  opts.chain = {SolverKind::kLinearizer};
  opts.amva.cancel = &token;
  const SolveReport report = robust_solve(cyclic(8, {1.0, 2.0}), opts);
  EXPECT_FALSE(report.ok());
  ASSERT_TRUE(report.error.has_value());
  EXPECT_EQ(*report.error, SolverErrorCode::kDeadlineExceeded);
}

TEST(Cancel, DeadlineExceededHasTaxonomyName) {
  EXPECT_EQ(
      std::string(solver_error_name(SolverErrorCode::kDeadlineExceeded)),
      "deadline-exceeded");
}

}  // namespace
}  // namespace latol::qn
