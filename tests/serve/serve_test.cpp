// Fault-injection and robustness suite for the analysis daemon: the HTTP
// parse corpus, admission control (bounded queue + 503 shedding),
// request deadlines (504 without wedging a worker), graceful drain, and
// byte-identity of /v1/<command> responses with the CLI.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli/options.hpp"
#include "cli/serve_cmd.hpp"
#include "io/json.hpp"
#include "serve/http.hpp"
#include "serve/server.hpp"
#include "util/error.hpp"

namespace latol::serve {
namespace {

// --- raw TCP client helpers ----------------------------------------------

int connect_to(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  return fd;
}

void send_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    sent += static_cast<std::size_t>(n);
  }
}

std::string read_to_eof(int fd) {
  std::string out;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;
    out.append(chunk, static_cast<std::size_t>(n));
  }
  return out;
}

/// A parsed raw response: status line code, headers, body.
struct RawResponse {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  [[nodiscard]] std::string header(const std::string& name) const {
    for (const auto& [key, value] : headers) {
      if (key == name) return value;
    }
    return "";
  }
};

RawResponse parse_response(const std::string& raw) {
  RawResponse r;
  const std::size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) return r;
  r.body = raw.substr(head_end + 4);
  std::size_t pos = raw.find("\r\n");
  if (pos == std::string::npos || raw.size() < 12) return r;
  r.status = std::stoi(raw.substr(9, 3));
  pos += 2;
  while (pos < head_end) {
    std::size_t end = raw.find("\r\n", pos);
    if (end == std::string::npos || end > head_end) end = head_end;
    const std::string line = raw.substr(pos, end - pos);
    pos = end + 2;
    const std::size_t colon = line.find(": ");
    if (colon != std::string::npos) {
      r.headers.emplace_back(line.substr(0, colon), line.substr(colon + 2));
    }
  }
  return r;
}

/// Send one full request and collect the response.
RawResponse roundtrip(int port, const std::string& request) {
  const int fd = connect_to(port);
  send_all(fd, request);
  const RawResponse r = parse_response(read_to_eof(fd));
  ::close(fd);
  return r;
}

std::string make_request(const std::string& method, const std::string& target,
                         const std::string& body = "",
                         const std::string& extra_headers = "") {
  return method + " " + target + " HTTP/1.1\r\nHost: t\r\n" + extra_headers +
         "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n" + body;
}

/// A running server for one test, torn down via drain.
class TestServer {
 public:
  explicit TestServer(ServerConfig config)
      : server_(std::move(config), cli::make_command_runner(), nullptr) {
    server_.start();
  }
  ~TestServer() {
    if (!stopped_) stop();
  }
  int stop() {
    stopped_ = true;
    server_.request_stop();
    return server_.run();
  }
  [[nodiscard]] int port() const { return server_.port(); }
  [[nodiscard]] Server& server() { return server_; }

 private:
  Server server_;
  bool stopped_ = false;
};

ServerConfig small_config() {
  ServerConfig config;
  config.port = 0;
  config.max_concurrent = 2;
  config.queue_limit = 4;
  config.http.read_timeout_s = 5.0;
  return config;
}

// --- parse_http_head corpus ----------------------------------------------

TEST(ParseHttpHead, ValidRequestLineAndHeaders) {
  HttpRequest req;
  std::string error;
  ASSERT_TRUE(parse_http_head(
      "POST /v1/analyze HTTP/1.1\r\nContent-Type: application/json\r\n"
      "X-Deadline-Ms:  250 ",
      req, &error));
  EXPECT_EQ(req.method, "POST");
  EXPECT_EQ(req.target, "/v1/analyze");
  ASSERT_EQ(req.headers.size(), 2u);
  EXPECT_EQ(req.headers[0].first, "content-type");  // names lowercased
  EXPECT_EQ(req.headers[1].second, "250");          // values trimmed
  ASSERT_NE(req.header("x-deadline-ms"), nullptr);
  ASSERT_NE(req.header("X-DEADLINE-MS"), nullptr);  // lookup insensitive
}

TEST(ParseHttpHead, MalformedCorpusAllRejected) {
  const char* corpus[] = {
      "",                                    // empty
      "GARBAGE",                             // no spaces
      "GET /x",                              // missing version
      "GET /x HTTP/2.0",                     // unsupported version
      "GET x HTTP/1.1",                      // target not absolute
      "G@T /x HTTP/1.1",                     // method not a token
      "GET /x HTTP/1.1\r\nno-colon-line",    // header without colon
      "GET /x HTTP/1.1\r\nbad name: v",      // header name with space
      " GET /x HTTP/1.1",                    // leading space
  };
  for (const char* head : corpus) {
    HttpRequest req;
    std::string error;
    EXPECT_FALSE(parse_http_head(head, req, &error)) << "head: " << head;
    EXPECT_FALSE(error.empty()) << "head: " << head;
  }
}

// --- config parsing -------------------------------------------------------

TEST(ServerConfig, UnknownKeyIsRejected) {
  EXPECT_THROW(
      (void)ServerConfig::from_json(io::parse_json("{\"prot\": 80}")),
      InvalidArgument);
}

TEST(ServerConfig, IllTypedValueIsRejected) {
  EXPECT_THROW(
      (void)ServerConfig::from_json(io::parse_json("{\"port\": \"80\"}")),
      InvalidArgument);
  EXPECT_THROW(
      (void)ServerConfig::from_json(io::parse_json("{\"port\": 70000}")),
      InvalidArgument);
  EXPECT_THROW(
      (void)ServerConfig::from_json(io::parse_json("{\"queue_limit\": 0}")),
      InvalidArgument);
}

TEST(ServerConfig, ParsesEveryKnownKey) {
  const ServerConfig c = ServerConfig::from_json(io::parse_json(R"({
    "host": "127.0.0.1", "port": 8080, "max_concurrent": 3,
    "queue_limit": 7, "default_deadline_ms": 100, "max_deadline_ms": 5000,
    "retry_after_s": 2, "cache_path": "/tmp/c.json", "cache_capacity": 50,
    "read_timeout_s": 1.5, "max_head_bytes": 1024, "max_body_bytes": 2048
  })"));
  EXPECT_EQ(c.port, 8080);
  EXPECT_EQ(c.max_concurrent, 3u);
  EXPECT_EQ(c.queue_limit, 7u);
  EXPECT_DOUBLE_EQ(c.default_deadline_ms, 100.0);
  EXPECT_DOUBLE_EQ(c.max_deadline_ms, 5000.0);
  EXPECT_EQ(c.retry_after_s, 2);
  EXPECT_EQ(c.cache_path, "/tmp/c.json");
  EXPECT_EQ(c.cache_capacity, 50u);
  EXPECT_DOUBLE_EQ(c.http.read_timeout_s, 1.5);
  EXPECT_EQ(c.http.max_head_bytes, 1024u);
  EXPECT_EQ(c.http.max_body_bytes, 2048u);
}

// --- endpoints ------------------------------------------------------------

TEST(Serve, HealthzAnswersOk) {
  TestServer ts(small_config());
  const RawResponse r = roundtrip(ts.port(), make_request("GET", "/healthz"));
  EXPECT_EQ(r.status, 200);
  // Body carries the build version after the token: "ok <version>\n".
  EXPECT_EQ(r.body.rfind("ok ", 0), 0u);
  EXPECT_EQ(r.body.back(), '\n');
}

TEST(Serve, UnknownPathIs404AndWrongMethodIs405) {
  TestServer ts(small_config());
  EXPECT_EQ(roundtrip(ts.port(), make_request("GET", "/nope")).status, 404);
  EXPECT_EQ(roundtrip(ts.port(), make_request("POST", "/healthz")).status,
            405);
  EXPECT_EQ(roundtrip(ts.port(), make_request("GET", "/v1/analyze")).status,
            405);
  EXPECT_EQ(roundtrip(ts.port(), make_request("POST", "/v1/nope")).status,
            404);
}

TEST(Serve, AnalyzeResponseIsByteIdenticalToCli) {
  TestServer ts(small_config());
  const RawResponse r = roundtrip(
      ts.port(), make_request("POST", "/v1/analyze",
                              R"({"args": ["--k", "3", "--threads", "4"]})"));
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.header("X-Latol-Exit"), "0");

  std::ostringstream expected;
  const cli::CliOptions opts = cli::parse_command_line(
      {"analyze", "--k", "3", "--threads", "4"});
  EXPECT_EQ(cli::run_command(opts, expected), 0);
  EXPECT_EQ(r.body, expected.str());
}

TEST(Serve, UsageErrorsMapTo400) {
  TestServer ts(small_config());
  const RawResponse r = roundtrip(
      ts.port(),
      make_request("POST", "/v1/analyze", R"({"args": ["--bogus"]})"));
  EXPECT_EQ(r.status, 400);
  EXPECT_EQ(r.header("X-Latol-Exit"), "2");
}

TEST(Serve, FileWritingFlagsAreRejected) {
  TestServer ts(small_config());
  const RawResponse r = roundtrip(
      ts.port(),
      make_request("POST", "/v1/analyze",
                   R"({"args": ["--trace", "/tmp/x.json"]})"));
  EXPECT_EQ(r.status, 400);
  EXPECT_NE(r.body.find("not allowed"), std::string::npos);
}

TEST(Serve, ScenarioEndpointRunsAgainstTheWarmCache) {
  TestServer ts(small_config());
  const std::string scenario = R"({
    "name": "served",
    "base": {"k": 2},
    "axes": [{"param": "p_remote", "values": [0.1, 0.2]}],
    "outputs": {"network_tolerance": true}
  })";
  const RawResponse r1 = roundtrip(
      ts.port(), make_request("POST", "/v1/scenario", scenario));
  EXPECT_EQ(r1.status, 200);
  EXPECT_EQ(r1.header("X-Latol-Exit"), "0");
  const io::Json doc = io::parse_json(r1.body);
  ASSERT_NE(doc.find("results"), nullptr);
  ASSERT_NE(doc.find("manifest"), nullptr);

  // The second run of the same scenario is served from the warm cache.
  const RawResponse r2 = roundtrip(
      ts.port(), make_request("POST", "/v1/scenario", scenario));
  EXPECT_EQ(r2.status, 200);
  EXPECT_GT(ts.server().cache().hits(), 0u);
}

TEST(Serve, MetricsExposesPrometheusText) {
  TestServer ts(small_config());
  (void)roundtrip(ts.port(), make_request("GET", "/healthz"));
  const RawResponse r = roundtrip(ts.port(), make_request("GET", "/metrics"));
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("# TYPE latol_serve_requests_total counter"),
            std::string::npos);
  EXPECT_NE(r.body.find("latol_serve_queue_depth"), std::string::npos);
  EXPECT_NE(r.body.find("latol_serve_in_flight"), std::string::npos);
  EXPECT_NE(r.body.find("latol_serve_cache_hit_ratio"), std::string::npos);
  // Process gauges and the request-latency histogram (cumulative buckets
  // plus _sum/_count) ride along on the same endpoint.
  EXPECT_NE(r.body.find("latol_process_uptime_seconds"), std::string::npos);
  EXPECT_NE(r.body.find(
                "# TYPE latol_serve_request_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(r.body.find("latol_serve_request_latency_seconds_bucket{le=\""),
            std::string::npos);
  EXPECT_NE(r.body.find(
                "latol_serve_request_latency_seconds_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(r.body.find("latol_serve_request_latency_seconds_count"),
            std::string::npos);
  EXPECT_NE(r.body.find("latol_serve_accepted_total"), std::string::npos);
}

TEST(Serve, EveryResponseCarriesAUniqueRequestId) {
  TestServer ts(small_config());
  const RawResponse a = roundtrip(ts.port(), make_request("GET", "/healthz"));
  const RawResponse b = roundtrip(ts.port(), make_request("GET", "/nope"));
  const std::string id_a = a.header("X-Latol-Request-Id");
  const std::string id_b = b.header("X-Latol-Request-Id");
  // Format: 16-hex boot token, dash, sequence number.
  ASSERT_EQ(id_a.size(), 23u);
  EXPECT_EQ(id_a[16], '-');
  ASSERT_EQ(id_b.size(), 23u);
  EXPECT_NE(id_a, id_b);  // unique within a boot
  EXPECT_EQ(id_a.substr(0, 16), id_b.substr(0, 16));  // same boot token
}

// --- fault injection ------------------------------------------------------

TEST(Serve, MalformedRequestGets400) {
  TestServer ts(small_config());
  const int fd = connect_to(ts.port());
  send_all(fd, "GARBAGE\r\n\r\n");
  const RawResponse r = parse_response(read_to_eof(fd));
  ::close(fd);
  EXPECT_EQ(r.status, 400);
}

TEST(Serve, OversizedDeclaredBodyGets413) {
  ServerConfig config = small_config();
  config.http.max_body_bytes = 64;
  TestServer ts(config);
  const int fd = connect_to(ts.port());
  send_all(fd,
           "POST /v1/analyze HTTP/1.1\r\nContent-Length: 100000\r\n\r\n");
  const RawResponse r = parse_response(read_to_eof(fd));
  ::close(fd);
  EXPECT_EQ(r.status, 413);
}

TEST(Serve, OversizedHeadGets413) {
  ServerConfig config = small_config();
  config.http.max_head_bytes = 256;
  TestServer ts(config);
  const int fd = connect_to(ts.port());
  send_all(fd, "GET /healthz HTTP/1.1\r\nX-Junk: " +
                   std::string(1024, 'a') + "\r\n\r\n");
  const RawResponse r = parse_response(read_to_eof(fd));
  ::close(fd);
  EXPECT_EQ(r.status, 413);
}

TEST(Serve, MidRequestDisconnectDoesNotPoisonTheServer) {
  TestServer ts(small_config());
  const int fd = connect_to(ts.port());
  send_all(fd, "POST /v1/analyze HTTP/1.1\r\nContent-Length: 50\r\n\r\npar");
  ::close(fd);  // disconnect mid-body
  // The server must shrug it off and keep answering.
  const RawResponse r = roundtrip(ts.port(), make_request("GET", "/healthz"));
  EXPECT_EQ(r.status, 200);
}

TEST(Serve, SlowClientIsCutOffWith408) {
  ServerConfig config = small_config();
  config.http.read_timeout_s = 0.2;
  TestServer ts(config);
  const int fd = connect_to(ts.port());
  send_all(fd, "GET /healthz HTT");  // stall mid request line
  const RawResponse r = parse_response(read_to_eof(fd));
  ::close(fd);
  EXPECT_EQ(r.status, 408);
}

// --- admission control ----------------------------------------------------

TEST(Serve, BurstBeyondCapacityShedsWith503) {
  ServerConfig config = small_config();
  config.max_concurrent = 1;
  config.queue_limit = 1;
  config.http.read_timeout_s = 2.0;
  TestServer ts(config);

  // Occupy the single worker with a slow-loris connection...
  const int slow = connect_to(ts.port());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // ...then burst 4 real requests: one fits the queue, three are shed.
  std::vector<int> burst;
  for (int i = 0; i < 4; ++i) {
    const int fd = connect_to(ts.port());
    send_all(fd, make_request("GET", "/healthz"));
    burst.push_back(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  int ok = 0;
  int shed = 0;
  for (const int fd : burst) {
    const RawResponse r = parse_response(read_to_eof(fd));
    ::close(fd);
    if (r.status == 200) ++ok;
    if (r.status == 503) {
      ++shed;
      EXPECT_FALSE(r.header("Retry-After").empty());
    }
  }
  ::close(slow);
  EXPECT_EQ(shed, 3);  // queue_limit = 1: exactly one burst request queued
  EXPECT_EQ(ok, 1);    // ...and answered once the worker freed up
  EXPECT_GE(ts.server().stats().shed, 3u);
}

// --- deadlines ------------------------------------------------------------

TEST(Serve, ExpiredDeadlineReturns504Promptly) {
  TestServer ts(small_config());
  const auto start = std::chrono::steady_clock::now();
  const RawResponse r = roundtrip(
      ts.port(),
      make_request("POST", "/v1/analyze", R"({"args": ["--k", "4"]})",
                   "X-Deadline-Ms: 0.001\r\n"));
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(r.status, 504);
  EXPECT_EQ(r.header("X-Latol-Exit"), std::to_string(kDeadlineExit));
  EXPECT_LT(elapsed, 2.0);  // the worker was freed, not wedged
  EXPECT_GE(ts.server().stats().deadline, 1u);
}

TEST(Serve, MalformedDeadlineHeaderIs400) {
  TestServer ts(small_config());
  const RawResponse r = roundtrip(
      ts.port(), make_request("POST", "/v1/analyze", "",
                              "X-Deadline-Ms: soon\r\n"));
  EXPECT_EQ(r.status, 400);
}

TEST(Serve, MaxDeadlineClampsClientRequests) {
  ServerConfig config = small_config();
  config.max_deadline_ms = 0.001;  // everything expires immediately
  TestServer ts(config);
  const RawResponse r = roundtrip(
      ts.port(),
      make_request("POST", "/v1/analyze", R"({"args": ["--k", "4"]})",
                   "X-Deadline-Ms: 3600000\r\n"));
  EXPECT_EQ(r.status, 504);
}

// --- graceful drain -------------------------------------------------------

TEST(Serve, CleanDrainExitsZero) {
  TestServer ts(small_config());
  (void)roundtrip(ts.port(), make_request("GET", "/healthz"));
  EXPECT_EQ(ts.stop(), 0);
  const ServerStats stats = ts.server().stats();
  EXPECT_GE(stats.accepted, 1u);
  EXPECT_GE(stats.handled, 1u);
}

TEST(Serve, DrainShedsQueuedConnections) {
  ServerConfig config = small_config();
  config.max_concurrent = 1;
  config.queue_limit = 4;
  config.http.read_timeout_s = 1.0;
  TestServer ts(config);

  // Worker busy on a slow-loris; the next request sits in the queue.
  const int slow = connect_to(ts.port());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const int queued = connect_to(ts.port());
  send_all(queued, make_request("GET", "/healthz"));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  EXPECT_EQ(ts.stop(), 0);

  // The queued connection was shed with 503, not silently dropped.
  const RawResponse r = parse_response(read_to_eof(queued));
  ::close(queued);
  ::close(slow);
  EXPECT_EQ(r.status, 503);
  EXPECT_GE(ts.server().stats().shed, 1u);
}

TEST(Serve, DrainFlushesTheCacheAtomically) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "latol_serve_cache.json")
          .string();
  std::filesystem::remove(path);
  {
    ServerConfig config = small_config();
    config.cache_path = path;
    TestServer ts(config);
    (void)roundtrip(
        ts.port(),
        make_request("POST", "/v1/scenario", R"({
          "name": "warm", "base": {"k": 2},
          "axes": [{"param": "p_remote", "values": [0.1]}]
        })"));
    EXPECT_EQ(ts.stop(), 0);
  }
  EXPECT_TRUE(std::filesystem::exists(path));
  const io::Json doc = io::parse_json_file(path);
  ASSERT_NE(doc.find("entries"), nullptr);
  EXPECT_FALSE(doc.find("entries")->as_array().empty());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace latol::serve
