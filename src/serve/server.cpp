#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <ostream>
#include <random>
#include <sstream>
#include <utility>

#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "obs/span.hpp"
#include "util/error.hpp"

namespace latol::serve {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Flags a request must not smuggle into an injected CLI command: they
/// write files on the server host (or redirect its cache), which a remote
/// caller has no business doing.
constexpr const char* kForbiddenFlags[] = {"--trace", "--trace-out",
                                           "--metrics-out", "--out",
                                           "--cache"};

HttpResponse text_response(int status, std::string body) {
  HttpResponse r;
  r.status = status;
  r.body = std::move(body);
  return r;
}

HttpResponse error_response(int status, const std::string& message) {
  return text_response(status, "latol serve: " + message + "\n");
}

double json_field_number(const io::Json& doc, const std::string& key) {
  const io::Json* v = doc.find(key);
  if (v == nullptr || !v->is_number()) {
    throw InvalidArgument("server config key `" + key + "` must be a number");
  }
  return v->as_number();
}

std::size_t json_field_size(const io::Json& doc, const std::string& key) {
  const double v = json_field_number(doc, key);
  if (v < 0 || v != std::floor(v)) {
    throw InvalidArgument("server config key `" + key +
                          "` must be a non-negative integer");
  }
  return static_cast<std::size_t>(v);
}

void set_send_timeout(int fd, double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec =
      static_cast<suseconds_t>((seconds - std::floor(seconds)) * 1e6);
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

}  // namespace

ServerConfig ServerConfig::from_json(const io::Json& doc) {
  ServerConfig config;
  if (!doc.is_object()) {
    throw InvalidArgument("server config must be a JSON object");
  }
  for (const auto& [key, value] : doc.as_object()) {
    if (key == "host") {
      if (!value.is_string()) {
        throw InvalidArgument("server config key `host` must be a string");
      }
      config.host = value.as_string();
    } else if (key == "port") {
      const double p = json_field_number(doc, key);
      if (p < 0 || p > 65535 || p != std::floor(p)) {
        throw InvalidArgument("server config key `port` must be 0..65535");
      }
      config.port = static_cast<int>(p);
    } else if (key == "max_concurrent") {
      config.max_concurrent = json_field_size(doc, key);
    } else if (key == "queue_limit") {
      config.queue_limit = json_field_size(doc, key);
    } else if (key == "default_deadline_ms") {
      config.default_deadline_ms = json_field_number(doc, key);
    } else if (key == "max_deadline_ms") {
      config.max_deadline_ms = json_field_number(doc, key);
    } else if (key == "retry_after_s") {
      config.retry_after_s = static_cast<int>(json_field_size(doc, key));
    } else if (key == "cache_path") {
      if (!value.is_string()) {
        throw InvalidArgument(
            "server config key `cache_path` must be a string");
      }
      config.cache_path = value.as_string();
    } else if (key == "cache_capacity") {
      config.cache_capacity = json_field_size(doc, key);
    } else if (key == "read_timeout_s") {
      config.http.read_timeout_s = json_field_number(doc, key);
    } else if (key == "max_head_bytes") {
      config.http.max_head_bytes = json_field_size(doc, key);
    } else if (key == "max_body_bytes") {
      config.http.max_body_bytes = json_field_size(doc, key);
    } else {
      throw InvalidArgument("unknown server config key `" + key + "`");
    }
  }
  if (config.queue_limit == 0) {
    throw InvalidArgument("server config `queue_limit` must be >= 1");
  }
  if (config.http.read_timeout_s <= 0) {
    throw InvalidArgument("server config `read_timeout_s` must be > 0");
  }
  return config;
}

ServerConfig ServerConfig::load(const std::string& path) {
  return from_json(io::parse_json_file(path));
}

Server::Server(ServerConfig config, CommandRunner runner, std::ostream* log)
    : config_(std::move(config)), runner_(std::move(runner)), log_(log) {
  LATOL_REQUIRE(runner_ != nullptr, "Server needs a CommandRunner");
  std::random_device rd;
  boot_token_ = (static_cast<std::uint64_t>(rd()) << 32) |
                static_cast<std::uint64_t>(rd());
}

std::string Server::next_request_id() {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%016llx-%06llu",
                static_cast<unsigned long long>(boot_token_),
                static_cast<unsigned long long>(
                    request_seq_.fetch_add(1, std::memory_order_relaxed)));
  return buf;
}

Server::~Server() {
  request_stop();
  if (acceptor_.joinable()) acceptor_.join();
  queue_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  for (const int fd : queue_) ::close(fd);
  queue_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
  if (registry_installed_) obs::set_default_registry(previous_registry_);
}

void Server::log_line(const std::string& line) {
  if (log_ != nullptr) {
    *log_ << line << '\n';
    log_->flush();  // serve_smoke.py reads the port from this stream live
  }
}

void Server::start() {
  LATOL_REQUIRE(listen_fd_ < 0, "Server already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  LATOL_REQUIRE(listen_fd_ >= 0, "cannot create listen socket");
  const int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    throw InvalidArgument("cannot parse listen address `" + config_.host +
                          "` (IPv4 dotted quad expected)");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    throw InvalidArgument("cannot bind " + config_.host + ":" +
                          std::to_string(config_.port) + ": " +
                          std::strerror(errno));
  }
  LATOL_REQUIRE(::listen(listen_fd_, SOMAXCONN) == 0,
                "listen failed: " << std::strerror(errno));
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  LATOL_REQUIRE(
      ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
          0,
      "getsockname failed");
  port_ = static_cast<int>(ntohs(bound.sin_port));

  // Self-pipe: request_stop() can only use async-signal-safe calls, so it
  // wakes the poll()ing acceptor with a one-byte write.
  LATOL_REQUIRE(::pipe(wake_pipe_) == 0, "cannot create wake pipe");

  if (!config_.cache_path.empty()) {
    std::string warning;
    const std::size_t n =
        cache_.load(config_.cache_path, exp::build_version(), &warning);
    if (!warning.empty()) {
      log_line("latol serve: warning: " + warning);
    } else if (n > 0) {
      log_line("latol serve: loaded " + std::to_string(n) +
               " cache entries from " + config_.cache_path);
    }
  }
  if (config_.cache_capacity > 0) cache_.set_capacity(config_.cache_capacity);

  previous_registry_ = obs::set_default_registry(&registry_);
  registry_installed_ = true;
  started_at_ = std::chrono::steady_clock::now();

  std::size_t n_workers = config_.max_concurrent;
  if (n_workers == 0) {
    n_workers = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(n_workers);
  for (std::size_t i = 0; i < n_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  acceptor_ = std::thread([this] { accept_loop(); });

  log_line("latol serve: listening on " + config_.host + ":" +
           std::to_string(port_) + " (" + std::to_string(n_workers) +
           " workers, queue limit " + std::to_string(config_.queue_limit) +
           ")");
}

void Server::request_stop() noexcept {
  stopping_.store(true, std::memory_order_release);
  if (wake_pipe_[1] >= 0) {
    const char byte = 'x';
    // Best-effort: a full pipe still wakes the poller; EINTR is fine too.
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

int Server::run() {
  LATOL_REQUIRE(acceptor_.joinable(), "start() must be called before run()");
  // The acceptor exits only after request_stop(); this join IS the wait.
  acceptor_.join();
  std::size_t queued = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queued = queue_.size();
  }
  log_line("latol serve: draining (" + std::to_string(in_flight_.load()) +
           " in flight, " + std::to_string(queued) + " queued)");

  // Workers observe stopping_, shed whatever is still queued, finish their
  // in-flight request, and exit.
  queue_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();

  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  if (!config_.cache_path.empty()) {
    try {
      cache_.save(config_.cache_path, exp::build_version());
      log_line("latol serve: flushed " + std::to_string(cache_.size()) +
               " cache entries to " + config_.cache_path);
    } catch (const std::exception& e) {
      log_line("latol serve: warning: cache flush failed: " +
               std::string(e.what()));
    }
  }

  obs::set_default_registry(previous_registry_);
  registry_installed_ = false;  // the destructor must not restore twice

  const ServerStats final = stats();
  log_line("latol serve: drained cleanly (" + std::to_string(final.handled) +
           " handled, " + std::to_string(final.shed) + " shed, " +
           std::to_string(final.deadline) + " deadline-exceeded)");
  return failed_.load() ? 4 : 0;
}

ServerStats Server::stats() const {
  ServerStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.handled = handled_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.deadline = deadline_.load(std::memory_order_relaxed);
  s.read_errors = read_errors_.load(std::memory_order_relaxed);
  return s;
}

void Server::accept_loop() {
  pollfd pfds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
  while (!stopping_.load(std::memory_order_acquire)) {
    pfds[0].revents = 0;
    pfds[1].revents = 0;
    const int rc = ::poll(pfds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      failed_.store(true);
      request_stop();
      break;
    }
    if ((pfds[1].revents & POLLIN) != 0 ||
        stopping_.load(std::memory_order_acquire)) {
      break;
    }
    if ((pfds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
          errno == EMFILE || errno == ENFILE) {
        continue;  // transient; the listen socket itself is fine
      }
      failed_.store(true);
      request_stop();
      break;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    registry_.counter("serve.accepted").add(1);
    set_send_timeout(client, config_.http.read_timeout_s);

    // Admission control: bounded queue, shed beyond it. The 503 write
    // happens outside the lock (it is a tiny buffered send, but a worker
    // must never wait on a client's socket through our mutex).
    bool admit = false;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!stopping_.load(std::memory_order_acquire) &&
          queue_.size() < config_.queue_limit) {
        queue_.push_back(client);
        admit = true;
      }
      registry_.gauge("serve.queue_depth")
          .set(static_cast<double>(queue_.size()));
    }
    if (admit) {
      queue_cv_.notify_one();
    } else {
      shed_connection(client);
    }
  }
}

void Server::shed_connection(int fd) {
  shed_.fetch_add(1, std::memory_order_relaxed);
  registry_.counter("serve.shed").add(1);
  HttpResponse busy;
  busy.status = 503;
  busy.extra_headers.emplace_back("Retry-After",
                                  std::to_string(config_.retry_after_s));
  busy.body = "latol serve: busy, retry later\n";
  (void)write_http_response(fd, busy);
  // Lingering close: the client's request bytes were never read, and
  // close() on a socket with unread data sends an RST that can destroy
  // the 503 before the client receives it. Half-close our side, then
  // drain what the client already sent. The drain is tightly bounded
  // (shedding runs on the accept loop; a slow client must not stall
  // admission) — past the bound we close anyway and accept the race.
  ::shutdown(fd, SHUT_WR);
  const auto deadline = Clock::now() + std::chrono::milliseconds(250);
  char sink[4096];
  for (;;) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (left.count() <= 0) break;
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, static_cast<int>(left.count())) <= 0) break;
    if (::recv(fd, sink, sizeof sink, 0) <= 0) break;  // FIN, or error
  }
  ::close(fd);
}

void Server::worker_loop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_acquire) || !queue_.empty();
      });
      if (stopping_.load(std::memory_order_acquire)) {
        // Drain: queued connections are shed (they never started), then
        // this worker exits; its in-flight request already finished.
        while (!queue_.empty()) {
          const int queued = queue_.front();
          queue_.pop_front();
          lock.unlock();
          registry_.counter("serve.drained").add(1);
          shed_connection(queued);
          lock.lock();
        }
        registry_.gauge("serve.queue_depth").set(0.0);
        return;
      }
      fd = queue_.front();
      queue_.pop_front();
      registry_.gauge("serve.queue_depth")
          .set(static_cast<double>(queue_.size()));
    }
    handle_connection(fd);
  }
}

void Server::handle_connection(int fd) {
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  registry_.gauge("serve.in_flight")
      .set(static_cast<double>(in_flight_.load(std::memory_order_relaxed)));

  // One id per request, from accept to response: returned in
  // X-Latol-Request-Id, attached to the request span and the per-request
  // log line, so a client report, a trace, and the log join on it.
  const std::string request_id = next_request_id();
  obs::Span request_span("serve.request", "serve");
  request_span.detail(request_id);

  const auto t_read = Clock::now();
  HttpRequest request;
  std::string error;
  const ReadStatus status =
      read_http_request(fd, config_.http, request, &error);
  registry_.timer("serve.stage.read").add_seconds(seconds_since(t_read));

  bool respond = true;
  HttpResponse response;
  switch (status) {
    case ReadStatus::kOk: {
      const auto t_handle = Clock::now();
      response = route(request);
      registry_.timer("serve.stage.handle")
          .add_seconds(seconds_since(t_handle));
      break;
    }
    case ReadStatus::kClosed:
      // Mid-request disconnect (or a probe that sent nothing): nobody is
      // listening for a response.
      respond = false;
      if (!error.empty()) {
        read_errors_.fetch_add(1, std::memory_order_relaxed);
        registry_.counter("serve.read_errors").add(1);
      }
      break;
    case ReadStatus::kMalformed:
      read_errors_.fetch_add(1, std::memory_order_relaxed);
      registry_.counter("serve.read_errors").add(1);
      response = error_response(400, error);
      break;
    case ReadStatus::kTooLarge:
      read_errors_.fetch_add(1, std::memory_order_relaxed);
      registry_.counter("serve.read_errors").add(1);
      response = error_response(413, error);
      break;
    case ReadStatus::kTimeout:
      read_errors_.fetch_add(1, std::memory_order_relaxed);
      registry_.counter("serve.read_errors").add(1);
      response = error_response(408, error);
      break;
  }
  if (respond) {
    response.extra_headers.emplace_back("X-Latol-Request-Id", request_id);
    const auto t_write = Clock::now();
    (void)write_http_response(fd, response);
    registry_.timer("serve.stage.write").add_seconds(seconds_since(t_write));
    handled_.fetch_add(1, std::memory_order_relaxed);
    registry_.counter("serve.requests").add(1);
    log_line("latol serve: [" + request_id + "] " + request.method + " " +
             request.target + " -> " + std::to_string(response.status));
  }
  ::close(fd);
  const double request_seconds = seconds_since(t_read);
  registry_.histogram("serve.request.latency_seconds")
      .observe(request_seconds);
  request_span.arg("status",
                   respond ? static_cast<double>(response.status) : 0.0);
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
  registry_.gauge("serve.in_flight")
      .set(static_cast<double>(in_flight_.load(std::memory_order_relaxed)));
}

HttpResponse Server::route(const HttpRequest& request) {
  if (request.target == "/healthz") {
    if (request.method != "GET") {
      return error_response(405, "healthz is GET-only");
    }
    return text_response(200, "ok " + exp::build_version() + "\n");
  }
  if (request.target == "/metrics") {
    if (request.method != "GET") {
      return error_response(405, "metrics is GET-only");
    }
    return metrics_response();
  }
  if (request.target.starts_with("/v1/")) {
    if (request.method != "POST") {
      return error_response(405, "v1 endpoints are POST-only");
    }
    const std::string command = request.target.substr(4);
    if (command == "scenario") return run_scenario_request(request);
    if (command == "analyze" || command == "tolerance" ||
        command == "bottleneck" || command == "sweep") {
      return run_cli_command(command, request);
    }
    return error_response(
        404, "unknown endpoint `" + request.target +
                 "` (try /v1/analyze, /v1/tolerance, /v1/bottleneck, "
                 "/v1/sweep, /v1/scenario)");
  }
  return error_response(404, "unknown path `" + request.target +
                                 "` (try /healthz, /metrics, /v1/...)");
}

bool Server::arm_deadline(const HttpRequest& request,
                          util::CancelToken& token, std::string* error) {
  double ms = config_.default_deadline_ms;
  if (const std::string* h = request.header("x-deadline-ms")) {
    std::size_t used = 0;
    double v = 0.0;
    try {
      v = std::stod(*h, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used != h->size() || !(v > 0.0) || !std::isfinite(v)) {
      if (error != nullptr) {
        *error = "malformed X-Deadline-Ms `" + *h +
                 "` (positive milliseconds expected)";
      }
      return false;
    }
    ms = v;
  }
  if (config_.max_deadline_ms > 0.0 &&
      (ms <= 0.0 || ms > config_.max_deadline_ms)) {
    ms = config_.max_deadline_ms;
  }
  if (ms <= 0.0) return false;
  token.set_deadline_after(ms / 1000.0);
  return true;
}

HttpResponse Server::run_cli_command(const std::string& command,
                                     const HttpRequest& request) {
  util::CancelToken token;
  std::string bad_deadline;
  const bool has_deadline = arm_deadline(request, token, &bad_deadline);
  if (!bad_deadline.empty()) return error_response(400, bad_deadline);

  std::vector<std::string> args{command};
  if (!request.body.empty()) {
    io::Json doc;
    try {
      doc = io::parse_json(request.body);
    } catch (const InvalidArgument& e) {
      return error_response(400, std::string("request body: ") + e.what());
    }
    if (!doc.is_object()) {
      return error_response(400, "request body must be a JSON object");
    }
    for (const auto& [key, value] : doc.as_object()) {
      if (key != "args") {
        return error_response(400, "unknown request key `" + key + "`");
      }
      if (!value.is_array()) {
        return error_response(400, "`args` must be an array of strings");
      }
      for (const io::Json& arg : value.as_array()) {
        if (!arg.is_string()) {
          return error_response(400, "`args` must be an array of strings");
        }
        args.push_back(arg.as_string());
      }
    }
  }
  for (const std::string& arg : args) {
    for (const char* forbidden : kForbiddenFlags) {
      if (arg == forbidden) {
        return error_response(400, std::string("flag ") + forbidden +
                                       " is not allowed over the server "
                                       "(it writes server-side files)");
      }
    }
  }

  std::ostringstream out;
  const int code = runner_(args, has_deadline ? &token : nullptr, out);
  HttpResponse response;
  response.body = out.str();
  response.extra_headers.emplace_back("X-Latol-Exit", std::to_string(code));
  if (code == kDeadlineExit) {
    deadline_.fetch_add(1, std::memory_order_relaxed);
    registry_.counter("serve.deadline_exceeded").add(1);
    response.status = 504;
  } else if (code == 0 || code == 1) {
    response.status = 200;
  } else if (code == 2) {
    response.status = 400;
  } else {
    response.status = 500;
  }
  return response;
}

HttpResponse Server::run_scenario_request(const HttpRequest& request) {
  util::CancelToken token;
  std::string bad_deadline;
  const bool has_deadline = arm_deadline(request, token, &bad_deadline);
  if (!bad_deadline.empty()) return error_response(400, bad_deadline);

  exp::Scenario scenario;
  try {
    scenario = exp::scenario_from_json(io::parse_json(request.body));
  } catch (const InvalidArgument& e) {
    return error_response(400, std::string("scenario: ") + e.what());
  }

  exp::RunOptions ropts;
  ropts.cache = &cache_;
  ropts.cancel = has_deadline ? &token : nullptr;
  exp::RunResult run;
  try {
    run = exp::run_scenario(scenario, ropts);
  } catch (const InvalidArgument& e) {
    return error_response(400, std::string("scenario: ") + e.what());
  } catch (const std::exception& e) {
    return error_response(500, std::string("scenario run failed: ") +
                                   e.what());
  }

  const exp::RunStats& st = run.stats;
  io::Json doc = io::Json::object();
  doc.set("results", exp::results_to_json(scenario, run));
  doc.set("manifest", exp::manifest_to_json(scenario, run));

  HttpResponse response;
  response.content_type = "application/json";
  response.body = doc.dump(1) + "\n";
  int exit_code = 0;
  if (st.failed_points > 0 || st.degraded_points > 0) exit_code = 1;
  if (st.grid_points > 0 && st.failed_points == st.grid_points) exit_code = 3;
  if (st.deadline_points > 0 && has_deadline && token.expired()) {
    exit_code = kDeadlineExit;
  }
  response.extra_headers.emplace_back("X-Latol-Exit",
                                      std::to_string(exit_code));
  if (exit_code == kDeadlineExit) {
    deadline_.fetch_add(1, std::memory_order_relaxed);
    registry_.counter("serve.deadline_exceeded").add(1);
    response.status = 504;
  } else if (exit_code == 3) {
    response.status = 500;
  } else {
    response.status = 200;
  }
  return response;
}

HttpResponse Server::metrics_response() {
  // Refresh the derived gauges so a scrape sees consistent numbers.
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    registry_.gauge("serve.queue_depth")
        .set(static_cast<double>(queue_.size()));
  }
  registry_.gauge("serve.in_flight")
      .set(static_cast<double>(in_flight_.load(std::memory_order_relaxed)));
  registry_.gauge("process.uptime_seconds").set(seconds_since(started_at_));
  const double hits = static_cast<double>(cache_.hits());
  const double misses = static_cast<double>(cache_.misses());
  registry_.gauge("serve.cache_entries")
      .set(static_cast<double>(cache_.size()));
  registry_.gauge("serve.cache_hits").set(hits);
  registry_.gauge("serve.cache_misses").set(misses);
  registry_.gauge("serve.cache_hit_ratio")
      .set(hits + misses > 0 ? hits / (hits + misses) : 0.0);

  HttpResponse response;
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  response.body = obs::to_prometheus(registry_.snapshot());
  return response;
}

}  // namespace latol::serve
