// Minimal HTTP/1.1 framing over POSIX sockets for the analysis daemon.
//
// This is deliberately not a web framework: the server speaks exactly the
// subset `latol serve` needs — request line + headers + Content-Length
// body in, status + headers + body out, one request per connection
// (Connection: close). Parsing is separated from socket I/O so the
// malformed-input corpus can be unit-tested without a file descriptor,
// and every read is bounded (head size, body size, receive timeout) so a
// hostile or broken client cannot wedge a worker or exhaust memory
// (DESIGN.md §11).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace latol::serve {

/// Bounds on what the server will read from one connection; exceeding
/// them fails the read with a typed status instead of growing buffers.
struct HttpLimits {
  /// Request line + headers ceiling, bytes.
  std::size_t max_head_bytes = 16 * 1024;
  /// Request body (Content-Length) ceiling, bytes.
  std::size_t max_body_bytes = 1024 * 1024;
  /// Socket receive timeout, seconds: a client that stops sending
  /// mid-request is cut off (408) after this long, freeing the worker.
  double read_timeout_s = 10.0;
};

/// One parsed request. Header names are stored lowercased (HTTP headers
/// are case-insensitive); values keep their bytes minus surrounding
/// whitespace.
struct HttpRequest {
  std::string method;  ///< "GET", "POST", ... (uppercase per RFC)
  std::string target;  ///< request target, e.g. "/v1/analyze"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Value of header `name` (matched case-insensitively against the
  /// stored lowercase names); nullptr when absent.
  [[nodiscard]] const std::string* header(std::string_view name) const;
};

/// One response to serialize. `extra_headers` ride between the standard
/// headers and the blank line (used for Retry-After, X-Latol-Exit).
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::vector<std::pair<std::string, std::string>> extra_headers;
  std::string body;
};

/// How reading one request from a socket ended.
enum class ReadStatus {
  kOk,         ///< a complete request was parsed
  kClosed,     ///< peer closed before sending a complete request
  kMalformed,  ///< bytes arrived but do not form a valid request
  kTooLarge,   ///< head or declared body exceeds HttpLimits
  kTimeout,    ///< peer stalled longer than the receive timeout
};

/// Stable name of a ReadStatus ("ok", "closed", ...) for logs and
/// metrics.
[[nodiscard]] const char* read_status_name(ReadStatus status);

/// Canonical reason phrase for the status codes the server emits
/// ("Not Found" for 404, ...); "Unknown" for anything else.
[[nodiscard]] const char* http_status_reason(int status);

/// Parse the head (request line + header lines, NOT including the
/// terminating blank line) into `out.method/target/headers`. Returns
/// false and sets `error` on malformed input. Pure function of the bytes,
/// separated from socket I/O so the fault corpus is unit-testable.
[[nodiscard]] bool parse_http_head(std::string_view head, HttpRequest& out,
                                   std::string* error);

/// Read one full request from connected socket `fd`, honoring `limits`
/// (head/body ceilings, receive timeout). On kMalformed/kTooLarge,
/// `error` (when non-null) receives a human-readable reason. Chunked
/// transfer encoding is not supported and reports kMalformed.
[[nodiscard]] ReadStatus read_http_request(int fd, const HttpLimits& limits,
                                           HttpRequest& out,
                                           std::string* error);

/// Serialize `response` (status line, standard + extra headers,
/// Content-Length, Connection: close, body) and send it fully to `fd`.
/// Returns false when the peer is gone (EPIPE, reset) — callers just
/// close; a dead client is not an error worth propagating.
[[nodiscard]] bool write_http_response(int fd, const HttpResponse& response);

}  // namespace latol::serve
