// `latol serve`: a long-running analysis daemon with admission control,
// request deadlines, and graceful drain (DESIGN.md §11).
//
// The server answers the CLI's analysis commands over plain TCP with
// HTTP/1.1 framing, against ONE warm process: a shared exp::SolveCache
// (scenario grids and repeated requests coalesce and reuse solves) and
// the shared thread pool. Robustness is the point, not features:
//
//  - admission control: a bounded accept queue plus a fixed worker count;
//    when the queue is full new connections are shed with 503 +
//    Retry-After instead of growing memory without bound;
//  - deadlines: X-Deadline-Ms (or the configured default) arms a
//    util::CancelToken that the solvers check cooperatively, so an
//    expired request frees its worker promptly with 504 instead of
//    wedging it;
//  - graceful drain: request_stop() (signal-safe, wired to
//    SIGTERM/SIGINT by the CLI) stops accepting, sheds what is queued,
//    lets in-flight requests finish, flushes the cache atomically, and
//    exits 0;
//  - observability: GET /healthz and GET /metrics (Prometheus text
//    rendering of the obs registry: queue depth, shed count, in-flight,
//    cache hits/misses, per-stage and per-solver timers).
//
// Layering: serve sits between exp and cli. It cannot link the CLI, yet
// POST /v1/<command> responses must be byte-identical to the CLI's
// stdout for the same arguments — so the CLI injects its own entry point
// as a CommandRunner callback when it constructs the Server.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exp/solve_cache.hpp"
#include "io/json.hpp"
#include "obs/registry.hpp"
#include "serve/http.hpp"
#include "util/cancel.hpp"

namespace latol::serve {

/// Exit code a CommandRunner returns when the request's deadline expired
/// mid-command; the server maps it to HTTP 504. Distinct from the CLI's
/// documented 0-3 so a genuine solve failure (3 → 500) is not confused
/// with a caller that stopped waiting.
inline constexpr int kDeadlineExit = 4;

/// The injected command entry point: run CLI `args` (argv[1:] form, e.g.
/// {"analyze", "--k", "8"}) with `cancel` as the cooperative deadline,
/// writing what the CLI would print to stdout into `out`, and return the
/// CLI exit code (0 clean, 1 degraded, 2 usage error, 3 solve failed,
/// kDeadlineExit deadline). Must not throw — the wiring maps exceptions
/// to codes exactly like the CLI's main() does.
using CommandRunner = std::function<int(
    const std::vector<std::string>& args, const util::CancelToken* cancel,
    std::ostream& out)>;

/// Daemon configuration, normally loaded from the JSON file passed to
/// `latol serve <config.json>` (every key optional; unknown keys are
/// rejected so typos fail loudly).
struct ServerConfig {
  /// Listen address. Loopback by default: the daemon trusts its callers.
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (printed on startup).
  int port = 0;
  /// Worker threads = maximum concurrently executing requests
  /// (0 = hardware concurrency).
  std::size_t max_concurrent = 0;
  /// Accepted-but-not-started connections the server will hold; beyond
  /// this, new connections are shed with 503 + Retry-After.
  std::size_t queue_limit = 16;
  /// Deadline applied when a request carries no X-Deadline-Ms header
  /// (0 = none).
  double default_deadline_ms = 0.0;
  /// Ceiling on client-requested deadlines (0 = no ceiling). Keeps one
  /// client from parking a worker on an hour-long solve.
  double max_deadline_ms = 0.0;
  /// Retry-After value (seconds) sent with 503 shed responses.
  int retry_after_s = 1;
  /// Solve-cache persistence file; loaded (with corrupt-file quarantine)
  /// on startup and flushed atomically on drain. Empty = in-memory only.
  std::string cache_path;
  /// SolveCache entry bound (0 = unlimited).
  std::size_t cache_capacity = 0;
  /// Framing/read bounds per connection.
  HttpLimits http;

  /// Build from a parsed JSON object; throws InvalidArgument naming any
  /// unknown key or ill-typed value.
  [[nodiscard]] static ServerConfig from_json(const io::Json& doc);
  /// Parse `path` and build; JSON errors carry line/column context.
  [[nodiscard]] static ServerConfig load(const std::string& path);
};

/// Point-in-time admission/traffic accounting, for tests and logs (the
/// same numbers are exported through /metrics).
struct ServerStats {
  std::uint64_t accepted = 0;   ///< connections accepted
  std::uint64_t handled = 0;    ///< requests that got a response
  std::uint64_t shed = 0;       ///< connections shed (admission or drain)
  std::uint64_t deadline = 0;   ///< requests that ended deadline-exceeded
  std::uint64_t read_errors = 0;///< malformed/oversized/timed-out reads
};

/// The daemon. Lifecycle: construct -> start() (binds and spins up
/// threads; the port is known afterwards) -> run() (blocks until
/// request_stop(), then drains and returns the process exit code).
/// request_stop() is async-signal-safe.
class Server {
 public:
  /// `log`, when non-null, receives one line on startup ("listening on
  /// host:port") and one per lifecycle event; it must outlive run().
  Server(ServerConfig config, CommandRunner runner,
         std::ostream* log = nullptr);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, and start the acceptor and worker threads. Throws
  /// InvalidArgument when the address cannot be bound.
  void start();

  /// Block until request_stop(), then drain: shed queued connections,
  /// finish in-flight requests, flush the cache. Returns the process
  /// exit code (0 = clean drain, 4 = runtime failure).
  int run();

  /// Initiate shutdown. Async-signal-safe (an atomic store plus a write
  /// to the self-pipe); safe to call from any thread or a signal
  /// handler, and idempotent.
  void request_stop() noexcept;

  /// The bound TCP port (after start(); useful with port = 0).
  [[nodiscard]] int port() const { return port_; }

  /// Current accounting snapshot (for tests; /metrics serves the same).
  [[nodiscard]] ServerStats stats() const;

  /// The server's metric registry (installed as the process default
  /// between start() and the end of run()).
  [[nodiscard]] obs::Registry& registry() { return registry_; }

  /// The warm solve cache shared by every /v1/scenario request.
  [[nodiscard]] exp::SolveCache& cache() { return cache_; }

 private:
  void accept_loop();
  void worker_loop();
  void handle_connection(int fd);
  [[nodiscard]] HttpResponse route(const HttpRequest& request);
  [[nodiscard]] HttpResponse run_cli_command(const std::string& command,
                                             const HttpRequest& request);
  [[nodiscard]] HttpResponse run_scenario_request(const HttpRequest& request);
  [[nodiscard]] HttpResponse metrics_response();
  /// Arm a request-scoped token from X-Deadline-Ms / the defaults;
  /// returns whether any deadline applies.
  bool arm_deadline(const HttpRequest& request, util::CancelToken& token,
                    std::string* error);
  void shed_connection(int fd);
  void log_line(const std::string& line);
  /// Fresh process-unique request id: a random per-boot token plus a
  /// sequence number, so ids from different server runs never collide.
  [[nodiscard]] std::string next_request_id();

  ServerConfig config_;
  CommandRunner runner_;
  std::ostream* log_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> failed_{false};

  std::mutex mutex_;
  std::condition_variable queue_cv_;
  std::deque<int> queue_;  ///< accepted fds awaiting a worker

  std::vector<std::thread> workers_;
  std::thread acceptor_;

  obs::Registry registry_;
  obs::Registry* previous_registry_ = nullptr;
  bool registry_installed_ = false;  ///< registry_ is the process default
  exp::SolveCache cache_;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> handled_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> deadline_{0};
  std::atomic<std::uint64_t> read_errors_{0};
  std::atomic<std::size_t> in_flight_{0};

  std::uint64_t boot_token_ = 0;  ///< random per-boot request-id prefix
  std::atomic<std::uint64_t> request_seq_{0};
  std::chrono::steady_clock::time_point started_at_{};
};

}  // namespace latol::serve
