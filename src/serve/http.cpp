#include "serve/http.hpp"

#include <sys/socket.h>
#include <sys/time.h>

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstring>

namespace latol::serve {

namespace {

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

/// A "token" per RFC 9110 — what method and header names must be.
bool is_token(std::string_view s) {
  if (s.empty()) return false;
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    const bool ok = std::isalnum(u) != 0 ||
                    std::strchr("!#$%&'*+-.^_`|~", c) != nullptr;
    if (!ok) return false;
  }
  return true;
}

bool set_socket_timeout(int fd, int option, double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (seconds - std::floor(seconds)) * 1e6);
  return ::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof tv) == 0;
}

}  // namespace

const std::string* HttpRequest::header(std::string_view name) const {
  const std::string wanted = to_lower(name);
  for (const auto& [key, value] : headers) {
    if (key == wanted) return &value;
  }
  return nullptr;
}

const char* read_status_name(ReadStatus status) {
  switch (status) {
    case ReadStatus::kOk:
      return "ok";
    case ReadStatus::kClosed:
      return "closed";
    case ReadStatus::kMalformed:
      return "malformed";
    case ReadStatus::kTooLarge:
      return "too-large";
    case ReadStatus::kTimeout:
      return "timeout";
  }
  return "?";
}

const char* http_status_reason(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 413:
      return "Content Too Large";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    case 504:
      return "Gateway Timeout";
    default:
      return "Unknown";
  }
}

bool parse_http_head(std::string_view head, HttpRequest& out,
                     std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  out.method.clear();
  out.target.clear();
  out.headers.clear();

  // Request line: METHOD SP target SP HTTP/1.x
  std::size_t line_end = head.find("\r\n");
  const std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    return fail("malformed request line");
  }
  const std::string_view method = request_line.substr(0, sp1);
  const std::string_view target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = request_line.substr(sp2 + 1);
  if (!is_token(method)) return fail("malformed request method");
  if (target.empty() || target.front() != '/') {
    return fail("request target must be an absolute path");
  }
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return fail("unsupported protocol version");
  }
  out.method = std::string(method);
  out.target = std::string(target);

  // Header lines: token ":" value
  std::size_t pos =
      line_end == std::string_view::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    std::size_t end = head.find("\r\n", pos);
    if (end == std::string_view::npos) end = head.size();
    const std::string_view line = head.substr(pos, end - pos);
    pos = end + 2;
    if (line.empty()) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return fail("header line without `:`");
    }
    const std::string_view name = line.substr(0, colon);
    if (!is_token(name)) return fail("malformed header name");
    out.headers.emplace_back(to_lower(name),
                             std::string(trim(line.substr(colon + 1))));
  }
  return true;
}

ReadStatus read_http_request(int fd, const HttpLimits& limits,
                             HttpRequest& out, std::string* error) {
  const auto fail = [&](ReadStatus status, const std::string& why) {
    if (error != nullptr) *error = why;
    return status;
  };
  // A stalling peer must not pin the worker: every recv() is bounded by
  // the configured receive timeout.
  (void)set_socket_timeout(fd, SO_RCVTIMEO, limits.read_timeout_s);

  std::string buffer;
  std::size_t head_end = std::string::npos;
  char chunk[4096];
  while (true) {
    head_end = buffer.find("\r\n\r\n");
    if (head_end != std::string::npos) break;
    if (buffer.size() > limits.max_head_bytes) {
      return fail(ReadStatus::kTooLarge,
                  "request head exceeds " +
                      std::to_string(limits.max_head_bytes) + " bytes");
    }
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n == 0) {
      if (buffer.empty()) return ReadStatus::kClosed;
      return fail(ReadStatus::kClosed, "connection closed mid-head");
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return fail(ReadStatus::kTimeout, "timed out reading request head");
      }
      if (errno == EINTR) continue;
      return fail(ReadStatus::kClosed, "recv failed mid-head");
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  if (head_end > limits.max_head_bytes) {
    return fail(ReadStatus::kTooLarge,
                "request head exceeds " +
                    std::to_string(limits.max_head_bytes) + " bytes");
  }
  if (!parse_http_head(std::string_view(buffer).substr(0, head_end), out,
                       error)) {
    return ReadStatus::kMalformed;
  }

  if (out.header("transfer-encoding") != nullptr) {
    return fail(ReadStatus::kMalformed,
                "transfer-encoding is not supported; send Content-Length");
  }
  std::size_t content_length = 0;
  if (const std::string* cl = out.header("content-length")) {
    const auto [ptr, ec] = std::from_chars(
        cl->data(), cl->data() + cl->size(), content_length);
    if (ec != std::errc() || ptr != cl->data() + cl->size()) {
      return fail(ReadStatus::kMalformed, "malformed Content-Length");
    }
  }
  if (content_length > limits.max_body_bytes) {
    return fail(ReadStatus::kTooLarge,
                "declared body of " + std::to_string(content_length) +
                    " bytes exceeds " +
                    std::to_string(limits.max_body_bytes) + " bytes");
  }

  out.body = buffer.substr(head_end + 4);
  if (out.body.size() > content_length) {
    // Trailing bytes beyond the declared body (pipelining is not
    // supported; one request per connection).
    return fail(ReadStatus::kMalformed,
                "more body bytes than Content-Length declares");
  }
  while (out.body.size() < content_length) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n == 0) {
      return fail(ReadStatus::kClosed, "connection closed mid-body");
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return fail(ReadStatus::kTimeout, "timed out reading request body");
      }
      if (errno == EINTR) continue;
      return fail(ReadStatus::kClosed, "recv failed mid-body");
    }
    out.body.append(chunk, static_cast<std::size_t>(n));
    if (out.body.size() > content_length) {
      return fail(ReadStatus::kMalformed,
                  "more body bytes than Content-Length declares");
    }
  }
  return ReadStatus::kOk;
}

bool write_http_response(int fd, const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    http_status_reason(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n";
  for (const auto& [name, value] : response.extra_headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "\r\n";
  out += response.body;

  // MSG_NOSIGNAL: a client that disconnected mid-response must produce a
  // return code here, not SIGPIPE the whole daemon.
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n =
        ::send(fd, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace latol::serve
