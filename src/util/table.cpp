#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace latol::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  LATOL_REQUIRE(!headers_.empty(), "a table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  LATOL_REQUIRE(cells.size() == headers_.size(),
                "row has " << cells.size() << " cells, expected "
                           << headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::num(long long v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(width[c]))
         << cells[c];
    }
    os << " |\n";
  };

  emit(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit(row);
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  t.print(os);
  return os;
}

void print_banner(std::ostream& os, const std::string& title) {
  os << '\n' << std::string(72, '=') << '\n'
     << "  " << title << '\n'
     << std::string(72, '=') << '\n';
}

}  // namespace latol::util
