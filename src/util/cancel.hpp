// Cooperative cancellation for long-running work.
//
// A CancelToken is how the serving layer bounds the solvers: a request
// handler arms a token with a deadline (or cancels it outright on drain),
// and the iterative solvers / batch runner poll `expired()` at loop
// granularity and abort with SolverError(kDeadlineExceeded) instead of
// wedging a worker thread. Polling is cheap by construction: a token with
// no deadline and no cancellation is one relaxed atomic load, and code
// paths that were handed no token at all (`nullptr`, the default
// everywhere) pay a single predicted branch — the paper-reproduction
// benches stay overhead-free.
//
// Tokens chain: a child constructed with a parent expires when either its
// own deadline/cancellation fires or the parent's does. The batch runner
// uses this to combine a per-request deadline with per-point timeouts.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

namespace latol::util {

/// Cooperative cancellation + deadline token. Thread-safe: any thread may
/// cancel() or set a deadline while workers poll expired(). Not copyable
/// (identity is the point); pass `const CancelToken*`.
class CancelToken {
 public:
  CancelToken() = default;
  /// A child token: expires when this token OR `parent` expires. The
  /// parent must outlive the child.
  explicit CancelToken(const CancelToken* parent) : parent_(parent) {}
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Trip the token immediately (drain, client disconnect).
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arm a deadline `seconds` from now (steady clock). Non-positive
  /// values expire immediately. Replaces any previous deadline.
  void set_deadline_after(double seconds) noexcept {
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    const auto now_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(now).count();
    const double offset_ns = seconds * 1e9;
    // Saturate instead of overflowing for absurdly large deadlines.
    const auto limit = std::numeric_limits<std::int64_t>::max();
    const std::int64_t deadline =
        offset_ns >= static_cast<double>(limit - now_ns)
            ? limit
            : now_ns + static_cast<std::int64_t>(offset_ns);
    deadline_ns_.store(deadline, std::memory_order_relaxed);
  }

  /// True once the token is cancelled, its deadline has passed, or an
  /// ancestor expired. Reads the clock only when a deadline is armed.
  [[nodiscard]] bool expired() const noexcept {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    const std::int64_t deadline =
        deadline_ns_.load(std::memory_order_relaxed);
    if (deadline != kNoDeadline) {
      const auto now = std::chrono::steady_clock::now().time_since_epoch();
      if (std::chrono::duration_cast<std::chrono::nanoseconds>(now).count() >=
          deadline) {
        return true;
      }
    }
    return parent_ != nullptr && parent_->expired();
  }

  /// True when a deadline has been armed (expired or not).
  [[nodiscard]] bool has_deadline() const noexcept {
    return deadline_ns_.load(std::memory_order_relaxed) != kNoDeadline;
  }

 private:
  static constexpr std::int64_t kNoDeadline =
      std::numeric_limits<std::int64_t>::max();

  std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> deadline_ns_{kNoDeadline};
  const CancelToken* parent_ = nullptr;
};

}  // namespace latol::util
