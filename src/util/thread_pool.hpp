// Fixed-size worker pool plus a deterministic work-stealing parallel_for.
//
// The reproduction figures are dense 2-D parameter sweeps; each grid point
// is an independent AMVA solve, so the sweep layer fans work out over a
// pool. Results are written to pre-sized slots indexed by the loop
// variable, so output is bit-identical regardless of worker count or
// stealing order (DESIGN.md §10).
//
// parallel_for splits [0, n) into one contiguous chunk per participant;
// a participant that drains its own chunk steals from the others in
// round-robin order. The calling thread always participates, which makes
// nested parallel_for on the shared pool deadlock-free: even when every
// pool worker is busy with outer iterations, the nested caller completes
// its loop single-handedly.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace latol::util {

/// A plain fixed-size thread pool with a FIFO task queue. Tasks must not
/// throw (exceptions escaping a task terminate, per std::thread rules);
/// sweep users capture errors into their result slots instead.
class ThreadPool {
 public:
  /// Spawn `workers` threads (0 selects hardware_concurrency, min 1).
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide pool (hardware_concurrency workers), created on
  /// first use. All sweep layers (core::sweep, exp::run_scenario, CLI)
  /// share it by default so a nested sweep reuses the same threads
  /// instead of oversubscribing the machine.
  static ThreadPool& shared();

  /// Enqueue one task.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished executing.
  void wait_idle();

  /// Number of worker threads (excludes callers that join a
  /// parallel_for).
  [[nodiscard]] std::size_t worker_count() const { return threads_.size(); }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::queue<std::function<void()>> tasks_;
  std::vector<std::thread> threads_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Run `body(i)` for i in [0, n), distributing iterations over `pool`
/// plus the calling thread (work-stealing; see the file comment). Blocks
/// until all iterations complete. `body` must be safe to invoke
/// concurrently for distinct indices and must not throw.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body);

/// Convenience overload: workers == 0 runs on ThreadPool::shared(),
/// workers > 0 on a transient pool of that many threads (plus the
/// caller).
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t workers = 0);

}  // namespace latol::util
