#include "util/csv.hpp"

#include <limits>
#include <sstream>

#include "util/error.hpp"

namespace latol::util {

std::string csv_number(double value) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << value;
  return os.str();
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  LATOL_REQUIRE(out_.good(), "cannot open CSV file `" << path << "`");
  LATOL_REQUIRE(!header.empty(), "CSV header must not be empty");
  add_row(header);
}

void CsvWriter::add_row(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(csv_number(v));
  add_row(cells);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  LATOL_REQUIRE(cells.size() == columns_,
                "CSV row has " << cells.size() << " cells, expected "
                               << columns_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << cells[i];
  }
  out_ << '\n';
}

}  // namespace latol::util
