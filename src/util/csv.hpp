// CSV writer for bench output intended for plotting.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace latol::util {

/// Canonical CSV cell formatting for a double: default ostream format at
/// max round-trip precision (max_digits10). Every CSV the project emits —
/// bench files, `latol run` results — goes through this one function, so
/// the same number always renders as the same bytes.
[[nodiscard]] std::string csv_number(double value);

/// Streams rows of doubles/strings to a CSV file. The writer is append-only
/// and flushes on destruction; failures to open throw.
class CsvWriter {
 public:
  /// Open `path` for writing and emit the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Append a numeric row (formatted with max round-trip precision).
  void add_row(const std::vector<double>& values);

  /// Append a row of preformatted cells.
  void add_row(const std::vector<std::string>& cells);

 private:
  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace latol::util
