// Small dense row-major matrix plus a partial-pivoting linear solver.
//
// The queueing library needs only modest dense algebra: visit-ratio traffic
// equations (M x M with M = 4P <= 400) and stationary CTMC solves on tiny
// state spaces. No BLAS dependency is warranted at these sizes.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "util/error.hpp"

namespace latol::util {

/// Dense row-major matrix of doubles with bounds-checked element access.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, zero-initialized (or filled with `fill`).
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    LATOL_REQUIRE(r < rows_ && c < cols_,
                  "matrix index (" << r << ',' << c << ") out of " << rows_
                                   << 'x' << cols_);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    LATOL_REQUIRE(r < rows_ && c < cols_,
                  "matrix index (" << r << ',' << c << ") out of " << rows_
                                   << 'x' << cols_);
    return data_[r * cols_ + c];
  }

  /// Raw storage, row-major; useful for whole-matrix updates.
  [[nodiscard]] std::vector<double>& data() { return data_; }
  [[nodiscard]] const std::vector<double>& data() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solve A x = b by Gaussian elimination with partial pivoting. A is
/// consumed by value (it is modified in place). Throws InvalidArgument on a
/// numerically singular system.
inline std::vector<double> solve_linear_system(Matrix a,
                                               std::vector<double> b) {
  const std::size_t n = a.rows();
  LATOL_REQUIRE(a.cols() == n, "solve_linear_system needs a square matrix");
  LATOL_REQUIRE(b.size() == n, "rhs size mismatch");

  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a(r, col)) > std::fabs(a(pivot, col))) pivot = r;
    }
    LATOL_REQUIRE(std::fabs(a(pivot, col)) > 1e-300,
                  "singular linear system at column " << col);
    if (pivot != col) {
      for (std::size_t c = col; c < n; ++c) std::swap(a(pivot, c), a(col, c));
      std::swap(b[pivot], b[col]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a(r, col) / a(col, col);
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a(r, c) -= f * a(col, c);
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n);
  for (std::size_t ri = n; ri-- > 0;) {
    double sum = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) sum -= a(ri, c) * x[c];
    x[ri] = sum / a(ri, ri);
  }
  return x;
}

}  // namespace latol::util
