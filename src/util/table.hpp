// Minimal ASCII table formatter used by the reproduction benches to print
// rows in the shape the paper's tables/figures report.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace latol::util {

/// Column-aligned ASCII table. Cells are strings; numeric helpers format
/// doubles with a fixed precision. The table owns its data and renders to
/// any ostream. Intended for human-readable bench output (CSV output for
/// plotting lives in csv.hpp).
class Table {
 public:
  /// Create a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Append one row; the number of cells must equal the number of headers.
  void add_row(std::vector<std::string> cells);

  /// Format a double with `precision` digits after the decimal point.
  static std::string num(double v, int precision = 4);

  /// Format an integer-valued cell.
  static std::string num(long long v);

  /// Number of data rows currently stored.
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Render with a header rule and column padding.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Render the table with aligned columns.
std::ostream& operator<<(std::ostream& os, const Table& t);

/// Print a section banner used between blocks of a bench's output.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace latol::util
