// Error-handling helpers shared across latol modules.
//
// Configuration objects validate eagerly (throwing latol::InvalidArgument
// from constructors / factory functions); numerical routines validate their
// preconditions with LATOL_REQUIRE so a misuse fails loudly instead of
// producing quietly-wrong performance numbers.
#pragma once

#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>

namespace latol {

/// Thrown when a model or solver is constructed from inconsistent inputs
/// (negative service times, probabilities outside [0,1], empty networks...).
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an iterative solver fails to converge within its budget.
class ConvergenceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {

/// Implementation of LATOL_REQUIRE: formats `file:line: requirement ...`
/// and throws InvalidArgument. Not for direct use.
[[noreturn]] inline void throw_requirement_failure(
    const char* expr, const std::string& message,
    const std::source_location loc = std::source_location::current()) {
  std::ostringstream os;
  os << loc.file_name() << ':' << loc.line() << ": requirement `" << expr
     << "` failed";
  if (!message.empty()) os << ": " << message;
  throw InvalidArgument(os.str());
}

}  // namespace detail

}  // namespace latol

/// Precondition check that survives in release builds. `msg` may use
/// stream syntax: LATOL_REQUIRE(x > 0, "x=" << x).
#define LATOL_REQUIRE(cond, msg)                                       \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::ostringstream latol_require_os_;                            \
      latol_require_os_ << msg; /* NOLINT */                           \
      ::latol::detail::throw_requirement_failure(#cond,                \
                                                 latol_require_os_.str()); \
    }                                                                  \
  } while (false)
