#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

#include "util/error.hpp"

namespace latol::util {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& t : threads_) t.join();
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(0);
  return pool;
}

void ThreadPool::submit(std::function<void()> task) {
  LATOL_REQUIRE(task != nullptr, "cannot submit an empty task");
  {
    const std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ with a drained queue
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    task();
    {
      const std::lock_guard lock(mutex_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

namespace {

// Per-participant claim cursor, padded so concurrent fetch_adds on
// neighbouring chunks don't false-share a cache line.
struct alignas(64) Chunk {
  std::atomic<std::size_t> next{0};
  std::size_t end = 0;
};

// Shared between the submitting thread and every worker task; owned by
// shared_ptr because queued tasks may start after parallel_for returned
// (the call returns as soon as all *indices* are done; a late task finds
// every chunk drained and exits immediately).
struct WorkStealState {
  WorkStealState(std::size_t total, std::size_t participants,
                 std::function<void(std::size_t)> fn)
      : n(total), body(std::move(fn)), chunks(participants) {
    // Near-equal contiguous chunks; the first n % participants chunks
    // take one extra index.
    const std::size_t base = total / participants;
    const std::size_t extra = total % participants;
    std::size_t begin = 0;
    for (std::size_t p = 0; p < participants; ++p) {
      const std::size_t len = base + (p < extra ? 1 : 0);
      chunks[p].next.store(begin, std::memory_order_relaxed);
      chunks[p].end = begin + len;
      begin += len;
    }
  }

  // Drain own chunk `self`, then steal from the others round-robin. Each
  // index is claimed exactly once (the cursors are atomic and the chunk
  // ranges partition [0, n)).
  void participate(std::size_t self) {
    const std::size_t P = chunks.size();
    std::size_t finished = 0;
    for (std::size_t offset = 0; offset < P; ++offset) {
      Chunk& c = chunks[(self + offset) % P];
      for (;;) {
        const std::size_t i = c.next.fetch_add(1);
        if (i >= c.end) break;
        body(i);
        ++finished;
      }
    }
    // The seq_cst fetch_add chain plus the final acquire load in the
    // waiter's predicate order every body() write before the waiter's
    // return.
    if (finished != 0 && done.fetch_add(finished) + finished == n) {
      const std::lock_guard lock(mutex);
      cv.notify_all();
    }
  }

  const std::size_t n;
  const std::function<void(std::size_t)> body;
  std::vector<Chunk> chunks;
  std::atomic<std::size_t> done{0};
  std::mutex mutex;
  std::condition_variable cv;
};

}  // namespace

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  // The caller is participant 0; pool workers take the rest.
  const std::size_t participants = std::min(n, pool.worker_count() + 1);
  auto state = std::make_shared<WorkStealState>(n, participants, body);
  for (std::size_t p = 1; p < participants; ++p) {
    pool.submit([state, p] { state->participate(p); });
  }
  state->participate(0);
  std::unique_lock lock(state->mutex);
  state->cv.wait(lock, [&] { return state->done.load() == state->n; });
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t workers) {
  if (workers == 0) {
    parallel_for(ThreadPool::shared(), n, body);
    return;
  }
  ThreadPool pool(workers);
  parallel_for(pool, n, body);
}

}  // namespace latol::util
