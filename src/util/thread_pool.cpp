#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

#include "util/error.hpp"

namespace latol::util {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  LATOL_REQUIRE(task != nullptr, "cannot submit an empty task");
  {
    const std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ with a drained queue
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    task();
    {
      const std::lock_guard lock(mutex_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

namespace {

// Shared between the submitting thread and every worker task; owned by
// shared_ptr because queued tasks may start after parallel_for returned
// (the call returns as soon as all *indices* are done, not all tasks).
struct ParallelForState {
  explicit ParallelForState(std::size_t total,
                            std::function<void(std::size_t)> fn)
      : n(total), body(std::move(fn)) {}
  const std::size_t n;
  const std::function<void(std::size_t)> body;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex mutex;
  std::condition_variable cv;
};

}  // namespace

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  auto state = std::make_shared<ParallelForState>(n, body);
  const std::size_t tasks = std::min(
      n, pool.worker_count() == 0 ? std::size_t{1} : pool.worker_count());
  for (std::size_t t = 0; t < tasks; ++t) {
    pool.submit([state] {
      for (;;) {
        const std::size_t i = state->next.fetch_add(1);
        if (i >= state->n) break;
        state->body(i);
        if (state->done.fetch_add(1) + 1 == state->n) {
          const std::lock_guard lock(state->mutex);
          state->cv.notify_all();
        }
      }
    });
  }
  std::unique_lock lock(state->mutex);
  state->cv.wait(lock, [&] { return state->done.load() == state->n; });
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t workers) {
  ThreadPool pool(workers);
  parallel_for(pool, n, body);
}

}  // namespace latol::util
