#include "obs/span.hpp"

#include <charconv>
#include <cstdio>
#include <ostream>

namespace latol::obs {
namespace {

std::atomic<TraceSink*> g_sink{nullptr};
std::atomic<std::uint64_t> g_next_sink_id{1};

thread_local std::uint64_t t_current_span = 0;

// Per-thread lane cache: record() must not take the sink mutex on the
// hot path, and must not dereference a stale lane if a sink at the same
// address is destroyed and recreated — hence the sink-id key, not the
// pointer.
struct LaneCache {
  std::uint64_t sink_id = 0;
  void* lane = nullptr;
};
thread_local LaneCache t_lane_cache;

// Shortest round-trip double, matching registry.cpp's prom_number
// policy: integers print without exponent or trailing ".0".
void append_number(std::string& out, double value) {
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc{}) {
    out += "0";
    return;
  }
  out.append(buf, ptr);
}

void append_u64(std::string& out, std::uint64_t value) {
  char buf[24];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  out.append(buf, static_cast<std::size_t>(ptr - buf));
}

// JSON string escaping (obs cannot depend on io::Json — layering).
void append_escaped(std::string& out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_event(std::string& out, const TraceEvent& e, std::uint32_t pid) {
  out += "{\"name\":\"";
  append_escaped(out, e.name);
  out += "\",\"cat\":\"";
  append_escaped(out, e.category);
  out += "\",\"ph\":\"";
  out += e.phase;
  out += "\",\"pid\":";
  append_u64(out, pid);
  out += ",\"tid\":";
  append_u64(out, e.lane);
  out += ",\"ts\":";
  append_u64(out, e.ts_us);
  if (e.phase == 'i') out += ",\"s\":\"t\"";
  out += ",\"args\":{";
  bool first = true;
  if (e.id != 0) {
    out += "\"span_id\":";
    append_u64(out, e.id);
    out += ",\"parent_id\":";
    append_u64(out, e.parent);
    first = false;
  } else if (e.parent != 0) {
    // Instants carry no id of their own but keep the causal link to the
    // enclosing span.
    out += "\"parent_id\":";
    append_u64(out, e.parent);
    first = false;
  }
  for (std::size_t i = 0; i < TraceEvent::kMaxArgs; ++i) {
    if (e.arg_keys[i] == nullptr) continue;
    if (!first) out += ',';
    out += '"';
    append_escaped(out, e.arg_keys[i]);
    out += "\":";
    append_number(out, e.arg_values[i]);
    first = false;
  }
  if (!e.detail.empty()) {
    if (!first) out += ',';
    out += "\"detail\":\"";
    append_escaped(out, e.detail);
    out += '"';
  }
  out += "}}";
}

}  // namespace

TraceSink::TraceSink()
    : epoch_(std::chrono::steady_clock::now()),
      sink_id_(g_next_sink_id.fetch_add(1, std::memory_order_relaxed)) {}

std::uint64_t TraceSink::now_us() const {
  const auto delta = std::chrono::steady_clock::now() - epoch_;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(delta).count());
}

TraceSink::Lane& TraceSink::lane_for_current_thread() {
  if (t_lane_cache.sink_id == sink_id_ && t_lane_cache.lane != nullptr) {
    return *static_cast<Lane*>(t_lane_cache.lane);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  Lane*& slot = by_thread_[std::this_thread::get_id()];
  if (slot == nullptr) {
    lanes_.emplace_back();
    lanes_.back().index = static_cast<std::uint32_t>(lanes_.size() - 1);
    lanes_.back().events.reserve(256);
    slot = &lanes_.back();
  }
  t_lane_cache = {sink_id_, slot};
  return *slot;
}

void TraceSink::record(TraceEvent event) {
  Lane& lane = lane_for_current_thread();
  event.lane = lane.index;
  event.ts_us = now_us();
  lane.events.push_back(std::move(event));
}

std::size_t TraceSink::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const Lane& lane : lanes_) n += lane.events.size();
  return n;
}

void TraceSink::write_chrome_trace(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string buf;
  buf.reserve(4096);
  buf += "{\"traceEvents\":[";
  bool first = true;
  // Lane-name metadata first so Perfetto labels the tracks.
  for (const Lane& lane : lanes_) {
    if (!first) buf += ",\n";
    first = false;
    buf += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    append_u64(buf, lane.index);
    buf += ",\"args\":{\"name\":\"lane-";
    append_u64(buf, lane.index);
    buf += "\"}}";
  }
  // Events concatenated lane by lane: per-tid order (what the Chrome
  // format requires) is exactly the recording order of each thread.
  for (const Lane& lane : lanes_) {
    for (const TraceEvent& e : lane.events) {
      if (!first) buf += ",\n";
      first = false;
      append_event(buf, e, /*pid=*/1);
      if (buf.size() >= 1 << 16) {
        out << buf;
        buf.clear();
      }
    }
  }
  buf += "],\"displayTimeUnit\":\"ms\"}\n";
  out << buf;
}

TraceSink* default_trace_sink() {
  return g_sink.load(std::memory_order_acquire);
}

TraceSink* set_default_trace_sink(TraceSink* sink) {
  return g_sink.exchange(sink, std::memory_order_acq_rel);
}

Span::Span(const char* name, const char* category)
    : sink_(default_trace_sink()) {
  if (sink_ != nullptr) open(name, category, t_current_span);
}

Span::Span(const char* name, const char* category, std::uint64_t parent_id)
    : sink_(default_trace_sink()) {
  if (sink_ != nullptr) open(name, category, parent_id);
}

void Span::open(const char* name, const char* category, std::uint64_t parent) {
  name_ = name;
  category_ = category;
  id_ = sink_->next_span_id();
  parent_ = parent;
  prev_current_ = t_current_span;
  t_current_span = id_;
  TraceEvent begin;
  begin.name = name_;
  begin.category = category_;
  begin.phase = 'B';
  begin.id = id_;
  begin.parent = parent_;
  sink_->record(std::move(begin));
}

Span::~Span() {
  if (sink_ == nullptr || id_ == 0) return;
  TraceEvent end;
  end.name = name_;
  end.category = category_;
  end.phase = 'E';
  end.id = id_;
  end.parent = parent_;
  for (std::size_t i = 0; i < num_args_; ++i) {
    end.arg_keys[i] = arg_keys_[i];
    end.arg_values[i] = arg_values_[i];
  }
  end.detail = std::move(detail_);
  sink_->record(std::move(end));
  t_current_span = prev_current_;
}

void Span::arg(const char* key, double value) {
  if (sink_ == nullptr || num_args_ >= TraceEvent::kMaxArgs) return;
  arg_keys_[num_args_] = key;
  arg_values_[num_args_] = value;
  ++num_args_;
}

void Span::detail(std::string text) {
  if (sink_ == nullptr) return;
  detail_ = std::move(text);
}

std::uint64_t Span::current() { return t_current_span; }

void instant(const char* name, const char* category) {
  TraceSink* sink = default_trace_sink();
  if (sink == nullptr) return;
  TraceEvent e;
  e.name = name;
  e.category = category;
  e.phase = 'i';
  e.parent = t_current_span;
  sink->record(std::move(e));
}

}  // namespace latol::obs
