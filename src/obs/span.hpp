// Span tracing: where the time goes, causally (DESIGN.md §14).
//
// A Span is a nestable, thread-safe RAII region with an explicit parent
// link; a TraceSink collects the begin/end events of every span into
// per-thread buffers and serializes them as Chrome trace_event JSON,
// loadable in chrome://tracing and Perfetto. The same null-until-
// installed policy as the Registry applies: `default_trace_sink()`
// starts null, every hook is a single predicted-not-taken branch in that
// case, and the paper-reproduction paths stay byte-identical and inside
// the <1% disabled-overhead budget (guarded in bench/perf_mva).
//
// Concurrency model: each thread records into its own buffer — the
// sink's mutex is taken once per (thread, sink) pair to register the
// lane, then appends are plain unsynchronized writes to thread-private
// storage. Serialization (`write_chrome_trace`) requires recording
// threads to be quiescent; the CLI writes after the command returns and
// the daemon writes after its workers joined, so this holds by
// construction.
//
// Parent links: spans nest implicitly per thread (a thread-local current
// span), and explicitly across threads by passing a parent span id — the
// batch runner hands its span id to per-point spans running on worker
// lanes, so Perfetto shows the points nested under the run even though
// they execute on different tids.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace latol::obs {

/// One recorded event. `name` and `category` (and arg keys) must point
/// at static-storage strings — span names are stable literals by policy
/// (tooling groups and diffs on them); per-instance data goes into
/// numeric args or `detail`.
struct TraceEvent {
  static constexpr std::size_t kMaxArgs = 2;

  const char* name = "";
  const char* category = "latol";
  char phase = 'i';        ///< 'B' begin, 'E' end, 'i' instant
  std::uint32_t lane = 0;  ///< recording thread, serialized as tid
  std::uint64_t ts_us = 0; ///< microseconds since the sink's epoch
  std::uint64_t id = 0;    ///< span id (0 for plain instants)
  std::uint64_t parent = 0;///< parent span id (0 = root)
  const char* arg_keys[kMaxArgs] = {nullptr, nullptr};
  double arg_values[kMaxArgs] = {0.0, 0.0};
  std::string detail;      ///< optional string arg (request ids, solver names)
};

/// Collects TraceEvents into per-thread lanes and serializes them as
/// Chrome trace_event JSON. Install with `set_default_trace_sink` for
/// the duration of a command; the caller owns the sink and must outlive
/// any instrumented code running concurrently.
class TraceSink {
 public:
  TraceSink();
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Append `event` to the calling thread's lane (registering the lane
  /// on first use). `event.lane` and `event.ts_us` are filled in here.
  void record(TraceEvent event);

  /// Microseconds since this sink was created (steady clock).
  [[nodiscard]] std::uint64_t now_us() const;

  /// Fresh process-unique span id (never 0).
  std::uint64_t next_span_id() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Total events recorded across all lanes.
  [[nodiscard]] std::size_t event_count() const;

  /// Serialize everything recorded so far as a Chrome trace JSON
  /// document ({"traceEvents": [...]}). Per-lane event order is
  /// preserved, so timestamps are monotone within each tid and B/E
  /// pairs match. Recording threads must be quiescent (see file
  /// comment).
  void write_chrome_trace(std::ostream& out) const;

 private:
  struct Lane {
    std::uint32_t index = 0;
    std::vector<TraceEvent> events;
  };

  Lane& lane_for_current_thread();

  std::chrono::steady_clock::time_point epoch_;
  std::uint64_t sink_id_;  ///< process-unique, keys the thread-local cache
  mutable std::mutex mutex_;
  std::deque<Lane> lanes_;  ///< deque: lane pointers stay valid
  std::unordered_map<std::thread::id, Lane*> by_thread_;
  std::atomic<std::uint64_t> next_id_{1};
};

/// The process-global trace sink; null (tracing off) until
/// set_default_trace_sink() installs one. Not owned.
[[nodiscard]] TraceSink* default_trace_sink();

/// Install (or, with nullptr, remove) the global trace sink. Returns the
/// previous sink. The caller keeps ownership.
TraceSink* set_default_trace_sink(TraceSink* sink);

/// A nestable RAII span recording a 'B' event at construction and an
/// 'E' event (carrying any args added in between) at destruction. When
/// no sink is installed every member is a no-op after one branch.
class Span {
 public:
  /// Opens a span whose parent is the calling thread's innermost live
  /// span (0 = root).
  explicit Span(const char* name, const char* category = "latol");

  /// Opens a span with an explicit parent id — the cross-thread form:
  /// pass the id of a span owned by another thread (e.g. the batch
  /// runner's) to nest under it across worker lanes.
  Span(const char* name, const char* category, std::uint64_t parent_id);

  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach a numeric arg, emitted with the end event. At most
  /// TraceEvent::kMaxArgs stick; extras are dropped. `key` must be a
  /// static-storage string.
  void arg(const char* key, double value);

  /// Attach one free-form string arg (emitted as args.detail).
  void detail(std::string text);

  /// This span's id (0 when tracing is off).
  [[nodiscard]] std::uint64_t id() const { return id_; }

  /// The calling thread's innermost live span id (0 = none). Use to
  /// hand a parent link to work scheduled onto other threads.
  [[nodiscard]] static std::uint64_t current();

 private:
  void open(const char* name, const char* category, std::uint64_t parent);

  TraceSink* sink_;
  const char* name_ = "";
  const char* category_ = "";
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::uint64_t prev_current_ = 0;
  std::size_t num_args_ = 0;
  const char* arg_keys_[TraceEvent::kMaxArgs] = {nullptr, nullptr};
  double arg_values_[TraceEvent::kMaxArgs] = {0.0, 0.0};
  std::string detail_;
};

/// Record a zero-duration instant event ('i') under the calling
/// thread's innermost span; no-op when no sink is installed. Used for
/// point happenings like cache hits and evictions.
void instant(const char* name, const char* category = "latol");

}  // namespace latol::obs
