// Process-wide instrumentation registry: named counters, gauges, and
// timers with near-zero overhead when disabled.
//
// Design constraints (DESIGN.md §9):
//  - dependency-free: only the standard library, usable from every layer
//    (util <- obs <- qn/sim/...) without dragging io/core in;
//  - thread-safe: slot creation takes a mutex once per name, updates are
//    lock-free atomics (the sweep engine hammers these from the
//    thread-pool workers);
//  - off by default: the global registry pointer starts null and every
//    helper is a single branch in that case, so the paper-reproduction
//    benches pay one predicted-not-taken branch per hook (<1% on
//    perf_mva, guarded in bench/).
//
// Numbers never change results: instrumentation only observes. Anything
// that would alter solver output does not belong here.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace latol::obs {

/// Monotonically increasing event count (events fired, RNG draws, cache
/// hits, ...). Updates are relaxed atomics: totals are exact, ordering
/// between different counters is not promised.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value (queue depth, residual, ...).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Accumulated wall time (steady_clock) plus an invocation count.
class Timer {
 public:
  void add_seconds(double s) {
    seconds_.fetch_add(s, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] double seconds() const {
    return seconds_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  void reset() {
    seconds_.store(0.0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<double> seconds_{0.0};
  std::atomic<std::uint64_t> count_{0};
};

/// Fixed log-bucket latency histogram: bucket i covers values up to
/// 1e-6·2^i seconds (1 µs .. ~4295 s across 32 finite buckets), plus an
/// overflow bucket. The bounds are compile-time constants — every
/// histogram shares them, so two runs' histograms are always directly
/// comparable (what `latol profile --diff` relies on) and the Prometheus
/// exposition needs no per-slot configuration. Updates are relaxed
/// atomics like the other slots; `observe` is a short predictable loop
/// (≤33 compares) with no floating-point log.
class Histogram {
 public:
  static constexpr std::size_t kFiniteBuckets = 32;

  /// Inclusive upper bound of finite bucket `i` in seconds (1e-6·2^i).
  [[nodiscard]] static constexpr double upper_bound(std::size_t i) {
    double b = 1e-6;
    for (std::size_t k = 0; k < i; ++k) b *= 2.0;
    return b;
  }

  void observe(double seconds) {
    std::size_t i = 0;
    double bound = 1e-6;
    while (i < kFiniteBuckets && seconds > bound) {
      bound *= 2.0;
      ++i;
    }
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(seconds, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kFiniteBuckets + 1] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Point-in-time copy of a registry, in slot-creation order (stable across
/// runs of the same code path, so metrics JSON diffs cleanly).
struct Snapshot {
  struct CounterSample {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeSample {
    std::string name;
    double value = 0.0;
  };
  struct TimerSample {
    std::string name;
    double seconds = 0.0;
    std::uint64_t count = 0;
  };
  struct HistogramSample {
    std::string name;
    std::uint64_t count = 0;
    double sum = 0.0;
    /// Per-bucket (non-cumulative) counts; index kFiniteBuckets is the
    /// overflow bucket. Bounds are Histogram::upper_bound(i).
    std::vector<std::uint64_t> buckets;
  };
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<TimerSample> timers;
  std::vector<HistogramSample> histograms;
};

/// Named metric slots. Slot lookup/creation is mutex-protected; the
/// returned references stay valid for the registry's lifetime (slots live
/// in deques, which never relocate elements), so hot paths look a metric
/// up once and update it lock-free thereafter.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Timer& timer(std::string_view name);
  Histogram& histogram(std::string_view name);

  [[nodiscard]] Snapshot snapshot() const;

  /// Zero every slot (names and identities are kept).
  void reset();

 private:
  template <class Slot>
  struct Named {
    std::string name;
    Slot slot;
  };

  mutable std::mutex mutex_;
  std::deque<Named<Counter>> counters_;
  std::deque<Named<Gauge>> gauges_;
  std::deque<Named<Timer>> timers_;
  std::deque<Named<Histogram>> histograms_;
};

/// Render `snapshot` in the Prometheus text exposition format (one
/// `# TYPE` line plus samples per metric). Metric names are `prefix` +
/// the slot name with every non-[a-zA-Z0-9_] character mapped to `_`
/// (Prometheus' legal name alphabet): counters become `<name>_total`
/// (TYPE counter), gauges `<name>` (TYPE gauge), timers a pair
/// `<name>_seconds_total` / `<name>_count` (TYPE counter) — the
/// accumulated-wall-time-plus-invocations convention scrapers expect —
/// and histograms the standard cumulative `<name>_bucket{le="..."}`
/// series plus `<name>_sum` / `<name>_count` (TYPE histogram).
/// Output order follows the snapshot (slot-creation order), so repeated
/// scrapes of one process diff cleanly.
[[nodiscard]] std::string to_prometheus(const Snapshot& snapshot,
                                        std::string_view prefix = "latol_");

/// The process-global registry; null (instrumentation off) until
/// set_default_registry() installs one. Not owned.
[[nodiscard]] Registry* default_registry();

/// Install (or, with nullptr, remove) the global registry. The caller
/// keeps ownership and must outlive any instrumented code running
/// concurrently. Returns the previous registry.
Registry* set_default_registry(Registry* registry);

// --- null-tolerant helpers: the form instrumented code actually uses ----

/// Bump counter `name` in the default registry; no-op when none is set.
inline void count(std::string_view name, std::uint64_t n = 1) {
  if (Registry* r = default_registry()) r->counter(name).add(n);
}

/// Set gauge `name` in the default registry; no-op when none is set.
inline void gauge_set(std::string_view name, double value) {
  if (Registry* r = default_registry()) r->gauge(name).set(value);
}

/// Add to timer `name` in the default registry; no-op when none is set.
inline void time_add(std::string_view name, double seconds) {
  if (Registry* r = default_registry()) r->timer(name).add_seconds(seconds);
}

/// Record one observation in histogram `name`; no-op when none is set.
inline void observe(std::string_view name, double seconds) {
  if (Registry* r = default_registry()) r->histogram(name).observe(seconds);
}

/// Times a scope into a named timer of the default registry (no-op when
/// instrumentation is off). The clock is only read when a registry is
/// installed.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string_view name)
      : timer_(nullptr) {
    if (Registry* r = default_registry()) {
      timer_ = &r->timer(name);
      start_ = std::chrono::steady_clock::now();
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (timer_ != nullptr) {
      timer_->add_seconds(std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start_)
                              .count());
    }
  }

 private:
  Timer* timer_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace latol::obs
