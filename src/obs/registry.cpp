#include "obs/registry.hpp"

#include <atomic>

namespace latol::obs {

namespace {

template <class Slot, class Deque>
Slot& find_or_create(std::mutex& mutex, Deque& slots, std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex);
  for (auto& entry : slots) {
    if (entry.name == name) return entry.slot;
  }
  // Atomics are immovable; default-construct the slot in place and then
  // name it (deques never relocate existing elements, so the reference
  // stays valid for the registry's lifetime).
  auto& entry = slots.emplace_back();
  entry.name = std::string(name);
  return entry.slot;
}

std::atomic<Registry*> g_default_registry{nullptr};

}  // namespace

Counter& Registry::counter(std::string_view name) {
  return find_or_create<Counter>(mutex_, counters_, name);
}

Gauge& Registry::gauge(std::string_view name) {
  return find_or_create<Gauge>(mutex_, gauges_, name);
}

Timer& Registry::timer(std::string_view name) {
  return find_or_create<Timer>(mutex_, timers_, name);
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& entry : counters_)
    snap.counters.push_back({entry.name, entry.slot.value()});
  snap.gauges.reserve(gauges_.size());
  for (const auto& entry : gauges_)
    snap.gauges.push_back({entry.name, entry.slot.value()});
  snap.timers.reserve(timers_.size());
  for (const auto& entry : timers_)
    snap.timers.push_back({entry.name, entry.slot.seconds(),
                           entry.slot.count()});
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : counters_) entry.slot.reset();
  for (auto& entry : gauges_) entry.slot.reset();
  for (auto& entry : timers_) entry.slot.reset();
}

Registry* default_registry() {
  return g_default_registry.load(std::memory_order_acquire);
}

Registry* set_default_registry(Registry* registry) {
  return g_default_registry.exchange(registry, std::memory_order_acq_rel);
}

}  // namespace latol::obs
