#include "obs/registry.hpp"

#include <atomic>
#include <charconv>
#include <cmath>

namespace latol::obs {

namespace {

template <class Slot, class Deque>
Slot& find_or_create(std::mutex& mutex, Deque& slots, std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex);
  for (auto& entry : slots) {
    if (entry.name == name) return entry.slot;
  }
  // Atomics are immovable; default-construct the slot in place and then
  // name it (deques never relocate existing elements, so the reference
  // stays valid for the registry's lifetime).
  auto& entry = slots.emplace_back();
  entry.name = std::string(name);
  return entry.slot;
}

std::atomic<Registry*> g_default_registry{nullptr};

}  // namespace

Counter& Registry::counter(std::string_view name) {
  return find_or_create<Counter>(mutex_, counters_, name);
}

Gauge& Registry::gauge(std::string_view name) {
  return find_or_create<Gauge>(mutex_, gauges_, name);
}

Timer& Registry::timer(std::string_view name) {
  return find_or_create<Timer>(mutex_, timers_, name);
}

Histogram& Registry::histogram(std::string_view name) {
  return find_or_create<Histogram>(mutex_, histograms_, name);
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& entry : counters_)
    snap.counters.push_back({entry.name, entry.slot.value()});
  snap.gauges.reserve(gauges_.size());
  for (const auto& entry : gauges_)
    snap.gauges.push_back({entry.name, entry.slot.value()});
  snap.timers.reserve(timers_.size());
  for (const auto& entry : timers_)
    snap.timers.push_back({entry.name, entry.slot.seconds(),
                           entry.slot.count()});
  snap.histograms.reserve(histograms_.size());
  for (const auto& entry : histograms_) {
    Snapshot::HistogramSample sample;
    sample.name = entry.name;
    sample.count = entry.slot.count();
    sample.sum = entry.slot.sum();
    sample.buckets.resize(Histogram::kFiniteBuckets + 1);
    for (std::size_t i = 0; i <= Histogram::kFiniteBuckets; ++i)
      sample.buckets[i] = entry.slot.bucket(i);
    snap.histograms.push_back(std::move(sample));
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : counters_) entry.slot.reset();
  for (auto& entry : gauges_) entry.slot.reset();
  for (auto& entry : timers_) entry.slot.reset();
  for (auto& entry : histograms_) entry.slot.reset();
}

namespace {

/// Map a registry slot name ("serve.queue_depth") to a legal Prometheus
/// metric name fragment ("serve_queue_depth").
std::string sanitize_metric_name(std::string_view prefix,
                                 std::string_view name) {
  std::string out(prefix);
  out.reserve(prefix.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

/// Shortest round-trip decimal form (Prometheus parses floats; NaN/Inf
/// are legal there but never produced by our slots).
std::string prom_number(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  (void)ec;
  return std::string(buf, end);
}

void append_metric(std::string& out, const std::string& name,
                   const char* type, const std::string& value) {
  out += "# TYPE " + name + " " + type + "\n";
  out += name + " " + value + "\n";
}

}  // namespace

std::string to_prometheus(const Snapshot& snapshot, std::string_view prefix) {
  std::string out;
  for (const auto& c : snapshot.counters) {
    append_metric(out, sanitize_metric_name(prefix, c.name) + "_total",
                  "counter", std::to_string(c.value));
  }
  for (const auto& g : snapshot.gauges) {
    append_metric(out, sanitize_metric_name(prefix, g.name), "gauge",
                  prom_number(g.value));
  }
  for (const auto& t : snapshot.timers) {
    const std::string base = sanitize_metric_name(prefix, t.name);
    append_metric(out, base + "_seconds_total", "counter",
                  prom_number(t.seconds));
    append_metric(out, base + "_count", "counter", std::to_string(t.count));
  }
  for (const auto& h : snapshot.histograms) {
    const std::string base = sanitize_metric_name(prefix, h.name);
    out += "# TYPE " + base + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      cumulative += h.buckets[i];
      const bool overflow = i >= Histogram::kFiniteBuckets;
      out += base + "_bucket{le=\"" +
             (overflow ? "+Inf" : prom_number(Histogram::upper_bound(i))) +
             "\"} " + std::to_string(cumulative) + "\n";
    }
    out += base + "_sum " + prom_number(h.sum) + "\n";
    out += base + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

Registry* default_registry() {
  return g_default_registry.load(std::memory_order_acquire);
}

Registry* set_default_registry(Registry* registry) {
  return g_default_registry.exchange(registry, std::memory_order_acq_rel);
}

}  // namespace latol::obs
