// Convergence trace: the per-iteration residual history of one iterative
// solve (AMVA deltas, Linearizer core deltas).
//
// Solvers take an optional `ConvergenceTrace*` sink (null by default — no
// recording, no overhead beyond a pointer test per iteration). The trace
// is caller-owned and single-threaded by design: each solve records into
// its own sink; robust_solve wires a fresh sink per attempt.
//
// Recording is capped so a 200k-iteration non-converging solve cannot
// balloon memory or the metrics JSON: past `capacity` entries the values
// are dropped but still counted, so `total_recorded()` is always the true
// iteration count.
#pragma once

#include <cstddef>
#include <vector>

namespace latol::obs {

/// Bounded recorder of per-iteration convergence residuals (DESIGN.md
/// §9). Solvers push each iteration's delta; the ring keeps the newest
/// `capacity` samples so diverging solves cannot grow it unboundedly.
class ConvergenceTrace {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit ConvergenceTrace(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  /// Record one iteration's convergence measure (max absolute queue-length
  /// or fraction change). Values beyond the capacity are counted but not
  /// stored.
  void record(double delta) {
    ++total_;
    if (deltas_.size() < capacity_) deltas_.push_back(delta);
  }

  /// Stored residuals, oldest first (at most `capacity()` of them).
  [[nodiscard]] const std::vector<double>& residuals() const {
    return deltas_;
  }

  /// Number of record() calls, including dropped ones — the solver's true
  /// iteration count even when the trace is truncated.
  [[nodiscard]] std::size_t total_recorded() const { return total_; }

  [[nodiscard]] bool truncated() const { return total_ > deltas_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool empty() const { return total_ == 0; }

  void clear() {
    deltas_.clear();
    total_ = 0;
  }

 private:
  std::size_t capacity_;
  std::size_t total_ = 0;
  std::vector<double> deltas_;
};

}  // namespace latol::obs
