#include "exp/parameter.hpp"

#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace latol::exp {

namespace {

struct ParamDef {
  const char* canonical;
  const char* alias;  // paper symbol, or nullptr
  bool integral;
  double (*get)(const core::MmsConfig&);
  void (*set)(core::MmsConfig&, double);
};

constexpr ParamDef kParams[] = {
    {"p_remote", nullptr, false,
     [](const core::MmsConfig& c) { return c.p_remote; },
     [](core::MmsConfig& c, double v) { c.p_remote = v; }},
    {"threads", "n_t", true,
     [](const core::MmsConfig& c) {
       return static_cast<double>(c.threads_per_processor);
     },
     [](core::MmsConfig& c, double v) {
       c.threads_per_processor = static_cast<int>(v);
     }},
    {"runlength", "R", false,
     [](const core::MmsConfig& c) { return c.runlength; },
     [](core::MmsConfig& c, double v) { c.runlength = v; }},
    {"switch_delay", "S", false,
     [](const core::MmsConfig& c) { return c.switch_delay; },
     [](core::MmsConfig& c, double v) { c.switch_delay = v; }},
    {"memory_latency", "L", false,
     [](const core::MmsConfig& c) { return c.memory_latency; },
     [](core::MmsConfig& c, double v) { c.memory_latency = v; }},
    {"context_switch", "C", false,
     [](const core::MmsConfig& c) { return c.context_switch; },
     [](core::MmsConfig& c, double v) { c.context_switch = v; }},
    {"k", nullptr, true,
     [](const core::MmsConfig& c) { return static_cast<double>(c.k); },
     [](core::MmsConfig& c, double v) { c.k = static_cast<int>(v); }},
    {"p_sw", nullptr, false,
     [](const core::MmsConfig& c) { return c.traffic.p_sw; },
     [](core::MmsConfig& c, double v) { c.traffic.p_sw = v; }},
    {"memory_ports", nullptr, true,
     [](const core::MmsConfig& c) {
       return static_cast<double>(c.memory_ports);
     },
     [](core::MmsConfig& c, double v) {
       c.memory_ports = static_cast<int>(v);
     }},
    {"hotspot_fraction", nullptr, false,
     [](const core::MmsConfig& c) { return c.traffic.hotspot_fraction; },
     [](core::MmsConfig& c, double v) { c.traffic.hotspot_fraction = v; }},
    {"open_arrival_rate", "lambda0", false,
     [](const core::MmsConfig& c) { return c.open_arrival_rate; },
     [](core::MmsConfig& c, double v) { c.open_arrival_rate = v; }},
};

const ParamDef* find_param(std::string_view name) {
  for (const ParamDef& p : kParams) {
    if (name == p.canonical ||
        (p.alias != nullptr && name == p.alias)) {
      return &p;
    }
  }
  return nullptr;
}

[[noreturn]] void unknown_parameter(std::string_view name) {
  std::ostringstream os;
  os << "unknown parameter `" << name << "` (expected one of:";
  for (const ParamDef& p : kParams) {
    os << ' ' << p.canonical;
    if (p.alias != nullptr) os << '|' << p.alias;
  }
  os << ')';
  throw InvalidArgument(os.str());
}

}  // namespace

std::string canonical_parameter(std::string_view name) {
  const ParamDef* p = find_param(name);
  if (p == nullptr) unknown_parameter(name);
  return p->canonical;
}

bool is_parameter(std::string_view name) {
  return find_param(name) != nullptr;
}

bool parameter_is_integral(std::string_view name) {
  const ParamDef* p = find_param(name);
  if (p == nullptr) unknown_parameter(name);
  return p->integral;
}

void apply_parameter(core::MmsConfig& config, std::string_view name,
                     double value) {
  const ParamDef* p = find_param(name);
  if (p == nullptr) unknown_parameter(name);
  if (p->integral) {
    LATOL_REQUIRE(std::floor(value) == value,
                  "parameter `" << p->canonical
                                << "` is integer-valued, got " << value);
  }
  p->set(config, value);
}

double read_parameter(const core::MmsConfig& config, std::string_view name) {
  const ParamDef* p = find_param(name);
  if (p == nullptr) unknown_parameter(name);
  return p->get(config);
}

const std::vector<std::string>& parameter_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const ParamDef& p : kParams) out.emplace_back(p.canonical);
    return out;
  }();
  return names;
}

}  // namespace latol::exp
