// Batch execution of a Scenario: expand the grid, deduplicate, solve in
// parallel through the SolveCache with per-point failure isolation, run
// optional simulator validation, and emit machine-readable results
// (CSV + JSON) plus a run manifest recording provenance.
//
// Determinism contract: for a given scenario content and build, the
// result rows (and the CSV/JSON emitted from them) are bitwise identical
// regardless of worker count, cache warmth, or point arrival order —
// results live in pre-sized slots in grid order and every solver is
// deterministic. The manifest is the one artifact that varies run-to-run
// (wall time, cache statistics).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/sweep.hpp"
#include "exp/scenario.hpp"
#include "exp/solve_cache.hpp"
#include "io/json.hpp"
#include "obs/registry.hpp"
#include "util/cancel.hpp"

namespace latol::exp {

/// Simulator measurements for one validated grid point.
struct SimPoint {
  std::string engine;  ///< "des" | "petri"
  std::uint64_t seed = 0;
  double sim_time = 0;
  double processor_utilization = 0;
  double message_rate = 0;
  double network_latency = 0;
  double memory_latency = 0;
  /// Measured end-to-end latency of open background requests (DES engine
  /// with base.open_arrival_rate > 0 only; 0 otherwise).
  double open_latency = 0;
};

/// Everything computed for one grid point.
struct PointResult {
  /// Model answer + tolerance indices + error isolation (core type, so
  /// the bench health helpers work on scenario output too).
  core::SweepResult model;
  std::optional<SimPoint> sim;
  /// An ideal-system solve behind a tolerance index was degraded or
  /// unconverged (the actual-system health lives in `model`).
  bool ideal_degraded = false;
  /// The main solve of this point was served from the cache (duplicate
  /// grid points copy their representative's value).
  bool cache_hit = false;
};

/// Aggregate run accounting for the manifest.
struct RunStats {
  std::size_t grid_points = 0;
  std::size_t unique_points = 0;   ///< after dedup of identical configs
  std::size_t solves = 0;          ///< analyze() calls actually executed
  std::size_t cache_hits = 0;      ///< served from the cache (incl. preload)
  std::size_t cache_preloaded = 0; ///< entries loaded from a cache file
  std::size_t cache_evictions = 0; ///< entries dropped by the capacity bound
  std::size_t degraded_points = 0; ///< answered by fallback / not converged
  std::size_t failed_points = 0;   ///< no answer at all (error recorded)
  std::size_t deadline_points = 0; ///< of the failed: hit a deadline/timeout
  std::size_t simulated_points = 0;
  std::size_t workers = 0;         ///< worker threads used
  // --- grid geometry and sharding (DESIGN.md §15) ---
  std::size_t row_length = 0;      ///< points per row (last-axis size)
  std::size_t rows_total = 0;      ///< rows in the full grid
  std::size_t rows_owned = 0;      ///< rows this process solved
  std::size_t shard_index = 0;     ///< this process's shard
  std::size_t shard_count = 1;     ///< total worker processes
  // --- warm-start accounting ---
  bool warm = false;               ///< warm-start chaining was active
  std::size_t warm_points = 0;     ///< points solved with a non-null hint
  std::size_t total_iterations = 0;  ///< solver iterations over all points
  double wall_seconds = 0;
  // Per-stage wall time (also mirrored into the obs registry as
  // exp.stage.* timers when one is installed); `latol profile` prints
  // these as its stage table.
  double expand_seconds = 0;    ///< grid expansion + dedup
  double solve_seconds = 0;     ///< parallel model solves
  double validate_seconds = 0;  ///< simulator validation (0 when skipped)
  /// Points answered per solver kind, name -> count, sorted by name.
  std::vector<std::pair<std::string, std::size_t>> solver_counts;
};

/// Execution knobs that are not part of the scenario content.
struct RunOptions {
  /// Overrides Scenario::workers when nonzero.
  std::size_t workers = 0;
  /// Shared/persistent cache; nullptr runs with a private transient one
  /// (in-run dedup still works, nothing survives the call).
  SolveCache* cache = nullptr;
  /// Run-wide cooperative cancellation (server drain / request deadline):
  /// when non-null and expired, remaining points fail with
  /// deadline-exceeded instead of solving; in-flight solves abort at
  /// their next iteration. Per-point failure isolation applies — the run
  /// still returns, with the affected points marked.
  const util::CancelToken* cancel = nullptr;
  /// Per-point wall-clock budget in milliseconds (0 = none). A point
  /// exceeding it is marked failed with error code deadline-exceeded and
  /// counted in RunStats::deadline_points; other points are unaffected.
  double point_timeout_ms = 0.0;
  /// Chain warm-start hints along each grid row (forces the behavior on
  /// even when the scenario's solver.warm_start is false). Streaming
  /// runner only; see DESIGN.md §15 for the determinism contract.
  bool warm_start = false;
  /// Deterministic split across worker processes (streaming runner):
  /// this process solves the grid rows r with r % shard_count ==
  /// shard_index. Concatenating the shards' outputs row-by-row
  /// (round-robin, scripts/merge_shards.py) reproduces the single-process
  /// artifacts byte-for-byte.
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  /// Upper bound on the points buffered before emission (streaming
  /// runner; rounded up to whole rows). 0 picks a default (4096). This is
  /// the memory bound: a million-point sweep holds block_points results,
  /// never the whole grid.
  std::size_t block_points = 0;
};

/// Output sinks for the streaming runner; null sinks are skipped. Rows
/// are written in grid order as each block completes, so memory stays
/// bounded by RunOptions::block_points.
struct StreamSinks {
  std::ostream* csv = nullptr;    ///< header + one line per point
  std::ostream* jsonl = nullptr;  ///< one compact JSON object per point
};

/// A completed run.
struct RunResult {
  std::vector<core::MmsConfig> grid;  ///< expand_grid(scenario)
  std::vector<PointResult> points;    ///< same order as `grid`
  RunStats stats;
};

/// Run the scenario. Throws InvalidArgument on inconsistent inputs (e.g.
/// validation indices outside the grid); individual point failures are
/// captured in PointResult::model.error, never thrown.
[[nodiscard]] RunResult run_scenario(const Scenario& scenario,
                                     const RunOptions& options = {});

/// Streaming variant for large sweeps: solves the grid row by row (a row
/// is one run of the fastest-varying axis) and emits each block of rows
/// to the sinks as soon as it completes, holding at most
/// RunOptions::block_points results in memory. For the same scenario and
/// build the emitted bytes equal write_results_csv over run_scenario —
/// regardless of worker count — and the shards of an i/n split
/// concatenate (round-robin by row) to the single-process output.
///
/// Warm starting (scenario solver.warm_start or RunOptions::warm_start):
/// within each row, points are solved left to right and each solve is
/// seeded from a linear extrapolation of the two previous solutions
/// (qn/hints.hpp). Chains never cross rows, so rows stay independent
/// tasks and every point's hint — and therefore its bytes — is a pure
/// function of the scenario, whatever the worker count or shard split.
/// Warm main solves bypass the cache (a cached value must not depend on
/// which row computed it first); the hint-free ideal-system solves behind
/// tolerance indices still share it.
[[nodiscard]] RunStats run_scenario_stream(const Scenario& scenario,
                                           const RunOptions& options,
                                           const StreamSinks& sinks);

/// Write the result rows as CSV (header = scenario.output_columns()).
/// Cells use the same formatting as the bench CSVs, so a scenario that
/// mirrors a bench reproduces its file byte-for-byte.
void write_results_csv(const Scenario& scenario, const RunResult& run,
                       std::ostream& out);

/// Result rows as a JSON document: {"scenario", "columns", "rows": [...]}
/// with one object per grid point (numbers as numbers, flags as bools).
[[nodiscard]] io::Json results_to_json(const Scenario& scenario,
                                       const RunResult& run);

/// The run manifest: scenario identity (name, content hash), build
/// version, seed, wall time, grid/cache accounting, per-solver
/// provenance counts, axis metadata (parameter names + point count per
/// axis, so shard-merge validation never re-parses the scenario), grid
/// geometry, and the shard/warm sections.
[[nodiscard]] io::Json manifest_to_json(const Scenario& scenario,
                                        const RunResult& run);

/// Manifest from bare stats — what the streaming runner returns (it never
/// materializes a RunResult).
[[nodiscard]] io::Json manifest_to_json(const Scenario& scenario,
                                        const RunStats& stats);

/// The metrics document ("latol-metrics-v1", DESIGN.md §9): per-point
/// solver diagnostics (iterations, residual + history length, invariant
/// checks, cache hit), cache accounting, stage timings, warnings, and —
/// when `registry` is non-null — a snapshot of its counters/gauges/timers.
/// Unlike the result rows this document varies run-to-run (timings).
[[nodiscard]] io::Json metrics_to_json(const Scenario& scenario,
                                       const RunResult& run,
                                       const obs::Snapshot* registry = nullptr);

/// Render a registry snapshot as {"counters": {...}, "gauges": {...},
/// "timers": {name: {"seconds", "count"}}} (slot-creation order).
[[nodiscard]] io::Json snapshot_to_json(const obs::Snapshot& snapshot);

/// Version string baked at configure time (`git describe --always
/// --dirty`), "unknown" outside a git checkout. Stamps manifests and
/// gates persistent cache reuse.
[[nodiscard]] std::string build_version();

}  // namespace latol::exp
