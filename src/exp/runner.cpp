#include "exp/runner.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <map>
#include <ostream>
#include <thread>
#include <unordered_map>

#include "core/tolerance.hpp"
#include "exp/parameter.hpp"
#include "obs/span.hpp"
#include "qn/hints.hpp"
#include "qn/robust.hpp"
#include "sim/mms_des.hpp"
#include "sim/mms_petri.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

#ifndef LATOL_GIT_DESCRIBE
#define LATOL_GIT_DESCRIBE "unknown"
#endif

namespace latol::exp {

namespace {

/// Per-row warm-start state: the two most recent solutions of the chain
/// plus the extrapolated hint built from them (kept here so its storage
/// is reused across the row instead of reallocated per point).
struct WarmChain {
  qn::MvaSolution prev1;  // most recent
  qn::MvaSolution prev2;
  qn::MvaSolution hint;
  bool has1 = false;
  bool has2 = false;

  void reset() { has1 = has2 = false; }
};

/// Warm-solve accounting for one row.
struct WarmStats {
  std::size_t solves = 0;  ///< main analyze() calls executed
  std::size_t hinted = 0;  ///< of those, seeded from a prior
};

/// The hint for the next point of a row: the linear extrapolation
/// q = max(0, 2*q1 - q2) of the two previous queue vectors, falling back
/// to the previous solution alone when only one exists (or when the
/// network shape changed along the row — the kernel would reject a
/// mismatched seed anyway). Extrapolating roughly doubles the iteration
/// savings of a plain previous-point seed on fig04-style axes
/// (docs/PERFORMANCE.md §7).
const qn::MvaSolution* chain_hint(WarmChain& chain) {
  if (!chain.has1) return nullptr;
  if (!chain.has2) return &chain.prev1;
  const util::Matrix& q1 = chain.prev1.queue_length;
  const util::Matrix& q2 = chain.prev2.queue_length;
  if (q1.rows() != q2.rows() || q1.cols() != q2.cols()) return &chain.prev1;
  chain.hint = chain.prev1;
  util::Matrix& q = chain.hint.queue_length;
  for (std::size_t c = 0; c < q.rows(); ++c) {
    for (std::size_t m = 0; m < q.cols(); ++m) {
      q(c, m) = std::max(0.0, 2.0 * q1(c, m) - q2(c, m));
    }
  }
  return &chain.hint;
}

/// Solve one grid point through the cache. Mirrors core::sweep's failure
/// isolation and tolerance_index's math exactly — same numbers, but the
/// ideal-system solve is shared across every point with the same ideal.
///
/// Deadlines: each point gets a child token chained to the run-wide one,
/// armed with the per-point budget when configured. The token is not part
/// of the cache key, so a timed-out point and a later retry still share
/// (and coalesce onto) the same cache entry.
///
/// Warm starting: with a non-null `chain`, the main solve bypasses the
/// cache — core::analyze seeded from the chain's extrapolated hint, the
/// accepted solution fed back into the chain. The cached value of a
/// configuration must never depend on which row's hint reached it first,
/// so hinted solves and the cache are mutually exclusive by construction;
/// the hint-free ideal-system solves still go through the cache. A failed
/// point resets the chain (the next point starts cold — deterministic,
/// since failures are).
void compute_point(const core::MmsConfig& cfg, const Scenario& scenario,
                   SolveCache& cache, const RunOptions& run_options,
                   PointResult& point, WarmChain* chain = nullptr,
                   WarmStats* warm = nullptr) {
  util::CancelToken point_token(run_options.cancel);
  qn::AmvaOptions amva = scenario.amva;
  if (run_options.cancel != nullptr || run_options.point_timeout_ms > 0.0) {
    if (run_options.point_timeout_ms > 0.0) {
      point_token.set_deadline_after(run_options.point_timeout_ms / 1000.0);
    }
    amva.cancel = &point_token;
  }
  core::SweepResult& r = point.model;
  try {
    // A point whose deadline fired while it sat in the queue never starts
    // a solve — the driving loop must not wedge behind dead work.
    if (amva.cancel != nullptr && amva.cancel->expired()) {
      throw qn::SolverError(qn::SolverErrorCode::kDeadlineExceeded,
                            "point deadline expired before solve started");
    }
    if (chain != nullptr) {
      const qn::MvaSolution* prior = chain_hint(*chain);
      qn::SolveHints hints;
      hints.prior = prior;
      core::AnalysisOptions opts;
      opts.amva = amva;
      opts.method = scenario.method;
      opts.hints = &hints;
      qn::MvaSolution solution;
      opts.solution_out = &solution;
      if (warm != nullptr) {
        ++warm->solves;
        if (prior != nullptr) ++warm->hinted;
      }
      r.perf = core::analyze(cfg, opts);
      chain->prev2 = std::move(chain->prev1);
      chain->prev1 = std::move(solution);
      chain->has2 = chain->has1;
      chain->has1 = true;
    } else {
      r.perf = cache.analyze(cfg, amva, &point.cache_hit, scenario.method);
    }
    if (scenario.network_tolerance) {
      const core::MmsPerformance ideal = cache.analyze(
          core::ideal_config(cfg, core::Subsystem::kNetwork,
                             scenario.network_method),
          amva, nullptr, scenario.method);
      LATOL_REQUIRE(ideal.processor_utilization > 0.0,
                    "ideal system has zero processor utilization");
      r.tol_network =
          r.perf.processor_utilization / ideal.processor_utilization;
      point.ideal_degraded |= ideal.degraded || !ideal.converged;
    }
    if (scenario.memory_tolerance) {
      const core::MmsPerformance ideal = cache.analyze(
          core::ideal_config(cfg, core::Subsystem::kMemory,
                             core::IdealMethod::kZeroDelay),
          amva, nullptr, scenario.method);
      LATOL_REQUIRE(ideal.processor_utilization > 0.0,
                    "ideal system has zero processor utilization");
      r.tol_memory =
          r.perf.processor_utilization / ideal.processor_utilization;
      point.ideal_degraded |= ideal.degraded || !ideal.converged;
    }
  } catch (const qn::SolverError& e) {
    r.error = e.what();
    r.error_code = e.code();
    if (chain != nullptr) chain->reset();
  } catch (const InvalidArgument& e) {
    r.error = e.what();
    r.error_code = qn::SolverErrorCode::kInvalidNetwork;
    if (chain != nullptr) chain->reset();
  } catch (const std::exception& e) {
    r.error = e.what();
    if (chain != nullptr) chain->reset();
  }
}

SimPoint simulate_point(const core::MmsConfig& cfg,
                        const ValidationSpec& spec, std::size_t index) {
  SimPoint sp;
  sp.engine = spec.engine;
  sp.seed = spec.seed + index;  // distinct, reproducible stream per point
  sp.sim_time = spec.sim_time;
  if (spec.engine == "petri") {
    const sim::PetriMmsResult r =
        sim::simulate_mms_petri(cfg, spec.sim_time, 0.1, sp.seed);
    sp.processor_utilization = r.processor_utilization;
    sp.message_rate = r.message_rate;
    sp.network_latency = r.network_latency;
    sp.memory_latency = r.memory_latency;
  } else {
    sim::SimulationConfig sc;
    sc.mms = cfg;
    sc.sim_time = spec.sim_time;
    sc.seed = sp.seed;
    const sim::SimulationResult r = sim::simulate_mms(sc);
    sp.processor_utilization = r.processor_utilization;
    sp.message_rate = r.message_rate;
    sp.network_latency = r.network_latency;
    sp.memory_latency = r.memory_latency;
    sp.open_latency = r.open_latency;
  }
  return sp;
}

}  // namespace

RunResult run_scenario(const Scenario& scenario, const RunOptions& options) {
  using Clock = std::chrono::steady_clock;
  const auto elapsed = [](Clock::time_point since) {
    return std::chrono::duration<double>(Clock::now() - since).count();
  };
  const auto start = Clock::now();
  // The batch-runner span: per-point spans running on worker lanes link
  // to it explicitly by id (thread-local nesting cannot cross threads).
  obs::Span run_span("exp.run_scenario", "exp");
  const std::uint64_t run_span_id = run_span.id();
  RunResult run;
  run.grid = expand_grid(scenario);
  run.points.resize(run.grid.size());

  // Deduplicate identical grid points: only the first occurrence solves;
  // duplicates copy its result afterwards (order-independent because the
  // representative is always the lowest index).
  std::unordered_map<std::string, std::size_t> first_index;
  std::vector<std::size_t> representative(run.grid.size());
  std::vector<std::size_t> unique_points;
  for (std::size_t i = 0; i < run.grid.size(); ++i) {
    const auto [it, inserted] = first_index.emplace(
        SolveCache::config_key(run.grid[i], scenario.amva, scenario.method),
        i);
    representative[i] = it->second;
    if (inserted) unique_points.push_back(i);
  }
  run.stats.expand_seconds = elapsed(start);
  obs::time_add("exp.stage.expand", run.stats.expand_seconds);

  SolveCache transient;
  SolveCache& cache = options.cache != nullptr ? *options.cache : transient;
  const std::size_t preloaded = cache.size();
  const std::size_t hits_before = cache.hits();
  const std::size_t misses_before = cache.misses();
  const std::size_t evictions_before = cache.evictions();

  const auto solve_start = Clock::now();
  const std::size_t workers =
      options.workers != 0 ? options.workers : scenario.workers;
  util::parallel_for(
      unique_points.size(),
      [&](std::size_t j) {
        const std::size_t i = unique_points[j];
        obs::Span point_span("exp.point", "exp", run_span_id);
        point_span.arg("index", static_cast<double>(i));
        const auto t_point = Clock::now();
        compute_point(run.grid[i], scenario, cache, options, run.points[i]);
        obs::observe("exp.point.latency_seconds", elapsed(t_point));
        point_span.arg("cache_hit", run.points[i].cache_hit ? 1.0 : 0.0);
      },
      workers);
  for (std::size_t i = 0; i < run.grid.size(); ++i) {
    if (representative[i] != i) run.points[i] = run.points[representative[i]];
  }
  run.stats.solve_seconds = elapsed(solve_start);
  obs::time_add("exp.stage.solve", run.stats.solve_seconds);

  // Simulator validation of the requested points (skipping points whose
  // model solve already failed — the simulator would reject them too).
  const auto validate_start = Clock::now();
  if (scenario.validation.has_value()) {
    const ValidationSpec& spec = *scenario.validation;
    std::vector<std::size_t> targets = spec.points;
    if (targets.empty()) {
      targets.resize(run.grid.size());
      for (std::size_t i = 0; i < targets.size(); ++i) targets[i] = i;
    }
    for (const std::size_t i : targets) {
      LATOL_REQUIRE(i < run.grid.size(),
                    "validation point " << i << " outside the grid (size "
                                        << run.grid.size() << ")");
    }
    util::parallel_for(
        targets.size(),
        [&](std::size_t j) {
          const std::size_t i = targets[j];
          PointResult& point = run.points[i];
          if (point.model.error) return;
          // Simulations are not iterative solvers, so the run-wide token
          // is honoured between points: once it fires, remaining targets
          // are marked instead of simulated.
          if (options.cancel != nullptr && options.cancel->expired()) {
            point.model.error = "validation: deadline expired before "
                                "simulation started";
            point.model.error_code = qn::SolverErrorCode::kDeadlineExceeded;
            return;
          }
          obs::Span sim_span("exp.sim_point", "exp", run_span_id);
          sim_span.arg("index", static_cast<double>(i));
          try {
            point.sim = simulate_point(run.grid[i], spec, i);
          } catch (const std::exception& e) {
            point.model.error = std::string("validation: ") + e.what();
          }
        },
        workers);
    run.stats.validate_seconds = elapsed(validate_start);
    obs::time_add("exp.stage.validate", run.stats.validate_seconds);
  }

  // Accounting.
  RunStats& st = run.stats;
  st.grid_points = run.grid.size();
  st.unique_points = unique_points.size();
  st.row_length = scenario.axes.empty() ? 1 : scenario.axes.back().size();
  st.rows_total = st.grid_points / st.row_length;
  st.rows_owned = st.rows_total;
  st.solves = cache.misses() - misses_before;
  st.cache_hits = cache.hits() - hits_before;
  st.cache_preloaded = preloaded;
  st.cache_evictions = cache.evictions() - evictions_before;
  st.workers = workers != 0
                   ? workers
                   : std::max(1u, std::thread::hardware_concurrency());
  std::map<std::string, std::size_t> counts;
  for (const PointResult& p : run.points) {
    if (p.model.error) {
      ++st.failed_points;
      if (p.model.error_code == qn::SolverErrorCode::kDeadlineExceeded) {
        ++st.deadline_points;
      }
      ++counts["error"];
      continue;
    }
    if (!p.model.healthy() || p.ideal_degraded) ++st.degraded_points;
    ++counts[qn::solver_kind_name(p.model.perf.solver)];
    st.total_iterations +=
        static_cast<std::size_t>(p.model.perf.solver_iterations);
    if (p.sim.has_value()) ++st.simulated_points;
  }
  st.solver_counts.assign(counts.begin(), counts.end());
  st.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  run_span.arg("grid_points", static_cast<double>(st.grid_points));
  run_span.arg("unique_points", static_cast<double>(st.unique_points));
  return run;
}

// --- output --------------------------------------------------------------

namespace {

/// One output cell, format-agnostic; CSV and JSON render it differently
/// but from the same value.
struct Cell {
  enum class Kind { kNumber, kFlag, kText, kMissing };
  Kind kind = Kind::kMissing;
  double number = 0;
  bool flag = false;
  std::string text;

  static Cell num(double v) { return {Kind::kNumber, v, false, {}}; }
  static Cell boolean(bool b) { return {Kind::kFlag, 0, b, {}}; }
  static Cell str(std::string s) {
    return {Kind::kText, 0, false, std::move(s)};
  }
  static Cell missing() { return {}; }
};

Cell cell_value(const std::string& column, const core::MmsConfig& cfg,
                const PointResult& p) {
  if (is_parameter(column)) return Cell::num(read_parameter(cfg, column));
  const core::MmsPerformance& perf = p.model.perf;
  if (column == "U_p") return Cell::num(perf.processor_utilization);
  if (column == "lambda") return Cell::num(perf.access_rate);
  if (column == "lambda_net") return Cell::num(perf.message_rate);
  if (column == "S_obs") return Cell::num(perf.network_latency);
  if (column == "L_obs") return Cell::num(perf.memory_latency);
  if (column == "mem_util") return Cell::num(perf.memory_utilization);
  if (column == "switch_util") return Cell::num(perf.switch_utilization);
  if (column == "d_avg") return Cell::num(perf.average_distance);
  if (column == "open_latency") return Cell::num(perf.open_latency);
  if (column == "open_util") return Cell::num(perf.open_utilization);
  if (column == "residual") return Cell::num(perf.residual);
  if (column == "iterations") {
    return Cell::num(static_cast<double>(perf.solver_iterations));
  }
  if (column == "tol_network") {
    return Cell::num(p.model.tol_network.value_or(0.0));
  }
  if (column == "tol_memory") {
    return Cell::num(p.model.tol_memory.value_or(0.0));
  }
  if (column == "zone_network") {
    return p.model.tol_network
               ? Cell::str(core::zone_name(
                     core::classify_tolerance(*p.model.tol_network)))
               : Cell::missing();
  }
  if (column == "zone_memory") {
    return p.model.tol_memory
               ? Cell::str(core::zone_name(
                     core::classify_tolerance(*p.model.tol_memory)))
               : Cell::missing();
  }
  if (column == "solver") {
    return Cell::str(p.model.error ? "error"
                                   : qn::solver_kind_name(perf.solver));
  }
  if (column == "converged") {
    return Cell::boolean(
        qn::solve_converged(p.model.error.has_value(), perf.converged));
  }
  if (column == "error") {
    return p.model.error ? Cell::str(*p.model.error) : Cell::missing();
  }
  if (column == "sim_U_p") {
    return p.sim ? Cell::num(p.sim->processor_utilization)
                 : Cell::missing();
  }
  if (column == "sim_lambda_net") {
    return p.sim ? Cell::num(p.sim->message_rate) : Cell::missing();
  }
  if (column == "sim_S_obs") {
    return p.sim ? Cell::num(p.sim->network_latency) : Cell::missing();
  }
  if (column == "sim_L_obs") {
    return p.sim ? Cell::num(p.sim->memory_latency) : Cell::missing();
  }
  if (column == "sim_open_latency") {
    return p.sim ? Cell::num(p.sim->open_latency) : Cell::missing();
  }
  throw InvalidArgument("unknown column `" + column + "`");
}

/// RFC 4180 quoting; bench-compatible cells (plain numbers, solver names)
/// pass through unchanged.
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::string csv_render(const Cell& cell) {
  switch (cell.kind) {
    case Cell::Kind::kNumber:
      return util::csv_number(cell.number);
    case Cell::Kind::kFlag:
      return cell.flag ? "1" : "0";
    case Cell::Kind::kText:
      return csv_escape(cell.text);
    case Cell::Kind::kMissing:
      return "";
  }
  return "";
}

io::Json json_render(const Cell& cell) {
  switch (cell.kind) {
    case Cell::Kind::kNumber:
      return io::Json(cell.number);
    case Cell::Kind::kFlag:
      return io::Json(cell.flag);
    case Cell::Kind::kText:
      return io::Json(cell.text);
    case Cell::Kind::kMissing:
      return io::Json(nullptr);
  }
  return io::Json(nullptr);
}

std::string hash_hex(std::uint64_t h) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "fnv1a64:%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace

void write_results_csv(const Scenario& scenario, const RunResult& run,
                       std::ostream& out) {
  const std::vector<std::string> columns = scenario.output_columns();
  for (std::size_t c = 0; c < columns.size(); ++c) {
    if (c != 0) out << ',';
    out << csv_escape(columns[c]);
  }
  out << '\n';
  for (std::size_t i = 0; i < run.points.size(); ++i) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      if (c != 0) out << ',';
      out << csv_render(cell_value(columns[c], run.grid[i], run.points[i]));
    }
    out << '\n';
  }
}

RunStats run_scenario_stream(const Scenario& scenario,
                             const RunOptions& options,
                             const StreamSinks& sinks) {
  using Clock = std::chrono::steady_clock;
  const auto elapsed = [](Clock::time_point since) {
    return std::chrono::duration<double>(Clock::now() - since).count();
  };
  const auto start = Clock::now();
  obs::Span run_span("exp.run_stream", "exp");
  const std::uint64_t run_span_id = run_span.id();

  LATOL_REQUIRE(options.shard_count >= 1, "shard_count must be >= 1");
  LATOL_REQUIRE(options.shard_index < options.shard_count,
                "shard_index " << options.shard_index << " outside 0.."
                               << options.shard_count - 1);
  RunStats st;
  st.grid_points = grid_size(scenario);
  st.row_length = scenario.axes.empty() ? 1 : scenario.axes.back().size();
  st.rows_total = st.grid_points / st.row_length;
  st.shard_index = options.shard_index;
  st.shard_count = options.shard_count;
  st.warm = options.warm_start || scenario.warm_start;

  // Validation targets, checked up front like run_scenario.
  std::vector<std::size_t> targets;
  bool validate_all = false;
  if (scenario.validation.has_value()) {
    targets = scenario.validation->points;
    validate_all = targets.empty();
    for (const std::size_t i : targets) {
      LATOL_REQUIRE(i < st.grid_points,
                    "validation point " << i << " outside the grid (size "
                                        << st.grid_points << ")");
    }
    std::sort(targets.begin(), targets.end());
  }

  SolveCache transient;
  // The transient fallback exists for in-run dedup only; on a
  // million-point grid an unbounded one would quietly hold every result
  // and defeat the streaming memory bound, so cap it. Far-apart
  // duplicates may re-solve after eviction — deterministically, so the
  // bytes cannot change. A caller-provided cache is the caller's policy.
  if (options.cache == nullptr) transient.set_capacity(1 << 14);
  SolveCache& cache = options.cache != nullptr ? *options.cache : transient;
  const std::size_t preloaded = cache.size();
  const std::size_t hits_before = cache.hits();
  const std::size_t misses_before = cache.misses();
  const std::size_t evictions_before = cache.evictions();

  const std::vector<std::string> columns = scenario.output_columns();
  if (sinks.csv != nullptr) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      if (c != 0) *sinks.csv << ',';
      *sinks.csv << csv_escape(columns[c]);
    }
    *sinks.csv << '\n';
  }

  // The rows this shard owns, ascending — the round-robin split the
  // merge tool inverts.
  std::vector<std::size_t> owned;
  for (std::size_t r = options.shard_index; r < st.rows_total;
       r += options.shard_count) {
    owned.push_back(r);
  }
  st.rows_owned = owned.size();

  const std::size_t block_points =
      options.block_points != 0 ? options.block_points : 4096;
  const std::size_t rows_per_block =
      std::max<std::size_t>(1, block_points / st.row_length);
  const std::size_t workers =
      options.workers != 0 ? options.workers : scenario.workers;

  // One row's results, buffered until its block emits. The block bound is
  // the memory bound: nothing outlives its block.
  struct RowBuffer {
    std::vector<core::MmsConfig> configs;
    std::vector<PointResult> points;
    WarmStats warm;
  };

  std::map<std::string, std::size_t> counts;
  st.expand_seconds = elapsed(start);
  obs::time_add("exp.stage.expand", st.expand_seconds);
  const auto solve_start = Clock::now();
  std::size_t main_solves = 0;
  for (std::size_t begin = 0; begin < owned.size(); begin += rows_per_block) {
    const std::size_t count_rows =
        std::min(rows_per_block, owned.size() - begin);
    std::vector<RowBuffer> block(count_rows);
    util::parallel_for(
        count_rows,
        [&](std::size_t j) {
          const std::size_t row = owned[begin + j];
          RowBuffer& buf = block[j];
          buf.configs.reserve(st.row_length);
          buf.points.resize(st.row_length);
          obs::Span row_span("exp.row", "exp", run_span_id);
          row_span.arg("row", static_cast<double>(row));
          WarmChain chain;
          for (std::size_t k = 0; k < st.row_length; ++k) {
            const std::size_t i = row * st.row_length + k;
            buf.configs.push_back(config_at(scenario, i));
            PointResult& point = buf.points[k];
            compute_point(buf.configs.back(), scenario, cache, options,
                          point, st.warm ? &chain : nullptr, &buf.warm);
            const bool wanted =
                scenario.validation.has_value() &&
                (validate_all ||
                 std::binary_search(targets.begin(), targets.end(), i));
            if (!wanted || point.model.error) continue;
            if (options.cancel != nullptr && options.cancel->expired()) {
              point.model.error =
                  "validation: deadline expired before simulation started";
              point.model.error_code =
                  qn::SolverErrorCode::kDeadlineExceeded;
              continue;
            }
            try {
              point.sim =
                  simulate_point(buf.configs.back(), *scenario.validation, i);
            } catch (const std::exception& e) {
              point.model.error = std::string("validation: ") + e.what();
            }
          }
        },
        workers);
    // Ordered single-threaded emission: rows leave in grid order, so the
    // concatenated output of a shard is deterministic whatever the worker
    // count, and shards interleave back to the single-process bytes.
    for (std::size_t j = 0; j < count_rows; ++j) {
      const RowBuffer& buf = block[j];
      const std::size_t row = owned[begin + j];
      for (std::size_t k = 0; k < st.row_length; ++k) {
        const PointResult& p = buf.points[k];
        if (sinks.csv != nullptr) {
          for (std::size_t c = 0; c < columns.size(); ++c) {
            if (c != 0) *sinks.csv << ',';
            *sinks.csv << csv_render(
                cell_value(columns[c], buf.configs[k], p));
          }
          *sinks.csv << '\n';
        }
        if (sinks.jsonl != nullptr) {
          io::Json rowj = io::Json::object();
          rowj.set("index",
                   static_cast<double>(row * st.row_length + k));
          for (const std::string& column : columns) {
            rowj.set(column,
                     json_render(cell_value(column, buf.configs[k], p)));
          }
          *sinks.jsonl << rowj.dump() << '\n';
        }
        if (p.model.error) {
          ++st.failed_points;
          if (p.model.error_code ==
              qn::SolverErrorCode::kDeadlineExceeded) {
            ++st.deadline_points;
          }
          ++counts["error"];
          continue;
        }
        if (!p.model.healthy() || p.ideal_degraded) ++st.degraded_points;
        ++counts[qn::solver_kind_name(p.model.perf.solver)];
        st.total_iterations +=
            static_cast<std::size_t>(p.model.perf.solver_iterations);
        if (p.sim.has_value()) ++st.simulated_points;
      }
      st.warm_points += buf.warm.hinted;
      main_solves += buf.warm.solves;
    }
    obs::count("exp.stream.blocks");
  }
  if (sinks.csv != nullptr) sinks.csv->flush();
  if (sinks.jsonl != nullptr) sinks.jsonl->flush();
  st.solve_seconds = elapsed(solve_start);
  obs::time_add("exp.stage.solve", st.solve_seconds);

  st.unique_points = st.rows_owned * st.row_length;
  st.solves = (cache.misses() - misses_before) + main_solves;
  st.cache_hits = cache.hits() - hits_before;
  st.cache_preloaded = preloaded;
  st.cache_evictions = cache.evictions() - evictions_before;
  st.workers = workers != 0
                   ? workers
                   : std::max(1u, std::thread::hardware_concurrency());
  st.solver_counts.assign(counts.begin(), counts.end());
  if (st.warm) {
    obs::count("exp.warm.hinted_points", st.warm_points);
    obs::count("exp.warm.iterations", st.total_iterations);
  }
  st.wall_seconds = elapsed(start);
  run_span.arg("grid_points", static_cast<double>(st.grid_points));
  run_span.arg("rows_owned", static_cast<double>(st.rows_owned));
  return st;
}

io::Json results_to_json(const Scenario& scenario, const RunResult& run) {
  const std::vector<std::string> columns = scenario.output_columns();
  io::Json rows = io::Json::array();
  io::Json errors = io::Json::array();
  for (std::size_t i = 0; i < run.points.size(); ++i) {
    io::Json row = io::Json::object();
    for (const std::string& column : columns) {
      row.set(column,
              json_render(cell_value(column, run.grid[i], run.points[i])));
    }
    rows.push_back(std::move(row));
    const core::SweepResult& m = run.points[i].model;
    if (m.error) {
      io::Json err = io::Json::object();
      err.set("point", static_cast<double>(i));
      err.set("message", *m.error);
      err.set("code", m.error_code
                          ? io::Json(qn::solver_error_name(*m.error_code))
                          : io::Json(nullptr));
      errors.push_back(std::move(err));
    }
  }
  io::Json doc = io::Json::object();
  doc.set("scenario", scenario.name);
  doc.set("scenario_hash", hash_hex(scenario.source_hash));
  io::Json cols = io::Json::array();
  for (const std::string& c : columns) cols.push_back(c);
  doc.set("columns", std::move(cols));
  doc.set("rows", std::move(rows));
  doc.set("errors", std::move(errors));
  return doc;
}

io::Json manifest_to_json(const Scenario& scenario, const RunResult& run) {
  return manifest_to_json(scenario, run.stats);
}

io::Json manifest_to_json(const Scenario& scenario, const RunStats& st) {
  io::Json doc = io::Json::object();
  doc.set("scenario", scenario.name);
  doc.set("scenario_hash", hash_hex(scenario.source_hash));
  doc.set("build", build_version());
  doc.set("grid_points", st.grid_points);
  doc.set("unique_points", st.unique_points);
  doc.set("solves", st.solves);
  doc.set("cache_hits", st.cache_hits);
  doc.set("cache_preloaded", st.cache_preloaded);
  doc.set("cache_evictions", st.cache_evictions);
  doc.set("degraded_points", st.degraded_points);
  doc.set("failed_points", st.failed_points);
  doc.set("deadline_points", st.deadline_points);
  doc.set("simulated_points", st.simulated_points);
  doc.set("workers", st.workers);
  doc.set("wall_seconds", st.wall_seconds);
  // Axis metadata: enough for shard-merge validation (point count per
  // axis, hence grid geometry) without re-parsing the scenario file.
  io::Json axes = io::Json::array();
  for (const Axis& axis : scenario.axes) {
    io::Json a = io::Json::object();
    io::Json params = io::Json::array();
    for (const AxisComponent& comp : axis.components) {
      params.push_back(comp.param);
    }
    a.set("params", std::move(params));
    a.set("points", axis.size());
    axes.push_back(std::move(a));
  }
  doc.set("axes", std::move(axes));
  const std::size_t row_length =
      scenario.axes.empty() ? 1 : scenario.axes.back().size();
  io::Json grid = io::Json::object();
  grid.set("total_points", grid_size(scenario));
  grid.set("row_length", row_length);
  grid.set("rows_total", grid_size(scenario) / row_length);
  doc.set("grid", std::move(grid));
  io::Json shard = io::Json::object();
  shard.set("index", st.shard_index);
  shard.set("count", st.shard_count);
  shard.set("rows_owned", st.rows_owned);
  doc.set("shard", std::move(shard));
  io::Json warm = io::Json::object();
  warm.set("enabled", st.warm);
  warm.set("hinted_points", st.warm_points);
  warm.set("total_iterations", st.total_iterations);
  doc.set("warm", std::move(warm));
  io::Json stages = io::Json::object();
  stages.set("expand_seconds", st.expand_seconds);
  stages.set("solve_seconds", st.solve_seconds);
  stages.set("validate_seconds", st.validate_seconds);
  doc.set("stages", std::move(stages));
  io::Json counts = io::Json::object();
  for (const auto& [name, n] : st.solver_counts) counts.set(name, n);
  doc.set("solver_provenance", std::move(counts));
  if (scenario.validation.has_value()) {
    io::Json v = io::Json::object();
    v.set("engine", scenario.validation->engine);
    v.set("time", scenario.validation->sim_time);
    v.set("seed", static_cast<double>(scenario.validation->seed));
    doc.set("validation", std::move(v));
  }
  return doc;
}

io::Json snapshot_to_json(const obs::Snapshot& snapshot) {
  io::Json doc = io::Json::object();
  io::Json counters = io::Json::object();
  for (const auto& c : snapshot.counters)
    counters.set(c.name, static_cast<double>(c.value));
  doc.set("counters", std::move(counters));
  io::Json gauges = io::Json::object();
  for (const auto& g : snapshot.gauges) gauges.set(g.name, g.value);
  doc.set("gauges", std::move(gauges));
  io::Json timers = io::Json::object();
  for (const auto& t : snapshot.timers) {
    io::Json entry = io::Json::object();
    entry.set("seconds", t.seconds);
    entry.set("count", static_cast<double>(t.count));
    timers.set(t.name, std::move(entry));
  }
  doc.set("timers", std::move(timers));
  io::Json histograms = io::Json::object();
  for (const auto& h : snapshot.histograms) {
    io::Json entry = io::Json::object();
    entry.set("count", static_cast<double>(h.count));
    entry.set("sum", h.sum);
    // Parallel arrays: `le[i]` is the inclusive upper bound of
    // `buckets[i]` in seconds; the final bucket (null bound) is overflow.
    io::Json le = io::Json::array();
    io::Json buckets = io::Json::array();
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      const bool overflow = i >= obs::Histogram::kFiniteBuckets;
      le.push_back(overflow ? io::Json(nullptr)
                            : io::Json(obs::Histogram::upper_bound(i)));
      buckets.push_back(static_cast<double>(h.buckets[i]));
    }
    entry.set("le", std::move(le));
    entry.set("buckets", std::move(buckets));
    histograms.set(h.name, std::move(entry));
  }
  doc.set("histograms", std::move(histograms));
  return doc;
}

io::Json metrics_to_json(const Scenario& scenario, const RunResult& run,
                         const obs::Snapshot* registry) {
  const RunStats& st = run.stats;
  io::Json doc = io::Json::object();
  doc.set("format", "latol-metrics-v2");
  doc.set("scenario", scenario.name);
  doc.set("scenario_hash", hash_hex(scenario.source_hash));
  doc.set("build", build_version());

  io::Json stages = io::Json::object();
  stages.set("expand_seconds", st.expand_seconds);
  stages.set("solve_seconds", st.solve_seconds);
  stages.set("validate_seconds", st.validate_seconds);
  stages.set("wall_seconds", st.wall_seconds);
  doc.set("stages", std::move(stages));

  io::Json cache = io::Json::object();
  cache.set("hits", st.cache_hits);
  cache.set("misses", st.solves);
  cache.set("evictions", st.cache_evictions);
  cache.set("preloaded", st.cache_preloaded);
  doc.set("cache", std::move(cache));

  io::Json points = io::Json::array();
  io::Json warnings = io::Json::array();
  for (std::size_t i = 0; i < run.points.size(); ++i) {
    const PointResult& p = run.points[i];
    const core::MmsPerformance& perf = p.model.perf;
    const bool has_error = p.model.error.has_value();
    io::Json pt = io::Json::object();
    pt.set("index", static_cast<double>(i));
    pt.set("solver", has_error ? io::Json("error")
                               : io::Json(qn::solver_kind_name(perf.solver)));
    pt.set("converged", qn::solve_converged(has_error, perf.converged));
    pt.set("degraded", !has_error && (perf.degraded || p.ideal_degraded));
    pt.set("iterations", static_cast<double>(perf.solver_iterations));
    pt.set("residual", perf.residual);
    pt.set("residual_history_length",
           static_cast<double>(perf.residual_history.size()));
    pt.set("littles_law_error", perf.littles_law_error);
    pt.set("flow_balance_error", perf.flow_balance_error);
    pt.set("cache_hit", p.cache_hit);
    points.push_back(std::move(pt));

    const auto warn = [&](const std::string& message) {
      io::Json w = io::Json::object();
      w.set("point", static_cast<double>(i));
      w.set("message", message);
      warnings.push_back(std::move(w));
    };
    if (has_error) {
      warn("solve failed: " + *p.model.error);
    } else {
      if (perf.littles_law_error > qn::InvariantReport::kWarnThreshold) {
        warn("Little's law violated: relative error " +
             io::json_number(perf.littles_law_error));
      }
      if (perf.flow_balance_error > qn::InvariantReport::kWarnThreshold) {
        warn("flow balance violated: relative error " +
             io::json_number(perf.flow_balance_error));
      }
    }
  }
  doc.set("points", std::move(points));
  doc.set("warnings", std::move(warnings));
  if (registry != nullptr) doc.set("registry", snapshot_to_json(*registry));
  return doc;
}

std::string build_version() { return LATOL_GIT_DESCRIBE; }

}  // namespace latol::exp
