// Content-addressed cache of model solves.
//
// A scenario grid routinely solves the same configuration many times: the
// ideal system of a tolerance index (p_remote = 0) is shared by every
// grid point that only varies p_remote, and overlapping axes or repeated
// runs hit identical points outright. The cache keys each solve by a
// canonical serialization of (MmsConfig, AmvaOptions) — collision-free by
// construction, no hash trust required — and memoizes the resulting
// MmsPerformance, including its solver provenance (solver, converged,
// degraded, residual), so a cached answer is indistinguishable from a
// fresh one.
//
// Concurrency: the store is split into N independently locked shards
// (keys routed by FNV-1a hash), so misses on distinct keys from many
// workers never serialize on one mutex. Within a shard the first caller
// of a key computes inline while later callers block on a shared future,
// so every duplicate is coalesced into one solve even mid-flight. Solvers
// are deterministic, which keeps results bitwise identical regardless of
// worker count or arrival order.
//
// Persistence: load()/save() round-trip the cache through a JSON index
// file plus one JSON file per shard, all keyed by a build version string;
// files written by a different build are ignored wholesale (model changes
// must invalidate old numbers). Doubles are serialized in shortest
// round-trip form, so a warmed run reproduces the cold run byte-for-byte.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/mms_model.hpp"
#include "qn/mva_approx.hpp"

namespace latol::exp {

/// Content-addressed store of solved points, keyed by the full
/// MmsConfig + solver options (DESIGN.md §8). In-memory with optional
/// JSON persistence so repeated `latol run` invocations skip unchanged
/// grid points.
class SolveCache {
 public:
  /// A cache with `shards` independently locked segments (0 is treated
  /// as 1). The default single shard preserves the classic behavior
  /// exactly: one mutex, one global FIFO eviction order. More shards cut
  /// lock contention when many workers look up concurrently (`latol run
  /// --jobs N`); keys are routed by FNV-1a hash so segments fill about
  /// evenly, and eviction is then FIFO per shard rather than global.
  explicit SolveCache(std::size_t shards = 1);
  SolveCache(const SolveCache&) = delete;
  SolveCache& operator=(const SolveCache&) = delete;

  /// Memoized core::analyze with the given solve method. Exceptions are
  /// cached too: every duplicate of a failing configuration rethrows the
  /// original error. When `was_hit` is non-null it is set to whether this
  /// call was served from an existing entry (including coalescing onto an
  /// in-flight solve) — the per-point cache provenance the metrics stream
  /// reports.
  [[nodiscard]] core::MmsPerformance analyze(
      const core::MmsConfig& config, const qn::AmvaOptions& options,
      bool* was_hit = nullptr,
      core::SolveMethod method = core::SolveMethod::kAmva);

  /// Canonical, collision-free cache key for (config, options, method).
  /// Includes AmvaOptions::record_trace, so traced and untraced solves of
  /// the same configuration never share an entry; includes the solve
  /// method and open_arrival_rate, so AMVA/Linearizer/FESC answers and
  /// open-vs-closed workloads never alias.
  [[nodiscard]] static std::string config_key(
      const core::MmsConfig& config, const qn::AmvaOptions& options,
      core::SolveMethod method = core::SolveMethod::kAmva);

  /// Merge entries from the index file at `path` (written by save()) and
  /// the per-shard files it lists. Silently does nothing when the index
  /// is missing; ignores files whose format generation or version string
  /// differs from `version`. Returns the number of entries loaded.
  ///
  /// A corrupt or truncated file (malformed JSON, malformed entries) is
  /// quarantined instead of aborting the run: that file is renamed to
  /// `<file> + ".corrupt"`, none of its entries are ingested, and when
  /// `warning` is non-null it receives a one-line description — a cache
  /// is an optimization, so losing it degrades to a cold run, never a
  /// crash. Quarantine is per file: one damaged shard file costs 1/N of
  /// the cache, the other shards still load. Ingestion of each file is
  /// all-or-nothing: entries are staged before any becomes visible, so a
  /// bad entry can never leave a half-loaded file.
  ///
  /// Entries are routed to in-memory shards by key hash, not by which
  /// file they came from, so a cache saved with a different shard count
  /// (or loaded into a cache with one) still lands every key on the
  /// shard that analyze() will probe.
  std::size_t load(const std::string& path, const std::string& version,
                   std::string* warning = nullptr);

  /// Write every successful entry to disk for a future load(): one file
  /// per shard at `path + ".shard<i>"` (keys sorted within each file, so
  /// bytes are deterministic for a given content) and an index at `path`
  /// listing them. Failed (exception) entries are not persisted. Each
  /// write is atomic (temp file + rename, see io::write_json_file), so a
  /// crash mid-save leaves the previous files intact; shard files are
  /// written before the index, and unlisted stale shard files from an
  /// earlier save with more shards are simply never read back.
  void save(const std::string& path, const std::string& version) const;

  /// Lookups served from an already-present entry.
  [[nodiscard]] std::size_t hits() const { return hits_.load(); }
  /// Lookups that had to solve.
  [[nodiscard]] std::size_t misses() const { return misses_.load(); }
  /// Entries dropped by the capacity bound since construction.
  [[nodiscard]] std::size_t evictions() const { return evictions_.load(); }
  /// Entries currently in the cache (summed over shards).
  [[nodiscard]] std::size_t size() const;

  /// Number of independently locked segments (>= 1).
  [[nodiscard]] std::size_t shards() const { return shards_.size(); }

  /// Bound the entry count (0 = unlimited, the default). When an insert
  /// pushes a shard past its share of the bound — ceil(capacity/shards),
  /// exactly `capacity` for the default single shard — the oldest
  /// *completed* entries of that shard are dropped FIFO (in-flight solves
  /// are never evicted — later duplicates must still coalesce onto them).
  void set_capacity(std::size_t capacity);

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string,
                       std::shared_future<core::MmsPerformance>>
        entries;
    std::deque<std::string> insertion_order;
  };

  [[nodiscard]] Shard& shard_for(const std::string& key);
  [[nodiscard]] std::size_t per_shard_capacity() const;
  void evict_over_capacity_locked(Shard& shard);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::size_t> capacity_{0};
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
  std::atomic<std::size_t> evictions_{0};
};

}  // namespace latol::exp
