#include "exp/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "exp/parameter.hpp"
#include "util/error.hpp"

namespace latol::exp {

namespace {

// --- strict-schema helpers ------------------------------------------------

[[noreturn]] void schema_error(const std::string& context,
                               const std::string& message) {
  throw InvalidArgument("scenario: " + context + ": " + message);
}

const io::Json::Object& as_object(const io::Json& v,
                                  const std::string& context) {
  if (!v.is_object()) {
    schema_error(context, std::string("expected an object, got ") +
                              io::json_kind_name(v.kind()));
  }
  return v.as_object();
}

/// Reject members outside `allowed` so typos fail loudly instead of being
/// silently ignored.
void check_keys(const io::Json& obj,
                std::initializer_list<const char*> allowed,
                const std::string& context) {
  for (const auto& [key, value] : as_object(obj, context)) {
    if (std::find_if(allowed.begin(), allowed.end(), [&](const char* a) {
          return key == a;
        }) == allowed.end()) {
      std::ostringstream os;
      os << "unknown key `" << key << "` (allowed:";
      for (const char* a : allowed) os << ' ' << a;
      os << ')';
      schema_error(context, os.str());
    }
  }
}

double get_number(const io::Json& v, const std::string& context) {
  if (!v.is_number()) {
    schema_error(context, std::string("expected a number, got ") +
                              io::json_kind_name(v.kind()));
  }
  return v.as_number();
}

bool get_bool(const io::Json& v, const std::string& context) {
  if (!v.is_bool()) {
    schema_error(context, std::string("expected true/false, got ") +
                              io::json_kind_name(v.kind()));
  }
  return v.as_bool();
}

const std::string& get_string(const io::Json& v, const std::string& context) {
  if (!v.is_string()) {
    schema_error(context, std::string("expected a string, got ") +
                              io::json_kind_name(v.kind()));
  }
  return v.as_string();
}

int get_int(const io::Json& v, const std::string& context) {
  const double d = get_number(v, context);
  if (std::floor(d) != d) schema_error(context, "expected an integer");
  return static_cast<int>(d);
}

// --- enum string forms ----------------------------------------------------

topo::TopologyKind parse_topology(const std::string& value,
                                  const std::string& context) {
  if (value == "torus") return topo::TopologyKind::kTorus2D;
  if (value == "mesh") return topo::TopologyKind::kMesh2D;
  if (value == "ring") return topo::TopologyKind::kRing;
  if (value == "hypercube") return topo::TopologyKind::kHypercube;
  schema_error(context, "unknown topology `" + value +
                            "` (torus|mesh|ring|hypercube)");
}

topo::AccessPattern parse_pattern(const std::string& value,
                                  const std::string& context) {
  if (value == "geometric") return topo::AccessPattern::kGeometric;
  if (value == "uniform") return topo::AccessPattern::kUniform;
  schema_error(context, "unknown pattern `" + value +
                            "` (geometric|uniform)");
}

core::IdealMethod parse_method(const std::string& value,
                               const std::string& context) {
  if (value == "modify_workload") return core::IdealMethod::kModifyWorkload;
  if (value == "zero_delay") return core::IdealMethod::kZeroDelay;
  schema_error(context, "unknown ideal method `" + value +
                            "` (modify_workload|zero_delay)");
}

// --- section parsers ------------------------------------------------------

void parse_base(const io::Json& obj, core::MmsConfig& cfg) {
  const std::string ctx = "base";
  check_keys(obj,
             {"topology", "k", "memory_latency", "switch_delay",
              "memory_ports", "pipelined_switches", "threads", "runlength",
              "context_switch", "p_remote", "pattern", "p_sw",
              "hotspot_node", "hotspot_fraction", "open_arrival_rate",
              "count_source_outbound"},
             ctx);
  for (const auto& [key, value] : obj.as_object()) {
    const std::string kctx = ctx + "." + key;
    if (key == "topology") {
      cfg.topology = parse_topology(get_string(value, kctx), kctx);
    } else if (key == "k") {
      cfg.k = get_int(value, kctx);
    } else if (key == "memory_latency") {
      cfg.memory_latency = get_number(value, kctx);
    } else if (key == "switch_delay") {
      cfg.switch_delay = get_number(value, kctx);
    } else if (key == "memory_ports") {
      cfg.memory_ports = get_int(value, kctx);
    } else if (key == "pipelined_switches") {
      cfg.pipelined_switches = get_bool(value, kctx);
    } else if (key == "threads") {
      cfg.threads_per_processor = get_int(value, kctx);
    } else if (key == "runlength") {
      cfg.runlength = get_number(value, kctx);
    } else if (key == "context_switch") {
      cfg.context_switch = get_number(value, kctx);
    } else if (key == "p_remote") {
      cfg.p_remote = get_number(value, kctx);
    } else if (key == "pattern") {
      cfg.traffic.pattern = parse_pattern(get_string(value, kctx), kctx);
    } else if (key == "p_sw") {
      cfg.traffic.p_sw = get_number(value, kctx);
    } else if (key == "hotspot_node") {
      cfg.traffic.hotspot_node = get_int(value, kctx);
    } else if (key == "hotspot_fraction") {
      cfg.traffic.hotspot_fraction = get_number(value, kctx);
    } else if (key == "open_arrival_rate") {
      cfg.open_arrival_rate = get_number(value, kctx);
    } else if (key == "count_source_outbound") {
      cfg.count_source_outbound = get_bool(value, kctx);
    }
  }
}

std::vector<double> parse_axis_values(const io::Json& comp,
                                      const std::string& ctx) {
  const io::Json* values = comp.find("values");
  const io::Json* range = comp.find("range");
  if ((values != nullptr) == (range != nullptr)) {
    schema_error(ctx, "exactly one of `values` or `range` is required");
  }
  std::vector<double> out;
  if (values != nullptr) {
    if (!values->is_array() || values->as_array().empty()) {
      schema_error(ctx + ".values", "expected a non-empty array of numbers");
    }
    for (const io::Json& v : values->as_array()) {
      out.push_back(get_number(v, ctx + ".values"));
    }
    return out;
  }
  const std::string rctx = ctx + ".range";
  check_keys(*range, {"from", "to", "steps"}, rctx);
  const io::Json* from = range->find("from");
  const io::Json* to = range->find("to");
  const io::Json* steps = range->find("steps");
  if (from == nullptr || to == nullptr || steps == nullptr) {
    schema_error(rctx, "requires `from`, `to`, and `steps`");
  }
  const double a = get_number(*from, rctx + ".from");
  const double b = get_number(*to, rctx + ".to");
  const int n = get_int(*steps, rctx + ".steps");
  if (n < 1) schema_error(rctx + ".steps", "must be >= 1");
  for (int s = 0; s < n; ++s) {
    // Same interpolation as the CLI sweep command, so a range axis and
    // `latol sweep` evaluate identical points.
    out.push_back(n == 1 ? a : a + (b - a) * s / (n - 1));
  }
  return out;
}

AxisComponent parse_component(const io::Json& comp, const std::string& ctx) {
  check_keys(comp, {"param", "values", "range"}, ctx);
  const io::Json* param = comp.find("param");
  if (param == nullptr) schema_error(ctx, "missing `param`");
  AxisComponent out;
  out.param = canonical_parameter(get_string(*param, ctx + ".param"));
  out.values = parse_axis_values(comp, ctx);
  return out;
}

Axis parse_axis(const io::Json& axis, std::size_t index) {
  std::ostringstream ctxs;
  ctxs << "axes[" << index << "]";
  const std::string ctx = ctxs.str();
  Axis out;
  if (const io::Json* zip = axis.find("zip")) {
    check_keys(axis, {"zip"}, ctx);
    if (!zip->is_array() || zip->as_array().size() < 2) {
      schema_error(ctx + ".zip",
                   "expected an array of at least two components");
    }
    for (std::size_t i = 0; i < zip->as_array().size(); ++i) {
      std::ostringstream c;
      c << ctx << ".zip[" << i << "]";
      out.components.push_back(
          parse_component(zip->as_array()[i], c.str()));
    }
    for (const AxisComponent& comp : out.components) {
      if (comp.values.size() != out.components.front().values.size()) {
        schema_error(ctx + ".zip",
                     "zipped components must have the same length");
      }
    }
  } else {
    out.components.push_back(parse_component(axis, ctx));
  }
  // One axis must not vary the same parameter twice.
  for (std::size_t i = 0; i < out.components.size(); ++i) {
    for (std::size_t j = i + 1; j < out.components.size(); ++j) {
      if (out.components[i].param == out.components[j].param) {
        schema_error(ctx, "parameter `" + out.components[i].param +
                              "` appears twice in one axis");
      }
    }
  }
  return out;
}

void parse_outputs(const io::Json& obj, Scenario& s) {
  const std::string ctx = "outputs";
  check_keys(obj,
             {"network_tolerance", "memory_tolerance", "network_method",
              "columns"},
             ctx);
  if (const io::Json* v = obj.find("network_tolerance")) {
    s.network_tolerance = get_bool(*v, ctx + ".network_tolerance");
  }
  if (const io::Json* v = obj.find("memory_tolerance")) {
    s.memory_tolerance = get_bool(*v, ctx + ".memory_tolerance");
  }
  if (const io::Json* v = obj.find("network_method")) {
    s.network_method =
        parse_method(get_string(*v, ctx + ".network_method"),
                     ctx + ".network_method");
  }
  if (const io::Json* v = obj.find("columns")) {
    if (!v->is_array() || v->as_array().empty()) {
      schema_error(ctx + ".columns", "expected a non-empty array of names");
    }
    for (const io::Json& c : v->as_array()) {
      const std::string& name = get_string(c, ctx + ".columns");
      if (!is_known_column(name)) {
        schema_error(ctx + ".columns", "unknown column `" + name + "`");
      }
      s.columns.push_back(name);
    }
  }
}

core::SolveMethod parse_solve_method(const std::string& value,
                                     const std::string& context) {
  if (value == "amva") return core::SolveMethod::kAmva;
  if (value == "linearizer") return core::SolveMethod::kLinearizer;
  if (value == "fesc") return core::SolveMethod::kHierarchical;
  schema_error(context,
               "unknown method `" + value + "` (amva|linearizer|fesc)");
}

void parse_solver(const io::Json& obj, Scenario& s) {
  const std::string ctx = "solver";
  check_keys(obj,
             {"method", "max_iterations", "tolerance", "damping", "workers",
              "warm_start"},
             ctx);
  if (const io::Json* v = obj.find("method")) {
    s.method = parse_solve_method(get_string(*v, ctx + ".method"),
                                  ctx + ".method");
  }
  if (const io::Json* v = obj.find("max_iterations")) {
    s.amva.max_iterations = get_int(*v, ctx + ".max_iterations");
    if (s.amva.max_iterations < 1) {
      schema_error(ctx + ".max_iterations", "must be >= 1");
    }
  }
  if (const io::Json* v = obj.find("tolerance")) {
    s.amva.tolerance = get_number(*v, ctx + ".tolerance");
    if (!(s.amva.tolerance > 0.0)) {
      schema_error(ctx + ".tolerance", "must be > 0");
    }
  }
  if (const io::Json* v = obj.find("damping")) {
    s.amva.damping = get_number(*v, ctx + ".damping");
    if (!(s.amva.damping > 0.0 && s.amva.damping <= 1.0)) {
      schema_error(ctx + ".damping", "must be in (0, 1]");
    }
  }
  if (const io::Json* v = obj.find("workers")) {
    const int w = get_int(*v, ctx + ".workers");
    if (w < 0) schema_error(ctx + ".workers", "must be >= 0");
    s.workers = static_cast<std::size_t>(w);
  }
  if (const io::Json* v = obj.find("warm_start")) {
    s.warm_start = get_bool(*v, ctx + ".warm_start");
  }
}

void parse_validation(const io::Json& obj, Scenario& s) {
  const std::string ctx = "validation";
  check_keys(obj, {"engine", "time", "seed", "points"}, ctx);
  ValidationSpec spec;
  if (const io::Json* v = obj.find("engine")) {
    spec.engine = get_string(*v, ctx + ".engine");
    if (spec.engine != "des" && spec.engine != "petri") {
      schema_error(ctx + ".engine",
                   "unknown engine `" + spec.engine + "` (des|petri)");
    }
  }
  if (const io::Json* v = obj.find("time")) {
    spec.sim_time = get_number(*v, ctx + ".time");
    if (!(spec.sim_time > 0.0)) schema_error(ctx + ".time", "must be > 0");
  }
  if (const io::Json* v = obj.find("seed")) {
    const double d = get_number(*v, ctx + ".seed");
    if (d < 0 || std::floor(d) != d) {
      schema_error(ctx + ".seed", "expected a non-negative integer");
    }
    spec.seed = static_cast<std::uint64_t>(d);
  }
  if (const io::Json* v = obj.find("points")) {
    if (!v->is_array()) {
      schema_error(ctx + ".points", "expected an array of grid indices");
    }
    for (const io::Json& p : v->as_array()) {
      const int idx = get_int(p, ctx + ".points");
      if (idx < 0) schema_error(ctx + ".points", "indices must be >= 0");
      spec.points.push_back(static_cast<std::size_t>(idx));
    }
  }
  s.validation = std::move(spec);
}

/// Metric (non-parameter) column names.
constexpr const char* kMetricColumns[] = {
    "U_p",          "lambda",      "lambda_net",  "S_obs",
    "L_obs",        "mem_util",    "switch_util", "d_avg",
    "residual",     "iterations",  "tol_network", "tol_memory",
    "zone_network", "zone_memory", "solver",      "converged",
    "error",        "open_latency", "open_util",
    "sim_U_p",      "sim_lambda_net",
    "sim_S_obs",    "sim_L_obs",   "sim_open_latency",
};

}  // namespace

bool is_known_column(const std::string& column) {
  if (is_parameter(column)) return true;
  for (const char* m : kMetricColumns) {
    if (column == m) return true;
  }
  return false;
}

std::vector<std::string> Scenario::output_columns() const {
  if (!columns.empty()) return columns;
  std::vector<std::string> out;
  for (const Axis& axis : axes) {
    for (const AxisComponent& comp : axis.components) {
      if (std::find(out.begin(), out.end(), comp.param) == out.end()) {
        out.push_back(comp.param);
      }
    }
  }
  out.insert(out.end(), {"U_p", "S_obs", "L_obs", "lambda_net"});
  if (network_tolerance) out.emplace_back("tol_network");
  if (memory_tolerance) out.emplace_back("tol_memory");
  out.insert(out.end(), {"solver", "converged"});
  return out;
}

std::uint64_t content_hash(const io::Json& doc) {
  // FNV-1a over the compact dump: stable across whitespace/formatting.
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : doc.dump()) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

Scenario scenario_from_json(const io::Json& doc) {
  Scenario s;
  check_keys(doc,
             {"name", "description", "base", "axes", "outputs", "solver",
              "validation"},
             "top level");
  const io::Json* name = doc.find("name");
  if (name == nullptr) schema_error("top level", "missing `name`");
  s.name = get_string(*name, "name");
  if (s.name.empty()) schema_error("name", "must not be empty");
  // The scenario name becomes output file names; keep it path-safe.
  for (const char c : s.name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' ||
                    c == '.';
    if (!ok) {
      schema_error("name", "must contain only [A-Za-z0-9._-], got `" +
                               s.name + "`");
    }
  }
  if (const io::Json* v = doc.find("description")) {
    s.description = get_string(*v, "description");
  }
  if (const io::Json* v = doc.find("base")) parse_base(*v, s.base);
  if (const io::Json* v = doc.find("axes")) {
    if (!v->is_array()) {
      schema_error("axes", "expected an array of axis objects");
    }
    for (std::size_t i = 0; i < v->as_array().size(); ++i) {
      s.axes.push_back(parse_axis(v->as_array()[i], i));
    }
  }
  // A parameter must not appear on two different axes.
  for (std::size_t i = 0; i < s.axes.size(); ++i) {
    for (const AxisComponent& ci : s.axes[i].components) {
      for (std::size_t j = i + 1; j < s.axes.size(); ++j) {
        for (const AxisComponent& cj : s.axes[j].components) {
          if (ci.param == cj.param) {
            schema_error("axes", "parameter `" + ci.param +
                                     "` appears on two axes");
          }
        }
      }
    }
  }
  if (const io::Json* v = doc.find("outputs")) parse_outputs(*v, s);
  if (const io::Json* v = doc.find("solver")) parse_solver(*v, s);
  if (const io::Json* v = doc.find("validation")) parse_validation(*v, s);
  // Columns that need a tolerance index require the matching output.
  for (const std::string& c : s.columns) {
    if ((c == "tol_network" || c == "zone_network") && !s.network_tolerance) {
      schema_error("outputs.columns", "column `" + c +
                                          "` requires "
                                          "outputs.network_tolerance");
    }
    if ((c == "tol_memory" || c == "zone_memory") && !s.memory_tolerance) {
      schema_error("outputs.columns", "column `" + c +
                                          "` requires "
                                          "outputs.memory_tolerance");
    }
    if (c.rfind("sim_", 0) == 0 && !s.validation.has_value()) {
      schema_error("outputs.columns",
                   "column `" + c + "` requires a validation section");
    }
  }
  s.source_hash = content_hash(doc);
  return s;
}

Scenario load_scenario(const std::string& path) {
  return scenario_from_json(io::parse_json_file(path));
}

std::vector<core::MmsConfig> expand_grid(const Scenario& s) {
  const std::size_t total = grid_size(s);
  std::vector<core::MmsConfig> grid;
  grid.reserve(total);
  // Mixed-radix counter, first axis outermost (slowest).
  std::vector<std::size_t> idx(s.axes.size(), 0);
  for (std::size_t point = 0; point < total; ++point) {
    core::MmsConfig cfg = s.base;
    for (std::size_t a = 0; a < s.axes.size(); ++a) {
      for (const AxisComponent& comp : s.axes[a].components) {
        apply_parameter(cfg, comp.param, comp.values[idx[a]]);
      }
    }
    grid.push_back(cfg);
    for (std::size_t a = s.axes.size(); a-- > 0;) {
      if (++idx[a] < s.axes[a].size()) break;
      idx[a] = 0;
    }
  }
  return grid;
}

std::size_t grid_size(const Scenario& s) {
  std::size_t total = 1;
  for (const Axis& axis : s.axes) {
    LATOL_REQUIRE(axis.size() >= 1, "empty axis");
    total *= axis.size();
  }
  return total;
}

core::MmsConfig config_at(const Scenario& s, std::size_t index) {
  LATOL_REQUIRE(index < grid_size(s), "grid index out of range");
  // Decompose the flat index with the same mixed radix expand_grid
  // iterates: first axis outermost, last axis fastest.
  core::MmsConfig cfg = s.base;
  for (std::size_t a = s.axes.size(); a-- > 0;) {
    const std::size_t n = s.axes[a].size();
    const std::size_t step = index % n;
    index /= n;
    for (const AxisComponent& comp : s.axes[a].components) {
      apply_parameter(cfg, comp.param, comp.values[step]);
    }
  }
  return cfg;
}

}  // namespace latol::exp
