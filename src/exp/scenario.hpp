// Declarative experiment scenarios (see DESIGN.md §8 for the JSON
// schema).
//
// A scenario file describes one batch experiment: an MMS base
// configuration, parameter axes whose cross-product forms the evaluation
// grid (an axis is a value list, a from/to/steps range, or a zipped group
// of parameters varied together — how Table 3 holds n_t x R constant),
// the outputs wanted per grid point (tolerance indices, metric columns,
// optional simulator validation), and solver options. Every hand-coded
// fig*/table* bench is expressible as such a file; `scenarios/` ships the
// ones that reproduce the paper byte-for-byte.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/mms_config.hpp"
#include "core/mms_model.hpp"
#include "core/tolerance.hpp"
#include "io/json.hpp"
#include "qn/mva_approx.hpp"

namespace latol::exp {

/// One parameter varied along an axis.
struct AxisComponent {
  std::string param;           ///< canonical parameter name
  std::vector<double> values;  ///< explicit list, or an expanded range
};

/// One grid axis. A single component is the common case; multiple
/// components of equal length are "zipped" — varied in lockstep, like the
/// (n_t, R) splits of a fixed work budget.
struct Axis {
  std::vector<AxisComponent> components;

  /// Number of grid steps along this axis.
  [[nodiscard]] std::size_t size() const {
    return components.empty() ? 0 : components.front().values.size();
  }
};

/// Optional per-point simulator validation.
struct ValidationSpec {
  std::string engine = "des";  ///< "des" | "petri"
  double sim_time = 20000.0;
  std::uint64_t seed = 1;  ///< point i simulates with seed `seed + i`
  /// Grid-point indices to simulate; empty = every point.
  std::vector<std::size_t> points;
};

/// A parsed scenario.
struct Scenario {
  std::string name;
  std::string description;
  core::MmsConfig base = core::MmsConfig::paper_defaults();
  std::vector<Axis> axes;  ///< first axis outermost in grid order

  // --- requested outputs ---
  bool network_tolerance = false;
  bool memory_tolerance = false;
  core::IdealMethod network_method = core::IdealMethod::kModifyWorkload;
  /// Result columns (CSV order / JSON row keys). Empty selects the
  /// default set: axis parameters, then the headline metrics.
  std::vector<std::string> columns;
  std::optional<ValidationSpec> validation;

  // --- solver options ---
  qn::AmvaOptions amva{};
  /// Analytical machinery for every grid point: "amva" (default),
  /// "linearizer", or "fesc" (hierarchical decomposition — symmetric
  /// configs only; see core/hierarchical.hpp).
  core::SolveMethod method = core::SolveMethod::kAmva;
  std::size_t workers = 0;  ///< 0 = hardware concurrency
  /// Chain lattice-neighbor warm-start hints along the fastest-varying
  /// axis (qn/hints.hpp, DESIGN.md §15). Only the streaming runner honors
  /// it; plain solves are unaffected.
  bool warm_start = false;

  /// FNV-1a hash of the canonical (compact) source document; identifies
  /// the scenario content in manifests and caches.
  std::uint64_t source_hash = 0;

  /// The columns actually emitted (explicit list, or the default set).
  [[nodiscard]] std::vector<std::string> output_columns() const;
};

/// Stable FNV-1a content hash of a JSON document (over its compact dump,
/// so formatting differences do not change the hash).
[[nodiscard]] std::uint64_t content_hash(const io::Json& doc);

/// Build a Scenario from a parsed JSON document. Strict: unknown keys,
/// wrong types, unknown parameter/column names, and ragged zip axes are
/// all InvalidArgument with a message naming the offending key.
[[nodiscard]] Scenario scenario_from_json(const io::Json& doc);

/// Parse `path` and build the scenario; JSON syntax errors carry
/// line/column diagnostics.
[[nodiscard]] Scenario load_scenario(const std::string& path);

/// Expand the axes' cross-product into concrete configurations, first
/// axis outermost. A scenario without axes yields the base configuration
/// alone. Grid order is deterministic and documented: later scenarios and
/// cached runs may rely on it.
[[nodiscard]] std::vector<core::MmsConfig> expand_grid(const Scenario& s);

/// Number of grid points expand_grid(s) would produce, without
/// materializing them — the streaming runner sizes shards and manifests
/// from this.
[[nodiscard]] std::size_t grid_size(const Scenario& s);

/// The configuration at grid position `index` (same order as
/// expand_grid: first axis outermost, last axis fastest). O(#axes) per
/// call, so a million-point sweep never holds the whole grid in memory.
/// Requires index < grid_size(s).
[[nodiscard]] core::MmsConfig config_at(const Scenario& s,
                                        std::size_t index);

/// True when `column` is a valid output column name (axis parameter,
/// alias, or metric). See DESIGN.md §8 for the full list.
[[nodiscard]] bool is_known_column(const std::string& column);

}  // namespace latol::exp
