#include "exp/solve_cache.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string_view>
#include <system_error>
#include <utility>
#include <vector>

#include "io/json.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "qn/robust.hpp"
#include "topo/topology.hpp"
#include "util/error.hpp"

namespace latol::exp {

namespace {

// Bumped to -2 when MmsPerformance grew invariant errors and the residual
// history; to -3 when open/mixed workloads added open_latency/open_util to
// the payload and lam0/method to the key; to -4 when persistence split
// into an index plus one file per cache shard. The entry schema is
// unchanged since -3, so a single-shard cache keeps writing the -3
// inline-entries layout (one self-contained file — what `latol serve`
// flushes) and load() accepts either layout at `path`.
constexpr const char* kCacheFormat = "latol-solve-cache-4";
constexpr const char* kInlineCacheFormat = "latol-solve-cache-3";

// Routing hash for shard selection. Only load balance depends on it —
// correctness never does (keys are compared as full strings within a
// shard), so FNV-1a's speed/quality trade-off is exactly right here.
std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 14695981039346656037ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

qn::SolverKind solver_kind_from_name(const std::string& name) {
  for (const qn::SolverKind kind :
       {qn::SolverKind::kAmva, qn::SolverKind::kLinearizer,
        qn::SolverKind::kExactMva, qn::SolverKind::kBounds,
        qn::SolverKind::kFesc}) {
    if (name == qn::solver_kind_name(kind)) return kind;
  }
  throw InvalidArgument("unknown solver kind `" + name + "` in cache");
}

io::Json perf_to_json(const core::MmsPerformance& p) {
  io::Json o = io::Json::object();
  o.set("U_p", p.processor_utilization);
  o.set("lambda", p.access_rate);
  o.set("lambda_net", p.message_rate);
  o.set("S_obs", p.network_latency);
  o.set("L_obs", p.memory_latency);
  o.set("mem_util", p.memory_utilization);
  o.set("switch_util", p.switch_utilization);
  o.set("d_avg", p.average_distance);
  o.set("iterations", static_cast<double>(p.solver_iterations));
  o.set("converged", p.converged);
  o.set("solver", qn::solver_kind_name(p.solver));
  o.set("degraded", p.degraded);
  o.set("residual", p.residual);
  o.set("open_latency", p.open_latency);
  o.set("open_util", p.open_utilization);
  o.set("littles_law_error", p.littles_law_error);
  o.set("flow_balance_error", p.flow_balance_error);
  io::Json history = io::Json::array();
  for (const double d : p.residual_history) history.push_back(d);
  o.set("residual_history", std::move(history));
  return o;
}

core::MmsPerformance perf_from_json(const io::Json& o) {
  const auto num = [&](const char* key) {
    const io::Json* v = o.find(key);
    if (v == nullptr) {
      throw InvalidArgument(std::string("cache entry missing `") + key +
                            "`");
    }
    return v->as_number();
  };
  const auto flag = [&](const char* key) {
    const io::Json* v = o.find(key);
    if (v == nullptr) {
      throw InvalidArgument(std::string("cache entry missing `") + key +
                            "`");
    }
    return v->as_bool();
  };
  core::MmsPerformance p;
  p.processor_utilization = num("U_p");
  p.access_rate = num("lambda");
  p.message_rate = num("lambda_net");
  p.network_latency = num("S_obs");
  p.memory_latency = num("L_obs");
  p.memory_utilization = num("mem_util");
  p.switch_utilization = num("switch_util");
  p.average_distance = num("d_avg");
  p.solver_iterations = static_cast<long>(num("iterations"));
  p.converged = flag("converged");
  const io::Json* solver = o.find("solver");
  if (solver == nullptr) throw InvalidArgument("cache entry missing `solver`");
  p.solver = solver_kind_from_name(solver->as_string());
  p.degraded = flag("degraded");
  p.residual = num("residual");
  p.open_latency = num("open_latency");
  p.open_utilization = num("open_util");
  p.littles_law_error = num("littles_law_error");
  p.flow_balance_error = num("flow_balance_error");
  const io::Json* history = o.find("residual_history");
  if (history == nullptr || !history->is_array()) {
    throw InvalidArgument("cache entry missing `residual_history`");
  }
  for (const io::Json& d : history->as_array())
    p.residual_history.push_back(d.as_number());
  return p;
}

std::shared_future<core::MmsPerformance> ready_future(
    core::MmsPerformance perf) {
  std::promise<core::MmsPerformance> promise;
  promise.set_value(std::move(perf));
  return promise.get_future().share();
}

// True when `doc` carries the current format generation and the caller's
// build version; anything else is silently skipped (a stale cache is
// expected, not corrupt).
bool format_and_version_match(const io::Json& doc,
                              const std::string& version) {
  const io::Json* format = doc.find("format");
  const io::Json* file_version = doc.find("version");
  return format != nullptr && format->is_string() &&
         format->as_string() == kCacheFormat && file_version != nullptr &&
         file_version->is_string() && file_version->as_string() == version;
}

}  // namespace

SolveCache::SolveCache(std::size_t shards) {
  const std::size_t count = shards == 0 ? 1 : shards;
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

SolveCache::Shard& SolveCache::shard_for(const std::string& key) {
  return *shards_[fnv1a64(key) % shards_.size()];
}

std::size_t SolveCache::per_shard_capacity() const {
  const std::size_t capacity = capacity_.load(std::memory_order_relaxed);
  if (capacity == 0) return 0;
  return (capacity + shards_.size() - 1) / shards_.size();
}

std::string SolveCache::config_key(const core::MmsConfig& config,
                                   const qn::AmvaOptions& options,
                                   core::SolveMethod method) {
  const auto num = io::json_number;  // shortest round trip = injective
  std::string key;
  key.reserve(256);
  key += "topo=";
  key += topo::topology_kind_name(config.topology);
  key += ";k=" + std::to_string(config.k);
  key += ";L=" + num(config.memory_latency);
  key += ";S=" + num(config.switch_delay);
  key += ";ports=" + std::to_string(config.memory_ports);
  key += ";pipe=" + std::to_string(config.pipelined_switches ? 1 : 0);
  key += ";nt=" + std::to_string(config.threads_per_processor);
  key += ";R=" + num(config.runlength);
  key += ";C=" + num(config.context_switch);
  key += ";p=" + num(config.p_remote);
  key += ";pat=" +
         std::to_string(static_cast<int>(config.traffic.pattern));
  key += ";psw=" + num(config.traffic.p_sw);
  key += ";mode=" + std::to_string(static_cast<int>(config.traffic.mode));
  key += ";hot=" + std::to_string(config.traffic.hotspot_node);
  key += ";hotf=" + num(config.traffic.hotspot_fraction);
  key += ";lam0=" + num(config.open_arrival_rate);
  key += ";srcout=" + std::to_string(config.count_source_outbound ? 1 : 0);
  key += "|method=";
  key += core::solve_method_name(method);
  key += ";tol=" + num(options.tolerance);
  key += ";iters=" + std::to_string(options.max_iterations);
  key += ";damp=" + num(options.damping);
  key += ";divf=" + num(options.divergence_factor);
  key += ";divw=" + std::to_string(options.divergence_window);
  key += ";trace=" + std::to_string(options.record_trace ? 1 : 0);
  return key;
}

core::MmsPerformance SolveCache::analyze(const core::MmsConfig& config,
                                         const qn::AmvaOptions& options,
                                         bool* was_hit,
                                         core::SolveMethod method) {
  const std::string key = config_key(config, options, method);
  Shard& shard = shard_for(key);
  std::shared_future<core::MmsPerformance> future;
  std::promise<core::MmsPerformance> promise;
  bool compute = false;
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.entries.find(key);
    if (it == shard.entries.end()) {
      compute = true;
      future = promise.get_future().share();
      shard.entries.emplace(key, future);
      shard.insertion_order.push_back(key);
      evict_over_capacity_locked(shard);
    } else {
      future = it->second;
    }
  }
  if (was_hit != nullptr) *was_hit = !compute;
  if (compute) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    obs::count("cache.misses");
    obs::instant("cache.miss", "exp");
    bool transient_failure = false;
    try {
      core::AnalysisOptions opts;
      opts.amva = options;
      opts.method = method;
      promise.set_value(core::analyze(config, opts));
    } catch (const qn::SolverError& e) {
      // A deadline is a property of THIS caller's patience, not of the
      // configuration — caching it would poison every future lookup of a
      // perfectly solvable point. Waiters coalesced onto this solve still
      // see the exception; the entry is then dropped so the next caller
      // recomputes.
      transient_failure = e.code() == qn::SolverErrorCode::kDeadlineExceeded;
      promise.set_exception(std::current_exception());
    } catch (...) {
      promise.set_exception(std::current_exception());
    }
    if (transient_failure) {
      const std::lock_guard<std::mutex> lock(shard.mutex);
      shard.entries.erase(key);
    }
  } else {
    hits_.fetch_add(1, std::memory_order_relaxed);
    obs::count("cache.hits");
    obs::instant("cache.hit", "exp");
  }
  return future.get();
}

std::size_t SolveCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->entries.size();
  }
  return total;
}

void SolveCache::set_capacity(std::size_t capacity) {
  capacity_.store(capacity, std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    evict_over_capacity_locked(*shard);
  }
}

void SolveCache::evict_over_capacity_locked(Shard& shard) {
  const std::size_t capacity = per_shard_capacity();
  if (capacity == 0 || shard.entries.size() <= capacity) return;
  // Oldest-first scan; in-flight entries are kept (later duplicates must
  // coalesce onto them) and re-queued in their original order.
  std::deque<std::string> in_flight;
  while (!shard.insertion_order.empty() &&
         shard.entries.size() > capacity) {
    std::string key = std::move(shard.insertion_order.front());
    shard.insertion_order.pop_front();
    const auto it = shard.entries.find(key);
    if (it == shard.entries.end()) continue;  // stale order entry
    if (it->second.wait_for(std::chrono::seconds(0)) !=
        std::future_status::ready) {
      in_flight.push_back(std::move(key));
      continue;
    }
    shard.entries.erase(it);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    obs::count("cache.evictions");
    obs::instant("cache.evict", "exp");
  }
  while (!in_flight.empty()) {
    shard.insertion_order.push_front(std::move(in_flight.back()));
    in_flight.pop_back();
  }
}

std::size_t SolveCache::load(const std::string& path,
                             const std::string& version,
                             std::string* warning) {
  {
    const std::ifstream probe(path);
    if (!probe.good()) return 0;  // no cache yet — a cold run
  }
  // Quarantine rather than abort: a cache is an optimization, so any kind
  // of corruption (truncated write from a killed process, disk damage,
  // hand editing) must degrade to a cold run. The bad file is moved aside
  // so the next save() does not have to overwrite evidence. Quarantine is
  // per file: one damaged shard file loses 1/N of the cache, not all of
  // it.
  const auto quarantine = [&](const std::string& file,
                              const std::string& why) {
    const std::string moved = file + ".corrupt";
    std::error_code ec;
    std::filesystem::rename(file, moved, ec);
    if (warning != nullptr) {
      if (!warning->empty()) *warning += "; ";
      *warning += "ignoring corrupt solve cache `" + file + "` (" + why +
                  (ec ? ")" : "); moved to `" + moved + "`");
    }
  };
  // Convert a parsed cache document's `entries` into a staging area;
  // nothing becomes visible unless the whole document proves well-formed
  // (all-or-nothing per file). Throws InvalidArgument on malformation.
  const auto stage_entries = [](const io::Json& doc) {
    std::vector<std::pair<std::string, core::MmsPerformance>> staged;
    const io::Json* entries = doc.find("entries");
    if (entries == nullptr || !entries->is_array()) {
      throw InvalidArgument("cache file missing `entries`");
    }
    staged.reserve(entries->as_array().size());
    for (const io::Json& entry : entries->as_array()) {
      const io::Json* key = entry.find("key");
      const io::Json* perf = entry.find("perf");
      if (key == nullptr || !key->is_string() || perf == nullptr) {
        throw InvalidArgument("malformed cache entry");
      }
      staged.emplace_back(key->as_string(), perf_from_json(*perf));
    }
    return staged;
  };
  // Route by key hash, not by source file: a cache saved with a different
  // shard count still lands every key on the shard that analyze() will
  // probe.
  std::size_t loaded = 0;
  const auto ingest =
      [&](std::vector<std::pair<std::string, core::MmsPerformance>>&&
              staged) {
        for (auto& [key, perf] : staged) {
          Shard& shard = shard_for(key);
          const std::lock_guard<std::mutex> lock(shard.mutex);
          if (shard.entries.emplace(key, ready_future(std::move(perf)))
                  .second) {
            shard.insertion_order.push_back(key);
            ++loaded;
          }
        }
      };
  // `path` is either a sharded index naming per-shard files (format -4)
  // or a self-contained inline-entries file (format -3, what a
  // single-shard cache writes); anything else is left alone.
  std::vector<std::string> shard_files;
  try {
    const io::Json doc = io::parse_json_file(path);
    const io::Json* format = doc.find("format");
    if (format == nullptr || !format->is_string()) {
      return 0;  // unrecognized file — leave it alone
    }
    if (format->as_string() == kInlineCacheFormat) {
      const io::Json* file_version = doc.find("version");
      if (file_version == nullptr || !file_version->is_string() ||
          file_version->as_string() != version) {
        return 0;  // stale build: cached numbers may no longer reproduce
      }
      ingest(stage_entries(doc));
      for (const auto& shard : shards_) {
        const std::lock_guard<std::mutex> lock(shard->mutex);
        evict_over_capacity_locked(*shard);
      }
      return loaded;
    }
    if (format->as_string() != kCacheFormat) {
      return 0;  // unrecognized file — leave it alone
    }
    if (!format_and_version_match(doc, version)) {
      return 0;  // stale build: cached numbers may no longer reproduce
    }
    const io::Json* files = doc.find("files");
    if (files == nullptr || !files->is_array()) {
      throw InvalidArgument("cache index missing `files`");
    }
    const std::filesystem::path dir =
        std::filesystem::path(path).parent_path();
    shard_files.reserve(files->as_array().size());
    for (const io::Json& file : files->as_array()) {
      if (!file.is_string()) {
        throw InvalidArgument("malformed cache index `files` entry");
      }
      shard_files.push_back((dir / file.as_string()).string());
    }
  } catch (const InvalidArgument& e) {  // includes JsonParseError
    quarantine(path, e.what());
    return 0;
  }
  for (const std::string& file : shard_files) {
    {
      const std::ifstream probe(file);
      if (!probe.good()) continue;  // deleted shard file: that slice is cold
    }
    std::vector<std::pair<std::string, core::MmsPerformance>> staged;
    try {
      const io::Json doc = io::parse_json_file(file);
      if (!format_and_version_match(doc, version)) continue;
      staged = stage_entries(doc);
    } catch (const InvalidArgument& e) {
      quarantine(file, e.what());
      continue;
    }
    ingest(std::move(staged));
  }
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    evict_over_capacity_locked(*shard);
  }
  return loaded;
}

void SolveCache::save(const std::string& path,
                      const std::string& version) const {
  // A single-shard cache stays one self-contained file (the pre-shard
  // inline layout): `latol serve` flushes exactly one artifact, and the
  // file round-trips with caches written before sharding existed. The
  // index-plus-files layout only pays off with N > 1 writers' worth of
  // entries.
  io::Json files = io::Json::array();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const bool inline_layout = shards_.size() == 1;
    const std::string file =
        inline_layout ? path : path + ".shard" + std::to_string(i);
    io::Json entries = io::Json::array();
    {
      const Shard& shard = *shards_[i];
      const std::lock_guard<std::mutex> lock(shard.mutex);
      // Sort keys so each file is deterministic for a given content.
      std::vector<const std::string*> keys;
      keys.reserve(shard.entries.size());
      for (const auto& [key, future] : shard.entries) keys.push_back(&key);
      std::sort(keys.begin(), keys.end(),
                [](const std::string* a, const std::string* b) {
                  return *a < *b;
                });
      for (const std::string* key : keys) {
        const auto& future = shard.entries.at(*key);
        if (future.wait_for(std::chrono::seconds(0)) !=
            std::future_status::ready) {
          continue;  // still computing (save during a run): skip
        }
        core::MmsPerformance perf;
        try {
          perf = future.get();
        } catch (...) {
          continue;  // failures are recomputed, not persisted
        }
        io::Json entry = io::Json::object();
        entry.set("key", *key);
        entry.set("perf", perf_to_json(perf));
        entries.push_back(std::move(entry));
      }
    }
    io::Json doc = io::Json::object();
    doc.set("format", inline_layout ? kInlineCacheFormat : kCacheFormat);
    doc.set("version", version);
    if (!inline_layout) doc.set("shard", static_cast<double>(i));
    doc.set("entries", std::move(entries));
    io::write_json_file(file, doc, 1);
    files.push_back(std::filesystem::path(file).filename().string());
  }
  if (shards_.size() == 1) return;  // inline layout: no index
  // The index goes last: a crash before this point leaves the previous
  // index in place, still naming a consistent (if stale) set of files.
  io::Json index = io::Json::object();
  index.set("format", kCacheFormat);
  index.set("version", version);
  index.set("shards", static_cast<double>(shards_.size()));
  index.set("files", std::move(files));
  io::write_json_file(path, index, 1);
}

}  // namespace latol::exp
