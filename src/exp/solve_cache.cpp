#include "exp/solve_cache.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <utility>
#include <vector>

#include "io/json.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "qn/robust.hpp"
#include "topo/topology.hpp"
#include "util/error.hpp"

namespace latol::exp {

namespace {

// Bumped to -2 when MmsPerformance grew invariant errors and the residual
// history; to -3 when open/mixed workloads added open_latency/open_util to
// the payload and lam0/method to the key. Older files lack the new fields
// and are ignored wholesale.
constexpr const char* kCacheFormat = "latol-solve-cache-3";

qn::SolverKind solver_kind_from_name(const std::string& name) {
  for (const qn::SolverKind kind :
       {qn::SolverKind::kAmva, qn::SolverKind::kLinearizer,
        qn::SolverKind::kExactMva, qn::SolverKind::kBounds,
        qn::SolverKind::kFesc}) {
    if (name == qn::solver_kind_name(kind)) return kind;
  }
  throw InvalidArgument("unknown solver kind `" + name + "` in cache");
}

io::Json perf_to_json(const core::MmsPerformance& p) {
  io::Json o = io::Json::object();
  o.set("U_p", p.processor_utilization);
  o.set("lambda", p.access_rate);
  o.set("lambda_net", p.message_rate);
  o.set("S_obs", p.network_latency);
  o.set("L_obs", p.memory_latency);
  o.set("mem_util", p.memory_utilization);
  o.set("switch_util", p.switch_utilization);
  o.set("d_avg", p.average_distance);
  o.set("iterations", static_cast<double>(p.solver_iterations));
  o.set("converged", p.converged);
  o.set("solver", qn::solver_kind_name(p.solver));
  o.set("degraded", p.degraded);
  o.set("residual", p.residual);
  o.set("open_latency", p.open_latency);
  o.set("open_util", p.open_utilization);
  o.set("littles_law_error", p.littles_law_error);
  o.set("flow_balance_error", p.flow_balance_error);
  io::Json history = io::Json::array();
  for (const double d : p.residual_history) history.push_back(d);
  o.set("residual_history", std::move(history));
  return o;
}

core::MmsPerformance perf_from_json(const io::Json& o) {
  const auto num = [&](const char* key) {
    const io::Json* v = o.find(key);
    if (v == nullptr) {
      throw InvalidArgument(std::string("cache entry missing `") + key +
                            "`");
    }
    return v->as_number();
  };
  const auto flag = [&](const char* key) {
    const io::Json* v = o.find(key);
    if (v == nullptr) {
      throw InvalidArgument(std::string("cache entry missing `") + key +
                            "`");
    }
    return v->as_bool();
  };
  core::MmsPerformance p;
  p.processor_utilization = num("U_p");
  p.access_rate = num("lambda");
  p.message_rate = num("lambda_net");
  p.network_latency = num("S_obs");
  p.memory_latency = num("L_obs");
  p.memory_utilization = num("mem_util");
  p.switch_utilization = num("switch_util");
  p.average_distance = num("d_avg");
  p.solver_iterations = static_cast<long>(num("iterations"));
  p.converged = flag("converged");
  const io::Json* solver = o.find("solver");
  if (solver == nullptr) throw InvalidArgument("cache entry missing `solver`");
  p.solver = solver_kind_from_name(solver->as_string());
  p.degraded = flag("degraded");
  p.residual = num("residual");
  p.open_latency = num("open_latency");
  p.open_utilization = num("open_util");
  p.littles_law_error = num("littles_law_error");
  p.flow_balance_error = num("flow_balance_error");
  const io::Json* history = o.find("residual_history");
  if (history == nullptr || !history->is_array()) {
    throw InvalidArgument("cache entry missing `residual_history`");
  }
  for (const io::Json& d : history->as_array())
    p.residual_history.push_back(d.as_number());
  return p;
}

std::shared_future<core::MmsPerformance> ready_future(
    core::MmsPerformance perf) {
  std::promise<core::MmsPerformance> promise;
  promise.set_value(std::move(perf));
  return promise.get_future().share();
}

}  // namespace

std::string SolveCache::config_key(const core::MmsConfig& config,
                                   const qn::AmvaOptions& options,
                                   core::SolveMethod method) {
  const auto num = io::json_number;  // shortest round trip = injective
  std::string key;
  key.reserve(256);
  key += "topo=";
  key += topo::topology_kind_name(config.topology);
  key += ";k=" + std::to_string(config.k);
  key += ";L=" + num(config.memory_latency);
  key += ";S=" + num(config.switch_delay);
  key += ";ports=" + std::to_string(config.memory_ports);
  key += ";pipe=" + std::to_string(config.pipelined_switches ? 1 : 0);
  key += ";nt=" + std::to_string(config.threads_per_processor);
  key += ";R=" + num(config.runlength);
  key += ";C=" + num(config.context_switch);
  key += ";p=" + num(config.p_remote);
  key += ";pat=" +
         std::to_string(static_cast<int>(config.traffic.pattern));
  key += ";psw=" + num(config.traffic.p_sw);
  key += ";mode=" + std::to_string(static_cast<int>(config.traffic.mode));
  key += ";hot=" + std::to_string(config.traffic.hotspot_node);
  key += ";hotf=" + num(config.traffic.hotspot_fraction);
  key += ";lam0=" + num(config.open_arrival_rate);
  key += ";srcout=" + std::to_string(config.count_source_outbound ? 1 : 0);
  key += "|method=";
  key += core::solve_method_name(method);
  key += ";tol=" + num(options.tolerance);
  key += ";iters=" + std::to_string(options.max_iterations);
  key += ";damp=" + num(options.damping);
  key += ";divf=" + num(options.divergence_factor);
  key += ";divw=" + std::to_string(options.divergence_window);
  key += ";trace=" + std::to_string(options.record_trace ? 1 : 0);
  return key;
}

core::MmsPerformance SolveCache::analyze(const core::MmsConfig& config,
                                         const qn::AmvaOptions& options,
                                         bool* was_hit,
                                         core::SolveMethod method) {
  const std::string key = config_key(config, options, method);
  std::shared_future<core::MmsPerformance> future;
  std::promise<core::MmsPerformance> promise;
  bool compute = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
      compute = true;
      future = promise.get_future().share();
      entries_.emplace(key, future);
      insertion_order_.push_back(key);
      evict_over_capacity_locked();
    } else {
      future = it->second;
    }
  }
  if (was_hit != nullptr) *was_hit = !compute;
  if (compute) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    obs::count("cache.misses");
    obs::instant("cache.miss", "exp");
    bool transient_failure = false;
    try {
      core::AnalysisOptions opts;
      opts.amva = options;
      opts.method = method;
      promise.set_value(core::analyze(config, opts));
    } catch (const qn::SolverError& e) {
      // A deadline is a property of THIS caller's patience, not of the
      // configuration — caching it would poison every future lookup of a
      // perfectly solvable point. Waiters coalesced onto this solve still
      // see the exception; the entry is then dropped so the next caller
      // recomputes.
      transient_failure = e.code() == qn::SolverErrorCode::kDeadlineExceeded;
      promise.set_exception(std::current_exception());
    } catch (...) {
      promise.set_exception(std::current_exception());
    }
    if (transient_failure) {
      const std::lock_guard<std::mutex> lock(mutex_);
      entries_.erase(key);
    }
  } else {
    hits_.fetch_add(1, std::memory_order_relaxed);
    obs::count("cache.hits");
    obs::instant("cache.hit", "exp");
  }
  return future.get();
}

std::size_t SolveCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void SolveCache::set_capacity(std::size_t capacity) {
  const std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity;
  evict_over_capacity_locked();
}

void SolveCache::evict_over_capacity_locked() {
  if (capacity_ == 0 || entries_.size() <= capacity_) return;
  // Oldest-first scan; in-flight entries are kept (later duplicates must
  // coalesce onto them) and re-queued in their original order.
  std::deque<std::string> in_flight;
  while (!insertion_order_.empty() && entries_.size() > capacity_) {
    std::string key = std::move(insertion_order_.front());
    insertion_order_.pop_front();
    const auto it = entries_.find(key);
    if (it == entries_.end()) continue;  // stale order entry
    if (it->second.wait_for(std::chrono::seconds(0)) !=
        std::future_status::ready) {
      in_flight.push_back(std::move(key));
      continue;
    }
    entries_.erase(it);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    obs::count("cache.evictions");
    obs::instant("cache.evict", "exp");
  }
  while (!in_flight.empty()) {
    insertion_order_.push_front(std::move(in_flight.back()));
    in_flight.pop_back();
  }
}

std::size_t SolveCache::load(const std::string& path,
                             const std::string& version,
                             std::string* warning) {
  {
    const std::ifstream probe(path);
    if (!probe.good()) return 0;  // no cache yet — a cold run
  }
  // Quarantine rather than abort: a cache is an optimization, so any kind
  // of corruption (truncated write from a killed process, disk damage,
  // hand editing) must degrade to a cold run. The bad file is moved aside
  // so the next save() does not have to overwrite evidence.
  const auto quarantine = [&](const std::string& why) -> std::size_t {
    const std::string moved = path + ".corrupt";
    std::error_code ec;
    std::filesystem::rename(path, moved, ec);
    if (warning != nullptr) {
      *warning = "ignoring corrupt solve cache `" + path + "` (" + why +
                 (ec ? ")" : "); moved to `" + moved + "`");
    }
    return 0;
  };
  // Parse and convert entries into a staging area first; nothing becomes
  // visible until the whole file proved well-formed (all-or-nothing).
  std::vector<std::pair<std::string, core::MmsPerformance>> staged;
  try {
    const io::Json doc = io::parse_json_file(path);
    const io::Json* format = doc.find("format");
    const io::Json* file_version = doc.find("version");
    const io::Json* entries = doc.find("entries");
    if (format == nullptr || !format->is_string() ||
        format->as_string() != kCacheFormat) {
      return 0;  // unrecognized file — leave it alone
    }
    if (file_version == nullptr || !file_version->is_string() ||
        file_version->as_string() != version) {
      return 0;  // stale build: cached numbers may no longer reproduce
    }
    if (entries == nullptr || !entries->is_array()) return 0;
    staged.reserve(entries->as_array().size());
    for (const io::Json& entry : entries->as_array()) {
      const io::Json* key = entry.find("key");
      const io::Json* perf = entry.find("perf");
      if (key == nullptr || !key->is_string() || perf == nullptr) {
        throw InvalidArgument("malformed cache entry");
      }
      staged.emplace_back(key->as_string(), perf_from_json(*perf));
    }
  } catch (const InvalidArgument& e) {  // includes JsonParseError
    return quarantine(e.what());
  }
  std::size_t loaded = 0;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [key, perf] : staged) {
    if (entries_.emplace(key, ready_future(std::move(perf))).second) {
      insertion_order_.push_back(key);
      ++loaded;
    }
  }
  evict_over_capacity_locked();
  return loaded;
}

void SolveCache::save(const std::string& path,
                      const std::string& version) const {
  io::Json entries = io::Json::array();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    // Sort keys so the file is deterministic for a given cache content.
    std::vector<const std::string*> keys;
    keys.reserve(entries_.size());
    for (const auto& [key, future] : entries_) keys.push_back(&key);
    std::sort(keys.begin(), keys.end(),
              [](const std::string* a, const std::string* b) {
                return *a < *b;
              });
    for (const std::string* key : keys) {
      const auto& future = entries_.at(*key);
      if (future.wait_for(std::chrono::seconds(0)) !=
          std::future_status::ready) {
        continue;  // still computing (save during a run): skip
      }
      core::MmsPerformance perf;
      try {
        perf = future.get();
      } catch (...) {
        continue;  // failures are recomputed, not persisted
      }
      io::Json entry = io::Json::object();
      entry.set("key", *key);
      entry.set("perf", perf_to_json(perf));
      entries.push_back(std::move(entry));
    }
  }
  io::Json doc = io::Json::object();
  doc.set("format", kCacheFormat);
  doc.set("version", version);
  doc.set("entries", std::move(entries));
  io::write_json_file(path, doc, 1);
}

}  // namespace latol::exp
