// Named numeric parameters of an MmsConfig.
//
// The declarative experiment engine (scenario files, `latol run`) and the
// CLI `sweep` command both vary model parameters by name; this module is
// the single registry mapping those names onto MmsConfig fields so the
// two surfaces cannot drift apart. Canonical names follow the CLI sweep
// spelling (`threads`, `runlength`, ...); the paper's symbols (`n_t`,
// `R`, `L`, `S`, `C`) are accepted as aliases so result columns can be
// labeled the way the paper writes them.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/mms_config.hpp"

namespace latol::exp {

/// Resolve an alias ("n_t", "R", ...) to its canonical parameter name
/// ("threads", "runlength", ...). Canonical names map to themselves.
/// Throws InvalidArgument listing the known names for anything else.
[[nodiscard]] std::string canonical_parameter(std::string_view name);

/// True when `name` (canonical or alias) names a sweepable parameter.
[[nodiscard]] bool is_parameter(std::string_view name);

/// True when the named parameter is integer-valued (threads, k,
/// memory_ports). Throws InvalidArgument on unknown names.
[[nodiscard]] bool parameter_is_integral(std::string_view name);

/// Set the named parameter on `config`. Integer-valued parameters
/// (threads, k, memory_ports) reject non-integral values with a
/// diagnostic instead of silently truncating. Throws InvalidArgument on
/// unknown names; range validation happens later via MmsConfig::validate.
void apply_parameter(core::MmsConfig& config, std::string_view name,
                     double value);

/// Read the named parameter back from `config`.
[[nodiscard]] double read_parameter(const core::MmsConfig& config,
                                    std::string_view name);

/// The canonical parameter names, in a stable documentation order.
[[nodiscard]] const std::vector<std::string>& parameter_names();

}  // namespace latol::exp
