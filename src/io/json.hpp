// Minimal dependency-free JSON: a value type, a strict parser with
// line/column diagnostics, and a writer.
//
// Scope: exactly RFC 8259 minus surrogate-pair escapes (\uXXXX outside
// the BMP is rejected; scenario files are ASCII in practice). Numbers are
// doubles; integral values round-trip without a fractional part and
// non-integral values use the shortest representation that parses back to
// the same double, so write(parse(text)) is value-preserving. Objects
// preserve insertion order, which keeps written output deterministic and
// lets content hashes of dumped documents be meaningful.
//
// This lives at the util layer (no latol dependencies beyond util) so
// every other module — experiment scenarios, bench reporters, caches —
// can consume it.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "util/error.hpp"

namespace latol::io {

/// Thrown by parse_json on malformed input. `line`/`column` are 1-based
/// and already baked into what() ("JSON parse error at line L, column C:
/// ...").
class JsonParseError : public InvalidArgument {
 public:
  JsonParseError(const std::string& message, std::size_t line,
                 std::size_t column);

  /// Tag for rethrowing with an already-formatted what() (used to append
  /// file context without duplicating the location prefix).
  struct Preformatted {};
  JsonParseError(Preformatted, const std::string& what, std::size_t line,
                 std::size_t column)
      : InvalidArgument(what), line_(line), column_(column) {}

  [[nodiscard]] std::size_t line() const { return line_; }
  [[nodiscard]] std::size_t column() const { return column_; }

 private:
  std::size_t line_;
  std::size_t column_;
};

/// One JSON value. Objects are stored as insertion-ordered key/value
/// vectors (duplicate keys are rejected by the parser; set() replaces).
class Json {
 public:
  using Array = std::vector<Json>;
  using Member = std::pair<std::string, Json>;
  using Object = std::vector<Member>;

  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}  // NOLINT(google-explicit-constructor)
  Json(bool b) : value_(b) {}                // NOLINT(google-explicit-constructor)
  Json(double n) : value_(n) {}              // NOLINT(google-explicit-constructor)
  Json(int n) : value_(static_cast<double>(n)) {}   // NOLINT(google-explicit-constructor)
  Json(long n) : value_(static_cast<double>(n)) {}  // NOLINT(google-explicit-constructor)
  Json(unsigned long n) : value_(static_cast<double>(n)) {}  // NOLINT(google-explicit-constructor)
  Json(const char* s) : value_(std::string(s)) {}   // NOLINT(google-explicit-constructor)
  Json(std::string s) : value_(std::move(s)) {}     // NOLINT(google-explicit-constructor)
  Json(Array a) : value_(std::move(a)) {}           // NOLINT(google-explicit-constructor)
  Json(Object o) : value_(std::move(o)) {}          // NOLINT(google-explicit-constructor)

  [[nodiscard]] static Json array() { return Json(Array{}); }
  [[nodiscard]] static Json object() { return Json(Object{}); }

  [[nodiscard]] Kind kind() const { return static_cast<Kind>(value_.index()); }
  [[nodiscard]] bool is_null() const { return kind() == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind() == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind() == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind() == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind() == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind() == Kind::kObject; }

  /// Checked accessors; throw InvalidArgument naming the actual kind.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] Array& as_array();
  [[nodiscard]] const Object& as_object() const;
  [[nodiscard]] Object& as_object();

  // --- object convenience ---
  /// Member lookup; nullptr when absent (or when not an object).
  [[nodiscard]] const Json* find(std::string_view key) const;
  [[nodiscard]] bool contains(std::string_view key) const {
    return find(key) != nullptr;
  }
  /// Insert or replace a member, preserving first-insertion order.
  void set(std::string_view key, Json value);

  // --- array convenience ---
  void push_back(Json value) { as_array().push_back(std::move(value)); }

  /// Serialize. indent < 0 is compact one-line output; indent >= 0
  /// pretty-prints with that many spaces per level. Output is valid JSON
  /// that parses back to an equal value.
  [[nodiscard]] std::string dump(int indent = -1) const;

  friend bool operator==(const Json& a, const Json& b) = default;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      value_;
};

/// Human-readable kind name ("object", "number", ...).
[[nodiscard]] const char* json_kind_name(Json::Kind kind);

/// Resource ceilings of the parser; hostile or corrupt input fails with a
/// JsonParseError instead of exhausting the stack (nesting) or memory
/// (document size). The defaults are far above anything latol writes but
/// well below what would hurt a long-running server.
struct ParseLimits {
  /// Maximum container nesting depth (each `[` or `{` is one level).
  std::size_t max_depth = 200;
  /// Maximum document size in bytes, checked before parsing begins.
  std::size_t max_bytes = 64ull * 1024 * 1024;
};

/// Parse a complete JSON document; trailing non-whitespace is an error.
/// Throws JsonParseError with 1-based line/column on malformed input, or
/// when the document exceeds `limits`.
[[nodiscard]] Json parse_json(std::string_view text,
                              const ParseLimits& limits = {});

/// Read and parse a JSON file; errors mention the path. Throws
/// InvalidArgument when the file cannot be read, JsonParseError on
/// malformed content or content exceeding `limits`.
[[nodiscard]] Json parse_json_file(const std::string& path,
                                   const ParseLimits& limits = {});

/// Format a double the way Json::dump does: integral values without a
/// fractional part, everything else with the shortest round-trip form.
[[nodiscard]] std::string json_number(double value);

/// Write `value.dump(indent)` plus a trailing newline to `path`,
/// crash-safely: the content goes to a temporary file beside `path` which
/// is atomically renamed over it, so readers (and a process killed
/// mid-write) see either the old complete file or the new complete file,
/// never a truncated mix. Throws InvalidArgument when the file cannot be
/// written; the temporary is cleaned up on failure.
void write_json_file(const std::string& path, const Json& value,
                     int indent = 2);

}  // namespace latol::io
