#include "io/json.hpp"

#include <unistd.h>

#include <charconv>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

namespace latol::io {

namespace {

std::string location_message(const std::string& message, std::size_t line,
                             std::size_t column) {
  std::ostringstream os;
  os << "JSON parse error at line " << line << ", column " << column << ": "
     << message;
  return os.str();
}

}  // namespace

JsonParseError::JsonParseError(const std::string& message, std::size_t line,
                               std::size_t column)
    : InvalidArgument(location_message(message, line, column)),
      line_(line),
      column_(column) {}

const char* json_kind_name(Json::Kind kind) {
  switch (kind) {
    case Json::Kind::kNull:
      return "null";
    case Json::Kind::kBool:
      return "bool";
    case Json::Kind::kNumber:
      return "number";
    case Json::Kind::kString:
      return "string";
    case Json::Kind::kArray:
      return "array";
    case Json::Kind::kObject:
      return "object";
  }
  return "?";
}

namespace {

[[noreturn]] void wrong_kind(const char* wanted, Json::Kind got) {
  throw InvalidArgument(std::string("JSON value is ") + json_kind_name(got) +
                        ", not " + wanted);
}

}  // namespace

bool Json::as_bool() const {
  if (const bool* b = std::get_if<bool>(&value_)) return *b;
  wrong_kind("bool", kind());
}

double Json::as_number() const {
  if (const double* n = std::get_if<double>(&value_)) return *n;
  wrong_kind("number", kind());
}

const std::string& Json::as_string() const {
  if (const std::string* s = std::get_if<std::string>(&value_)) return *s;
  wrong_kind("string", kind());
}

const Json::Array& Json::as_array() const {
  if (const Array* a = std::get_if<Array>(&value_)) return *a;
  wrong_kind("array", kind());
}

Json::Array& Json::as_array() {
  if (Array* a = std::get_if<Array>(&value_)) return *a;
  wrong_kind("array", kind());
}

const Json::Object& Json::as_object() const {
  if (const Object* o = std::get_if<Object>(&value_)) return *o;
  wrong_kind("object", kind());
}

Json::Object& Json::as_object() {
  if (Object* o = std::get_if<Object>(&value_)) return *o;
  wrong_kind("object", kind());
}

const Json* Json::find(std::string_view key) const {
  const Object* o = std::get_if<Object>(&value_);
  if (o == nullptr) return nullptr;
  for (const Member& m : *o) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

void Json::set(std::string_view key, Json value) {
  Object& o = as_object();
  for (Member& m : o) {
    if (m.first == key) {
      m.second = std::move(value);
      return;
    }
  }
  o.emplace_back(std::string(key), std::move(value));
}

// --- writer ---------------------------------------------------------------

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";  // JSON has no NaN/Inf
  // Integral values read better without an exponent or fraction; the
  // threshold keeps every value exactly representable as a double.
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    char buf[32];
    const auto [end, ec] = std::to_chars(
        buf, buf + sizeof buf, static_cast<long long>(value));
    (void)ec;
    return std::string(buf, end);
  }
  // Shortest form that parses back to the same double.
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  (void)ec;
  return std::string(buf, end);
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_value(const Json& v, int indent, int depth, std::string& out) {
  const bool pretty = indent >= 0;
  const auto newline_pad = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(d),
               ' ');
  };
  switch (v.kind()) {
    case Json::Kind::kNull:
      out += "null";
      break;
    case Json::Kind::kBool:
      out += v.as_bool() ? "true" : "false";
      break;
    case Json::Kind::kNumber:
      out += json_number(v.as_number());
      break;
    case Json::Kind::kString:
      append_escaped(out, v.as_string());
      break;
    case Json::Kind::kArray: {
      const Json::Array& a = v.as_array();
      if (a.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i != 0) out += pretty ? "," : ", ";
        newline_pad(depth + 1);
        dump_value(a[i], indent, depth + 1, out);
      }
      newline_pad(depth);
      out += ']';
      break;
    }
    case Json::Kind::kObject: {
      const Json::Object& o = v.as_object();
      if (o.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < o.size(); ++i) {
        if (i != 0) out += pretty ? "," : ", ";
        newline_pad(depth + 1);
        append_escaped(out, o[i].first);
        out += ": ";
        dump_value(o[i].second, indent, depth + 1, out);
      }
      newline_pad(depth);
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string Json::dump(int indent) const {
  std::string out;
  dump_value(*this, indent, 0, out);
  return out;
}

// --- parser ---------------------------------------------------------------

namespace {

/// Recursive-descent parser over a string_view, tracking line/column for
/// diagnostics. Depth is capped so hostile input cannot overflow the
/// stack.
class Parser {
 public:
  Parser(std::string_view text, const ParseLimits& limits)
      : text_(text), limits_(limits) {}

  Json parse_document() {
    if (text_.size() > limits_.max_bytes) {
      throw JsonParseError("document size " + std::to_string(text_.size()) +
                               " bytes exceeds the limit of " +
                               std::to_string(limits_.max_bytes) + " bytes",
                           1, 1);
    }
    skip_whitespace();
    Json v = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw JsonParseError(message, line_, column());
  }

  [[nodiscard]] std::size_t column() const {
    return pos_ - line_start_ + 1;
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }

  [[nodiscard]] char peek() const {
    return at_end() ? '\0' : text_[pos_];
  }

  char advance() {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      line_start_ = pos_;
    }
    return c;
  }

  void skip_whitespace() {
    while (!at_end()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      advance();
    }
  }

  void expect(char c, const char* context) {
    if (at_end() || peek() != c) {
      fail(std::string("expected `") + c + "` " + context +
           (at_end() ? " but input ended"
                     : std::string(", got `") + peek() + "`"));
    }
    advance();
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    for (std::size_t i = 0; i < word.size(); ++i) advance();
    return true;
  }

  Json parse_value(std::size_t depth) {
    if (depth > limits_.max_depth) {
      fail("nesting deeper than " + std::to_string(limits_.max_depth) +
           " levels");
    }
    if (at_end()) fail("unexpected end of input, expected a value");
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal, expected `true`");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal, expected `false`");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("invalid literal, expected `null`");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return Json(parse_number());
        fail(std::string("unexpected character `") + c + "`");
    }
  }

  Json parse_object(std::size_t depth) {
    expect('{', "to start an object");
    Json obj = Json::object();
    skip_whitespace();
    if (peek() == '}') {
      advance();
      return obj;
    }
    while (true) {
      skip_whitespace();
      if (peek() != '"') fail("expected a string object key");
      std::string key = parse_string();
      if (obj.contains(key)) fail("duplicate object key `" + key + "`");
      skip_whitespace();
      expect(':', "after object key");
      skip_whitespace();
      obj.as_object().emplace_back(std::move(key), parse_value(depth + 1));
      skip_whitespace();
      if (peek() == ',') {
        advance();
        continue;
      }
      expect('}', "to end an object");
      return obj;
    }
  }

  Json parse_array(std::size_t depth) {
    expect('[', "to start an array");
    Json arr = Json::array();
    skip_whitespace();
    if (peek() == ']') {
      advance();
      return arr;
    }
    while (true) {
      skip_whitespace();
      arr.push_back(parse_value(depth + 1));
      skip_whitespace();
      if (peek() == ',') {
        advance();
        continue;
      }
      expect(']', "to end an array");
      return arr;
    }
  }

  std::string parse_string() {
    expect('"', "to start a string");
    std::string out;
    while (true) {
      if (at_end()) fail("unterminated string");
      const char c = advance();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string (use \\u escapes)");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at_end()) fail("unterminated escape sequence");
      const char e = advance();
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (at_end()) fail("unterminated \\u escape");
            const char h = advance();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail(std::string("invalid hex digit `") + h +
                   "` in \\u escape");
            }
          }
          if (code >= 0xD800 && code <= 0xDFFF) {
            fail("surrogate \\u escapes are not supported");
          }
          // UTF-8 encode the BMP code point.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail(std::string("invalid escape `\\") + e + "`");
      }
    }
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') advance();
    // Integer part: 0 | [1-9][0-9]*
    if (peek() == '0') {
      advance();
      if (peek() >= '0' && peek() <= '9') fail("leading zeros are not valid");
    } else if (peek() >= '1' && peek() <= '9') {
      while (peek() >= '0' && peek() <= '9') advance();
    } else {
      fail("malformed number");
    }
    if (peek() == '.') {
      advance();
      if (!(peek() >= '0' && peek() <= '9')) {
        fail("digit required after decimal point");
      }
      while (peek() >= '0' && peek() <= '9') advance();
    }
    if (peek() == 'e' || peek() == 'E') {
      advance();
      if (peek() == '+' || peek() == '-') advance();
      if (!(peek() >= '0' && peek() <= '9')) {
        fail("digit required in exponent");
      }
      while (peek() >= '0' && peek() <= '9') advance();
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec == std::errc::result_out_of_range || !std::isfinite(value)) {
      fail("number out of double range");
    }
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      fail("malformed number");
    }
    return value;
  }

  std::string_view text_;
  ParseLimits limits_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t line_start_ = 0;
};

}  // namespace

Json parse_json(std::string_view text, const ParseLimits& limits) {
  return Parser(text, limits).parse_document();
}

Json parse_json_file(const std::string& path, const ParseLimits& limits) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw InvalidArgument("cannot read JSON file `" + path + "`");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return parse_json(buffer.str(), limits);
  } catch (const JsonParseError& e) {
    throw JsonParseError(JsonParseError::Preformatted{},
                         std::string(e.what()) + " (in " + path + ")",
                         e.line(), e.column());
  }
}

void write_json_file(const std::string& path, const Json& value, int indent) {
  // Write-then-rename: rename(2) within a directory is atomic, so a crash
  // (or a concurrent reader) never observes a partially written file.
  // The temporary's name embeds the pid so two processes dumping the same
  // path cannot trample each other's scratch file.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw InvalidArgument("cannot open `" + tmp + "` for writing");
    }
    out << value.dump(indent) << '\n';
    out.flush();
    if (!out) {
      out.close();
      std::error_code ignored;
      std::filesystem::remove(tmp, ignored);
      throw InvalidArgument("failed writing `" + tmp + "` (disk full?)");
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    throw InvalidArgument("cannot rename `" + tmp + "` to `" + path +
                          "`: " + ec.message());
  }
}

}  // namespace latol::io
