#include "cli/serve_cmd.hpp"

#include <csignal>

#include <atomic>
#include <ostream>

#include "qn/solver_error.hpp"
#include "util/error.hpp"

namespace latol::cli {

namespace {

/// The live server for the signal handler. Written only by cmd_serve,
/// which installs the handlers after the store and restores the default
/// disposition before clearing it.
std::atomic<serve::Server*> g_serve_instance{nullptr};

void handle_stop_signal(int /*signum*/) {
  // Async-signal-safe: request_stop is an atomic store plus a pipe write.
  serve::Server* server = g_serve_instance.load(std::memory_order_acquire);
  if (server != nullptr) server->request_stop();
}

}  // namespace

serve::CommandRunner make_command_runner() {
  return [](const std::vector<std::string>& args,
            const util::CancelToken* cancel, std::ostream& out) -> int {
    try {
      CliOptions opts = parse_command_line(args);
      opts.amva.cancel = cancel;
      return run_command(opts, out);
    } catch (const InvalidArgument& e) {
      out << "latol: " << e.what() << '\n';
      return 2;
    } catch (const qn::SolverError& e) {
      out << "latol: " << e.what() << '\n';
      return e.code() == qn::SolverErrorCode::kDeadlineExceeded
                 ? serve::kDeadlineExit
                 : 3;
    } catch (const std::exception& e) {
      out << "latol: " << e.what() << '\n';
      return 3;
    }
  };
}

int cmd_serve(const CliOptions& options, std::ostream& out) {
  LATOL_REQUIRE(!options.serve_config_path.empty(),
                "serve needs a config file: latol serve <config.json>");
  const serve::ServerConfig config =
      serve::ServerConfig::load(options.serve_config_path);
  serve::Server server(config, make_command_runner(), &out);

  g_serve_instance.store(&server, std::memory_order_release);
  struct sigaction action {};
  action.sa_handler = handle_stop_signal;
  sigemptyset(&action.sa_mask);
  (void)sigaction(SIGTERM, &action, nullptr);
  (void)sigaction(SIGINT, &action, nullptr);

  int code = 4;
  try {
    server.start();
    code = server.run();
  } catch (...) {
    (void)std::signal(SIGTERM, SIG_DFL);
    (void)std::signal(SIGINT, SIG_DFL);
    g_serve_instance.store(nullptr, std::memory_order_release);
    throw;
  }
  (void)std::signal(SIGTERM, SIG_DFL);
  (void)std::signal(SIGINT, SIG_DFL);
  g_serve_instance.store(nullptr, std::memory_order_release);
  return code;
}

}  // namespace latol::cli
