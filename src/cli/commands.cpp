// Implementations of the `latol` CLI commands.
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <ostream>

#include "cli/options.hpp"
#include "core/latol.hpp"
#include "exp/parameter.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "sim/mms_des.hpp"
#include "sim/mms_petri.hpp"
#include "util/table.hpp"

namespace latol::cli {

namespace {

/// Warn about a solve that did not come back clean; returns the exit code
/// contribution (1 = degraded, 0 = clean). `what` names the solve in the
/// warning line (e.g. "actual system").
int warn_if_degraded(const core::MmsPerformance& perf, const char* what,
                     std::ostream& out) {
  if (!perf.degraded && perf.converged) return 0;
  out << "warning: " << what << " result is degraded: answered by "
      << qn::solver_kind_name(perf.solver)
      << (perf.converged ? "" : " (not converged)") << ", residual "
      << perf.residual << '\n';
  return 1;
}

void print_machine(const core::MmsConfig& cfg, std::ostream& out) {
  out << "machine: " << topo::topology_kind_name(cfg.topology) << " k="
      << cfg.k << " (P=" << cfg.num_processors() << "), n_t="
      << cfg.threads_per_processor << ", R=" << cfg.runlength
      << ", C=" << cfg.context_switch << ", p_remote=" << cfg.p_remote
      << ", L=" << cfg.memory_latency << ", S=" << cfg.switch_delay;
  if (cfg.traffic.pattern == topo::AccessPattern::kGeometric) {
    out << ", geometric p_sw=" << cfg.traffic.p_sw;
  } else {
    out << ", uniform";
  }
  if (cfg.traffic.hotspot_node >= 0 && cfg.traffic.hotspot_fraction > 0.0) {
    out << ", hotspot node " << cfg.traffic.hotspot_node << " ("
        << cfg.traffic.hotspot_fraction * 100 << "%)";
  }
  out << "\n\n";
}

int cmd_analyze(const CliOptions& opts, std::ostream& out) {
  print_machine(opts.config, out);
  qn::RobustOptions ropts;
  ropts.amva = opts.amva;
  const core::RobustAnalysis analysis = core::analyze_robust(opts.config, ropts);
  const core::MmsPerformance& perf = analysis.perf;
  out << "U_p (processor utilization) = " << perf.processor_utilization
      << '\n'
      << "lambda (access rate)        = " << perf.access_rate << '\n'
      << "lambda_net (message rate)   = " << perf.message_rate << '\n'
      << "S_obs (network latency)     = " << perf.network_latency << '\n'
      << "L_obs (memory latency)      = " << perf.memory_latency << '\n'
      << "memory utilization          = " << perf.memory_utilization << '\n'
      << "max switch utilization      = " << perf.switch_utilization << '\n'
      << "d_avg                       = " << perf.average_distance << '\n'
      << "solver                      = " << analysis.report.summary() << '\n';
  return warn_if_degraded(perf, "analyze", out);
}

int cmd_tolerance(const CliOptions& opts, std::ostream& out) {
  print_machine(opts.config, out);
  const core::ToleranceResult net = core::tolerance_index(
      opts.config, core::Subsystem::kNetwork, opts.amva);
  const core::ToleranceResult mem = core::tolerance_index(
      opts.config, core::Subsystem::kMemory, opts.amva);
  out << "tol_network = " << net.index << " (" << core::zone_name(net.zone())
      << ")\n"
      << "tol_memory  = " << mem.index << " (" << core::zone_name(mem.zone())
      << ")\n"
      << "U_p = " << net.actual.processor_utilization
      << "  (ideal network: " << net.ideal.processor_utilization
      << ", ideal memory: " << mem.ideal.processor_utilization << ")\n";
  const core::Subsystem first = net.index < mem.index
                                    ? core::Subsystem::kNetwork
                                    : core::Subsystem::kMemory;
  out << "tune first: "
      << (first == core::Subsystem::kNetwork ? "network" : "memory")
      << " subsystem\n";
  int rc = warn_if_degraded(net.actual, "actual system", out);
  rc |= warn_if_degraded(net.ideal, "ideal network", out);
  rc |= warn_if_degraded(mem.ideal, "ideal memory", out);
  return rc;
}

int cmd_bottleneck(const CliOptions& opts, std::ostream& out) {
  print_machine(opts.config, out);
  const core::BottleneckAnalysis bn = core::bottleneck_analysis(opts.config);
  out << "d_avg                        = " << bn.d_avg << '\n'
      << "lambda_net saturation (Eq.4) = " << bn.lambda_net_sat << '\n'
      << "p_remote at saturation       = " << bn.p_remote_sat << '\n'
      << "critical p_remote (Eq.5)     = " << bn.p_remote_critical << '\n'
      << "unloaded one-way S_obs       = " << bn.unloaded_one_way << '\n'
      << "unloaded round trip          = " << bn.unloaded_round_trip << '\n'
      << "memory service rate          = " << bn.memory_service_rate << '\n';
  return 0;
}

int cmd_sweep(const CliOptions& opts, std::ostream& out) {
  print_machine(opts.config, out);
  LATOL_REQUIRE(opts.sweep_steps >= 1, "sweep needs >= 1 step");
  util::Table table({opts.sweep_param, "U_p", "S_obs", "L_obs", "lambda_net",
                     "tol_network", "zone", "solver"});
  int degraded = 0;
  for (int s = 0; s < opts.sweep_steps; ++s) {
    const double x =
        opts.sweep_steps == 1
            ? opts.sweep_from
            : opts.sweep_from + (opts.sweep_to - opts.sweep_from) * s /
                                    (opts.sweep_steps - 1);
    core::MmsConfig cfg = opts.config;
    // Integral parameters keep the historical sweep behavior of truncating
    // fractional grid values (a 1..8 sweep in 9 steps must still work).
    exp::apply_parameter(cfg, opts.sweep_param,
                         exp::parameter_is_integral(opts.sweep_param)
                             ? std::trunc(x)
                             : x);
    const core::ToleranceResult t =
        core::tolerance_index(cfg, core::Subsystem::kNetwork, opts.amva);
    const bool clean = !t.actual.degraded && t.actual.converged &&
                       !t.ideal.degraded && t.ideal.converged;
    if (!clean) ++degraded;
    std::string solver = qn::solver_kind_name(t.actual.solver);
    if (!clean) solver += " [degraded]";
    table.add_row({util::Table::num(x, 3),
                   util::Table::num(t.actual.processor_utilization, 4),
                   util::Table::num(t.actual.network_latency, 2),
                   util::Table::num(t.actual.memory_latency, 2),
                   util::Table::num(t.actual.message_rate, 4),
                   util::Table::num(t.index, 4),
                   core::zone_name(t.zone()), std::move(solver)});
  }
  table.print(out);
  if (degraded > 0) {
    out << "warning: " << degraded << " of " << opts.sweep_steps
        << " sweep points are degraded (fallback solver or not converged)\n";
    return 1;
  }
  return 0;
}

int cmd_simulate(const CliOptions& opts, std::ostream& out) {
  print_machine(opts.config, out);
  const core::MmsPerformance model = core::analyze(opts.config, opts.amva);
  util::Table table({"measure", "model", "simulation", "dev%"});
  auto row = [&](const std::string& name, double m, double s, int prec) {
    const double dev = m != 0.0 ? 100.0 * (s - m) / m : 0.0;
    table.add_row({name, util::Table::num(m, prec), util::Table::num(s, prec),
                   util::Table::num(dev, 1)});
  };
  if (opts.use_petri) {
    const sim::PetriMmsResult r =
        sim::simulate_mms_petri(opts.config, opts.sim_time, 0.1, opts.seed);
    out << "stochastic Petri net, " << opts.sim_time << " time units, "
        << r.total_firings << " firings\n";
    row("U_p", model.processor_utilization, r.processor_utilization, 4);
    row("lambda_net", model.message_rate, r.message_rate, 5);
    row("S_obs", model.network_latency, r.network_latency, 2);
    row("L_obs", model.memory_latency, r.memory_latency, 2);
  } else {
    sim::SimulationConfig sc;
    sc.mms = opts.config;
    sc.sim_time = opts.sim_time;
    sc.seed = opts.seed;
    const sim::SimulationResult r = sim::simulate_mms(sc);
    out << "discrete-event simulation, " << opts.sim_time
        << " time units, " << r.events << " events\n";
    row("U_p", model.processor_utilization, r.processor_utilization, 4);
    row("lambda_net", model.message_rate, r.message_rate, 5);
    row("S_obs", model.network_latency, r.network_latency, 2);
    row("L_obs", model.memory_latency, r.memory_latency, 2);
  }
  table.print(out);
  return warn_if_degraded(model, "model", out);
}

int cmd_run(const CliOptions& opts, std::ostream& out) {
  LATOL_REQUIRE(!opts.scenario_path.empty(),
                "run needs a scenario file: latol run <scenario.json>");
  const exp::Scenario scenario = exp::load_scenario(opts.scenario_path);
  std::filesystem::create_directories(opts.out_dir);

  exp::SolveCache cache;
  const std::string version = exp::build_version();
  const std::string cache_path = opts.cache_path.empty()
                                     ? opts.out_dir + "/latol_cache.json"
                                     : opts.cache_path;
  if (opts.run_cache) cache.load(cache_path, version);

  exp::RunOptions ropts;
  ropts.workers = opts.run_workers;
  ropts.cache = &cache;
  const exp::RunResult run = exp::run_scenario(scenario, ropts);

  const std::string base = opts.out_dir + "/" + scenario.name;
  if (opts.run_format == "csv" || opts.run_format == "both") {
    std::ofstream csv(base + ".csv");
    LATOL_REQUIRE(csv.good(), "cannot open `" << base << ".csv`");
    exp::write_results_csv(scenario, run, csv);
    out << "wrote " << base << ".csv\n";
  }
  if (opts.run_format == "json" || opts.run_format == "both") {
    io::write_json_file(base + ".json", exp::results_to_json(scenario, run));
    out << "wrote " << base << ".json\n";
  }
  io::write_json_file(base + ".manifest.json",
                      exp::manifest_to_json(scenario, run));
  out << "wrote " << base << ".manifest.json\n";
  if (opts.run_cache) cache.save(cache_path, version);

  const exp::RunStats& st = run.stats;
  out << "scenario `" << scenario.name << "`: " << st.grid_points
      << " grid points (" << st.unique_points << " unique), " << st.solves
      << " solves, " << st.cache_hits << " cache hits";
  if (st.cache_preloaded > 0) out << " (" << st.cache_preloaded << " preloaded)";
  out << ", " << st.workers << " workers, " << std::setprecision(3)
      << st.wall_seconds << " s\n";
  if (st.simulated_points > 0) {
    out << "validated " << st.simulated_points << " points with the "
        << scenario.validation->engine << " simulator\n";
  }
  for (const exp::PointResult& p : run.points) {
    if (p.model.error) {
      out << "[solve failed] point "
          << (&p - run.points.data()) << ": " << *p.model.error << '\n';
    }
  }
  if (st.failed_points == st.grid_points && st.grid_points > 0) {
    throw qn::SolverError(qn::SolverErrorCode::kNumerical,
                          "every grid point failed to solve");
  }
  if (st.failed_points > 0 || st.degraded_points > 0) {
    out << "warning: " << st.degraded_points << " degraded, "
        << st.failed_points << " failed of " << st.grid_points
        << " grid points\n";
    return 1;
  }
  return 0;
}

}  // namespace

int run_command(const CliOptions& opts, std::ostream& out) {
  if (opts.command == "help") {
    out << usage();
    return 0;
  }
  if (opts.command == "run") return cmd_run(opts, out);
  opts.config.validate();
  if (opts.command == "analyze") return cmd_analyze(opts, out);
  if (opts.command == "tolerance") return cmd_tolerance(opts, out);
  if (opts.command == "bottleneck") return cmd_bottleneck(opts, out);
  if (opts.command == "sweep") return cmd_sweep(opts, out);
  if (opts.command == "simulate") return cmd_simulate(opts, out);
  out << usage();
  return 2;
}

int cli_main(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err) {
  try {
    const CliOptions opts = parse_command_line(args);
    return run_command(opts, out);
  } catch (const InvalidArgument& e) {
    err << "latol: " << e.what() << '\n';
    return 2;  // usage error: bad command, flag, or parameter value
  } catch (const qn::SolverError& e) {
    err << "latol: " << e.what() << '\n';
    return 3;  // solve failed even through the fallback chain
  } catch (const std::exception& e) {
    err << "latol: " << e.what() << '\n';
    return 3;
  }
}

}  // namespace latol::cli
