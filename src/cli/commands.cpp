// Implementations of the `latol` CLI commands.
#include <cmath>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <map>
#include <optional>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

#include "cli/options.hpp"
#include "cli/serve_cmd.hpp"
#include "core/latol.hpp"
#include "exp/parameter.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "io/json.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "sim/mms_des.hpp"
#include "sim/mms_petri.hpp"
#include "sim/replicate.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace latol::cli {

namespace {

/// True when the invocation asked for any instrumentation artifact — the
/// commands then opt into convergence tracing (and, for scenarios, the
/// metric registry), which is off by default to keep the reproduction
/// paths byte-identical and overhead-free.
bool wants_instrumentation(const CliOptions& opts) {
  return !opts.trace_path.empty() || !opts.metrics_path.empty();
}

/// Installs a metric registry as the process default for the lifetime of
/// the command, restoring whatever was there before (tests nest CLIs).
class ScopedRegistry {
 public:
  ScopedRegistry() : previous_(obs::set_default_registry(&registry_)) {}
  ~ScopedRegistry() { obs::set_default_registry(previous_); }
  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;
  [[nodiscard]] obs::Snapshot snapshot() const { return registry_.snapshot(); }

 private:
  obs::Registry registry_;
  obs::Registry* previous_;
};

/// Installs a span TraceSink as the process default for the lifetime of
/// the command (--trace-out; DESIGN.md §14). `write` must only run after
/// the command has returned — every recording thread is quiet by then
/// (worker pools have joined), which is what write_chrome_trace requires.
class ScopedTraceSink {
 public:
  ScopedTraceSink() : previous_(obs::set_default_trace_sink(&sink_)) {}
  ~ScopedTraceSink() { obs::set_default_trace_sink(previous_); }
  ScopedTraceSink(const ScopedTraceSink&) = delete;
  ScopedTraceSink& operator=(const ScopedTraceSink&) = delete;

  void write(const std::string& path, std::ostream& out) {
    std::ofstream file(path);
    LATOL_REQUIRE(file.good(), "cannot open `" << path << "`");
    sink_.write_chrome_trace(file);
    out << "wrote span trace " << path << " (" << sink_.event_count()
        << " events)\n";
  }

 private:
  obs::TraceSink sink_;
  obs::TraceSink* previous_;
};

void write_json_artifact(const std::string& path, const io::Json& doc,
                         const char* what, std::ostream& out) {
  io::write_json_file(path, doc, 1);
  out << "wrote " << what << " " << path << '\n';
}

/// One solve attempt (a link of the robust chain) as trace JSON.
io::Json attempt_to_json(const qn::SolveAttempt& attempt) {
  io::Json o = io::Json::object();
  o.set("solver", qn::solver_kind_name(attempt.solver));
  o.set("success", attempt.success);
  o.set("iterations", static_cast<double>(attempt.iterations));
  o.set("wall_seconds", attempt.wall_seconds);
  if (!attempt.detail.empty()) o.set("detail", attempt.detail);
  io::Json residuals = io::Json::array();
  for (const double d : attempt.trace.residuals()) residuals.push_back(d);
  o.set("residuals", std::move(residuals));
  o.set("recorded", static_cast<double>(attempt.trace.total_recorded()));
  o.set("truncated", attempt.trace.truncated());
  return o;
}

/// The --metrics-out / --trace artifacts of a scenario run (`run` and
/// `profile` share this; DESIGN.md §9 documents both formats).
void emit_scenario_instrumentation(const CliOptions& opts,
                                   const exp::Scenario& scenario,
                                   const exp::RunResult& run,
                                   const obs::Snapshot* snapshot,
                                   std::ostream& out) {
  if (!opts.metrics_path.empty()) {
    write_json_artifact(opts.metrics_path,
                        exp::metrics_to_json(scenario, run, snapshot),
                        "metrics", out);
  }
  if (!opts.trace_path.empty()) {
    io::Json points = io::Json::array();
    for (std::size_t i = 0; i < run.points.size(); ++i) {
      const exp::PointResult& p = run.points[i];
      if (p.model.error) continue;
      io::Json o = io::Json::object();
      o.set("point", static_cast<double>(i));
      o.set("solver", qn::solver_kind_name(p.model.perf.solver));
      io::Json residuals = io::Json::array();
      for (const double d : p.model.perf.residual_history)
        residuals.push_back(d);
      o.set("residuals", std::move(residuals));
      points.push_back(std::move(o));
    }
    io::Json doc = io::Json::object();
    doc.set("format", "latol-trace-v1");
    doc.set("scenario", scenario.name);
    doc.set("points", std::move(points));
    write_json_artifact(opts.trace_path, doc, "trace", out);
  }
}

/// Warn about a solve that did not come back clean; returns the exit code
/// contribution (1 = degraded, 0 = clean). `what` names the solve in the
/// warning line (e.g. "actual system").
int warn_if_degraded(const core::MmsPerformance& perf, const char* what,
                     std::ostream& out) {
  if (!perf.degraded && perf.converged) return 0;
  out << "warning: " << what << " result is degraded: answered by "
      << qn::solver_kind_name(perf.solver)
      << (perf.converged ? "" : " (not converged)") << ", residual "
      << perf.residual << '\n';
  return 1;
}

void print_machine(const core::MmsConfig& cfg, std::ostream& out) {
  out << "machine: " << topo::topology_kind_name(cfg.topology) << " k="
      << cfg.k << " (P=" << cfg.num_processors() << "), n_t="
      << cfg.threads_per_processor << ", R=" << cfg.runlength
      << ", C=" << cfg.context_switch << ", p_remote=" << cfg.p_remote
      << ", L=" << cfg.memory_latency << ", S=" << cfg.switch_delay;
  if (cfg.traffic.pattern == topo::AccessPattern::kGeometric) {
    out << ", geometric p_sw=" << cfg.traffic.p_sw;
  } else {
    out << ", uniform";
  }
  if (cfg.traffic.hotspot_node >= 0 && cfg.traffic.hotspot_fraction > 0.0) {
    out << ", hotspot node " << cfg.traffic.hotspot_node << " ("
        << cfg.traffic.hotspot_fraction * 100 << "%)";
  }
  if (cfg.open_arrival_rate > 0.0) {
    out << ", open arrivals " << cfg.open_arrival_rate << "/node";
  }
  out << "\n\n";
}

int cmd_analyze(const CliOptions& opts, std::ostream& out) {
  print_machine(opts.config, out);
  // The default AMVA path keeps the full robust-chain report for the
  // solver line and trace artifacts; the alternative methods report their
  // own provenance through MmsPerformance.
  std::optional<core::RobustAnalysis> robust;
  core::MmsPerformance solo;
  if (opts.method == core::SolveMethod::kAmva) {
    qn::RobustOptions ropts;
    ropts.amva = opts.amva;
    ropts.record_traces = wants_instrumentation(opts);
    robust = core::analyze_robust(opts.config, ropts);
  } else {
    core::AnalysisOptions aopts;
    aopts.amva = opts.amva;
    aopts.method = opts.method;
    solo = core::analyze(opts.config, aopts);
  }
  const core::MmsPerformance& perf = robust ? robust->perf : solo;
  const std::string solver_line =
      robust ? robust->report.summary()
             : std::string(qn::solver_kind_name(perf.solver)) +
                   (perf.converged ? " (converged)" : " (not converged)");
  out << "U_p (processor utilization) = " << perf.processor_utilization
      << '\n'
      << "lambda (access rate)        = " << perf.access_rate << '\n'
      << "lambda_net (message rate)   = " << perf.message_rate << '\n'
      << "S_obs (network latency)     = " << perf.network_latency << '\n'
      << "L_obs (memory latency)      = " << perf.memory_latency << '\n'
      << "memory utilization          = " << perf.memory_utilization << '\n'
      << "max switch utilization      = " << perf.switch_utilization << '\n'
      << "d_avg                       = " << perf.average_distance << '\n';
  if (opts.config.open_arrival_rate > 0.0) {
    out << "open request latency        = " << perf.open_latency << '\n'
        << "open utilization (max)      = " << perf.open_utilization << '\n';
  }
  out << "solver                      = " << solver_line << '\n';
  if (!opts.trace_path.empty()) {
    io::Json attempts = io::Json::array();
    if (robust) {
      for (const qn::SolveAttempt& a : robust->report.attempts)
        attempts.push_back(attempt_to_json(a));
    }
    io::Json doc = io::Json::object();
    doc.set("format", "latol-trace-v1");
    doc.set("command", "analyze");
    doc.set("attempts", std::move(attempts));
    write_json_artifact(opts.trace_path, doc, "trace", out);
  }
  if (!opts.metrics_path.empty()) {
    io::Json point = io::Json::object();
    point.set("solver", qn::solver_kind_name(perf.solver));
    point.set("converged", perf.converged);
    point.set("degraded", perf.degraded);
    point.set("iterations", static_cast<double>(perf.solver_iterations));
    point.set("residual", perf.residual);
    point.set("residual_history_length",
              static_cast<double>(perf.residual_history.size()));
    point.set("littles_law_error", perf.littles_law_error);
    point.set("flow_balance_error", perf.flow_balance_error);
    point.set("wall_seconds", robust ? robust->report.wall_seconds : 0.0);
    io::Json warnings = io::Json::array();
    if (robust) {
      for (const std::string& w : robust->report.invariants.warnings)
        warnings.push_back(w);
    }
    io::Json doc = io::Json::object();
    doc.set("format", "latol-metrics-v2");
    doc.set("command", "analyze");
    doc.set("build", exp::build_version());
    doc.set("point", std::move(point));
    doc.set("warnings", std::move(warnings));
    write_json_artifact(opts.metrics_path, doc, "metrics", out);
  }
  return warn_if_degraded(perf, "analyze", out);
}

int cmd_tolerance(const CliOptions& opts, std::ostream& out) {
  print_machine(opts.config, out);
  const core::ToleranceResult net = core::tolerance_index(
      opts.config, core::Subsystem::kNetwork, opts.amva);
  const core::ToleranceResult mem = core::tolerance_index(
      opts.config, core::Subsystem::kMemory, opts.amva);
  out << "tol_network = " << net.index << " (" << core::zone_name(net.zone())
      << ")\n"
      << "tol_memory  = " << mem.index << " (" << core::zone_name(mem.zone())
      << ")\n"
      << "U_p = " << net.actual.processor_utilization
      << "  (ideal network: " << net.ideal.processor_utilization
      << ", ideal memory: " << mem.ideal.processor_utilization << ")\n";
  const core::Subsystem first = net.index < mem.index
                                    ? core::Subsystem::kNetwork
                                    : core::Subsystem::kMemory;
  out << "tune first: "
      << (first == core::Subsystem::kNetwork ? "network" : "memory")
      << " subsystem\n";
  int rc = warn_if_degraded(net.actual, "actual system", out);
  rc |= warn_if_degraded(net.ideal, "ideal network", out);
  rc |= warn_if_degraded(mem.ideal, "ideal memory", out);
  return rc;
}

int cmd_bottleneck(const CliOptions& opts, std::ostream& out) {
  print_machine(opts.config, out);
  const core::BottleneckAnalysis bn = core::bottleneck_analysis(opts.config);
  out << "d_avg                        = " << bn.d_avg << '\n'
      << "lambda_net saturation (Eq.4) = " << bn.lambda_net_sat << '\n'
      << "p_remote at saturation       = " << bn.p_remote_sat << '\n'
      << "critical p_remote (Eq.5)     = " << bn.p_remote_critical << '\n'
      << "unloaded one-way S_obs       = " << bn.unloaded_one_way << '\n'
      << "unloaded round trip          = " << bn.unloaded_round_trip << '\n'
      << "memory service rate          = " << bn.memory_service_rate << '\n';
  return 0;
}

int cmd_sweep(const CliOptions& opts, std::ostream& out) {
  print_machine(opts.config, out);
  LATOL_REQUIRE(opts.sweep_steps >= 1, "sweep needs >= 1 step");
  util::Table table({opts.sweep_param, "U_p", "S_obs", "L_obs", "lambda_net",
                     "tol_network", "zone", "solver"});
  qn::AmvaOptions amva = opts.amva;
  amva.record_trace = wants_instrumentation(opts);

  // Solve the steps in parallel (--jobs; 0 = shared pool). Each step
  // writes only its own slot, so the table below is byte-identical to the
  // old serial loop for every worker count; a step's exception is captured
  // and rethrown in step order before anything is printed, preserving the
  // serial loop's failure behavior and exit codes.
  struct SweepStep {
    double x = 0.0;
    core::ToleranceResult t;
    std::exception_ptr error;
  };
  std::vector<SweepStep> steps(static_cast<std::size_t>(opts.sweep_steps));
  util::parallel_for(
      steps.size(),
      [&](std::size_t s) {
        SweepStep& step = steps[s];
        step.x = opts.sweep_steps == 1
                     ? opts.sweep_from
                     : opts.sweep_from +
                           (opts.sweep_to - opts.sweep_from) *
                               static_cast<double>(s) / (opts.sweep_steps - 1);
        try {
          core::MmsConfig cfg = opts.config;
          // Integral parameters keep the historical sweep behavior of
          // truncating fractional grid values (a 1..8 sweep in 9 steps must
          // still work).
          exp::apply_parameter(cfg, opts.sweep_param,
                               exp::parameter_is_integral(opts.sweep_param)
                                   ? std::trunc(step.x)
                                   : step.x);
          step.t = core::tolerance_index(cfg, core::Subsystem::kNetwork, amva);
        } catch (...) {
          step.error = std::current_exception();
        }
      },
      opts.run_workers);
  for (const SweepStep& step : steps) {
    if (step.error) std::rethrow_exception(step.error);
  }

  io::Json metric_points = io::Json::array();
  io::Json trace_points = io::Json::array();
  int degraded = 0;
  for (int s = 0; s < opts.sweep_steps; ++s) {
    const SweepStep& step = steps[static_cast<std::size_t>(s)];
    const double x = step.x;
    const core::ToleranceResult& t = step.t;
    // Shared health predicate (DESIGN.md §7/§9): a sweep point is clean
    // only when both the actual and the ideal solve are.
    const bool clean =
        qn::solve_clean(false, t.actual.converged, t.actual.degraded) &&
        qn::solve_clean(false, t.ideal.converged, t.ideal.degraded);
    if (!clean) ++degraded;
    std::string solver = qn::solver_kind_name(t.actual.solver);
    if (!clean) solver += " [degraded]";
    table.add_row({util::Table::num(x, 3),
                   util::Table::num(t.actual.processor_utilization, 4),
                   util::Table::num(t.actual.network_latency, 2),
                   util::Table::num(t.actual.memory_latency, 2),
                   util::Table::num(t.actual.message_rate, 4),
                   util::Table::num(t.index, 4),
                   core::zone_name(t.zone()), std::move(solver)});
    if (!opts.metrics_path.empty()) {
      io::Json p = io::Json::object();
      p.set("index", static_cast<double>(s));
      p.set(opts.sweep_param, x);
      p.set("solver", qn::solver_kind_name(t.actual.solver));
      p.set("converged", t.actual.converged);
      p.set("degraded", !clean);
      p.set("iterations", static_cast<double>(t.actual.solver_iterations));
      p.set("residual", t.actual.residual);
      p.set("residual_history_length",
            static_cast<double>(t.actual.residual_history.size()));
      p.set("littles_law_error", t.actual.littles_law_error);
      p.set("flow_balance_error", t.actual.flow_balance_error);
      metric_points.push_back(std::move(p));
    }
    if (!opts.trace_path.empty()) {
      io::Json p = io::Json::object();
      p.set("point", static_cast<double>(s));
      p.set(opts.sweep_param, x);
      p.set("solver", qn::solver_kind_name(t.actual.solver));
      io::Json residuals = io::Json::array();
      for (const double d : t.actual.residual_history)
        residuals.push_back(d);
      p.set("residuals", std::move(residuals));
      trace_points.push_back(std::move(p));
    }
  }
  table.print(out);
  if (!opts.metrics_path.empty()) {
    io::Json doc = io::Json::object();
    doc.set("format", "latol-metrics-v2");
    doc.set("command", "sweep");
    doc.set("build", exp::build_version());
    doc.set("points", std::move(metric_points));
    write_json_artifact(opts.metrics_path, doc, "metrics", out);
  }
  if (!opts.trace_path.empty()) {
    io::Json doc = io::Json::object();
    doc.set("format", "latol-trace-v1");
    doc.set("command", "sweep");
    doc.set("points", std::move(trace_points));
    write_json_artifact(opts.trace_path, doc, "trace", out);
  }
  if (degraded > 0) {
    out << "warning: " << degraded << " of " << opts.sweep_steps
        << " sweep points are degraded (fallback solver or not converged)\n";
    return 1;
  }
  return 0;
}

/// Replication-mode body of `latol simulate --reps N`: mean over the
/// accepted replication prefix, with the 95% CI half-width on U_p. The
/// accepted prefix — and therefore every byte below — is identical for
/// any --jobs value (DESIGN.md §13).
int simulate_replicated(const CliOptions& opts,
                        const core::MmsPerformance& model,
                        util::Table& table, std::ostream& out) {
  sim::ReplicationPlan plan;
  plan.min_reps = std::min(opts.min_reps, opts.reps);
  plan.max_reps = opts.reps;
  plan.target_rel_half_width = opts.ci_rel;
  plan.workers = opts.run_workers;
  auto row = [&](const std::string& name, double m, double s, int prec) {
    const double dev = m != 0.0 ? 100.0 * (s - m) / m : 0.0;
    table.add_row({name, util::Table::num(m, prec), util::Table::num(s, prec),
                   util::Table::num(dev, 1)});
  };
  auto header = [&](const char* kind, std::size_t used, double hw) {
    out << kind << ", " << opts.sim_time << " time units, " << used << " of "
        << opts.reps << " replications (seeds " << opts.seed << ".."
        << opts.seed + used - 1 << "), U_p half-width " << hw << '\n';
  };
  if (opts.use_petri) {
    const auto run = sim::replicate_mms_petri(opts.config, opts.sim_time,
                                              0.1, opts.seed, plan);
    header("stochastic Petri net", run.runs.size(), run.half_width_95);
    double lam = 0, s_obs = 0, l_obs = 0;
    for (const sim::PetriMmsResult& r : run.runs) {
      lam += r.message_rate;
      s_obs += r.network_latency;
      l_obs += r.memory_latency;
    }
    const double n = static_cast<double>(run.runs.size());
    row("U_p", model.processor_utilization, run.mean, 4);
    row("lambda_net", model.message_rate, lam / n, 5);
    row("S_obs", model.network_latency, s_obs / n, 2);
    row("L_obs", model.memory_latency, l_obs / n, 2);
  } else {
    sim::SimulationConfig sc;
    sc.mms = opts.config;
    sc.sim_time = opts.sim_time;
    sc.seed = opts.seed;
    const auto run = sim::replicate_mms(sc, plan);
    header("discrete-event simulation", run.runs.size(), run.half_width_95);
    double lam = 0, s_obs = 0, l_obs = 0, open_lat = 0;
    for (const sim::SimulationResult& r : run.runs) {
      lam += r.message_rate;
      s_obs += r.network_latency;
      l_obs += r.memory_latency;
      open_lat += r.open_latency;
    }
    const double n = static_cast<double>(run.runs.size());
    row("U_p", model.processor_utilization, run.mean, 4);
    row("lambda_net", model.message_rate, lam / n, 5);
    row("S_obs", model.network_latency, s_obs / n, 2);
    row("L_obs", model.memory_latency, l_obs / n, 2);
    if (opts.config.open_arrival_rate > 0.0) {
      row("open_latency", model.open_latency, open_lat / n, 2);
    }
  }
  table.print(out);
  return warn_if_degraded(model, "model", out);
}

int cmd_simulate(const CliOptions& opts, std::ostream& out) {
  print_machine(opts.config, out);
  const core::MmsPerformance model = core::analyze(opts.config, opts.amva);
  util::Table table({"measure", "model", "simulation", "dev%"});
  if (opts.reps > 1) return simulate_replicated(opts, model, table, out);
  auto row = [&](const std::string& name, double m, double s, int prec) {
    const double dev = m != 0.0 ? 100.0 * (s - m) / m : 0.0;
    table.add_row({name, util::Table::num(m, prec), util::Table::num(s, prec),
                   util::Table::num(dev, 1)});
  };
  if (opts.use_petri) {
    const sim::PetriMmsResult r =
        sim::simulate_mms_petri(opts.config, opts.sim_time, 0.1, opts.seed);
    out << "stochastic Petri net, " << opts.sim_time << " time units, "
        << r.total_firings << " firings\n";
    row("U_p", model.processor_utilization, r.processor_utilization, 4);
    row("lambda_net", model.message_rate, r.message_rate, 5);
    row("S_obs", model.network_latency, r.network_latency, 2);
    row("L_obs", model.memory_latency, r.memory_latency, 2);
  } else {
    sim::SimulationConfig sc;
    sc.mms = opts.config;
    sc.sim_time = opts.sim_time;
    sc.seed = opts.seed;
    const sim::SimulationResult r = sim::simulate_mms(sc);
    out << "discrete-event simulation, " << opts.sim_time
        << " time units, " << r.events << " events\n";
    row("U_p", model.processor_utilization, r.processor_utilization, 4);
    row("lambda_net", model.message_rate, r.message_rate, 5);
    row("S_obs", model.network_latency, r.network_latency, 2);
    row("L_obs", model.memory_latency, r.memory_latency, 2);
    if (opts.config.open_arrival_rate > 0.0) {
      row("open_latency", model.open_latency, r.open_latency, 2);
    }
  }
  table.print(out);
  return warn_if_degraded(model, "model", out);
}

/// Streaming `latol run` (--stream / --shard / --warm-start): row-by-row
/// execution with bounded memory. Results go straight to CSV/JSONL sinks;
/// no RunResult is ever materialized, so the per-point instrumentation
/// paths (--trace, --metrics-out) are rejected up front. Span tracing
/// (--trace-out) still works — it is sink-based, not result-based.
int cmd_run_stream(const CliOptions& opts, std::ostream& out) {
  LATOL_REQUIRE(opts.trace_path.empty() && opts.metrics_path.empty(),
                "streaming run (--stream/--shard/--warm-start) does not "
                "support --trace/--metrics-out (they need the materialized "
                "results); drop the flag or run without --stream");
  exp::Scenario scenario = exp::load_scenario(opts.scenario_path);
  std::filesystem::create_directories(opts.out_dir);

  exp::SolveCache cache(opts.run_workers > 1 ? opts.run_workers : 8);
  const std::string version = exp::build_version();
  const std::string cache_path = opts.cache_path.empty()
                                     ? opts.out_dir + "/latol_cache.json"
                                     : opts.cache_path;
  if (opts.run_cache) {
    std::string cache_warning;
    cache.load(cache_path, version, &cache_warning);
    if (!cache_warning.empty()) out << "warning: " << cache_warning << '\n';
  }

  exp::RunOptions ropts;
  ropts.workers = opts.run_workers;
  // With --no-cache there is nothing to persist, so let the runner use
  // its bounded transient cache — an unbounded store would grow with the
  // unique-point count and defeat the streaming memory bound.
  ropts.cache = opts.run_cache ? &cache : nullptr;
  ropts.point_timeout_ms = opts.point_timeout_ms;
  ropts.warm_start = opts.warm_start;
  ropts.shard_index = opts.shard_index;
  ropts.shard_count = opts.shard_count;
  ropts.block_points = opts.block_points;

  // Shards write side-by-side artifacts (<name>.shard<i>of<n>.*) that
  // scripts/merge_shards.py reassembles into the single-process files.
  std::string base = opts.out_dir + "/" + scenario.name;
  if (opts.shard_count > 1) {
    base += ".shard" + std::to_string(opts.shard_index) + "of" +
            std::to_string(opts.shard_count);
  }
  // In stream mode the row-oriented JSON shape is JSONL; a monolithic
  // .json document would defeat the bounded-memory point.
  const bool want_csv =
      opts.run_format == "csv" || opts.run_format == "both";
  const bool want_jsonl = opts.run_format == "jsonl" ||
                          opts.run_format == "json" ||
                          opts.run_format == "both";
  std::ofstream csv;
  std::ofstream jsonl;
  exp::StreamSinks sinks;
  if (want_csv) {
    csv.open(base + ".csv");
    LATOL_REQUIRE(csv.good(), "cannot open `" << base << ".csv`");
    sinks.csv = &csv;
  }
  if (want_jsonl) {
    jsonl.open(base + ".jsonl");
    LATOL_REQUIRE(jsonl.good(), "cannot open `" << base << ".jsonl`");
    sinks.jsonl = &jsonl;
  }

  const exp::RunStats st = exp::run_scenario_stream(scenario, ropts, sinks);

  if (want_csv) out << "wrote " << base << ".csv\n";
  if (want_jsonl) out << "wrote " << base << ".jsonl\n";
  io::write_json_file(base + ".manifest.json",
                      exp::manifest_to_json(scenario, st));
  out << "wrote " << base << ".manifest.json\n";
  if (opts.run_cache) cache.save(cache_path, version);

  out << "scenario `" << scenario.name << "` (streamed): " << st.grid_points
      << " grid points, " << st.rows_owned << "/" << st.rows_total
      << " rows";
  if (st.shard_count > 1) {
    out << " (shard " << st.shard_index << "/" << st.shard_count << ")";
  }
  out << ", " << st.solves << " solves, " << st.cache_hits << " cache hits, "
      << st.workers << " workers, " << std::setprecision(3)
      << st.wall_seconds << " s\n";
  if (st.warm) {
    out << "warm start: " << st.warm_points << " of " << st.unique_points
        << " points hinted, " << st.total_iterations
        << " solver iterations total\n";
  }
  if (st.simulated_points > 0) {
    out << "validated " << st.simulated_points << " points with the "
        << scenario.validation->engine << " simulator\n";
  }
  if (st.failed_points == st.unique_points && st.unique_points > 0) {
    throw qn::SolverError(qn::SolverErrorCode::kNumerical,
                          "every grid point failed to solve");
  }
  if (st.failed_points > 0 || st.degraded_points > 0) {
    out << "warning: " << st.degraded_points << " degraded, "
        << st.failed_points << " failed of " << st.unique_points
        << " owned points";
    if (st.deadline_points > 0) {
      out << " (" << st.deadline_points << " hit the point timeout)";
    }
    out << '\n';
    return 1;
  }
  return 0;
}

int cmd_run(const CliOptions& opts, std::ostream& out) {
  LATOL_REQUIRE(!opts.scenario_path.empty(),
                "run needs a scenario file: latol run <scenario.json>");
  if (opts.run_stream || opts.shard_count > 1 || opts.warm_start) {
    return cmd_run_stream(opts, out);
  }
  LATOL_REQUIRE(opts.run_format != "jsonl",
                "--format jsonl needs the streaming runner; add --stream");
  exp::Scenario scenario = exp::load_scenario(opts.scenario_path);
  std::filesystem::create_directories(opts.out_dir);

  // Instrumented runs record solver traces; the flag is part of the
  // solve-cache key, so traced and untraced runs never share entries and
  // the untraced cache file stays byte-stable.
  const bool instrumented = wants_instrumentation(opts);
  scenario.amva.record_trace = instrumented;
  std::optional<ScopedRegistry> registry;
  if (instrumented) registry.emplace();

  exp::SolveCache cache;
  const std::string version = exp::build_version();
  const std::string cache_path = opts.cache_path.empty()
                                     ? opts.out_dir + "/latol_cache.json"
                                     : opts.cache_path;
  if (opts.run_cache) {
    std::string cache_warning;
    cache.load(cache_path, version, &cache_warning);
    if (!cache_warning.empty()) out << "warning: " << cache_warning << '\n';
  }

  exp::RunOptions ropts;
  ropts.workers = opts.run_workers;
  ropts.cache = &cache;
  ropts.point_timeout_ms = opts.point_timeout_ms;
  const exp::RunResult run = exp::run_scenario(scenario, ropts);

  const std::string base = opts.out_dir + "/" + scenario.name;
  if (opts.run_format == "csv" || opts.run_format == "both") {
    std::ofstream csv(base + ".csv");
    LATOL_REQUIRE(csv.good(), "cannot open `" << base << ".csv`");
    exp::write_results_csv(scenario, run, csv);
    out << "wrote " << base << ".csv\n";
  }
  if (opts.run_format == "json" || opts.run_format == "both") {
    io::write_json_file(base + ".json", exp::results_to_json(scenario, run));
    out << "wrote " << base << ".json\n";
  }
  io::write_json_file(base + ".manifest.json",
                      exp::manifest_to_json(scenario, run));
  out << "wrote " << base << ".manifest.json\n";
  if (opts.run_cache) cache.save(cache_path, version);
  if (instrumented) {
    const obs::Snapshot snapshot = registry->snapshot();
    emit_scenario_instrumentation(opts, scenario, run, &snapshot, out);
  }

  const exp::RunStats& st = run.stats;
  out << "scenario `" << scenario.name << "`: " << st.grid_points
      << " grid points (" << st.unique_points << " unique), " << st.solves
      << " solves, " << st.cache_hits << " cache hits";
  if (st.cache_preloaded > 0) out << " (" << st.cache_preloaded << " preloaded)";
  out << ", " << st.workers << " workers, " << std::setprecision(3)
      << st.wall_seconds << " s\n";
  if (st.simulated_points > 0) {
    out << "validated " << st.simulated_points << " points with the "
        << scenario.validation->engine << " simulator\n";
  }
  for (const exp::PointResult& p : run.points) {
    if (p.model.error) {
      out << "[solve failed] point "
          << (&p - run.points.data()) << ": " << *p.model.error << '\n';
    }
  }
  if (st.failed_points == st.grid_points && st.grid_points > 0) {
    throw qn::SolverError(qn::SolverErrorCode::kNumerical,
                          "every grid point failed to solve");
  }
  if (st.failed_points > 0 || st.degraded_points > 0) {
    out << "warning: " << st.degraded_points << " degraded, "
        << st.failed_points << " failed of " << st.grid_points
        << " grid points";
    if (st.deadline_points > 0) {
      out << " (" << st.deadline_points << " hit the point timeout)";
    }
    out << '\n';
    return 1;
  }
  return 0;
}

/// Scientific notation for residuals/errors that span many decades (the
/// fixed-precision Table::num would render 8e-11 as 0.000).
std::string sci(double v) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(2) << v;
  return os.str();
}

/// Collect every numeric leaf of a metrics document as "dotted.path" ->
/// value. Arrays (points, warnings, histogram buckets) and strings
/// (format, build) are not scalar metrics and are skipped, so the walk
/// works for every latol-metrics version and for both the per-command
/// and the scenario document shapes.
void flatten_metrics(const io::Json& node, const std::string& prefix,
                     std::map<std::string, double>& flat) {
  if (node.is_number()) {
    if (!prefix.empty()) flat[prefix] = node.as_number();
    return;
  }
  if (node.is_bool()) {
    if (!prefix.empty()) flat[prefix] = node.as_bool() ? 1.0 : 0.0;
    return;
  }
  if (!node.is_object()) return;
  for (const auto& [key, value] : node.as_object()) {
    flatten_metrics(value, prefix.empty() ? key : prefix + "." + key, flat);
  }
}

/// General-format number for the diff table: counts print as integers,
/// seconds keep enough digits to see sub-millisecond shifts.
std::string diff_num(double v) {
  std::ostringstream os;
  os << std::setprecision(6) << v;
  return os.str();
}

/// `latol profile --diff A.json B.json`: compare two metrics documents
/// (any latol-metrics version) metric by metric. Prints one row per
/// scalar found in either document — stages, cache traffic, registry
/// counters/gauges/timers, histogram count/sum — with the absolute delta
/// and the percent change relative to A.
int cmd_profile_diff(const CliOptions& opts, std::ostream& out) {
  const io::Json a = io::parse_json_file(opts.profile_inputs[0]);
  const io::Json b = io::parse_json_file(opts.profile_inputs[1]);
  for (const io::Json* doc : {&a, &b}) {
    LATOL_REQUIRE(doc->is_object() && doc->contains("format"),
                  "not a latol metrics document (no `format` key)");
  }
  std::map<std::string, double> fa;
  std::map<std::string, double> fb;
  flatten_metrics(a, "", fa);
  flatten_metrics(b, "", fb);

  out << "metrics diff\n"
      << "  A: " << opts.profile_inputs[0] << " ("
      << a.find("format")->as_string() << ")\n"
      << "  B: " << opts.profile_inputs[1] << " ("
      << b.find("format")->as_string() << ")\n\n";

  // Union of metric names in lexicographic order (std::map keeps the
  // output stable regardless of document member order).
  std::map<std::string, std::pair<const double*, const double*>> merged;
  for (const auto& [name, value] : fa) merged[name].first = &value;
  for (const auto& [name, value] : fb) merged[name].second = &value;

  util::Table table({"metric", "A", "B", "delta", "delta%"});
  for (const auto& [name, values] : merged) {
    const double* va = values.first;
    const double* vb = values.second;
    std::string delta = "-";
    std::string pct = "-";
    if (va != nullptr && vb != nullptr) {
      const double d = *vb - *va;
      delta = diff_num(d);
      if (*va != 0.0) {
        pct = util::Table::num(100.0 * d / *va, 1) + "%";
      } else if (d == 0.0) {
        pct = util::Table::num(0.0, 1) + "%";
      }
    }
    table.add_row({name, va != nullptr ? diff_num(*va) : "-",
                   vb != nullptr ? diff_num(*vb) : "-", std::move(delta),
                   std::move(pct)});
  }
  table.print(out);
  return 0;
}

/// `latol profile <scenario.json>`: solve the scenario with convergence
/// tracing and the metric registry enabled, then print where the time
/// went and how every point converged. Uses a transient solve cache (no
/// load/save) so the timings reflect real solves; exit semantics match
/// `run` (0 clean, 1 degraded/failed points, 3 everything failed).
int cmd_profile(const CliOptions& opts, std::ostream& out) {
  if (opts.profile_diff) return cmd_profile_diff(opts, out);
  LATOL_REQUIRE(
      !opts.scenario_path.empty(),
      "profile needs a scenario file: latol profile <scenario.json>");
  exp::Scenario scenario = exp::load_scenario(opts.scenario_path);
  scenario.amva.record_trace = true;
  ScopedRegistry registry;

  exp::SolveCache cache;
  exp::RunOptions ropts;
  ropts.workers = opts.run_workers;
  ropts.cache = &cache;
  const exp::RunResult run = exp::run_scenario(scenario, ropts);
  const exp::RunStats& st = run.stats;

  out << "profile of scenario `" << scenario.name << "`: " << st.grid_points
      << " grid points (" << st.unique_points << " unique), " << st.solves
      << " solves, " << st.workers << " workers\n\n";

  // Stage table: where run_scenario's wall time went (loading and output
  // happen outside it, so shares are relative to the run itself).
  util::Table stages({"stage", "seconds", "share"});
  const double wall = st.wall_seconds > 0 ? st.wall_seconds : 1.0;
  auto stage_row = [&](const char* name, double s) {
    stages.add_row({name, util::Table::num(s, 6),
                    util::Table::num(100.0 * s / wall, 1) + "%"});
  };
  stage_row("expand", st.expand_seconds);
  stage_row("solve", st.solve_seconds);
  stage_row("validate", st.validate_seconds);
  stage_row("total", st.wall_seconds);
  stages.print(out);
  out << '\n';

  // Per-solver timers from the registry: unlike the stage table these
  // count every robust_solve link, including the ideal-system solves
  // behind tolerance indices.
  const obs::Snapshot snapshot = registry.snapshot();
  util::Table timers({"timer", "calls", "seconds"});
  for (const obs::Snapshot::TimerSample& t : snapshot.timers) {
    timers.add_row({t.name, std::to_string(t.count),
                    util::Table::num(t.seconds, 6)});
  }
  if (timers.rows() > 0) {
    timers.print(out);
    out << '\n';
  }

  // Simulator counters (scenarios with a `sim` validation block): event,
  // firing, queue-operation, and RNG-draw totals across every
  // replication the run executed.
  util::Table sim_counters({"counter", "value"});
  for (const obs::Snapshot::CounterSample& c : snapshot.counters) {
    if (c.name.rfind("sim.", 0) == 0)
      sim_counters.add_row({c.name, std::to_string(c.value)});
  }
  if (sim_counters.rows() > 0) {
    sim_counters.print(out);
    out << '\n';
  }

  // Convergence table: one row per grid point, in grid order.
  util::Table conv({"point", "solver", "iters", "residual", "trace",
                    "littles_err", "flow_err", "cache"});
  for (std::size_t i = 0; i < run.points.size(); ++i) {
    const exp::PointResult& p = run.points[i];
    const char* cache_cell = p.cache_hit ? "hit" : "miss";
    if (p.model.error) {
      conv.add_row({std::to_string(i), "failed", "-", "-", "-", "-", "-",
                    cache_cell});
      continue;
    }
    const core::MmsPerformance& perf = p.model.perf;
    std::string solver = qn::solver_kind_name(perf.solver);
    if (!qn::solve_clean(false, perf.converged, perf.degraded))
      solver += " [degraded]";
    conv.add_row({std::to_string(i), std::move(solver),
                  std::to_string(perf.solver_iterations), sci(perf.residual),
                  std::to_string(perf.residual_history.size()),
                  sci(perf.littles_law_error), sci(perf.flow_balance_error),
                  cache_cell});
  }
  conv.print(out);
  out << "cache: " << cache.hits() << " hits, " << cache.misses()
      << " misses, " << cache.evictions() << " evictions\n";

  emit_scenario_instrumentation(opts, scenario, run, &snapshot, out);

  if (st.failed_points == st.grid_points && st.grid_points > 0) {
    throw qn::SolverError(qn::SolverErrorCode::kNumerical,
                          "every grid point failed to solve");
  }
  if (st.failed_points > 0 || st.degraded_points > 0) {
    out << "warning: " << st.degraded_points << " degraded, "
        << st.failed_points << " failed of " << st.grid_points
        << " grid points\n";
    return 1;
  }
  return 0;
}

int dispatch_command(const CliOptions& opts, std::ostream& out) {
  if (opts.command == "run") return cmd_run(opts, out);
  if (opts.command == "profile") return cmd_profile(opts, out);
  if (opts.command == "serve") return cmd_serve(opts, out);
  opts.config.validate();
  if (opts.command == "analyze") return cmd_analyze(opts, out);
  if (opts.command == "tolerance") return cmd_tolerance(opts, out);
  if (opts.command == "bottleneck") return cmd_bottleneck(opts, out);
  if (opts.command == "sweep") return cmd_sweep(opts, out);
  if (opts.command == "simulate") return cmd_simulate(opts, out);
  out << usage();
  return 2;
}

}  // namespace

int run_command(const CliOptions& opts, std::ostream& out) {
  if (opts.command == "help") {
    out << usage();
    return 0;
  }
  // --trace-out: spans record for the whole command (for `serve`, the
  // whole daemon lifetime — run() joins its workers before returning, so
  // the write below sees a quiescent sink). Note this deliberately does
  // NOT flip wants_instrumentation(): span tracing must never alter the
  // solve path or the cache key (byte-identity; DESIGN.md §14).
  if (opts.trace_out_path.empty()) return dispatch_command(opts, out);
  ScopedTraceSink trace;
  const int rc = dispatch_command(opts, out);
  trace.write(opts.trace_out_path, out);
  return rc;
}

int cli_main(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err) {
  try {
    const CliOptions opts = parse_command_line(args);
    return run_command(opts, out);
  } catch (const InvalidArgument& e) {
    err << "latol: " << e.what() << '\n';
    return 2;  // usage error: bad command, flag, or parameter value
  } catch (const qn::SolverError& e) {
    err << "latol: " << e.what() << '\n';
    return 3;  // solve failed even through the fallback chain
  } catch (const std::exception& e) {
    err << "latol: " << e.what() << '\n';
    return 3;
  }
}

}  // namespace latol::cli
