// Command-line interface of the `latol` tool.
//
// The parser and the command implementations live in a library so they
// can be unit-tested without spawning processes; `main.cpp` only forwards
// argv and prints errors.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/mms_config.hpp"
#include "core/mms_model.hpp"
#include "qn/mva_approx.hpp"

namespace latol::cli {

/// Parsed invocation.
struct CliOptions {
  /// analyze | tolerance | bottleneck | sweep | simulate | run | profile |
  /// serve | help
  std::string command = "help";
  core::MmsConfig config = core::MmsConfig::paper_defaults();

  /// Solver knobs (--max-iterations); the commands degrade through the
  /// fallback chain when the budget is too small, and warn.
  qn::AmvaOptions amva{};
  /// --solver amva|linearizer|fesc: analytical machinery for `analyze`
  /// (fesc = hierarchical decomposition, symmetric configs only).
  /// Scenario files select theirs via solver.method.
  core::SolveMethod method = core::SolveMethod::kAmva;

  // --- sweep ---
  std::string sweep_param = "p_remote";  ///< p_remote|threads|runlength|switch_delay|memory_latency|k
  double sweep_from = 0.0;
  double sweep_to = 0.8;
  int sweep_steps = 9;

  // --- simulate ---
  double sim_time = 100000.0;
  std::uint64_t seed = 1;
  bool use_petri = false;  ///< STPN instead of the direct event simulator
  /// --reps N: independent replications (seeds seed..seed+N-1) run in
  /// parallel with deterministic early stopping (DESIGN.md §13).
  std::size_t reps = 1;
  std::size_t min_reps = 2;  ///< --min-reps: floor before early stopping
  /// --ci-rel X: stop once the 95% CI half-width of U_p is within X of
  /// the mean (0 = run all --reps).
  double ci_rel = 0.0;

  // --- instrumentation (analyze/sweep/run/profile; DESIGN.md §9, §14) ---
  std::string trace_path;    ///< --trace FILE: convergence traces as JSON
  std::string metrics_path;  ///< --metrics-out FILE: metrics document
  /// --trace-out FILE: span trace as Chrome trace_event JSON (loadable in
  /// chrome://tracing / Perfetto; analyze/sweep/run/simulate/serve).
  std::string trace_out_path;

  // --- profile --diff ---
  bool profile_diff = false;  ///< --diff: compare two metrics documents
  /// The two positional metrics JSON paths when --diff is given (A, B);
  /// without --diff the single positional is `scenario_path`.
  std::vector<std::string> profile_inputs;

  // --- run/profile (scenario batch) ---
  std::string scenario_path;       ///< positional `latol run <scenario.json>`
  std::string out_dir = ".";       ///< --out DIR
  std::string run_format = "both"; ///< --format json|csv|both|jsonl
  std::size_t run_workers = 0;  ///< --workers/--jobs N (0 = scenario/shared)
  bool run_cache = true;           ///< --no-cache disables persistence
  std::string cache_path;          ///< --cache FILE (default <out>/latol_cache.json)
  /// --point-timeout MS: per-point wall-clock budget for `run`; a point
  /// exceeding it is marked failed with error deadline-exceeded and
  /// counted in the manifest's deadline_points (0 = no budget).
  double point_timeout_ms = 0.0;
  /// --stream: bounded-memory row-by-row execution (large sweeps). Forced
  /// on by --shard and --warm-start.
  bool run_stream = false;
  /// --warm-start: chain extrapolated solver seeds along each grid row
  /// (DESIGN.md §15); implies --stream.
  bool warm_start = false;
  /// --shard I/N: solve only rows r with r % N == I (deterministic split
  /// across worker processes; scripts/merge_shards.py reassembles).
  /// Implies --stream. Defaults to the whole grid (0/1).
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  /// --block-points N: streamed-emission buffer bound (0 = default 4096).
  std::size_t block_points = 0;

  // --- serve ---
  std::string serve_config_path;  ///< positional `latol serve <config.json>`
};

/// Parse `args` (argv[1:]). Throws latol::InvalidArgument with a
/// user-facing message on unknown flags or malformed values.
[[nodiscard]] CliOptions parse_command_line(
    const std::vector<std::string>& args);

/// Execute the parsed command, writing the report to `out`. Returns the
/// process exit code: 0 on a clean result, 1 when the result is degraded
/// (a fallback solver answered or the solve did not converge), 2 for an
/// unknown command. Throws on invalid input or solver failure — cli_main
/// maps those to exit codes 2 and 3.
int run_command(const CliOptions& options, std::ostream& out);

/// Full CLI entry point used by main(): parse, run, and map errors to the
/// documented exit codes (0 ok, 1 degraded, 2 usage error, 3 solve
/// failed). Never throws.
int cli_main(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err);

/// The help text (also printed by `latol help`).
[[nodiscard]] std::string usage();

}  // namespace latol::cli
