// Wiring between the CLI and the analysis daemon (`latol serve`).
//
// The serve library sits below the CLI, yet its POST /v1/<command>
// responses must be byte-identical to `latol <command>` stdout — so the
// CLI hands the daemon its own entry point as a serve::CommandRunner
// callback instead of the daemon linking the CLI (DESIGN.md §11).
#pragma once

#include <iosfwd>

#include "cli/options.hpp"
#include "serve/server.hpp"

namespace latol::cli {

/// The CLI entry point packaged for the daemon: parse `args` with
/// parse_command_line, inject `cancel` as the solver deadline, run the
/// command, and map exceptions to exit codes the way cli_main does —
/// plus serve::kDeadlineExit when the solve died of deadline-exceeded.
/// Never throws (the daemon's workers must not unwind).
[[nodiscard]] serve::CommandRunner make_command_runner();

/// `latol serve <config.json>`: load the server config, wire
/// SIGTERM/SIGINT to a graceful drain, and run the daemon until a stop
/// is requested. Returns the process exit code (0 clean drain, 4 runtime
/// failure); config errors throw InvalidArgument, which cli_main maps
/// to 2. Lifecycle lines ("listening on host:port", drain summary) go
/// to `out`.
int cmd_serve(const CliOptions& options, std::ostream& out);

}  // namespace latol::cli
