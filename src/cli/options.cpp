#include "cli/options.hpp"

#include <charconv>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace latol::cli {

namespace {

double parse_double(const std::string& flag, const std::string& value) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    LATOL_REQUIRE(used == value.size(), "trailing junk");
    return v;
  } catch (const std::exception&) {
    throw InvalidArgument("flag " + flag + " expects a number, got `" +
                          value + "`");
  }
}

int parse_int(const std::string& flag, const std::string& value) {
  int out = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc() || ptr != value.data() + value.size()) {
    throw InvalidArgument("flag " + flag + " expects an integer, got `" +
                          value + "`");
  }
  return out;
}

topo::TopologyKind parse_topology(const std::string& value) {
  if (value == "torus") return topo::TopologyKind::kTorus2D;
  if (value == "mesh") return topo::TopologyKind::kMesh2D;
  if (value == "ring") return topo::TopologyKind::kRing;
  if (value == "hypercube") return topo::TopologyKind::kHypercube;
  throw InvalidArgument("unknown topology `" + value +
                        "` (torus|mesh|ring|hypercube)");
}

topo::AccessPattern parse_pattern(const std::string& value) {
  if (value == "geometric") return topo::AccessPattern::kGeometric;
  if (value == "uniform") return topo::AccessPattern::kUniform;
  throw InvalidArgument("unknown pattern `" + value +
                        "` (geometric|uniform)");
}

core::SolveMethod parse_solver(const std::string& value) {
  if (value == "amva") return core::SolveMethod::kAmva;
  if (value == "linearizer") return core::SolveMethod::kLinearizer;
  if (value == "fesc") return core::SolveMethod::kHierarchical;
  throw InvalidArgument("unknown solver `" + value +
                        "` (amva|linearizer|fesc)");
}

}  // namespace

CliOptions parse_command_line(const std::vector<std::string>& args) {
  CliOptions opts;
  if (args.empty()) return opts;

  opts.command = args[0];
  const bool known =
      opts.command == "analyze" || opts.command == "tolerance" ||
      opts.command == "bottleneck" || opts.command == "sweep" ||
      opts.command == "simulate" || opts.command == "run" ||
      opts.command == "profile" || opts.command == "serve" ||
      opts.command == "help";
  if (!known) {
    throw InvalidArgument("unknown command `" + opts.command + "`\n" +
                          usage());
  }

  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& flag = args[i];
    auto value = [&]() -> const std::string& {
      LATOL_REQUIRE(i + 1 < args.size(), "flag " << flag << " needs a value");
      return args[++i];
    };
    if (opts.command == "profile" && !flag.starts_with("--")) {
      // Deferred: one scenario file normally, two metrics files with
      // --diff — validated after the whole line is parsed.
      opts.profile_inputs.push_back(flag);
    } else if (opts.command == "run" && !flag.starts_with("--")) {
      LATOL_REQUIRE(opts.scenario_path.empty(),
                    opts.command << " takes one scenario file, got `"
                                 << opts.scenario_path << "` and `" << flag
                                 << "`");
      opts.scenario_path = flag;
    } else if (opts.command == "serve" && !flag.starts_with("--")) {
      LATOL_REQUIRE(opts.serve_config_path.empty(),
                    "serve takes one config file, got `"
                        << opts.serve_config_path << "` and `" << flag << "`");
      opts.serve_config_path = flag;
    } else if (flag == "--out") {
      opts.out_dir = value();
    } else if (flag == "--format") {
      opts.run_format = value();
      LATOL_REQUIRE(opts.run_format == "json" || opts.run_format == "csv" ||
                        opts.run_format == "both" ||
                        opts.run_format == "jsonl",
                    "--format expects json|csv|both|jsonl, got `"
                        << opts.run_format << "`");
    } else if (flag == "--stream") {
      opts.run_stream = true;
    } else if (flag == "--warm-start") {
      opts.warm_start = true;
    } else if (flag == "--shard") {
      const std::string& spec = value();
      const std::size_t slash = spec.find('/');
      LATOL_REQUIRE(slash != std::string::npos,
                    "--shard expects I/N (e.g. 0/4), got `" << spec << "`");
      const int index = parse_int(flag, spec.substr(0, slash));
      const int count = parse_int(flag, spec.substr(slash + 1));
      LATOL_REQUIRE(count >= 1, "--shard count must be >= 1, got " << count);
      LATOL_REQUIRE(index >= 0 && index < count,
                    "--shard index must be in [0, " << count << "), got "
                                                    << index);
      opts.shard_index = static_cast<std::size_t>(index);
      opts.shard_count = static_cast<std::size_t>(count);
    } else if (flag == "--block-points") {
      const int n = parse_int(flag, value());
      LATOL_REQUIRE(n >= 1, "--block-points must be >= 1");
      opts.block_points = static_cast<std::size_t>(n);
    } else if (flag == "--workers" || flag == "--jobs") {
      const int n = parse_int(flag, value());
      LATOL_REQUIRE(n >= 0, flag << " must be >= 0");
      opts.run_workers = static_cast<std::size_t>(n);
    } else if (flag == "--cache") {
      opts.cache_path = value();
    } else if (flag == "--no-cache") {
      opts.run_cache = false;
    } else if (flag == "--point-timeout") {
      opts.point_timeout_ms = parse_double(flag, value());
      LATOL_REQUIRE(opts.point_timeout_ms >= 0,
                    "--point-timeout must be >= 0 (milliseconds)");
    } else if (flag == "--trace") {
      opts.trace_path = value();
    } else if (flag == "--trace-out") {
      opts.trace_out_path = value();
    } else if (flag == "--metrics-out") {
      opts.metrics_path = value();
    } else if (flag == "--diff") {
      LATOL_REQUIRE(opts.command == "profile",
                    "--diff only applies to `latol profile`");
      opts.profile_diff = true;
    } else if (flag == "--k") {
      opts.config.k = parse_int(flag, value());
    } else if (flag == "--topology") {
      opts.config.topology = parse_topology(value());
    } else if (flag == "--threads") {
      opts.config.threads_per_processor = parse_int(flag, value());
    } else if (flag == "--runlength") {
      opts.config.runlength = parse_double(flag, value());
    } else if (flag == "--context-switch") {
      opts.config.context_switch = parse_double(flag, value());
    } else if (flag == "--p-remote") {
      opts.config.p_remote = parse_double(flag, value());
    } else if (flag == "--p-sw") {
      opts.config.traffic.p_sw = parse_double(flag, value());
    } else if (flag == "--pattern") {
      opts.config.traffic.pattern = parse_pattern(value());
    } else if (flag == "--memory-latency") {
      opts.config.memory_latency = parse_double(flag, value());
    } else if (flag == "--switch-delay") {
      opts.config.switch_delay = parse_double(flag, value());
    } else if (flag == "--hotspot-node") {
      opts.config.traffic.hotspot_node = parse_int(flag, value());
    } else if (flag == "--hotspot-fraction") {
      opts.config.traffic.hotspot_fraction = parse_double(flag, value());
    } else if (flag == "--open-arrival") {
      opts.config.open_arrival_rate = parse_double(flag, value());
    } else if (flag == "--solver") {
      opts.method = parse_solver(value());
    } else if (flag == "--memory-ports") {
      opts.config.memory_ports = parse_int(flag, value());
    } else if (flag == "--pipelined-switches") {
      opts.config.pipelined_switches = true;
    } else if (flag == "--max-iterations") {
      opts.amva.max_iterations = parse_int(flag, value());
      LATOL_REQUIRE(opts.amva.max_iterations >= 1,
                    "--max-iterations must be >= 1");
    } else if (flag == "--param") {
      opts.sweep_param = value();
    } else if (flag == "--from") {
      opts.sweep_from = parse_double(flag, value());
    } else if (flag == "--to") {
      opts.sweep_to = parse_double(flag, value());
    } else if (flag == "--steps") {
      opts.sweep_steps = parse_int(flag, value());
    } else if (flag == "--time") {
      opts.sim_time = parse_double(flag, value());
    } else if (flag == "--seed") {
      opts.seed = static_cast<std::uint64_t>(parse_int(flag, value()));
    } else if (flag == "--petri") {
      opts.use_petri = true;
    } else if (flag == "--reps") {
      opts.reps = static_cast<std::size_t>(parse_int(flag, value()));
      LATOL_REQUIRE(opts.reps >= 1, "--reps must be >= 1");
    } else if (flag == "--min-reps") {
      opts.min_reps = static_cast<std::size_t>(parse_int(flag, value()));
      LATOL_REQUIRE(opts.min_reps >= 1, "--min-reps must be >= 1");
    } else if (flag == "--ci-rel") {
      opts.ci_rel = parse_double(flag, value());
      LATOL_REQUIRE(opts.ci_rel >= 0.0, "--ci-rel must be >= 0");
    } else {
      throw InvalidArgument("unknown flag `" + flag + "`\n" + usage());
    }
  }
  if (opts.command == "profile") {
    if (opts.profile_diff) {
      LATOL_REQUIRE(opts.profile_inputs.size() == 2,
                    "profile --diff takes exactly two metrics JSON files, got "
                        << opts.profile_inputs.size());
    } else {
      LATOL_REQUIRE(opts.profile_inputs.size() <= 1,
                    "profile takes one scenario file, got "
                        << opts.profile_inputs.size());
      if (!opts.profile_inputs.empty()) {
        opts.scenario_path = opts.profile_inputs.front();
      }
    }
  }
  return opts;
}

std::string usage() {
  std::ostringstream os;
  os << "latol - latency tolerance analysis for multithreaded architectures\n"
        "        (Nemawarkar & Gao, IPPS'97)\n\n"
        "usage: latol <command> [flags]\n\n"
        "commands:\n"
        "  analyze     solve the model; print U_p, S_obs, L_obs, rates\n"
        "  tolerance   tolerance indices (network & memory) with zones\n"
        "  bottleneck  closed-form Eq. 4/5 constants and operating zones\n"
        "  sweep       vary one parameter; print U_p and tol_network\n"
        "  simulate    discrete-event (or --petri) simulation vs the model\n"
        "  run         execute a JSON scenario file; write CSV/JSON results\n"
        "              plus a run manifest (DESIGN.md §8)\n"
        "  profile     run a scenario with instrumentation on; print\n"
        "              per-stage timings and per-point convergence\n"
        "  serve       long-running analysis daemon (HTTP over TCP) with\n"
        "              admission control, request deadlines, and graceful\n"
        "              drain (DESIGN.md §11)\n"
        "  help        this text\n\n"
        "machine/workload flags (defaults = paper Table 1):\n"
        "  --k N                 size parameter (torus/mesh side, ring size,\n"
        "                        hypercube dimension)        [4]\n"
        "  --topology T          torus|mesh|ring|hypercube   [torus]\n"
        "  --threads N           threads per processor n_t   [8]\n"
        "  --runlength R         mean thread runlength       [10]\n"
        "  --context-switch C    switch overhead             [0]\n"
        "  --p-remote P          remote access probability   [0.2]\n"
        "  --pattern X           geometric|uniform           [geometric]\n"
        "  --p-sw X              geometric locality factor   [0.5]\n"
        "  --memory-latency L    memory access time          [10]\n"
        "  --switch-delay S      per-switch routing time     [10]\n"
        "  --hotspot-node N      redirect traffic to node N  [off]\n"
        "  --hotspot-fraction F  redirected fraction         [0]\n"
        "  --memory-ports N      servers per memory module   [1]\n"
        "  --pipelined-switches  switches as pure delays     [off]\n"
        "  --open-arrival F      per-node Poisson rate of background open\n"
        "                        remote requests (mixed open/closed solve;\n"
        "                        DESIGN.md §12)               [0]\n"
        "  --solver X            amva|linearizer|fesc        [amva]\n"
        "  --max-iterations N    AMVA iteration budget       [200000]\n\n"
        "sweep flags:\n"
        "  --param X   p_remote|threads|runlength|switch_delay|\n"
        "              memory_latency|k|p_sw|context_switch|\n"
        "              memory_ports                          [p_remote]\n"
        "  --from A --to B --steps N                         [0 0.8 9]\n"
        "  --jobs N    parallel sweep workers (0 = shared pool sized to\n"
        "              the hardware); output is byte-identical for every\n"
        "              worker count                          [0]\n\n"
        "simulate flags:\n"
        "  --time T    simulated time units                  [100000]\n"
        "  --seed N    RNG seed                              [1]\n"
        "  --petri     use the stochastic Petri net simulator\n"
        "  --reps N    independent replications (seeds N..N+reps-1), run\n"
        "              in parallel; results are identical for any worker\n"
        "              count                                 [1]\n"
        "  --min-reps N  replications before early stopping  [2]\n"
        "  --ci-rel X  stop when the 95% CI half-width of U_p is within\n"
        "              X of the mean (0 = run all --reps)    [0]\n"
        "  --jobs N    replication workers (0 = shared pool) [0]\n\n"
        "run usage: latol run <scenario.json> [flags]\n"
        "  --out DIR       output directory                  [.]\n"
        "  --format F      json|csv|both|jsonl               [both]\n"
        "  --workers N     worker threads (0 = hardware); --jobs is an\n"
        "                  alias                             [0]\n"
        "  --cache FILE    solve-cache file    [<out>/latol_cache.json]\n"
        "  --no-cache      do not load/save the solve cache\n"
        "  --point-timeout MS  per-point wall-clock budget; a point over\n"
        "                  budget is marked failed (deadline-exceeded) and\n"
        "                  the run continues                 [off]\n"
        "  --stream        bounded-memory row-by-row execution: results\n"
        "                  stream to CSV/JSONL as blocks complete instead\n"
        "                  of materializing the grid (large sweeps;\n"
        "                  --format json emits JSONL). Bytes match the\n"
        "                  non-streamed CSV exactly.\n"
        "  --warm-start    seed each solve from an extrapolation of its row\n"
        "                  neighbors (DESIGN.md §15); implies --stream\n"
        "  --shard I/N     solve rows r with r % N == I only; implies\n"
        "                  --stream. scripts/merge_shards.py reassembles\n"
        "                  the N outputs byte-identically    [0/1]\n"
        "  --block-points N  streamed-emission memory bound  [4096]\n\n"
        "profile usage: latol profile <scenario.json> [--workers N]\n"
        "  solves the scenario with convergence tracing and the metric\n"
        "  registry enabled (transient cache; results are not written)\n"
        "profile diff:  latol profile --diff <metrics_A.json> <metrics_B.json>\n"
        "  per-stage / per-counter / per-histogram delta table with percent\n"
        "  change between two --metrics-out documents\n\n"
        "serve usage: latol serve <config.json>\n"
        "  binds host:port from the config and answers GET /healthz,\n"
        "  GET /metrics (Prometheus text), POST /v1/{analyze,tolerance,\n"
        "  bottleneck,sweep} ({\"args\": [...]}; output matches the CLI\n"
        "  byte-for-byte), and POST /v1/scenario (scenario JSON body)\n"
        "  against one warm solve cache. X-Deadline-Ms arms a per-request\n"
        "  deadline (expired -> 504). SIGTERM/SIGINT drain gracefully:\n"
        "  stop accepting, shed queued (503), finish in-flight, flush the\n"
        "  cache atomically.\n"
        "  server exit codes: 0 clean drain, 2 usage/config error,\n"
        "  4 runtime failure (accept loop died)\n\n"
        "instrumentation flags (analyze, sweep, run, profile; DESIGN.md §9):\n"
        "  --metrics-out FILE  write the metrics JSON document\n"
        "  --trace FILE        write per-iteration convergence traces\n"
        "  --trace-out FILE    write a span trace as Chrome trace_event\n"
        "                      JSON (chrome://tracing / Perfetto; also on\n"
        "                      simulate and serve; DESIGN.md §14)\n\n"
        "exit codes:\n"
        "  0  clean result\n"
        "  1  degraded result (fallback solver answered / not converged)\n"
        "  2  usage error (unknown command/flag, invalid parameter)\n"
        "  3  solve failed (even the fallback chain produced nothing)\n";
  return os.str();
}

}  // namespace latol::cli
