// `latol` command-line entry point: parse, run, report errors.
//
// Exit codes (documented in `latol help`): 0 clean result, 1 degraded
// result (a fallback solver answered or the solve did not converge),
// 2 usage error, 3 solve failed.
#include <iostream>
#include <string>
#include <vector>

#include "cli/options.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return latol::cli::cli_main(args, std::cout, std::cerr);
}
