// `latol` command-line entry point: parse, run, report errors.
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "cli/options.hpp"

int main(int argc, char** argv) {
  try {
    const std::vector<std::string> args(argv + 1, argv + argc);
    const latol::cli::CliOptions opts = latol::cli::parse_command_line(args);
    return latol::cli::run_command(opts, std::cout);
  } catch (const std::exception& e) {
    std::cerr << "latol: " << e.what() << '\n';
    return 1;
  }
}
