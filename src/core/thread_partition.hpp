// Thread-partitioning strategy analysis (paper §5 "Impact of a Thread
// Partitioning Strategy" and §6).
//
// A compiler splitting a do-all loop chooses how many threads to expose
// (n_t) and how much work each carries (R), holding the exposed
// computation n_t x R constant. This module evaluates the tolerance and
// utilization of every split of a work budget and picks the best one —
// reproducing the paper's finding that for n_t >= 2 a *longer runlength*
// beats *more threads*.
#pragma once

#include <vector>

#include "core/mms_config.hpp"
#include "core/mms_model.hpp"
#include "core/tolerance.hpp"
#include "qn/mva_approx.hpp"

namespace latol::core {

/// One candidate split of the work budget.
struct PartitionPoint {
  int n_t = 0;        ///< threads per processor
  double runlength = 0;  ///< per-thread runlength R = work / n_t
  MmsPerformance perf;
  double tol_network = 0;
  double tol_memory = 0;
};

/// Evaluate every split (n_t, work/n_t) for n_t in `thread_counts` against
/// `base` (whose n_t and R are overridden per point). `work` is the
/// exposed computation n_t x R. Results are ordered as `thread_counts`.
[[nodiscard]] std::vector<PartitionPoint> evaluate_partitions(
    const MmsConfig& base, double work, const std::vector<int>& thread_counts,
    IdealMethod network_method = IdealMethod::kModifyWorkload,
    const qn::AmvaOptions& options = {});

/// The split with the highest processor utilization (ties broken toward
/// fewer threads — cheaper to manage, and the paper's recommendation).
[[nodiscard]] PartitionPoint best_partition(
    const std::vector<PartitionPoint>& points);

}  // namespace latol::core
