// The tolerance index — the paper's contribution (§4).
//
//   tol_subsystem = U_p(system) / U_p(ideal system)
//
// where the ideal system replaces the subsystem under study with a
// zero-delay one. The paper discusses two analytically feasible ways to
// obtain the ideal system's performance and prefers the workload
// modification for the network because it also applies to measurements on
// real machines:
//
//  - kZeroDelay:      set S = 0 (network) or L = 0 (memory);
//  - kModifyWorkload: set p_remote = 0 (network only).
//
// With kModifyWorkload the index may exceed 1 on large machines with good
// locality (§7): the finite-delay network pipelines remote accesses and
// relieves memory contention relative to the all-local ideal.
#pragma once

#include "core/mms_config.hpp"
#include "core/mms_model.hpp"
#include "qn/mva_approx.hpp"

namespace latol::core {

/// Subsystem whose latency tolerance is being quantified.
enum class Subsystem { kNetwork, kMemory };

/// How the ideal system's performance is obtained (§4).
enum class IdealMethod {
  kZeroDelay,       // zero-delay subsystem, access pattern unchanged
  kModifyWorkload,  // p_remote = 0; network only, the paper's preference
};

/// The paper's operating zones for a tolerance index.
enum class ToleranceZone {
  kTolerated,           // tol >= 0.8
  kPartiallyTolerated,  // 0.5 <= tol < 0.8
  kNotTolerated,        // tol < 0.5
};

/// Classify an index value into the paper's zones.
[[nodiscard]] ToleranceZone classify_tolerance(double index);

/// Human-readable zone name ("tolerated", ...).
[[nodiscard]] const char* zone_name(ToleranceZone zone);

/// A tolerance-index computation: the index plus both underlying analyses.
struct ToleranceResult {
  double index = 0.0;
  MmsPerformance actual;
  MmsPerformance ideal;
  [[nodiscard]] ToleranceZone zone() const { return classify_tolerance(index); }
};

/// Default ideal-system method per subsystem: the paper prefers workload
/// modification for the network; memory has no workload analogue, so it
/// uses the zero-delay subsystem.
[[nodiscard]] IdealMethod default_method(Subsystem subsystem);

/// The configuration of the ideal system for (config, subsystem, method).
/// Throws InvalidArgument for the unsupported (kMemory, kModifyWorkload)
/// combination.
[[nodiscard]] MmsConfig ideal_config(const MmsConfig& config,
                                     Subsystem subsystem, IdealMethod method);

/// Compute the tolerance index of `subsystem` for `config`.
[[nodiscard]] ToleranceResult tolerance_index(
    const MmsConfig& config, Subsystem subsystem,
    IdealMethod method, const qn::AmvaOptions& options = {});

/// Overload using the subsystem's default method.
[[nodiscard]] ToleranceResult tolerance_index(
    const MmsConfig& config, Subsystem subsystem,
    const qn::AmvaOptions& options = {});

}  // namespace latol::core
