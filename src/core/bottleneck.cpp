#include "core/bottleneck.hpp"

#include <algorithm>
#include <limits>

#include "core/mms_model.hpp"

namespace latol::core {

BottleneckAnalysis bottleneck_analysis(const MmsConfig& config) {
  config.validate();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  const MmsModel model(config);
  BottleneckAnalysis out;
  out.d_avg = model.average_distance();
  const double S = config.switch_delay;
  const double L = config.memory_latency;
  const double R = config.runlength;

  out.unloaded_one_way = (out.d_avg + 1.0) * S;
  out.unloaded_round_trip = 2.0 * out.unloaded_one_way;
  out.memory_service_rate = L > 0.0 ? 1.0 / L : kInf;

  const double net_demand = 2.0 * out.d_avg * S;  // per-message switch load
  out.lambda_net_sat = net_demand > 0.0 ? 1.0 / net_demand : kInf;
  out.p_remote_sat =
      net_demand > 0.0 ? std::clamp(R / net_demand, 0.0, 1.0) : 1.0;

  if (out.unloaded_round_trip > 0.0) {
    out.p_remote_critical = std::clamp(
        1.0 - L / R + L / out.unloaded_round_trip, 0.0, 1.0);
  } else {
    // Zero-delay network: only the memory can starve the processor.
    out.p_remote_critical = 1.0;
  }
  return out;
}

}  // namespace latol::core
