// Closed-form bottleneck analysis (paper §5, Eqs. 4-5).
//
// The paper explains every qualitative feature of its surfaces with two
// constants:
//
//  Eq. 4  lambda_net,sat = 1 / (2 d_avg S)
//         Each remote access and its response together place 2 d_avg
//         inbound-switch visits on the network, spread evenly (by
//         symmetry) over the P inbound switches; saturation of those
//         switches caps the per-processor message rate. Defaults: 0.029.
//
//  Eq. 5  p_crit = 1 - L/R + L / (2 (d_avg + 1) S)
//         The processor keeps finding work while its access rate 1/R stays
//         below the combined response rate of the local memory
//         ((1 - p_remote)/L) and the network round trip
//         (1 / (2 (d_avg + 1) S): d_avg inbound hops each way plus 2S to
//         get on/off the IN). Defaults: 0.18 (R=10), 0.68 (R=20).
//
// From Eq. 4 also follows the p_remote at which the network saturates:
// p_sat = R / (2 d_avg S): 0.29 (R=10), 0.58 (R=20) — the paper's "0.3"
// and "0.6" zone boundaries.
#pragma once

#include "core/mms_config.hpp"

namespace latol::core {

/// Closed-form constants characterizing the operating zones of an MMS.
struct BottleneckAnalysis {
  double d_avg = 0;             ///< average remote hop distance
  double lambda_net_sat = 0;    ///< Eq. 4 (infinite when S = 0)
  double p_remote_sat = 0;      ///< p_remote where lambda_net saturates (clamped to [0,1])
  double p_remote_critical = 0; ///< Eq. 5 (clamped to [0,1])
  double unloaded_one_way = 0;  ///< (d_avg + 1) S: S_obs with no contention
  double unloaded_round_trip = 0;  ///< 2 (d_avg + 1) S
  double memory_service_rate = 0;  ///< 1/L (infinite when L = 0)
};

/// Compute the closed forms for `config`.
[[nodiscard]] BottleneckAnalysis bottleneck_analysis(const MmsConfig& config);

}  // namespace latol::core
