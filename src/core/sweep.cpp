#include "core/sweep.hpp"

#include <exception>
#include <string>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace latol::core {

std::vector<SweepResult> sweep(std::span<const MmsConfig> grid,
                               const SweepOptions& options) {
  std::vector<SweepResult> results(grid.size());
  util::parallel_for(
      grid.size(),
      [&](std::size_t i) {
        SweepResult& r = results[i];
        try {
          const MmsConfig& cfg = grid[i];
          if (options.network_tolerance) {
            const ToleranceResult t = tolerance_index(
                cfg, Subsystem::kNetwork, options.network_method, options.amva);
            r.perf = t.actual;
            r.tol_network = t.index;
            r.ideal_degraded |= t.ideal.degraded || !t.ideal.converged;
          }
          if (options.memory_tolerance) {
            const ToleranceResult t =
                tolerance_index(cfg, Subsystem::kMemory, options.amva);
            r.perf = t.actual;
            r.tol_memory = t.index;
            r.ideal_degraded |= t.ideal.degraded || !t.ideal.converged;
          }
          if (!options.network_tolerance && !options.memory_tolerance) {
            r.perf = analyze(cfg, options.amva);
          }
        } catch (const qn::SolverError& e) {
          r.error = e.what();
          r.error_code = e.code();
        } catch (const InvalidArgument& e) {
          r.error = e.what();
          r.error_code = qn::SolverErrorCode::kInvalidNetwork;
        } catch (const std::exception& e) {
          r.error = e.what();
        }
      },
      options.workers);
  return results;
}

}  // namespace latol::core
