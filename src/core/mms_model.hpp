// The paper's closed queueing network model of the MMS (§2, Fig. 2) and
// the performance measures derived from its solution (Eqs. 1-3).
//
// Each processing element contributes four stations — processor, memory,
// inbound switch, outbound switch — and each processor's resident threads
// form one closed class of population n_t. A class-i cycle is:
//
//   P_i --(1-p_remote)--> M_i --> P_i
//   P_i --(p_remote)----> O_i -> I.. -> I_j -> M_j -> O_j -> I.. -> I_i -> P_i
//
// Visit ratios follow the remote-access distribution and dimension-order
// torus routing (em/eo/ei in the paper's notation).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/mms_config.hpp"
#include "qn/mva_approx.hpp"
#include "qn/network.hpp"
#include "qn/open/open_network.hpp"
#include "qn/robust.hpp"
#include "qn/solution.hpp"
#include "topo/topology.hpp"
#include "topo/traffic.hpp"

namespace latol::core {

/// Station indices for one processing element within the CQN.
struct PeStations {
  std::size_t processor;
  std::size_t memory;
  std::size_t inbound;
  std::size_t outbound;
};

/// Builds the CQN for an MmsConfig and maps nodes to station indices.
class MmsModel {
 public:
  /// Validates `config` and precomputes topology + traffic pattern.
  explicit MmsModel(const MmsConfig& config);

  [[nodiscard]] const MmsConfig& config() const { return config_; }
  [[nodiscard]] const topo::Topology& topology() const { return *topology_; }

  /// Remote-access distribution; only meaningful when p_remote > 0 and
  /// num_nodes >= 2 (it is still constructed for any machine with at
  /// least two nodes).
  [[nodiscard]] const topo::RemoteAccessDistribution& traffic() const;

  /// Average remote hop distance d_avg (0 when the machine has one node).
  [[nodiscard]] double average_distance() const;

  /// Station indices of processing element `node`.
  [[nodiscard]] static PeStations stations(int node);

  /// Class-`i` visit ratios over the 4P stations (the paper's em/eo/ei
  /// rules). One row of build_network(), exposed separately so the
  /// hierarchical solver can price a single class in O(P x d_avg) instead
  /// of materializing all P classes.
  [[nodiscard]] std::vector<double> class_visits(int i) const;

  /// Construct the full multi-class closed network (4P stations, P
  /// classes, populations n_t each) with the paper's visit ratios.
  [[nodiscard]] qn::ClosedNetwork build_network() const;

  /// Construct the open companion network for open_arrival_rate > 0: one
  /// open class per node, each a Poisson stream of one-way remote memory
  /// requests (source outbound -> inbound hops -> destination memory ->
  /// sink) at the configured rate, destinations drawn from the same
  /// remote-access distribution as thread traffic. Same stations as
  /// build_network(), so the two compose in qn::solve_mixed. Requires a
  /// machine with at least two nodes.
  [[nodiscard]] qn::OpenNetwork build_open_network() const;

 private:
  MmsConfig config_;
  std::unique_ptr<topo::Topology> topology_;
  // The traffic distribution holds a reference to *topology_, so the
  // model is non-copyable by design.
  std::unique_ptr<topo::RemoteAccessDistribution> traffic_;
};

/// Headline performance measures for one (symmetric) processing element.
struct MmsPerformance {
  double processor_utilization = 0;  ///< U_p = lambda * R (Eq. 3)
  double access_rate = 0;            ///< lambda_i: memory accesses per time unit
  double message_rate = 0;           ///< lambda_net = lambda * p_remote (Eq. 2)
  double network_latency = 0;        ///< S_obs: observed one-way latency (Eq. 1)
  double memory_latency = 0;         ///< L_obs: observed memory latency
  double memory_utilization = 0;     ///< per-port utilization of a memory module
  double switch_utilization = 0;     ///< max utilization over all switches
  double average_distance = 0;       ///< d_avg of the remote pattern
  /// Mean end-to-end latency of one background open request sourced at
  /// this node (mixed open/closed solve, DESIGN.md §12); 0 for a purely
  /// closed config.
  double open_latency = 0;
  /// Max per-server utilization any station owes to open traffic alone
  /// (the mixed solve's stability margin; the solver refuses >= 1). 0 for
  /// a purely closed config.
  double open_utilization = 0;
  long solver_iterations = 0;        ///< solver iterations used
  bool converged = true;             ///< solver convergence flag
  qn::SolverKind solver = qn::SolverKind::kAmva;  ///< producer of the numbers
  bool degraded = false;  ///< a fallback solver answered, not the requested one
  double residual = 0;    ///< Schweitzer fixed-point residual of the solution
  double littles_law_error = 0;   ///< qn::InvariantReport — N = X*R per class
  double flow_balance_error = 0;  ///< qn::InvariantReport — visit-ratio gaps
  /// Per-iteration convergence deltas of the accepted solve; populated only
  /// when AmvaOptions::record_trace was set (DESIGN.md §9), possibly capped
  /// at obs::ConvergenceTrace::kDefaultCapacity entries.
  std::vector<double> residual_history;
};

/// Which analytical machinery answers an analyze() call.
///
/// The paper's algorithm (its Fig. 3) is Bard-Schweitzer AMVA, which our
/// own validation shows underestimates U_p by ~3% at the defaults — the
/// same "model predictions are slightly lower than the simulations" bias
/// the paper reports. Linearizer closes that gap (matches long
/// simulations to <0.1%) at ~(P+1)x3 the cost. The hierarchical FESC
/// decomposition trades a few percent of accuracy for solves that scale
/// to machines far beyond the multi-class solvers (DESIGN.md §12.5).
enum class SolveMethod {
  kAmva,          ///< Bard–Schweitzer AMVA through the robust chain
  kLinearizer,    ///< Linearizer-first robust chain
  kHierarchical,  ///< FESC decomposition (core/hierarchical.hpp)
};

/// Stable lowercase identifier ("amva", "linearizer", "fesc") used in
/// scenario files and cache keys.
[[nodiscard]] const char* solve_method_name(SolveMethod method);

/// Knobs for the analyze() overload with solver selection.
struct AnalysisOptions {
  qn::AmvaOptions amva{};
  /// Back-compat flag, equivalent to method = kLinearizer.
  bool use_linearizer = false;
  SolveMethod method = SolveMethod::kAmva;
  /// Warm-start hints forwarded to the AMVA/Linearizer links of the
  /// robust chain (qn/hints.hpp, DESIGN.md §15). Ignored by the
  /// hierarchical method (FESC is not an iterative MVA). Not owned; must
  /// outlive the call. nullptr keeps the plain kernels, bit-identical to
  /// earlier releases.
  const qn::SolveHints* hints = nullptr;
  /// When non-null, receives the raw accepted closed-network solution —
  /// the sweep engine chains it into the next lattice point's hint.
  /// Left empty by the hierarchical method (it never materializes a
  /// full multi-class solution).
  qn::MvaSolution* solution_out = nullptr;
};

/// Solve the model through qn::robust_solve (AMVA first, degrading through
/// Linearizer -> exact MVA -> asymptotic bounds on failure) and derive the
/// paper's measures (for class 0; all classes are statistically identical
/// under the SPMD assumption). A degraded answer is flagged in
/// MmsPerformance::degraded/solver; throws qn::SolverError only when even
/// the full fallback chain produced nothing.
[[nodiscard]] MmsPerformance analyze(const MmsConfig& config,
                                     const qn::AmvaOptions& options = {});

/// Full-control variant: solve with an explicit fallback chain and hand
/// back the complete SolveReport (per-attempt diagnostics, residual, wall
/// time) alongside the derived measures.
struct RobustAnalysis {
  MmsPerformance perf;
  qn::SolveReport report;
};
/// Solve `config` through the qn::robust_solve fallback chain and return
/// the performance measures with the full per-attempt report.
[[nodiscard]] RobustAnalysis analyze_robust(const MmsConfig& config,
                                            const qn::RobustOptions& options = {});

/// Overload with solver selection.
[[nodiscard]] MmsPerformance analyze(const MmsConfig& config,
                                     const AnalysisOptions& options);

/// As `analyze`, but also hands back the network and the raw solution for
/// callers that need station-level detail (tests, benches).
struct DetailedAnalysis {
  MmsPerformance perf;
  qn::ClosedNetwork network;
  qn::MvaSolution solution;
};
/// Solve `config` with AMVA and return the measures together with the
/// network and raw solution.
[[nodiscard]] DetailedAnalysis analyze_detailed(
    const MmsConfig& config, const qn::AmvaOptions& options = {});

/// Extract MmsPerformance from an already-computed solution of the network
/// built by MmsModel::build_network(), from the viewpoint of the threads
/// resident on `node` (class index == node index). Under the paper's SPMD
/// symmetry every node reports the same numbers; with a traffic hotspot
/// they differ per node.
[[nodiscard]] MmsPerformance extract_performance(const MmsModel& model,
                                                 const qn::ClosedNetwork& net,
                                                 const qn::MvaSolution& sol,
                                                 int node = 0);

/// Solve once and report every node's performance (for asymmetric
/// workloads such as hotspot traffic).
[[nodiscard]] std::vector<MmsPerformance> analyze_per_node(
    const MmsConfig& config, const qn::AmvaOptions& options = {});

}  // namespace latol::core
