// Hierarchical MMS solver: FESC decomposition for large symmetric machines.
//
// Under the paper's SPMD symmetry every class is a translate of class 0 on
// a vertex-transitive topology, so one class plus a background-utilization
// fixed point captures the whole machine. The memory/network subsystem
// seen by class 0 is collapsed into a single flow-equivalent service
// center (qn::solve_two_level); contention from the other P-1 classes
// enters as a service-time inflation 1/(1 - rho_bg) driven by the current
// throughput estimate. Cost per outer iteration is O(n_t x M_sub) instead
// of AMVA's O(iterations x P x 4P) full multi-class sweep, which is what
// makes 10-100x larger lattices tractable (DESIGN.md §12.5).
//
// Scope: requires a vertex-transitive topology (torus, ring, hypercube —
// the 2-D mesh is rejected), no traffic hotspot, and no open arrivals;
// those asymmetric cases need the full multi-class AMVA path.
#pragma once

#include "core/mms_config.hpp"
#include "core/mms_model.hpp"

namespace latol::core {

/// Knobs of the outer background-utilization fixed point.
struct HierarchicalOptions {
  /// Relative convergence threshold on the class throughput between
  /// successive outer iterations.
  double tolerance = 1e-10;
  /// Outer-iteration budget; exhausting it returns the last iterate with
  /// MmsPerformance::converged == false (no throw).
  long max_iterations = 500;
  /// Under-relaxation of the throughput update in (0, 1]; 0.5 tames the
  /// overshoot of the background-load feedback near saturation.
  double damping = 0.5;
};

/// Solve `config` by FESC decomposition and derive the paper's measures.
/// Exact-MVA quality for the reduced model; the background inflation is an
/// approximation that agrees with AMVA to a few percent away from deep
/// saturation (tests/core/open_mms_test.cpp pins the envelope). Throws
/// InvalidArgument when the config is outside the solver's symmetric scope
/// (mesh topology, hotspot traffic, or open arrivals).
[[nodiscard]] MmsPerformance analyze_hierarchical(
    const MmsConfig& config, const HierarchicalOptions& options = {});

}  // namespace latol::core
