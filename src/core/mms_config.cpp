#include "core/mms_config.hpp"

#include <cmath>

#include "util/error.hpp"

namespace latol::core {

int MmsConfig::num_processors() const {
  switch (topology) {
    case topo::TopologyKind::kTorus2D:
    case topo::TopologyKind::kMesh2D:
      return k * k;
    case topo::TopologyKind::kRing:
      return k;
    case topo::TopologyKind::kHypercube:
      return 1 << k;
  }
  return 0;
}

void MmsConfig::validate() const {
  switch (topology) {
    case topo::TopologyKind::kTorus2D:
    case topo::TopologyKind::kMesh2D:
      LATOL_REQUIRE(k >= 1 && k <= 64, "side k=" << k);
      break;
    case topo::TopologyKind::kRing:
      LATOL_REQUIRE(k >= 1 && k <= 4096, "ring size k=" << k);
      break;
    case topo::TopologyKind::kHypercube:
      LATOL_REQUIRE(k >= 0 && k <= 12, "hypercube dimension k=" << k);
      break;
  }
  // Time parameters must be finite as well as in range: an infinite
  // latency would flow through the model as inf/NaN and only surface much
  // later as a solver kNumerical failure with the root cause lost.
  LATOL_REQUIRE(memory_latency >= 0.0 && std::isfinite(memory_latency),
                "L=" << memory_latency);
  LATOL_REQUIRE(switch_delay >= 0.0 && std::isfinite(switch_delay),
                "S=" << switch_delay);
  LATOL_REQUIRE(memory_ports >= 1, "memory_ports=" << memory_ports);
  LATOL_REQUIRE(threads_per_processor >= 1,
                "n_t=" << threads_per_processor);
  LATOL_REQUIRE(runlength > 0.0 && std::isfinite(runlength),
                "R=" << runlength);
  LATOL_REQUIRE(context_switch >= 0.0 && std::isfinite(context_switch),
                "C=" << context_switch);
  LATOL_REQUIRE(p_remote >= 0.0 && p_remote <= 1.0,
                "p_remote=" << p_remote);
  LATOL_REQUIRE(p_remote == 0.0 || num_processors() >= 2,
                "remote accesses (p_remote="
                    << p_remote << ") need at least 2 processing elements");
  LATOL_REQUIRE(open_arrival_rate >= 0.0 && std::isfinite(open_arrival_rate),
                "open_arrival_rate=" << open_arrival_rate);
  LATOL_REQUIRE(open_arrival_rate == 0.0 || num_processors() >= 2,
                "open arrivals (open_arrival_rate="
                    << open_arrival_rate
                    << ") are remote requests and need at least 2 "
                       "processing elements");
  if (traffic.pattern == topo::AccessPattern::kGeometric) {
    LATOL_REQUIRE(traffic.p_sw > 0.0 && traffic.p_sw <= 1.0,
                  "p_sw=" << traffic.p_sw);
  }
}

MmsConfig MmsConfig::paper_defaults() {
  MmsConfig c;
  c.k = 4;
  c.memory_latency = 10.0;
  c.switch_delay = 10.0;
  c.threads_per_processor = 8;
  c.runlength = 10.0;
  c.context_switch = 0.0;
  c.p_remote = 0.2;
  c.traffic.pattern = topo::AccessPattern::kGeometric;
  c.traffic.p_sw = 0.5;
  c.traffic.mode = topo::GeometricMode::kDistanceClass;
  return c;
}

}  // namespace latol::core
