#include "core/tolerance.hpp"

#include "util/error.hpp"

namespace latol::core {

ToleranceZone classify_tolerance(double index) {
  if (index >= 0.8) return ToleranceZone::kTolerated;
  if (index >= 0.5) return ToleranceZone::kPartiallyTolerated;
  return ToleranceZone::kNotTolerated;
}

const char* zone_name(ToleranceZone zone) {
  switch (zone) {
    case ToleranceZone::kTolerated:
      return "tolerated";
    case ToleranceZone::kPartiallyTolerated:
      return "partially tolerated";
    case ToleranceZone::kNotTolerated:
      return "not tolerated";
  }
  return "?";
}

IdealMethod default_method(Subsystem subsystem) {
  return subsystem == Subsystem::kNetwork ? IdealMethod::kModifyWorkload
                                          : IdealMethod::kZeroDelay;
}

MmsConfig ideal_config(const MmsConfig& config, Subsystem subsystem,
                       IdealMethod method) {
  MmsConfig ideal = config;
  switch (subsystem) {
    case Subsystem::kNetwork:
      if (method == IdealMethod::kZeroDelay) {
        ideal.switch_delay = 0.0;
      } else {
        ideal.p_remote = 0.0;
      }
      break;
    case Subsystem::kMemory:
      LATOL_REQUIRE(method == IdealMethod::kZeroDelay,
                    "memory tolerance has no workload-modification ideal "
                    "(every thread must access memory)");
      ideal.memory_latency = 0.0;
      break;
  }
  return ideal;
}

ToleranceResult tolerance_index(const MmsConfig& config, Subsystem subsystem,
                                IdealMethod method,
                                const qn::AmvaOptions& options) {
  ToleranceResult result;
  result.actual = analyze(config, options);
  result.ideal = analyze(ideal_config(config, subsystem, method), options);
  LATOL_REQUIRE(result.ideal.processor_utilization > 0.0,
                "ideal system has zero processor utilization");
  result.index =
      result.actual.processor_utilization / result.ideal.processor_utilization;
  return result;
}

ToleranceResult tolerance_index(const MmsConfig& config, Subsystem subsystem,
                                const qn::AmvaOptions& options) {
  return tolerance_index(config, subsystem, default_method(subsystem), options);
}

}  // namespace latol::core
