#include "core/hierarchical.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "qn/network.hpp"
#include "qn/open/fesc.hpp"
#include "qn/robust.hpp"
#include "util/error.hpp"

namespace latol::core {

namespace {

// Station-type totals V_m = sum_c v_{c,m}. On a vertex-transitive topology
// with a shift-invariant traffic pattern every class is a relabeling of
// class 0, so the total at any station of a given type equals the sum of
// class 0's visits over all stations of that type.
struct TypeTotals {
  double processor = 0.0;
  double memory = 0.0;
  double inbound = 0.0;
  double outbound = 0.0;
};

TypeTotals type_totals(const std::vector<double>& v0, int P) {
  TypeTotals t;
  for (int n = 0; n < P; ++n) {
    const PeStations st = MmsModel::stations(n);
    t.processor += v0[st.processor];
    t.memory += v0[st.memory];
    t.inbound += v0[st.inbound];
    t.outbound += v0[st.outbound];
  }
  return t;
}

double total_visits_at(const TypeTotals& totals, const PeStations& st,
                       std::size_t m) {
  if (m == st.processor) return totals.processor;
  if (m == st.memory) return totals.memory;
  if (m == st.inbound) return totals.inbound;
  return totals.outbound;
}

}  // namespace

MmsPerformance analyze_hierarchical(const MmsConfig& config,
                                    const HierarchicalOptions& options) {
  const MmsModel model(config);
  LATOL_REQUIRE(config.topology != topo::TopologyKind::kMesh2D,
                "hierarchical decomposition needs a vertex-transitive "
                "topology; the 2-D mesh is not — use the amva method");
  LATOL_REQUIRE(
      config.traffic.hotspot_node < 0 || config.traffic.hotspot_fraction <= 0.0,
      "hierarchical decomposition assumes node-symmetric traffic; hotspot "
      "configs need the amva method");
  LATOL_REQUIRE(config.open_arrival_rate == 0.0,
                "hierarchical decomposition is closed-only; open arrivals "
                "(open_arrival_rate=" << config.open_arrival_rate
                                      << ") need the amva method");
  LATOL_REQUIRE(options.tolerance > 0.0, "tolerance=" << options.tolerance);
  LATOL_REQUIRE(options.max_iterations >= 1,
                "max_iterations=" << options.max_iterations);
  LATOL_REQUIRE(options.damping > 0.0 && options.damping <= 1.0,
                "damping=" << options.damping);

  const int P = model.topology().num_nodes();
  const std::vector<double> v0 = model.class_visits(0);
  const TypeTotals totals = type_totals(v0, P);
  const PeStations home = MmsModel::stations(0);

  // Per-station service, kind, and servers mirror MmsModel::build_network.
  const qn::StationKind switch_kind = config.pipelined_switches
                                          ? qn::StationKind::kDelay
                                          : qn::StationKind::kQueueing;
  const auto service_of = [&](std::size_t m, const PeStations& st) {
    if (m == st.processor) return config.runlength + config.context_switch;
    if (m == st.memory) return config.memory_latency;
    return config.switch_delay;
  };

  // The reduced single-class model: station 0 is the home processor (the
  // complement), every other station class 0 visits joins the subnetwork
  // that solve_two_level collapses into the FESC.
  struct SubStation {
    std::size_t original;  // index in the 4P-station network
    double visits;         // class-0 visit ratio
    double service;        // uninflated service time
    double background;     // visits owed to the other P-1 classes
    qn::StationKind kind;
    int servers;
  };
  std::vector<SubStation> sub;
  double total_background = 0.0;
  for (std::size_t m = 0; m < v0.size(); ++m) {
    if (m == home.processor || v0[m] <= 0.0) continue;
    const auto node = static_cast<int>(m / 4);
    const PeStations st = MmsModel::stations(node);
    SubStation s;
    s.original = m;
    s.visits = v0[m];
    s.service = service_of(m, st);
    s.background = std::max(0.0, total_visits_at(totals, st, m) - v0[m]);
    s.kind = (m == st.memory) ? qn::StationKind::kQueueing
             : (m == st.processor) ? qn::StationKind::kQueueing
                                   : switch_kind;
    s.servers = (m == st.memory) ? config.memory_ports : 1;
    if (s.kind == qn::StationKind::kQueueing) {
      total_background += s.background * s.service;
    }
    sub.push_back(s);
  }
  LATOL_REQUIRE(!sub.empty(),
                "class 0 visits no station besides its processor");

  const auto build_reduced = [&](double x) {
    std::vector<qn::Station> stations;
    stations.reserve(sub.size() + 1);
    stations.push_back({"P0", qn::StationKind::kQueueing, 1});
    for (const SubStation& s : sub) {
      stations.push_back({"F" + std::to_string(s.original), s.kind, s.servers});
    }
    qn::ClosedNetwork net(std::move(stations), 1);
    net.set_population(0, config.threads_per_processor);
    net.set_visit_ratio(0, 0, 1.0);
    net.set_service_time(0, 0, config.runlength + config.context_switch);
    for (std::size_t i = 0; i < sub.size(); ++i) {
      const SubStation& s = sub[i];
      double service = s.service;
      if (s.kind == qn::StationKind::kQueueing && s.background > 0.0) {
        // Contention from the other P-1 symmetric classes, treated as a
        // background stream at per-server utilization rho_bg: the M/M/m
        // inflation 1/(1 - rho_bg), capped short of saturation so a
        // transiently overshooting throughput iterate cannot blow up.
        const double rho_bg = std::min(
            x * s.background * s.service / static_cast<double>(s.servers),
            0.999);
        service = s.service / (1.0 - rho_bg);
      }
      net.set_visit_ratio(0, i + 1, s.visits);
      net.set_service_time(0, i + 1, service);
    }
    return net;
  };

  std::vector<bool> in_subnetwork(sub.size() + 1, true);
  in_subnetwork[0] = false;

  // Damped fixed point on the per-class throughput x. With no background
  // load the reduced model does not depend on x and one solve is exact.
  double x = 0.0;
  double residual = 0.0;
  long iterations = 0;
  bool converged = false;
  qn::TwoLevelSolution sol;
  const long budget = total_background > 0.0 ? options.max_iterations : 1;
  for (long iter = 1; iter <= budget; ++iter) {
    iterations = iter;
    sol = qn::solve_two_level(build_reduced(x), in_subnetwork);
    const double x_new = sol.throughput;
    residual = std::abs(x_new - x) / std::max(x_new, 1e-300);
    x += options.damping * (x_new - x);
    if (residual <= options.tolerance || total_background <= 0.0) {
      converged = true;
      break;
    }
  }

  // Derive the paper's measures from the converged reduced solution,
  // mirroring extract_performance on the full network.
  const double lambda = sol.throughput;
  MmsPerformance perf;
  perf.access_rate = lambda;
  perf.processor_utilization = lambda * config.runlength;
  perf.message_rate = lambda * config.p_remote;
  perf.average_distance = P >= 2 && config.p_remote > 0.0
                              ? model.traffic().average_distance_from(0)
                              : 0.0;

  double memory_residence = 0.0;
  double switch_residence = 0.0;
  double max_switch_util = 0.0;
  for (std::size_t i = 0; i < sub.size(); ++i) {
    const SubStation& s = sub[i];
    const std::size_t m = s.original;
    const auto node = static_cast<int>(m / 4);
    const PeStations st = MmsModel::stations(node);
    const double residence = s.visits * sol.waiting[i + 1];
    if (m == st.memory) {
      memory_residence += residence;
    } else if (m == st.inbound || m == st.outbound) {
      switch_residence += residence;
      // All P classes contribute lambda x visits each; by symmetry the
      // per-station total is lambda x (type total).
      max_switch_util =
          std::max(max_switch_util,
                   lambda * total_visits_at(totals, st, m) * s.service);
    }
  }
  perf.memory_latency = memory_residence;
  perf.network_latency = config.p_remote > 0.0
                             ? switch_residence / (2.0 * config.p_remote)
                             : 0.0;
  perf.memory_utilization = lambda * totals.memory * config.memory_latency /
                            static_cast<double>(config.memory_ports);
  perf.switch_utilization = max_switch_util;
  perf.solver_iterations = iterations;
  perf.converged = converged;
  perf.solver = qn::SolverKind::kFesc;
  perf.degraded = false;
  perf.residual = residual;
  return perf;
}

}  // namespace latol::core
