// Configuration of the multithreaded multiprocessor system (MMS).
//
// One struct carries the paper's workload parameters (n_t, R, C, p_remote,
// access pattern) and architectural parameters (L, S, k) — Table 1 of the
// paper. `paper_defaults()` returns the reconstructed default setting
// (see DESIGN.md §3 for how each OCR-damaged value was pinned down).
#pragma once

#include "topo/traffic.hpp"

namespace latol::core {

/// Full parameterization of the analyzed machine + workload.
struct MmsConfig {
  // --- architecture ---
  /// Interconnect family. The paper's machine is the 2-D torus; the mesh,
  /// ring, and hypercube are supported for topology studies.
  topo::TopologyKind topology = topo::TopologyKind::kTorus2D;
  /// Size parameter: nodes per dimension (torus/mesh), node count (ring),
  /// or dimension (hypercube, 2^k nodes).
  int k = 4;
  double memory_latency = 10;  ///< L: memory access time, no queueing
  double switch_delay = 10;    ///< S: per-switch routing time

  /// §7 extensions the paper suggests but does not evaluate:
  /// parallel ports per memory module ("multiporting/pipelining the
  /// memory can be of help")...
  int memory_ports = 1;
  /// ...and pipelined (wormhole-style) switches that never serialize
  /// traffic, modeled as pure-delay stations.
  bool pipelined_switches = false;

  // --- workload ---
  int threads_per_processor = 8;  ///< n_t
  double runlength = 10;          ///< R: mean thread runlength
  double context_switch = 0;      ///< C: context switch overhead
  double p_remote = 0.2;          ///< probability an access is remote
  topo::TrafficConfig traffic{};  ///< remote destination distribution

  /// Background open traffic (DESIGN.md §12): each node additionally
  /// sources a Poisson stream of one-way remote memory requests at this
  /// rate (requests per time unit per node), drawn from the same remote
  /// destination distribution as thread accesses — so hotspot configs
  /// concentrate the burst. 0 (the default, and the paper's machine)
  /// means a purely closed system; > 0 engages the mixed open/closed
  /// solver and the simulator's Poisson sources.
  double open_arrival_rate = 0;

  /// Reconstruction ablation (see DESIGN.md §2.2): the paper's text gives
  /// only `eo_{i,j} = em_{i,j}`, which omits the *request's* pass through
  /// the source node's outbound switch; the paper's own Eq. 5 narrative
  /// ("2S time units to get on/off the IN") implies it is counted. We
  /// count it by default; setting this false reproduces the literal
  /// eo = em reading for the ablation bench.
  bool count_source_outbound = true;

  /// Number of processing elements (depends on the topology family).
  [[nodiscard]] int num_processors() const;

  /// Throws InvalidArgument on out-of-range parameters (negative delays,
  /// probabilities outside [0,1], remote accesses on a 1-node machine...).
  void validate() const;

  /// The paper's Table 1 defaults: k=4, n_t=8, R=10, p_remote=0.2,
  /// p_sw=0.5 (geometric, d_avg=1.733), L=10, S=10, C=0.
  [[nodiscard]] static MmsConfig paper_defaults();
};

}  // namespace latol::core
