#include "core/mms_model.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "core/hierarchical.hpp"
#include "qn/mva_linearizer.hpp"
#include "qn/open/mixed.hpp"
#include "util/error.hpp"

namespace latol::core {

MmsModel::MmsModel(const MmsConfig& config) : config_(config) {
  config_.validate();
  topology_ = topo::make_topology(config_.topology, config_.k);
  if (topology_->num_nodes() >= 2) {
    traffic_ = std::make_unique<topo::RemoteAccessDistribution>(
        *topology_, config_.traffic);
  }
}

const topo::RemoteAccessDistribution& MmsModel::traffic() const {
  LATOL_REQUIRE(traffic_ != nullptr,
                "traffic distribution undefined for a 1-node machine");
  return *traffic_;
}

double MmsModel::average_distance() const {
  return traffic_ ? traffic_->average_distance() : 0.0;
}

PeStations MmsModel::stations(int node) {
  const auto base = static_cast<std::size_t>(node) * 4;
  return PeStations{base, base + 1, base + 2, base + 3};
}

namespace {

/// The 4P stations shared by the closed network and its open companion.
std::vector<qn::Station> make_station_list(const MmsConfig& config, int P) {
  std::vector<qn::Station> station_list;
  station_list.reserve(static_cast<std::size_t>(P) * 4);
  const qn::StationKind switch_kind = config.pipelined_switches
                                          ? qn::StationKind::kDelay
                                          : qn::StationKind::kQueueing;
  for (int n = 0; n < P; ++n) {
    station_list.push_back(
        {"P" + std::to_string(n), qn::StationKind::kQueueing, 1});
    station_list.push_back({"M" + std::to_string(n),
                            qn::StationKind::kQueueing, config.memory_ports});
    station_list.push_back({"I" + std::to_string(n), switch_kind, 1});
    station_list.push_back({"O" + std::to_string(n), switch_kind, 1});
  }
  return station_list;
}

}  // namespace

std::vector<double> MmsModel::class_visits(int i) const {
  const int P = topology_->num_nodes();
  LATOL_REQUIRE(i >= 0 && i < P, "class index " << i);
  std::vector<double> v(static_cast<std::size_t>(P) * 4, 0.0);
  const double p = config_.p_remote;

  const PeStations home = stations(i);
  v[home.processor] = 1.0;
  v[home.memory] = 1.0 - p;
  if (p <= 0.0) {
    v[home.memory] = 1.0;
    return v;
  }

  // Remote accesses: requests leave via the home outbound switch...
  if (config_.count_source_outbound) v[home.outbound] += p;

  for (int dst = 0; dst < P; ++dst) {
    if (dst == i) continue;
    const double q = traffic().probability(i, dst);
    if (q <= 0.0) continue;
    const PeStations there = stations(dst);
    v[there.memory] += p * q;
    // ...responses leave via the destination's outbound switch...
    v[there.outbound] += p * q;
    // ...and both legs traverse one inbound switch per hop.
    for (const auto& [node, w] : topology_->inbound_visits(i, dst)) {
      v[stations(node).inbound] += p * q * w;
    }
    for (const auto& [node, w] : topology_->inbound_visits(dst, i)) {
      v[stations(node).inbound] += p * q * w;
    }
  }
  return v;
}

qn::ClosedNetwork MmsModel::build_network() const {
  const int P = topology_->num_nodes();
  qn::ClosedNetwork net(make_station_list(config_, P),
                        static_cast<std::size_t>(P));

  for (int i = 0; i < P; ++i) {
    const auto c = static_cast<std::size_t>(i);
    net.set_population(c, config_.threads_per_processor);

    // Uniform per-type service times keep the BCMP class-independence
    // condition satisfied by construction.
    for (int n = 0; n < P; ++n) {
      const PeStations st = stations(n);
      net.set_service_time(c, st.processor,
                           config_.runlength + config_.context_switch);
      net.set_service_time(c, st.memory, config_.memory_latency);
      net.set_service_time(c, st.inbound, config_.switch_delay);
      net.set_service_time(c, st.outbound, config_.switch_delay);
    }

    const std::vector<double> v = class_visits(i);
    for (std::size_t m = 0; m < v.size(); ++m) {
      if (v[m] > 0.0) net.set_visit_ratio(c, m, v[m]);
    }
  }
  return net;
}

qn::OpenNetwork MmsModel::build_open_network() const {
  const int P = topology_->num_nodes();
  LATOL_REQUIRE(P >= 2,
                "open arrivals are remote requests and need at least 2 "
                "processing elements");
  qn::OpenNetwork open(make_station_list(config_, P),
                       static_cast<std::size_t>(P));
  for (int i = 0; i < P; ++i) {
    const auto c = static_cast<std::size_t>(i);
    open.set_arrival_rate(c, config_.open_arrival_rate);
    for (int n = 0; n < P; ++n) {
      const PeStations st = stations(n);
      open.set_service_time(c, st.memory, config_.memory_latency);
      open.set_service_time(c, st.inbound, config_.switch_delay);
      open.set_service_time(c, st.outbound, config_.switch_delay);
    }
    // One-way request: the source outbound switch (always traversed — the
    // simulator sends every open request through it, unconditionally)...
    const PeStations home = stations(i);
    open.set_visit_ratio(c, home.outbound, 1.0);
    for (int dst = 0; dst < P; ++dst) {
      if (dst == i) continue;
      const double q = traffic().probability(i, dst);
      if (q <= 0.0) continue;
      // ...then the destination memory, via one inbound switch per hop.
      const PeStations there = stations(dst);
      open.set_visit_ratio(c, there.memory,
                           open.visit_ratio(c, there.memory) + q);
      for (const auto& [node, w] : topology_->inbound_visits(i, dst)) {
        const std::size_t in = stations(node).inbound;
        open.set_visit_ratio(c, in, open.visit_ratio(c, in) + q * w);
      }
    }
  }
  return open;
}

MmsPerformance extract_performance(const MmsModel& model,
                                   const qn::ClosedNetwork& net,
                                   const qn::MvaSolution& sol, int node) {
  const MmsConfig& cfg = model.config();
  const int P = model.topology().num_nodes();
  LATOL_REQUIRE(node >= 0 && node < P, "node " << node);
  const auto cls = static_cast<std::size_t>(node);
  MmsPerformance perf;
  perf.average_distance = P >= 2 && cfg.p_remote > 0.0
                              ? model.traffic().average_distance_from(node)
                              : 0.0;
  perf.solver_iterations = sol.iterations;
  perf.converged = sol.converged;

  const double lambda = sol.throughput[cls];
  perf.access_rate = lambda;
  perf.processor_utilization = lambda * cfg.runlength;
  perf.message_rate = lambda * cfg.p_remote;

  double switch_residence = 0.0;  // per-cycle time on switches (Eq. 1 numerator)
  double memory_residence = 0.0;  // per-cycle time at memories (= L_obs)
  double max_switch_util = 0.0;
  for (int n = 0; n < P; ++n) {
    const PeStations st = MmsModel::stations(n);
    memory_residence +=
        net.visit_ratio(cls, st.memory) * sol.waiting(cls, st.memory);
    switch_residence +=
        net.visit_ratio(cls, st.inbound) * sol.waiting(cls, st.inbound) +
        net.visit_ratio(cls, st.outbound) * sol.waiting(cls, st.outbound);
    max_switch_util = std::max({max_switch_util, sol.utilization[st.inbound],
                                sol.utilization[st.outbound]});
  }
  perf.memory_latency = memory_residence;  // total memory visit ratio is 1
  perf.network_latency =
      cfg.p_remote > 0.0 ? switch_residence / (2.0 * cfg.p_remote) : 0.0;
  // Per-port utilization so the value stays in [0, 1] for multiported
  // memories (sol.utilization is the mean number of busy servers).
  perf.memory_utilization = sol.utilization[MmsModel::stations(node).memory] /
                            static_cast<double>(cfg.memory_ports);
  perf.switch_utilization = max_switch_util;
  return perf;
}

namespace {

/// Solve `net` through the fallback chain; throws qn::SolverError when
/// even the last link produced nothing (with the default chain that means
/// the network itself is broken — bounds always answer a valid one).
qn::SolveReport robust_solve_or_throw(const qn::ClosedNetwork& net,
                                      const qn::RobustOptions& options) {
  qn::SolveReport report = qn::robust_solve(net, options);
  if (!report.ok()) {
    throw qn::SolverError(*report.error,
                          "MMS solve failed: " + report.summary());
  }
  return report;
}

/// Copy the report-level provenance into the derived measures.
void stamp_provenance(MmsPerformance& perf, const qn::SolveReport& report) {
  perf.solver = report.solver;
  perf.degraded = report.degraded;
  perf.residual = report.residual;
  perf.littles_law_error = report.invariants.littles_law_error;
  perf.flow_balance_error = report.invariants.flow_balance_error;
  // The accepted solve is the last attempt (earlier ones failed); its
  // trace is empty unless RobustOptions::record_traces was on.
  if (!report.attempts.empty() && report.attempts.back().success)
    perf.residual_history = report.attempts.back().trace.residuals();
}

/// One MMS solve: the closed-class report, plus the open-class extension
/// when the config has background arrivals (DESIGN.md §12).
struct SolvedMms {
  qn::SolveReport report;
  std::vector<double> open_response;  ///< per node; empty when closed-only
  double open_util_max = 0.0;
};

SolvedMms solve_mms(const MmsModel& model, const qn::ClosedNetwork& net,
                    const qn::RobustOptions& options) {
  if (model.config().open_arrival_rate <= 0.0) {
    return SolvedMms{robust_solve_or_throw(net, options), {}, 0.0};
  }
  const qn::OpenNetwork open = model.build_open_network();
  qn::MixedReport mix = qn::solve_mixed(net, open, options);
  if (!mix.closed.ok()) {
    throw qn::SolverError(*mix.closed.error,
                          "MMS mixed solve failed: " + mix.closed.summary());
  }
  SolvedMms out{std::move(mix.closed), std::move(mix.open.response_time),
                0.0};
  // extract_performance reads solution.utilization as physical busy
  // servers; the inflated solve reports stretched values, so substitute
  // the combined closed+open utilization from the mixed report.
  out.report.solution.utilization = std::move(mix.total_utilization);
  for (const double rho : mix.open_load)
    out.open_util_max = std::max(out.open_util_max, rho);
  return out;
}

/// Copy the open-class measures for `node` into the derived measures.
void stamp_open(MmsPerformance& perf, const SolvedMms& solved, int node) {
  if (solved.open_response.empty()) return;
  perf.open_latency = solved.open_response[static_cast<std::size_t>(node)];
  perf.open_utilization = solved.open_util_max;
}

}  // namespace

std::vector<MmsPerformance> analyze_per_node(const MmsConfig& config,
                                             const qn::AmvaOptions& options) {
  const MmsModel model(config);
  const qn::ClosedNetwork net = model.build_network();
  qn::RobustOptions ropts;
  ropts.amva = options;
  ropts.record_traces = options.record_trace;
  const SolvedMms solved = solve_mms(model, net, ropts);
  std::vector<MmsPerformance> out;
  const int P = model.topology().num_nodes();
  out.reserve(static_cast<std::size_t>(P));
  for (int n = 0; n < P; ++n) {
    out.push_back(extract_performance(model, net, solved.report.solution, n));
    stamp_provenance(out.back(), solved.report);
    stamp_open(out.back(), solved, n);
  }
  return out;
}

DetailedAnalysis analyze_detailed(const MmsConfig& config,
                                  const qn::AmvaOptions& options) {
  const MmsModel model(config);
  qn::ClosedNetwork net = model.build_network();
  qn::RobustOptions ropts;
  ropts.amva = options;
  ropts.record_traces = options.record_trace;
  SolvedMms solved = solve_mms(model, net, ropts);
  MmsPerformance perf = extract_performance(model, net, solved.report.solution);
  stamp_provenance(perf, solved.report);
  stamp_open(perf, solved, 0);
  return DetailedAnalysis{perf, std::move(net),
                          std::move(solved.report.solution)};
}

RobustAnalysis analyze_robust(const MmsConfig& config,
                              const qn::RobustOptions& options) {
  const MmsModel model(config);
  const qn::ClosedNetwork net = model.build_network();
  SolvedMms solved = solve_mms(model, net, options);
  MmsPerformance perf = extract_performance(model, net, solved.report.solution);
  stamp_provenance(perf, solved.report);
  stamp_open(perf, solved, 0);
  return RobustAnalysis{std::move(perf), std::move(solved.report)};
}

MmsPerformance analyze(const MmsConfig& config, const qn::AmvaOptions& options) {
  return analyze_detailed(config, options).perf;
}

const char* solve_method_name(SolveMethod method) {
  switch (method) {
    case SolveMethod::kAmva:
      return "amva";
    case SolveMethod::kLinearizer:
      return "linearizer";
    case SolveMethod::kHierarchical:
      return "fesc";
  }
  return "?";
}

MmsPerformance analyze(const MmsConfig& config,
                       const AnalysisOptions& options) {
  if (options.method == SolveMethod::kHierarchical) {
    if (options.solution_out != nullptr) *options.solution_out = {};
    HierarchicalOptions hopts;
    hopts.tolerance = std::max(options.amva.tolerance, 1e-14);
    return analyze_hierarchical(config, hopts);
  }
  const bool linearizer =
      options.use_linearizer || options.method == SolveMethod::kLinearizer;
  const MmsModel model(config);
  const qn::ClosedNetwork net = model.build_network();
  qn::RobustOptions ropts;
  if (linearizer) {
    ropts.chain = {qn::SolverKind::kLinearizer, qn::SolverKind::kAmva,
                   qn::SolverKind::kExactMva, qn::SolverKind::kBounds};
    ropts.linearizer.tolerance = options.amva.tolerance;
  }
  ropts.amva = options.amva;
  ropts.record_traces = options.amva.record_trace;
  ropts.hints = options.hints;
  SolvedMms solved = solve_mms(model, net, ropts);
  MmsPerformance perf = extract_performance(model, net, solved.report.solution);
  stamp_provenance(perf, solved.report);
  stamp_open(perf, solved, 0);
  if (options.solution_out != nullptr)
    *options.solution_out = std::move(solved.report.solution);
  return perf;
}

}  // namespace latol::core
