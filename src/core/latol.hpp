// Umbrella header for the latol public API.
//
// Quick tour:
//   MmsConfig cfg = MmsConfig::paper_defaults();   // Table 1 defaults
//   MmsPerformance perf = analyze(cfg);            // U_p, S_obs, L_obs, ...
//   ToleranceResult tol = tolerance_index(cfg, Subsystem::kNetwork);
//   BottleneckAnalysis bn = bottleneck_analysis(cfg);  // Eq. 4/5 closed forms
#pragma once

#include "core/bottleneck.hpp"      // IWYU pragma: export
#include "core/mms_config.hpp"      // IWYU pragma: export
#include "core/mms_model.hpp"       // IWYU pragma: export
#include "core/sweep.hpp"           // IWYU pragma: export
#include "core/thread_partition.hpp"  // IWYU pragma: export
#include "core/tolerance.hpp"       // IWYU pragma: export
