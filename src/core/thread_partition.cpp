#include "core/thread_partition.hpp"

#include "util/error.hpp"

namespace latol::core {

std::vector<PartitionPoint> evaluate_partitions(
    const MmsConfig& base, double work, const std::vector<int>& thread_counts,
    IdealMethod network_method, const qn::AmvaOptions& options) {
  LATOL_REQUIRE(work > 0.0, "work budget " << work);
  LATOL_REQUIRE(!thread_counts.empty(), "no thread counts to evaluate");

  std::vector<PartitionPoint> out;
  out.reserve(thread_counts.size());
  for (const int n_t : thread_counts) {
    LATOL_REQUIRE(n_t >= 1, "thread count " << n_t);
    MmsConfig cfg = base;
    cfg.threads_per_processor = n_t;
    cfg.runlength = work / static_cast<double>(n_t);

    PartitionPoint pt;
    pt.n_t = n_t;
    pt.runlength = cfg.runlength;
    const ToleranceResult net = tolerance_index(cfg, Subsystem::kNetwork,
                                                network_method, options);
    const ToleranceResult mem =
        tolerance_index(cfg, Subsystem::kMemory, options);
    pt.perf = net.actual;
    pt.tol_network = net.index;
    pt.tol_memory = mem.index;
    out.push_back(pt);
  }
  return out;
}

PartitionPoint best_partition(const std::vector<PartitionPoint>& points) {
  LATOL_REQUIRE(!points.empty(), "no partition points");
  const PartitionPoint* best = &points.front();
  for (const PartitionPoint& pt : points) {
    const double u = pt.perf.processor_utilization;
    const double bu = best->perf.processor_utilization;
    if (u > bu + 1e-12 || (std::abs(u - bu) <= 1e-12 && pt.n_t < best->n_t)) {
      best = &pt;
    }
  }
  return *best;
}

}  // namespace latol::core
