// Parallel parameter sweeps.
//
// Every figure in the paper is a grid of independent model solves; the
// sweep engine fans the grid out over a thread pool while keeping results
// in input order (deterministic regardless of worker count). Tolerance
// indices are computed on demand since each adds an extra solve of the
// ideal system (the p_remote = 0 / S = 0 ideal is shared between grid
// points only when the varied parameters allow; we keep it simple and
// solve per point — individual solves are microseconds-to-milliseconds).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/mms_config.hpp"
#include "core/mms_model.hpp"
#include "core/tolerance.hpp"
#include "qn/mva_approx.hpp"

namespace latol::core {

/// What to compute per grid point.
struct SweepOptions {
  bool network_tolerance = false;
  IdealMethod network_method = IdealMethod::kModifyWorkload;
  bool memory_tolerance = false;
  std::size_t workers = 0;  ///< 0 = hardware concurrency
  qn::AmvaOptions amva{};
};

/// Result for one grid point. Tolerance fields are present only when
/// requested in SweepOptions.
struct SweepResult {
  MmsPerformance perf;
  std::optional<double> tol_network;
  std::optional<double> tol_memory;
  /// Set when the solve threw (bad config); the other fields are then
  /// default-initialized.
  std::optional<std::string> error;
};

/// Analyze every configuration in `grid` in parallel; results match the
/// input order. Exceptions from individual points are captured into
/// `SweepResult::error` instead of aborting the sweep.
[[nodiscard]] std::vector<SweepResult> sweep(std::span<const MmsConfig> grid,
                                             const SweepOptions& options = {});

}  // namespace latol::core
