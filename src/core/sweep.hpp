// Parallel parameter sweeps.
//
// Every figure in the paper is a grid of independent model solves; the
// sweep engine fans the grid out over a thread pool while keeping results
// in input order (deterministic regardless of worker count). Tolerance
// indices are computed on demand since each adds an extra solve of the
// ideal system (the p_remote = 0 / S = 0 ideal is shared between grid
// points only when the varied parameters allow; we keep it simple and
// solve per point — individual solves are microseconds-to-milliseconds).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/mms_config.hpp"
#include "core/mms_model.hpp"
#include "core/tolerance.hpp"
#include "qn/mva_approx.hpp"
#include "qn/robust.hpp"
#include "qn/solver_error.hpp"

namespace latol::core {

/// What to compute per grid point.
struct SweepOptions {
  bool network_tolerance = false;
  IdealMethod network_method = IdealMethod::kModifyWorkload;
  bool memory_tolerance = false;
  /// 0 = the shared process-wide pool (util::ThreadPool::shared()), > 0 a
  /// transient pool of that many threads. Results are bit-identical for
  /// every value (DESIGN.md §10).
  std::size_t workers = 0;
  qn::AmvaOptions amva{};
};

/// Result for one grid point. Tolerance fields are present only when
/// requested in SweepOptions.
struct SweepResult {
  /// Carries the answer plus its provenance: `perf.solver` names the
  /// solver that produced it and `perf.degraded` flags fallback answers.
  MmsPerformance perf;
  std::optional<double> tol_network;
  std::optional<double> tol_memory;
  /// Tolerance modes solve an extra ideal system per point; this flags an
  /// ideal solve that was degraded or unconverged (the reported index is
  /// then built on a shaky denominator). Always false outside tolerance
  /// modes. Mirrors exp::PointResult::ideal_degraded so CLI, benches, and
  /// the experiment engine agree on what a degraded point is.
  bool ideal_degraded = false;
  /// Set when the solve threw (bad config, or even the fallback chain
  /// failed); the other fields are then default-initialized.
  std::optional<std::string> error;
  /// Structured failure code accompanying `error`: kInvalidNetwork for a
  /// bad configuration, the solver taxonomy codes otherwise. Unset for
  /// failures outside the solver taxonomy (e.g. bad_alloc).
  std::optional<qn::SolverErrorCode> error_code;

  /// A clean, non-degraded, converged answer (the shared qn definition —
  /// the manifest's degraded count and the CSV converged column derive
  /// from the same predicates, so they cannot drift).
  [[nodiscard]] bool healthy() const {
    return qn::solve_clean(error.has_value(), perf.converged, perf.degraded);
  }
};

/// Analyze every configuration in `grid` in parallel; results match the
/// input order. Per-grid-point failure isolation: exceptions from
/// individual points are captured into `SweepResult::error`/`error_code`
/// instead of aborting the sweep, and a point whose preferred solver fails
/// degrades through the fallback chain before being declared an error.
[[nodiscard]] std::vector<SweepResult> sweep(std::span<const MmsConfig> grid,
                                             const SweepOptions& options = {});

}  // namespace latol::core
