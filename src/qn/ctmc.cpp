#include "qn/ctmc.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace latol::qn {

namespace {

/// All ways to place `n` indistinguishable customers on `m` stations,
/// restricted to stations the class actually visits (mask).
void enumerate_compositions(long n, std::size_t m,
                            const std::vector<bool>& allowed,
                            std::vector<long>& current,
                            std::vector<std::vector<long>>& out) {
  if (current.size() == m - 1) {
    if (n > 0 && !allowed[m - 1]) return;
    current.push_back(n);
    out.push_back(current);
    current.pop_back();
    return;
  }
  const std::size_t idx = current.size();
  const long max_here = allowed[idx] ? n : 0;
  for (long k = 0; k <= max_here; ++k) {
    current.push_back(k);
    enumerate_compositions(n - k, m, allowed, current, out);
    current.pop_back();
  }
}

struct StateSpace {
  // Per class: list of compositions (each a vector of per-station counts).
  std::vector<std::vector<std::vector<long>>> class_states;
  std::vector<std::size_t> stride;  // mixed-radix strides over classes
  std::size_t total = 1;
};

StateSpace build_state_space(const ClosedNetwork& net) {
  const std::size_t C = net.num_classes();
  const std::size_t M = net.num_stations();
  StateSpace ss;
  ss.class_states.resize(C);
  ss.stride.resize(C);
  for (std::size_t c = 0; c < C; ++c) {
    std::vector<bool> allowed(M, false);
    for (std::size_t m = 0; m < M; ++m)
      allowed[m] = net.visit_ratio(c, m) > 0.0;
    // Visit ratios may be unset when the caller works purely from routing;
    // treat "all zero" as "all allowed".
    if (std::none_of(allowed.begin(), allowed.end(), [](bool b) { return b; }))
      allowed.assign(M, true);
    std::vector<long> current;
    enumerate_compositions(net.population(c), M, allowed, current,
                           ss.class_states[c]);
    ss.stride[c] = ss.total;
    ss.total *= ss.class_states[c].size();
  }
  return ss;
}

}  // namespace

std::size_t ctmc_state_count(const ClosedNetwork& net) {
  return build_state_space(net).total;
}

MvaSolution solve_ctmc(const ClosedNetwork& net,
                       const RoutedClosedNetwork& routed,
                       const CtmcOptions& options) {
  net.validate();
  LATOL_REQUIRE(net.is_product_form(),
                "CTMC solver requires class-independent service at shared "
                "FCFS stations (the count process is otherwise not Markov)");
  const std::size_t C = net.num_classes();
  const std::size_t M = net.num_stations();

  const StateSpace ss = build_state_space(net);
  const std::size_t S = ss.total;
  LATOL_REQUIRE(S <= options.max_states,
                "CTMC has " << S << " states, above max_states="
                            << options.max_states);

  // Decode a global state index into per-station per-class counts.
  std::vector<long> counts(C * M);
  auto decode = [&](std::size_t idx) {
    for (std::size_t c = 0; c < C; ++c) {
      const std::size_t n_c = ss.class_states[c].size();
      const std::size_t which = (idx / ss.stride[c]) % n_c;
      const auto& comp = ss.class_states[c][which];
      for (std::size_t m = 0; m < M; ++m) counts[c * M + m] = comp[m];
    }
  };
  // Re-encode after moving one class-c customer from station m to m2.
  auto encode_move = [&](std::size_t idx, std::size_t c, std::size_t m,
                         std::size_t m2) -> std::size_t {
    const std::size_t n_c = ss.class_states[c].size();
    const std::size_t which = (idx / ss.stride[c]) % n_c;
    std::vector<long> comp = ss.class_states[c][which];
    comp[m] -= 1;
    comp[m2] += 1;
    const auto& list = ss.class_states[c];
    const auto it = std::lower_bound(list.begin(), list.end(), comp);
    LATOL_REQUIRE(it != list.end() && *it == comp,
                  "moved composition not found (class " << c << ")");
    const auto new_which = static_cast<std::size_t>(it - list.begin());
    return idx + (new_which - which) * ss.stride[c];
  };

  // Effective service time at a queueing station (class-independent by the
  // product-form check; take it from any class that can visit).
  std::vector<double> station_service(M, 0.0);
  for (std::size_t m = 0; m < M; ++m) {
    for (std::size_t c = 0; c < C; ++c) {
      if (net.service_time(c, m) > 0.0) {
        station_service[m] = net.service_time(c, m);
        break;
      }
    }
  }

  // Build the dense transposed generator and solve pi Q = 0, sum pi = 1.
  util::Matrix qt(S, S, 0.0);
  std::vector<double> out_rate(S, 0.0);

  // Also accumulate, per state, the rate of class-c departures from its
  // reference station (for throughput) while we have the rates in hand.
  util::Matrix ref_departure_rate(S, C, 0.0);

  for (std::size_t s = 0; s < S; ++s) {
    decode(s);
    for (std::size_t m = 0; m < M; ++m) {
      long n_m = 0;
      for (std::size_t c = 0; c < C; ++c) n_m += counts[c * M + m];
      if (n_m == 0) continue;
      const bool queueing = net.station(m).kind == StationKind::kQueueing;
      for (std::size_t c = 0; c < C; ++c) {
        const long n_cm = counts[c * M + m];
        if (n_cm == 0) continue;
        double rate;
        if (queueing) {
          LATOL_REQUIRE(station_service[m] > 0.0,
                        "zero service at busy station " << m);
          // min(n, servers) busy servers; the departing class is chosen in
          // proportion to its queue share (random-order service, identical
          // stationary counts to FCFS for class-independent exponential).
          const long busy =
              std::min<long>(n_m, net.station(m).servers);
          rate = (static_cast<double>(busy) / station_service[m]) *
                 static_cast<double>(n_cm) / static_cast<double>(n_m);
        } else {
          const double s_cm = net.service_time(c, m);
          LATOL_REQUIRE(s_cm > 0.0, "zero delay at busy station " << m);
          rate = static_cast<double>(n_cm) / s_cm;
        }
        if (m == routed.reference_station[c])
          ref_departure_rate(s, c) += rate;
        for (std::size_t m2 = 0; m2 < M; ++m2) {
          const double p = routed.routing[c](m, m2);
          if (p <= 0.0 || m2 == m) continue;
          const std::size_t s2 = encode_move(s, c, m, m2);
          qt(s2, s) += rate * p;
          out_rate[s] += rate * p;
        }
      }
    }
  }
  for (std::size_t s = 0; s < S; ++s) qt(s, s) -= out_rate[s];
  // Replace the last balance equation with the normalization sum pi = 1.
  std::vector<double> rhs(S, 0.0);
  for (std::size_t s = 0; s < S; ++s) qt(S - 1, s) = 1.0;
  rhs[S - 1] = 1.0;
  const std::vector<double> pi = util::solve_linear_system(std::move(qt), rhs);

  // Derive the MVA-style measures.
  const util::Matrix visits = visits_from_routing(net, routed);
  MvaSolution sol;
  sol.throughput.assign(C, 0.0);
  sol.waiting = util::Matrix(C, M, 0.0);
  sol.queue_length = util::Matrix(C, M, 0.0);
  sol.utilization.assign(M, 0.0);

  for (std::size_t s = 0; s < S; ++s) {
    LATOL_REQUIRE(pi[s] > -1e-8, "negative stationary probability " << pi[s]);
    decode(s);
    for (std::size_t c = 0; c < C; ++c) {
      sol.throughput[c] += pi[s] * ref_departure_rate(s, c);
      for (std::size_t m = 0; m < M; ++m)
        sol.queue_length(c, m) +=
            pi[s] * static_cast<double>(counts[c * M + m]);
    }
    for (std::size_t m = 0; m < M; ++m) {
      if (net.station(m).kind != StationKind::kQueueing) continue;
      long n_m = 0;
      for (std::size_t c = 0; c < C; ++c) n_m += counts[c * M + m];
      if (n_m > 0) sol.utilization[m] += pi[s];
    }
  }
  for (std::size_t c = 0; c < C; ++c) {
    for (std::size_t m = 0; m < M; ++m) {
      const double flow = sol.throughput[c] * visits(c, m);
      if (flow > 0.0) sol.waiting(c, m) = sol.queue_length(c, m) / flow;
    }
  }
  return sol;
}

}  // namespace latol::qn
