// Linearizer approximate MVA (Chandy & Neuse, 1982).
//
// A higher-accuracy successor to the Bard–Schweitzer scheme the paper
// uses: instead of assuming the queue-length *fractions* F_{c,m} =
// n_{c,m}/N_c are unchanged when one customer is removed, Linearizer
// estimates the change D_{c,m,j} = F_{c,m}(N - 1_j) - F_{c,m}(N) by
// actually solving the fixed point at the reduced populations, and feeds
// the corrections back. Typical throughput error drops from a few percent
// (Schweitzer) to a few tenths of a percent, at roughly (C + 1) x 3 times
// the cost. Provided as an accuracy upgrade and as an independent check
// on the Schweitzer solver.
#pragma once

#include "obs/trace.hpp"
#include "qn/hints.hpp"
#include "qn/network.hpp"
#include "qn/solution.hpp"
#include "util/cancel.hpp"

namespace latol::qn {

class SolverWorkspace;

/// Options for the Linearizer iteration.
struct LinearizerOptions {
  /// Outer correction updates (2-3 suffice; Chandy & Neuse use 3).
  int outer_iterations = 3;
  /// Convergence threshold of each inner (Core) fixed point.
  double tolerance = 1e-10;
  /// Iteration budget per Core solve.
  long max_core_iterations = 100000;
  /// Divergence guard of each Core fixed point; same semantics as
  /// AmvaOptions::divergence_factor / divergence_window.
  double divergence_factor = 1e6;
  long divergence_window = 32;
  /// Optional convergence sink: when non-null, every Core iteration's
  /// delta is recorded into it, across all Core solves in call order (the
  /// full-population solve first, then the reduced-population solves of
  /// each outer pass). Caller-owned; survives a solver throw.
  obs::ConvergenceTrace* trace = nullptr;
  /// Optional cooperative cancellation, checked once per Core iteration;
  /// same semantics as AmvaOptions::cancel.
  const util::CancelToken* cancel = nullptr;
};

/// Solve `net` with Linearizer. Same contract as solve_amva (including the
/// SolverError guards on NaN/overflowed or diverging Core iterates).
[[nodiscard]] MvaSolution solve_linearizer(
    const ClosedNetwork& net, const LinearizerOptions& options = {});

/// Same solve in a caller-provided SolverWorkspace (qn/workspace.hpp)
/// instead of the per-thread default arena; results are bit-identical to
/// the default overload.
[[nodiscard]] MvaSolution solve_linearizer(const ClosedNetwork& net,
                                           const LinearizerOptions& options,
                                           SolverWorkspace& ws);

/// Warm-kernel solve (qn/hints.hpp, DESIGN.md §15): every Core fixed
/// point seeds its fraction vector from `hints.prior` (when usable), and
/// the reported solution is re-derived from the final full-population
/// fractions in one pure evaluation pass. A deterministic pure function
/// of (net, options, hints), but NOT bitwise equal to the plain overloads
/// or to a differently-hinted solve. Error behavior matches the plain
/// overloads.
[[nodiscard]] MvaSolution solve_linearizer(const ClosedNetwork& net,
                                           const LinearizerOptions& options,
                                           SolverWorkspace& ws,
                                           const SolveHints& hints);

/// Warm-kernel solve in the per-thread default arena.
[[nodiscard]] MvaSolution solve_linearizer(const ClosedNetwork& net,
                                           const LinearizerOptions& options,
                                           const SolveHints& hints);

}  // namespace latol::qn
