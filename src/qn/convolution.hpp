// Buzen's convolution algorithm for single-class closed networks.
//
// Computes the normalization constants G(0..N) of the product-form
// stationary distribution and derives throughput, utilization, and mean
// queue lengths from them. Serves as an independent cross-check of the MVA
// solvers (the two are algebraically equivalent for product-form networks,
// so any disagreement flags an implementation bug).
#pragma once

#include <vector>

#include "qn/network.hpp"
#include "qn/solution.hpp"

namespace latol::qn {

/// Result of a convolution solve; `normalization[n]` is G(n) computed with
/// demands rescaled by `demand_scale` (G values themselves are reported for
/// inspection; all derived measures are unscaled).
struct ConvolutionSolution {
  std::vector<double> normalization;
  double demand_scale = 1.0;
  MvaSolution measures;
};

/// Solve a single-class closed network (num_classes() == 1) with Buzen's
/// algorithm. Only kQueueing and kDelay stations are supported.
[[nodiscard]] ConvolutionSolution solve_convolution(const ClosedNetwork& net);

}  // namespace latol::qn
